// TPC-H query 17 (the paper's §6.2 legacy-workflow experiment): the same
// Hive workflow executed on its native Hadoop back-end and re-mapped by
// Musketeer to Naiad — a 2x-class speedup without touching the workflow.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/workloads"
)

func main() {
	for _, sf := range []int{10, 100} {
		w := workloads.TPCHQ17(sf)
		fmt.Printf("TPC-H Q17 at scale factor %d (%.1f GB of input)\n",
			sf, float64(w.InputBytes())/1e9)

		type arm struct {
			label  string
			engine string
		}
		for _, a := range []arm{
			{"hive on native hadoop", "hadoop"},
			{"musketeer -> naiad   ", "naiad"},
			{"musketeer auto       ", ""},
		} {
			m := musketeer.New(musketeer.EC2(100))
			for path, rel := range w.Inputs {
				check(m.WriteInput(path, rel))
			}
			wf, err := m.CompileHive(workloads.TPCHQ17Hive, workloads.TPCHCatalog())
			check(err)
			var res *musketeer.Result
			if a.engine == "" {
				res, err = wf.Execute()
			} else {
				res, err = wf.ExecuteOn(a.engine)
			}
			check(err)
			fmt.Printf("  %s  %d job(s), makespan %v\n", a.label, len(res.Jobs), res.Makespan)

			if a.engine == "" {
				out, err := m.ReadOutput("q17")
				check(err)
				fmt.Printf("  lost revenue (sum of small-quantity orders): %.0f\n", out.Rows[0][0].F)
			}
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
