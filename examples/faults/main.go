// Fault tolerance (paper Table 3): the same PageRank workflow executed
// under increasing worker-failure rates on back-ends with different
// recovery mechanisms — Hadoop re-runs failed tasks, Spark recomputes RDD
// lineage, Naiad rolls back to checkpoints. Results are identical in every
// run; only the recovery cost differs.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/workloads"
)

func main() {
	w := workloads.PageRank(workloads.Orkut(), 5)
	fmt.Println("5-iteration PageRank (Orkut) on 100 EC2 nodes under worker failures")
	fmt.Printf("%-12s %-22s %-22s %-22s\n", "MTBF", "naiad (checkpoint)", "spark (lineage)", "hadoop (task retry)")

	for _, mtbf := range []float64{0, 300, 60, 15} {
		label := "none"
		if mtbf > 0 {
			label = fmt.Sprintf("%.0fs", mtbf)
		}
		row := fmt.Sprintf("%-12s", label)
		for _, engine := range []string{"naiad", "spark", "hadoop"} {
			opts := []musketeer.Option{musketeer.EC2(100)}
			if mtbf > 0 {
				opts = append(opts, musketeer.WithFaults(mtbf, 17))
			}
			m := musketeer.New(opts...)
			for path, rel := range w.Inputs {
				check(m.WriteInput(path, rel))
			}
			dag, err := w.Build()
			check(err)
			wf, err := m.FromDAG(dag)
			check(err)
			res, err := wf.ExecuteOn(engine)
			check(err)
			failures := 0
			for _, job := range res.Jobs {
				failures += job.Failures
			}
			cell := fmt.Sprintf("%v", res.Makespan)
			if failures > 0 {
				cell += fmt.Sprintf(" (%d failures)", failures)
			}
			row += fmt.Sprintf(" %-22s", cell)
		}
		fmt.Println(row)
	}
	fmt.Println("\ncheckpointing and task retry degrade gracefully; driver-looped")
	fmt.Println("MapReduce pays per-iteration overheads with or without failures.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
