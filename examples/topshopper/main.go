// Top-shopper in the BEER DSL (paper §6.5): find an online shop's largest
// spenders in a region. Demonstrates operator merging — the three operators
// collapse into a single job and a single data scan; running the same
// workflow with merging disabled shows what that buys.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/workloads"
)

func main() {
	w := workloads.TopShopper(50_000_000) // 50 M users of purchase history
	m := musketeer.New(musketeer.EC2(100))
	for path, rel := range w.Inputs {
		check(m.WriteInput(path, rel))
	}
	cat := musketeer.Catalog{
		"purchases": {Path: "in/purchases", Schema: w.Inputs["in/purchases"].Schema},
	}
	wf, err := m.CompileBEER(workloads.TopShopperBEER, cat)
	check(err)

	merged, err := wf.PlanFor("hadoop")
	check(err)
	unmerged, err := wf.PlanUnmerged("hadoop")
	check(err)

	resOn, err := wf.Run(merged)
	check(err)
	resOff, err := wf.Run(unmerged)
	check(err)
	fmt.Printf("operator merging ON : %d job(s), makespan %v\n", len(resOn.Jobs), resOn.Makespan)
	fmt.Printf("operator merging OFF: %d job(s), makespan %v (%.1fx slower)\n",
		len(resOff.Jobs), resOff.Makespan, float64(resOff.Makespan)/float64(resOn.Makespan))

	out, err := m.ReadOutput("top")
	check(err)
	fmt.Printf("\n%d top shoppers found (EU, total > 900); first few:\n", out.NumRows())
	for i, row := range out.Rows {
		if i == 5 {
			break
		}
		fmt.Printf("  user %-5d total %.2f\n", row[0].I, row[1].F)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
