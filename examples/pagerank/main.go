// PageRank in the Gather-Apply-Scatter DSL (paper Listing 2), executed on
// three different back-ends — the same program, three execution engines —
// plus Musketeer's own automatic choice. This is the paper's headline
// decoupling demo for iterative graph computations.
package main

import (
	"fmt"
	"log"
	"sort"

	"musketeer"
	"musketeer/internal/workloads"
)

const pageRank = `
GATHER = {
    SUM(vertex_value)
}
APPLY = {
    MUL [vertex_value, 0.85]
    SUM [vertex_value, 0.15]
}
SCATTER = {
    DIV [vertex_value, vertex_degree]
}
ITERATION_STOP = (iteration < 5)
ITERATION = {
    SUM [iteration, 1]
}
`

func main() {
	// A synthetic Orkut-shaped social graph: 3 M vertices / 117 M edges
	// logically, with a small physical sample (see DESIGN.md §2).
	graph := workloads.Orkut()
	w := workloads.PageRank(graph, 5)

	for _, engine := range []string{"naiad", "powergraph", "graphchi", "auto"} {
		m := musketeer.New(musketeer.EC2(16))
		for path, rel := range w.Inputs {
			check(m.WriteInput(path, rel))
		}
		cat := musketeer.Catalog{
			"vertices": {Path: "in/orkut/vertices", Schema: w.Inputs["in/orkut/vertices"].Schema},
			"edges":    {Path: "in/orkut/edges", Schema: w.Inputs["in/orkut/edges"].Schema},
		}
		wf, err := m.CompileGAS(pageRank, cat, musketeer.GASConfig{
			Vertices: "vertices", Edges: "edges", Output: "pagerank",
		})
		check(err)

		var res *musketeer.Result
		if engine == "auto" {
			res, err = wf.Execute()
		} else {
			res, err = wf.ExecuteOn(engine)
		}
		check(err)
		used := "?"
		if res.Partitioning != nil {
			used = fmt.Sprint(res.Partitioning.Engines())
		}
		fmt.Printf("%-11s -> engines %v, makespan %v\n", engine, used, res.Makespan)

		if engine == "auto" {
			out, err := m.ReadOutput("pagerank")
			check(err)
			sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i][1].F > out.Rows[j][1].F })
			fmt.Println("\ntop-5 vertices by rank:")
			for _, row := range out.Rows[:5] {
				fmt.Printf("  vertex %-6d rank %.3f\n", row[0].I, row[1].F)
			}
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
