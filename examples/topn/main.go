// Top-N via the extensible operator set (paper §4.2): SORT and LIMIT are
// not part of Musketeer's initial operator set — they were added the way
// the paper prescribes (schema inference + kernel + bounds + code
// templates) and immediately work across every layer: the BEER front-end,
// the optimizer, MapReduce job-boundary rules (SORT is a shuffle), code
// generation, and all back-ends.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/workloads"
)

const workflow = `
eu     = SELECT * FROM purchases WHERE region == "EU";
totals = AGG SUM(value) AS total FROM eu GROUP BY uid;
ranked = SORT totals BY total DESC;
top5   = LIMIT ranked 5;
`

func main() {
	base := workloads.TopShopper(50_000_000)
	m := musketeer.New(musketeer.EC2(100))
	for path, rel := range base.Inputs {
		check(m.WriteInput(path, rel))
	}
	cat := musketeer.Catalog{
		"purchases": {Path: "in/purchases", Schema: base.Inputs["in/purchases"].Schema},
	}
	wf, err := m.CompileBEER(workflow, cat)
	check(err)

	// On MapReduce back-ends the SORT is a second shuffle, so Hadoop needs
	// an extra job; general dataflow engines run everything as one job.
	for _, engine := range []string{"hadoop", "naiad"} {
		part, err := wf.PlanFor(engine)
		check(err)
		res, err := wf.Run(part)
		check(err)
		fmt.Printf("%-7s %d job(s), makespan %v\n", engine, len(res.Jobs), res.Makespan)
	}

	out, err := m.ReadOutput("top5")
	check(err)
	fmt.Println("\ntop-5 EU spenders:")
	for _, row := range out.Rows {
		fmt.Printf("  user %-5d total %.2f\n", row[0].I, row[1].F)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
