// Cross-community PageRank (paper §6.3): a hybrid workflow — a batch
// intersection of two web communities' edge sets followed by iterative
// PageRank over the common subgraph. Musketeer can split it across two
// execution engines, which this example compares against single-system
// mappings.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/workloads"
)

func main() {
	lj := workloads.LiveJournal()
	web := workloads.WebCommunity()
	w := workloads.CrossCommunityPageRank(lj, web, 5)

	run := func(label string, exec func(wf *musketeer.Workflow) (*musketeer.Result, error)) {
		m := musketeer.New(musketeer.LocalCluster(7))
		for path, rel := range w.Inputs {
			check(m.WriteInput(path, rel))
		}
		dag, err := w.Build()
		check(err)
		wf, err := m.FromDAG(dag)
		check(err)
		res, err := exec(wf)
		check(err)
		engines := "?"
		if res.Partitioning != nil {
			engines = fmt.Sprint(res.Partitioning.Engines())
		}
		fmt.Printf("  %-22s engines %-24s %2d job(s)  makespan %v\n",
			label, engines, len(res.Jobs), res.Makespan)
	}

	fmt.Println("cross-community PageRank (LiveJournal ∩ synthetic web community):")
	run("hadoop only", func(wf *musketeer.Workflow) (*musketeer.Result, error) { return wf.ExecuteOn("hadoop") })
	run("spark only", func(wf *musketeer.Workflow) (*musketeer.Result, error) { return wf.ExecuteOn("spark") })
	run("naiad only", func(wf *musketeer.Workflow) (*musketeer.Result, error) { return wf.ExecuteOn("naiad") })
	run("musketeer auto", func(wf *musketeer.Workflow) (*musketeer.Result, error) { return wf.Execute() })
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
