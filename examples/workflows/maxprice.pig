# The paper's Listing 1 workflow, in Pig Latin.
locs = FOREACH properties GENERATE id, street, town;
j    = JOIN locs BY id, prices BY id;
g    = GROUP j BY (street, town);
best = FOREACH g GENERATE group, MAX(j.price) AS max_price;
