// Quickstart: the paper's Listing 1 max-property-price workflow, written in
// the HiveQL front-end, automatically mapped to the cheapest back-end and
// executed. Demonstrates the core promise: write the workflow once, let
// Musketeer decide where it runs.
package main

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/relation"
)

const workflow = `
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) AS max_price FROM id_price GROUP BY street AND town AS street_price;
`

func main() {
	m := musketeer.New(musketeer.LocalCluster(7))

	// Stage the inputs: a property register and a price table, physically
	// small but stamped with a 1 GB-scale logical size so the cost model
	// plans for realistic volumes.
	props := musketeer.NewRelation("properties", musketeer.NewSchema("id:int", "street:string", "town:string"))
	prices := musketeer.NewRelation("prices", musketeer.NewSchema("id:int", "price:float"))
	streets := []string{"mill road", "high street", "king street", "station road"}
	towns := []string{"cambridge", "oxford"}
	for i := int64(0); i < 400; i++ {
		props.MustAppend(relation.Row{
			relation.Int(i),
			relation.Str(streets[i%int64(len(streets))]),
			relation.Str(towns[i%int64(len(towns))]),
		})
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(90_000 + (i*7919)%400_000))})
	}
	props.LogicalBytes = 1e9
	prices.LogicalBytes = 6e8
	check(m.WriteInput("in/properties", props))
	check(m.WriteInput("in/prices", prices))

	cat := musketeer.Catalog{
		"properties": {Path: "in/properties", Schema: props.Schema},
		"prices":     {Path: "in/prices", Schema: prices.Schema},
	}

	wf, err := m.CompileHive(workflow, cat)
	check(err)
	fmt.Println("IR DAG:")
	fmt.Println(wf.DAG())

	part, err := wf.Plan() // automatic back-end mapping (§5.2)
	check(err)
	fmt.Println("chosen partitioning:")
	fmt.Println(part)

	src, err := wf.GeneratedCode(part)
	check(err)
	fmt.Println("generated code:")
	fmt.Println(src)

	res, err := wf.Run(part)
	check(err)
	fmt.Printf("executed %d job(s), simulated makespan %v\n\n", len(res.Jobs), res.Makespan)

	out, err := m.ReadOutput("street_price")
	check(err)
	fmt.Println("most expensive property per street:")
	for _, row := range out.Rows {
		fmt.Printf("  %-14s %-10s £%.0f\n", row[0].S, row[1].S, row[2].F)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
