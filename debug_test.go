package musketeer

// Debug-server integration tests: boot the deployment's DebugHandler under
// httptest and prove the telemetry plane holds up — every /metrics scrape is
// well-formed Prometheus exposition, idle scrapes are byte-stable, run
// digests land in /debug/runs with their trace endpoint live, and the whole
// surface survives being scraped concurrently with chaotic executions
// (run under -race in ci.sh).

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"musketeer/internal/obs"
)

// scrape GETs path from the debug server and returns status + body.
func scrape(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

type runsPage struct {
	Runs []RunDigest `json:"runs"`
}

func TestDebugServerScrape(t *testing.T) {
	m := New(WithTracing())
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wf.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID == "" {
		t.Fatal("Execute returned no RunID")
	}

	srv := httptest.NewServer(m.DebugHandler())
	defer srv.Close()

	code, body := scrape(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /metrics: every line must be valid exposition, and with the
	// deployment idle two scrapes must be byte-identical.
	code, first := scrape(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := obs.ValidatePromText(first); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if !strings.Contains(first, "workflows_completed_total 1") {
		t.Errorf("/metrics missing completed-workflow counter:\n%s", first)
	}
	_, second := scrape(t, srv, "/metrics")
	if first != second {
		t.Errorf("idle /metrics scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	// /debug/runs: the execution's digest must be retained and addressable.
	code, body = scrape(t, srv, "/debug/runs")
	if code != http.StatusOK {
		t.Fatalf("/debug/runs status = %d", code)
	}
	var page runsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("/debug/runs: %v\n%s", err, body)
	}
	if len(page.Runs) != 1 {
		t.Fatalf("retained runs = %d, want 1", len(page.Runs))
	}
	d := page.Runs[0]
	if d.ID != res.RunID || d.Status != "ok" || !d.Traced || d.Spans == 0 {
		t.Errorf("digest = %+v, want id=%s status=ok traced with spans", d, res.RunID)
	}
	if d.MakespanS <= 0 || len(d.Jobs) == 0 {
		t.Errorf("digest missing makespan/jobs: %+v", d)
	}

	code, body = scrape(t, srv, "/debug/runs/"+res.RunID)
	if code != http.StatusOK {
		t.Fatalf("/debug/runs/%s status = %d", res.RunID, code)
	}
	code, body = scrape(t, srv, "/debug/runs/"+res.RunID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status = %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	if code, _ := scrape(t, srv, "/debug/runs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown run id status = %d, want 404", code)
	}
}

// TestConcurrentScrapeDuringChaoticExecutes runs eight traced chaotic
// executions against one deployment while hammering the debug endpoints,
// validating every scrape. The -race run of this test is the data-race
// gate for the whole telemetry plane.
func TestConcurrentScrapeDuringChaoticExecutes(t *testing.T) {
	plan := &ChaosPlan{
		Seed:                11,
		JobCrashProb:        0.2,
		MTBFSeconds:         60,
		SlowNodeProb:        0.2,
		SlowFactor:          3,
		DFSReadFailProb:     0.2,
		CheckpointIntervalS: 20,
		CheckpointCostS:     1,
	}
	m := New(WithTracing(), WithChaos(plan), WithRetries(5),
		WithRunLog(slog.NewJSONHandler(io.Discard, nil)))
	cat := stageProperty(t, m)

	const executes = 8
	wfs := make([]*Workflow, executes)
	for i := range wfs {
		wf, err := m.CompileHive(maxPriceHive, cat)
		if err != nil {
			t.Fatal(err)
		}
		wfs[i] = wf
	}

	srv := httptest.NewServer(m.DebugHandler())
	defer srv.Close()

	done := make(chan struct{})
	var scrapeErr error
	var scrapeMu sync.Mutex
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err != nil {
				return // server closed; executions finished first
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return
			}
			if verr := obs.ValidatePromText(string(body)); verr != nil {
				scrapeMu.Lock()
				scrapeErr = fmt.Errorf("scrape %d: %w", i, verr)
				scrapeMu.Unlock()
				return
			}
			resp, err = srv.Client().Get(srv.URL + "/debug/runs")
			if err != nil {
				return
			}
			var page runsPage
			derr := json.NewDecoder(resp.Body).Decode(&page)
			resp.Body.Close()
			if derr != nil {
				scrapeMu.Lock()
				scrapeErr = fmt.Errorf("scrape %d: /debug/runs: %w", i, derr)
				scrapeMu.Unlock()
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, executes)
	for i := range wfs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = wfs[i].Execute()
		}(i)
	}
	wg.Wait()
	srv.CloseClientConnections()
	srv.Close()
	<-done

	for i, err := range errs {
		if err != nil {
			t.Errorf("execute %d: %v", i, err)
		}
	}
	scrapeMu.Lock()
	defer scrapeMu.Unlock()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}

	// All eight digests retained, all traced; final scrape still valid.
	runs := m.Runs().Runs()
	if len(runs) != executes {
		t.Fatalf("retained runs = %d, want %d", len(runs), executes)
	}
	for _, d := range runs {
		if d.Status != "ok" || !d.Traced {
			t.Errorf("digest %s: status=%s traced=%v", d.ID, d.Status, d.Traced)
		}
	}
	srv2 := httptest.NewServer(m.DebugHandler())
	defer srv2.Close()
	_, final := scrape(t, srv2, "/metrics")
	if err := obs.ValidatePromText(final); err != nil {
		t.Fatal(err)
	}
}
