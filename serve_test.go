package musketeer_test

// Service-plane integration tests: boot the multi-tenant serve handler
// under httptest and drive it the way a client would — stage inputs over
// HTTP, submit a two-engine workflow, poll the job to completion, and pin
// the tenancy and plan-cache contracts: a second, semantically identical
// submission (different tenant, renamed relations) must replay the cached
// plan — its trace genuinely lacking the compile / optimize /
// partition-search spans — and no tenant can read another's outputs or
// jobs. The concurrent variant runs 8 tenants at once under -race in ci.sh.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"musketeer"
	"musketeer/internal/relation"
	"musketeer/internal/workloads"
)

// ccBeer is a cross-community PageRank in BEER: intersect two edge sets,
// compute degrees, and run three damped rank iterations over the common
// subgraph. At logical scale >= 100k vertices on EC2(16) the auto-mapper
// splits it across two engines (the iterative core on a graph engine, the
// relational prologue elsewhere), which is exactly what the smoke test
// needs to arrive over HTTP.
const ccBeer = `
common  = INTERSECT edges_a, edges_b;
degs    = AGG COUNT(*) AS degree FROM common GROUP BY src;
cedges  = JOIN common, degs ON src = src;
srcs    = PROJECT src FROM common;
dsrcs   = DISTINCT srcs;
seeded  = MUL [src, 0.0] AS rank FROM dsrcs;
ranked  = SUM [rank, 1.0] FROM seeded;
cverts  = PROJECT src AS vertex, rank FROM ranked;
ccpr    = WHILE (iteration < 3) CARRY cverts = new_cverts {
    sent     = JOIN cverts, cedges ON vertex = src;
    shared   = DIV [rank, degree] FROM sent;
    gathered = AGG SUM(rank) AS rank FROM shared GROUP BY dst;
    damped   = MUL [rank, 0.85] FROM gathered;
    applied  = SUM [rank, 0.15] FROM damped;
    new_cverts = PROJECT dst AS vertex, rank FROM applied;
};
`

// edgesTSV renders a generated graph's edge list as a stageable 2-column
// TSV (the workflow recomputes degrees itself), preserving the logical
// size so the cost model sees big data over physically small rows.
func edgesTSV(scale int64, seed int64) []byte {
	g := workloads.GenerateGraph("g", scale, scale*8, 40, seed)
	out := relation.New("edges", relation.NewSchema("src:int", "dst:int"))
	for _, row := range g.Edges.Rows {
		out.MustAppend(relation.Row{row[0], row[1]})
	}
	out.LogicalBytes = g.Edges.LogicalBytes
	return out.EncodeBytes()
}

// serveTestServer boots a deployment's service plane under httptest.
func serveTestServer(t *testing.T, opts musketeer.ServeOptions, mopts ...musketeer.Option) (*httptest.Server, *musketeer.Musketeer) {
	t.Helper()
	m := musketeer.New(mopts...)
	srv := m.NewServer(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, m
}

func stageEdges(t *testing.T, base, tenant string, scale int64) {
	t.Helper()
	for i, name := range []string{"edges_a", "edges_b"} {
		url := fmt.Sprintf("%s/api/v1/tenants/%s/inputs/in/%s", base, tenant, name)
		resp, err := http.Post(url, "text/tab-separated-values", bytes.NewReader(edgesTSV(scale, int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("staging %s for %s: status %d", name, tenant, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// submitCC submits the ccBeer workflow for a tenant and returns the
// accepted job status.
func submitCC(t *testing.T, base, tenant string) musketeer.JobStatus {
	t.Helper()
	req := musketeer.SubmitRequest{
		Frontend: "beer",
		Source:   ccBeer,
		Catalog: map[string]musketeer.TableSpec{
			"edges_a": {Path: "in/edges_a", Schema: []string{"src:int", "dst:int"}},
			"edges_b": {Path: "in/edges_b", Schema: []string{"src:int", "dst:int"}},
		},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/tenants/"+tenant+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st musketeer.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit for %s: status %d (%+v)", tenant, resp.StatusCode, st)
	}
	if st.Status != "queued" {
		t.Fatalf("submit response status = %q, want queued", st.Status)
	}
	return st
}

// pollJob polls until the job leaves queued/running, asserting every
// observed status is legal and the sequence never moves backwards.
func pollJob(t *testing.T, base, tenant, id string) musketeer.JobStatus {
	t.Helper()
	rank := map[string]int{"queued": 0, "running": 1, "ok": 2, "failed": 2}
	last := "queued"
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/tenants/" + tenant + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st musketeer.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("polling %s: status %d err %v", id, resp.StatusCode, err)
		}
		r, legal := rank[st.Status]
		if !legal {
			t.Fatalf("job %s reported illegal status %q", id, st.Status)
		}
		if r < rank[last] {
			t.Fatalf("job %s status went backwards: %s -> %s", id, last, st.Status)
		}
		last = st.Status
		if st.Status == "ok" || st.Status == "failed" {
			if st.SubmittedAt == "" || st.FinishedAt == "" {
				t.Errorf("finished job %s missing timestamps: %+v", id, st)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after deadline", id, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchTrace(t *testing.T, base, runID string) string {
	t.Helper()
	resp, err := http.Get(base + "/debug/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace for %s: status %d", runID, resp.StatusCode)
	}
	return buf.String()
}

// TestServeSmoke is the service smoke gate: tenant A submits the
// two-engine workflow cold, tenant B resubmits it over its own identically
// shaped inputs and must hit the plan cache, and neither tenant can see
// the other's jobs or outputs.
func TestServeSmoke(t *testing.T) {
	const scale = 100_000
	ts, m := serveTestServer(t, musketeer.ServeOptions{Workers: 2},
		musketeer.EC2(16), musketeer.WithPlanCache(64), musketeer.WithTracing())

	stageEdges(t, ts.URL, "acme", scale)
	stageEdges(t, ts.URL, "globex", scale)

	// Tenant A: cold submission. Must compile, search, and split across two
	// engines.
	cold := pollJob(t, ts.URL, "acme", submitCC(t, ts.URL, "acme").ID)
	if cold.Status != "ok" {
		t.Fatalf("cold job failed: %s", cold.Error)
	}
	if cold.Result == nil || len(cold.Result.Engines) != 2 {
		t.Fatalf("cold job engines = %+v, want two engines", cold.Result)
	}
	if cold.Result.PlanCacheHit {
		t.Error("cold submission reported a plan-cache hit")
	}
	coldTrace := fetchTrace(t, ts.URL, cold.Result.RunID)
	for _, span := range []string{"compile", "optimize", "partition-search"} {
		if !strings.Contains(coldTrace, span) {
			t.Errorf("cold trace missing %q span", span)
		}
	}

	// Tenant B: identical workflow over its own namespace. The canonical
	// hash matches, so the plan replays — no compile / optimize /
	// partition-search spans in the trace, same engine split.
	warm := pollJob(t, ts.URL, "globex", submitCC(t, ts.URL, "globex").ID)
	if warm.Status != "ok" {
		t.Fatalf("warm job failed: %s", warm.Error)
	}
	if !warm.Result.PlanCacheHit {
		t.Fatal("second identical submission missed the plan cache")
	}
	if fmt.Sprint(warm.Result.Engines) != fmt.Sprint(cold.Result.Engines) {
		t.Errorf("warm engines %v != cold engines %v", warm.Result.Engines, cold.Result.Engines)
	}
	warmTrace := fetchTrace(t, ts.URL, warm.Result.RunID)
	for _, span := range []string{"compile", "optimize", "partition-search"} {
		if strings.Contains(warmTrace, span) {
			t.Errorf("plan-cache-hit trace still has %q span", span)
		}
	}
	if !strings.Contains(warmTrace, "plan_cache") {
		t.Error("plan-cache-hit trace not annotated with plan_cache attribute")
	}
	if hits := m.Metrics().Counter("plan_cache_hit_total").Value(); hits != 1 {
		t.Errorf("plan_cache_hit_total = %d, want 1", hits)
	}

	// Tenancy: outputs and jobs are invisible across namespaces.
	resp, err := http.Get(ts.URL + "/api/v1/tenants/globex/outputs/in/edges_a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tenant reading its own input: status %d", resp.StatusCode)
	}
	for _, probe := range []string{
		"/api/v1/tenants/globex/jobs/" + cold.ID,    // A's job via B
		"/api/v1/tenants/intruder/outputs/ccpr",     // A's output via stranger
		"/api/v1/tenants/intruder/jobs/no-such-job", // unknown job
		"/debug/no-such", // debug fallthrough 404
	} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", probe, resp.StatusCode)
		}
	}

	// A's sink is fetchable as TSV in A's namespace only.
	resp, err = http.Get(ts.URL + "/api/v1/tenants/acme/outputs/ccpr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetching acme's ccpr: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/tab-separated-values") {
		t.Errorf("output content type = %q", ct)
	}

	// The debug plane serves from the same listener, and the run digests
	// carry tenant attribution.
	var runs struct {
		Runs []struct {
			Tenant string `json:"tenant"`
		} `json:"runs"`
	}
	resp2, err := http.Get(ts.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp2.Body).Decode(&runs)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	tenants := map[string]bool{}
	for _, r := range runs.Runs {
		tenants[r.Tenant] = true
	}
	if !tenants["acme"] || !tenants["globex"] {
		t.Errorf("run digests missing tenant attribution: %+v", tenants)
	}
}

// TestServeValidation pins the service's error semantics: client mistakes
// are 400s at submit time, not failed jobs; closed service is 503.
func TestServeValidation(t *testing.T) {
	ts, _ := serveTestServer(t, musketeer.ServeOptions{Workers: 1}, musketeer.EC2(4))

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad tenant name", "/api/v1/tenants/no%2Fslash/jobs", `{"frontend":"beer","source":"x = DISTINCT y;"}`, 400},
		{"unknown frontend", "/api/v1/tenants/a/jobs", `{"frontend":"cobol","source":"x"}`, 400},
		{"syntax error", "/api/v1/tenants/a/jobs", `{"frontend":"beer","source":"this is not BEER"}`, 400},
		{"unknown engine", "/api/v1/tenants/a/jobs", `{"frontend":"beer","source":"o = DISTINCT e;","engine":"warp","catalog":{"e":{"path":"in/e","schema":["id:int"]}}}`, 400},
		{"unknown mode", "/api/v1/tenants/a/jobs", `{"frontend":"beer","source":"o = DISTINCT e;","mode":"psychic","catalog":{"e":{"path":"in/e","schema":["id:int"]}}}`, 400},
		{"bad JSON", "/api/v1/tenants/a/jobs", `{`, 400},
		{"reserved path", "/api/v1/tenants/a/inputs/__run/x", "id:int\n1", 400},
		// A dot-dot in the URL is normalized away by the mux before routing;
		// catalog paths reach the validator verbatim and must be rejected.
		{"dot-dot catalog path", "/api/v1/tenants/a/jobs", `{"frontend":"beer","source":"o = DISTINCT e;","catalog":{"e":{"path":"../escape","schema":["id:int"]}}}`, 400},
		{"reserved catalog path", "/api/v1/tenants/a/jobs", `{"frontend":"beer","source":"o = DISTINCT e;","catalog":{"e":{"path":"__tenant/b/in/e","schema":["id:int"]}}}`, 400},
	}
	for _, tc := range cases {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}

	// After Close the queue rejects; the server answers 503, not a hang.
	m2 := musketeer.New(musketeer.EC2(4))
	srv2 := m2.NewServer(musketeer.ServeOptions{})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	srv2.Close()
	code := func() int {
		resp, err := http.Post(ts2.URL+"/api/v1/tenants/a/jobs", "application/json",
			strings.NewReader(`{"frontend":"beer","source":"o = DISTINCT e;","catalog":{"e":{"path":"in/e","schema":["id:int"]}}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}()
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after Close: status %d, want 503", code)
	}
}

// TestServeConcurrentTenants drives 8 tenants through the full HTTP path
// at once — staging, submitting, polling, fetching — sharing one
// deployment, one plan cache, and one fair queue. Run under -race in ci.sh.
func TestServeConcurrentTenants(t *testing.T) {
	const scale = 100_000
	ts, _ := serveTestServer(t, musketeer.ServeOptions{Workers: 4},
		musketeer.EC2(16), musketeer.WithPlanCache(64), musketeer.WithTracing())

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	hits := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", i)
			stageEdges(t, ts.URL, tenant, scale)
			st := submitCC(t, ts.URL, tenant)
			final := pollJob(t, ts.URL, tenant, st.ID)
			if final.Status != "ok" {
				errs <- fmt.Errorf("%s: job failed: %s", tenant, final.Error)
				return
			}
			if len(final.Result.Engines) == 0 {
				errs <- fmt.Errorf("%s: result has no engines", tenant)
				return
			}
			hits <- final.Result.PlanCacheHit
		}(i)
	}
	wg.Wait()
	close(errs)
	close(hits)
	for err := range errs {
		t.Error(err)
	}
	var hit int
	for h := range hits {
		if h {
			hit++
		}
	}
	// Mid-storm hits are racy (concurrent runs' calibration feedback can
	// land between another run's store and the next lookup), so only log
	// them. Once the storm quiesces, though, the last completed run's entry
	// is tagged with the final calibration version: the next submission must
	// replay it.
	t.Logf("plan-cache hits during storm: %d/8", hit)
	stageEdges(t, ts.URL, "straggler", scale)
	final := pollJob(t, ts.URL, "straggler", submitCC(t, ts.URL, "straggler").ID)
	if final.Status != "ok" {
		t.Fatalf("post-storm job failed: %s", final.Error)
	}
	if !final.Result.PlanCacheHit {
		t.Error("post-storm submission missed the plan cache")
	}
}
