a = FOREACH properties GENERATE id, nope;
b = FOREACH properties GENERATE id, street;
c = FOREACH prices GENERATE id, price;
j = JOIN b BY id, c BY ghost;
u = UNION b, c;
d = DISTINCT c;
e = DISTINCT d;
