module musketeer

go 1.23
