// Package timeutil sits deliberately outside the kernel directories: the
// old syntactic linter only scanned internal/exec and internal/relation
// for `import "time"`, so a clock reached through this package was
// invisible to it. The determinism pass walks the typed call graph and
// reports the full kernel → StepOne → stepTwo → time.Now witness chain.
package timeutil

import "time"

// StepOne is hop one of the seeded transitive chain.
func StepOne(n int) int64 { return stepTwo(n) }

// stepTwo is hop two; it is the frame that actually touches the clock.
func stepTwo(n int) int64 {
	_ = n
	return time.Now().UnixNano()
}
