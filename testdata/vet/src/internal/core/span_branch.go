package core

import (
	"errors"

	"musketeer/internal/obs"
)

// decodeStage carries a seeded violation [span-leak]: the span is ended on
// the happy path but leaks on the early error return — the
// branch-dependent shape the old syntactic rule (which only required
// *some* .End() somewhere in the function) provably could not see.
func decodeStage(rec *obs.Recorder, fail bool) error {
	sp := rec.StartSpan(nil, "decode", "exec")
	if fail {
		return errors.New("decode failed")
	}
	sp.End()
	return nil
}
