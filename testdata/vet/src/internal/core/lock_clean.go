package core

import "sync"

type counterTable struct {
	mu sync.Mutex
	n  map[string]int
}

// Clean: the deferred unlock covers every path.
func (t *counterTable) bump(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n[id]++
	return t.n[id]
}

// Clean: every path out releases explicitly.
func (t *counterTable) reset(id string, hard bool) {
	t.mu.Lock()
	if hard {
		delete(t.n, id)
		t.mu.Unlock()
		return
	}
	t.n[id] = 0
	t.mu.Unlock()
}
