package core

import (
	"errors"
	"sync"
)

type sessionTable struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

// claim carries a seeded violation [lock-discipline]: the early error
// return leaves mu held (the happy path unlocks correctly).
func (t *sessionTable) claim(id string) (int, error) {
	t.mu.Lock()
	v, ok := t.m[id]
	if !ok {
		return 0, errors.New("unknown session")
	}
	t.mu.Unlock()
	return v, nil
}

// peek carries a seeded violation [lock-discipline]: the read lock is
// never released on any path.
func (t *sessionTable) peek(id string) int {
	t.rw.RLock()
	return t.m[id]
}
