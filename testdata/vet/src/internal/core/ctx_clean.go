package core

import "context"

// Clean: the exported blocking API accepts a context and selects on it.
func AwaitResult(ctx context.Context, done chan struct{}) error {
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
