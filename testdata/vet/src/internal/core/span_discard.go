package core

import "musketeer/internal/obs"

// fireSpan carries a seeded violation [span-leak]: the span is started and
// immediately discarded — nothing can ever end it.
func fireSpan(rec *obs.Recorder) {
	rec.StartSpan(nil, "fire", "exec")
}
