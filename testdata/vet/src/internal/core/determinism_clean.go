package core

import "time"

// Mirror of the real calibration store's provenance stamp: touch is in the
// determinism rule's exempt-clock-owner set ((*core.Calibration).touch),
// so the time.Now below — and kernel functions reaching touch — must stay
// clean. A finding here means the rule-level exemption regressed.

// Calibration is the corpus stand-in for the feedback calibration store.
type Calibration struct {
	version   uint64
	updatedAt time.Time
}

func (c *Calibration) touch() {
	c.version++
	c.updatedAt = time.Now()
}

// ObserveCorpus is a kernel-package caller of the exempt clock owner; the
// path ObserveCorpus -> touch -> time.Now must not be reported.
func (c *Calibration) ObserveCorpus() {
	c.touch()
}
