package core

import (
	"errors"

	"musketeer/internal/obs"
)

var errNoInput = errors.New("no input")

// Clean: the deferred End covers every path, including the early return.
func guardedStage(rec *obs.Recorder, fail bool) error {
	sp := rec.Begin("guarded")
	defer sp.End()
	if fail {
		return errNoInput
	}
	return nil
}

// Clean: returning the span transfers ownership to the caller.
func openSpan(rec *obs.Recorder) *obs.Span {
	sp := rec.Begin("open")
	return sp
}

// Clean: both branches end the span explicitly.
func forkedStage(rec *obs.Recorder, fast bool) {
	sp := rec.Begin("forked")
	if fast {
		sp.End()
		return
	}
	sp.End()
}
