package core

import "sync"

// pollAll carries seeded violations [scheduler-only-concurrency]: core is
// not a kernel package, so even a properly joined hand-rolled fork-join
// must go through sched.ForEach — the go statement and every WaitGroup
// method are findings.
func pollAll(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
