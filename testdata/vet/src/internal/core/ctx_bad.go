package core

import "context"

// detachedRun carries a seeded violation [context-discipline]: library
// code minting its own root context detaches the work from the caller's
// cancellation.
func detachedRun(run func(context.Context) error) error {
	return run(context.Background())
}

// AwaitDrain carries a seeded violation [context-discipline]: an exported
// execution-stack API that blocks on a channel but accepts no context.
func AwaitDrain(done chan struct{}) {
	<-done
}

// StageCount carries a seeded violation [context-discipline]: it accepts a
// context and silently drops it.
func StageCount(ctx context.Context, stages []string) int {
	return len(stages)
}
