// Package sched is the corpus stand-in for the scheduler: the one package
// where goroutines and WaitGroups are sanctioned, and a determinism-exempt
// clock owner — the taint traversal stops at this package's boundary.
package sched

import (
	"sync"
	"time"
)

// forEach runs fn(0..n-1) concurrently and joins before returning. It
// exercises the package-level concurrency exemption: no findings here.
func forEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Elapsed observes the wall clock inside a sanctioned clock owner; kernel
// callers of this function stay clean because traversal stops here.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }
