package exec

import (
	"time"

	"musketeer/internal/sched"
)

// Clean: importing time for types and arithmetic is fine — determinism
// bans observing the clock, not the package. The old linter banned the
// import outright and would have false-positived on this whole file.
func Window(d time.Duration) time.Duration {
	return 2 * d
}

// Clean: an injected timestamp is the sanctioned pattern.
func Age(now, then int64) int64 { return now - then }

// Clean: calling into the sanctioned clock owner does not taint the
// kernel — the traversal stops at the internal/sched boundary.
func Stamp(start time.Time) time.Duration { return sched.Elapsed(start) }
