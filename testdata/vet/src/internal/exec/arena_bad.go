package exec

import "musketeer/internal/relation"

type rowCache struct {
	rows []relation.Row
	last relation.Row
}

// absorb carries two seeded violations [arena-escape]: rows borrowed from
// a batch stored into struct fields, once directly and once via append.
func (c *rowCache) absorb(src relation.RowSource) error {
	for {
		b, err := src.Next()
		if err != nil {
			return err
		}
		if b.Empty() {
			return nil
		}
		for _, row := range b.Rows {
			c.last = row
		}
		c.rows = append(c.rows, b.Rows...)
	}
}

// firstRows carries a seeded violation [arena-escape]: borrowed rows
// returned bare instead of inside a relation.Batch.
func firstRows(src relation.RowSource) []relation.Row {
	b, err := src.Next()
	if err != nil {
		return nil
	}
	rows := b.Rows
	return rows
}
