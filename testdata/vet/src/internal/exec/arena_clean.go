package exec

import "musketeer/internal/relation"

type rowKeeper struct {
	rows []relation.Row
}

// Clean: copying a borrowed row before storing it is the contract.
func (k *rowKeeper) keep(src relation.RowSource) error {
	b, err := src.Next()
	if err != nil {
		return err
	}
	for _, row := range b.Rows {
		cp := make(relation.Row, len(row))
		copy(cp, row)
		k.rows = append(k.rows, cp)
	}
	return nil
}

// Clean: returning borrowed rows inside a relation.Batch is the sanctioned
// aliased hand-off downstream.
func passThrough(src relation.RowSource) (relation.Batch, error) {
	b, err := src.Next()
	if err != nil {
		return relation.Batch{}, err
	}
	return relation.Batch{Rows: b.Rows}, nil
}
