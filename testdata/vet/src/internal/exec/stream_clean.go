package exec

import "musketeer/internal/relation"

// Clean: pulling batches through RowSource.Next and reading the *batch*'s
// rows is the streaming contract. The batch variable is named `cur`, which
// the old name-based rule would have flagged; the typed rule sees
// relation.Batch and stays quiet.
func countStreamed(src relation.RowSource) (int, error) {
	n := 0
	for {
		cur, err := src.Next()
		if err != nil {
			return 0, err
		}
		if cur.Empty() {
			return n, nil
		}
		n += len(cur.Rows)
	}
}
