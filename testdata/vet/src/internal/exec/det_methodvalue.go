package exec

import "math/rand"

// NoisyKey carries a seeded violation [determinism]: randomness taken as a
// function value (a reference, not a call) still taints the kernel.
func NoisyKey(seed int) int {
	pick := rand.Int
	return pick() & seed
}
