package exec

import "musketeer/internal/relation"

// drainMaterialized carries a seeded violation [stream-rows]: it reads
// .Rows of a fully materialized relation inside a streaming kernel file.
// The parameter is named `b` on purpose — the old name-based rule exempted
// receivers named b/batch*; the typed rule sees relation.Relation and
// flags it anyway.
func drainMaterialized(b relation.Relation) int {
	n := 0
	for range b.Rows {
		n++
	}
	return n
}
