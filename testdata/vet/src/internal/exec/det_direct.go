package exec

import clock "time" // aliased: the typed pass resolves the callee anyway

// StampRow carries a seeded violation [determinism]: a direct clock call
// in a kernel package, behind an import alias.
func StampRow() int64 {
	return clock.Now().UnixNano()
}
