package exec

import f "fmt" // aliased: the old linter matched the spelled name "fmt" only

// KeyOf carries a seeded violation [hot-path-keys]: a formatted string key
// built through an aliased fmt import.
func KeyOf(a, b string) string {
	return f.Sprintf("%s|%s", a, b)
}

// ConcatKey carries a seeded violation [hot-path-keys]: string
// concatenation with a literal on the hot path.
func ConcatKey(k string) string {
	return "p:" + k
}
