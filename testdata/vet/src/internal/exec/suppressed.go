package exec

import "fmt"

// Suppression corpus. The Sprintf below is a real hot-path-keys violation
// silenced by a justified mkvet:ignore: it must NOT appear in the report.
// The marker on staleIgnore matches nothing any more and must be reported
// as unused; the reason-less marker on reasonless must be reported as
// malformed.
func debugKey(a string) string {
	//mkvet:ignore hot-path-keys corpus: cold debug path, formatting is fine here
	return fmt.Sprintf("debug:%s", a)
}

//mkvet:ignore span-leak corpus: stale — nothing starts a span here any more
func staleIgnore() {}

//mkvet:ignore determinism
func reasonless() {}
