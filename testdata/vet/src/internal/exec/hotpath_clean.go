package exec

// Clean: hashed keys build no strings.
func HashKey(a, b uint64) uint64 {
	return a*1099511628211 ^ b
}
