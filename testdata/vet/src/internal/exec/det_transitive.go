package exec

import "musketeer/internal/timeutil"

// FusedStamp carries a seeded violation [determinism]: the clock is two
// hops away (FusedStamp → timeutil.StepOne → timeutil.stepTwo → time.Now)
// in a package the old syntactic linter never scanned. The finding must
// carry the full witness chain.
func FusedStamp(n int) int64 {
	return timeutil.StepOne(n)
}
