package exec

// fireAndForget carries a seeded violation [scheduler-only-concurrency]:
// it spawns a goroutine it never joins, so the kernel fork-join exemption
// does not apply even inside internal/exec.
func fireAndForget(work func()) {
	go work()
}
