package exec

import "sync"

// Clean: contained fork-join — every goroutine is joined in the same body,
// the sanctioned shape for data-parallel kernels.
func parallelSum(parts [][]int64) int64 {
	sums := make([]int64, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part []int64) {
			defer wg.Done()
			for _, v := range part {
				sums[i] += v
			}
		}(i, part)
	}
	wg.Wait()
	var total int64
	for _, s := range sums {
		total += s
	}
	return total
}
