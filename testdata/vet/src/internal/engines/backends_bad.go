package engines

// Seeded violation [engine-profile]: an Engine literal that registers no
// prof: field enters the planner with no capability/cost profile.
var naked = Engine{name: "naked"}
