package engines

// Clean: the literal registers its profile.
var profiled = Engine{name: "profiled", prof: &Profile{Startup: 1}}
