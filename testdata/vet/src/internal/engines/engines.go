// Package engines is the corpus stand-in for the back-end registry; the
// engine-profile rule matches Engine composite literals by type identity.
package engines

// Profile carries an engine's capability/cost profile.
type Profile struct {
	Startup float64
}

// Engine is one registered back-end.
type Engine struct {
	name string
	prof *Profile
}
