// Package relation is the corpus stand-in for the row/batch layer; the
// arena-escape and stream-rows rules match Batch, Relation, and RowSource
// by module path and type identity, never by variable name.
package relation

// Value is one cell.
type Value struct {
	S string
	I int64
}

// Row is one tuple of cells.
type Row []Value

// Schema names a relation's columns.
type Schema struct{ Cols []string }

// Relation is a fully materialized table.
type Relation struct {
	Sch  Schema
	Rows []Row
}

// Batch is a bounded view of rows whose backing arena is recycled on the
// producing stage's next Next call.
type Batch struct{ Rows []Row }

// Empty reports whether the batch carries no rows (end of stream).
func (b Batch) Empty() bool { return len(b.Rows) == 0 }

// RowSource is the pull-based streaming interface.
type RowSource interface {
	Schema() Schema
	Next() (Batch, error)
}
