// Package obs is the corpus stand-in for the flight recorder: just enough
// API surface (Recorder, Span, StartSpan/Begin/End) for the span-leak rule
// to resolve *obs.Span through go/types exactly as it does in the real
// tree. The corpus module shares the real module path, so the analyzer's
// type matching is byte-for-byte the same code path.
package obs

// Span is one recorded interval.
type Span struct {
	name  string
	ended bool
}

// End closes the span.
func (s *Span) End() { s.ended = true }

// Recorder hands out spans.
type Recorder struct{}

// StartSpan opens a child span.
func (r *Recorder) StartSpan(parent *Span, name, category string) *Span {
	_ = parent
	_ = category
	return &Span{name: name}
}

// Begin opens a root span.
func (r *Recorder) Begin(name string) *Span { return &Span{name: name} }
