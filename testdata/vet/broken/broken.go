// Package broken does not type-check: mkvet must distinguish a broken
// tree (exit 2) from a dirty one (exit 1).
package broken

// Boom returns the wrong type on purpose.
func Boom() int {
	return "not an int"
}
