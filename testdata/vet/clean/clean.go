// Package clean violates nothing: mkvet must exit 0 here.
package clean

// Add is as deterministic as it gets.
func Add(a, b int) int { return a + b }
