// Package musketeer is a from-scratch Go reproduction of "Musketeer: all
// for one, one for all in data processing systems" (EuroSys 2015): a
// workflow manager that decouples front-end workflow frameworks from
// back-end execution engines.
//
// Workflows written in any supported front-end (a HiveQL subset, the BEER
// DSL, a Pig Latin subset, the Gather-Apply-Scatter DSL, or the LINQ-style
// Lindi builder) are translated to a common DAG-of-operators intermediate
// representation,
// optimized, partitioned into jobs, mapped — manually or automatically via
// a calibrated cost function — onto seven back-end execution engines
// (Hadoop MapReduce, Spark, Naiad, PowerGraph, GraphChi, Metis, serial C),
// and executed. The engines are in-process simulations that really run the
// generated jobs over a simulated distributed filesystem while accounting
// makespan with per-engine performance profiles; see DESIGN.md for the
// substitution rationale.
//
// Quickstart:
//
//	m := musketeer.New(musketeer.EC2(16))
//	m.WriteInput("in/properties", propsRel)
//	m.WriteInput("in/prices", pricesRel)
//	wf, err := m.CompileHive(querySrc, catalog)
//	res, err := wf.Execute() // optimize, auto-map, run
//	out, err := m.ReadOutput("street_price")
package musketeer

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"musketeer/internal/analysis"
	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/beer"
	"musketeer/internal/frontends/gas"
	"musketeer/internal/frontends/hive"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/frontends/pig"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
)

// Re-exported front-end types.
type (
	// Catalog maps base-table names to DFS paths and schemas.
	Catalog = frontends.Catalog
	// Table is one catalogued base relation.
	Table = frontends.Table
	// GASConfig configures the Gather-Apply-Scatter front-end.
	GASConfig = gas.Config
	// LindiBuilder is the LINQ-style programmatic front-end.
	LindiBuilder = lindi.Builder
	// Relation is the tabular data model.
	Relation = relation.Relation
	// Schema describes a relation's columns.
	Schema = relation.Schema
	// Seconds is a simulated duration.
	Seconds = cluster.Seconds
	// History is the workflow-history store.
	History = core.History
	// Calibration is the feedback-calibrated rate & selectivity store
	// carried by a History (seeded from Table 1, updated after every run).
	Calibration = core.Calibration
	// CalibrationSnapshot is a versioned point-in-time copy of a
	// Calibration: per-engine seed vs learned rates and per-operator-class
	// selectivities.
	CalibrationSnapshot = core.CalibrationSnapshot
	// Partitioning is a workflow decomposed into engine-assigned jobs.
	Partitioning = core.Partitioning
	// PlanMode selects generated-code quality.
	PlanMode = engines.PlanMode
	// FlightRecorder is the per-run span recorder (see Result.Flight).
	FlightRecorder = obs.Recorder
	// TraceOptions configures Chrome trace_event export.
	TraceOptions = obs.TraceOptions
	// MetricsRegistry is the deployment-wide metrics store.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric.
	MetricsSnapshot = obs.Snapshot
	// WorkflowAccuracy compares predicted against measured makespans.
	WorkflowAccuracy = obs.WorkflowAccuracy
	// AccuracyLog accumulates estimator accuracy across executions.
	AccuracyLog = obs.AccuracyLog
	// AccuracySummary condenses an accuracy log.
	AccuracySummary = obs.AccuracySummary
	// RunLogger is the leveled structured run logger plumbed through the
	// scheduler, runner, and engines (see WithRunLog).
	RunLogger = obs.Logger
	// RunDigest is the retained summary of one execution (see Runs).
	RunDigest = obs.RunDigest
	// RunJobDigest summarizes one scheduled job of a retained execution.
	RunJobDigest = obs.RunJobDigest
	// RunRegistry is the bounded in-process registry of recent executions.
	RunRegistry = obs.RunRegistry
)

// LoadAccuracyLog reads an estimator-accuracy log saved by AccuracyLog.Save;
// a missing file yields an empty log.
func LoadAccuracyLog(path string) (*AccuracyLog, error) { return obs.LoadAccuracyLog(path) }

// Code-generation modes.
const (
	ModeOptimized = engines.ModeOptimized
	ModeNaive     = engines.ModeNaive
	ModeHand      = engines.ModeHand
)

// NewSchema builds a schema from "name:kind" specs.
func NewSchema(specs ...string) Schema { return relation.NewSchema(specs...) }

// LoadHistory reads a workflow-history store saved by History.Save;
// a missing file yields an empty store.
func LoadHistory(path string) (*History, error) { return core.LoadHistory(path) }

// NewLindiBuilder starts a LINQ-style Lindi workflow over the catalog.
func NewLindiBuilder(cat Catalog) *LindiBuilder { return lindi.NewBuilder(cat) }

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema Schema) *Relation { return relation.New(name, schema) }

// Musketeer is a deployment: a cluster, shared storage, the engine
// registry, the job scheduler, and accumulated workflow history.
//
// A deployment is safe for concurrent use: every execution runs in its own
// DFS session namespace, and all executions share the deployment
// scheduler's admission control, so concurrent workflows compete for the
// same bounded worker budget instead of oversubscribing the host.
type Musketeer struct {
	fs      *dfs.DFS
	cluster *cluster.Cluster
	engines map[string]*engines.Engine
	history *core.History
	chaos   *chaos.Plan
	sched   *sched.Scheduler
	workers int
	retries int
	runSeq  atomic.Int64
	// tracing makes every execution carry a flight recorder (Result.Flight);
	// off by default so instrumented hot paths stay allocation-free.
	tracing bool
	// columnar switches intra-run shuffles to the binary columnar wire
	// codec; sources, sinks, and golden traces stay TSV.
	columnar bool
	// metrics and accuracy are always on: counters and an estimator
	// track record are cheap and shared by every execution.
	metrics  *obs.Registry
	accuracy *obs.AccuracyLog
	// runs retains digests of the last N executions (always on: a digest is
	// a few hundred bytes; flight recorders are retained only when tracing).
	runs         *obs.RunRegistry
	runRetention int
	// logger is the deployment's run logger; nil (the default) disables
	// structured logging at zero cost.
	logger *obs.Logger
	// adaptiveWhile lets long WHILE loops re-plan mid-flight when observed
	// per-iteration spans diverge >2x from the prediction; off by default
	// so golden traces stay reproducible.
	adaptiveWhile bool
	// planCache memoizes partitionings across executions keyed on the
	// canonicalized IR (see WithPlanCache); nil (the default) disables it.
	planCache    *core.PlanCache
	planCacheCap int
}

// Option configures New.
type Option func(*Musketeer)

// EC2 deploys on n EC2 m1.xlarge nodes (the paper's 100-node cluster).
func EC2(n int) Option {
	return func(m *Musketeer) { m.cluster = cluster.EC2(n) }
}

// LocalCluster deploys on the paper's dedicated 7-node local cluster.
func LocalCluster(n int) Option {
	return func(m *Musketeer) { m.cluster = cluster.Local(n) }
}

// WithHistory installs an existing workflow-history store.
func WithHistory(h *core.History) Option {
	return func(m *Musketeer) { m.history = h }
}

// ChaosPlan is a deterministic fault-injection plan: whole-job crashes,
// per-task worker failures, slow nodes, and DFS read faults, all drawn from
// a seed. See chaos.Plan for the knobs.
type ChaosPlan = chaos.Plan

// WithChaos installs a fault-injection plan. Every injected fault is a pure
// function of (seed, job, attempt), so two runs with the same seed produce
// identical faults, makespans, and traces regardless of scheduling
// interleavings. Engines recover per their fault-tolerance mechanism
// (Table 3): Hadoop re-runs tasks, Spark recomputes lineage,
// Naiad/PowerGraph roll back to checkpoints, single-machine systems
// restart. The cost estimator adds each engine's expected recovery cost to
// fragment scores, so automatic mapping prefers engines that fail cheaply.
func WithChaos(p *ChaosPlan) Option {
	return func(m *Musketeer) { m.chaos = p }
}

// DefaultChaos is a convenience plan exercising every injection point at
// the given fault rate (expected worker failures per simulated hour), with
// speculative re-execution enabled at 1.5x predicted cost.
func DefaultChaos(seed int64, faultsPerHour float64) *ChaosPlan {
	return chaos.Default(seed, faultsPerHour)
}

// WithFaults injects worker failures with the given cluster-wide mean time
// between failures (simulated seconds). Engines recover per their fault-
// tolerance mechanism (Table 3): Hadoop re-runs tasks, Spark recomputes
// lineage, Naiad/PowerGraph roll back to checkpoints, single-machine
// systems restart. Kept as a shorthand for WithChaos with only MTBF set.
func WithFaults(mtbfSeconds float64, seed int64) Option {
	return func(m *Musketeer) {
		m.chaos = &chaos.Plan{MTBFSeconds: mtbfSeconds, Seed: seed}
	}
}

// WithConcurrency bounds how many back-end jobs the deployment runs at
// once across every concurrent workflow execution (admission control).
// n <= 0 selects the scheduler default, max(4, GOMAXPROCS).
func WithConcurrency(n int) Option {
	return func(m *Musketeer) { m.workers = n }
}

// WithRetries re-submits jobs killed by transient fault injection up to n
// times each before the failure is propagated (zero disables retry).
func WithRetries(n int) Option {
	return func(m *Musketeer) { m.retries = n }
}

// WithTracing makes every execution record a flight recorder of
// hierarchical spans — workflow, compile/optimize/partition-search,
// analyze, schedule, per-attempt job spans, engine phases, and WHILE
// iterations — exposed on Result.Flight and exportable as Chrome
// trace_event JSON. Tracing is per-run: each execution gets its own
// recorder. Off by default; the disabled path adds zero allocations.
func WithTracing() Option {
	return func(m *Musketeer) { m.tracing = true }
}

// WithColumnarShuffles makes engines write intra-run shuffle files — job
// outputs another job reads — in the binary columnar wire format instead of
// TSV, typically moving well under the text volume for the same rows.
// Workflow sources, published sinks, and loop temporaries stay TSV, so
// user-visible data and golden traces are unchanged. The cost estimator
// scales shuffle-edge PULL/PUSH volumes by relation.DefaultColumnarRatio,
// so automatic mapping reacts to the cheaper data movement.
func WithColumnarShuffles() Option {
	return func(m *Musketeer) { m.columnar = true }
}

// WithAdaptiveWhile lets WHILE drivers re-plan their loop body mid-run:
// when an iteration's measured makespan diverges more than 2x from the
// estimate (in either direction), the driver re-stats the loop inputs,
// re-runs the partition search under the current calibration state, and
// switches plans for the remaining iterations (at most three re-plans per
// loop). Off by default so iteration traces stay identical run to run.
func WithAdaptiveWhile() Option {
	return func(m *Musketeer) { m.adaptiveWhile = true }
}

// WithRunLog installs a structured run logger on the deployment: every
// admission, dispatch, retry, fault recovery, speculation, and calibration
// update emits one leveled, machine-parseable record through the given
// slog handler, scoped with run/job/attempt attributes. Use
// slog.NewJSONHandler for log pipelines or slog.NewTextHandler for a
// human tail. A nil handler (the default) disables logging at zero cost —
// the disabled path allocates nothing.
func WithRunLog(h slog.Handler) Option {
	return func(m *Musketeer) { m.logger = obs.NewLogger(h) }
}

// WithRunRetention bounds how many execution digests the deployment
// retains for /debug/runs (default obs.DefaultRunRetention).
func WithRunRetention(n int) Option {
	return func(m *Musketeer) { m.runRetention = n }
}

// WithPlanCache memoizes up to n partitionings across executions, keyed on
// the canonicalized IR (independent of relation names and operator
// insertion order) and the engine set, and pinned to the calibration
// version. A repeated submission of a semantically identical workflow
// skips compile, optimize, and the partition search entirely and replays
// the cached plan onto its own DAG; calibration updates invalidate stale
// entries on lookup. The cache exports plan_cache_{hit,miss,evict}_total
// on the deployment metrics. n <= 0 disables caching (the default).
func WithPlanCache(n int) Option {
	return func(m *Musketeer) { m.planCacheCap = n }
}

// WithTransientFailures kills individual job attempts outright with the
// given probability (deterministic per seed, job, and attempt). Combine
// with WithRetries to exercise the scheduler's re-submission path; without
// a retry budget the first killed attempt fails the workflow.
func WithTransientFailures(prob float64, seed int64) Option {
	return func(m *Musketeer) {
		if m.chaos == nil {
			m.chaos = &chaos.Plan{}
		}
		m.chaos.JobCrashProb = prob
		m.chaos.Seed = seed
	}
}

// New creates a deployment. Default: the 7-node local cluster, all seven
// engines registered, empty history.
func New(opts ...Option) *Musketeer {
	m := &Musketeer{
		fs:       dfs.New(),
		cluster:  cluster.Local(7),
		engines:  engines.Registry(),
		history:  core.NewHistory(),
		metrics:  obs.NewRegistry(),
		accuracy: obs.NewAccuracyLog(),
	}
	for _, o := range opts {
		o(m)
	}
	m.runs = obs.NewRunRegistry(m.runRetention)
	m.planCache = core.NewPlanCache(m.planCacheCap, m.metrics)
	m.sched = sched.New(sched.Options{
		Workers:             m.workers,
		MaxRetries:          m.retries,
		Retryable:           engines.IsTransient,
		Metrics:             m.metrics,
		Log:                 m.logger,
		SpeculativeMultiple: m.chaos.SpecMultiple(),
	})
	return m
}

// Metrics returns the deployment-wide metrics registry: scheduler and
// engine counters and latency histograms accumulated across every
// execution.
func (m *Musketeer) Metrics() *MetricsRegistry { return m.metrics }

// Accuracy returns the deployment's estimator-accuracy log: one
// predicted-vs-measured record per executed workflow.
func (m *Musketeer) Accuracy() *AccuracyLog { return m.accuracy }

// Runs returns the deployment's run registry: bounded digests of the last
// N executions (per-phase rollups, predicted-vs-measured accuracy,
// chaos/recovery counts, chosen engine per fragment).
func (m *Musketeer) Runs() *RunRegistry { return m.runs }

// DebugHandler returns the deployment's debug-plane HTTP handler:
// /metrics (Prometheus text exposition), /debug/runs, /debug/runs/<id>,
// /debug/runs/<id>/trace (Chrome trace JSON, traced runs only), /healthz,
// and the stock /debug/pprof endpoints. Serve it on a private listener
// (`musketeer -debug-addr :6060`) or mount it in tests with httptest.
func (m *Musketeer) DebugHandler() http.Handler {
	return obs.DebugMux(m.metrics, m.runs)
}

// startRun opens a flight recorder for one execution (nil when tracing is
// off — every instrumentation site downstream then no-ops for free).
func (m *Musketeer) startRun() *obs.Recorder {
	if !m.tracing {
		return nil
	}
	return obs.NewRecorder()
}

// WriteInput stages a relation in the shared DFS.
func (m *Musketeer) WriteInput(path string, rel *Relation) error {
	return m.fs.WriteRelation(path, rel)
}

// ReadOutput fetches a workflow output relation from the DFS.
func (m *Musketeer) ReadOutput(name string) (*Relation, error) {
	return m.fs.ReadRelation(name)
}

// History returns the deployment's workflow-history store.
func (m *Musketeer) History() *core.History { return m.history }

// Calibration returns the deployment's feedback calibration state: the
// per-engine rates and per-operator-class selectivities learned from
// executed workflows, consulted by the cost model on every estimate. It
// lives on (and persists with) the history store.
func (m *Musketeer) Calibration() *Calibration { return m.history.Calibration() }

// EngineNames lists the registered back-ends.
func (m *Musketeer) EngineNames() []string {
	var names []string
	for n := range m.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Workflow is a compiled workflow bound to a deployment. A compiled
// workflow may be executed from several goroutines at once: the IR is
// optimized exactly once, executions never mutate the shared DAG, and each
// gets its own DFS session namespace.
type Workflow struct {
	m   *Musketeer
	dag *ir.DAG
	// Mode selects generated-code quality (default ModeOptimized).
	Mode PlanMode

	// tenant scopes every execution's DFS session under the named tenant's
	// namespace ("" = the deployment root; see BindTenant).
	tenant string

	optOnce sync.Once
	optN    int
	// compileWall is how long front-end translation took; traced
	// executions replay it as a "compile" span (compilation happens before
	// any per-run recorder exists).
	compileWall time.Duration
}

// newWorkflow wraps a freshly compiled DAG, recording the front-end
// translation time and the deployment's compile counter.
func (m *Musketeer) newWorkflow(dag *ir.DAG, compileStart time.Time) *Workflow {
	m.metrics.Counter("workflows_compiled_total").Add(1)
	return &Workflow{m: m, dag: dag, compileWall: time.Since(compileStart)}
}

// CompileHive translates a HiveQL-subset workflow.
func (m *Musketeer) CompileHive(src string, cat Catalog) (*Workflow, error) {
	start := time.Now()
	dag, err := hive.Parse(src, cat)
	if err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// CompileBEER translates a BEER workflow.
func (m *Musketeer) CompileBEER(src string, cat Catalog) (*Workflow, error) {
	start := time.Now()
	dag, err := beer.Parse(src, cat)
	if err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// CompileGAS translates a Gather-Apply-Scatter program.
func (m *Musketeer) CompileGAS(src string, cat Catalog, cfg GASConfig) (*Workflow, error) {
	start := time.Now()
	dag, err := gas.Parse(src, cat, cfg)
	if err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// CompilePig translates a Pig Latin-subset workflow.
func (m *Musketeer) CompilePig(src string, cat Catalog) (*Workflow, error) {
	start := time.Now()
	dag, err := pig.Parse(src, cat)
	if err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// CompileLindi finalizes a Lindi builder into a workflow.
func (m *Musketeer) CompileLindi(b *LindiBuilder) (*Workflow, error) {
	start := time.Now()
	dag, err := b.Build()
	if err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// FromDAG wraps a hand-built IR DAG (validating it first).
func (m *Musketeer) FromDAG(dag *ir.DAG) (*Workflow, error) {
	start := time.Now()
	if err := dag.Validate(); err != nil {
		return nil, err
	}
	return m.newWorkflow(dag, start), nil
}

// DAG exposes the workflow's intermediate representation.
func (w *Workflow) DAG() *ir.DAG { return w.dag }

// BindTenant scopes the workflow's executions to the named tenant: inputs
// resolve from, and outputs publish to, the tenant's private DFS namespace
// instead of the deployment root. The name must be a valid namespace
// segment (dfs.ValidateName). Bind before the first execution.
func (w *Workflow) BindTenant(name string) error {
	if err := dfs.ValidateName(name); err != nil {
		return err
	}
	w.tenant = name
	return nil
}

// sessionFS is the DFS view the workflow's executions resolve against: the
// deployment root, or the bound tenant's namespace.
func (w *Workflow) sessionFS() *dfs.DFS {
	if w.tenant == "" {
		return w.m.fs
	}
	return w.m.fs.Namespace(dfs.TenantRoot + "/" + w.tenant)
}

// TenantFS returns a DFS view scoped to the named tenant's namespace, for
// staging inputs and reading outputs on a tenant's behalf (the serve API's
// storage plane). The name is validated first.
func (m *Musketeer) TenantFS(name string) (*dfs.DFS, error) {
	return m.fs.TenantView(name)
}

// Report is the workflow analyzer's full diagnostic report.
type Report = analysis.Report

// Check runs the multi-pass workflow analyzer against the deployment's
// registered engines and returns the full report — warnings included.
// Compilation already fails on error-severity diagnostics; Check is how
// callers (and the `musketeer check` subcommand) surface the rest: dead
// operators, suspicious loops, redundant shuffles.
func (w *Workflow) Check() *Report {
	return analysis.AnalyzeWithEngines(w.dag, w.standardEngines())
}

// Optimize applies the IR rewrite rules; returns the number of rewrites.
// The rules run once per workflow — repeated (or concurrent) calls return
// the first invocation's count without touching the DAG again.
func (w *Workflow) Optimize() int {
	w.optOnce.Do(func() { w.optN = core.Optimize(w.dag) })
	return w.optN
}

// estimator builds a fresh estimator against the staged inputs. When a
// chaos plan is installed, fragment scores include each engine's expected
// fault-recovery cost, so automatic mapping reacts to the fault rate.
func (w *Workflow) estimator() (*core.Estimator, error) {
	est, err := core.NewEstimator(w.dag, w.sessionFS(), w.m.cluster, w.m.history)
	if err != nil {
		return nil, err
	}
	est = est.WithChaos(w.m.chaos)
	if w.m.columnar {
		est = est.WithShuffleCodec(relation.DefaultColumnarRatio)
	}
	return est, nil
}

// Plan partitions the workflow and picks back-ends automatically
// (paper §5.2): the cheapest feasible partitioning over all engines
// Musketeer generates code for.
func (w *Workflow) Plan() (*Partitioning, error) {
	est, err := w.estimator()
	if err != nil {
		return nil, err
	}
	part, err := core.AutoMap(w.dag, est, w.standardEngines())
	if err != nil {
		return nil, err
	}
	w.recordSearch(est, nil)
	return part, nil
}

// PlanFor partitions the workflow for one explicitly chosen back-end.
func (w *Workflow) PlanFor(engine string) (*Partitioning, error) {
	eng, ok := w.m.engines[engine]
	if !ok {
		return nil, fmt.Errorf("musketeer: unknown engine %q", engine)
	}
	est, err := w.estimator()
	if err != nil {
		return nil, err
	}
	part, err := core.MapTo(w.dag, est, eng)
	if err != nil {
		return nil, err
	}
	w.recordSearch(est, nil)
	return part, nil
}

// recordSearch publishes the partition search's work — candidate fragments
// scored versus memo-table hits — to the deployment metrics and, when
// tracing, the search span.
func (w *Workflow) recordSearch(est *core.Estimator, sp *obs.Span) {
	explored, hits := est.SearchStats()
	w.m.metrics.Counter("partition_candidates_explored_total").Add(explored)
	w.m.metrics.Counter("partition_memo_hits_total").Add(hits)
	sp.SetInt("candidates_explored", explored)
	sp.SetInt("memo_hits", hits)
}

// planTraced runs the partition search under a "partition-search" span.
// engine == "" auto-maps over every registered engine; otherwise the search
// is restricted to the named back-end.
func (w *Workflow) planTraced(rec *obs.Recorder, parent *obs.Span, engine string) (*Partitioning, error) {
	sp := rec.StartSpan(parent, "partition-search", "pipeline")
	defer sp.End()
	est, err := w.estimator()
	if err != nil {
		return nil, err
	}
	var part *Partitioning
	if engine == "" {
		part, err = core.AutoMap(w.dag, est, w.standardEngines())
	} else {
		eng, ok := w.m.engines[engine]
		if !ok {
			return nil, fmt.Errorf("musketeer: unknown engine %q", engine)
		}
		part, err = core.MapTo(w.dag, est, eng)
	}
	if err != nil {
		return nil, err
	}
	sp.SetInt("jobs", int64(len(part.Jobs)))
	w.recordSearch(est, sp)
	return part, nil
}

// PlanUnmerged builds the per-operator (merging disabled) partitioning for
// a back-end — the paper's §6.5 ablation and profiling mode.
func (w *Workflow) PlanUnmerged(engine string) (*Partitioning, error) {
	eng, ok := w.m.engines[engine]
	if !ok {
		return nil, fmt.Errorf("musketeer: unknown engine %q", engine)
	}
	est, err := w.estimator()
	if err != nil {
		return nil, err
	}
	return core.PerOperatorPartitioning(w.dag, est, eng)
}

func (w *Workflow) standardEngines() []*engines.Engine {
	var engs []*engines.Engine
	for _, e := range engines.StandardEngines() {
		if reg, ok := w.m.engines[e.Name()]; ok {
			engs = append(engs, reg)
		}
	}
	return engs
}

// Result reports one workflow execution.
type Result struct {
	// Makespan is the simulated end-to-end time (critical path).
	Makespan Seconds
	// SumJobTime is aggregate per-job time (resource-efficiency metric).
	SumJobTime Seconds
	// Jobs are the individual back-end job executions.
	Jobs []*engines.RunResult
	// OOM reports a memory-capacity blowout on some job.
	OOM bool
	// Partitioning is the plan that ran.
	Partitioning *Partitioning
	// Namespace is the execution's DFS session prefix; intermediates and
	// loop temporaries live under it. Workflow outputs are additionally
	// published to the deployment root for ReadOutput.
	Namespace string
	// Flight is the execution's span recorder — nil unless the deployment
	// was built WithTracing. Export with Flight.WriteChromeTrace.
	Flight *FlightRecorder
	// Accuracy compares the planner's predicted per-job costs and critical
	// path against what this execution measured.
	Accuracy *WorkflowAccuracy
	// RunID addresses this execution's digest in the deployment's run
	// registry (Runs, /debug/runs/<id>).
	RunID string
	// PlanCacheHit reports that the execution replayed a cached plan
	// instead of compiling, optimizing, and searching (see WithPlanCache).
	PlanCacheHit bool
}

// Run executes a previously computed partitioning with no cancellation
// deadline.
func (w *Workflow) Run(part *Partitioning) (*Result, error) {
	//mkvet:ignore context-discipline public non-ctx convenience API; RunCtx is the primary entry point
	return w.RunCtx(context.Background(), part)
}

// RunCtx executes a previously computed partitioning inside a fresh
// execution session: a private DFS namespace holding the run's
// intermediates, outputs, and loop temporaries, so concurrent executions
// of the same (or different) workflows never collide. Inputs are linked
// into the session (metadata only, no data movement) and the workflow's
// sink relations are published back to the deployment root on success.
// Cancelling ctx aborts in-flight jobs and skips queued ones.
func (w *Workflow) RunCtx(ctx context.Context, part *Partitioning) (*Result, error) {
	rec := w.m.startRun()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	defer root.End()
	return w.runSession(ctx, part, rec, root)
}

// workflowName labels an execution by its sink relations.
func (w *Workflow) workflowName() string {
	var sinks []string
	for _, s := range w.dag.Sinks() {
		sinks = append(sinks, s.Out)
	}
	sort.Strings(sinks)
	return strings.Join(sinks, ",")
}

// runSession executes a partitioning inside a fresh DFS session namespace
// beneath an (optional) workflow root span. Every execution — success or
// failure — leaves a digest in the deployment's run registry and, when a
// run logger is installed, a workflow_start/workflow_complete (or
// workflow_failed) event pair bracketing the job-level events.
func (w *Workflow) runSession(ctx context.Context, part *Partitioning, rec *obs.Recorder, root *obs.Span) (*Result, error) {
	base := w.sessionFS()
	ns := fmt.Sprintf("__run/%d", w.m.runSeq.Add(1))
	// nsFull is the namespace as seen from the deployment root; for tenant
	// sessions it carries the tenant prefix ("" tenant leaves it as ns, so
	// untenanted traces and digests are unchanged).
	nsFull := ns
	if p := base.Prefix(); p != "" {
		nsFull = p + "/" + ns
	}
	root.SetStr("namespace", nsFull)
	name := w.workflowName()
	start := time.Now()
	log := w.m.logger.WithRun(nsFull)
	log.Info("workflow_start").Str("workflow", name).Int("jobs", int64(len(part.Jobs))).Emit()
	digest := func(status string, res *core.WorkflowResult, runErr error) string {
		d := obs.RunDigest{
			Workflow:  name,
			Namespace: nsFull,
			Tenant:    w.tenant,
			Start:     start,
			WallMS:    time.Since(start).Seconds() * 1e3,
			Status:    status,
			Phases:    obs.PhaseRates(rec),
		}
		if runErr != nil {
			d.Err = runErr.Error()
		}
		if res != nil {
			d.MakespanS = float64(res.Makespan)
			d.OOM = res.OOM
			if res.Accuracy != nil {
				d.PredictedS = res.Accuracy.PredictedMakespanS
				d.MakespanError = res.Accuracy.MakespanError
				for _, j := range res.Accuracy.Jobs {
					d.Jobs = append(d.Jobs, obs.RunJobDigest{
						Job: j.Job, Engine: j.Engine,
						PredictedS: j.PredictedS, ActualS: j.ActualS, Error: j.Error,
					})
				}
			}
			for _, jr := range res.Jobs {
				d.Faults += jr.Failures
				d.RecoveryS += float64(jr.Recovery)
				d.Checkpoints += jr.Checkpoints
				d.DFSRetries += jr.DFSRetries
			}
		}
		return w.m.runs.Record(d, rec)
	}
	for _, op := range w.dag.Ops {
		if op.Type != ir.OpInput {
			continue
		}
		path := engines.InputPath(op)
		if err := base.Copy(path, ns+"/"+path); err != nil {
			err = fmt.Errorf("musketeer: staging input %q into session: %w", op.Out, err)
			w.m.metrics.Counter("workflows_failed_total").Add(1)
			log.Error("workflow_failed").Str("workflow", name).Err(err).Emit()
			digest("failed", nil, err)
			return nil, err
		}
	}
	shuffleCodec := relation.CodecTSV
	if w.m.columnar {
		shuffleCodec = relation.CodecColumnar
	}
	r := &core.Runner{
		Ctx:           engines.RunContext{DFS: base.Namespace(ns), Cluster: w.m.cluster, Chaos: w.m.chaos, ShuffleCodec: shuffleCodec},
		History:       w.m.history,
		Mode:          w.Mode,
		Sched:         w.m.sched,
		Rec:           rec,
		Span:          root,
		Metrics:       w.m.metrics,
		Accuracy:      w.m.accuracy,
		Log:           log,
		AdaptiveWhile: w.m.adaptiveWhile,
	}
	res, err := r.ExecuteCtx(ctx, w.dag, part)
	if err != nil {
		w.m.metrics.Counter("workflows_failed_total").Add(1)
		log.Error("workflow_failed").Str("workflow", name).Err(err).Emit()
		digest("failed", nil, err)
		return nil, err
	}
	for _, sink := range w.dag.Sinks() {
		if err := base.Copy(ns+"/"+sink.Out, sink.Out); err != nil {
			err = fmt.Errorf("musketeer: publishing output %q: %w", sink.Out, err)
			w.m.metrics.Counter("workflows_failed_total").Add(1)
			log.Error("workflow_failed").Str("workflow", name).Err(err).Emit()
			digest("failed", res, err)
			return nil, err
		}
	}
	w.m.metrics.Counter("workflows_completed_total").Add(1)
	runID := digest("ok", res, nil)
	log.Info("workflow_complete").
		Str("workflow", name).
		Str("run_id", runID).
		Float("makespan_s", float64(res.Makespan)).
		Float("wall_ms", time.Since(start).Seconds()*1e3).
		Emit()
	return &Result{
		Makespan:     res.Makespan,
		SumJobTime:   res.SumJobTime,
		Jobs:         res.Jobs,
		OOM:          res.OOM,
		Partitioning: part,
		Namespace:    nsFull,
		Flight:       rec,
		Accuracy:     res.Accuracy,
		RunID:        runID,
	}, nil
}

// Execute optimizes, auto-plans and runs the workflow.
func (w *Workflow) Execute() (*Result, error) {
	//mkvet:ignore context-discipline public non-ctx convenience API; ExecuteCtx is the primary entry point
	return w.ExecuteCtx(context.Background())
}

// ExecuteCtx optimizes, auto-plans and runs the workflow under ctx.
func (w *Workflow) ExecuteCtx(ctx context.Context) (*Result, error) {
	return w.executeTraced(ctx, "")
}

// ExecuteOn optimizes, plans for one engine, and runs.
func (w *Workflow) ExecuteOn(engine string) (*Result, error) {
	//mkvet:ignore context-discipline public non-ctx convenience API; ExecuteOnCtx is the primary entry point
	return w.ExecuteOnCtx(context.Background(), engine)
}

// ExecuteOnCtx optimizes, plans for one engine, and runs under ctx.
func (w *Workflow) ExecuteOnCtx(ctx context.Context, engine string) (*Result, error) {
	return w.executeTraced(ctx, engine)
}

// planEngines resolves the candidate engine set: every registered standard
// engine for auto-mapping, or the one named back-end.
func (w *Workflow) planEngines(engine string) ([]*engines.Engine, error) {
	if engine == "" {
		return w.standardEngines(), nil
	}
	eng, ok := w.m.engines[engine]
	if !ok {
		return nil, fmt.Errorf("musketeer: unknown engine %q", engine)
	}
	return []*engines.Engine{eng}, nil
}

// executeTraced is the full traced pipeline: compile (replayed from the
// front-end's measured translation time), optimize, partition-search, then
// the session run. engine == "" auto-maps.
//
// With a plan cache installed, the optimized DAG's canonical hash is
// checked first: a hit replays the cached partitioning and runs it under a
// bare workflow span — no compile, optimize, or partition-search spans, as
// those phases genuinely did not happen — while a miss runs the full
// pipeline and stores the freshly searched plan for the next submission.
//
// Entries are tagged with the calibration version read *after* the run:
// execution feedback (ObserveRun/ObserveSelectivity) bumps the version
// during every session, so a pre-run tag would be stale the moment the run
// finished and the cache would never hit. Tagging post-run — and
// re-tagging after each hit's run — pins the entry to "calibration has not
// changed since this plan last ran", which only foreign feedback (another
// workflow's run, a calibration load) breaks.
func (w *Workflow) executeTraced(ctx context.Context, engine string) (*Result, error) {
	var cacheKey string
	if pc := w.m.planCache; pc != nil {
		engs, err := w.planEngines(engine)
		if err != nil {
			return nil, err
		}
		// Optimize is deterministic and idempotent (optOnce), so hashing the
		// optimized DAG keys the cache on what the partition search actually
		// sees; recipes then replay onto optimized DAGs of later submissions.
		w.Optimize()
		cacheKey = core.PlanKey(w.dag, engs)
		calVersion := w.m.history.Calibration().Version()
		if part, ok := pc.Lookup(cacheKey, w.dag, calVersion, w.m.engines); ok {
			rec := w.m.startRun()
			root := rec.StartSpan(nil, "workflow", "pipeline")
			defer root.End()
			root.SetStr("plan_cache", "hit")
			res, err := w.runSession(ctx, part, rec, root)
			if res != nil {
				res.PlanCacheHit = true
			}
			if err == nil {
				pc.Touch(cacheKey, w.m.history.Calibration().Version())
			}
			return res, err
		}
	}
	rec := w.m.startRun()
	root := rec.StartSpan(nil, "workflow", "pipeline")
	defer root.End()
	// Compilation happened before this recorder existed; record it as a
	// zero-width structural span carrying the measured wall time.
	csp := rec.StartSpan(root, "compile", "pipeline")
	csp.SetFloat("wall_ms", w.compileWall.Seconds()*1e3)
	csp.End()
	osp := rec.StartSpan(root, "optimize", "pipeline")
	n := w.Optimize()
	osp.SetInt("rewrites", int64(n))
	osp.End()
	part, err := w.planTraced(rec, root, engine)
	if err != nil {
		return nil, err
	}
	res, err := w.runSession(ctx, part, rec, root)
	if pc := w.m.planCache; pc != nil && err == nil {
		pc.Store(cacheKey, w.dag, w.m.history.Calibration().Version(), part)
	}
	return res, err
}

// Explain renders the partitioning with the cost model's reasoning: per
// job, the estimated data volumes, iteration counts, recorded runtimes, and
// the per-engine cost comparison that led to the choice.
func (w *Workflow) Explain(part *Partitioning) (string, error) {
	est, err := w.estimator()
	if err != nil {
		return "", err
	}
	return core.Explain(part, est, w.standardEngines()), nil
}

// GeneratedCode renders the code Musketeer generates for every job of a
// partitioning, in the target engines' languages (paper §4.3).
func (w *Workflow) GeneratedCode(part *Partitioning) (string, error) {
	var b strings.Builder
	for i, job := range part.Jobs {
		plan, err := job.Engine.Plan(job.Frag, w.Mode)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(plan.Source)
	}
	return b.String(), nil
}
