package musketeer_test

import (
	"fmt"
	"log"

	"musketeer"
	"musketeer/internal/relation"
)

// Example reproduces the paper's Listing 1 workflow end to end: compile the
// Hive query, let Musketeer choose the back-end, run it, and read the
// result from the shared filesystem.
func Example() {
	m := musketeer.New(musketeer.LocalCluster(7))

	props := musketeer.NewRelation("properties", musketeer.NewSchema("id:int", "street:string", "town:string"))
	prices := musketeer.NewRelation("prices", musketeer.NewSchema("id:int", "price:float"))
	rows := []struct {
		id     int64
		street string
		price  float64
	}{
		{1, "mill road", 350000},
		{2, "mill road", 410000},
		{3, "high street", 275000},
	}
	for _, r := range rows {
		props.MustAppend(relation.Row{relation.Int(r.id), relation.Str(r.street), relation.Str("cambridge")})
		prices.MustAppend(relation.Row{relation.Int(r.id), relation.Float(r.price)})
	}
	check(m.WriteInput("in/properties", props))
	check(m.WriteInput("in/prices", prices))

	wf, err := m.CompileHive(`
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) AS max_price FROM id_price GROUP BY street AND town AS street_price;
`, musketeer.Catalog{
		"properties": {Path: "in/properties", Schema: props.Schema},
		"prices":     {Path: "in/prices", Schema: prices.Schema},
	})
	check(err)

	_, err = wf.Execute()
	check(err)

	out, err := m.ReadOutput("street_price")
	check(err)
	out.SortRows()
	for _, row := range out.Rows {
		fmt.Printf("%s, %s: %.0f\n", row[0].S, row[1].S, row[2].F)
	}
	// Output:
	// high street, cambridge: 275000
	// mill road, cambridge: 410000
}

// ExampleWorkflow_ExecuteOn forces the same workflow onto an explicitly
// chosen back-end — the "users can explicitly target back-end execution
// engines" path.
func ExampleWorkflow_ExecuteOn() {
	m := musketeer.New(musketeer.EC2(16))
	rel := musketeer.NewRelation("t", musketeer.NewSchema("k:int", "v:float"))
	for i := int64(0); i < 10; i++ {
		rel.MustAppend(relation.Row{relation.Int(i % 2), relation.Float(float64(i))})
	}
	check(m.WriteInput("in/t", rel))

	wf, err := m.CompileBEER(`sums = AGG SUM(v) AS total FROM t GROUP BY k;`,
		musketeer.Catalog{"t": {Path: "in/t", Schema: rel.Schema}})
	check(err)
	res, err := wf.ExecuteOn("hadoop")
	check(err)
	fmt.Printf("jobs: %d on %v\n", len(res.Jobs), res.Partitioning.Engines())

	out, err := m.ReadOutput("sums")
	check(err)
	out.SortRows()
	for _, row := range out.Rows {
		fmt.Printf("k=%d total=%.0f\n", row[0].I, row[1].F)
	}
	// Output:
	// jobs: 1 on [hadoop]
	// k=0 total=20
	// k=1 total=25
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
