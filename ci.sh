#!/bin/sh
# CI gate: vet, build, mkvet, full test suite, the suite again under the
# race detector, and the named behavioral gates. The race pass matters
# here — the kernels, TSV codecs, the exhaustive partitioner, the job
# scheduler, and the multi-tenant serve plane all shard work across
# goroutines, and concurrent workflow executions share the DFS state, the
# history store, and the estimator fragment cache — exactly the kind of
# state a race would corrupt silently (the concurrent-Execute stress tests
# only mean something under -race). mkvet (DESIGN.md §12) type-checks the
# whole module and proves the kernel invariants the paper's correctness
# story rests on: determinism taint from the kernel packages, span-leak
# freedom on every control-flow path, context discipline on the execution
# stack, lock discipline, scheduler-owned concurrency, batch-arena escape,
# and the migrated mklint rules (hot-path keys, engine profiles,
# stream-rows) — all resolved through go/types. Exit 1 means findings
# (the JSON report lands in mkvet-report.json for the workflow artifact),
# exit 2 means the tree does not even type-check; the analyzer's golden
# corpus tests run as part of the normal test suite.
#
# Usage: ./ci.sh [build|test|gates]
#
# With no argument every group runs in sequence (the full local gate).
# Naming a group runs just that slice — the GitHub workflow fans the three
# groups out as parallel jobs sharing one module cache:
#   build — go vet, go build, mkvet
#   test  — go test, go test -race (both with timeout guards)
#   gates — the named behavioral gates below
#
# Named gates (each one a stage so a regression names itself):
#   golden trace      — the two-engine workflow's span tree is byte-stable
#   chaos golden      — a seeded fault plan yields a byte-stable trace of
#                       retries, checkpoints, recoveries and speculation
#   alloc guard       — tracing off adds zero allocations to hot paths,
#                       and a disabled/level-gated run logger adds zero
#                       allocations to the event-emission sites
#   telemetry scrape  — the debug server (httptest over DebugHandler)
#                       serves /metrics and /debug/runs during chaotic
#                       concurrent executions; any malformed exposition
#                       line or lost run digest fails the stage
#   flaky gate        — the concurrency/scheduler/chaos suites 3x back to
#                       back with -shuffle=on: a test that only fails
#                       sometimes, or only in one order, fails here
#   service smoke     — the serve plane end to end over httptest: a
#                       two-engine workflow as one tenant, a plan-cached
#                       resubmission as another, status polling, and
#                       tenant-isolation probes — plain and under -race
#   benchmark gate    — fresh kernel benchmarks (time, allocs, and B/op) and
#   (mkbenchgate)       a fresh concurrency run vs the committed
#                       BENCH_*.json baselines (25%)
#   streaming bench   — mkbench -streaming end to end at reduced size: the
#                       fused pipeline, WHILE-body peak-memory comparison,
#                       and columnar codec must all still run and report
#   calibration gate  — a fresh 3-round mkbench -accuracy run must still
#                       converge (round-3 mean |makespan error| below
#                       round 1) and stay within 25% of the committed
#                       BENCH_accuracy.json per-workflow errors
#   service bench     — a fresh mkbench -service run (cold/hit/storm over
#                       the multi-tenant serve plane) vs the committed
#                       BENCH_service.json: plan-cache speedup, storm hit
#                       rate, and p99 latencies via mkbenchgate
#
# Every stage is timed; the summary prints per-stage wall seconds and the
# same numbers land in ci-stage-times-<group>.json for the workflow's
# artifact upload.
set -eu

cd "$(dirname "$0")"

GROUP="${1:-all}"
case "$GROUP" in
build | test | gates | all) ;;
*)
    echo "usage: ./ci.sh [build|test|gates]" >&2
    exit 2
    ;;
esac

STAGES=""
STAGE_JSON=""
stage() {
    name="$1"
    shift
    echo "== $name =="
    start=$(date +%s)
    "$@"
    secs=$(($(date +%s) - start))
    STAGES="$STAGES$(printf '%5ss  %s' "$secs" "$name")\n"
    if [ -n "$STAGE_JSON" ]; then
        STAGE_JSON="$STAGE_JSON,"
    fi
    STAGE_JSON="$STAGE_JSON{\"stage\":\"$name\",\"seconds\":$secs}"
}

bench_gate() {
    # -count=3: mkbenchgate keeps each benchmark's best run, so a loaded CI
    # host doesn't trip the threshold while a real slowdown (all three runs
    # slow) still does.
    go test -bench 'BenchmarkKernel|BenchmarkRowKey|BenchmarkSortRows|BenchmarkEncodeDecode|BenchmarkPartitionExhaustive|BenchmarkStream' \
        -benchmem -run '^$' -count=3 -timeout 20m \
        ./internal/exec ./internal/relation ./internal/bench > /tmp/mk_bench_fresh.txt
    go run ./cmd/mkbench -concurrency 2 -concurrency-json /tmp/mk_conc_fresh.json > /dev/null
    go run ./cmd/mkbenchgate \
        -kernels BENCH_kernels.json -bench /tmp/mk_bench_fresh.txt \
        -concurrency BENCH_concurrency.json -fresh-concurrency /tmp/mk_conc_fresh.json
}

mkvet_gate() {
    # On findings (exit 1) the machine-readable report is regenerated for
    # the workflow's artifact upload; a broken tree (exit 2) fails as-is.
    rc=0
    go run ./cmd/mkvet ./... || rc=$?
    if [ "$rc" -ne 0 ]; then
        go run ./cmd/mkvet -json ./... > mkvet-report.json 2>/dev/null || true
        echo "mkvet: report written to mkvet-report.json" >&2
        return "$rc"
    fi
}

streaming_gate() {
    # A reduced-size run keeps this stage fast; the acceptance thresholds
    # (fused speedup, peak-memory reduction, columnar wire ratio) are
    # asserted by TestStreamingReportThresholds against the committed
    # BENCH_streaming.json, which is regenerated at full size via
    # `go run ./cmd/mkbench -streaming -streaming-json BENCH_streaming.json`.
    go run ./cmd/mkbench -streaming -streaming-rows 50000 -streaming-json /tmp/mk_streaming_fresh.json
}

calibration_gate() {
    # The fresh run mirrors how the committed baseline is produced
    # (`go run ./cmd/mkbench -accuracy -rounds 3 -accuracy-json
    # BENCH_accuracy.json`) — learning trajectories depend on the case mix,
    # so gating on a subset would compare different experiments.
    go run ./cmd/mkbench -accuracy -rounds 3 \
        -accuracy-json /tmp/mk_accuracy_fresh.json > /dev/null
    go run ./cmd/mkbenchgate -accuracy BENCH_accuracy.json \
        -fresh-accuracy /tmp/mk_accuracy_fresh.json
}

service_gate() {
    # The fresh run mirrors the committed baseline's full size
    # (`go run ./cmd/mkbench -service -1 -service-json BENCH_service.json`):
    # the storm's latency distribution depends on the session count, so a
    # reduced fresh run would compare a different experiment.
    go run ./cmd/mkbench -service -1 -service-json /tmp/mk_service_fresh.json > /dev/null
    go run ./cmd/mkbenchgate -service BENCH_service.json \
        -fresh-service /tmp/mk_service_fresh.json
}

if [ "$GROUP" = all ] || [ "$GROUP" = build ]; then
    stage "go vet" go vet ./...
    stage "go build" go build ./...
    stage "mkvet" mkvet_gate
fi

if [ "$GROUP" = all ] || [ "$GROUP" = test ]; then
    stage "go test" go test -timeout 10m ./...
    stage "go test -race" go test -race -timeout 20m ./...
fi

if [ "$GROUP" = all ] || [ "$GROUP" = gates ]; then
    stage "golden trace" go test -count=1 -timeout 5m -run 'TestTraceGolden' .
    stage "chaos golden" go test -count=1 -timeout 5m -run 'TestChaosGolden' .
    stage "obs disabled-path alloc guard" go test -count=1 -timeout 5m -run 'TestDisabledPathAllocs' ./internal/obs
    stage "telemetry scrape gate" \
        go test -count=1 -timeout 5m -run 'TestDebugServerScrape|TestConcurrentScrapeDuringChaoticExecutes|TestPrometheusLinesValid|TestPrometheusByteStableAcrossScrapes' . ./internal/obs
    stage "flaky gate (3x shuffled concurrency/sched/chaos)" \
        go test -short -count=3 -shuffle=on -timeout 15m -run 'Concurrent|Sched|Chaos|Speculat|Fault|Recover' ./internal/sched ./internal/core ./internal/engines .
    stage "service smoke gate" go test -count=1 -timeout 5m -run 'TestServe' .
    stage "service smoke gate (-race)" go test -race -count=1 -timeout 10m -run 'TestServe' .
    stage "benchmark regression gate" bench_gate
    stage "streaming benchmark" streaming_gate
    stage "calibration convergence gate" calibration_gate
    stage "service benchmark gate" service_gate
fi

printf '{"group":"%s","stages":[%s]}\n' "$GROUP" "$STAGE_JSON" > "ci-stage-times-$GROUP.json"
echo "== stage times ($GROUP) =="
printf "$STAGES"
echo "stage timings written to ci-stage-times-$GROUP.json"
echo "CI OK ($GROUP)"
