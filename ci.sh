#!/bin/sh
# CI gate: vet, mklint, build, full test suite, then the suite again under
# the race detector. The race pass matters here — the kernels, TSV codecs,
# the exhaustive partitioner, and the job scheduler all shard work across
# goroutines, and concurrent workflow executions share the DFS state, the
# history store, and the estimator fragment cache — exactly the kind of
# state a race would corrupt silently (the concurrent-Execute stress tests
# only mean something under -race). mklint enforces the source-level
# invariants behind PR 1's kernel overhaul (no string row keys or clocks in
# internal/exec, every engine registers a profile) and PR 3's scheduler
# refactor (no bare go statements in internal/core or internal/engines —
# concurrency goes through internal/sched) and PR 4's observability layer
# (span-hygiene: every locally held StartSpan/Begin result must be ended in
# the same function); the analyzer's golden tests run as part of the normal
# test suite. Two PR 4 gates run explicitly so a regression names itself:
# the golden Chrome-trace test (the two-engine workflow's span tree is
# byte-stable) and the disabled-path allocation guard (tracing off must add
# zero allocations to the instrumented hot paths).
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== mklint =="
go run ./cmd/mklint ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== golden trace =="
go test -count=1 -run 'TestTraceGolden' .

echo "== obs disabled-path alloc guard =="
go test -count=1 -run 'TestDisabledPathAllocs' ./internal/obs

echo "== go test -race =="
go test -race ./...

echo "CI OK"
