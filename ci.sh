#!/bin/sh
# CI gate: vet, build, full test suite, then the suite again under the race
# detector. The race pass matters here — the kernels, TSV codecs, and the
# exhaustive partitioner all shard work across goroutines, and the shared
# maphash seed / estimator fragment cache are exactly the kind of state a
# race would corrupt silently.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
