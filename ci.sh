#!/bin/sh
# CI gate: vet, mklint, build, full test suite, then the suite again under
# the race detector. The race pass matters here — the kernels, TSV codecs,
# the exhaustive partitioner, and the job scheduler all shard work across
# goroutines, and concurrent workflow executions share the DFS state, the
# history store, and the estimator fragment cache — exactly the kind of
# state a race would corrupt silently (the concurrent-Execute stress tests
# only mean something under -race). mklint enforces the source-level
# invariants behind PR 1's kernel overhaul (no string row keys or clocks in
# internal/exec, every engine registers a profile) and PR 3's scheduler
# refactor (no bare go statements in internal/core or internal/engines —
# concurrency goes through internal/sched); the analyzer's golden tests run
# as part of the normal test suite.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== mklint =="
go run ./cmd/mklint ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
