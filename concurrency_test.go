package musketeer

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// countdownWorkflow compiles a WHILE workflow (counter decremented until
// the "pending" condition empties) whose driver loop exercises the
// per-session loop namespaces.
func countdownWorkflow(t *testing.T, m *Musketeer, start int64) *Workflow {
	t.Helper()
	counter := relation.New("counter", NewSchema("v:int"))
	counter.MustAppend(relation.Row{relation.Int(start)})
	counter.LogicalBytes = 1e9
	if err := m.WriteInput("in/counter", counter); err != nil {
		t.Fatal(err)
	}
	d := ir.NewDAG()
	in := d.AddInput("counter", "in/counter", relation.NewSchema("v:int"))
	body := ir.NewDAG()
	bIn := body.AddInput("counter", "", relation.NewSchema("v:int"))
	dec := body.Add(ir.OpArith, "next", ir.Params{Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(1)), AOp: ir.ArithSub}, bIn)
	body.Add(ir.OpSelect, "pending", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, dec)
	d.Add(ir.OpWhile, "done", ir.Params{
		Body: body, MaxIter: 100, CondRel: "pending",
		Carried: map[string]string{"counter": "next"},
	}, in)
	wf, err := m.FromDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

// TestConcurrentExecutesAreIsolated is the tentpole stress test: two
// goroutines execute the same compiled workflow on the same deployment.
// Each run must land in its own session namespace, and both must produce
// results byte-identical to a serial run. Run under -race.
func TestConcurrentExecutesAreIsolated(t *testing.T) {
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := wf.Execute()
	if err != nil {
		t.Fatal(err)
	}
	serialOut, err := m.ReadOutput("street_price")
	if err != nil {
		t.Fatal(err)
	}

	const runs = 2
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = wf.Execute()
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{serial.Namespace: true}
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Makespan != serial.Makespan {
			t.Errorf("run %d makespan %v != serial %v", i, results[i].Makespan, serial.Makespan)
		}
		ns := results[i].Namespace
		if ns == "" || seen[ns] {
			t.Fatalf("run %d namespace %q not unique among %v", i, ns, seen)
		}
		seen[ns] = true
		// Each session's own copy of the output must match the serial run.
		out, err := m.ReadOutput(ns + "/street_price")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if out.Fingerprint() != serialOut.Fingerprint() {
			t.Errorf("run %d output differs from serial run", i)
		}
	}
}

// TestConcurrentWhileDriversDoNotCollide runs a driver-looped WHILE
// workflow from two goroutines at once: loop state is staged per session,
// so neither run may observe the other's iteration state. Run under -race.
func TestConcurrentWhileDriversDoNotCollide(t *testing.T) {
	m := New(LocalCluster(7))
	wf := countdownWorkflow(t, m, 5)
	part, err := wf.PlanFor("hadoop") // no native iteration → driver loop
	if err != nil {
		t.Fatal(err)
	}
	serial, err := wf.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = wf.Run(part)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Makespan != serial.Makespan {
			t.Errorf("run %d makespan %v != serial %v", i, results[i].Makespan, serial.Makespan)
		}
		out, err := m.ReadOutput(results[i].Namespace + "/done")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := out.Rows[0][0].I; got != 0 {
			t.Errorf("run %d countdown ended at %d, want 0", i, got)
		}
	}
}

// TestCancelledExecuteStopsEarly: cancelling the context mid-workflow must
// abort the execution promptly, publish no outputs, and leak no goroutines.
func TestCancelledExecuteStopsEarly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := New(LocalCluster(7))
	cat := stageProperty(t, m)
	wf, err := m.CompileHive(maxPriceHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wf.ExecuteCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := m.ReadOutput("street_price"); err == nil {
		t.Error("cancelled execution published its output")
	}
	// The scheduler waits for in-flight jobs before returning, so the
	// goroutine count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestTransientFailureRetries: a deployment configured with transient job
// kills and a retry budget completes its workflows; the same fault model
// without retries surfaces the failure.
func TestTransientFailureRetries(t *testing.T) {
	run := func(opts ...Option) error {
		m := New(append([]Option{LocalCluster(7)}, opts...)...)
		cat := stageProperty(t, m)
		wf, err := m.CompileHive(maxPriceHive, cat)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wf.ExecuteOn("hadoop"); err != nil {
			return err
		}
		out, err := m.ReadOutput("street_price")
		if err != nil {
			return err
		}
		if out.NumRows() != 2 {
			return fmt.Errorf("rows = %d", out.NumRows())
		}
		return nil
	}
	if err := run(WithTransientFailures(0.5, 11), WithRetries(20)); err != nil {
		t.Errorf("with retries: %v", err)
	}
	if err := run(WithTransientFailures(0.5, 11)); err == nil {
		t.Error("without retries the transient failure should surface")
	}
}
