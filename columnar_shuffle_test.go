package musketeer

import (
	"bytes"
	"fmt"
	"testing"

	"musketeer/internal/relation"
)

const cityVisitsHive = `
SELECT id, name, city FROM users AS u;
u JOIN visits ON u.id = visits.id AS uv;
SELECT city, SUM(n) AS total FROM uv GROUP BY city AS city_total;
`

// stageCityVisits stages a shuffle-heavy workload: wide integer keys and
// repetitive strings, the shape whose text rendering the columnar codec
// undercuts most.
func stageCityVisits(t *testing.T, m *Musketeer) Catalog {
	t.Helper()
	cities := []string{"cambridge", "oxford", "london", "bristol"}
	users := relation.New("users", NewSchema("id:int", "name:string", "city:string"))
	visits := relation.New("visits", NewSchema("id:int", "n:int"))
	for i := int64(0); i < 500; i++ {
		id := 1_000_000_000 + i*7919
		users.MustAppend(relation.Row{relation.Int(id), relation.Str(fmt.Sprintf("user-%06d", i)), relation.Str(cities[i%4])})
		visits.MustAppend(relation.Row{relation.Int(id), relation.Int(i % 50)})
	}
	users.LogicalBytes = users.PhysicalBytes() * 1000
	visits.LogicalBytes = visits.PhysicalBytes() * 1000
	if err := m.WriteInput("in/users", users); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteInput("in/visits", visits); err != nil {
		t.Fatal(err)
	}
	return Catalog{
		"users":  {Path: "in/users", Schema: users.Schema},
		"visits": {Path: "in/visits", Schema: visits.Schema},
	}
}

// runUnmergedCityVisits executes the workload as three separate jobs
// (guaranteeing real intra-run shuffles through the DFS) and returns the
// published result plus the deployment it ran on.
func runUnmergedCityVisits(t *testing.T, opts ...Option) (*Relation, *Musketeer) {
	t.Helper()
	m := New(append([]Option{LocalCluster(7)}, opts...)...)
	cat := stageCityVisits(t, m)
	wf, err := m.CompileHive(cityVisitsHive, cat)
	if err != nil {
		t.Fatal(err)
	}
	part, err := wf.PlanUnmerged("spark")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Run(part); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadOutput("city_total")
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestColumnarShufflesMatchTSV proves the columnar wire format is invisible
// to results: the same unmerged plan publishes byte-identical output with
// shuffles in either codec, while the columnar run moves fewer simulated
// bytes and records its codec choices in the flight-recorder counters.
func TestColumnarShufflesMatchTSV(t *testing.T) {
	tsvOut, tsvM := runUnmergedCityVisits(t)
	colOut, colM := runUnmergedCityVisits(t, WithColumnarShuffles())

	if !bytes.Equal(tsvOut.EncodeBytes(), colOut.EncodeBytes()) {
		t.Fatalf("columnar shuffles changed the published output:\nTSV:\n%s\ncolumnar:\n%s",
			tsvOut.EncodeBytes(), colOut.EncodeBytes())
	}

	// The unmerged plan has two intermediate relations read by later jobs;
	// both must have travelled columnar, and the sink must have stayed TSV.
	if n := colM.Metrics().Counter("shuffle_codec_columnar_total").Value(); n < 2 {
		t.Errorf("columnar shuffle files = %d, want >= 2", n)
	}
	if n := colM.Metrics().Counter("shuffle_codec_tsv_total").Value(); n < 1 {
		t.Errorf("TSV sink files = %d, want >= 1", n)
	}
	if n := tsvM.Metrics().Counter("shuffle_codec_columnar_total").Value(); n != 0 {
		t.Errorf("TSV deployment wrote %d columnar files", n)
	}

	// Encoded-vs-logical counters feed estimator calibration; the encoded
	// columnar bytes must genuinely undercut the logical (text) volume.
	enc := colM.Metrics().Counter("shuffle_columnar_encoded_bytes_total").Value()
	logical := colM.Metrics().Counter("shuffle_columnar_logical_bytes_total").Value()
	if enc <= 0 || logical <= 0 {
		t.Fatalf("ratio counters missing: encoded=%d logical=%d", enc, logical)
	}

	// Fewer wire bytes pushed overall: columnar shuffles are charged at the
	// scaled volume while sources and sinks cost the same in both runs.
	tsvPush := tsvM.Metrics().Counter("dfs_push_bytes_total").Value()
	colPush := colM.Metrics().Counter("dfs_push_bytes_total").Value()
	if colPush >= tsvPush {
		t.Errorf("columnar push bytes = %d, want < TSV push bytes %d", colPush, tsvPush)
	}
}
