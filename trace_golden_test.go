package musketeer

// Flight-recorder integration tests: a golden Chrome trace for a canonical
// two-engine workflow (structure-only — ZeroTimes strips wall-clock and
// simulated timings so the bytes are reproducible), and a -race stress test
// of concurrent traced executions sharing one deployment's metrics registry
// and accuracy log. Regenerate the golden with
//
//	go test -run TestTraceGolden -update .

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"musketeer/internal/core"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
	"musketeer/internal/workloads"
)

// stageTwoEngine stages the §6.3 cross-community workflow and forces its
// iterative fragment onto metis with the batch phase on hadoop — the
// paper's fixed hadoop+metis combination, and the canonical case where one
// trace shows two engines' phases side by side.
func stageTwoEngine(t *testing.T, m *Musketeer) (*Workflow, *Partitioning) {
	t.Helper()
	// Same seed and mean degree: the two communities share every edge, so
	// the intersection (and the PageRank over it) is non-trivial.
	a := workloads.GenerateGraph("a", 400_000, 2_000_000, 40, 7)
	b := workloads.GenerateGraph("b", 500_000, 2_500_000, 40, 7)
	wl := workloads.CrossCommunityPageRank(a, b, 3)
	if err := wl.Stage(m.fs); err != nil {
		t.Fatal(err)
	}
	dag, err := wl.Build()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := m.FromDAG(dag)
	if err != nil {
		t.Fatal(err)
	}
	wf.Optimize()
	est, err := wf.estimator()
	if err != nil {
		t.Fatal(err)
	}
	hadoop, metis := m.engines["hadoop"], m.engines["metis"]
	part, err := core.MapTo(dag, est, hadoop)
	if err != nil {
		t.Fatal(err)
	}
	forced := false
	for i := range part.Jobs {
		frag := part.Jobs[i].Frag
		if frag.While() != nil && metis.ValidFragment(frag) == nil {
			part.Jobs[i].Engine = metis
			part.Jobs[i].Cost = est.FragmentCost(frag, metis)
			forced = true
		}
	}
	if !forced {
		t.Fatal("no WHILE fragment accepted metis; the workflow is not two-engine")
	}
	return wf, part
}

// TestTraceGolden pins the span tree of the two-engine workflow: one
// workflow root, analyze and schedule pipeline spans, a job span per
// fragment (hadoop batch jobs and the metis WHILE job), per-iteration
// WHILE spans with body-job children, and pull/process/push engine phases
// under every attempt.
func TestTraceGolden(t *testing.T) {
	m := New(WithTracing())
	wf, part := stageTwoEngine(t, m)
	res, err := wf.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flight == nil {
		t.Fatal("WithTracing execution returned no flight recorder")
	}

	var buf bytes.Buffer
	if err := res.Flight.WriteChromeTrace(&buf, TraceOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	got := buf.String()
	path := filepath.Join("testdata", "trace", "crosscommunity.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestTraceGolden -update .` to create it)", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("trace structure changed.\n--- want\n%s--- got\n%s", want, got)
	}
}

// stressCatalog stages a small join workload for the concurrency stress
// test and returns its Hive catalog.
func stressCatalog(t *testing.T, m *Musketeer) Catalog {
	t.Helper()
	props := NewRelation("properties", NewSchema("id:int", "street:string", "town:string"))
	prices := NewRelation("prices", NewSchema("id:int", "price:float"))
	for i := int64(0); i < 500; i++ {
		props.MustAppend(relation.Row{relation.Int(i), relation.Str("mill rd"), relation.Str("cam")})
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(100 + i))})
	}
	if err := m.WriteInput("in/properties", props); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteInput("in/prices", prices); err != nil {
		t.Fatal(err)
	}
	return Catalog{
		"properties": {Path: "in/properties", Schema: props.Schema},
		"prices":     {Path: "in/prices", Schema: prices.Schema},
	}
}

const stressHive = `
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, MAX(price) AS max_price FROM id_price GROUP BY street AS street_price;
`

// TestTracedExecutionsConcurrent drives concurrent traced executions into
// one shared deployment — one metrics registry, one accuracy log, one
// scheduler. Meaningful under -race (ci.sh runs the suite with it): the
// per-run recorders must stay independent while the shared instruments
// absorb all runs.
func TestTracedExecutionsConcurrent(t *testing.T) {
	const runs = 8
	m := New(WithTracing())
	cat := stressCatalog(t, m)
	wf, err := m.CompileHive(stressHive, cat)
	if err != nil {
		t.Fatal(err)
	}

	results := make([]*Result, runs)
	errs := make([]error, runs)
	sched.ForEach(runs, runs, func(i int) {
		results[i], errs[i] = wf.Execute()
	})

	seen := map[*FlightRecorder]bool{}
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		res := results[i]
		if res.Flight == nil || res.Flight.Len() == 0 {
			t.Fatalf("run %d: missing flight recorder", i)
		}
		if seen[res.Flight] {
			t.Fatalf("run %d: flight recorder shared between executions", i)
		}
		seen[res.Flight] = true
		if res.Accuracy == nil || len(res.Accuracy.Jobs) == 0 {
			t.Fatalf("run %d: missing accuracy record", i)
		}
	}

	if got := m.Metrics().Counter("workflows_completed_total").Value(); got != runs {
		t.Errorf("workflows_completed_total = %d, want %d", got, runs)
	}
	if got := len(m.Accuracy().Workflows()); got != runs {
		t.Errorf("accuracy log has %d workflows, want %d", got, runs)
	}
	sum := m.Accuracy().Summary()
	if sum.Workflows != runs || sum.Jobs == 0 {
		t.Errorf("accuracy summary = %+v, want %d workflows with jobs", sum, runs)
	}
}
