package relation

// Batch is one unit of rows flowing through a streaming operator pipeline.
//
// A batch is a view, not a copy: its Rows slice (and, for constructing
// stages, the value storage behind the rows) is owned by the stage that
// returned it and is only valid until the next Next call on that stage.
// Consumers that need rows to outlive the pull loop must copy them; the
// terminal materializing stage of a pipeline arranges fresh storage for
// exactly this reason.
type Batch struct {
	Rows []Row
}

// Empty reports whether the batch carries no rows. By the RowSource
// contract an empty batch means the source is exhausted.
func (b Batch) Empty() bool { return len(b.Rows) == 0 }

// RowSource is the pull interface of the streaming executor: a stage yields
// its output one batch at a time instead of materializing a full relation.
// Operator kernels compose by wrapping an upstream RowSource, which is what
// lets a fused SELECT→PROJECT→ARITH chain run as a single pipeline with no
// intermediate relations.
//
// Next returns an empty batch once the source is exhausted (and on every
// call thereafter). A non-empty error aborts the pipeline; partial batches
// accompanying an error are ignored.
type RowSource interface {
	// Schema describes the rows every batch carries.
	Schema() Schema
	// Next yields the next batch. The returned batch is only valid until
	// the following Next call.
	Next() (Batch, error)
}

// DefaultBatchRows is the row capacity pipelines pull per batch unless the
// caller overrides it (tests force tiny batches to exercise refill paths).
const DefaultBatchRows = 1024

// SliceSource adapts a row slice to the RowSource interface, yielding
// contiguous sub-slices of at most BatchRows rows. It allocates nothing:
// every batch aliases the underlying slice.
type SliceSource struct {
	Sch       Schema
	Rows      []Row
	BatchRows int
	pos       int
}

// Schema implements RowSource.
func (s *SliceSource) Schema() Schema { return s.Sch }

// Next implements RowSource.
func (s *SliceSource) Next() (Batch, error) {
	n := s.BatchRows
	if n <= 0 {
		n = DefaultBatchRows
	}
	if s.pos >= len(s.Rows) {
		return Batch{}, nil
	}
	hi := s.pos + n
	if hi > len(s.Rows) {
		hi = len(s.Rows)
	}
	b := Batch{Rows: s.Rows[s.pos:hi]}
	s.pos = hi
	return b, nil
}
