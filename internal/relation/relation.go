package relation

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Column is one named, typed column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes the columns of a relation.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from "name:kind" specs, e.g. "uid:int",
// "price:float", "town:string". It panics on malformed specs; schemas are
// built from literals in workload definitions, not from user input.
func NewSchema(specs ...string) Schema {
	cols := make([]Column, len(specs))
	for i, spec := range specs {
		name, kindStr, ok := strings.Cut(spec, ":")
		if !ok {
			panic(fmt.Sprintf("relation: schema spec %q missing ':'", spec))
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			panic(err)
		}
		cols[i] = Column{Name: name, Kind: kind}
	}
	return Schema{Cols: cols}
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but returns an error for unknown columns.
func (s Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return 0, fmt.Errorf("relation: no column %q in schema %s", name, s)
}

// Project returns the schema restricted to the given column positions.
func (s Schema) Project(cols []int) Schema {
	out := Schema{Cols: make([]Column, len(cols))}
	for i, c := range cols {
		out.Cols[i] = s.Cols[c]
	}
	return out
}

// Concat returns the concatenation of two schemas, renaming collisions on
// the right side with a "r_" prefix (as a join materialization would).
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	for _, c := range o.Cols {
		name := c.Name
		for out.Index(name) >= 0 {
			name = "r_" + name
		}
		out.Cols = append(out.Cols, Column{Name: name, Kind: c.Kind})
	}
	return out
}

// Equal reports structural equality of two schemas.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name:kind, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is a named, schema'd bag of rows.
//
// LogicalBytes is the size the relation *represents* in the simulated
// deployment. Workload generators materialize a downscaled physical sample
// (len(Rows) rows) but stamp the paper-scale logical size; the cost model
// and the simulated makespans operate on logical sizes, while operator
// semantics and statistics (selectivities, output ratios) come from the
// physical rows. A LogicalBytes of 0 means "physical only": the encoded
// byte size is used.
type Relation struct {
	Name         string
	Schema       Schema
	Rows         []Row
	LogicalBytes int64
}

// New returns an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a row, which must match the schema arity.
func (r *Relation) Append(row Row) error {
	if len(row) != r.Schema.Arity() {
		return fmt.Errorf("relation %s: row arity %d != schema arity %d", r.Name, len(row), r.Schema.Arity())
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend is Append but panics on arity mismatch; used by generators.
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// NumRows returns the physical row count.
func (r *Relation) NumRows() int { return len(r.Rows) }

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Schema: r.Schema, LogicalBytes: r.LogicalBytes}
	c.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		c.Rows[i] = row.Clone()
	}
	return c
}

// PhysicalBytes returns the encoded size of the relation's rows.
func (r *Relation) PhysicalBytes() int64 {
	var n int64
	for _, row := range r.Rows {
		for _, v := range row {
			n += int64(len(v.String())) + 1 // field + separator/newline
		}
	}
	return n
}

// EffectiveBytes returns LogicalBytes when set, else the physical size.
func (r *Relation) EffectiveBytes() int64 {
	if r.LogicalBytes > 0 {
		return r.LogicalBytes
	}
	return r.PhysicalBytes()
}

// ScaleRatio returns logical/physical size; 1 when no logical size is set.
// Output relations inherit their inputs' ratio so volumes stay consistent
// as data flows through a workflow.
func (r *Relation) ScaleRatio() float64 {
	if r.LogicalBytes <= 0 {
		return 1
	}
	phys := r.PhysicalBytes()
	if phys == 0 {
		return 1
	}
	return float64(r.LogicalBytes) / float64(phys)
}

// Encode writes the relation as a TSV stream with a two-line header:
//
//	#schema	name:kind	name:kind ...
//	#logical	<bytes>
func (r *Relation) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("#schema")
	for _, c := range r.Schema.Cols {
		bw.WriteByte('\t')
		bw.WriteString(c.Name)
		bw.WriteByte(':')
		bw.WriteString(c.Kind.String())
	}
	bw.WriteByte('\n')
	fmt.Fprintf(bw, "#logical\t%d\n", r.LogicalBytes)
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(v.String())
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// EncodeBytes returns the Encode output as a byte slice.
func (r *Relation) EncodeBytes() []byte {
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// Decode parses a stream produced by Encode.
func Decode(name string, rd io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("relation %s: empty stream", name)
	}
	header := strings.Split(sc.Text(), "\t")
	if header[0] != "#schema" {
		return nil, fmt.Errorf("relation %s: missing #schema header", name)
	}
	schema := Schema{}
	for _, spec := range header[1:] {
		colName, kindStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("relation %s: bad column spec %q", name, spec)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		schema.Cols = append(schema.Cols, Column{Name: colName, Kind: kind})
	}
	rel := New(name, schema)
	if !sc.Scan() {
		return nil, fmt.Errorf("relation %s: missing #logical header", name)
	}
	if _, err := fmt.Sscanf(sc.Text(), "#logical\t%d", &rel.LogicalBytes); err != nil {
		return nil, fmt.Errorf("relation %s: bad #logical header %q", name, sc.Text())
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != schema.Arity() {
			return nil, fmt.Errorf("relation %s: row arity %d != %d", name, len(fields), schema.Arity())
		}
		row := make(Row, len(fields))
		for i, f := range fields {
			v, err := ParseValue(schema.Cols[i].Kind, f)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel, sc.Err()
}

// DecodeBytes parses an EncodeBytes output.
func DecodeBytes(name string, data []byte) (*Relation, error) {
	return Decode(name, bytes.NewReader(data))
}

// SortRows orders rows lexicographically in place; used to compare engine
// outputs independent of execution order.
func (r *Relation) SortRows() {
	sortRows(r.Rows)
}

// Fingerprint returns a deterministic digest of the relation's contents
// (order-independent): sorted row renderings joined by newlines.
func (r *Relation) Fingerprint() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sortStrings(lines)
	return strings.Join(lines, "\n")
}
