package relation

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Column is one named, typed column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes the columns of a relation.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from "name:kind" specs, e.g. "uid:int",
// "price:float", "town:string". It panics on malformed specs; schemas are
// built from literals in workload definitions, not from user input.
func NewSchema(specs ...string) Schema {
	cols := make([]Column, len(specs))
	for i, spec := range specs {
		name, kindStr, ok := strings.Cut(spec, ":")
		if !ok {
			panic(fmt.Sprintf("relation: schema spec %q missing ':'", spec))
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			panic(err)
		}
		cols[i] = Column{Name: name, Kind: kind}
	}
	return Schema{Cols: cols}
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but returns an error for unknown columns.
func (s Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return 0, fmt.Errorf("relation: no column %q in schema %s", name, s)
}

// Project returns the schema restricted to the given column positions.
func (s Schema) Project(cols []int) Schema {
	out := Schema{Cols: make([]Column, len(cols))}
	for i, c := range cols {
		out.Cols[i] = s.Cols[c]
	}
	return out
}

// Concat returns the concatenation of two schemas, renaming collisions on
// the right side with a "r_" prefix (as a join materialization would).
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	for _, c := range o.Cols {
		name := c.Name
		for out.Index(name) >= 0 {
			name = "r_" + name
		}
		out.Cols = append(out.Cols, Column{Name: name, Kind: c.Kind})
	}
	return out
}

// Equal reports structural equality of two schemas.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name:kind, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is a named, schema'd bag of rows.
//
// LogicalBytes is the size the relation *represents* in the simulated
// deployment. Workload generators materialize a downscaled physical sample
// (len(Rows) rows) but stamp the paper-scale logical size; the cost model
// and the simulated makespans operate on logical sizes, while operator
// semantics and statistics (selectivities, output ratios) come from the
// physical rows. A LogicalBytes of 0 means "physical only": the encoded
// byte size is used.
type Relation struct {
	Name         string
	Schema       Schema
	Rows         []Row
	LogicalBytes int64
}

// New returns an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a row, which must match the schema arity.
func (r *Relation) Append(row Row) error {
	if len(row) != r.Schema.Arity() {
		return fmt.Errorf("relation %s: row arity %d != schema arity %d", r.Name, len(row), r.Schema.Arity())
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend is Append but panics on arity mismatch; used by generators.
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// NumRows returns the physical row count.
func (r *Relation) NumRows() int { return len(r.Rows) }

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Schema: r.Schema, LogicalBytes: r.LogicalBytes}
	c.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		c.Rows[i] = row.Clone()
	}
	return c
}

// PhysicalBytes returns the encoded size of the relation's rows. It renders
// numeric fields into a reused scratch buffer, so sizing a relation (which
// every operator output pays for via scale propagation) allocates nothing.
func (r *Relation) PhysicalBytes() int64 {
	var n int64
	var scratch []byte
	for _, row := range r.Rows {
		for _, v := range row {
			if v.Kind == KindString {
				n += int64(len(v.S)) + 1 // field + separator/newline
				continue
			}
			scratch = v.AppendText(scratch[:0])
			n += int64(len(scratch)) + 1
		}
	}
	return n
}

// EffectiveBytes returns LogicalBytes when set, else the physical size.
func (r *Relation) EffectiveBytes() int64 {
	if r.LogicalBytes > 0 {
		return r.LogicalBytes
	}
	return r.PhysicalBytes()
}

// ScaleRatio returns logical/physical size; 1 when no logical size is set.
// Output relations inherit their inputs' ratio so volumes stay consistent
// as data flows through a workflow.
func (r *Relation) ScaleRatio() float64 {
	if r.LogicalBytes <= 0 {
		return 1
	}
	phys := r.PhysicalBytes()
	if phys == 0 {
		return 1
	}
	return float64(r.LogicalBytes) / float64(phys)
}

// CodecParallelThreshold is the default row count above which the codecs
// split row work across goroutines. Materializing intermediates on the DFS
// between (simulated) Hadoop jobs funnels through these codecs, so large
// relations encode/decode chunk-parallel; the chunk outputs are concatenated
// in input order, so the byte stream and decoded row order are identical to
// the serial paths. Callers (and tests, which force both paths on small
// data) override it per call via CodecOptions rather than mutating this
// package global.
var CodecParallelThreshold = 8192

// CodecOptions parameterizes one codec invocation.
type CodecOptions struct {
	// ParallelThreshold is the row count at or above which this call uses
	// the chunk-parallel path. Zero selects the package default
	// (CodecParallelThreshold); a value above the row count forces the
	// serial path, 1 forces the parallel path.
	ParallelThreshold int
}

// threshold resolves the effective parallel threshold for a call.
func (o CodecOptions) threshold() int {
	if o.ParallelThreshold > 0 {
		return o.ParallelThreshold
	}
	return CodecParallelThreshold
}

// codecChunks splits [0, n) into roughly GOMAXPROCS contiguous ranges,
// folding a tiny trailing remainder into the previous range.
func codecChunks(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	ranges := make([][2]int, 0, workers)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	if k := len(ranges); k >= 2 && ranges[k-1][1]-ranges[k-1][0] < size/2 {
		ranges[k-2][1] = ranges[k-1][1]
		ranges = ranges[:k-1]
	}
	return ranges
}

// appendTSVRow appends one row in the TSV wire format.
func appendTSVRow(dst []byte, row Row) []byte {
	for i, v := range row {
		if i > 0 {
			dst = append(dst, '\t')
		}
		dst = v.AppendText(dst)
	}
	return append(dst, '\n')
}

// Encode writes the relation as a TSV stream with a two-line header:
//
//	#schema	name:kind	name:kind ...
//	#logical	<bytes>
//
// Rows are rendered with AppendText into buffers (no per-field string
// allocation); above the parallel threshold the row chunks encode
// concurrently and are written out in order.
func (r *Relation) Encode(w io.Writer) error {
	return r.EncodeOpts(w, CodecOptions{})
}

// EncodeOpts is Encode with per-call codec options.
func (r *Relation) EncodeOpts(w io.Writer, o CodecOptions) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, "#schema"...)
	for _, c := range r.Schema.Cols {
		buf = append(buf, '\t')
		buf = append(buf, c.Name...)
		buf = append(buf, ':')
		buf = append(buf, c.Kind.String()...)
	}
	buf = append(buf, '\n')
	buf = append(buf, "#logical\t"...)
	buf = strconv.AppendInt(buf, r.LogicalBytes, 10)
	buf = append(buf, '\n')
	if len(r.Rows) >= o.threshold() {
		chunks := codecChunks(len(r.Rows))
		encoded := make([][]byte, len(chunks))
		var wg sync.WaitGroup
		for ci, rg := range chunks {
			wg.Add(1)
			go func(ci, lo, hi int) {
				defer wg.Done()
				b := make([]byte, 0, (hi-lo)*16)
				for _, row := range r.Rows[lo:hi] {
					b = appendTSVRow(b, row)
				}
				encoded[ci] = b
			}(ci, rg[0], rg[1])
		}
		wg.Wait()
		if _, err := w.Write(buf); err != nil {
			return err
		}
		for _, b := range encoded {
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
		return nil
	}
	for _, row := range r.Rows {
		buf = appendTSVRow(buf, row)
		if len(buf) >= 64<<10 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// EncodeBytes returns the Encode output as a byte slice.
func (r *Relation) EncodeBytes() []byte {
	return r.EncodeBytesOpts(CodecOptions{})
}

// EncodeBytesOpts is EncodeBytes with per-call codec options.
func (r *Relation) EncodeBytesOpts(o CodecOptions) []byte {
	var buf bytes.Buffer
	if err := r.EncodeOpts(&buf, o); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// Decode parses a stream produced by Encode.
func Decode(name string, rd io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("relation %s: empty stream", name)
	}
	header := strings.Split(sc.Text(), "\t")
	if header[0] != "#schema" {
		return nil, fmt.Errorf("relation %s: missing #schema header", name)
	}
	schema := Schema{}
	for _, spec := range header[1:] {
		colName, kindStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("relation %s: bad column spec %q", name, spec)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		schema.Cols = append(schema.Cols, Column{Name: colName, Kind: kind})
	}
	rel := New(name, schema)
	if !sc.Scan() {
		return nil, fmt.Errorf("relation %s: missing #logical header", name)
	}
	if _, err := fmt.Sscanf(sc.Text(), "#logical\t%d", &rel.LogicalBytes); err != nil {
		return nil, fmt.Errorf("relation %s: bad #logical header %q", name, sc.Text())
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != schema.Arity() {
			return nil, fmt.Errorf("relation %s: row arity %d != %d", name, len(fields), schema.Arity())
		}
		row := make(Row, len(fields))
		for i, f := range fields {
			v, err := ParseValue(schema.Cols[i].Kind, f)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel, sc.Err()
}

// DecodeBytes parses an EncodeBytes or EncodeColumnar output, sniffing the
// codec from the stream's leading bytes. It is the DFS read path: unlike
// the streaming Decode it can chunk the TSV row section by newline
// boundaries (or the columnar stream by column block) and parse chunks
// concurrently above the parallel threshold, keeping decoded row order
// identical to the serial scan.
func DecodeBytes(name string, data []byte) (*Relation, error) {
	return DecodeBytesOpts(name, data, CodecOptions{})
}

// DecodeBytesOpts is DecodeBytes with per-call codec options.
func DecodeBytesOpts(name string, data []byte, o CodecOptions) (*Relation, error) {
	if SniffCodec(data) == CodecColumnar {
		return DecodeColumnar(name, data, o)
	}
	head, rest, ok := bytes.Cut(data, []byte{'\n'})
	if !ok && len(data) == 0 {
		return nil, fmt.Errorf("relation %s: empty stream", name)
	}
	header := strings.Split(string(head), "\t")
	if header[0] != "#schema" {
		return nil, fmt.Errorf("relation %s: missing #schema header", name)
	}
	schema := Schema{}
	for _, spec := range header[1:] {
		colName, kindStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("relation %s: bad column spec %q", name, spec)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		schema.Cols = append(schema.Cols, Column{Name: colName, Kind: kind})
	}
	rel := New(name, schema)
	logLine, body, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok && len(logLine) == 0 {
		return nil, fmt.Errorf("relation %s: missing #logical header", name)
	}
	logField, found := strings.CutPrefix(string(logLine), "#logical\t")
	if !found {
		return nil, fmt.Errorf("relation %s: bad #logical header %q", name, string(logLine))
	}
	logical, err := strconv.ParseInt(logField, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("relation %s: bad #logical header %q", name, string(logLine))
	}
	rel.LogicalBytes = logical
	// Cheap row estimate decides whether chunked parallel parsing pays off.
	if bytes.Count(body, []byte{'\n'}) >= o.threshold() {
		chunks := splitAtLines(body, runtime.GOMAXPROCS(0))
		parts := make([][]Row, len(chunks))
		errs := make([]error, len(chunks))
		var wg sync.WaitGroup
		for ci, chunk := range chunks {
			wg.Add(1)
			go func(ci int, chunk []byte) {
				defer wg.Done()
				parts[ci], errs[ci] = parseRows(name, schema, chunk)
			}(ci, chunk)
		}
		wg.Wait()
		total := 0
		for ci := range chunks {
			if errs[ci] != nil {
				return nil, errs[ci]
			}
			total += len(parts[ci])
		}
		rel.Rows = make([]Row, 0, total)
		for _, p := range parts {
			rel.Rows = append(rel.Rows, p...)
		}
		return rel, nil
	}
	rel.Rows, err = parseRows(name, schema, body)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// splitAtLines cuts data into at most n chunks whose boundaries fall on
// newline boundaries, preserving order and covering every byte.
func splitAtLines(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	var chunks [][]byte
	size := (len(data) + n - 1) / n
	for lo := 0; lo < len(data); {
		hi := lo + size
		if hi >= len(data) {
			chunks = append(chunks, data[lo:])
			break
		}
		if j := bytes.IndexByte(data[hi:], '\n'); j >= 0 {
			hi += j + 1
		} else {
			hi = len(data)
		}
		chunks = append(chunks, data[lo:hi])
		lo = hi
	}
	return chunks
}

// parseRows parses a run of TSV row lines against the schema.
func parseRows(name string, schema Schema, data []byte) ([]Row, error) {
	arity := schema.Arity()
	var rows []Row
	if n := bytes.Count(data, []byte{'\n'}); n > 0 {
		rows = make([]Row, 0, n+1)
	}
	for len(data) > 0 {
		lineBytes, rest, _ := bytes.Cut(data, []byte{'\n'})
		data = rest
		if len(lineBytes) == 0 {
			continue
		}
		// One string allocation per line; field substrings share it (string
		// values in the decoded rows pin the line, as the scanner path did).
		line := string(lineBytes)
		row := make(Row, 0, arity)
		for {
			field, restF, found := strings.Cut(line, "\t")
			if len(row) == arity {
				return nil, fmt.Errorf("relation %s: row arity %d != %d", name, len(row)+1+strings.Count(restF, "\t"), arity)
			}
			v, err := ParseValue(schema.Cols[len(row)].Kind, field)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !found {
				break
			}
			line = restF
		}
		if len(row) != arity {
			return nil, fmt.Errorf("relation %s: row arity %d != %d", name, len(row), arity)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SortRows orders rows lexicographically in place; used to compare engine
// outputs independent of execution order.
func (r *Relation) SortRows() {
	sortRows(r.Rows)
}

// Fingerprint returns a deterministic digest of the relation's contents
// (order-independent): sorted row renderings joined by newlines.
func (r *Relation) Fingerprint() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sortStrings(lines)
	return strings.Join(lines, "\n")
}
