package relation

import "hash/maphash"

// keySeed is the process-wide seed for hashed row keys. All KeyHashers share
// it, so a hash table built by one goroutine can be probed by others (the
// parallel join kernel does exactly that). The seed is randomized per
// process by hash/maphash, which keeps bucket distribution unpredictable.
var keySeed = maphash.MakeSeed()

// KeyHasher computes 64-bit hashes of projected row keys with a reusable
// scratch buffer, so the per-row cost of keying a group-by or join probe is
// a hash over an encoding written into preallocated memory — no per-row
// string allocation like the legacy Row.Key path.
//
// A KeyHasher is not safe for concurrent use; parallel kernels create one
// per worker (they still hash compatibly because the seed is shared).
type KeyHasher struct {
	scratch []byte
}

// HashKey returns the hash of r's projection onto cols plus the encoded key
// bytes used for collision verification. The returned slice aliases the
// hasher's scratch buffer and is only valid until the next HashKey call;
// callers that retain it (hash-table inserts) must copy it first.
func (h *KeyHasher) HashKey(r Row, cols []int) (uint64, []byte) {
	h.scratch = r.AppendKey(h.scratch[:0], cols)
	return maphash.Bytes(keySeed, h.scratch), h.scratch
}
