package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Codec selects a relation wire format.
type Codec uint8

const (
	// CodecTSV is the text format of Encode/Decode: a two-line header
	// followed by tab-separated rows. It is the default everywhere data is
	// user-visible — workflow sources, published sinks, golden fixtures.
	CodecTSV Codec = iota
	// CodecColumnar is the length-prefixed binary columnar format of
	// EncodeColumnar: per-column blocks with zigzag-varint integers, raw
	// IEEE-754 float bits, and offset-indexed string data. It is used for
	// intra-run shuffles, where it typically encodes to well under the TSV
	// size and round-trips values (including tabs and newlines inside
	// strings) exactly.
	CodecColumnar
)

// DefaultColumnarRatio is the a-priori estimate of the columnar codec's
// encoded size relative to the TSV rendering of the same relation —
// conservative for numeric-heavy shuffles (varints shrink small ints far
// more) and roughly right for mixed string/number rows. Estimators use it
// until the flight recorder's shuffle counters provide a measured ratio.
const DefaultColumnarRatio = 0.55

// String returns the codec's lower-case name.
func (c Codec) String() string {
	switch c {
	case CodecColumnar:
		return "columnar"
	default:
		return "tsv"
	}
}

// columnarMagic prefixes every columnar stream. The leading byte is an
// invalid UTF-8 start byte, so no TSV stream (which begins "#schema") can
// collide with it.
var columnarMagic = [5]byte{0xb1, 'M', 'K', 'C', '1'}

// SniffCodec inspects an encoded stream's leading bytes and reports which
// codec produced it.
func SniffCodec(data []byte) Codec {
	if len(data) >= len(columnarMagic) && [5]byte(data[:5]) == columnarMagic {
		return CodecColumnar
	}
	return CodecTSV
}

// EncodeCodec encodes the relation with the requested codec.
func (r *Relation) EncodeCodec(c Codec, o CodecOptions) []byte {
	if c == CodecColumnar {
		return r.EncodeColumnar(o)
	}
	return r.EncodeBytesOpts(o)
}

// EncodeColumnar renders the relation in the binary columnar format:
//
//	magic (5 bytes)
//	uvarint ncols, then per column: uvarint len(name), name, 1 byte kind
//	uvarint logicalBytes
//	uvarint nrows
//	per column: uvarint blockLen, then the block:
//	  int     zigzag varint per row
//	  float   8-byte little-endian IEEE-754 bits per row
//	  string  uvarint totalBytes, the concatenated bytes, then one uvarint
//	          cumulative end offset per row (the offset index)
//
// Values are coerced to their column's declared kind, mirroring what a TSV
// encode/decode round trip does via text parsing. Above the parallel
// threshold the per-column blocks encode concurrently.
func (r *Relation) EncodeColumnar(o CodecOptions) []byte {
	head := make([]byte, 0, 64)
	head = append(head, columnarMagic[:]...)
	head = binary.AppendUvarint(head, uint64(len(r.Schema.Cols)))
	for _, c := range r.Schema.Cols {
		head = binary.AppendUvarint(head, uint64(len(c.Name)))
		head = append(head, c.Name...)
		head = append(head, byte(c.Kind))
	}
	head = binary.AppendUvarint(head, uint64(r.LogicalBytes))
	head = binary.AppendUvarint(head, uint64(len(r.Rows)))

	blocks := make([][]byte, len(r.Schema.Cols))
	if len(r.Rows) >= o.threshold() && len(r.Schema.Cols) > 1 {
		var wg sync.WaitGroup
		for ci := range r.Schema.Cols {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				blocks[ci] = r.encodeColumn(ci)
			}(ci)
		}
		wg.Wait()
	} else {
		for ci := range r.Schema.Cols {
			blocks[ci] = r.encodeColumn(ci)
		}
	}
	out := head
	for _, b := range blocks {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return out
}

// encodeColumn renders one column's block.
func (r *Relation) encodeColumn(ci int) []byte {
	switch r.Schema.Cols[ci].Kind {
	case KindInt:
		b := make([]byte, 0, len(r.Rows)*2)
		for _, row := range r.Rows {
			b = binary.AppendVarint(b, row[ci].AsInt())
		}
		return b
	case KindFloat:
		b := make([]byte, 0, len(r.Rows)*8)
		for _, row := range r.Rows {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(row[ci].AsFloat()))
		}
		return b
	default:
		var total uint64
		for _, row := range r.Rows {
			total += uint64(len(row[ci].String()))
		}
		b := make([]byte, 0, int(total)+len(r.Rows)+10)
		b = binary.AppendUvarint(b, total)
		for _, row := range r.Rows {
			b = append(b, row[ci].String()...)
		}
		var end uint64
		for _, row := range r.Rows {
			end += uint64(len(row[ci].String()))
			b = binary.AppendUvarint(b, end)
		}
		return b
	}
}

// DecodeColumnar parses an EncodeColumnar stream. Column blocks decode
// concurrently above the parallel threshold; each fills its own stride of a
// shared row-major value arena, so decoded row order is deterministic.
func DecodeColumnar(name string, data []byte, o CodecOptions) (*Relation, error) {
	if SniffCodec(data) != CodecColumnar {
		return nil, fmt.Errorf("relation %s: missing columnar magic", name)
	}
	pos := len(columnarMagic)
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("relation %s: truncated columnar header", name)
		}
		pos += n
		return v, nil
	}
	ncols, err := readUvarint()
	if err != nil {
		return nil, err
	}
	schema := Schema{Cols: make([]Column, ncols)}
	for ci := range schema.Cols {
		nameLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(nameLen)+1 > len(data) {
			return nil, fmt.Errorf("relation %s: truncated columnar header", name)
		}
		colName := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		kind := Kind(data[pos])
		pos++
		if kind > KindString {
			return nil, fmt.Errorf("relation %s: bad column kind %d", name, kind)
		}
		schema.Cols[ci] = Column{Name: colName, Kind: kind}
	}
	logical, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nrows64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nrows := int(nrows64)
	rel := New(name, schema)
	rel.LogicalBytes = int64(logical)

	blocks := make([][]byte, ncols)
	for ci := range blocks {
		blockLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(blockLen) > len(data) {
			return nil, fmt.Errorf("relation %s: truncated column block %d", name, ci)
		}
		blocks[ci] = data[pos : pos+int(blockLen)]
		pos += int(blockLen)
	}
	if nrows == 0 {
		return rel, nil
	}

	// Row-major arena shared by all columns; column ci fills slots
	// [row*ncols + ci], so concurrent column decoders touch disjoint
	// elements.
	arity := int(ncols)
	flat := make([]Row, 0, nrows)
	vals := make([]Value, nrows*arity)
	for rI := 0; rI < nrows; rI++ {
		flat = append(flat, vals[rI*arity:(rI+1)*arity:(rI+1)*arity])
	}
	rel.Rows = flat
	errs := make([]error, ncols)
	if nrows >= o.threshold() && arity > 1 {
		var wg sync.WaitGroup
		for ci := range blocks {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				errs[ci] = decodeColumn(name, schema.Cols[ci].Kind, blocks[ci], vals, ci, arity, nrows)
			}(ci)
		}
		wg.Wait()
	} else {
		for ci := range blocks {
			errs[ci] = decodeColumn(name, schema.Cols[ci].Kind, blocks[ci], vals, ci, arity, nrows)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// decodeColumn parses one column block into its stride of the value arena.
func decodeColumn(name string, kind Kind, block []byte, vals []Value, ci, arity, nrows int) error {
	switch kind {
	case KindInt:
		for rI := 0; rI < nrows; rI++ {
			v, n := binary.Varint(block)
			if n <= 0 {
				return fmt.Errorf("relation %s: truncated int column %d", name, ci)
			}
			block = block[n:]
			vals[rI*arity+ci] = Int(v)
		}
	case KindFloat:
		if len(block) < nrows*8 {
			return fmt.Errorf("relation %s: truncated float column %d", name, ci)
		}
		for rI := 0; rI < nrows; rI++ {
			bits := binary.LittleEndian.Uint64(block[rI*8:])
			vals[rI*arity+ci] = Float(math.Float64frombits(bits))
		}
	default:
		total, n := binary.Uvarint(block)
		if n <= 0 || n+int(total) > len(block) {
			return fmt.Errorf("relation %s: truncated string column %d", name, ci)
		}
		// One backing string per column; row values are substrings of it.
		backing := string(block[n : n+int(total)])
		block = block[n+int(total):]
		var start uint64
		for rI := 0; rI < nrows; rI++ {
			end, n := binary.Uvarint(block)
			if n <= 0 || end < start || end > total {
				return fmt.Errorf("relation %s: bad string offset in column %d", name, ci)
			}
			block = block[n:]
			vals[rI*arity+ci] = Str(backing[start:end])
			start = end
		}
	}
	return nil
}
