// Package relation implements the tabular data model shared by every layer
// of Musketeer: typed values, rows, schemas and relations, plus the TSV
// codecs used by the simulated distributed filesystem.
//
// All seven back-end execution engines operate on these types through the
// shared kernels in internal/exec, which is what lets the test suite assert
// that every engine computes identical results for the same IR fragment.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the IR's column algebra.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer column.
	KindInt Kind = iota
	// KindFloat is a 64-bit IEEE-754 column.
	KindFloat
	// KindString is a UTF-8 string column.
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	default:
		return 0, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a single typed cell. The zero value is the integer 0.
//
// Value is a small struct rather than an interface so rows stay contiguous
// in memory and comparisons avoid dynamic dispatch; this matters for the
// join and group-by kernels that dominate workflow execution time.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// AsFloat returns the numeric content of v, converting integers.
// String values yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt returns the numeric content of v truncated to an integer.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value the way the TSV codec writes it.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// AppendText appends the String rendering of v to dst without allocating an
// intermediate string; it is the codec- and key-building primitive.
func (v Value) AppendText(dst []byte) []byte {
	switch v.Kind {
	case KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	default:
		return append(dst, v.S...)
	}
}

// ParseValue parses field text into a value of the given kind.
func ParseValue(kind Kind, field string) (Value, error) {
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", field, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", field, err)
		}
		return Float(f), nil
	default:
		return Str(field), nil
	}
}

// Equal reports whether two values are identical in kind and content.
// An int and a float are never Equal even if numerically equivalent;
// predicate evaluation uses Compare, which coerces numerics.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	default:
		return v.S == o.S
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// Numeric kinds are coerced to float for cross-kind comparison; strings
// compare lexicographically and sort after numbers when kinds mix.
func (v Value) Compare(o Value) int {
	vs, os := v.Kind == KindString, o.Kind == KindString
	switch {
	case vs && os:
		return strings.Compare(v.S, o.S)
	case vs:
		return 1
	case os:
		return -1
	case v.Kind == KindInt && o.Kind == KindInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	default:
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

// Add returns v + o with numeric coercion (int+int stays int).
func (v Value) Add(o Value) Value { return arith(v, o, '+') }

// Sub returns v - o with numeric coercion.
func (v Value) Sub(o Value) Value { return arith(v, o, '-') }

// Mul returns v * o with numeric coercion.
func (v Value) Mul(o Value) Value { return arith(v, o, '*') }

// Div returns v / o as a float; division by zero yields 0 so iterative
// workflows (e.g. PageRank over dangling vertices) stay total.
func (v Value) Div(o Value) Value {
	d := o.AsFloat()
	if d == 0 {
		return Float(0)
	}
	return Float(v.AsFloat() / d)
}

func arith(v, o Value, op byte) Value {
	if v.Kind == KindInt && o.Kind == KindInt {
		switch op {
		case '+':
			return Int(v.I + o.I)
		case '-':
			return Int(v.I - o.I)
		default:
			return Int(v.I * o.I)
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch op {
	case '+':
		return Float(a + b)
	case '-':
		return Float(a - b)
	default:
		return Float(a * b)
	}
}

// Row is one tuple of a relation. Rows are positional; names live in the
// relation's schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Key renders the projection of r onto cols as a join/group key.
// The encoding is unambiguous: fields are length-prefixed.
//
// This is the legacy string path, kept as the reference semantics for the
// hashed key path (AppendKey/KeyHasher) the hot kernels use: two rows have
// equal Keys iff they have equal AppendKey encodings.
func (r Row) Key(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		s := r[c].String()
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// AppendKey appends an unambiguous binary encoding of the projection of r
// onto cols to dst and returns the extended slice. Each field is written as
// its textual rendering followed by a fixed 4-byte little-endian length
// suffix, so encodings are equal exactly when the projected field renderings
// are equal — the same equality Key defines — while allocating nothing once
// dst has capacity. The hot kernels hash this encoding (see KeyHasher) and
// keep the bytes for collision verification.
func (r Row) AppendKey(dst []byte, cols []int) []byte {
	for _, c := range cols {
		start := len(dst)
		dst = r[c].AppendText(dst)
		n := uint32(len(dst) - start)
		dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return dst
}
