package relation

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindString} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Str("hello"), "hello"},
		{Str(""), ""},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{Int(0), Int(123456789), Int(-1), Float(0.125), Float(-3e10), Str("x y z")}
	for _, v := range vals {
		got, err := ParseValue(v.Kind, v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(KindInt, "abc"); err == nil {
		t.Error("ParseValue(int, abc) succeeded")
	}
	if _, err := ParseValue(KindFloat, "abc"); err == nil {
		t.Error("ParseValue(float, abc) succeeded")
	}
}

func TestCompareCoercion(t *testing.T) {
	if Int(2).Compare(Float(2.0)) != 0 {
		t.Error("Int(2) should compare equal to Float(2.0)")
	}
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("Int(2) should be < Float(2.5)")
	}
	if Str("a").Compare(Int(999)) != 1 {
		t.Error("strings sort after numbers")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Error("string ordering broken")
	}
}

func TestArithmetic(t *testing.T) {
	if got := Int(3).Add(Int(4)); !got.Equal(Int(7)) {
		t.Errorf("3+4 = %v", got)
	}
	if got := Int(3).Mul(Float(0.5)); !got.Equal(Float(1.5)) {
		t.Errorf("3*0.5 = %v", got)
	}
	if got := Int(10).Sub(Int(4)); !got.Equal(Int(6)) {
		t.Errorf("10-4 = %v", got)
	}
	if got := Float(1).Div(Float(4)); !got.Equal(Float(0.25)) {
		t.Errorf("1/4 = %v", got)
	}
	if got := Float(1).Div(Int(0)); !got.Equal(Float(0)) {
		t.Errorf("div by zero = %v, want 0", got)
	}
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithCommutativityQuick(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		return x.Add(y).Equal(y.Add(x)) && x.Mul(y).Equal(y.Mul(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyUnambiguous(t *testing.T) {
	// ("ab","c") and ("a","bc") must have different keys.
	r1 := Row{Str("ab"), Str("c")}
	r2 := Row{Str("a"), Str("bc")}
	if r1.Key([]int{0, 1}) == r2.Key([]int{0, 1}) {
		t.Error("row keys collide for distinct rows")
	}

	// The hashed key path (AppendKey + KeyHasher) must agree with the legacy
	// string Key on group/join semantics: two rows are key-equal on one path
	// iff they are on the other. The corpus is adversarial — empty strings,
	// field boundaries that could shift, embedded ':' and tabs (the legacy
	// separator and the TSV delimiter), negative floats, and the intentional
	// Int/Float collision (both render "2", and legacy keys are built from
	// renderings).
	rows := []Row{
		{Str("ab"), Str("c")},
		{Str("a"), Str("bc")},
		{Str(""), Str("")},
		{Str(""), Str("abc")},
		{Str("abc"), Str("")},
		{Str("a:b"), Str("c")},
		{Str("a"), Str("b:c")},
		{Str("a\tb"), Str("c")},
		{Str("a"), Str("b\tc")},
		{Str("a\n"), Str("b")},
		{Int(-1), Str("")},
		{Float(-1), Str("")},
		{Float(-1.5), Str("x")},
		{Float(-0.5), Str("x")},
		{Int(2), Str("x")},
		{Float(2), Str("x")},
	}
	cols := []int{0, 1}
	var h KeyHasher
	type enc struct {
		legacy string
		key    []byte
		hash   uint64
	}
	encs := make([]enc, len(rows))
	for i, r := range rows {
		hash, key := h.HashKey(r, cols)
		encs[i] = enc{legacy: r.Key(cols), key: append([]byte(nil), key...), hash: hash}
	}
	for i := range rows {
		for j := range rows {
			legacyEq := encs[i].legacy == encs[j].legacy
			hashedEq := string(encs[i].key) == string(encs[j].key)
			if legacyEq != hashedEq {
				t.Errorf("rows %v and %v: legacy equal=%v, hashed equal=%v", rows[i], rows[j], legacyEq, hashedEq)
			}
			if hashedEq && encs[i].hash != encs[j].hash {
				t.Errorf("rows %v and %v: equal keys but different hashes", rows[i], rows[j])
			}
		}
	}
	// Sanity: the rendering-collision pairs really do collide on both paths.
	if encs[10].legacy != encs[11].legacy || string(encs[10].key) != string(encs[11].key) {
		t.Error("Int(-1) and Float(-1) should be key-equal (both render \"-1\")")
	}
	if encs[14].legacy != encs[15].legacy || string(encs[14].key) != string(encs[15].key) {
		t.Error("Int(2) and Float(2) should be key-equal (both render \"2\")")
	}
}

func TestRowKeyQuick(t *testing.T) {
	// For random single-column int rows, hashed-key equality must track value
	// equality exactly (the hash itself may collide; the encoded bytes never).
	var h1, h2 KeyHasher
	f := func(a, b int64) bool {
		ra, rb := Row{Int(a)}, Row{Int(b)}
		_, ka := h1.HashKey(ra, []int{0})
		_, kb := h2.HashKey(rb, []int{0})
		return (string(ka) == string(kb)) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSchemaAndIndex(t *testing.T) {
	s := NewSchema("uid:int", "price:float", "town:string")
	if s.Arity() != 3 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.Index("price") != 1 {
		t.Errorf("Index(price) = %d", s.Index("price"))
	}
	if s.Index("missing") != -1 {
		t.Errorf("Index(missing) = %d", s.Index("missing"))
	}
	if _, err := s.MustIndex("missing"); err == nil {
		t.Error("MustIndex(missing) succeeded")
	}
}

func TestSchemaConcatRenames(t *testing.T) {
	a := NewSchema("id:int", "v:int")
	b := NewSchema("id:int", "w:int")
	c := a.Concat(b)
	if c.Arity() != 4 {
		t.Fatalf("arity = %d", c.Arity())
	}
	if c.Index("r_id") != 2 {
		t.Errorf("collision not renamed: %s", c)
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("a:int", "b:float", "c:string")
	p := s.Project([]int{2, 0})
	want := NewSchema("c:string", "a:int")
	if !p.Equal(want) {
		t.Errorf("Project = %s, want %s", p, want)
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := New("t", NewSchema("a:int"))
	if err := r.Append(Row{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Append(Row{Int(1)}); err != nil {
		t.Errorf("valid append rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := New("props", NewSchema("id:int", "price:float", "town:string"))
	r.MustAppend(Row{Int(1), Float(250000.5), Str("Cambridge")})
	r.MustAppend(Row{Int(2), Float(-1), Str("")})
	r.LogicalBytes = 1 << 30

	got, err := DecodeBytes("props", r.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Errorf("schema %s != %s", got.Schema, r.Schema)
	}
	if got.LogicalBytes != r.LogicalBytes {
		t.Errorf("logical %d != %d", got.LogicalBytes, r.LogicalBytes)
	}
	if got.Fingerprint() != r.Fingerprint() {
		t.Errorf("rows differ:\n%s\nvs\n%s", got.Fingerprint(), r.Fingerprint())
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(ids []int64, weights []float64) bool {
		r := New("q", NewSchema("id:int", "w:float"))
		n := len(ids)
		if len(weights) < n {
			n = len(weights)
		}
		for i := 0; i < n; i++ {
			w := weights[i]
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 0
			}
			r.MustAppend(Row{Int(ids[i]), Float(w)})
		}
		got, err := DecodeBytes("q", r.EncodeBytes())
		if err != nil {
			return false
		}
		return got.Fingerprint() == r.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"no header\n",
		"#schema\tbadspec\n#logical\t0\n",
		"#schema\ta:int\nmissing logical\n",
		"#schema\ta:int\n#logical\t0\n1\t2\n", // arity
		"#schema\ta:int\n#logical\t0\nxyz\n",  // parse
	}
	for _, c := range cases {
		if _, err := Decode("bad", strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c)
		}
	}
}

func TestScaleRatio(t *testing.T) {
	r := New("t", NewSchema("a:int"))
	r.MustAppend(Row{Int(12345)})
	if r.ScaleRatio() != 1 {
		t.Errorf("no logical size: ratio = %v", r.ScaleRatio())
	}
	phys := r.PhysicalBytes()
	r.LogicalBytes = phys * 100
	if got := r.ScaleRatio(); math.Abs(got-100) > 1e-9 {
		t.Errorf("ratio = %v, want 100", got)
	}
}

func TestEffectiveBytes(t *testing.T) {
	r := New("t", NewSchema("a:int"))
	r.MustAppend(Row{Int(7)})
	if r.EffectiveBytes() != r.PhysicalBytes() {
		t.Error("effective should default to physical")
	}
	r.LogicalBytes = 999
	if r.EffectiveBytes() != 999 {
		t.Error("effective should use logical when set")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New("t", NewSchema("a:int"))
	r.MustAppend(Row{Int(1)})
	c := r.Clone()
	c.Rows[0][0] = Int(99)
	if r.Rows[0][0].I != 1 {
		t.Error("Clone shares row storage")
	}
}

func TestSortRowsAndFingerprint(t *testing.T) {
	r := New("t", NewSchema("a:int", "b:string"))
	r.MustAppend(Row{Int(2), Str("b")})
	r.MustAppend(Row{Int(1), Str("a")})
	r.SortRows()
	if r.Rows[0][0].I != 1 {
		t.Errorf("not sorted: %v", r.Rows)
	}
	// Fingerprint is order independent.
	r2 := New("t", NewSchema("a:int", "b:string"))
	r2.MustAppend(Row{Int(1), Str("a")})
	r2.MustAppend(Row{Int(2), Str("b")})
	if r.Fingerprint() != r2.Fingerprint() {
		t.Error("fingerprint depends on row order")
	}
}
