package relation

import "sort"

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

func sortStrings(s []string) { sort.Strings(s) }
