package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// rowsEqual compares two row sets for exact (kind-and-content) equality.
func rowsEqual(t *testing.T, got, want []Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d arity %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("%s: row %d col %d: %#v != %#v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// adversarialRelation holds the value shapes the codecs have historically
// disagreed on: empty strings, separators inside strings, negative and
// extreme (NaN-free) floats, negative and boundary ints.
func adversarialRelation(tsvSafe bool) *Relation {
	r := New("adv", NewSchema("i:int", "f:float", "s:string"))
	strs := []string{"", "plain", "with:colon", "  padded  ", "#schema", "0", "-7.25"}
	if !tsvSafe {
		strs = append(strs, "tab\there", "new\nline", "\t", "\n", "trailing\t")
	}
	ints := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	floats := []float64{0, math.Copysign(0, -1), -0.25, 1e300, -1e-300,
		math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	n := len(strs) * len(ints) * len(floats)
	_ = n
	for _, s := range strs {
		for _, i := range ints {
			for _, f := range floats {
				r.MustAppend(Row{Int(i), Float(f), Str(s)})
			}
		}
	}
	return r
}

// TestColumnarRoundTripMatchesTSV proves columnar Encode→Decode is
// row-identical to TSV Encode→Decode for every TSV-representable
// adversarial value, serially and chunk-parallel.
func TestColumnarRoundTripMatchesTSV(t *testing.T) {
	t.Parallel()
	r := adversarialRelation(true)
	r.LogicalBytes = 12345

	viaTSV, err := DecodeBytesOpts("adv", r.EncodeBytesOpts(forceSerial), forceSerial)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]CodecOptions{"serial": forceSerial, "parallel": forceParallel} {
		enc := r.EncodeColumnar(opts)
		if SniffCodec(enc) != CodecColumnar {
			t.Fatalf("%s: columnar stream not sniffed as columnar", name)
		}
		viaCol, err := DecodeBytesOpts("adv", enc, opts)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, viaCol.Rows, viaTSV.Rows, name+": columnar vs TSV round trip")
		if viaCol.LogicalBytes != viaTSV.LogicalBytes {
			t.Fatalf("%s: logical bytes %d != %d", name, viaCol.LogicalBytes, viaTSV.LogicalBytes)
		}
		if !viaCol.Schema.Equal(viaTSV.Schema) {
			t.Fatalf("%s: schema %s != %s", name, viaCol.Schema, viaTSV.Schema)
		}
	}
}

// TestColumnarRoundTripExact proves the columnar codec round-trips values
// the TSV format cannot even represent (tabs and newlines inside strings).
func TestColumnarRoundTripExact(t *testing.T) {
	t.Parallel()
	r := adversarialRelation(false)
	dec, err := DecodeBytes("adv", r.EncodeColumnar(CodecOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, dec.Rows, r.Rows, "columnar exact round trip")
}

// TestColumnarParallelMatchesSerial pins byte-identical output for the
// serial and per-column-parallel encoders.
func TestColumnarParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	r := codecRelation(500)
	serial := r.EncodeColumnar(forceSerial)
	parallel := r.EncodeColumnar(forceParallel)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel columnar encode produced different bytes than serial")
	}
}

// TestColumnarEmptyRelation round-trips a zero-row relation.
func TestColumnarEmptyRelation(t *testing.T) {
	t.Parallel()
	r := New("empty", NewSchema("a:int", "b:string"))
	r.LogicalBytes = 99
	dec, err := DecodeBytes("empty", r.EncodeColumnar(CodecOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Rows) != 0 || dec.LogicalBytes != 99 || !dec.Schema.Equal(r.Schema) {
		t.Fatalf("empty round trip: %d rows, logical %d, schema %s", len(dec.Rows), dec.LogicalBytes, dec.Schema)
	}
}

// TestColumnarSmallerThanTSV sanity-checks the size win that motivates the
// codec: on the mixed-type codec relation the columnar stream must encode
// to well under the TSV size (the CI streaming benchmark gates the exact
// ratio).
func TestColumnarSmallerThanTSV(t *testing.T) {
	t.Parallel()
	r := codecRelation(5000)
	tsv := len(r.EncodeBytes())
	col := len(r.EncodeColumnar(CodecOptions{}))
	if col >= tsv {
		t.Fatalf("columnar %dB >= TSV %dB", col, tsv)
	}
}

// TestColumnarTruncated checks corrupted streams fail instead of panicking.
func TestColumnarTruncated(t *testing.T) {
	t.Parallel()
	r := codecRelation(100)
	enc := r.EncodeColumnar(CodecOptions{})
	for _, cut := range []int{5, 7, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		if _, err := DecodeBytes("t", enc[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

// FuzzColumnarRoundTrip fuzzes single-row round trips: the columnar codec
// must reproduce the value exactly, and must agree with the TSV round trip
// whenever the string is TSV-representable. NaN floats are skipped (they
// are unequal to themselves under Value.Equal, and the pipeline never
// produces them).
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(int64(0), 0.0, "")
	f.Add(int64(-1), -0.25, "with:colon")
	f.Add(int64(math.MaxInt64), math.MaxFloat64, "tab\there")
	f.Add(int64(math.MinInt64), math.SmallestNonzeroFloat64, "new\nline")
	f.Add(int64(42), math.Inf(-1), "#schema")
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string) {
		if math.IsNaN(fl) {
			t.Skip("NaN is not a pipeline value")
		}
		r := New("fz", NewSchema("i:int", "f:float", "s:string"))
		r.MustAppend(Row{Int(i), Float(fl), Str(s)})
		dec, err := DecodeBytes("fz", r.EncodeColumnar(CodecOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, dec.Rows, r.Rows, "columnar")
		if !strings.ContainsAny(s, "\t\n\r") {
			viaTSV, err := DecodeBytes("fz", r.EncodeBytes())
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, dec.Rows, viaTSV.Rows, "columnar vs TSV")
		}
	})
}
