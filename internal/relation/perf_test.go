package relation

import (
	"bytes"
	"fmt"
	"testing"
)

// codecRelation builds a relation with mixed types and adversarial values
// (empty strings, colons, negative floats) sized to exercise both codec
// paths.
func codecRelation(rows int) *Relation {
	r := New("t", NewSchema("id:int", "w:float", "s:string"))
	for i := 0; i < rows; i++ {
		s := fmt.Sprintf("row:%d", i)
		if i%7 == 0 {
			s = ""
		}
		r.MustAppend(Row{
			Int(int64(i - rows/2)),
			Float(float64(i)*-0.25 + 0.5),
			Str(s),
		})
	}
	r.LogicalBytes = 1 << 20
	return r
}

var (
	forceSerial   = CodecOptions{ParallelThreshold: 1 << 30}
	forceParallel = CodecOptions{ParallelThreshold: 1}
)

// TestParallelCodecMatchesSerial forces the chunk-parallel Encode/DecodeBytes
// paths on small data and checks they are byte- and row-identical to the
// serial paths. Thresholds are per-call options, so this runs in parallel
// with every other codec test without racing on package state.
func TestParallelCodecMatchesSerial(t *testing.T) {
	t.Parallel()
	r := codecRelation(500)

	serial := r.EncodeBytesOpts(forceSerial)
	parallel := r.EncodeBytesOpts(forceParallel)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel Encode produced different bytes than serial")
	}

	for name, opts := range map[string]CodecOptions{"serial": forceSerial, "parallel": forceParallel} {
		dec, err := DecodeBytesOpts("t", serial, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec.Rows) != len(r.Rows) {
			t.Fatalf("%s: decoded %d rows, want %d", name, len(dec.Rows), len(r.Rows))
		}
		for i := range r.Rows {
			for j := range r.Rows[i] {
				if !dec.Rows[i][j].Equal(r.Rows[i][j]) {
					t.Fatalf("%s: row %d col %d: %v != %v", name, i, j, dec.Rows[i][j], r.Rows[i][j])
				}
			}
		}
		if dec.LogicalBytes != r.LogicalBytes {
			t.Errorf("%s: logical bytes %d != %d", name, dec.LogicalBytes, r.LogicalBytes)
		}
	}
}

// TestCodecOptionsDefaultThreshold pins that a zero CodecOptions falls back
// to the package default.
func TestCodecOptionsDefaultThreshold(t *testing.T) {
	t.Parallel()
	if got := (CodecOptions{}).threshold(); got != CodecParallelThreshold {
		t.Fatalf("zero options threshold = %d, want %d", got, CodecParallelThreshold)
	}
	if got := (CodecOptions{ParallelThreshold: 3}).threshold(); got != 3 {
		t.Fatalf("explicit threshold = %d, want 3", got)
	}
}

// BenchmarkRowKey compares the legacy allocation-per-row string key against
// the hashed scratch-buffer key used by the group-by/join kernels.
func BenchmarkRowKey(b *testing.B) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Int(int64(i % 64)), Float(float64(i) * 0.5), Str(fmt.Sprintf("s%d", i%32))}
	}
	cols := []int{0, 2}
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				_ = r.Key(cols)
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		var h KeyHasher
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				_, _ = h.HashKey(r, cols)
			}
		}
	})
}

// BenchmarkEncodeDecode measures the TSV codecs serially and chunk-parallel
// on the same 20k-row relation, plus the columnar codec for comparison.
func BenchmarkEncodeDecode(b *testing.B) {
	r := codecRelation(20000)
	enc := r.EncodeBytes()
	col := r.EncodeColumnar(CodecOptions{})
	run := func(name string, opts CodecOptions, fn func(b *testing.B, opts CodecOptions)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			fn(b, opts)
		})
	}
	run("encode-serial", forceSerial, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			_ = r.EncodeBytesOpts(opts)
		}
	})
	run("encode-parallel", forceParallel, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			_ = r.EncodeBytesOpts(opts)
		}
	})
	run("decode-serial", forceSerial, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBytesOpts("t", enc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("decode-parallel", forceParallel, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBytesOpts("t", enc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("encode-columnar", forceSerial, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			_ = r.EncodeColumnar(opts)
		}
	})
	run("decode-columnar", forceSerial, func(b *testing.B, opts CodecOptions) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBytesOpts("t", col, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
