package relation

import (
	"bytes"
	"fmt"
	"testing"
)

// codecRelation builds a relation with mixed types and adversarial values
// (empty strings, colons, negative floats) sized to exercise both codec
// paths.
func codecRelation(rows int) *Relation {
	r := New("t", NewSchema("id:int", "w:float", "s:string"))
	for i := 0; i < rows; i++ {
		s := fmt.Sprintf("row:%d", i)
		if i%7 == 0 {
			s = ""
		}
		r.MustAppend(Row{
			Int(int64(i - rows/2)),
			Float(float64(i)*-0.25 + 0.5),
			Str(s),
		})
	}
	r.LogicalBytes = 1 << 20
	return r
}

// TestParallelCodecMatchesSerial forces the chunk-parallel Encode/DecodeBytes
// paths on small data and checks they are byte- and row-identical to the
// serial paths.
func TestParallelCodecMatchesSerial(t *testing.T) {
	r := codecRelation(500)
	old := CodecParallelThreshold
	defer func() { CodecParallelThreshold = old }()

	CodecParallelThreshold = 1 << 30 // force serial
	serial := r.EncodeBytes()

	CodecParallelThreshold = 1 // force parallel
	parallel := r.EncodeBytes()
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel Encode produced different bytes than serial")
	}

	dec, err := DecodeBytes("t", serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Rows) != len(r.Rows) {
		t.Fatalf("decoded %d rows, want %d", len(dec.Rows), len(r.Rows))
	}
	for i := range r.Rows {
		for j := range r.Rows[i] {
			if !dec.Rows[i][j].Equal(r.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, dec.Rows[i][j], r.Rows[i][j])
			}
		}
	}
	if dec.LogicalBytes != r.LogicalBytes {
		t.Errorf("logical bytes %d != %d", dec.LogicalBytes, r.LogicalBytes)
	}
}

// BenchmarkRowKey compares the legacy allocation-per-row string key against
// the hashed scratch-buffer key used by the group-by/join kernels.
func BenchmarkRowKey(b *testing.B) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Int(int64(i % 64)), Float(float64(i) * 0.5), Str(fmt.Sprintf("s%d", i%32))}
	}
	cols := []int{0, 2}
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				_ = r.Key(cols)
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		var h KeyHasher
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				_, _ = h.HashKey(r, cols)
			}
		}
	})
}

// BenchmarkEncodeDecode measures the TSV codecs serially and chunk-parallel
// on the same 20k-row relation.
func BenchmarkEncodeDecode(b *testing.B) {
	r := codecRelation(20000)
	enc := r.EncodeBytes()
	run := func(name string, threshold int, fn func(b *testing.B)) {
		b.Run(name, func(b *testing.B) {
			old := CodecParallelThreshold
			CodecParallelThreshold = threshold
			defer func() { CodecParallelThreshold = old }()
			b.ReportAllocs()
			fn(b)
		})
	}
	run("encode-serial", 1<<30, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = r.EncodeBytes()
		}
	})
	run("encode-parallel", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = r.EncodeBytes()
		}
	})
	run("decode-serial", 1<<30, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBytes("t", enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("decode-parallel", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBytes("t", enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
