package core

import (
	"fmt"
	"strings"

	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// Explain renders a partitioning with the estimator's reasoning: per job,
// the chosen engine, the estimated phase volumes (pull/process/shuffle/
// push), whether a recorded runtime short-circuited the estimate, and the
// per-engine costs that were compared. It is the "why did Musketeer pick
// this?" view exposed by `cmd/musketeer -explain`.
func Explain(part *Partitioning, est *Estimator, candidates []*engines.Engine) string {
	var b strings.Builder
	algo := "dynamic heuristic"
	if part.Exhaustive {
		algo = "exhaustive search"
	}
	fmt.Fprintf(&b, "partitioning: %d job(s), estimated total %v (%s)\n", len(part.Jobs), part.Cost, algo)
	// With accumulated evidence (calibration updates or workflow history),
	// also render what a first-run planner would have chosen, so the
	// learning delta — pre- vs post-learning engine and estimate — is
	// visible per job.
	var seed *Estimator
	if est.cal.Version() > 0 || est.History.Coverage(est.DAGHash(est.dag)) > 0 {
		seed, _ = est.SeedView()
	}
	for i, job := range part.Jobs {
		fmt.Fprintf(&b, "\njob %d: %s\n", i+1, job.Frag)
		v := explainVolumes(est, job.Frag, job.Engine)
		fmt.Fprintf(&b, "  volumes: pull=%s proc=%s shuffle=%s push=%s\n",
			mbStr(v.Pull), mbStr(v.Proc), mbStr(v.Shuffle), mbStr(v.Push))
		if w := job.Frag.While(); w != nil {
			fmt.Fprintf(&b, "  iterative: ~%d iteration(s)", est.Iters(w))
			if ir.DetectGraphIdiom(w) != nil {
				b.WriteString(", graph idiom detected (vertex-centric back-ends eligible)")
			}
			b.WriteByte('\n')
		}
		if job.Frag.DAG() != nil {
			if s, ok := est.History.LookupRuntime(est.DAGHash(job.Frag.DAG()), FragmentKey(job.Frag), job.Engine.Name()); ok {
				fmt.Fprintf(&b, "  recorded runtime: %.1fs (from a previous run of this job)\n", s)
			}
		}
		fmt.Fprintf(&b, "  engine costs:")
		for _, eng := range candidates {
			c := est.FragmentCost(job.Frag, eng)
			cell := fmt.Sprintf(" %s=%v", eng.Name(), c)
			if c == Infeasible {
				cell = fmt.Sprintf(" %s=infeasible", eng.Name())
			}
			if eng.Name() == job.Engine.Name() {
				cell += "*"
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		if seed != nil {
			preEng, preCost := bestEngine(seed, job.Frag, candidates)
			post := est.FragmentCost(job.Frag, job.Engine)
			if preEng != nil && preEng.Name() != job.Engine.Name() {
				fmt.Fprintf(&b, "  learning delta: pre-learning choice %s (%v) -> calibrated choice %s (%v)\n",
					preEng.Name(), preCost, job.Engine.Name(), post)
			} else if preEng != nil {
				fmt.Fprintf(&b, "  learning delta: choice unchanged (%s), estimate %v -> %v\n",
					preEng.Name(), preCost, post)
			}
		}
	}
	return b.String()
}

// explainVolumes recomputes the estimated volume breakdown of a fragment on
// its chosen engine (the quantities FragmentCost feeds the cost model).
func explainVolumes(est *Estimator, f *ir.Fragment, eng *engines.Engine) engines.Volumes {
	v := engines.Volumes{}
	for _, in := range f.ExtIn {
		v.Pull += est.Size(in)
	}
	for _, out := range f.ExtOut {
		v.Push += est.Size(out)
	}
	if w := f.While(); w != nil && w.Params.Body != nil {
		iters := est.Iters(w)
		if iters == 0 {
			iters = DefaultIterEstimate
		}
		est.addOpVolumes(&v, w.Params.Body.Ops, eng, int64(iters))
		return v
	}
	est.addOpVolumes(&v, f.ComputeOps(), eng, 1)
	return v
}

func mbStr(bytes int64) string {
	switch {
	case bytes >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(bytes)/1e9)
	case bytes >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(bytes)/1e6)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
