package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// --- calibration store properties -------------------------------------

// ratesOf flattens a Rates struct for invariant checks.
func ratesOf(r engines.Rates) map[string]float64 {
	return map[string]float64{
		"overhead_s": r.OverheadS,
		"pull":       r.PullMBps,
		"load":       r.LoadMBps,
		"proc":       r.ProcMBps,
		"graph_proc": r.GraphProcMBps,
		"push":       r.PushMBps,
		"shuffle":    r.ShuffleMBps,
	}
}

func TestCalibrationZeroObservationsIsSeed(t *testing.T) {
	// The zero-observation state must be indistinguishable from the Table-1
	// seed: exact rate equality per engine, and bit-identical fragment
	// scores (EstimateCostRates at SeedRates vs plain EstimateCost).
	cal := NewCalibration()
	if cal.Version() != 0 {
		t.Fatalf("fresh calibration version = %d", cal.Version())
	}
	c := cluster.EC2(100)
	v := engines.Volumes{Pull: 5e9, Proc: 12e9, AggProc: 2e9, Shuffle: 3e9, Push: 1e9, Gen: 8e9, Peak: 4e9}
	for _, eng := range engines.StandardEngines() {
		if got, want := cal.Rates(eng), eng.SeedRates(); got != want {
			t.Errorf("%s: zero-observation rates %+v != seed %+v", eng.Name(), got, want)
		}
		seeded := eng.EstimateCostRates(c, v, cal.Rates(eng))
		if direct := eng.EstimateCost(c, v); seeded != direct {
			t.Errorf("%s: EstimateCostRates(seed) = %v, EstimateCost = %v", eng.Name(), seeded, direct)
		}
	}
	if _, ok := cal.Selectivity(ir.OpJoin); ok {
		t.Error("fresh calibration reports selectivity evidence")
	}
}

func TestCalibrationRatesStayPositiveUnderAnyUpdates(t *testing.T) {
	// Property: no observation sequence — however extreme or corrupt — may
	// drive a learned rate to zero, negative, or outside the seed clamp
	// band [seed/8, seed·8].
	r := rand.New(rand.NewSource(11))
	extremes := []float64{0, 1e-12, 1e12, -3, math.NaN(), math.Inf(1)}
	for _, eng := range engines.StandardEngines() {
		cal := NewCalibration()
		seed := ratesOf(eng.SeedRates())
		for i := 0; i < 400; i++ {
			obs := engines.Rates{}
			fields := []*float64{
				&obs.OverheadS, &obs.PullMBps, &obs.LoadMBps, &obs.ProcMBps,
				&obs.GraphProcMBps, &obs.PushMBps, &obs.ShuffleMBps,
			}
			for _, f := range fields {
				switch r.Intn(3) {
				case 0:
					*f = extremes[r.Intn(len(extremes))]
				case 1:
					*f = r.Float64() * 1000
				}
			}
			cal.ObserveRates(eng, obs)
			learned := ratesOf(cal.Rates(eng))
			for name, s := range seed {
				l := learned[name]
				if s == 0 {
					if l != 0 {
						t.Fatalf("%s %s: phase absent in seed but learned %v", eng.Name(), name, l)
					}
					continue
				}
				if !(l > 0) || l < s/rateClampFactor-1e-9 || l > s*rateClampFactor+1e-9 {
					t.Fatalf("%s %s: learned %v escaped clamp band [%v, %v]", eng.Name(), name, l, s/rateClampFactor, s*rateClampFactor)
				}
			}
		}
	}
}

func TestCalibrationSelectivityClampedAndDamped(t *testing.T) {
	cal := NewCalibration()
	// Garbage observations must be no-ops: no version bump, no state.
	for _, bad := range []float64{-1, math.NaN(), maxSelectivity + 1} {
		cal.ObserveSelectivity(ir.OpJoin, bad)
	}
	if cal.Version() != 0 {
		t.Fatalf("rejected observations bumped version to %d", cal.Version())
	}
	// A valid observation eases halfway from the conservative seed.
	cal.ObserveSelectivity(ir.OpJoin, 1.0)
	got, ok := cal.Selectivity(ir.OpJoin)
	want := 3.0 + SelectivityDamping*(1.0-3.0)
	if !ok || math.Abs(got-want) > 1e-12 {
		t.Errorf("damped JOIN selectivity = %v (%v), want %v", got, ok, want)
	}
	// Repeated extreme-but-valid observations stay within (0, max].
	for i := 0; i < 100; i++ {
		cal.ObserveSelectivity(ir.OpJoin, maxSelectivity)
	}
	if got, _ := cal.Selectivity(ir.OpJoin); !(got > 0) || got > maxSelectivity {
		t.Errorf("learned selectivity %v escaped (0, %v]", got, maxSelectivity)
	}
}

func TestCalibrationVersionInvalidatesScores(t *testing.T) {
	// Learned rates must take effect on the very next score: the memoized
	// fragment choices are keyed to the calibration version, and the
	// un-memoized FragmentCost path reads current rates directly.
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	h := NewHistory()
	est, err := NewEstimator(dag, fs, cluster.Local(7), h)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ir.NewFragment(dag, dag.Ops)
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.Naiad()
	before := est.FragmentCost(whole, eng)
	seed := eng.SeedRates()
	slow := seed
	slow.ProcMBps = seed.ProcMBps / 4
	h.Calibration().ObserveRates(eng, slow)
	after := est.FragmentCost(whole, eng)
	if after <= before {
		t.Errorf("slower learned proc rate did not raise the score: %v -> %v", before, after)
	}
}

func TestEstimatesMonotoneInInputSize(t *testing.T) {
	// Property: at any fixed calibration state, a strictly larger input
	// must never yield a cheaper fragment score.
	h := NewHistory()
	// Exercise the learned-rate path too, not just the seed.
	h.Calibration().ObserveRates(engines.Naiad(), engines.Rates{ProcMBps: 100, PullMBps: 90})
	var prev cluster.Seconds
	for i, scale := range []int64{10, 100, 1000, 10000} {
		dag := maxPropertyPrice()
		fs := seedPropertyDFS(t, scale)
		est, err := NewEstimator(dag, fs, cluster.Local(7), h)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := ir.NewFragment(dag, dag.Ops)
		if err != nil {
			t.Fatal(err)
		}
		cost := est.FragmentCost(whole, engines.Naiad())
		if cost <= 0 {
			t.Fatalf("scale %d: non-positive cost %v", scale, cost)
		}
		if i > 0 && cost < prev {
			t.Errorf("scale %d: cost %v below smaller input's %v", scale, cost, prev)
		}
		prev = cost
	}
}

// --- damped history observations --------------------------------------

func TestObserveDampedConvergesMonotonically(t *testing.T) {
	h := NewHistory()
	truth := Observation{OutRatio: 0.2, InBytes: 1000, OutBytes: 200, ProcBytes: 1200}
	prior := 3.0
	prevDist := math.Inf(1)
	for i := 0; i < 12; i++ {
		h.ObserveDamped("w", 1, truth, prior, SelectivityDamping)
		got, _ := h.Lookup("w", 1)
		dist := math.Abs(got.OutRatio-truth.OutRatio) +
			math.Abs(float64(got.OutBytes-truth.OutBytes)) +
			math.Abs(float64(got.ProcBytes-truth.ProcBytes))
		if dist > prevDist {
			t.Fatalf("update %d: distance to truth grew %v -> %v (%+v)", i, prevDist, dist, got)
		}
		prevDist = dist
	}
	got, _ := h.Lookup("w", 1)
	if math.Abs(got.OutRatio-truth.OutRatio) > 1e-3 {
		t.Errorf("ratio did not converge: %v", got.OutRatio)
	}
	if got.InBytes != truth.InBytes {
		t.Errorf("in bytes %d, want exact %d", got.InBytes, truth.InBytes)
	}
	if math.Abs(float64(got.OutBytes-truth.OutBytes)) > 1 || math.Abs(float64(got.ProcBytes-truth.ProcBytes)) > 2 {
		t.Errorf("volumes did not converge: %+v vs %+v", got, truth)
	}
	// First evidence must ease from the prior, not jump to the measurement.
	h2 := NewHistory()
	h2.ObserveDamped("w", 1, truth, prior, SelectivityDamping)
	first, _ := h2.Lookup("w", 1)
	if want := prior + SelectivityDamping*(truth.OutRatio-prior); math.Abs(first.OutRatio-want) > 1e-12 {
		t.Errorf("first update ratio = %v, want eased %v", first.OutRatio, want)
	}
	if first.OutBytes == truth.OutBytes {
		t.Error("first update jumped straight to the measured output volume")
	}
}

func TestObserveIterationsPreservesDampedEvidence(t *testing.T) {
	h := NewHistory()
	h.ObserveDamped("w", 4, Observation{OutRatio: 0.5, InBytes: 100, OutBytes: 50, ProcBytes: 150}, 1.0, SelectivityDamping)
	before, _ := h.Lookup("w", 4)
	h.ObserveIterations("w", 4, 9)
	after, _ := h.Lookup("w", 4)
	if after.Iterations != 9 {
		t.Errorf("iterations = %d", after.Iterations)
	}
	if after.OutRatio != before.OutRatio || after.OutBytes != before.OutBytes || after.ProcBytes != before.ProcBytes {
		t.Errorf("iteration merge stomped damped evidence: %+v -> %+v", before, after)
	}
	// On a fresh op the merge seeds a neutral ratio.
	h.ObserveIterations("w", 5, 3)
	fresh, _ := h.Lookup("w", 5)
	if fresh.OutRatio != 1 || fresh.Iterations != 3 {
		t.Errorf("fresh iteration observation = %+v", fresh)
	}
}

// --- persistence -------------------------------------------------------

func TestHistoryRoundTripCarriesCalibration(t *testing.T) {
	h := NewHistory()
	h.ObserveDamped("w1", 2, Observation{OutRatio: 0.4, InBytes: 900, OutBytes: 360, ProcBytes: 1260}, 1.0, SelectivityDamping)
	h.ObserveRuntime("w1", "0,1,", "spark", 12.5)
	eng := engines.Spark()
	h.Calibration().ObserveRates(eng, engines.Rates{ProcMBps: 95, PullMBps: 60})
	h.Calibration().ObserveSelectivity(ir.OpAgg, 0.1)
	path := filepath.Join(t.TempDir(), "history.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := h2.Lookup("w1", 2)
	if !ok {
		t.Fatal("observation lost")
	}
	if want, _ := h.Lookup("w1", 2); obs != want {
		t.Errorf("observation round trip: %+v != %+v", obs, want)
	}
	// The calibration snapshot must round-trip exactly (JSON-comparable:
	// time stamps marshal identically).
	a, _ := json.Marshal(h.Calibration().Snapshot())
	b, _ := json.Marshal(h2.Calibration().Snapshot())
	if string(a) != string(b) {
		t.Errorf("calibration round trip:\n%s\nvs\n%s", a, b)
	}
	if h2.Calibration().Version() == 0 {
		t.Error("loaded calibration lost its version")
	}
	if got := h2.Calibration().Rates(eng); got == eng.SeedRates() {
		t.Error("loaded calibration lost learned rates")
	}
}

func TestCalibrationImmaterialUpdatesKeepVersion(t *testing.T) {
	// A converged model re-observing its own fixed point must not bump the
	// version: steady-state feedback would otherwise invalidate every
	// version-pinned cache (estimator memos, serve-mode plan cache) on
	// every run, for estimate changes too small to alter any decision.
	cal := NewCalibration()
	eng := engines.Naiad()
	slow := eng.SeedRates()
	slow.ProcMBps /= 2
	cal.ObserveRates(eng, slow)
	if cal.Version() == 0 {
		t.Fatal("material first rate observation did not bump the version")
	}
	for i := 0; i < 64; i++ {
		cal.ObserveRates(eng, slow)
	}
	v := cal.Version()
	cal.ObserveRates(eng, slow)
	if got := cal.Version(); got != v {
		t.Errorf("converged rate re-observation bumped version %d -> %d", v, got)
	}

	cal.ObserveSelectivity(ir.OpJoin, 0.25)
	if cal.Version() == v {
		t.Fatal("material first selectivity observation did not bump the version")
	}
	for i := 0; i < 64; i++ {
		cal.ObserveSelectivity(ir.OpJoin, 0.25)
	}
	v = cal.Version()
	cal.ObserveSelectivity(ir.OpJoin, 0.25)
	if got := cal.Version(); got != v {
		t.Errorf("converged selectivity re-observation bumped version %d -> %d", v, got)
	}
}
