package core

import (
	"container/list"
	"fmt"
	"sync"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
)

// PlanCache memoizes partitioning decisions across workflow submissions.
// The serve path keys it on ir.CanonicalHash of the *optimized* DAG plus
// the engine set, so two submissions that differ only in relation names or
// operator insertion order share an entry; on a hit the compile/optimize/
// partition-search phases are skipped entirely (paper §5.1's exhaustive
// search is the expensive step this amortizes).
//
// Entries never store operator pointers — a cached plan must replay onto a
// *different* DAG built from a later submission. Instead each job is a
// recipe: the chosen engine's name plus the job's operator positions in
// ir.CanonicalOrder. Hash-equal DAGs have positionally corresponding
// canonical orders, so replaying a recipe reconstructs semantically
// identical fragments (ir.NewFragment recomputes ExtIn/ExtOut from the new
// DAG's real edges). Replay is checked — operator types must match the
// recipe and fragment construction must succeed — and any mismatch demotes
// the lookup to a miss, so a hash collision degrades to a cold compile, not
// a wrong plan.
//
// Entries are pinned to a calibration version (History.Calibration):
// learned-rate bumps change fragment costs, so a plan computed under other
// rates may no longer be the optimum. A version-mismatched entry is dropped
// on lookup. Because every execution's own feedback bumps the version, the
// serve path tags entries with the version read *after* the plan's run
// completes (Store post-run, Touch after a hit's run) — the pin then means
// "calibration has not changed since this plan last proved itself", and
// only foreign activity (another workflow's feedback, a calibration load)
// invalidates it.
//
// The cache is a bounded LRU; all methods are safe for concurrent use and
// nil-safe (a nil *PlanCache never hits).
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evicts *obs.Counter
}

// planEntry is one cached partitioning.
type planEntry struct {
	key        string
	calVersion uint64
	exhaustive bool
	cost       cluster.Seconds
	jobs       []jobRecipe
	// nops pins the DAG size the recipe was built against; replay onto a
	// colliding DAG of a different size is rejected outright.
	nops int
}

// jobRecipe is one job of a cached partitioning, expressed positionally.
type jobRecipe struct {
	engine string
	opIdx  []int       // positions in ir.CanonicalOrder of the whole DAG
	types  []ir.OpType // replay sanity check, parallel to opIdx
	cost   cluster.Seconds
}

// NewPlanCache returns a cache bounded to capacity entries. Capacity <= 0
// returns nil (caching disabled). The registry may be nil; otherwise the
// cache exports plan_cache_{hit,miss,evict}_total.
func NewPlanCache(capacity int, reg *obs.Registry) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	c := &PlanCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
	if reg != nil {
		c.hits = reg.Counter("plan_cache_hit_total")
		c.misses = reg.Counter("plan_cache_miss_total")
		c.evicts = reg.Counter("plan_cache_evict_total")
	}
	return c
}

// PlanKey builds the cache key for a DAG under an engine set: the
// name/order-independent canonical hash plus the engine names (the same
// workflow partitioned over fewer engines is a different plan).
func PlanKey(dag *ir.DAG, engs []*engines.Engine) string {
	return ir.CanonicalHash(dag) + "/" + engsKey(engs)
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Store records a partitioning computed for dag (under key, at calibration
// version calVersion) as a name-free recipe. Plans whose operators cannot
// be located in the DAG (defensive — fragments always come from it) are
// dropped silently.
func (c *PlanCache) Store(key string, dag *ir.DAG, calVersion uint64, p *Partitioning) {
	if c == nil || p == nil {
		return
	}
	pos := make(map[*ir.Op]int, len(dag.Ops))
	for i, op := range ir.CanonicalOrder(dag) {
		pos[op] = i
	}
	e := &planEntry{
		key:        key,
		calVersion: calVersion,
		exhaustive: p.Exhaustive,
		cost:       p.Cost,
		jobs:       make([]jobRecipe, 0, len(p.Jobs)),
		nops:       len(dag.Ops),
	}
	for _, j := range p.Jobs {
		r := jobRecipe{
			engine: j.Engine.Name(),
			opIdx:  make([]int, 0, len(j.Frag.Ops)),
			types:  make([]ir.OpType, 0, len(j.Frag.Ops)),
			cost:   j.Cost,
		}
		for _, op := range j.Frag.Ops {
			i, ok := pos[op]
			if !ok {
				return // fragment op outside the DAG; don't cache
			}
			r.opIdx = append(r.opIdx, i)
			r.types = append(r.types, op.Type)
		}
		e.jobs = append(e.jobs, r)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
		if c.evicts != nil {
			c.evicts.Add(1)
		}
	}
}

// Touch re-tags the entry under key with a fresh calibration version and
// marks it most recently used — the hit path's post-run revalidation, so
// the replayed plan's own feedback does not invalidate it for the next
// submission. No-op when the entry is gone (evicted mid-run).
func (c *PlanCache) Touch(key string, calVersion uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).calVersion = calVersion
		c.ll.MoveToFront(el)
	}
}

// Lookup replays the cached plan for key onto dag, which must be the
// optimized DAG of the new submission. It returns (nil, false) — counting
// a miss — when the entry is absent, was computed under a different
// calibration version, names an engine not in engine, or fails replay
// validation. A stale-version entry is removed so the recomputed plan can
// take its slot.
func (c *PlanCache) Lookup(key string, dag *ir.DAG, calVersion uint64, engine map[string]*engines.Engine) (*Partitioning, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return c.miss()
	}
	e := el.Value.(*planEntry)
	if e.calVersion != calVersion {
		c.ll.Remove(el)
		delete(c.items, key)
		if c.evicts != nil {
			c.evicts.Add(1)
		}
		c.mu.Unlock()
		return c.miss()
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()

	p, err := c.replay(e, dag, engine)
	if err != nil {
		return c.miss()
	}
	if c.hits != nil {
		c.hits.Add(1)
	}
	return p, true
}

func (c *PlanCache) miss() (*Partitioning, bool) {
	if c.misses != nil {
		c.misses.Add(1)
	}
	return nil, false
}

// replay reconstructs a Partitioning from a recipe against a fresh DAG.
func (c *PlanCache) replay(e *planEntry, dag *ir.DAG, engine map[string]*engines.Engine) (*Partitioning, error) {
	if len(dag.Ops) != e.nops {
		return nil, fmt.Errorf("core: plan cache: DAG size %d != recipe %d", len(dag.Ops), e.nops)
	}
	order := ir.CanonicalOrder(dag)
	jobs := make([]Assignment, 0, len(e.jobs))
	for _, r := range e.jobs {
		eng, ok := engine[r.engine]
		if !ok {
			return nil, fmt.Errorf("core: plan cache: engine %q not available", r.engine)
		}
		ops := make([]*ir.Op, 0, len(r.opIdx))
		for i, idx := range r.opIdx {
			if idx < 0 || idx >= len(order) {
				return nil, fmt.Errorf("core: plan cache: op index %d out of range", idx)
			}
			op := order[idx]
			if op.Type != r.types[i] {
				return nil, fmt.Errorf("core: plan cache: op %d is %s, recipe says %s", idx, op.Type, r.types[i])
			}
			ops = append(ops, op)
		}
		frag, err := ir.NewFragment(dag, ops)
		if err != nil {
			return nil, fmt.Errorf("core: plan cache: %w", err)
		}
		jobs = append(jobs, Assignment{Frag: frag, Engine: eng, Cost: r.cost})
	}
	return &Partitioning{Jobs: jobs, Cost: e.cost, Exhaustive: e.exhaustive}, nil
}
