package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
)

// countdownDAG builds a WHILE workflow decrementing a counter until the
// "pending" condition relation empties (start iterations needed), capped
// at maxIter.
func countdownDAG(t *testing.T, start, maxIter int) (*ir.DAG, *dfs.DFS) {
	t.Helper()
	d := ir.NewDAG()
	in := d.AddInput("counter", "in/counter", relation.NewSchema("v:int"))
	body := ir.NewDAG()
	bIn := body.AddInput("counter", "", relation.NewSchema("v:int"))
	dec := body.Add(ir.OpArith, "next", ir.Params{Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(1)), AOp: ir.ArithSub}, bIn)
	body.Add(ir.OpSelect, "pending", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, dec)
	d.Add(ir.OpWhile, "done", ir.Params{
		Body: body, MaxIter: maxIter, CondRel: "pending",
		Carried: map[string]string{"counter": "next"},
	}, in)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := dfs.New()
	counter := relation.New("counter", relation.NewSchema("v:int"))
	counter.MustAppend(relation.Row{relation.Int(int64(start))})
	counter.LogicalBytes = 1e9
	if err := fs.WriteRelation("in/counter", counter); err != nil {
		t.Fatal(err)
	}
	return d, fs
}

// TestWhileDriverNonConvergence: a driver-looped WHILE that exhausts its
// iteration cap with the stop condition still non-empty must fail with a
// diagnostic naming the loop and the iteration count — not silently return
// the truncated state as if it were the fixpoint.
func TestWhileDriverNonConvergence(t *testing.T) {
	d, fs := countdownDAG(t, 10, 3) // needs 10 iterations, capped at 3
	est, err := NewEstimator(d, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := MapTo(d, est, engines.Registry()["hadoop"]) // no native iteration → driver loop
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: cluster.Local(7)}, Mode: engines.ModeOptimized}
	_, err = r.Execute(d, part)
	if err == nil {
		t.Fatal("non-convergent WHILE reported success")
	}
	for _, want := range []string{"did not converge", "done", "3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
	if _, err := fs.ReadRelation("done"); err == nil {
		t.Error("truncated WHILE state was published as the loop output")
	}
}

// TestRunnerRetriesTransientFaults: with a chaos plan killing whole job
// attempts, a Runner whose scheduler retries transient failures must
// complete the workflow; without a retry budget the same plan fails it.
func TestRunnerRetriesTransientFaults(t *testing.T) {
	plan := &chaos.Plan{JobCrashProb: 0.5, Seed: 11}
	run := func(s *sched.Scheduler) (*WorkflowResult, error) {
		dag := maxPropertyPrice()
		fs := seedPropertyDFS(t, 1000)
		est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		part, err := MapTo(dag, est, engines.Registry()["hadoop"])
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{
			Ctx:   engines.RunContext{DFS: fs, Cluster: cluster.Local(7), Chaos: plan},
			Mode:  engines.ModeOptimized,
			Sched: s,
		}
		return r.Execute(dag, part)
	}

	res, err := run(sched.New(sched.Options{Workers: 4, MaxRetries: 20, Retryable: engines.IsTransient}))
	if err != nil {
		t.Fatalf("retrying scheduler failed: %v", err)
	}
	if len(res.Jobs) == 0 {
		t.Fatal("no jobs ran")
	}

	if _, err := run(sched.New(sched.Options{Workers: 4})); !engines.IsTransient(err) {
		t.Errorf("without retries the injected failure should surface, got %v", err)
	}
}

// TestExecuteCtxPreCancelled: a context cancelled before submission must
// stop the workflow without running any job.
func TestExecuteCtxPreCancelled(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := MapTo(dag, est, engines.Registry()["hadoop"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: cluster.Local(7)}, Mode: engines.ModeOptimized}
	if _, err := r.ExecuteCtx(ctx, dag, part); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, out := range dag.Sinks() {
		if _, err := fs.ReadRelation(out.Out); err == nil {
			t.Errorf("sink %q materialized despite pre-cancelled context", out.Out)
		}
	}
}
