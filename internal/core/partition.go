package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/sched"
)

// Assignment maps one fragment (≡ back-end job) to the engine chosen for
// it, with its estimated cost.
type Assignment struct {
	Frag   *ir.Fragment
	Engine *engines.Engine
	Cost   cluster.Seconds
}

// Partitioning is a complete decomposition of a workflow into jobs.
type Partitioning struct {
	Jobs []Assignment
	Cost cluster.Seconds
	// Exhaustive records which algorithm produced it.
	Exhaustive bool
}

// String renders the partitioning one job per line.
func (p *Partitioning) String() string {
	var b strings.Builder
	for _, j := range p.Jobs {
		fmt.Fprintf(&b, "%-12s %v  %s\n", j.Engine.Name(), j.Cost, j.Frag)
	}
	fmt.Fprintf(&b, "total: %v\n", p.Cost)
	return b.String()
}

// Engines lists the distinct engines used, sorted.
func (p *Partitioning) Engines() []string {
	set := make(map[string]bool, len(p.Jobs))
	for _, j := range p.Jobs {
		set[j.Engine.Name()] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExhaustiveLimit is the operator count up to which Partition uses the
// exhaustive search. The paper ran it under a second up to 13 operators
// (§6.6, Fig 13). With fragment costs memoized on the Estimator the search
// re-prices each candidate group once instead of once per branch: the
// 16-operator prefix of the extended NetFlix workflow partitions in ~45ms
// even single-threaded (~64ms in the seed), and 18 operators stays around
// 200ms (was ~320ms); multi-core hosts additionally split the placement
// tree across workers. The cutover therefore now sits at 16 — beyond that
// the exponential tree growth still dominates and the dynamic heuristic
// takes over.
const ExhaustiveLimit = 16

// Partition decomposes the DAG into engine-assigned jobs, choosing the
// exhaustive search for small workflows and the dynamic-programming
// heuristic for large ones (paper §5.1).
func Partition(dag *ir.DAG, est *Estimator, engs []*engines.Engine) (*Partitioning, error) {
	if len(computeOps(dag)) <= ExhaustiveLimit {
		return PartitionExhaustive(dag, est, engs, 0)
	}
	return PartitionDynamic(dag, est, engs)
}

func computeOps(dag *ir.DAG) []*ir.Op {
	order, err := dag.TopoSort()
	if err != nil {
		order = dag.Ops
	}
	var ops []*ir.Op
	for _, op := range order {
		if op.Type != ir.OpInput {
			ops = append(ops, op)
		}
	}
	return ops
}

// bestEngine returns the cheapest engine for a fragment.
func bestEngine(est *Estimator, f *ir.Fragment, engs []*engines.Engine) (*engines.Engine, cluster.Seconds) {
	var best *engines.Engine
	bestCost := Infeasible
	for _, e := range engs {
		if c := est.FragmentCost(f, e); c < bestCost {
			best, bestCost = e, c
		}
	}
	return best, bestCost
}

// PartitionDynamic implements the dynamic-programming heuristic (§5.1.2):
// it topologically sorts the DAG into a single linear ordering, then finds
// the minimum-cost segmentation of that ordering, where each segment's cost
// is the cheapest engine's cost for running the segment as one job:
//
//	C[n] = min over k < n of C[k] + min_s c_s(o_{k+1} … o_n)
//
// Runtime is polynomial in the number of operators; the price is that only
// partitions respecting the linear order are explored, so merge
// opportunities broken by the ordering are missed (paper Fig 16).
func PartitionDynamic(dag *ir.DAG, est *Estimator, engs []*engines.Engine) (*Partitioning, error) {
	ops := computeOps(dag)
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: nothing to partition")
	}
	return dynamicOverOrder(dag, est, engs, ops)
}

// PartitionDynamicMulti runs the dynamic heuristic over several distinct
// topological orderings and keeps the cheapest segmentation. This is the
// paper's §8 mitigation for the heuristic's Fig 16 limitation: a single
// linear order can separate operators that would merge profitably; trying a
// handful of randomized orders recovers most of those opportunities while
// staying polynomial. Orders are derived deterministically from the DAG, so
// results are reproducible.
func PartitionDynamicMulti(dag *ir.DAG, est *Estimator, engs []*engines.Engine, orders int) (*Partitioning, error) {
	if orders < 1 {
		orders = 1
	}
	best, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		return nil, err
	}
	//mkvet:ignore determinism fixed seed 42: the tie-break shuffle is replayable by construction, every run draws the identical sequence
	r := rand.New(rand.NewSource(42))
	for i := 1; i < orders; i++ {
		ops, err := randomTopoOrder(dag, r)
		if err != nil {
			return nil, err
		}
		cand, err := dynamicOverOrder(dag, est, engs, ops)
		if err != nil {
			continue // this order admits no feasible segmentation
		}
		if cand.Cost < best.Cost {
			best = cand
		}
	}
	return best, nil
}

// randomTopoOrder produces a topological order of the DAG's compute
// operators using Kahn's algorithm with randomized tie-breaking.
func randomTopoOrder(dag *ir.DAG, r *rand.Rand) ([]*ir.Op, error) {
	indeg := map[*ir.Op]int{}
	for _, op := range dag.Ops {
		indeg[op] += 0
		for range op.Inputs {
			indeg[op]++
		}
	}
	cons := dag.Consumers()
	var ready []*ir.Op
	for _, op := range dag.Ops {
		if indeg[op] == 0 {
			ready = append(ready, op)
		}
	}
	var order []*ir.Op
	for len(ready) > 0 {
		i := r.Intn(len(ready))
		op := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		if op.Type != ir.OpInput {
			order = append(order, op)
		}
		for _, c := range cons[op] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(computeOps(dag)) {
		return nil, fmt.Errorf("core: cycle during randomized topological sort")
	}
	return order, nil
}

func dynamicOverOrder(dag *ir.DAG, est *Estimator, engs []*engines.Engine, ops []*ir.Op) (*Partitioning, error) {
	n := len(ops)
	type cell struct {
		cost cluster.Seconds
		prev int
		eng  *engines.Engine
	}
	best := make([]cell, n+1)
	best[0] = cell{cost: 0, prev: -1}
	ekey := engsKey(engs)
	for i := 1; i <= n; i++ {
		best[i] = cell{cost: Infeasible, prev: -1}
		for k := i - 1; k >= 0; k-- {
			if best[k].cost == Infeasible {
				continue
			}
			// Memoized: PartitionDynamicMulti re-scores the same segments
			// across orders, and the WHILE cost model re-partitions loop
			// bodies per engine.
			ch := est.groupChoice(dag, ops[k:i], engs, ekey)
			if ch.eng == nil {
				continue
			}
			if total := best[k].cost + ch.cost; total < best[i].cost {
				best[i] = cell{cost: total, prev: k, eng: ch.eng}
			}
		}
	}
	if best[n].cost == Infeasible {
		return nil, fmt.Errorf("core: no feasible partitioning for engines %v", engineNames(engs))
	}
	// Reconstruct segments back to front.
	var jobs []Assignment
	for i := n; i > 0; {
		k := best[i].prev
		frag, err := ir.NewFragment(dag, ops[k:i])
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Assignment{Frag: frag, Engine: best[i].eng, Cost: best[i].cost - best[k].cost})
		i = k
	}
	// Reverse into execution order.
	for l, r := 0, len(jobs)-1; l < r; l, r = l+1, r-1 {
		jobs[l], jobs[r] = jobs[r], jobs[l]
	}
	return &Partitioning{Jobs: jobs, Cost: best[n].cost}, nil
}

func engineNames(engs []*engines.Engine) []string {
	names := make([]string, len(engs))
	for i, e := range engs {
		names[i] = e.Name()
	}
	return names
}

// parallelExhaustiveMinOps is the operator count below which the exhaustive
// search stays serial: the placement tree is too small to amortize goroutine
// and task-cloning overhead.
const parallelExhaustiveMinOps = 8

// PartitionExhaustive explores every valid partition of the DAG (§5.1.1):
// operators are placed, in topological order, either into a new job or into
// any existing job they can legally join; each complete partition is scored
// with the cheapest engine per job. Branch-and-bound pruning cuts partial
// partitions that already cost more than the best complete one; fragment
// costs are memoized on the Estimator, so re-examined groups (and later
// searches over the same workflow) are map hits. For non-trivial workflows
// the top of the placement tree is expanded into independent subtrees that
// search in parallel, sharing the branch-and-bound upper bound through an
// atomic. The search is exponential in the number of operators; a non-zero
// budget makes it return the best partition found when time runs out.
func PartitionExhaustive(dag *ir.DAG, est *Estimator, engs []*engines.Engine, budget time.Duration) (*Partitioning, error) {
	ops := computeOps(dag)
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: nothing to partition")
	}
	deadline := time.Time{}
	if budget > 0 {
		//mkvet:ignore determinism opt-in wall-clock search budget: with the default zero budget the clock is never read and the search is exhaustive+deterministic
		deadline = time.Now().Add(budget)
	}
	s := &exhaustiveState{
		dag: dag, est: est, engs: engs, ekey: engsKey(engs), ops: ops,
		deadline: deadline,
	}
	s.bound.Store(infeasibleBits)

	bestCost := Infeasible
	var bestGroups [][]*ir.Op
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(ops) >= parallelExhaustiveMinOps {
		tasks := s.seedTasks(4 * workers)
		results := make([]exhaustiveWorker, len(tasks))
		sched.ForEach(workers, len(tasks), func(ti int) {
			w := &results[ti]
			w.s, w.bestCost = s, Infeasible
			w.search(tasks[ti].i, tasks[ti].groups, tasks[ti].partial)
		})
		// Reduce in task order with strict improvement, so equal-cost optima
		// resolve to the earliest subtree in placement order.
		for i := range results {
			if results[i].bestCost < bestCost {
				bestCost, bestGroups = results[i].bestCost, results[i].bestGroups
			}
		}
	} else {
		w := &exhaustiveWorker{s: s, bestCost: Infeasible}
		w.search(0, nil, 0)
		bestCost, bestGroups = w.bestCost, w.bestGroups
	}
	if bestCost == Infeasible {
		return nil, fmt.Errorf("core: no feasible partitioning for engines %v", engineNames(engs))
	}
	jobs := make([]Assignment, 0, len(bestGroups))
	for _, group := range bestGroups {
		frag, err := ir.NewFragment(dag, group)
		if err != nil {
			return nil, err
		}
		ch := est.groupChoice(dag, group, engs, s.ekey)
		jobs = append(jobs, Assignment{Frag: frag, Engine: ch.eng, Cost: ch.cost})
	}
	sortJobsTopologically(dag, jobs)
	return &Partitioning{Jobs: jobs, Cost: bestCost, Exhaustive: true}, nil
}

// fragChoice is a memoized (cheapest engine, cost) pair for one operator
// group on one engine set.
type fragChoice struct {
	cost cluster.Seconds
	eng  *engines.Engine
}

// engsKey renders an engine set as a cache-key prefix.
func engsKey(engs []*engines.Engine) string {
	var b strings.Builder
	for _, e := range engs {
		b.WriteString(e.Name())
		b.WriteByte('|')
	}
	return b.String()
}

// groupChoice returns the memoized cheapest engine and cost for running the
// operator group as a single job on any engine of the set. Safe for
// concurrent use; an infeasible group caches {Infeasible, nil}.
func (e *Estimator) groupChoice(dag *ir.DAG, group []*ir.Op, engs []*engines.Engine, ekey string) fragChoice {
	// Memoized scores are only valid for the calibration version they were
	// computed under; a version bump (new evidence) flushes them first.
	e.syncCalibration()
	key := ekey + groupKey(group)
	e.fragMu.RLock()
	c, ok := e.fragCache[key]
	e.fragMu.RUnlock()
	if ok {
		e.searchMemoHits.Add(1)
		return c
	}
	e.searchExplored.Add(1)
	choice := fragChoice{cost: Infeasible}
	if frag, err := ir.NewFragment(dag, group); err == nil {
		eng, cost := bestEngine(e, frag, engs)
		choice = fragChoice{cost: cost, eng: eng}
	}
	e.fragMu.Lock()
	e.fragCache[key] = choice
	e.fragMu.Unlock()
	return choice
}

// exhaustiveState is the search context shared by all workers: read-only
// after construction except for the atomic bound and the expiry flag.
type exhaustiveState struct {
	dag      *ir.DAG
	est      *Estimator
	engs     []*engines.Engine
	ekey     string
	ops      []*ir.Op
	deadline time.Time
	expired  atomic.Bool
	// bound holds the float64 bits of the cheapest complete partition found
	// by any worker; every worker prunes against it.
	bound atomic.Uint64
}

var infeasibleBits = math.Float64bits(math.Inf(1))

func (s *exhaustiveState) loadBound() cluster.Seconds {
	return cluster.Seconds(math.Float64frombits(s.bound.Load()))
}

// lowerBound publishes a newly found complete-partition cost if it improves
// the shared bound.
func (s *exhaustiveState) lowerBound(c cluster.Seconds) {
	for {
		cur := s.bound.Load()
		if math.Float64frombits(cur) <= float64(c) {
			return
		}
		if s.bound.CompareAndSwap(cur, math.Float64bits(float64(c))) {
			return
		}
	}
}

func (s *exhaustiveState) groupCost(group []*ir.Op) cluster.Seconds {
	return s.est.groupChoice(s.dag, group, s.engs, s.ekey).cost
}

// exhaustiveTask is one independent subtree of the placement search:
// ops[:i] are already placed into groups at summed cost partial. Tasks own
// their groups (deep copies), so workers mutate them freely.
type exhaustiveTask struct {
	i       int
	groups  [][]*ir.Op
	partial cluster.Seconds
}

func cloneGroups(groups [][]*ir.Op) [][]*ir.Op {
	c := make([][]*ir.Op, len(groups))
	for i, g := range groups {
		c[i] = append([]*ir.Op(nil), g...)
	}
	return c
}

// seedTasks expands the top of the placement tree level by level until at
// least target subtrees exist (or the tree bottoms out), enumerating
// children in the same order the serial search visits them.
func (s *exhaustiveState) seedTasks(target int) []exhaustiveTask {
	frontier := []exhaustiveTask{{i: 0}}
	for depth := 0; depth < len(s.ops) && len(frontier) < target; depth++ {
		next := make([]exhaustiveTask, 0, 2*len(frontier))
		for _, t := range frontier {
			if t.i == len(s.ops) {
				next = append(next, t)
				continue
			}
			op := s.ops[t.i]
			if solo := s.groupCost([]*ir.Op{op}); solo < Infeasible {
				g := append(cloneGroups(t.groups), []*ir.Op{op})
				next = append(next, exhaustiveTask{i: t.i + 1, groups: g, partial: t.partial + solo})
			}
			for gi := range t.groups {
				if s.mergeCreatesCycle(t.groups, gi, op) {
					continue
				}
				old := s.groupCost(t.groups[gi])
				grown := append(append([]*ir.Op(nil), t.groups[gi]...), op)
				merged := s.groupCost(grown)
				if merged < Infeasible {
					g := cloneGroups(t.groups)
					g[gi] = grown
					next = append(next, exhaustiveTask{i: t.i + 1, groups: g, partial: t.partial - old + merged})
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
	}
	return frontier
}

// exhaustiveWorker runs the serial branch-and-bound search over one subtree,
// keeping its own best and publishing improvements to the shared bound.
type exhaustiveWorker struct {
	s          *exhaustiveState
	bestCost   cluster.Seconds
	bestGroups [][]*ir.Op
}

// prune returns the cost at or above which a partial partition cannot beat
// the best known complete one (local or global).
func (w *exhaustiveWorker) prune() cluster.Seconds {
	if g := w.s.loadBound(); g < w.bestCost {
		return g
	}
	return w.bestCost
}

// FragmentKey identifies a fragment by its sorted operator IDs; stable
// across rebuilds of the same workflow (IDs are construction-order
// deterministic).
func FragmentKey(f *ir.Fragment) string {
	return groupKey(f.Ops)
}

func groupKey(group []*ir.Op) string {
	ids := make([]int, len(group))
	for i, op := range group {
		ids[i] = op.ID
	}
	sort.Ints(ids)
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ',')
	}
	return string(b)
}

// search places ops[i] into every legal position. groups holds the current
// partial partition; partial is its cost so far (sum of current group
// costs). Group costs are recomputed when a group changes.
func (w *exhaustiveWorker) search(i int, groups [][]*ir.Op, partial cluster.Seconds) {
	if w.s.expired.Load() {
		return
	}
	//mkvet:ignore determinism opt-in wall-clock search budget: guarded by deadline.IsZero, so the default configuration never observes the clock
	if !w.s.deadline.IsZero() && time.Now().After(w.s.deadline) {
		w.s.expired.Store(true)
		return
	}
	if partial >= w.prune() {
		return // branch and bound
	}
	if i == len(w.s.ops) {
		w.bestCost = partial
		w.bestGroups = make([][]*ir.Op, len(groups))
		for gi, g := range groups {
			w.bestGroups[gi] = append([]*ir.Op(nil), g...)
		}
		w.s.lowerBound(partial)
		return
	}
	op := w.s.ops[i]
	// Option A: start a new job.
	solo := w.s.groupCost([]*ir.Op{op})
	if solo < Infeasible {
		groups = append(groups, []*ir.Op{op})
		w.search(i+1, groups, partial+solo)
		groups = groups[:len(groups)-1]
	}
	// Option B: join an existing job, if no inter-job cycle arises and the
	// merged job remains feasible for some engine.
	for gi := range groups {
		if w.s.mergeCreatesCycle(groups, gi, op) {
			continue
		}
		old := w.s.groupCost(groups[gi])
		groups[gi] = append(groups[gi], op)
		merged := w.s.groupCost(groups[gi])
		if merged < Infeasible {
			w.search(i+1, groups, partial-old+merged)
		}
		groups[gi] = groups[gi][:len(groups[gi])-1]
	}
}

// mergeCreatesCycle reports whether adding op to groups[gi] would make the
// job quotient graph cyclic: some operator outside the group lies on a path
// from a group member to op.
func (s *exhaustiveState) mergeCreatesCycle(groups [][]*ir.Op, gi int, op *ir.Op) bool {
	member := map[*ir.Op]bool{}
	for _, m := range groups[gi] {
		member[m] = true
	}
	for _, m := range groups[gi] {
		// For every descendant v of m outside the group, if v reaches op,
		// the merged job would both feed and depend on v's job.
		for v := range s.est.reach[m] {
			if member[v] || v == op {
				continue
			}
			if s.est.Reaches(v, op) {
				return true
			}
		}
	}
	return false
}

// sortJobsTopologically orders jobs so producers precede consumers.
func sortJobsTopologically(dag *ir.DAG, jobs []Assignment) {
	pos := map[*ir.Op]int{}
	order, err := dag.TopoSort()
	if err != nil {
		return
	}
	for i, op := range order {
		pos[op] = i
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		return pos[jobs[a].Frag.Ops[0]] < pos[jobs[b].Frag.Ops[0]]
	})
}
