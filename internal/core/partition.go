package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// Assignment maps one fragment (≡ back-end job) to the engine chosen for
// it, with its estimated cost.
type Assignment struct {
	Frag   *ir.Fragment
	Engine *engines.Engine
	Cost   cluster.Seconds
}

// Partitioning is a complete decomposition of a workflow into jobs.
type Partitioning struct {
	Jobs []Assignment
	Cost cluster.Seconds
	// Exhaustive records which algorithm produced it.
	Exhaustive bool
}

// String renders the partitioning one job per line.
func (p *Partitioning) String() string {
	var b strings.Builder
	for _, j := range p.Jobs {
		fmt.Fprintf(&b, "%-12s %v  %s\n", j.Engine.Name(), j.Cost, j.Frag)
	}
	fmt.Fprintf(&b, "total: %v\n", p.Cost)
	return b.String()
}

// Engines lists the distinct engines used, sorted.
func (p *Partitioning) Engines() []string {
	set := map[string]bool{}
	for _, j := range p.Jobs {
		set[j.Engine.Name()] = true
	}
	var names []string
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExhaustiveLimit is the operator count up to which Partition uses the
// exhaustive search (paper §6.6: under a second up to 13 operators,
// exponential beyond).
const ExhaustiveLimit = 13

// Partition decomposes the DAG into engine-assigned jobs, choosing the
// exhaustive search for small workflows and the dynamic-programming
// heuristic for large ones (paper §5.1).
func Partition(dag *ir.DAG, est *Estimator, engs []*engines.Engine) (*Partitioning, error) {
	if len(computeOps(dag)) <= ExhaustiveLimit {
		return PartitionExhaustive(dag, est, engs, 0)
	}
	return PartitionDynamic(dag, est, engs)
}

func computeOps(dag *ir.DAG) []*ir.Op {
	order, err := dag.TopoSort()
	if err != nil {
		order = dag.Ops
	}
	var ops []*ir.Op
	for _, op := range order {
		if op.Type != ir.OpInput {
			ops = append(ops, op)
		}
	}
	return ops
}

// bestEngine returns the cheapest engine for a fragment.
func bestEngine(est *Estimator, f *ir.Fragment, engs []*engines.Engine) (*engines.Engine, cluster.Seconds) {
	var best *engines.Engine
	bestCost := Infeasible
	for _, e := range engs {
		if c := est.FragmentCost(f, e); c < bestCost {
			best, bestCost = e, c
		}
	}
	return best, bestCost
}

// PartitionDynamic implements the dynamic-programming heuristic (§5.1.2):
// it topologically sorts the DAG into a single linear ordering, then finds
// the minimum-cost segmentation of that ordering, where each segment's cost
// is the cheapest engine's cost for running the segment as one job:
//
//	C[n] = min over k < n of C[k] + min_s c_s(o_{k+1} … o_n)
//
// Runtime is polynomial in the number of operators; the price is that only
// partitions respecting the linear order are explored, so merge
// opportunities broken by the ordering are missed (paper Fig 16).
func PartitionDynamic(dag *ir.DAG, est *Estimator, engs []*engines.Engine) (*Partitioning, error) {
	ops := computeOps(dag)
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: nothing to partition")
	}
	return dynamicOverOrder(dag, est, engs, ops)
}

// PartitionDynamicMulti runs the dynamic heuristic over several distinct
// topological orderings and keeps the cheapest segmentation. This is the
// paper's §8 mitigation for the heuristic's Fig 16 limitation: a single
// linear order can separate operators that would merge profitably; trying a
// handful of randomized orders recovers most of those opportunities while
// staying polynomial. Orders are derived deterministically from the DAG, so
// results are reproducible.
func PartitionDynamicMulti(dag *ir.DAG, est *Estimator, engs []*engines.Engine, orders int) (*Partitioning, error) {
	if orders < 1 {
		orders = 1
	}
	best, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(42))
	for i := 1; i < orders; i++ {
		ops, err := randomTopoOrder(dag, r)
		if err != nil {
			return nil, err
		}
		cand, err := dynamicOverOrder(dag, est, engs, ops)
		if err != nil {
			continue // this order admits no feasible segmentation
		}
		if cand.Cost < best.Cost {
			best = cand
		}
	}
	return best, nil
}

// randomTopoOrder produces a topological order of the DAG's compute
// operators using Kahn's algorithm with randomized tie-breaking.
func randomTopoOrder(dag *ir.DAG, r *rand.Rand) ([]*ir.Op, error) {
	indeg := map[*ir.Op]int{}
	for _, op := range dag.Ops {
		indeg[op] += 0
		for range op.Inputs {
			indeg[op]++
		}
	}
	cons := dag.Consumers()
	var ready []*ir.Op
	for _, op := range dag.Ops {
		if indeg[op] == 0 {
			ready = append(ready, op)
		}
	}
	var order []*ir.Op
	for len(ready) > 0 {
		i := r.Intn(len(ready))
		op := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		if op.Type != ir.OpInput {
			order = append(order, op)
		}
		for _, c := range cons[op] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(computeOps(dag)) {
		return nil, fmt.Errorf("core: cycle during randomized topological sort")
	}
	return order, nil
}

func dynamicOverOrder(dag *ir.DAG, est *Estimator, engs []*engines.Engine, ops []*ir.Op) (*Partitioning, error) {
	n := len(ops)
	type cell struct {
		cost cluster.Seconds
		prev int
		eng  *engines.Engine
	}
	best := make([]cell, n+1)
	best[0] = cell{cost: 0, prev: -1}
	for i := 1; i <= n; i++ {
		best[i] = cell{cost: Infeasible, prev: -1}
		for k := i - 1; k >= 0; k-- {
			if best[k].cost == Infeasible {
				continue
			}
			frag, err := ir.NewFragment(dag, ops[k:i])
			if err != nil {
				return nil, err
			}
			eng, c := bestEngine(est, frag, engs)
			if eng == nil {
				continue
			}
			if total := best[k].cost + c; total < best[i].cost {
				best[i] = cell{cost: total, prev: k, eng: eng}
			}
		}
	}
	if best[n].cost == Infeasible {
		return nil, fmt.Errorf("core: no feasible partitioning for engines %v", engineNames(engs))
	}
	// Reconstruct segments back to front.
	var jobs []Assignment
	for i := n; i > 0; {
		k := best[i].prev
		frag, err := ir.NewFragment(dag, ops[k:i])
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Assignment{Frag: frag, Engine: best[i].eng, Cost: best[i].cost - best[k].cost})
		i = k
	}
	// Reverse into execution order.
	for l, r := 0, len(jobs)-1; l < r; l, r = l+1, r-1 {
		jobs[l], jobs[r] = jobs[r], jobs[l]
	}
	return &Partitioning{Jobs: jobs, Cost: best[n].cost}, nil
}

func engineNames(engs []*engines.Engine) []string {
	names := make([]string, len(engs))
	for i, e := range engs {
		names[i] = e.Name()
	}
	return names
}

// PartitionExhaustive explores every valid partition of the DAG (§5.1.1):
// operators are placed, in topological order, either into a new job or into
// any existing job they can legally join; each complete partition is scored
// with the cheapest engine per job. Branch-and-bound pruning cuts partial
// partitions that already cost more than the best complete one. The search
// is exponential in the number of operators; a non-zero budget makes it
// return the best partition found when time runs out.
func PartitionExhaustive(dag *ir.DAG, est *Estimator, engs []*engines.Engine, budget time.Duration) (*Partitioning, error) {
	ops := computeOps(dag)
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: nothing to partition")
	}
	deadline := time.Time{}
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	s := &exhaustiveState{
		dag: dag, est: est, engs: engs, ops: ops,
		fragCost: map[string]fragChoice{},
		deadline: deadline,
		bestCost: Infeasible,
	}
	s.search(0, nil, 0)
	if s.bestCost == Infeasible {
		return nil, fmt.Errorf("core: no feasible partitioning for engines %v", engineNames(engs))
	}
	var jobs []Assignment
	for _, group := range s.bestGroups {
		frag, err := ir.NewFragment(dag, group)
		if err != nil {
			return nil, err
		}
		eng, c := bestEngine(est, frag, engs)
		jobs = append(jobs, Assignment{Frag: frag, Engine: eng, Cost: c})
	}
	sortJobsTopologically(dag, jobs)
	return &Partitioning{Jobs: jobs, Cost: s.bestCost, Exhaustive: true}, nil
}

type fragChoice struct {
	cost cluster.Seconds
}

type exhaustiveState struct {
	dag      *ir.DAG
	est      *Estimator
	engs     []*engines.Engine
	ops      []*ir.Op
	fragCost map[string]fragChoice
	deadline time.Time
	expired  bool

	bestCost   cluster.Seconds
	bestGroups [][]*ir.Op
}

func (s *exhaustiveState) groupCost(group []*ir.Op) cluster.Seconds {
	key := groupKey(group)
	if c, ok := s.fragCost[key]; ok {
		return c.cost
	}
	frag, err := ir.NewFragment(s.dag, group)
	if err != nil {
		s.fragCost[key] = fragChoice{cost: Infeasible}
		return Infeasible
	}
	_, c := bestEngine(s.est, frag, s.engs)
	s.fragCost[key] = fragChoice{cost: c}
	return c
}

// FragmentKey identifies a fragment by its sorted operator IDs; stable
// across rebuilds of the same workflow (IDs are construction-order
// deterministic).
func FragmentKey(f *ir.Fragment) string {
	return groupKey(f.Ops)
}

func groupKey(group []*ir.Op) string {
	ids := make([]int, len(group))
	for i, op := range group {
		ids[i] = op.ID
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// search places ops[i] into every legal position. groups holds the current
// partial partition; partial is its cost so far (sum of current group
// costs). Group costs are recomputed when a group changes.
func (s *exhaustiveState) search(i int, groups [][]*ir.Op, partial cluster.Seconds) {
	if s.expired {
		return
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.expired = true
		return
	}
	if partial >= s.bestCost {
		return // branch and bound
	}
	if i == len(s.ops) {
		s.bestCost = partial
		s.bestGroups = make([][]*ir.Op, len(groups))
		for gi, g := range groups {
			s.bestGroups[gi] = append([]*ir.Op(nil), g...)
		}
		return
	}
	op := s.ops[i]
	// Option A: start a new job.
	solo := s.groupCost([]*ir.Op{op})
	if solo < Infeasible {
		groups = append(groups, []*ir.Op{op})
		s.search(i+1, groups, partial+solo)
		groups = groups[:len(groups)-1]
	}
	// Option B: join an existing job, if no inter-job cycle arises and the
	// merged job remains feasible for some engine.
	for gi := range groups {
		if s.mergeCreatesCycle(groups, gi, op) {
			continue
		}
		old := s.groupCost(groups[gi])
		groups[gi] = append(groups[gi], op)
		merged := s.groupCost(groups[gi])
		if merged < Infeasible {
			s.search(i+1, groups, partial-old+merged)
		}
		groups[gi] = groups[gi][:len(groups[gi])-1]
	}
}

// mergeCreatesCycle reports whether adding op to groups[gi] would make the
// job quotient graph cyclic: some operator outside the group lies on a path
// from a group member to op.
func (s *exhaustiveState) mergeCreatesCycle(groups [][]*ir.Op, gi int, op *ir.Op) bool {
	member := map[*ir.Op]bool{}
	for _, m := range groups[gi] {
		member[m] = true
	}
	for _, m := range groups[gi] {
		// For every descendant v of m outside the group, if v reaches op,
		// the merged job would both feed and depend on v's job.
		for v := range s.est.reach[m] {
			if member[v] || v == op {
				continue
			}
			if s.est.Reaches(v, op) {
				return true
			}
		}
	}
	return false
}

// sortJobsTopologically orders jobs so producers precede consumers.
func sortJobsTopologically(dag *ir.DAG, jobs []Assignment) {
	pos := map[*ir.Op]int{}
	order, err := dag.TopoSort()
	if err != nil {
		return
	}
	for i, op := range order {
		pos[op] = i
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		return pos[jobs[a].Frag.Ops[0]] < pos[jobs[b].Frag.Ops[0]]
	})
}
