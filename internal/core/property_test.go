package core

import (
	"fmt"
	"math/rand"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// randomWorkflow generates a small random-but-valid workflow: a few input
// tables and a chain/dag of schema-compatible operators. It exercises the
// whole pipeline the way testing/quick exercises a function: every seed is
// a new workflow.
type randomWorkflow struct {
	dag *ir.DAG
	fs  *dfs.DFS
}

func genRandomWorkflow(seed int64) (*randomWorkflow, error) {
	r := rand.New(rand.NewSource(seed))
	dag := ir.NewDAG()
	fs := dfs.New()

	// 2-3 input tables with (k:int, a:int, b:int) style schemas.
	nInputs := 2 + r.Intn(2)
	var avail []*ir.Op // ops whose output schema is (k,a,b) int columns
	schema := relation.NewSchema("k:int", "a:int", "b:int")
	for i := 0; i < nInputs; i++ {
		name := fmt.Sprintf("t%d", i)
		rel := relation.New(name, schema)
		rows := 20 + r.Intn(40)
		for j := 0; j < rows; j++ {
			rel.MustAppend(relation.Row{
				relation.Int(int64(r.Intn(8))),
				relation.Int(int64(r.Intn(100))),
				relation.Int(int64(r.Intn(100))),
			})
		}
		rel.LogicalBytes = rel.PhysicalBytes() * int64(1+r.Intn(100_000))
		if err := fs.WriteRelation("in/"+name, rel); err != nil {
			return nil, err
		}
		avail = append(avail, dag.AddInput(name, "in/"+name, schema))
	}

	// Operators that preserve the (k,a,b) shape, so any op can feed any
	// other and unions/joins stay compatible.
	nOps := 2 + r.Intn(6)
	for i := 0; i < nOps; i++ {
		in := avail[r.Intn(len(avail))]
		out := fmt.Sprintf("o%d", i)
		var op *ir.Op
		switch r.Intn(9) {
		case 0: // selective filter
			op = dag.Add(ir.OpSelect, out, ir.Params{
				Pred: ir.Cmp(ir.ColRef("a"), ir.CmpLt, ir.LitOp(relation.Int(int64(r.Intn(100))))),
			}, in)
		case 1: // identity-shape projection (may reorder a/b)
			cols := []string{"k", "a", "b"}
			if r.Intn(2) == 0 {
				cols = []string{"k", "b", "a"}
			}
			op = dag.Add(ir.OpProject, out, ir.Params{Columns: cols, As: []string{"k", "a", "b"}}, in)
		case 2: // column algebra in place
			ops := []ir.ArithOp{ir.ArithAdd, ir.ArithSub, ir.ArithMul}
			op = dag.Add(ir.OpArith, out, ir.Params{
				Dst: "a", ALeft: ir.ColRef("a"), ARght: ir.LitOp(relation.Int(int64(1 + r.Intn(5)))),
				AOp: ops[r.Intn(len(ops))],
			}, in)
		case 3: // distinct
			op = dag.Add(ir.OpDistinct, out, ir.Params{}, in)
		case 4: // aggregation back to (k,a,b) via renamed sums
			op = dag.Add(ir.OpAgg, out+"_g", ir.Params{
				GroupBy: []string{"k"},
				Aggs: []ir.AggSpec{
					{Func: ir.AggSum, Col: "a", As: "a"},
					{Func: ir.AggSum, Col: "b", As: "b"},
				},
			}, in)
			op = dag.Add(ir.OpProject, out, ir.Params{Columns: []string{"k", "a", "b"}}, op)
		case 5: // union with another available relation
			other := avail[r.Intn(len(avail))]
			if other == in {
				op = dag.Add(ir.OpDistinct, out, ir.Params{}, in)
			} else {
				op = dag.Add(ir.OpUnion, out, ir.Params{}, in, other)
			}
		case 7: // sort (order-independent fingerprints keep equality checks valid)
			op = dag.Add(ir.OpSort, out, ir.Params{SortBy: []string{"k", "a"}, Desc: r.Intn(2) == 0}, in)
		case 8: // deterministic top-N: sort fully, then limit
			srt := dag.Add(ir.OpSort, out+"_s", ir.Params{SortBy: []string{"k", "a", "b"}}, in)
			op = dag.Add(ir.OpLimit, out, ir.Params{Limit: 1 + r.Intn(20)}, srt)
		default: // join on k, then project back to shape
			other := avail[r.Intn(len(avail))]
			if other == in {
				op = dag.Add(ir.OpDistinct, out, ir.Params{}, in)
			} else {
				j := dag.Add(ir.OpJoin, out+"_j", ir.Params{
					LeftCols: []string{"k"}, RightCols: []string{"k"},
				}, in, other)
				op = dag.Add(ir.OpProject, out, ir.Params{Columns: []string{"k", "a", "r_a"}, As: []string{"k", "a", "b"}}, j)
			}
		}
		avail = append(avail, op)
	}
	if err := dag.Validate(); err != nil {
		return nil, fmt.Errorf("seed %d: invalid generated DAG: %w", seed, err)
	}
	return &randomWorkflow{dag: dag, fs: fs}, nil
}

// cloneFS re-stages the workflow inputs onto a fresh filesystem.
func (rw *randomWorkflow) cloneFS(t *testing.T) *dfs.DFS {
	t.Helper()
	fs := dfs.New()
	for _, path := range rw.dag.InputNames() {
		rel, err := rw.fs.ReadRelation(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteRelation(path, rel); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// TestRandomWorkflowsCrossEngineEquality is the decoupling property the
// whole system rests on: for random workflows, every back-end that can run
// the workflow produces identical results — regardless of how the
// partitioner split it into jobs.
func TestRandomWorkflowsCrossEngineEquality(t *testing.T) {
	c := cluster.Local(7)
	engineNames := []string{"naiad", "spark", "serial", "hadoop", "metis"}
	reg := engines.Registry()
	for seed := int64(0); seed < 25; seed++ {
		rw, err := genRandomWorkflow(seed)
		if err != nil {
			t.Fatal(err)
		}
		sinks := rw.dag.Sinks()
		fingerprints := map[string]string{}
		for _, name := range engineNames {
			fs := rw.cloneFS(t)
			est, err := NewEstimator(rw.dag, fs, c, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			part, err := PartitionDynamic(rw.dag, est, []*engines.Engine{reg[name]})
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			runner := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, Mode: engines.ModeOptimized}
			if _, err := runner.Execute(rw.dag, part); err != nil {
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			var combined string
			for _, sink := range sinks {
				out, err := fs.ReadRelation(sink.Out)
				if err != nil {
					t.Fatalf("seed %d on %s: sink %s: %v", seed, name, sink.Out, err)
				}
				combined += sink.Out + ":" + out.Fingerprint() + "\n"
			}
			fingerprints[name] = combined
		}
		ref := fingerprints[engineNames[0]]
		for _, name := range engineNames[1:] {
			if fingerprints[name] != ref {
				t.Errorf("seed %d: %s results differ from %s", seed, name, engineNames[0])
			}
		}
	}
}

// TestRandomWorkflowsExhaustiveAtLeastAsGood asserts the partitioners'
// dominance relation on random workflows: the exhaustive search never
// returns a costlier partitioning than the single-order DP heuristic, and
// the multi-order heuristic never beats the exhaustive optimum.
func TestRandomWorkflowsExhaustiveAtLeastAsGood(t *testing.T) {
	c := cluster.EC2(16)
	engs := engines.StandardEngines()
	for seed := int64(100); seed < 120; seed++ {
		rw, err := genRandomWorkflow(seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := NewEstimator(rw.dag, rw.fs, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := PartitionDynamic(rw.dag, est, engs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exh, err := PartitionExhaustive(rw.dag, est, engs, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		const eps = 1.0000001
		if float64(exh.Cost) > float64(dyn.Cost)*eps {
			t.Errorf("seed %d: exhaustive %v worse than dynamic %v\nexh:\n%s\ndyn:\n%s",
				seed, exh.Cost, dyn.Cost, exh, dyn)
		}
		multi, err := PartitionDynamicMulti(rw.dag, est, engs, 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if float64(multi.Cost)*eps < float64(exh.Cost) {
			t.Errorf("seed %d: multi-order heuristic %v beats exhaustive optimum %v",
				seed, multi.Cost, exh.Cost)
		}
		if multi.Cost > dyn.Cost {
			t.Errorf("seed %d: multi-order %v worse than single order %v", seed, multi.Cost, dyn.Cost)
		}
	}
}

// TestRandomWorkflowsOptimizePreservesResults runs the optimizer over
// random workflows and checks results are unchanged.
func TestRandomWorkflowsOptimizePreservesResults(t *testing.T) {
	c := cluster.Local(7)
	for seed := int64(200); seed < 230; seed++ {
		rw, err := genRandomWorkflow(seed)
		if err != nil {
			t.Fatal(err)
		}
		run := func(dag *ir.DAG) map[string]string {
			fs := rw.cloneFS(t)
			est, err := NewEstimator(dag, fs, c, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			part, err := PartitionDynamic(dag, est, []*engines.Engine{engines.Naiad()})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			runner := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, Mode: engines.ModeOptimized}
			if _, err := runner.Execute(dag, part); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			out := map[string]string{}
			for _, sink := range dag.Sinks() {
				rel, err := fs.ReadRelation(sink.Out)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				out[sink.Out] = rel.Fingerprint()
			}
			return out
		}
		before := run(rw.dag)
		optimized := rw.dag.Clone()
		Optimize(optimized)
		if err := optimized.Validate(); err != nil {
			t.Fatalf("seed %d: optimizer broke the DAG: %v", seed, err)
		}
		after := run(optimized)
		// Sink names survive optimization (rewrites swap Out names to keep
		// the final operator's name stable).
		for name, fp := range before {
			if after[name] != fp {
				t.Errorf("seed %d: optimizer changed result %q", seed, name)
			}
		}
	}
}
