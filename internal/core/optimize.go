package core

import (
	"musketeer/internal/ir"
)

// Optimize applies Musketeer's IR-level query rewrites (paper §4.2): it
// re-orders operators so selective ones run closer to the start of the
// workflow and generative ones later, shrinking intermediate volumes for
// every back-end at once. The DAG is rewritten in place; the transformation
// preserves results (asserted by the equivalence tests).
//
// Implemented rules, applied to fixpoint:
//
//  1. SELECT pushdown through JOIN: a filter directly above an equi-join
//     whose predicate only references columns from one join side moves to
//     that side.
//
//  2. SELECT pushdown through PROJECT: a filter above a non-renaming
//     projection swaps below it (the projection's input has every column
//     the predicate needs).
//
//  3. SELECT fusion: two stacked filters merge into one conjunctive
//     predicate, saving an operator (and a pass, on naive back-ends).
//
//  4. Dead-input removal: INPUT operators nothing consumes are dropped —
//     the optimizer-side consumption of the analyzer's liveness pass
//     (which flags the same operators as warnings). Loop-carried body
//     inputs are kept even when unread: the carry contract names them.
//
// Rewrites only fire when the rewritten operator is the sole consumer of
// its input, so shared intermediates keep their original semantics.
func Optimize(dag *ir.DAG) int { return optimize(dag, nil) }

func optimize(dag *ir.DAG, keepInputs map[string]bool) int {
	rewrites := 0
	for {
		n := optimizePass(dag)
		rewrites += n
		if n == 0 {
			break
		}
	}
	rewrites += removeDeadInputs(dag, keepInputs)
	for _, op := range dag.Ops {
		if op.Params.Body != nil {
			bkeep := make(map[string]bool, len(op.Params.Carried))
			for in := range op.Params.Carried {
				bkeep[in] = true
			}
			rewrites += optimize(op.Params.Body, bkeep)
		}
	}
	return rewrites
}

// removeDeadInputs drops INPUT operators with no consumers in dag, except
// those whose relation names appear in keep (loop-carried inputs: the
// WHILE re-binds them by name every iteration even if the body text never
// reads them). Returns the number of operators removed.
func removeDeadInputs(dag *ir.DAG, keep map[string]bool) int {
	removed := 0
	cons := dag.Consumers()
	live := dag.Ops[:0]
	for _, op := range dag.Ops {
		if op.Type == ir.OpInput && len(cons[op]) == 0 && !keep[op.Out] {
			removed++
			continue
		}
		live = append(live, op)
	}
	dag.Ops = live
	return removed
}

func optimizePass(dag *ir.DAG) int {
	cons := dag.Consumers()
	for _, op := range dag.Ops {
		if op.Type != ir.OpSelect {
			continue
		}
		child := op.Inputs[0]
		if len(cons[child]) != 1 {
			continue // shared intermediate: unsafe to reorder
		}
		switch child.Type {
		case ir.OpJoin:
			if pushSelectIntoJoin(dag, op, child) {
				return 1
			}
		case ir.OpProject:
			if len(child.Params.As) == 0 && pushSelectBelowUnary(dag, op, child) {
				return 1
			}
		case ir.OpDistinct:
			if pushSelectBelowUnary(dag, op, child) {
				return 1
			}
		case ir.OpSelect:
			if fuseSelects(dag, op, child) {
				return 1
			}
		}
	}
	return 0
}

// pushSelectIntoJoin moves `sel` below `join` onto the side that supplies
// every predicate column:  σ(A ⋈ B) → σ(A) ⋈ B.
func pushSelectIntoJoin(dag *ir.DAG, sel, join *ir.Op) bool {
	schemas, err := dag.InferSchemas()
	if err != nil {
		return false
	}
	cols := sel.Params.Pred.Columns(nil)
	side := -1
	for i, in := range join.Inputs {
		has := true
		for _, c := range cols {
			if schemas[in].Index(c) < 0 {
				has = false
				break
			}
		}
		if has {
			side = i
			break
		}
	}
	if side < 0 {
		return false
	}
	// Rewire: join reads the filter; the filter reads the join's old side;
	// the select's consumers follow the join directly. Output names swap so
	// downstream references stay valid.
	oldSide := join.Inputs[side]
	join.Inputs[side] = sel
	sel.Inputs[0] = oldSide
	redirect(dag, sel, join)
	sel.Out, join.Out = "__pushed_"+sel.Out, sel.Out
	return true
}

// pushSelectBelowUnary swaps σ(u(X)) → u(σ(X)) for a unary operator whose
// input exposes the predicate columns unchanged.
func pushSelectBelowUnary(dag *ir.DAG, sel, child *ir.Op) bool {
	// For PROJECT the projected columns are a subset of the input's, so
	// the pushed-down filter still sees every predicate column.
	input := child.Inputs[0]
	child.Inputs[0] = sel
	sel.Inputs[0] = input
	redirect(dag, sel, child)
	sel.Out, child.Out = "__pushed_"+sel.Out, sel.Out
	return true
}

// fuseSelects merges σ_p(σ_q(X)) into σ_{q AND p}(X), removing the inner
// filter from the DAG.
func fuseSelects(dag *ir.DAG, sel, child *ir.Op) bool {
	sel.Params.Pred = ir.And(child.Params.Pred, sel.Params.Pred)
	sel.Inputs[0] = child.Inputs[0]
	for i, op := range dag.Ops {
		if op == child {
			dag.Ops = append(dag.Ops[:i], dag.Ops[i+1:]...)
			break
		}
	}
	return true
}

// redirect makes every consumer of `from` read `to` instead (except `to`
// itself).
func redirect(dag *ir.DAG, from, to *ir.Op) {
	for _, op := range dag.Ops {
		if op == to {
			continue
		}
		for i, in := range op.Inputs {
			if in == from {
				op.Inputs[i] = to
			}
		}
	}
}
