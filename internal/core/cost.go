package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"musketeer/internal/analysis"
	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// Infeasible is the cost of a partition containing non-mergeable operators
// (paper §5.1: "the cost of any partition containing non-mergeable
// operators is infinite").
var Infeasible = cluster.Seconds(math.Inf(1))

// DefaultIterEstimate is assumed for condition-only WHILE loops with no
// recorded iteration history.
const DefaultIterEstimate = 10

// hiBound returns the conservative first-run output-size factor of an
// operator relative to its total input volume (paper §5.2: "Musketeer
// applies conservative data size bounds... JOIN operators have unknown data
// size bounds"). Selective operators are bounded by their input; generative
// operators get deliberately pessimistic factors, which is what makes the
// first-run mapper shy away from merging past joins.
func hiBound(t ir.OpType) float64 {
	switch t {
	case ir.OpJoin:
		return 3.0
	case ir.OpCrossJoin:
		return 25.0
	case ir.OpUnion:
		return 1.0 // of the summed inputs
	case ir.OpUDF:
		return 2.0
	case ir.OpArith:
		return 1.1
	case ir.OpLimit:
		return 0.05 // top-N outputs are tiny relative to their input
	default: // SELECT, PROJECT, DISTINCT, INTERSECT, DIFFERENCE, AGG, SORT
		return 1.0
	}
}

// Estimator predicts per-operator data volumes for a workflow and scores
// fragment/engine combinations. It seeds source sizes from the DFS (the
// run-time input data size), propagates them through the DAG using
// conservative bounds, and substitutes observed ratios where workflow
// history exists.
type Estimator struct {
	Cluster *cluster.Cluster
	History *History

	dag    *ir.DAG
	sizes  map[*ir.Op]int64
	iters  map[*ir.Op]int
	inputs map[string]int64 // DFS path -> effective bytes
	// opObs caches each operator's history observation found during size
	// propagation, so volume accounting can prefer damped measured
	// per-iteration volumes (Observation.ProcBytes et al.) over the
	// in+out structural model.
	opObs map[*ir.Op]Observation
	// hashes caches DAG hashes (top-level and WHILE bodies) for history
	// lookups.
	hashes map[*ir.DAG]string
	// reach[op] is the set of ops transitively reachable from op
	// (descendants), used by the exhaustive partitioner's cycle check.
	reach map[*ir.Op]map[*ir.Op]bool
	// chaos, when non-nil, adds each engine's expected fault-recovery cost
	// to fragment scores, so the automatic mapper prefers engines with
	// cheaper recovery mechanisms under a configured fault rate.
	chaos *chaos.Plan
	// shuffleRatio, when in (0,1], scales the PULL/PUSH volumes of true
	// intra-run shuffle edges (not sources, not sinks) — the compact wire
	// codec's encoded-vs-text byte ratio. Zero means shuffles are TSV.
	shuffleRatio float64
	// props holds the analyzer's propagated key-uniqueness/sortedness
	// facts; shuffle surcharges are skipped for provably redundant
	// repartitions (a DISTINCT over already-unique rows, a SORT over
	// already-ordered rows, an AGG whose groups are single rows).
	props map[*ir.Op]analysis.Props
	// cal is the history's feedback-calibration state: fragment scores run
	// on its learned per-engine rates, and size propagation falls back to
	// its learned per-class selectivities where no per-operator history
	// exists. calVer is the calibration version the memo table was filled
	// under; a bump invalidates memoized choices (see syncCalibration).
	cal    *Calibration
	calVer atomic.Uint64

	// fragCache memoizes the cheapest engine/cost per (engine set, op
	// group): partition searches — exhaustive branches, the DP heuristic's
	// O(n²) segments, and PartitionDynamicMulti's repeated orders — evaluate
	// the same fragments over and over, and op IDs are unique across a
	// DAG's loop bodies, so the key is sound estimator-wide. RWMutex-guarded
	// because the exhaustive search shares it across worker goroutines.
	fragMu    sync.RWMutex
	fragCache map[string]fragChoice

	// searchExplored counts fragment/engine-set evaluations actually
	// scored; searchMemoHits counts evaluations answered from fragCache.
	// Together they measure how hard the partition search worked — exported
	// through SearchStats for the observability layer.
	searchExplored, searchMemoHits atomic.Int64
}

// SearchStats reports how many candidate fragments the partition search
// scored (explored) and how many repeats the memo table absorbed (memoHits)
// since the estimator was built.
func (e *Estimator) SearchStats() (explored, memoHits int64) {
	return e.searchExplored.Load(), e.searchMemoHits.Load()
}

// NewEstimator analyses the DAG against the stored inputs and history.
func NewEstimator(dag *ir.DAG, fs *dfs.DFS, c *cluster.Cluster, h *History) (*Estimator, error) {
	if h == nil {
		h = NewHistory()
	}
	est := &Estimator{
		Cluster: c, History: h, dag: dag,
		sizes:     map[*ir.Op]int64{},
		iters:     map[*ir.Op]int{},
		inputs:    map[string]int64{},
		opObs:     map[*ir.Op]Observation{},
		hashes:    map[*ir.DAG]string{},
		reach:     map[*ir.Op]map[*ir.Op]bool{},
		fragCache: map[string]fragChoice{},
		props:     analysis.PropagateProperties(dag),
		cal:       h.Calibration(),
	}
	est.calVer.Store(est.cal.Version())
	if fs != nil {
		for _, path := range collectInputPaths(dag, nil) {
			st, err := fs.Stat(path)
			if err != nil {
				return nil, fmt.Errorf("core: input %q: %w", path, err)
			}
			est.inputs[path] = st.EffectiveBytes()
		}
		if err := est.propagate(dag, nil); err != nil {
			return nil, err
		}
	}
	est.buildReach(dag)
	return est, nil
}

// WithInputSizes declares source sizes directly (keyed by DFS path or by
// the source's relation name) and re-propagates. It is how callers size a
// workflow before its inputs are staged — and how the WHILE driver sizes
// loop bodies.
func (e *Estimator) WithInputSizes(sizes map[string]int64) (*Estimator, error) {
	for k, v := range sizes {
		e.inputs[k] = v
	}
	if err := e.propagate(e.dag, nil); err != nil {
		return nil, err
	}
	// Re-propagated sizes change fragment costs; drop memoized choices.
	e.fragMu.Lock()
	e.fragCache = map[string]fragChoice{}
	e.fragMu.Unlock()
	return e, nil
}

// WithChaos makes fragment scores include the engine's expected recovery
// cost under the plan's fault rates (nil removes the term). Recovery terms
// change fragment costs, so memoized choices are dropped.
func (e *Estimator) WithChaos(p *chaos.Plan) *Estimator {
	e.chaos = p
	e.fragMu.Lock()
	e.fragCache = map[string]fragChoice{}
	e.fragMu.Unlock()
	return e
}

// WithShuffleCodec declares that intra-run shuffles travel over a compact
// wire codec whose encoded size is ratio × the TSV rendering (pass
// relation.DefaultColumnarRatio for the columnar codec, or a calibrated
// ratio from the flight recorder's shuffle counters). Fragment PULL/PUSH
// volumes on shuffle edges scale accordingly; sources and sinks stay at
// full size since they remain TSV. A ratio outside (0,1] disables the
// scaling. Scaled edges change fragment costs, so memoized choices drop.
func (e *Estimator) WithShuffleCodec(ratio float64) *Estimator {
	if ratio <= 0 || ratio > 1 {
		ratio = 0
	}
	e.shuffleRatio = ratio
	e.fragMu.Lock()
	e.fragCache = map[string]fragChoice{}
	e.fragMu.Unlock()
	return e
}

func collectInputPaths(d *ir.DAG, acc []string) []string {
	for _, op := range d.Ops {
		if op.Type == ir.OpInput && op.Params.Path != "" {
			acc = append(acc, op.Params.Path)
		}
		if op.Params.Body != nil {
			acc = collectInputPaths(op.Params.Body, acc)
		}
	}
	return acc
}

// propagate computes estimated sizes for every op of d. For WHILE bodies,
// outerSizes binds body input names to outer estimates.
func (e *Estimator) propagate(d *ir.DAG, outerSizes map[string]int64) error {
	e.hashes[d] = d.Hash()
	ops, err := d.TopoSort()
	if err != nil {
		return err
	}
	for _, op := range ops {
		switch op.Type {
		case ir.OpInput:
			if outerSizes != nil {
				if s, ok := outerSizes[op.Out]; ok {
					e.sizes[op] = s
					continue
				}
			}
			s, ok := e.inputSize(op)
			if !ok {
				return fmt.Errorf("core: no size for input %q (path %q)", op.Out, op.Params.Path)
			}
			e.sizes[op] = s
		case ir.OpWhile:
			if err := e.propagateWhile(d, op); err != nil {
				return err
			}
		default:
			var in int64
			for _, p := range op.Inputs {
				in += e.sizes[p]
			}
			// Refinement ladder (§5.2 made continuous): a per-operator
			// observation from this workflow's own history beats the learned
			// per-class selectivity, which beats the conservative first-run
			// bound. Within an observation, a damped measured volume beats
			// the ratio (ratios compound wrongly through iterative bodies).
			if obs, ok := e.History.Lookup(e.hashes[d], op.ID); ok {
				e.opObs[op] = obs
				if obs.OutBytes > 0 {
					e.sizes[op] = obs.OutBytes
				} else {
					e.sizes[op] = int64(obs.OutRatio * float64(in))
				}
			} else if sel, ok := e.cal.Selectivity(op.Type); ok {
				e.sizes[op] = int64(sel * float64(in))
			} else {
				e.sizes[op] = int64(hiBound(op.Type) * float64(in))
			}
		}
	}
	return nil
}

func (e *Estimator) propagateWhile(d *ir.DAG, w *ir.Op) error {
	body := w.Params.Body
	outer := map[string]int64{}
	for _, in := range w.Inputs {
		outer[in.Out] = e.sizes[in]
	}
	if err := e.propagate(body, outer); err != nil {
		return err
	}
	iters := w.Params.MaxIter
	if iters <= 0 || iters > 1<<16 {
		iters = DefaultIterEstimate
	}
	if obs, ok := e.History.Lookup(e.hashes[d], w.ID); ok && obs.Iterations > 0 {
		iters = obs.Iterations
	}
	e.iters[w] = iters
	res := body.ByOut(w.ResultRelation())
	if res == nil {
		return fmt.Errorf("core: WHILE %s has no result relation", w.Out)
	}
	e.sizes[w] = e.sizes[res]
	return nil
}

func (e *Estimator) inputSize(op *ir.Op) (int64, bool) {
	if s, ok := e.inputs[op.Params.Path]; ok && op.Params.Path != "" {
		return s, true
	}
	s, ok := e.inputs[op.Out]
	return s, ok
}

// Size returns the estimated output volume of an operator.
func (e *Estimator) Size(op *ir.Op) int64 { return e.sizes[op] }

// Iters returns the estimated iteration count of a WHILE operator.
func (e *Estimator) Iters(op *ir.Op) int { return e.iters[op] }

// DAGHash returns the cached structural hash used for history keys.
func (e *Estimator) DAGHash(d *ir.DAG) string {
	if h, ok := e.hashes[d]; ok {
		return h
	}
	h := d.Hash()
	e.hashes[d] = h
	return h
}

// FragmentCost scores running the fragment as a single job on the engine:
// the paper's c_s(o_1..o_j). Infeasible combinations cost +Inf.
func (e *Estimator) FragmentCost(f *ir.Fragment, eng *engines.Engine) cluster.Seconds {
	if err := eng.ValidFragment(f); err != nil {
		return Infeasible
	}
	if w := f.While(); w != nil {
		return e.whileCost(w, eng)
	}
	v := engines.Volumes{}
	for _, in := range f.ExtIn {
		s := e.sizes[in]
		// Non-source external inputs were pushed by another job: under a
		// compact shuffle codec they arrive at the scaled wire size.
		if e.shuffleRatio > 0 && in.Type != ir.OpInput {
			s = int64(float64(s) * e.shuffleRatio)
		}
		v.Pull += s
	}
	for _, out := range f.ExtOut {
		s := e.sizes[out]
		// Only outputs another job reads are shuffled compactly; workflow
		// sinks are published as TSV at full size.
		if e.shuffleRatio > 0 && f.ConsumedOutside(out) {
			s = int64(float64(s) * e.shuffleRatio)
		}
		v.Push += s
	}
	e.addOpVolumes(&v, f.ComputeOps(), eng, 1)
	return e.withRecovery(eng, len(f.ComputeOps()), e.estimate(eng, v))
}

// estimate scores the volumes on the engine at the calibration state's
// current rates. With no observations the rates are the Table-1 seed and
// the result is bit-identical to EstimateCost.
func (e *Estimator) estimate(eng *engines.Engine, v engines.Volumes) cluster.Seconds {
	return eng.EstimateCostRates(e.Cluster, v, e.cal.Rates(eng))
}

// syncCalibration flushes the fragment memo when the calibration version
// has moved since the memo was filled: learned rates change fragment
// scores, so cached choices computed on stale rates must not be reused.
// Called on the memo read path (groupChoice); the fast path is one atomic
// load. Note size propagation is NOT redone here — sizes refresh on the
// next propagate (a new estimator or WithInputSizes), while rate changes
// take effect on the very next score.
func (e *Estimator) syncCalibration() {
	v := e.cal.Version()
	if e.calVer.Load() == v {
		return
	}
	e.fragMu.Lock()
	if e.calVer.Load() != v {
		e.fragCache = map[string]fragChoice{}
		e.calVer.Store(v)
	}
	e.fragMu.Unlock()
}

// withRecovery adds the engine's expected fault-recovery cost (paper
// Table 3's mechanism priced under the chaos plan's rates) to a predicted
// base cost. A no-op without a chaos plan, on infeasible fragments, and
// under a zero fault rate.
func (e *Estimator) withRecovery(eng *engines.Engine, depth int, base cluster.Seconds) cluster.Seconds {
	if e.chaos == nil || math.IsInf(float64(base), 1) {
		return base
	}
	return base + engines.ExpectedRecovery(e.chaos, eng, e.Cluster, depth, base)
}

// addOpVolumes folds the estimated per-operator volumes of ops into v,
// multiplying by iters (WHILE bodies).
func (e *Estimator) addOpVolumes(v *engines.Volumes, ops []*ir.Op, eng *engines.Engine, iters int64) {
	shuf := eng.ShuffleSurcharge()
	blowup := eng.CrossBlowup()
	for _, op := range ops {
		if op.Type == ir.OpInput {
			continue
		}
		out := e.sizes[op]
		if obs, ok := e.opObs[op]; ok && obs.ProcBytes > 0 {
			// Damped measured volumes: charge what the engine's PROCESS
			// phase actually charged for this operator (its accounting —
			// unconditional shuffle surcharge included — is the ground
			// truth the estimate is converging toward).
			b := obs.ProcBytes * iters
			if ir.IsShuffleOp(op.Type) {
				b = int64(float64(b) * shuf)
				v.Shuffle += obs.InBytes * iters
			}
			v.Proc += b
			if op.Type == ir.OpAgg {
				v.AggProc += b
			}
			if gen := obs.ProcBytes - obs.InBytes; gen > 0 {
				v.Gen += gen * iters
			}
			peak := out
			if op.Type == ir.OpCrossJoin {
				peak = int64(float64(peak) * blowup)
			}
			if peak > v.Peak {
				v.Peak = peak
			}
			continue
		}
		var in int64
		for _, p := range op.Inputs {
			in += e.sizes[p]
		}
		b := (in + out) * iters
		if ir.IsShuffleOp(op.Type) && !e.redundantShuffle(op) {
			b = int64(float64(b) * shuf)
			v.Shuffle += in * iters
		}
		v.Proc += b
		if op.Type == ir.OpAgg {
			v.AggProc += b
		}
		v.Gen += out * iters
		peak := out
		if op.Type == ir.OpCrossJoin {
			peak = int64(float64(peak) * blowup)
		}
		if peak > v.Peak {
			v.Peak = peak
		}
	}
}

// redundantShuffle reports whether the operator's repartition provably
// does no collapsing work, per the analyzer's propagated properties
// (pass 6): deduplicating already-unique rows, re-sorting already-ordered
// rows, or grouping rows that are each already their own group. The
// operator still streams its data, but pays no shuffle surcharge.
func (e *Estimator) redundantShuffle(op *ir.Op) bool {
	if len(op.Inputs) == 0 {
		return false
	}
	p, ok := e.props[op.Inputs[0]]
	if !ok {
		return false
	}
	switch op.Type {
	case ir.OpDistinct:
		return p.RowsUnique
	case ir.OpSort:
		return analysis.SortCovered(p, op.Params.SortBy, op.Params.Desc)
	case ir.OpAgg:
		return p.UniqueKey != nil && subsetOf(p.UniqueKey, op.Params.GroupBy)
	}
	return false
}

func subsetOf(xs, of []string) bool {
	for _, x := range xs {
		found := false
		for _, o := range of {
			if o == x {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// whileCost scores an iterative fragment. Native-iteration engines run the
// loop in one job (inputs pulled once, the body processed per iteration);
// other engines re-submit the body's jobs every iteration, paying job
// overheads and DFS materialization each time — which is exactly why
// MapReduce-class back-ends lose badly on iterative workflows (§2.2, §6.2).
func (e *Estimator) whileCost(w *ir.Op, eng *engines.Engine) cluster.Seconds {
	iters := e.iters[w]
	if iters == 0 {
		iters = DefaultIterEstimate
	}
	body := w.Params.Body
	graph := ir.DetectGraphIdiom(w) != nil
	if eng.Profile().NativeIteration {
		v := engines.Volumes{Graph: graph, Push: e.sizes[w]}
		for _, in := range w.Inputs {
			v.Pull += e.sizes[in]
		}
		e.addOpVolumes(&v, body.Ops, eng, int64(iters))
		return e.withRecovery(eng, len(body.Ops)*iters, e.estimate(eng, v))
	}
	// Driver-looped: partition the body for this engine and pay the whole
	// per-iteration pipeline every round.
	bodyPart, err := PartitionDynamic(body, e, []*engines.Engine{eng})
	if err != nil || bodyPart.Cost == Infeasible {
		return Infeasible
	}
	return cluster.Seconds(float64(bodyPart.Cost) * float64(iters))
}

// buildReach computes descendant sets for the top-level ops.
func (e *Estimator) buildReach(d *ir.DAG) {
	ops, err := d.TopoSort()
	if err != nil {
		return
	}
	cons := d.Consumers()
	// Walk in reverse topological order so consumers' sets are complete.
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		set := map[*ir.Op]bool{}
		for _, c := range cons[op] {
			set[c] = true
			for k := range e.reach[c] {
				set[k] = true
			}
		}
		e.reach[op] = set
	}
}

// Reaches reports whether to is a transitive consumer of from.
func (e *Estimator) Reaches(from, to *ir.Op) bool {
	return e.reach[from][to]
}
