package core

import (
	"context"
	"fmt"

	"musketeer/internal/analysis"
	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/sched"
)

// Runner executes partitionings against a deployment. It drives WHILE
// loops for engines without native iteration (re-submitting the body's jobs
// every round, exactly like iterative MapReduce), records workflow history,
// and accounts the simulated makespan along the job DAG's critical path.
//
// All concurrency is delegated to the job scheduler: the partitioning's
// jobs are submitted as a dependency DAG, the scheduler dispatches
// data-independent jobs concurrently under the deployment's admission
// control, cancels in-flight siblings when one job fails, and retries
// transiently fault-injected failures. A Runner holds no mutable state of
// its own, so one compiled workflow may be executed from many goroutines
// at once provided each execution gets its own DFS namespace (the
// session layer above arranges this).
type Runner struct {
	Ctx engines.RunContext
	// History, when non-nil, receives per-job observations (§5.2).
	History *History
	// Mode selects code-generation quality for every generated job.
	Mode engines.PlanMode
	// Sched dispatches the partitioning's jobs. Nil uses a process-wide
	// default scheduler bounded by GOMAXPROCS.
	Sched *sched.Scheduler
	// Rec, when non-nil, records the execution onto a flight recorder:
	// analyze and schedule pipeline spans under Span, one span per job
	// attempt (retries appear as separate attempts), engine phase spans
	// beneath those, and per-iteration spans for driver-looped WHILEs.
	Rec *obs.Recorder
	// Span is the parent the execution's spans hang from (usually the
	// session's workflow span). Ignored when Rec is nil.
	Span *obs.Span
	// Metrics receives scheduler/engine counters and histograms. Nil
	// disables metric recording.
	Metrics *obs.Registry
	// Accuracy, when non-nil, receives the execution's predicted-vs-actual
	// makespan record (also returned on WorkflowResult.Accuracy).
	Accuracy *obs.AccuracyLog
	// Log, when non-nil, receives the execution's structured lifecycle
	// events: it is handed to the scheduler per job (dispatch, completion,
	// retry, speculation), to the engines per attempt (injected faults,
	// recovery), and emits the WHILE driver's iteration/re-plan and the
	// calibration updates directly. Nil disables logging at zero cost.
	Log *obs.Logger
	// AdaptiveWhile enables mid-loop re-planning for driver-looped WHILEs:
	// when an iteration's measured makespan diverges more than 2× from the
	// body partitioning's prediction, the driver re-sizes the body from the
	// current loop state and re-partitions before the next iteration. Off
	// by default — adaptive plans depend on measured state, so fixed-plan
	// reproducibility (golden traces) keeps it opt-in.
	AdaptiveWhile bool
}

// defaultSched serves Runners constructed without an explicit scheduler
// (direct library use, benchmarks); deployments built through the public
// API share their own per-deployment scheduler instead.
var defaultSched = sched.New(sched.Options{Retryable: engines.IsTransient})

func (r *Runner) scheduler() *sched.Scheduler {
	if r.Sched != nil {
		return r.Sched
	}
	return defaultSched
}

// WorkflowResult aggregates one workflow execution.
type WorkflowResult struct {
	// Makespan is the simulated end-to-end time: the critical path through
	// the job DAG (jobs with no data dependency run concurrently).
	Makespan cluster.Seconds
	// SumJobTime is the total work across jobs (for resource-efficiency
	// calculations, Fig 8c).
	SumJobTime cluster.Seconds
	// Jobs are the individual executions in partitioning order.
	Jobs []*engines.RunResult
	// OOM reports whether any job exceeded its engine's memory capacity.
	OOM bool
	// Accuracy compares the planner's predicted per-job costs and critical
	// path against what the execution actually measured.
	Accuracy *obs.WorkflowAccuracy
}

// jobDeps derives the partitioning's dependency lists: job i depends on
// job p when p materializes a relation i reads.
func jobDeps(part *Partitioning) [][]int {
	producers := map[string]int{}
	for i, job := range part.Jobs {
		for _, out := range job.Frag.ExtOut {
			producers[out.Out] = i
		}
	}
	deps := make([][]int, len(part.Jobs))
	for i, job := range part.Jobs {
		seen := map[int]bool{}
		for _, in := range job.Frag.ExtIn {
			if p, ok := producers[in.Out]; ok && p != i && !seen[p] {
				seen[p] = true
				deps[i] = append(deps[i], p)
			}
		}
	}
	return deps
}

// Execute runs every job of the partitioning in dependency order with no
// cancellation deadline.
func (r *Runner) Execute(dag *ir.DAG, part *Partitioning) (*WorkflowResult, error) {
	//mkvet:ignore context-discipline public no-deadline convenience wrapper; ExecuteCtx is the primary API and callers who need cancellation use it
	return r.ExecuteCtx(context.Background(), dag, part)
}

// ExecuteCtx runs every job of the partitioning in dependency order.
// Jobs with no data dependency between them execute concurrently under
// the scheduler's admission control (the DFS and history store are
// concurrency-safe); the simulated makespan is the deterministic critical
// path either way. Workflow outputs land in the execution's DFS view under
// their relation names. Cancelling ctx stops in-flight jobs between
// operators and skips everything not yet started.
func (r *Runner) ExecuteCtx(ctx context.Context, dag *ir.DAG, part *Partitioning) (*WorkflowResult, error) {
	// Last line of defense: the analyzer runs once more before anything
	// touches the DFS, so a DAG mutated after compilation (or built by a
	// buggy rewrite) fails with full diagnostics instead of mid-run.
	asp := r.Rec.StartSpan(r.Span, "analyze", "pipeline")
	analyzeErr := analysis.Analyze(dag).Err()
	asp.End()
	if analyzeErr != nil {
		return nil, analyzeErr
	}
	dagHash := dag.Hash()
	deps := jobDeps(part)

	ssp := r.Rec.StartSpan(r.Span, "schedule", "pipeline")
	defer ssp.End()
	ssp.SetInt("jobs", int64(len(part.Jobs)))

	// jobSpans[i] holds job i's most recent attempt span; each slot is
	// written only by the job's own goroutine and read after the
	// scheduler's Run returns (the completion channel provides the
	// happens-before edge), so no lock is needed.
	jobSpans := make([]*obs.Span, len(part.Jobs))
	jobs := make([]sched.Job, len(part.Jobs))
	for i := range part.Jobs {
		i := i
		job := part.Jobs[i]
		spanName := "job:" + job.Frag.Name() // precomputed: no per-attempt alloc when tracing is off
		jobs[i] = sched.Job{
			Name:      job.Frag.Name(),
			Deps:      deps[i],
			Predicted: job.Cost,
			Log:       r.Log,
			Run: func(jctx context.Context, attempt int) (sched.Result, error) {
				jsp := r.Rec.StartSpan(ssp, spanName, "job")
				defer jsp.End()
				jsp.NewTrack()
				jsp.SetStr("engine", job.Engine.Name())
				jsp.SetInt("attempt", int64(attempt))
				if sched.IsSpeculative(jctx) {
					jsp.SetInt("speculative", 1)
				}
				jobSpans[i] = jsp
				rctx := r.Ctx
				rctx.Ctx = jctx
				rctx.Attempt = attempt
				rctx.Rec, rctx.Span, rctx.Metrics, rctx.Log = r.Rec, jsp, r.Metrics, r.Log
				var (
					runs []*engines.RunResult
					dur  cluster.Seconds
					err  error
				)
				if w := job.Frag.While(); w != nil && !job.Engine.Profile().NativeIteration {
					runs, dur, err = r.runWhileDriver(jctx, rctx, dagHash, w, job.Engine)
				} else {
					runs, dur, err = r.runPlain(rctx, dagHash, job)
				}
				return sched.Result{Value: runs, Duration: dur}, err
			},
		}
	}
	rep := r.scheduler().Run(ctx, jobs)
	ssp.End()
	if rep.Err != nil {
		return nil, fmt.Errorf("core: %w", rep.Err)
	}

	res := &WorkflowResult{Makespan: rep.Makespan}
	for i := range part.Jobs {
		out := rep.Outcomes[i]
		if r.History != nil {
			r.History.ObserveRuntime(dagHash, FragmentKey(part.Jobs[i].Frag),
				part.Jobs[i].Engine.Name(), float64(out.Duration))
		}
		// Place the job's final attempt on the simulated timeline now that
		// the scheduler has accounted the whole submission, and attach its
		// measured scheduling latencies.
		if sp := jobSpans[i]; sp != nil {
			sp.SetSim(float64(out.Start), float64(out.Duration))
			sp.SetFloat("queue_wait_ms", out.QueueWait.Seconds()*1e3)
			sp.SetFloat("run_wall_ms", out.RunWall.Seconds()*1e3)
		}
		runs, _ := out.Value.([]*engines.RunResult)
		for _, jr := range runs {
			res.Jobs = append(res.Jobs, jr)
			res.SumJobTime += jr.Makespan
			if jr.OOM {
				res.OOM = true
			}
			// Close the estimator loop (§5.2 made continuous): fold the
			// job's observed phase rates into the calibration state. Output
			// ratios were already folded per job by observe(); the version
			// bumps invalidate any live estimator's memoized scores.
			if r.History != nil {
				r.History.Calibration().ObserveRun(part.Jobs[i].Engine, r.Ctx.Cluster, jr)
				r.Log.WithJob(jr.Job).Debug("calibration_update").
					Str("engine", jr.Engine).
					Float("makespan_s", float64(jr.Makespan)).
					Int("proc_bytes", jr.ProcVolume).
					Emit()
			}
		}
	}
	res.Accuracy = r.accuracy(part, deps, rep)
	r.Accuracy.Record(res.Accuracy)
	return res, nil
}

// accuracy compares the planner's per-job cost predictions against the
// measured simulated durations: per-job signed relative error, plus the
// workflow-level comparison of the predicted critical path (the same
// dependency accounting the scheduler applies to measured durations)
// against the measured makespan.
func (r *Runner) accuracy(part *Partitioning, deps [][]int, rep *sched.Report) *obs.WorkflowAccuracy {
	n := len(part.Jobs)
	acc := &obs.WorkflowAccuracy{
		ActualMakespanS: float64(rep.Makespan),
		Jobs:            make([]obs.JobAccuracy, 0, n),
	}
	finish := make([]float64, n)
	done := make([]bool, n)
	var at func(i int) float64
	at = func(i int) float64 {
		if done[i] {
			return finish[i]
		}
		done[i] = true // deps validated acyclic by the scheduler
		var start float64
		for _, d := range deps[i] {
			if f := at(d); f > start {
				start = f
			}
		}
		finish[i] = start + float64(part.Jobs[i].Cost)
		return finish[i]
	}
	for i := range part.Jobs {
		if f := at(i); f > acc.PredictedMakespanS {
			acc.PredictedMakespanS = f
		}
		pred, act := float64(part.Jobs[i].Cost), float64(rep.Outcomes[i].Duration)
		acc.Jobs = append(acc.Jobs, obs.JobAccuracy{
			Job:        part.Jobs[i].Frag.Name(),
			Engine:     part.Jobs[i].Engine.Name(),
			PredictedS: pred,
			ActualS:    act,
			Error:      obs.RelError(pred, act),
		})
	}
	acc.MakespanError = obs.RelError(acc.PredictedMakespanS, acc.ActualMakespanS)
	return acc
}

// runPlain executes a fragment as a single job.
func (r *Runner) runPlain(rctx engines.RunContext, dagHash string, job Assignment) ([]*engines.RunResult, cluster.Seconds, error) {
	plan, err := job.Engine.Plan(job.Frag, r.Mode)
	if err != nil {
		return nil, 0, err
	}
	jr, err := engines.Run(rctx, plan)
	if err != nil {
		return nil, 0, err
	}
	r.observe(dagHash, job.Frag, jr)
	return []*engines.RunResult{jr}, jr.Makespan, nil
}

// runWhileDriver expands a WHILE for an engine without native iteration:
// Musketeer itself drives the loop, submitting the body's jobs each
// iteration through the scheduler and checking the stop condition from
// materialized state. Loop state lives in a "__loop/<out>" namespace of
// the execution's DFS view — the shared DAG is never mutated, so one
// compiled workflow can run this driver from many executions at once. Job
// overheads and DFS round-trips are paid every iteration, which is exactly
// the cost the paper attributes to iterative workflows on MapReduce-class
// systems.
func (r *Runner) runWhileDriver(ctx context.Context, rctx engines.RunContext, dagHash string, w *ir.Op, eng *engines.Engine) ([]*engines.RunResult, cluster.Seconds, error) {
	body := w.Params.Body
	est, err := NewEstimator(body, nil, rctx.Cluster, r.History)
	if err != nil {
		return nil, 0, err
	}
	est.WithChaos(rctx.Chaos)
	// Seed body input sizes from the outer relations currently in the DFS.
	outerPaths := map[string]string{}
	sizes := map[string]int64{}
	for _, outerIn := range w.Inputs {
		path := engines.InputPath(outerIn)
		st, err := rctx.DFS.Stat(path)
		if err != nil {
			return nil, 0, fmt.Errorf("core: WHILE %s input %q: %w", w.Out, outerIn.Out, err)
		}
		outerPaths[outerIn.Out] = path
		sizes[outerIn.Out] = st.EffectiveBytes()
	}
	if _, err := est.WithInputSizes(sizes); err != nil {
		return nil, 0, err
	}
	// Stage loop state in the loop namespace: each body input's source
	// relation is copied to the path the body resolves it from, so carried
	// updates never clobber source data and concurrent executions of the
	// same workflow never see each other's iteration state.
	loopNS := "__loop/" + w.Out
	loopFS := rctx.DFS.Namespace(loopNS)
	inPath := map[string]string{} // body input name → loop-relative path
	for _, bop := range body.Ops {
		if bop.Type != ir.OpInput {
			continue
		}
		src, ok := outerPaths[bop.Out]
		if !ok {
			return nil, 0, fmt.Errorf("core: WHILE %s: body input %q unbound", w.Out, bop.Out)
		}
		dst := engines.InputPath(bop)
		inPath[bop.Out] = dst
		if err := rctx.DFS.Copy(src, loopNS+"/"+dst); err != nil {
			return nil, 0, err
		}
	}
	// loopPath maps a loop-carried input name to where the loop stores its
	// current value (falling back to the bare name for carries that no
	// body input reads).
	loopPath := func(name string) string {
		if p, ok := inPath[name]; ok {
			return p
		}
		return name
	}
	lctx := rctx
	lctx.DFS = loopFS

	part, err := PartitionDynamic(body, est, []*engines.Engine{eng})
	if err != nil {
		return nil, 0, err
	}
	// Loop-carried outputs and the stop-condition relation must land in
	// the DFS every iteration even when they are internal to a body job.
	needed := map[string]bool{}
	for _, outName := range w.Params.Carried {
		needed[outName] = true
	}
	if w.Params.CondRel != "" {
		needed[w.Params.CondRel] = true
	}
	forceNeeded := func(p *Partitioning) error {
		for name := range needed {
			op := body.ByOut(name)
			if op == nil {
				return fmt.Errorf("core: WHILE %s: relation %q not in body", w.Out, name)
			}
			for _, job := range p.Jobs {
				if job.Frag.Contains(op) {
					if err := job.Frag.ForceOutput(op); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := forceNeeded(part); err != nil {
		return nil, 0, err
	}
	bodyHash := body.Hash()
	bodyDeps := jobDeps(part)
	// Precomputed span names: zero per-iteration allocation when tracing
	// is off.
	bodySpanNames := make([]string, len(part.Jobs))
	for ji := range part.Jobs {
		bodySpanNames[ji] = "job:" + part.Jobs[ji].Frag.Name()
	}

	maxIter := w.Params.MaxIter
	if maxIter <= 0 {
		maxIter = 1 << 16
	}
	var all []*engines.RunResult
	var total cluster.Seconds
	// simClock places iteration spans on the loop's simulated timeline:
	// iterations are strictly sequential, each starting where the previous
	// one's nested critical path ended.
	var simClock cluster.Seconds
	// lastIter is the most recent iteration's measured nested makespan,
	// compared against the body partitioning's predicted per-iteration cost
	// by the adaptive re-planner.
	var lastIter cluster.Seconds
	iters := 0
	converged := w.Params.CondRel == "" // bounded loops terminate by cap
	// One driver round, recorded as its own "iteration" span beneath the
	// job attempt. stop reports loop convergence (condition relation empty).
	iterOnce := func(iter int) (stop bool, err error) {
		isp := r.Rec.StartSpan(rctx.Span, "iteration", "while")
		defer isp.End()
		isp.SetInt("iter", int64(iter))
		r.Metrics.Counter("while_iterations_total").Add(1)
		// One iteration = one nested submission: the driver already holds
		// a worker slot, so body jobs bypass admission but keep dependency
		// dispatch, fail-fast cancellation, and retry.
		iterJobs := make([]sched.Job, len(part.Jobs))
		for ji := range part.Jobs {
			ji := ji
			job := part.Jobs[ji]
			iterJobs[ji] = sched.Job{
				Name:      job.Frag.Name(),
				Deps:      bodyDeps[ji],
				Predicted: job.Cost,
				Log:       r.Log,
				Run: func(jctx context.Context, attempt int) (sched.Result, error) {
					bsp := r.Rec.StartSpan(isp, bodySpanNames[ji], "job")
					defer bsp.End()
					bsp.SetStr("engine", eng.Name())
					bsp.SetInt("attempt", int64(attempt))
					if sched.IsSpeculative(jctx) {
						bsp.SetInt("speculative", 1)
					}
					plan, err := eng.Plan(job.Frag, r.Mode)
					if err != nil {
						return sched.Result{}, err
					}
					jctx2 := lctx
					jctx2.Ctx = jctx
					jctx2.Attempt = attempt
					jctx2.Rec, jctx2.Span, jctx2.Metrics, jctx2.Log = r.Rec, bsp, r.Metrics, r.Log
					jr, err := engines.Run(jctx2, plan)
					if err != nil {
						return sched.Result{}, err
					}
					return sched.Result{Value: jr, Duration: jr.Makespan}, nil
				},
			}
		}
		rep := r.scheduler().RunNested(ctx, iterJobs)
		if rep.Err != nil {
			return false, rep.Err
		}
		for ji := range part.Jobs {
			jr := rep.Outcomes[ji].Value.(*engines.RunResult)
			r.observe(bodyHash, part.Jobs[ji].Frag, jr)
			all = append(all, jr)
			total += jr.Makespan
		}
		isp.SetSim(float64(simClock), float64(rep.Makespan))
		r.Log.WithJob(w.Out).Debug("while_iteration").
			Int("iter", int64(iter)).
			Float("makespan_s", float64(rep.Makespan)).
			Emit()
		lastIter = rep.Makespan
		simClock += rep.Makespan
		if rctx.Chaos.Enabled() {
			// Under a chaos plan, materializing loop-carried state to the
			// DFS each round is an explicit checkpoint: a later fault
			// restarts the loop from the last round's state, not from
			// iteration zero. Charge its cost on the simulated clock.
			ck := rctx.Chaos.CheckpointCost()
			csp := r.Rec.StartSpan(isp, "checkpoint", "chaos")
			csp.SetInt("iter", int64(iter))
			csp.End()
			csp.SetSim(float64(simClock), ck)
			simClock += cluster.Seconds(ck)
			total += cluster.Seconds(ck)
			r.Metrics.Counter("chaos_checkpoints_total").Add(1)
		}
		// Rebind carried state for the next round.
		for inName, outName := range w.Params.Carried {
			if err := loopFS.Copy(outName, loopPath(inName)); err != nil {
				return false, err
			}
		}
		if w.Params.CondRel != "" {
			st, err := loopFS.Stat(w.Params.CondRel)
			if err != nil {
				return false, err
			}
			if st.Rows == 0 {
				return true, nil
			}
		}
		return false, nil
	}
	// replan re-sizes the body from the loop's current materialized state
	// and re-partitions it for the next iteration — the adaptive response
	// to a >2× divergence between predicted and measured iteration time.
	// Bounded to keep a pathological loop from re-planning every round;
	// history and calibration updates from the completed iterations feed
	// the new estimate, so successive plans genuinely know more.
	const maxWhileReplans = 3
	replans := 0
	replan := func(iter int, pred, act float64) error {
		sizes := map[string]int64{}
		for name, p := range inPath {
			st, err := loopFS.Stat(p)
			if err != nil {
				return err
			}
			sizes[name] = st.EffectiveBytes()
		}
		if _, err := est.WithInputSizes(sizes); err != nil {
			return err
		}
		p2, err := PartitionDynamic(body, est, []*engines.Engine{eng})
		if err != nil || p2.Cost == Infeasible {
			return err // infeasible: keep the current plan
		}
		if err := forceNeeded(p2); err != nil {
			return err
		}
		part, bodyDeps = p2, jobDeps(p2)
		bodySpanNames = make([]string, len(part.Jobs))
		for ji := range part.Jobs {
			bodySpanNames[ji] = "job:" + part.Jobs[ji].Frag.Name()
		}
		replans++
		r.Metrics.Counter("while_replans_total").Add(1)
		r.Log.WithJob(w.Out).Info("while_replan").
			Int("iter", int64(iter)).
			Float("predicted_s", pred).
			Float("actual_s", act).
			Int("jobs", int64(len(part.Jobs))).
			Emit()
		rsp := r.Rec.StartSpan(rctx.Span, "replan", "while")
		rsp.SetInt("iter", int64(iter))
		rsp.SetFloat("predicted_s", pred)
		rsp.SetFloat("actual_s", act)
		rsp.End()
		rsp.SetSim(float64(simClock), 0)
		return nil
	}
	for ; iters < maxIter; iters++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("core: WHILE %s iteration %d: %w", w.Out, iters+1, err)
		}
		stop, err := iterOnce(iters)
		if err != nil {
			return nil, 0, fmt.Errorf("core: WHILE %s iteration %d: %w", w.Out, iters+1, err)
		}
		if stop {
			converged = true
			iters++
			break
		}
		if r.AdaptiveWhile && replans < maxWhileReplans && iters+1 < maxIter {
			pred, act := float64(part.Cost), float64(lastIter)
			if pred > 0 && (act > 2*pred || act < pred/2) {
				if err := replan(iters, pred, act); err != nil {
					return nil, 0, fmt.Errorf("core: WHILE %s re-plan after iteration %d: %w", w.Out, iters+1, err)
				}
			}
		}
	}
	if !converged {
		return nil, 0, fmt.Errorf("core: WHILE %s did not converge: condition %q still non-empty after %d iterations (cap %d)",
			w.Out, w.Params.CondRel, iters, maxIter)
	}
	if r.History != nil {
		r.History.Observe(dagHash, w.ID, Observation{OutRatio: 1, Iterations: iters})
	}
	// Publish the WHILE's result under its output name in the execution's
	// view.
	resRel := w.ResultRelation()
	src := resRel
	if inName := carriedInputFor(w, resRel); inName != "" {
		src = loopPath(inName)
	}
	if err := rctx.DFS.Copy(loopNS+"/"+src, w.Out); err != nil {
		return nil, 0, err
	}
	return all, total, nil
}

func carriedInputFor(w *ir.Op, resRel string) string {
	for in, out := range w.Params.Carried {
		if out == resRel {
			return in
		}
	}
	return ""
}

// observe records output ratios for the job's materialized relations and
// feeds per-operator-class selectivities to the calibration state. History
// writes are damped (ObserveDamped): the stored ratio eases from the
// planner's current prior toward the measurement, so estimator error
// shrinks geometrically across learning rounds instead of locking onto one
// (possibly noisy) observation.
func (r *Runner) observe(dagHash string, frag *ir.Fragment, jr *engines.RunResult) {
	if r.History == nil {
		return
	}
	cal := r.History.Calibration()
	for _, out := range frag.ExtOut {
		if jr.Trace.InBytes[out.ID] > 0 {
			// classObs below records this op from the exact per-operator
			// trace; the coarse pull-share approximation would only fight
			// it.
			continue
		}
		var in int64
		for _, p := range out.Inputs {
			if b, ok := jr.Trace.OutBytes[p.ID]; ok {
				in += b
			} else {
				// External input: approximate with the job's pull volume
				// share (coarse, like real black-box observation).
				in += jr.PullBytes
			}
		}
		if in <= 0 {
			continue
		}
		outBytes := jr.Trace.OutBytes[out.ID]
		r.History.ObserveDamped(dagHash, out.ID,
			Observation{OutRatio: float64(outBytes) / float64(in), InBytes: in, OutBytes: outBytes},
			cal.SelectivityPrior(out.Type), SelectivityDamping)
	}
	// Per-op ratios come from the exact per-operator trace volumes (the
	// engine measured both sides). Each feeds two stores: the per-op
	// history under its own (sub-)DAG hash — the hash propagate keys body
	// ops by — so repeat runs of this DAG estimate from exact evidence,
	// and the per-class calibration, which transfers the (coarser,
	// cross-workload) signal to DAGs never seen before. The prior is
	// captured before the class update so the damping base is what the
	// planner actually used this run.
	var classObs func(hash string, ops []*ir.Op, iters int64)
	classObs = func(hash string, ops []*ir.Op, iters int64) {
		for _, op := range ops {
			if op.Type == ir.OpWhile {
				n := int64(1)
				if it, ok := jr.Trace.Iterations[op.ID]; ok && it > 0 {
					r.History.ObserveIterations(hash, op.ID, it)
					n = int64(it)
				}
				if op.Params.Body != nil {
					classObs(op.Params.Body.Hash(), op.Params.Body.Ops, iters*n)
				}
				continue
			}
			if op.Type == ir.OpInput {
				continue
			}
			if in := jr.Trace.InBytes[op.ID]; in > 0 {
				ratio := float64(jr.Trace.OutBytes[op.ID]) / float64(in)
				prior := cal.SelectivityPrior(op.Type)
				cal.ObserveSelectivity(op.Type, ratio)
				// Trace volumes accumulate across WHILE iterations; the
				// history stores per-iteration averages, the granularity
				// the estimator charges at.
				r.History.ObserveDamped(hash, op.ID, Observation{
					OutRatio:  ratio,
					InBytes:   in / iters,
					OutBytes:  jr.Trace.OutBytes[op.ID] / iters,
					ProcBytes: jr.Trace.ProcBytes[op.ID] / iters,
				}, prior, SelectivityDamping)
			}
		}
	}
	classObs(dagHash, frag.Ops, 1)
}
