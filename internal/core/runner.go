package core

import (
	"fmt"

	"musketeer/internal/analysis"
	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// Runner executes partitionings against a deployment. It drives WHILE
// loops for engines without native iteration (re-submitting the body's jobs
// every round, exactly like iterative MapReduce), records workflow history,
// and accounts the simulated makespan along the job DAG's critical path.
type Runner struct {
	Ctx engines.RunContext
	// History, when non-nil, receives per-job observations (§5.2).
	History *History
	// Mode selects code-generation quality for every generated job.
	Mode engines.PlanMode
}

// WorkflowResult aggregates one workflow execution.
type WorkflowResult struct {
	// Makespan is the simulated end-to-end time: the critical path through
	// the job DAG (jobs with no data dependency run concurrently).
	Makespan cluster.Seconds
	// SumJobTime is the total work across jobs (for resource-efficiency
	// calculations, Fig 8c).
	SumJobTime cluster.Seconds
	// Jobs are the individual executions in completion order.
	Jobs []*engines.RunResult
	// OOM reports whether any job exceeded its engine's memory capacity.
	OOM bool
}

// Execute runs every job of the partitioning in dependency order.
// Jobs with no data dependency between them execute concurrently (real
// goroutines — the DFS and history store are concurrency-safe); the
// simulated makespan is the critical path either way. Workflow outputs
// land in the DFS under their relation names.
func (r *Runner) Execute(dag *ir.DAG, part *Partitioning) (*WorkflowResult, error) {
	// Last line of defense: the analyzer runs once more before anything
	// touches the DFS, so a DAG mutated after compilation (or built by a
	// buggy rewrite) fails with full diagnostics instead of mid-run.
	if err := analysis.Analyze(dag).Err(); err != nil {
		return nil, err
	}
	dagHash := dag.Hash()
	n := len(part.Jobs)

	// producers[rel] = index of the job materializing rel.
	producers := map[string]int{}
	for i, job := range part.Jobs {
		for _, out := range job.Frag.ExtOut {
			producers[out.Out] = i
		}
	}
	deps := make([][]int, n)
	for i, job := range part.Jobs {
		seen := map[int]bool{}
		for _, in := range job.Frag.ExtIn {
			if p, ok := producers[in.Out]; ok && p != i && !seen[p] {
				seen[p] = true
				deps[i] = append(deps[i], p)
			}
		}
	}

	type outcome struct {
		runs []*engines.RunResult
		dur  cluster.Seconds
		err  error
	}
	results := make([]outcome, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	for i := range part.Jobs {
		go func(i int) {
			defer close(done[i])
			for _, d := range deps[i] {
				<-done[d]
				if results[d].err != nil {
					results[i].err = fmt.Errorf("core: upstream job failed: %w", results[d].err)
					return
				}
			}
			job := part.Jobs[i]
			if w := job.Frag.While(); w != nil && !job.Engine.Profile().NativeIteration {
				results[i].runs, results[i].dur, results[i].err = r.runWhileDriver(dagHash, w, job.Engine)
			} else {
				results[i].runs, results[i].dur, results[i].err = r.runPlain(dagHash, job)
			}
		}(i)
	}
	for i := range done {
		<-done[i]
	}

	res := &WorkflowResult{}
	finish := make([]cluster.Seconds, n)
	for i := range part.Jobs {
		if err := results[i].err; err != nil {
			return nil, err
		}
		var start cluster.Seconds
		for _, d := range deps[i] {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + results[i].dur
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
		if r.History != nil {
			r.History.ObserveRuntime(dagHash, FragmentKey(part.Jobs[i].Frag),
				part.Jobs[i].Engine.Name(), float64(results[i].dur))
		}
		for _, jr := range results[i].runs {
			res.Jobs = append(res.Jobs, jr)
			res.SumJobTime += jr.Makespan
			if jr.OOM {
				res.OOM = true
			}
		}
	}
	return res, nil
}

// runPlain executes a fragment as a single job.
func (r *Runner) runPlain(dagHash string, job Assignment) ([]*engines.RunResult, cluster.Seconds, error) {
	plan, err := job.Engine.Plan(job.Frag, r.Mode)
	if err != nil {
		return nil, 0, err
	}
	jr, err := engines.Run(r.Ctx, plan)
	if err != nil {
		return nil, 0, err
	}
	r.observe(dagHash, job.Frag, jr)
	return []*engines.RunResult{jr}, jr.Makespan, nil
}

// runWhileDriver expands a WHILE for an engine without native iteration:
// Musketeer itself drives the loop, submitting the body's jobs each
// iteration and checking the stop condition from materialized state. Loop
// state lives in the DFS under temporary paths; job overheads and
// DFS round-trips are paid every iteration, which is exactly the cost the
// paper attributes to iterative workflows on MapReduce-class systems.
func (r *Runner) runWhileDriver(dagHash string, w *ir.Op, eng *engines.Engine) ([]*engines.RunResult, cluster.Seconds, error) {
	body := w.Params.Body
	est, err := NewEstimator(body, nil, r.Ctx.Cluster, r.History)
	if err != nil {
		return nil, 0, err
	}
	// Seed body input sizes from the outer relations currently in the DFS.
	outerPaths := map[string]string{}
	sizes := map[string]int64{}
	for _, outerIn := range w.Inputs {
		path := engines.InputPath(outerIn)
		st, err := r.Ctx.DFS.Stat(path)
		if err != nil {
			return nil, 0, fmt.Errorf("core: WHILE %s input %q: %w", w.Out, outerIn.Out, err)
		}
		outerPaths[outerIn.Out] = path
		sizes[outerIn.Out] = st.EffectiveBytes()
	}
	if _, err := est.WithInputSizes(sizes); err != nil {
		return nil, 0, err
	}
	// Stage loop state: body inputs read from loop-local paths so carried
	// updates never clobber source data.
	savedPaths := map[*ir.Op]string{}
	for _, bop := range body.Ops {
		if bop.Type != ir.OpInput {
			continue
		}
		src, ok := outerPaths[bop.Out]
		if !ok {
			return nil, 0, fmt.Errorf("core: WHILE %s: body input %q unbound", w.Out, bop.Out)
		}
		if err := r.Ctx.DFS.Copy(src, loopPath(w, bop.Out)); err != nil {
			return nil, 0, err
		}
		savedPaths[bop] = bop.Params.Path
		bop.Params.Path = loopPath(w, bop.Out)
	}
	defer func() {
		// Restore body input paths (the DAG may be reused).
		for bop, p := range savedPaths {
			bop.Params.Path = p
		}
	}()

	part, err := PartitionDynamic(body, est, []*engines.Engine{eng})
	if err != nil {
		return nil, 0, err
	}
	// Loop-carried outputs and the stop-condition relation must land in
	// the DFS every iteration even when they are internal to a body job.
	needed := map[string]bool{}
	for _, outName := range w.Params.Carried {
		needed[outName] = true
	}
	if w.Params.CondRel != "" {
		needed[w.Params.CondRel] = true
	}
	for name := range needed {
		op := body.ByOut(name)
		if op == nil {
			return nil, 0, fmt.Errorf("core: WHILE %s: relation %q not in body", w.Out, name)
		}
		for _, job := range part.Jobs {
			if job.Frag.Contains(op) {
				if err := job.Frag.ForceOutput(op); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	bodyHash := body.Hash()

	maxIter := w.Params.MaxIter
	if maxIter <= 0 {
		maxIter = 1 << 16
	}
	var all []*engines.RunResult
	var total cluster.Seconds
	iters := 0
	for ; iters < maxIter; iters++ {
		for _, job := range part.Jobs {
			plan, err := eng.Plan(job.Frag, r.Mode)
			if err != nil {
				return nil, 0, err
			}
			jr, err := engines.Run(r.Ctx, plan)
			if err != nil {
				return nil, 0, fmt.Errorf("core: WHILE %s iteration %d: %w", w.Out, iters+1, err)
			}
			r.observe(bodyHash, job.Frag, jr)
			all = append(all, jr)
			total += jr.Makespan
		}
		// Rebind carried state for the next round.
		for inName, outName := range w.Params.Carried {
			if err := r.Ctx.DFS.Copy(outName, loopPath(w, inName)); err != nil {
				return nil, 0, err
			}
		}
		if w.Params.CondRel != "" {
			st, err := r.Ctx.DFS.Stat(w.Params.CondRel)
			if err != nil {
				return nil, 0, err
			}
			if st.Rows == 0 {
				iters++
				break
			}
		}
	}
	if r.History != nil {
		r.History.Observe(dagHash, w.ID, Observation{OutRatio: 1, Iterations: iters})
	}
	// Publish the WHILE's result under its output name.
	resRel := w.ResultRelation()
	src := resRel
	if inName := carriedInputFor(w, resRel); inName != "" {
		src = loopPath(w, inName)
	}
	if err := r.Ctx.DFS.Copy(src, w.Out); err != nil {
		return nil, 0, err
	}
	return all, total, nil
}

func carriedInputFor(w *ir.Op, resRel string) string {
	for in, out := range w.Params.Carried {
		if out == resRel {
			return in
		}
	}
	return ""
}

func loopPath(w *ir.Op, name string) string {
	return fmt.Sprintf("__loop/%s/%s", w.Out, name)
}

// observe records output ratios for the job's materialized relations.
func (r *Runner) observe(dagHash string, frag *ir.Fragment, jr *engines.RunResult) {
	if r.History == nil {
		return
	}
	for _, out := range frag.ExtOut {
		var in int64
		for _, p := range out.Inputs {
			if b, ok := jr.Trace.OutBytes[p.ID]; ok {
				in += b
			} else {
				// External input: approximate with the job's pull volume
				// share (coarse, like real black-box observation).
				in += jr.PullBytes
			}
		}
		if in <= 0 {
			continue
		}
		outBytes := jr.Trace.OutBytes[out.ID]
		r.History.Observe(dagHash, out.ID, Observation{OutRatio: float64(outBytes) / float64(in)})
	}
	for _, op := range frag.Ops {
		if op.Type == ir.OpWhile {
			if iters, ok := jr.Trace.Iterations[op.ID]; ok {
				r.History.Observe(dagHash, op.ID, Observation{OutRatio: 1, Iterations: iters})
			}
		}
	}
}
