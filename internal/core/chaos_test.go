package core

import (
	"testing"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/obs"
)

// TestWhileDriverIterationCheckpoints: under a chaos plan, the WHILE driver
// charges one checkpoint per iteration on the simulated clock (the loop's
// DFS-materialized carried state IS a checkpoint) and records it as a span.
func TestWhileDriverIterationCheckpoints(t *testing.T) {
	run := func(plan *chaos.Plan) (*WorkflowResult, *obs.Recorder) {
		d, fs := countdownDAG(t, 4, 10) // converges in 4 iterations
		est, err := NewEstimator(d, fs, cluster.Local(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		part, err := MapTo(d, est, engines.Registry()["hadoop"]) // driver loop
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		reg := obs.NewRegistry()
		r := &Runner{
			Ctx:     engines.RunContext{DFS: fs, Cluster: cluster.Local(7), Chaos: plan},
			Mode:    engines.ModeOptimized,
			Rec:     rec, Metrics: reg,
		}
		res, err := r.Execute(d, part)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Counter("chaos_checkpoints_total").Value() != ckptSpans(rec) {
			t.Errorf("checkpoint counter %d != %d checkpoint spans",
				reg.Counter("chaos_checkpoints_total").Value(), ckptSpans(rec))
		}
		return res, rec
	}

	clean, cleanRec := run(nil)
	if n := ckptSpans(cleanRec); n != 0 {
		t.Fatalf("chaos-disabled run recorded %d checkpoint spans", n)
	}
	// The plan injects nothing except the checkpoint discipline: a
	// vanishing DFS fault probability enables chaos without ever firing.
	plan := &chaos.Plan{Seed: 1, DFSReadFailProb: 1e-12, CheckpointCostS: 2}
	chaotic, rec := run(plan)
	const iters = 4
	if n := ckptSpans(rec); n != iters {
		t.Errorf("recorded %d checkpoint spans, want one per iteration (%d)", n, iters)
	}
	want := clean.Makespan + cluster.Seconds(iters*2)
	if chaotic.Makespan != want {
		t.Errorf("makespan %v, want clean %v + %d checkpoints x 2s = %v",
			chaotic.Makespan, clean.Makespan, iters, want)
	}
}

func ckptSpans(rec *obs.Recorder) int64 {
	var n int64
	for _, sp := range rec.Spans() {
		if sp.Name == "checkpoint" && sp.Cat == "chaos" {
			n++
		}
	}
	return n
}

// TestAutoMapPrefersCheaperRecoveryUnderFaults: the estimator's expected-
// recovery term changes automatic engine selection. On a fault-free
// deployment Spark's faster processing wins this workload; under a 30s
// MTBF its lineage-recomputation recovery (which replays upstream operators
// per fault) is priced in, and the partitioner flips to Hadoop, whose
// task-level re-execution recovers more cheaply.
func TestAutoMapPrefersCheaperRecoveryUnderFaults(t *testing.T) {
	pick := func(plan *chaos.Plan) []string {
		dag := maxPropertyPrice()
		fs := seedPropertyDFS(t, 1_000_000)
		est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		est.WithChaos(plan)
		part, err := PartitionDynamic(dag, est, []*engines.Engine{
			engines.Registry()["hadoop"], engines.Registry()["spark"],
		})
		if err != nil {
			t.Fatal(err)
		}
		return part.Engines()
	}
	clean := pick(nil)
	if len(clean) != 1 || clean[0] != "spark" {
		t.Fatalf("fault-free mapping = %v, want [spark]", clean)
	}
	faulty := pick(&chaos.Plan{Seed: 1, MTBFSeconds: 30})
	if len(faulty) != 1 || faulty[0] != "hadoop" {
		t.Fatalf("mapping under 30s MTBF = %v, want [hadoop] (cheaper recovery)", faulty)
	}
}

// TestEstimatorChaosClearsMemo: WithChaos must invalidate memoized fragment
// choices — a stale cache would keep fault-free engine picks after a plan
// is installed.
func TestEstimatorChaosClearsMemo(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1_000_000)
	est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	engs := []*engines.Engine{engines.Registry()["hadoop"], engines.Registry()["spark"]}
	first, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	est.WithChaos(&chaos.Plan{Seed: 1, MTBFSeconds: 30})
	second, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Engines()[0] == second.Engines()[0] {
		t.Errorf("memoized choice survived WithChaos: %v then %v", first.Engines(), second.Engines())
	}
	if second.Cost <= first.Cost {
		t.Errorf("cost under faults (%v) should exceed fault-free cost (%v)", second.Cost, first.Cost)
	}
}
