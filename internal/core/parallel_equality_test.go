package core

import (
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/exec"
	"musketeer/internal/relation"
)

// TestCrossEngineEqualityParallelKernels re-runs the cross-engine decoupling
// property with every parallel fast path forced on — data-parallel kernels
// (sort, join probe, aggregate, filter) and the chunk-parallel TSV codecs —
// so small test relations exercise the concurrent code. Results must still
// be identical across engines and identical to the serial paths' history.
func TestCrossEngineEqualityParallelKernels(t *testing.T) {
	oldPT := exec.ParallelThreshold
	oldCT := relation.CodecParallelThreshold
	exec.ParallelThreshold = 1
	relation.CodecParallelThreshold = 1
	defer func() {
		exec.ParallelThreshold = oldPT
		relation.CodecParallelThreshold = oldCT
	}()

	c := cluster.Local(7)
	engineNames := []string{"naiad", "spark", "serial", "hadoop", "metis"}
	reg := engines.Registry()
	for seed := int64(300); seed < 310; seed++ {
		rw, err := genRandomWorkflow(seed)
		if err != nil {
			t.Fatal(err)
		}
		sinks := rw.dag.Sinks()
		fingerprints := map[string]string{}
		for _, name := range engineNames {
			fs := rw.cloneFS(t)
			est, err := NewEstimator(rw.dag, fs, c, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			part, err := PartitionDynamic(rw.dag, est, []*engines.Engine{reg[name]})
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			runner := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, Mode: engines.ModeOptimized}
			if _, err := runner.Execute(rw.dag, part); err != nil {
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			var combined string
			for _, sink := range sinks {
				out, err := fs.ReadRelation(sink.Out)
				if err != nil {
					t.Fatalf("seed %d on %s: sink %s: %v", seed, name, sink.Out, err)
				}
				combined += sink.Out + ":" + out.Fingerprint() + "\n"
			}
			fingerprints[name] = combined
		}
		ref := fingerprints[engineNames[0]]
		for _, name := range engineNames[1:] {
			if fingerprints[name] != ref {
				t.Errorf("seed %d: %s results differ from %s with parallel kernels", seed, name, engineNames[0])
			}
		}
	}
}
