// Package core implements Musketeer's contribution: the layer that turns a
// front-end-produced IR DAG into executable back-end jobs. It contains the
// IR optimizer (§4.2), the DAG partitioner with its exhaustive and
// dynamic-programming algorithms (§5.1), the cost function with calibrated
// rates, conservative data-volume bounds and workflow history (§5.2), the
// automatic back-end mapper plus the decision-tree baseline it is evaluated
// against (§6.7), and the workflow runner that executes partitionings —
// including driving WHILE loops iteration by iteration on back-ends without
// native iteration support.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Observation is what one execution revealed about an operator.
type Observation struct {
	// OutRatio is observed output bytes divided by observed input bytes;
	// ratios (not absolute sizes) transfer across input scales, so history
	// collected at one scale factor still refines bounds at another.
	OutRatio float64 `json:"out_ratio"`
	// Iterations records how many times a WHILE operator looped.
	Iterations int `json:"iterations,omitempty"`
	// InBytes / OutBytes / ProcBytes are damped absolute per-iteration
	// volumes from the engine trace: consumed input, produced output, and
	// what the engine's PROCESS phase actually charged. Chained ratios
	// cannot reproduce iterative fixed points (a per-vertex aggregation
	// emits vertex-count bytes regardless of message volume, so a ratio
	// model compounds the error every round); absolute volumes anchor
	// repeat runs of the same workflow to measured truth, while OutRatio
	// remains the signal that transfers across input scales. Zero until
	// observed.
	InBytes   int64 `json:"in_bytes,omitempty"`
	OutBytes  int64 `json:"out_bytes,omitempty"`
	ProcBytes int64 `json:"proc_bytes,omitempty"`
}

// History is the workflow-history store (paper §5.2): per-workflow,
// per-operator observations collected from prior runs — output-size ratios,
// WHILE iteration counts, and per-job runtimes ("Musketeer collects
// information about each job it runs (e.g., runtime and input/output
// sizes)"). Keys are the DAG's structural hash, so re-running the same
// workflow (even at a different input size) reuses its history. Safe for
// concurrent use.
type History struct {
	mu sync.RWMutex
	m  map[string]map[int]Observation
	// runtimes records measured job makespans keyed by workflow hash,
	// fragment identity and engine. Recorded runtimes are surfaced by
	// Explain and available to operators; they deliberately do NOT
	// short-circuit cost estimates — replacing estimates with measurements
	// for previously-run fragments (but not their unexplored alternatives)
	// locks the mapper into its first choice, measurably degrading the
	// Fig 14 partial-history results. Bound refinement via size ratios is
	// the mechanism that transfers fairly across candidate mappings.
	runtimes map[string]float64
	// cal is the feedback-calibration state that travels with the history:
	// learned per-engine phase rates and per-operator-class selectivities,
	// persisted alongside the per-workflow observations. Lazily created so
	// zero-value and legacy-loaded stores behave identically.
	calMu sync.Mutex
	cal   *Calibration
}

// NewHistory returns an empty store.
func NewHistory() *History {
	return &History{m: map[string]map[int]Observation{}, runtimes: map[string]float64{}}
}

// Calibration returns the store's feedback-calibration state, creating an
// all-seed state on first use. Never nil on a non-nil history.
func (h *History) Calibration() *Calibration {
	h.calMu.Lock()
	defer h.calMu.Unlock()
	if h.cal == nil {
		h.cal = NewCalibration()
	}
	return h.cal
}

// runtimeKey identifies a (workflow, fragment, engine) execution. The
// fragment identity is the sorted operator-ID list, so the same job split
// matches across rebuilds of the workflow.
func runtimeKey(dagHash, fragKey, engine string) string {
	return dagHash + "|" + fragKey + "|" + engine
}

// ObserveRuntime records a job's measured makespan.
func (h *History) ObserveRuntime(dagHash, fragKey, engine string, seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.runtimes == nil {
		h.runtimes = map[string]float64{}
	}
	h.runtimes[runtimeKey(dagHash, fragKey, engine)] = seconds
}

// LookupRuntime returns the recorded makespan of a (workflow, fragment,
// engine) combination.
func (h *History) LookupRuntime(dagHash, fragKey, engine string) (float64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.runtimes[runtimeKey(dagHash, fragKey, engine)]
	return s, ok
}

// Observe records what an execution saw for one operator.
func (h *History) Observe(dagHash string, opID int, obs Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	byOp, ok := h.m[dagHash]
	if !ok {
		byOp = map[int]Observation{}
		h.m[dagHash] = byOp
	}
	byOp[opID] = obs
}

// ObserveDamped folds an execution's observation into the store with the
// calibration loop's damped update: the stored ratio moves fraction alpha
// of the way from its current value (or, on first evidence, from the
// planner's prior) toward the observation. Easing in from the prior is
// what makes estimator error shrink monotonically across learning rounds
// instead of jumping to the first measurement — which may itself be noisy
// (external-input volumes are observed coarsely). Iteration counts are
// stored exactly; they are discrete and stable. Observe remains the raw
// exact-write API.
func (h *History) ObserveDamped(dagHash string, opID int, obs Observation, prior, alpha float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	byOp, ok := h.m[dagHash]
	if !ok {
		byOp = map[int]Observation{}
		h.m[dagHash] = byOp
	}
	old, seen := byOp[opID]
	base := prior
	if seen {
		base = old.OutRatio
	}
	obs.OutRatio = base + alpha*(obs.OutRatio-base)
	// Volumes damp the same way; the first-evidence base is the
	// prior-implied volume (prior selectivity applied to the observed
	// input), so round-over-round estimates ease geometrically from what
	// the planner believed toward what the engine measured.
	inTruth := obs.InBytes
	dampVol := func(stored, truth, firstBase int64) int64 {
		if truth <= 0 {
			return stored
		}
		b := firstBase
		if stored > 0 {
			b = stored
		}
		return b + int64(alpha*float64(truth-b))
	}
	priorOut := int64(prior * float64(inTruth))
	obs.InBytes = dampVol(old.InBytes, inTruth, inTruth)
	obs.OutBytes = dampVol(old.OutBytes, obs.OutBytes, priorOut)
	obs.ProcBytes = dampVol(old.ProcBytes, obs.ProcBytes, inTruth+priorOut)
	if obs.Iterations == 0 {
		obs.Iterations = old.Iterations
	}
	byOp[opID] = obs
}

// ObserveIterations merges a WHILE operator's measured loop count into its
// observation without disturbing damped ratio/volume evidence recorded by
// the same run.
func (h *History) ObserveIterations(dagHash string, opID int, iters int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	byOp, ok := h.m[dagHash]
	if !ok {
		byOp = map[int]Observation{}
		h.m[dagHash] = byOp
	}
	old := byOp[opID]
	if old.OutRatio == 0 {
		old.OutRatio = 1
	}
	old.Iterations = iters
	byOp[opID] = old
}

// Lookup returns the stored observation for an operator.
func (h *History) Lookup(dagHash string, opID int) (Observation, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	obs, ok := h.m[dagHash][opID]
	return obs, ok
}

// Coverage returns how many operators of the workflow have observations.
func (h *History) Coverage(dagHash string) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m[dagHash])
}

// persistedHistory is the JSON layout of a saved store. Every field the
// store holds — observations, runtimes, calibration — round-trips; Save
// and LoadHistory are symmetric by construction and pinned by test.
type persistedHistory struct {
	Ops      map[string]map[int]Observation `json:"ops"`
	Runtimes map[string]float64             `json:"runtimes,omitempty"`
	// Calibration carries the learned rates/selectivities alongside the
	// per-workflow history, so one file restores the whole learned model.
	Calibration *CalibrationSnapshot `json:"calibration,omitempty"`
}

// Save writes the store as JSON to path.
func (h *History) Save(path string) error {
	p := persistedHistory{}
	if snap := h.Calibration().Snapshot(); snap.Version > 0 {
		p.Calibration = &snap
	}
	h.mu.RLock()
	p.Ops, p.Runtimes = h.m, h.runtimes
	data, err := json.MarshalIndent(p, "", "  ")
	h.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadHistory reads a store saved by Save; a missing file yields an empty
// store so first runs need no setup.
func LoadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewHistory(), nil
	}
	if err != nil {
		return nil, err
	}
	var p persistedHistory
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("history: %s: %w", path, err)
	}
	h := NewHistory()
	if p.Ops != nil {
		h.m = p.Ops
	}
	if p.Runtimes != nil {
		h.runtimes = p.Runtimes
	}
	if p.Calibration != nil {
		h.Calibration().restore(*p.Calibration)
	}
	return h, nil
}
