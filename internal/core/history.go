// Package core implements Musketeer's contribution: the layer that turns a
// front-end-produced IR DAG into executable back-end jobs. It contains the
// IR optimizer (§4.2), the DAG partitioner with its exhaustive and
// dynamic-programming algorithms (§5.1), the cost function with calibrated
// rates, conservative data-volume bounds and workflow history (§5.2), the
// automatic back-end mapper plus the decision-tree baseline it is evaluated
// against (§6.7), and the workflow runner that executes partitionings —
// including driving WHILE loops iteration by iteration on back-ends without
// native iteration support.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Observation is what one execution revealed about an operator.
type Observation struct {
	// OutRatio is observed output bytes divided by observed input bytes;
	// ratios (not absolute sizes) transfer across input scales, so history
	// collected at one scale factor still refines bounds at another.
	OutRatio float64 `json:"out_ratio"`
	// Iterations records how many times a WHILE operator looped.
	Iterations int `json:"iterations,omitempty"`
}

// History is the workflow-history store (paper §5.2): per-workflow,
// per-operator observations collected from prior runs — output-size ratios,
// WHILE iteration counts, and per-job runtimes ("Musketeer collects
// information about each job it runs (e.g., runtime and input/output
// sizes)"). Keys are the DAG's structural hash, so re-running the same
// workflow (even at a different input size) reuses its history. Safe for
// concurrent use.
type History struct {
	mu sync.RWMutex
	m  map[string]map[int]Observation
	// runtimes records measured job makespans keyed by workflow hash,
	// fragment identity and engine. Recorded runtimes are surfaced by
	// Explain and available to operators; they deliberately do NOT
	// short-circuit cost estimates — replacing estimates with measurements
	// for previously-run fragments (but not their unexplored alternatives)
	// locks the mapper into its first choice, measurably degrading the
	// Fig 14 partial-history results. Bound refinement via size ratios is
	// the mechanism that transfers fairly across candidate mappings.
	runtimes map[string]float64
}

// NewHistory returns an empty store.
func NewHistory() *History {
	return &History{m: map[string]map[int]Observation{}, runtimes: map[string]float64{}}
}

// runtimeKey identifies a (workflow, fragment, engine) execution. The
// fragment identity is the sorted operator-ID list, so the same job split
// matches across rebuilds of the workflow.
func runtimeKey(dagHash, fragKey, engine string) string {
	return dagHash + "|" + fragKey + "|" + engine
}

// ObserveRuntime records a job's measured makespan.
func (h *History) ObserveRuntime(dagHash, fragKey, engine string, seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.runtimes == nil {
		h.runtimes = map[string]float64{}
	}
	h.runtimes[runtimeKey(dagHash, fragKey, engine)] = seconds
}

// LookupRuntime returns the recorded makespan of a (workflow, fragment,
// engine) combination.
func (h *History) LookupRuntime(dagHash, fragKey, engine string) (float64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.runtimes[runtimeKey(dagHash, fragKey, engine)]
	return s, ok
}

// Observe records what an execution saw for one operator.
func (h *History) Observe(dagHash string, opID int, obs Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	byOp, ok := h.m[dagHash]
	if !ok {
		byOp = map[int]Observation{}
		h.m[dagHash] = byOp
	}
	byOp[opID] = obs
}

// Lookup returns the stored observation for an operator.
func (h *History) Lookup(dagHash string, opID int) (Observation, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	obs, ok := h.m[dagHash][opID]
	return obs, ok
}

// Coverage returns how many operators of the workflow have observations.
func (h *History) Coverage(dagHash string) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m[dagHash])
}

// persistedHistory is the JSON layout of a saved store.
type persistedHistory struct {
	Ops      map[string]map[int]Observation `json:"ops"`
	Runtimes map[string]float64             `json:"runtimes,omitempty"`
}

// Save writes the store as JSON to path.
func (h *History) Save(path string) error {
	h.mu.RLock()
	data, err := json.MarshalIndent(persistedHistory{Ops: h.m, Runtimes: h.runtimes}, "", "  ")
	h.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadHistory reads a store saved by Save; a missing file yields an empty
// store so first runs need no setup.
func LoadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewHistory(), nil
	}
	if err != nil {
		return nil, err
	}
	var p persistedHistory
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("history: %s: %w", path, err)
	}
	h := NewHistory()
	if p.Ops != nil {
		h.m = p.Ops
	}
	if p.Runtimes != nil {
		h.runtimes = p.Runtimes
	}
	return h, nil
}
