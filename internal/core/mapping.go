package core

import (
	"fmt"

	"musketeer/internal/analysis"
	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// AutoMap picks back-end execution engines automatically (paper §5.2): it
// runs the DAG partitioning algorithm with every available engine in the
// candidate set and returns the cheapest partitioning, which may combine
// engines across jobs (§6.3). The analyzer's engine-feasibility pass runs
// first, so an operator no candidate engine can execute is rejected with a
// per-operator diagnostic instead of surfacing as a failed search.
func AutoMap(dag *ir.DAG, est *Estimator, engs []*engines.Engine) (*Partitioning, error) {
	if err := analysis.CheckEngines(dag, engs).Err(); err != nil {
		return nil, err
	}
	return Partition(dag, est, engs)
}

// MapTo partitions the workflow for one explicitly chosen engine
// (the "user explicitly targets a back-end" path of §4.3), after checking
// that engine can execute every operator at all.
func MapTo(dag *ir.DAG, est *Estimator, eng *engines.Engine) (*Partitioning, error) {
	if err := analysis.CheckEngines(dag, []*engines.Engine{eng}).Err(); err != nil {
		return nil, err
	}
	return Partition(dag, est, []*engines.Engine{eng})
}

// SeedView returns an estimator over the same DAG, cluster, and input
// sizes but with no history and no calibration evidence — the estimates a
// first-run planner would have produced. AutoMap re-scores continuously as
// evidence accumulates; SeedView is the fixed pre-learning baseline those
// re-scored choices are compared against (the Explain learning delta).
// Returns ok=false when the estimator has no input sizes to re-propagate.
func (e *Estimator) SeedView() (*Estimator, bool) {
	if len(e.inputs) == 0 {
		return nil, false
	}
	sv, err := NewEstimator(e.dag, nil, e.Cluster, NewHistory())
	if err != nil {
		return nil, false
	}
	sv.chaos = e.chaos
	sv.shuffleRatio = e.shuffleRatio
	if _, err := sv.WithInputSizes(e.inputs); err != nil {
		return nil, false
	}
	return sv, true
}

// PerOperatorPartitioning builds the merging-disabled partitioning: every
// operator becomes its own job on the given engine. This is both the
// Fig 12 ablation baseline and the "operator-by-operator profiling" run
// that seeds full workflow history (§6.7).
func PerOperatorPartitioning(dag *ir.DAG, est *Estimator, eng *engines.Engine) (*Partitioning, error) {
	var jobs []Assignment
	var total cluster.Seconds
	for _, op := range computeOps(dag) {
		frag, err := ir.NewFragment(dag, []*ir.Op{op})
		if err != nil {
			return nil, err
		}
		c := est.FragmentCost(frag, eng)
		if c == Infeasible {
			return nil, fmt.Errorf("core: %s cannot run %s alone", eng.Name(), op)
		}
		jobs = append(jobs, Assignment{Frag: frag, Engine: eng, Cost: c})
		total += c
	}
	return &Partitioning{Jobs: jobs, Cost: total}, nil
}

// DecisionTree is the baseline mapper the paper compares against (§6.7):
// a hand-built tree over back-end features and workload characteristics.
// Its weaknesses are the point — fixed thresholds, one engine for the whole
// workflow, and no awareness of operator merging or shared scans.
func DecisionTree(dag *ir.DAG, est *Estimator, reg map[string]*engines.Engine) (*engines.Engine, error) {
	var inputBytes int64
	for _, op := range dag.Ops {
		if op.Type == ir.OpInput {
			inputBytes += est.Size(op)
		}
	}
	iterative := false
	for _, op := range dag.Ops {
		if op.Type == ir.OpWhile {
			iterative = true
		}
	}
	const gb = 1e9
	pick := func(name string) (*engines.Engine, error) {
		e, ok := reg[name]
		if !ok {
			return nil, fmt.Errorf("core: decision tree wants %q, not registered", name)
		}
		return e, nil
	}
	switch {
	case dag.IsGraphWorkflow() && float64(inputBytes) < 2*gb:
		return pick("graphchi")
	case dag.IsGraphWorkflow():
		return pick("powergraph")
	case float64(inputBytes) < 0.5*gb:
		return pick("metis")
	case iterative:
		return pick("spark")
	default:
		return pick("hadoop")
	}
}

// DecisionTreePartition maps the whole workflow onto the decision tree's
// single choice. Graph-only engines can only run the idiom itself, so
// surrounding relational operators fall back to Hadoop (the tree's default
// general-purpose system), mimicking a user who follows the tree's advice.
func DecisionTreePartition(dag *ir.DAG, est *Estimator, reg map[string]*engines.Engine) (*Partitioning, error) {
	choice, err := DecisionTree(dag, est, reg)
	if err != nil {
		return nil, err
	}
	engs := []*engines.Engine{choice}
	if choice.Paradigm() == engines.ParadigmVertexCentric {
		if h, ok := reg["hadoop"]; ok {
			engs = append(engs, h)
		}
	}
	return PartitionDynamic(dag, est, engs)
}

// NewEstimatorFor is a convenience wrapper used by callers that already
// have a run context.
func NewEstimatorFor(dag *ir.DAG, fs *dfs.DFS, c *cluster.Cluster, h *History) (*Estimator, error) {
	return NewEstimator(dag, fs, c, h)
}
