package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/exec"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// --- fixtures ---------------------------------------------------------

func maxPropertyPrice() *ir.DAG {
	d := ir.NewDAG()
	props := d.AddInput("properties", "in/properties", relation.NewSchema("id:int", "street:string", "town:string"))
	prices := d.AddInput("prices", "in/prices", relation.NewSchema("id:int", "price:float"))
	locs := d.Add(ir.OpProject, "locs", ir.Params{Columns: []string{"id", "street", "town"}}, props)
	idPrice := d.Add(ir.OpJoin, "id_price", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	d.Add(ir.OpAgg, "street_price", ir.Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []ir.AggSpec{{Func: ir.AggMax, Col: "price", As: "max_price"}},
	}, idPrice)
	return d
}

func seedPropertyDFS(t *testing.T, scale int64) *dfs.DFS {
	t.Helper()
	fs := dfs.New()
	props := relation.New("properties", relation.NewSchema("id:int", "street:string", "town:string"))
	streets := []string{"mill rd", "high st", "king st"}
	for i := int64(0); i < 60; i++ {
		props.MustAppend(relation.Row{relation.Int(i), relation.Str(streets[i%3]), relation.Str("cam")})
	}
	props.LogicalBytes = props.PhysicalBytes() * scale
	prices := relation.New("prices", relation.NewSchema("id:int", "price:float"))
	for i := int64(0); i < 60; i++ {
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(50 + i))})
	}
	prices.LogicalBytes = prices.PhysicalBytes() * scale
	for path, rel := range map[string]*relation.Relation{"in/properties": props, "in/prices": prices} {
		if err := fs.WriteRelation(path, rel); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func pageRankDAG(t *testing.T, iters int) *ir.DAG {
	t.Helper()
	d := ir.NewDAG()
	edges := d.AddInput("edges", "in/edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	ranks := d.AddInput("ranks", "in/ranks", relation.NewSchema("vertex:int", "rank:float"))
	body := ir.NewDAG()
	bRanks := body.AddInput("ranks", "", relation.NewSchema("vertex:int", "rank:float"))
	bEdges := body.AddInput("edges", "", relation.NewSchema("src:int", "dst:int", "degree:int"))
	j := body.Add(ir.OpJoin, "sent", ir.Params{LeftCols: []string{"vertex"}, RightCols: []string{"src"}}, bRanks, bEdges)
	sh := body.Add(ir.OpArith, "shared", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.ColRef("degree"), AOp: ir.ArithDiv}, j)
	g := body.Add(ir.OpAgg, "gathered", ir.Params{GroupBy: []string{"dst"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "rank", As: "rank"}}}, sh)
	m := body.Add(ir.OpArith, "damped", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul}, g)
	ap := body.Add(ir.OpArith, "applied", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.15)), AOp: ir.ArithAdd}, m)
	body.Add(ir.OpProject, "new_ranks", ir.Params{Columns: []string{"dst", "rank"}, As: []string{"vertex", "rank"}}, ap)
	d.Add(ir.OpWhile, "final_ranks", ir.Params{
		Body: body, MaxIter: iters,
		Carried: map[string]string{"ranks": "new_ranks"},
	}, ranks, edges)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func seedGraphDFS(t *testing.T, scale int64) *dfs.DFS {
	t.Helper()
	fs := dfs.New()
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	// Ring of 20 vertices plus chords.
	n := int64(20)
	deg := map[int64]int64{}
	type e struct{ s, d int64 }
	var es []e
	for i := int64(0); i < n; i++ {
		es = append(es, e{i, (i + 1) % n})
		deg[i]++
		if i%3 == 0 {
			es = append(es, e{i, (i + 7) % n})
			deg[i]++
		}
	}
	for _, ed := range es {
		edges.MustAppend(relation.Row{relation.Int(ed.s), relation.Int(ed.d), relation.Int(deg[ed.s])})
	}
	edges.LogicalBytes = edges.PhysicalBytes() * scale
	ranks := relation.New("ranks", relation.NewSchema("vertex:int", "rank:float"))
	for i := int64(0); i < n; i++ {
		ranks.MustAppend(relation.Row{relation.Int(i), relation.Float(1)})
	}
	ranks.LogicalBytes = ranks.PhysicalBytes() * scale
	if err := fs.WriteRelation("in/edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRelation("in/ranks", ranks); err != nil {
		t.Fatal(err)
	}
	return fs
}

func allEngines() []*engines.Engine { return engines.StandardEngines() }

// --- estimator --------------------------------------------------------

func TestEstimatorSizesAndBounds(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	props := dag.ByOut("properties")
	if est.Size(props) <= 0 {
		t.Error("input size not seeded")
	}
	locs := dag.ByOut("locs")
	if est.Size(locs) != est.Size(props) {
		t.Errorf("PROJECT hi bound should be 1.0×: %d vs %d", est.Size(locs), est.Size(props))
	}
	join := dag.ByOut("id_price")
	inSum := est.Size(locs) + est.Size(dag.ByOut("prices"))
	if est.Size(join) != int64(3.0*float64(inSum)) {
		t.Errorf("JOIN conservative bound: %d, want 3× inputs %d", est.Size(join), inSum)
	}
}

func TestEstimatorUsesHistory(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	h := NewHistory()
	join := dag.ByOut("id_price")
	h.Observe(dag.Hash(), join.ID, Observation{OutRatio: 0.5})
	est, err := NewEstimator(dag, fs, cluster.Local(7), h)
	if err != nil {
		t.Fatal(err)
	}
	inSum := est.Size(dag.ByOut("locs")) + est.Size(dag.ByOut("prices"))
	if est.Size(join) != int64(0.5*float64(inSum)) {
		t.Errorf("history ratio ignored: %d", est.Size(join))
	}
}

func TestEstimatorMissingInput(t *testing.T) {
	dag := maxPropertyPrice()
	if _, err := NewEstimator(dag, dfs.New(), cluster.Local(7), nil); err == nil {
		t.Error("missing DFS input accepted")
	}
}

func TestFragmentCostInfeasible(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	whole, _ := ir.NewFragment(dag, dag.Ops)
	if c := est.FragmentCost(whole, engines.Hadoop()); c != Infeasible {
		t.Errorf("two-shuffle fragment on hadoop should be infeasible, got %v", c)
	}
	if c := est.FragmentCost(whole, engines.Naiad()); c == Infeasible {
		t.Error("naiad should accept the whole workflow")
	}
}

// --- partitioning -----------------------------------------------------

func TestDynamicPartitionHadoopNeedsTwoJobs(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	part, err := PartitionDynamic(dag, est, []*engines.Engine{engines.Hadoop()})
	if err != nil {
		t.Fatal(err)
	}
	// JOIN and AGG shuffle on different keys: MapReduce needs 2 jobs
	// (paper §4.3.2).
	if len(part.Jobs) != 2 {
		t.Errorf("hadoop jobs = %d, want 2\n%s", len(part.Jobs), part)
	}
}

func TestDynamicPartitionNaiadOneJob(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	part, err := PartitionDynamic(dag, est, []*engines.Engine{engines.Naiad()})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Jobs) != 1 {
		t.Errorf("naiad jobs = %d, want 1\n%s", len(part.Jobs), part)
	}
}

func TestExhaustiveNeverWorseThanDynamic(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 100000)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	engs := allEngines()
	dyn, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := PartitionExhaustive(dag, est, engs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(exh.Cost) > float64(dyn.Cost)*1.0000001 {
		t.Errorf("exhaustive (%v) worse than dynamic (%v)", exh.Cost, dyn.Cost)
	}
	if !exh.Exhaustive {
		t.Error("exhaustive flag unset")
	}
}

// TestExhaustiveBeatsDynamicOnDiamond reproduces the Fig 16 limitation:
// a diamond whose linear order separates mergeable operators.
func TestExhaustiveBeatsDynamicOnDiamond(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("src", "in/src", relation.NewSchema("a:int", "b:int"))
	// Two parallel selects feeding a union: the topo order interleaves
	// them with the join-side branch.
	s1 := d.Add(ir.OpSelect, "s1", ir.Params{Pred: ir.Cmp(ir.ColRef("a"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, in)
	g1 := d.Add(ir.OpAgg, "g1", ir.Params{GroupBy: []string{"a"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "b", As: "v"}}}, s1)
	s2 := d.Add(ir.OpSelect, "s2", ir.Params{Pred: ir.Cmp(ir.ColRef("b"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, in)
	g2 := d.Add(ir.OpAgg, "g2", ir.Params{GroupBy: []string{"a"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "b", As: "v"}}}, s2)
	d.Add(ir.OpUnion, "u", ir.Params{}, g1, g2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := dfs.New()
	src := relation.New("src", relation.NewSchema("a:int", "b:int"))
	src.MustAppend(relation.Row{relation.Int(1), relation.Int(2)})
	src.LogicalBytes = 10e9
	if err := fs.WriteRelation("in/src", src); err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(d, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hadoop only: each AGG needs its own shuffle, but s1+g1 and s2+g2
	// merge; the union is map-only. The linear order s1,g1,s2,g2,u can
	// still find this; exhaustive must be at least as good.
	engs := []*engines.Engine{engines.Hadoop()}
	dyn, err := PartitionDynamic(d, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := PartitionExhaustive(d, est, engs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exh.Cost > dyn.Cost {
		t.Errorf("exhaustive %v > dynamic %v", exh.Cost, dyn.Cost)
	}
}

// fig16DAG reproduces the paper's Figure 16 limitation: the depth-first
// linear ordering interleaves an aggregation between a JOIN and the PROJECT
// that could share its MapReduce job.
func fig16DAG(t *testing.T) (*ir.DAG, *dfs.DFS) {
	t.Helper()
	d := ir.NewDAG()
	a := d.AddInput("a", "in/a", relation.NewSchema("k:int", "v:int"))
	b := d.AddInput("b", "in/b", relation.NewSchema("k:int", "w:int"))
	j := d.Add(ir.OpJoin, "j", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, a, b)
	c := d.AddInput("c", "in/c", relation.NewSchema("q:int", "x:int"))
	g := d.Add(ir.OpAgg, "g", ir.Params{GroupBy: []string{"q"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "x", As: "x"}}}, c)
	p := d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"k", "w"}}, j)
	d.Add(ir.OpUnion, "u", ir.Params{}, p, g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := dfs.New()
	for _, name := range []string{"a", "b", "c"} {
		schema := relation.NewSchema("k:int", "v:int")
		if name == "b" {
			schema = relation.NewSchema("k:int", "w:int")
		}
		if name == "c" {
			schema = relation.NewSchema("q:int", "x:int")
		}
		rel := relation.New(name, schema)
		for i := int64(0); i < 10; i++ {
			rel.MustAppend(relation.Row{relation.Int(i % 3), relation.Int(i)})
		}
		rel.LogicalBytes = 5e9
		if err := fs.WriteRelation("in/"+name, rel); err != nil {
			t.Fatal(err)
		}
	}
	return d, fs
}

func TestFig16DynamicMissesMergeExhaustiveFinds(t *testing.T) {
	d, fs := fig16DAG(t)
	est, err := NewEstimator(d, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	engs := []*engines.Engine{engines.Hadoop()}
	dyn, err := PartitionDynamic(d, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := PartitionExhaustive(d, est, engs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The single depth-first order is j, g, p, u: merging j with p would
	// drag g into the job (two different-key shuffles), so the heuristic
	// returns a costlier segmentation than the optimum (paper Fig 16).
	if dyn.Cost <= exh.Cost {
		t.Fatalf("expected the heuristic to miss the merge: dynamic %v vs exhaustive %v\ndyn:\n%s\nexh:\n%s",
			dyn.Cost, exh.Cost, dyn, exh)
	}
	// §8's mitigation: trying multiple linear orderings recovers it.
	multi, err := PartitionDynamicMulti(d, est, engs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if float64(multi.Cost) > float64(exh.Cost)*1.0000001 {
		t.Errorf("multi-order heuristic (%v) did not recover the exhaustive cost (%v)", multi.Cost, exh.Cost)
	}
}

func TestPartitionDynamicMultiNeverWorse(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 100000)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	engs := allEngines()
	single, err := PartitionDynamic(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PartitionDynamicMulti(dag, est, engs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost > single.Cost {
		t.Errorf("multi (%v) worse than single order (%v)", multi.Cost, single.Cost)
	}
}

func TestPartitionAutoSwitches(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 10)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	part, err := Partition(dag, est, allEngines())
	if err != nil {
		t.Fatal(err)
	}
	if !part.Exhaustive {
		t.Error("small workflow should use exhaustive search")
	}
}

func TestPartitionPageRankPrefersGraphEngines(t *testing.T) {
	dag := pageRankDAG(t, 5)
	fs := seedGraphDFS(t, 2_000_000) // large graph
	est, _ := NewEstimator(dag, fs, cluster.EC2(16), nil)
	part, err := AutoMap(dag, est, allEngines())
	if err != nil {
		t.Fatal(err)
	}
	name := part.Jobs[0].Engine.Name()
	if name == "hadoop" || name == "metis" {
		t.Errorf("iterative graph workflow mapped to %s\n%s", name, part)
	}
}

// --- runner -----------------------------------------------------------

func runWorkflow(t *testing.T, dag *ir.DAG, fs *dfs.DFS, c *cluster.Cluster, engs []*engines.Engine, h *History) *WorkflowResult {
	t.Helper()
	est, err := NewEstimator(dag, fs, c, h)
	if err != nil {
		t.Fatal(err)
	}
	part, err := AutoMap(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, History: h, Mode: engines.ModeOptimized}
	res, err := r.Execute(dag, part)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunnerEndToEnd(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	res := runWorkflow(t, dag, fs, cluster.Local(7), allEngines(), nil)
	if res.Makespan <= 0 || len(res.Jobs) == 0 {
		t.Fatalf("result = %+v", res)
	}
	out, err := fs.ReadRelation("street_price")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Errorf("street_price rows = %d", out.NumRows())
	}
}

func TestRunnerWhileDriverOnHadoopMatchesNative(t *testing.T) {
	iters := 4
	// Native (naiad, one job).
	dagA := pageRankDAG(t, iters)
	fsA := seedGraphDFS(t, 1)
	resA := runWorkflow(t, dagA, fsA, cluster.EC2(16), []*engines.Engine{engines.Naiad()}, nil)
	outA, err := fsA.ReadRelation("final_ranks")
	if err != nil {
		t.Fatal(err)
	}
	// Driver-looped (hadoop, jobs per iteration).
	dagB := pageRankDAG(t, iters)
	fsB := seedGraphDFS(t, 1)
	resB := runWorkflow(t, dagB, fsB, cluster.EC2(16), []*engines.Engine{engines.Hadoop()}, nil)
	outB, err := fsB.ReadRelation("final_ranks")
	if err != nil {
		t.Fatal(err)
	}
	if outA.Fingerprint() != outB.Fingerprint() {
		t.Error("hadoop-driven PageRank differs from naiad-native result")
	}
	// Hadoop pays per-iteration job overheads: it must be far slower.
	if resB.Makespan < resA.Makespan*3 {
		t.Errorf("hadoop (%v) should be much slower than naiad (%v)", resB.Makespan, resA.Makespan)
	}
	// Two shuffles per body (join+agg) → ≥ 2 jobs × iterations.
	if len(resB.Jobs) < 2*iters {
		t.Errorf("hadoop jobs = %d, want ≥ %d", len(resB.Jobs), 2*iters)
	}
}

// TestWhileDriverCondRel exercises the driver-looped data-dependent stop
// condition: a countdown loop on Hadoop must stop when the condition
// relation empties, matching the natively iterated result.
func TestWhileDriverCondRel(t *testing.T) {
	build := func() *ir.DAG {
		d := ir.NewDAG()
		in := d.AddInput("counter", "in/counter", relation.NewSchema("v:int"))
		body := ir.NewDAG()
		bIn := body.AddInput("counter", "", relation.NewSchema("v:int"))
		dec := body.Add(ir.OpArith, "next", ir.Params{Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(1)), AOp: ir.ArithSub}, bIn)
		body.Add(ir.OpSelect, "pending", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, dec)
		d.Add(ir.OpWhile, "done", ir.Params{
			Body: body, MaxIter: 100, CondRel: "pending",
			Carried: map[string]string{"counter": "next"},
		}, in)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	run := func(engine string) *relation.Relation {
		fs := dfs.New()
		counter := relation.New("counter", relation.NewSchema("v:int"))
		counter.MustAppend(relation.Row{relation.Int(5)})
		counter.LogicalBytes = 1e9
		if err := fs.WriteRelation("in/counter", counter); err != nil {
			t.Fatal(err)
		}
		dag := build()
		est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		part, err := MapTo(dag, est, engines.Registry()[engine])
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: cluster.Local(7)}, Mode: engines.ModeOptimized}
		res, err := r.Execute(dag, part)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if engine == "hadoop" && len(res.Jobs) < 5 {
			t.Errorf("hadoop driver loop ran %d jobs, want ≥5 (one per iteration)", len(res.Jobs))
		}
		out, err := fs.ReadRelation("done")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	hadoopOut := run("hadoop") // driver-looped, condition checked from DFS
	naiadOut := run("naiad")   // native iteration
	if hadoopOut.Fingerprint() != naiadOut.Fingerprint() {
		t.Errorf("driver loop result %v != native result %v", hadoopOut.Rows, naiadOut.Rows)
	}
	if hadoopOut.Rows[0][0].I != 0 {
		t.Errorf("countdown ended at %v, want 0", hadoopOut.Rows[0][0])
	}
}

func TestRunnerRecordsHistory(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	h := NewHistory()
	runWorkflow(t, dag, fs, cluster.Local(7), allEngines(), h)
	if h.Coverage(dag.Hash()) == 0 {
		t.Error("no history recorded")
	}
}

func TestHistoryImprovesEstimates(t *testing.T) {
	// Merged runs only reveal fragment-boundary sizes (partial history);
	// the per-operator profiling run of §6.7 yields full history. Profile
	// the workflow operator by operator and check the JOIN's conservative
	// 3× bound tightens to the observed ratio.
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	c := cluster.Local(7)
	h := NewHistory()
	est, err := NewEstimator(dag, fs, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PerOperatorPartitioning(dag, est, engines.Spark())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, History: h, Mode: engines.ModeOptimized}
	if _, err := r.Execute(dag, part); err != nil {
		t.Fatal(err)
	}
	if h.Coverage(dag.Hash()) < 3 {
		t.Fatalf("profiling coverage = %d, want all 3 compute ops", h.Coverage(dag.Hash()))
	}
	estCold, _ := NewEstimator(maxPropertyPrice(), fs, c, nil)
	estWarm, _ := NewEstimator(maxPropertyPrice(), fs, c, h)
	cold := estCold.Size(estCold.dag.ByOut("id_price"))
	warm := estWarm.Size(estWarm.dag.ByOut("id_price"))
	if warm >= cold {
		t.Errorf("history did not tighten join bound: warm %d vs cold %d", warm, cold)
	}
}

func TestPerOperatorPartitioning(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	part, err := PerOperatorPartitioning(dag, est, engines.Spark())
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Jobs) != 3 {
		t.Errorf("per-op jobs = %d, want 3", len(part.Jobs))
	}
	// Merging on: strictly cheaper than per-op (paper §6.5).
	merged, _ := PartitionDynamic(dag, est, []*engines.Engine{engines.Spark()})
	if merged.Cost >= part.Cost {
		t.Errorf("merged (%v) should beat per-op (%v)", merged.Cost, part.Cost)
	}
}

// --- optimizer --------------------------------------------------------

func TestOptimizePushesSelectBelowJoin(t *testing.T) {
	d := ir.NewDAG()
	a := d.AddInput("a", "in/a", relation.NewSchema("k:int", "v:int"))
	b := d.AddInput("b", "in/b", relation.NewSchema("k:int", "w:int"))
	j := d.Add(ir.OpJoin, "j", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, a, b)
	d.Add(ir.OpSelect, "f", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(5)))}, j)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	ra := relation.New("a", relation.NewSchema("k:int", "v:int"))
	rb := relation.New("b", relation.NewSchema("k:int", "w:int"))
	for i := int64(0); i < 10; i++ {
		ra.MustAppend(relation.Row{relation.Int(i % 4), relation.Int(i)})
		rb.MustAppend(relation.Row{relation.Int(i % 4), relation.Int(100 + i)})
	}
	before, _, err := exec.RunDAG(d, exec.Env{"a": ra, "b": rb})
	if err != nil {
		t.Fatal(err)
	}

	n := Optimize(d)
	if n == 0 {
		t.Fatal("no rewrites applied")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("optimized DAG invalid: %v\n%s", err, d)
	}
	// The select must now sit below the join, reading input a.
	f := d.ByOut("f")
	if f.Type != ir.OpJoin {
		t.Errorf("final op should be the join renamed to f, got %v", f)
	}
	after, _, err := exec.RunDAG(d, exec.Env{"a": ra, "b": rb})
	if err != nil {
		t.Fatal(err)
	}
	if before["f"].Fingerprint() != after["f"].Fingerprint() {
		t.Error("optimization changed results")
	}
}

func TestOptimizePushesSelectBelowProject(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("a:int", "b:int"))
	p := d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"a"}}, in)
	d.Add(ir.OpSelect, "f", ir.Params{Pred: ir.Cmp(ir.ColRef("a"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, p)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := relation.New("t", relation.NewSchema("a:int", "b:int"))
	for i := int64(-5); i < 5; i++ {
		rt.MustAppend(relation.Row{relation.Int(i), relation.Int(i * 2)})
	}
	before, _, _ := exec.RunDAG(d, exec.Env{"t": rt})
	if Optimize(d) == 0 {
		t.Fatal("no rewrites")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	after, _, err := exec.RunDAG(d, exec.Env{"t": rt})
	if err != nil {
		t.Fatal(err)
	}
	if before["f"].Fingerprint() != after["f"].Fingerprint() {
		t.Error("optimization changed results")
	}
	if d.ByOut("f").Type != ir.OpProject {
		t.Errorf("project should now be last: %s", d)
	}
}

func TestOptimizeFusesSelects(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("a:int", "b:int"))
	s1 := d.Add(ir.OpSelect, "s1", ir.Params{Pred: ir.Cmp(ir.ColRef("a"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, in)
	d.Add(ir.OpSelect, "s2", ir.Params{Pred: ir.Cmp(ir.ColRef("b"), ir.CmpLt, ir.LitOp(relation.Int(10)))}, s1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := relation.New("t", relation.NewSchema("a:int", "b:int"))
	for i := int64(-5); i < 15; i++ {
		rt.MustAppend(relation.Row{relation.Int(i), relation.Int(i)})
	}
	before, _, _ := exec.RunDAG(d, exec.Env{"t": rt})
	if n := Optimize(d); n == 0 {
		t.Fatal("selects not fused")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Ops) != 2 {
		t.Errorf("ops after fusion = %d, want input+select", len(d.Ops))
	}
	after, _, err := exec.RunDAG(d, exec.Env{"t": rt})
	if err != nil {
		t.Fatal(err)
	}
	if before["s2"].Fingerprint() != after["s2"].Fingerprint() {
		t.Error("fusion changed results")
	}
}

func TestOptimizeSkipsSharedIntermediates(t *testing.T) {
	d := ir.NewDAG()
	a := d.AddInput("a", "in/a", relation.NewSchema("k:int", "v:int"))
	b := d.AddInput("b", "in/b", relation.NewSchema("k:int", "w:int"))
	j := d.Add(ir.OpJoin, "j", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, a, b)
	d.Add(ir.OpSelect, "f", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(5)))}, j)
	d.Add(ir.OpDistinct, "d2", ir.Params{}, j) // second consumer of the join
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := Optimize(d); n != 0 {
		t.Errorf("rewrote shared intermediate (%d rewrites)", n)
	}
}

// TestIndependentJobsOverlap: jobs without data dependencies run
// concurrently, so the workflow makespan is the critical path, not the sum
// of job times. The partition is built by hand — two independent branch
// jobs feeding a union job — because the cost-based partitioners are free
// to merge a branch into the union's job and produce a chain instead.
func TestIndependentJobsOverlap(t *testing.T) {
	d, fs := fig16DAG(t) // two independent branches feeding a union
	hadoop := engines.Hadoop()
	var jobs []Assignment
	for _, group := range [][]*ir.Op{
		{d.ByOut("j"), d.ByOut("p")}, // branch A: join + project
		{d.ByOut("g")},               // branch B: aggregate
		{d.ByOut("u")},               // union of both branches
	} {
		frag, err := ir.NewFragment(d, group)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Assignment{Frag: frag, Engine: hadoop})
	}
	part := &Partitioning{Jobs: jobs}
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: cluster.Local(7)}, Mode: engines.ModeOptimized}
	res, err := r.Execute(d, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("expected 3 job runs, got %d", len(res.Jobs))
	}
	if res.Makespan >= res.SumJobTime {
		t.Errorf("makespan (%v) should be below the sum of job times (%v): independent jobs overlap",
			res.Makespan, res.SumJobTime)
	}
	// The critical path is the slower branch plus the union.
	branch := res.Jobs[0].Makespan
	if res.Jobs[1].Makespan > branch {
		branch = res.Jobs[1].Makespan
	}
	if want := branch + res.Jobs[2].Makespan; res.Makespan != want {
		t.Errorf("makespan = %v, want slower branch + union = %v", res.Makespan, want)
	}
}

// TestEstimatorTracksMeasuredOrdering checks that the planning-time cost
// function ranks options the same way measured execution does — the
// property automatic mapping relies on. We compare two engines whose
// measured makespans differ clearly on the same workload.
func TestEstimatorTracksMeasuredOrdering(t *testing.T) {
	c := cluster.EC2(100)
	run := func(engName string) (cluster.Seconds, cluster.Seconds) {
		dag := pageRankDAG(t, 5)
		fs := seedGraphDFS(t, 2_000_000)
		est, err := NewEstimator(dag, fs, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := engines.Registry()[engName]
		part, err := MapTo(dag, est, eng)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, Mode: engines.ModeOptimized}
		res, err := r.Execute(dag, part)
		if err != nil {
			t.Fatal(err)
		}
		return part.Cost, res.Makespan
	}
	naiadEst, naiadMeasured := run("naiad")
	hadoopEst, hadoopMeasured := run("hadoop")
	if !(naiadMeasured < hadoopMeasured) {
		t.Fatalf("expected naiad (%v) to measure faster than hadoop (%v)", naiadMeasured, hadoopMeasured)
	}
	if !(naiadEst < hadoopEst) {
		t.Errorf("estimates disagree with measurement: naiad est %v vs hadoop est %v", naiadEst, hadoopEst)
	}
	// Estimates should be in the same order of magnitude as measurement
	// (conservative bounds may inflate, but not unboundedly).
	for _, pair := range []struct {
		name     string
		est, mea cluster.Seconds
	}{{"naiad", naiadEst, naiadMeasured}, {"hadoop", hadoopEst, hadoopMeasured}} {
		ratio := float64(pair.est) / float64(pair.mea)
		if ratio < 0.05 || ratio > 20 {
			t.Errorf("%s estimate %v vs measured %v (ratio %.2f) out of range", pair.name, pair.est, pair.mea, ratio)
		}
	}
}

// --- decision tree & history persistence ------------------------------

func TestDecisionTreeChoices(t *testing.T) {
	reg := engines.Registry()
	c := cluster.EC2(16)

	// Small graph → graphchi.
	dagG := pageRankDAG(t, 5)
	fsG := seedGraphDFS(t, 1000)
	estG, _ := NewEstimator(dagG, fsG, c, nil)
	e, err := DecisionTree(dagG, estG, reg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "graphchi" {
		t.Errorf("small graph choice = %s", e.Name())
	}

	// Large graph → powergraph.
	fsG2 := seedGraphDFS(t, 10_000_000)
	estG2, _ := NewEstimator(dagG, fsG2, c, nil)
	e2, _ := DecisionTree(dagG, estG2, reg)
	if e2.Name() != "powergraph" {
		t.Errorf("large graph choice = %s", e2.Name())
	}

	// Small batch → metis; large batch → hadoop.
	dagB := maxPropertyPrice()
	fsB := seedPropertyDFS(t, 10)
	estB, _ := NewEstimator(dagB, fsB, c, nil)
	e3, _ := DecisionTree(dagB, estB, reg)
	if e3.Name() != "metis" {
		t.Errorf("small batch choice = %s", e3.Name())
	}
	fsB2 := seedPropertyDFS(t, 10_000_000)
	estB2, _ := NewEstimator(dagB, fsB2, c, nil)
	e4, _ := DecisionTree(dagB, estB2, reg)
	if e4.Name() != "hadoop" {
		t.Errorf("large batch choice = %s", e4.Name())
	}
}

func TestRuntimeHistoryDoesNotBiasEstimates(t *testing.T) {
	// Recorded runtimes are informational (Explain, operators); they must
	// NOT replace estimates during planning — a measured runtime for only
	// the previously-chosen fragment would make the mapper lock in its
	// first choice (unexplored alternatives keep conservative estimates).
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	c := cluster.Local(7)
	h := NewHistory()
	est, err := NewEstimator(dag, fs, c, h)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ir.NewFragment(dag, dag.Ops)
	if err != nil {
		t.Fatal(err)
	}
	eng := engines.Naiad()
	estimated := est.FragmentCost(whole, eng)
	h.ObserveRuntime(est.DAGHash(dag), FragmentKey(whole), eng.Name(), 1.0)
	if got := est.FragmentCost(whole, eng); got != estimated {
		t.Errorf("runtime record changed the estimate: %v -> %v", estimated, got)
	}
	if _, ok := h.LookupRuntime(est.DAGHash(dag), FragmentKey(whole), eng.Name()); !ok {
		t.Error("runtime record lost")
	}
}

func TestRunnerRecordsJobRuntimes(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 1000)
	c := cluster.Local(7)
	h := NewHistory()
	est, _ := NewEstimator(dag, fs, c, h)
	part, err := MapTo(dag, est, engines.Registry()["naiad"])
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Ctx: engines.RunContext{DFS: fs, Cluster: c}, History: h, Mode: engines.ModeOptimized}
	res, err := r.Execute(dag, part)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := h.LookupRuntime(dag.Hash(), FragmentKey(part.Jobs[0].Frag), "naiad")
	if !ok {
		t.Fatal("no runtime recorded")
	}
	if s <= 0 || cluster.Seconds(s) > res.Makespan {
		t.Errorf("recorded runtime %v vs makespan %v", s, res.Makespan)
	}
}

func TestHistorySaveLoad(t *testing.T) {
	h := NewHistory()
	h.Observe("w1", 3, Observation{OutRatio: 0.25, Iterations: 7})
	h.ObserveRuntime("w1", "0,1,2,", "naiad", 42.5)
	path := filepath.Join(t.TempDir(), "history.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := h2.Lookup("w1", 3)
	if !ok || math.Abs(obs.OutRatio-0.25) > 1e-12 || obs.Iterations != 7 {
		t.Errorf("round trip = %+v %v", obs, ok)
	}
	if s, ok := h2.LookupRuntime("w1", "0,1,2,", "naiad"); !ok || s != 42.5 {
		t.Errorf("runtime round trip = %v %v", s, ok)
	}
	h3, err := LoadHistory(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || h3 == nil {
		t.Errorf("missing file should load empty: %v", err)
	}
}

func TestExplainRendersReasoning(t *testing.T) {
	dag := pageRankDAG(t, 5)
	fs := seedGraphDFS(t, 100000)
	h := NewHistory()
	est, err := NewEstimator(dag, fs, cluster.EC2(16), h)
	if err != nil {
		t.Fatal(err)
	}
	part, err := AutoMap(dag, est, allEngines())
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(part, est, allEngines())
	for _, want := range []string{"volumes:", "engine costs:", "iterative:", "graph idiom", "*"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	// With a recorded runtime the explanation calls it out.
	h.ObserveRuntime(est.DAGHash(dag), FragmentKey(part.Jobs[0].Frag), part.Jobs[0].Engine.Name(), 55)
	text2 := Explain(part, est, allEngines())
	if !strings.Contains(text2, "recorded runtime") {
		t.Errorf("explain missing runtime note:\n%s", text2)
	}
}

func TestExhaustiveBudgetExpires(t *testing.T) {
	dag := maxPropertyPrice()
	fs := seedPropertyDFS(t, 10)
	est, _ := NewEstimator(dag, fs, cluster.Local(7), nil)
	// A 1ns budget must still return some feasible partitioning or error,
	// never hang.
	part, err := PartitionExhaustive(dag, est, allEngines(), 1)
	if err == nil && part.Cost == Infeasible {
		t.Error("returned infeasible partitioning without error")
	}
}
