package core

import (
	"fmt"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/relation"
)

// renamedPropertyPrice is maxPropertyPrice with every relation renamed and
// the inputs inserted in the opposite order — semantically identical,
// textually different.
func renamedPropertyPrice() *ir.DAG {
	d := ir.NewDAG()
	prices := d.AddInput("r1", "in/prices", relation.NewSchema("id:int", "price:float"))
	props := d.AddInput("r0", "in/properties", relation.NewSchema("id:int", "street:string", "town:string"))
	locs := d.Add(ir.OpProject, "r2", ir.Params{Columns: []string{"id", "street", "town"}}, props)
	idPrice := d.Add(ir.OpJoin, "r3", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	d.Add(ir.OpAgg, "r4", ir.Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []ir.AggSpec{{Func: ir.AggMax, Col: "price", As: "max_price"}},
	}, idPrice)
	return d
}

func partitionFixture(t *testing.T, dag *ir.DAG) (*Partitioning, []*engines.Engine) {
	t.Helper()
	fs := seedPropertyDFS(t, 1000)
	est, err := NewEstimator(dag, fs, cluster.Local(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	engs := allEngines()
	p, err := AutoMap(dag, est, engs)
	if err != nil {
		t.Fatal(err)
	}
	return p, engs
}

func engineByName(engs []*engines.Engine) map[string]*engines.Engine {
	m := make(map[string]*engines.Engine, len(engs))
	for _, e := range engs {
		m[e.Name()] = e
	}
	return m
}

func TestPlanCacheReplayOnRenamedDAG(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	reg := obs.NewRegistry()
	pc := NewPlanCache(8, reg)
	pc.Store(PlanKey(a, engs), a, 0, p)

	b := renamedPropertyPrice()
	if PlanKey(a, engs) != PlanKey(b, engs) {
		t.Fatal("renamed DAG has a different plan key")
	}
	got, ok := pc.Lookup(PlanKey(b, engs), b, 0, engineByName(engs))
	if !ok {
		t.Fatal("expected a cache hit on the renamed DAG")
	}
	if len(got.Jobs) != len(p.Jobs) {
		t.Fatalf("replayed %d jobs, want %d", len(got.Jobs), len(p.Jobs))
	}
	if got.Cost != p.Cost || got.Exhaustive != p.Exhaustive {
		t.Errorf("replayed cost/exhaustive = %v/%t, want %v/%t", got.Cost, got.Exhaustive, p.Cost, p.Exhaustive)
	}
	// Every replayed fragment must reference ops of the NEW dag, not the
	// cached one, and pair the same engine with the same op-type multiset.
	inB := make(map[*ir.Op]bool, len(b.Ops))
	for _, op := range b.Ops {
		inB[op] = true
	}
	sig := func(pp *Partitioning) []string {
		var out []string
		for _, j := range pp.Jobs {
			types := ""
			for _, op := range j.Frag.Ops {
				types += op.Type.String() + ","
			}
			out = append(out, j.Engine.Name()+":"+types)
		}
		return out
	}
	for _, j := range got.Jobs {
		for _, op := range j.Frag.Ops {
			if !inB[op] {
				t.Fatalf("replayed fragment references op %s outside the new DAG", op)
			}
		}
	}
	if fmt.Sprint(sig(got)) != fmt.Sprint(sig(p)) {
		t.Errorf("replayed job signatures %v != original %v", sig(got), sig(p))
	}
	if h := reg.Counter("plan_cache_hit_total").Value(); h != 1 {
		t.Errorf("plan_cache_hit_total = %d, want 1", h)
	}
}

func TestPlanCacheCalibrationVersionInvalidates(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	reg := obs.NewRegistry()
	pc := NewPlanCache(8, reg)
	pc.Store(PlanKey(a, engs), a, 3, p)

	if _, ok := pc.Lookup(PlanKey(a, engs), a, 4, engineByName(engs)); ok {
		t.Fatal("stale calibration version must miss")
	}
	if m := reg.Counter("plan_cache_miss_total").Value(); m != 1 {
		t.Errorf("plan_cache_miss_total = %d, want 1", m)
	}
	if e := reg.Counter("plan_cache_evict_total").Value(); e != 1 {
		t.Errorf("stale entry should be evicted: plan_cache_evict_total = %d, want 1", e)
	}
	if pc.Len() != 0 {
		t.Errorf("stale entry still cached: len = %d", pc.Len())
	}
}

func TestPlanCacheBoundedEviction(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	reg := obs.NewRegistry()
	pc := NewPlanCache(2, reg)
	pc.Store("k1", a, 0, p)
	pc.Store("k2", a, 0, p)
	// Touch k1 so it is most recently used, then overflow.
	pc.Lookup("k1", a, 0, engineByName(engs))
	pc.Store("k3", a, 0, p)
	if pc.Len() != 2 {
		t.Fatalf("len = %d, want 2", pc.Len())
	}
	if _, ok := pc.Lookup("k2", a, 0, engineByName(engs)); ok {
		t.Error("k2 (least recently used) should have been evicted")
	}
	if _, ok := pc.Lookup("k1", a, 0, engineByName(engs)); !ok {
		t.Error("k1 (recently used) should survive")
	}
	if e := reg.Counter("plan_cache_evict_total").Value(); e != 1 {
		t.Errorf("plan_cache_evict_total = %d, want 1", e)
	}
}

func TestPlanCacheMissingEngineMisses(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	pc := NewPlanCache(8, nil)
	pc.Store(PlanKey(a, engs), a, 0, p)
	if _, ok := pc.Lookup(PlanKey(a, engs), a, 0, map[string]*engines.Engine{}); ok {
		t.Fatal("replay with no engines available must miss")
	}
}

func TestPlanCacheNilSafe(t *testing.T) {
	var pc *PlanCache
	a := maxPropertyPrice()
	pc.Store("k", a, 0, &Partitioning{})
	if _, ok := pc.Lookup("k", a, 0, nil); ok {
		t.Fatal("nil cache must never hit")
	}
	if pc.Len() != 0 {
		t.Fatal("nil cache has non-zero length")
	}
	if NewPlanCache(0, nil) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
}

func TestPlanCacheSizeMismatchMisses(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	pc := NewPlanCache(8, nil)
	pc.Store("k", a, 0, p)
	small := ir.NewDAG()
	small.AddInput("x", "in/prices", relation.NewSchema("id:int", "price:float"))
	if _, ok := pc.Lookup("k", small, 0, engineByName(engs)); ok {
		t.Fatal("replay onto a different-size DAG must miss")
	}
}

func TestPlanCacheTouchRevalidates(t *testing.T) {
	a := maxPropertyPrice()
	p, engs := partitionFixture(t, a)
	pc := NewPlanCache(8, nil)
	key := PlanKey(a, engs)
	pc.Store(key, a, 3, p)

	// A run's own feedback moved calibration 3 -> 7; Touch re-tags the
	// entry so the next lookup at 7 hits instead of evicting.
	pc.Touch(key, 7)
	if _, ok := pc.Lookup(key, renamedPropertyPrice(), 7, engineByName(engs)); !ok {
		t.Fatal("lookup after Touch missed")
	}
	// Foreign feedback after the touch still invalidates.
	if _, ok := pc.Lookup(key, renamedPropertyPrice(), 8, engineByName(engs)); ok {
		t.Fatal("lookup at a later version hit a stale entry")
	}
	if pc.Len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", pc.Len())
	}
	// Touching a missing key is a no-op, as is touching through nil.
	pc.Touch(key, 9)
	var nilPC *PlanCache
	nilPC.Touch(key, 9)
}
