package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
)

// The paper calibrates the cost model once per cluster (§5.2, Table 1) and
// then trusts the constants forever. Calibration makes that continuous: a
// versioned, concurrency-safe store of per-engine phase rates and
// per-operator-class selectivities, seeded from the Table-1 profiles and
// the conservative hiBound factors, refined after every execution from
// observed phase breakdowns and per-operator size ratios. Updates are
// damped moving averages with a decaying step — one noisy run nudges the
// model, it cannot wreck it, and a steady workload's model settles on the
// mean of what it observes — and an update that drifts a learned value
// *materially* from where it sat at the last bump advances a version so
// estimator memo tables and the serve-mode plan cache know their cached
// scores are stale. Sub-threshold wobble (a converged model re-observing
// the same workload) deliberately does not bump: otherwise every
// execution's own feedback would invalidate every cached plan and
// memoized score in steady state, for estimate changes far too small to
// alter any planning decision.

const (
	// SelectivityDamping is the EWMA step for per-class output ratios.
	// 0.5 halves the distance between model and observation per update:
	// convergence is geometric (error shrinks monotonically across learning
	// rounds) yet a single outlier moves the model at most halfway.
	SelectivityDamping = 0.5
	// RateDamping is the (more cautious) EWMA step for phase rates:
	// observed rates fold in systematic residuals like codegen tax, but a
	// single straggling or tiny-volume job should barely register.
	RateDamping = 0.3
	// rateClampFactor bounds learned rates to [seed/8, seed·8]: no stream
	// of observations, however corrupt, can drive a rate to zero, negative,
	// or absurd — cost-model invariants (strictly positive rates, monotone
	// estimates) survive arbitrary update sequences.
	rateClampFactor = 8.0
	// maxSelectivity bounds a learned class ratio: cross joins legitimately
	// blow up output sizes, but no class model should exceed the worst
	// conservative bound by more than an order of magnitude.
	maxSelectivity = 250.0
	// versionEpsilon is the relative drift of a learned value — measured
	// from its anchor, the value it held at the last version bump — below
	// which updates are immaterial: the version is not bumped, so converged
	// models stop invalidating memo tables and cached plans. 1% is far
	// below any margin at which the partitioner's engine choice could flip.
	// Anchoring to the last bump (not the last update) means many tiny
	// moves that accumulate into a real drift still invalidate, while
	// steady-state wobble around a fixed point never does.
	versionEpsilon = 0.01
)

// materially reports whether a learned value drifted enough from its
// anchor to warrant invalidating version-pinned caches.
func materially(anchor, new float64) bool {
	base := math.Abs(anchor)
	if base < 1e-12 {
		base = 1e-12
	}
	return math.Abs(new-anchor)/base > versionEpsilon
}

// step is the damped update size for the n-th observation (n counted from
// zero): α₀ on first evidence, then the Robbins–Monro schedule
// α₀/(1+α₀·n). A class model is fed *heterogeneous* instances — two JOINs
// in one workflow can have wildly different selectivities — and under a
// constant step the learned value oscillates between them forever with
// amplitude ~α₀·spread, re-invalidating every version-pinned cache on
// every run. The decaying step converges to the observation stream's mean
// instead, and because Σstep diverges the model still tracks a genuine
// workload shift, just increasingly slowly.
func step(alpha0 float64, n int) float64 {
	return alpha0 / (1 + alpha0*float64(n))
}

// EngineCalibration is one engine's seed vs learned phase rates. The
// unexported anchor holds each rate's value at the last version bump;
// drift is measured against it (it deliberately does not persist — a
// reloaded store re-anchors on its first update).
type EngineCalibration struct {
	Engine  string        `json:"engine"`
	Seed    engines.Rates `json:"seed"`
	Learned engines.Rates `json:"learned"`
	Samples int           `json:"samples"`
	anchor  engines.Rates
}

// SelectivityCalibration is one operator class's seed vs learned
// output-size ratio; anchor as in EngineCalibration.
type SelectivityCalibration struct {
	Class   string  `json:"class"`
	Seed    float64 `json:"seed"`
	Learned float64 `json:"learned"`
	Samples int     `json:"samples"`
	anchor  float64
}

// CalibrationSnapshot is a point-in-time copy of the store, used for
// display (mkcalibrate, musketeer stats) and JSON persistence.
type CalibrationSnapshot struct {
	Version       uint64                   `json:"version"`
	UpdatedAt     time.Time                `json:"updated_at,omitempty"`
	Engines       []EngineCalibration      `json:"engines,omitempty"`
	Selectivities []SelectivityCalibration `json:"selectivities,omitempty"`
}

// Calibration is the feedback-calibration state. Safe for concurrent use;
// the zero-observation state is indistinguishable from the Table-1 seed
// (Rates returns SeedRates exactly, Selectivity reports no evidence).
type Calibration struct {
	mu      sync.RWMutex
	version atomic.Uint64
	engs    map[string]*EngineCalibration
	sels    map[string]*SelectivityCalibration
	// updatedAt stamps when evidence last arrived — provenance for
	// persisted state and CLI display; it never feeds a cost estimate.
	updatedAt time.Time
}

// NewCalibration returns a store holding only seeds.
func NewCalibration() *Calibration {
	return &Calibration{
		engs: map[string]*EngineCalibration{},
		sels: map[string]*SelectivityCalibration{},
	}
}

// Version returns the update counter. Estimators key their memo tables on
// it: a bump means cached fragment scores were computed on stale rates.
func (c *Calibration) Version() uint64 {
	if c == nil {
		return 0
	}
	return c.version.Load()
}

// UpdatedAt reports when evidence last arrived (zero time = never).
func (c *Calibration) UpdatedAt() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.updatedAt
}

// touch stamps the provenance clock on an update. The calibration path
// owns this wall-clock read by design (the determinism rule's exempt-
// clock-owner set sanctions it): the stamp annotates persisted state and
// CLI output only — no cost estimate ever reads it.
func (c *Calibration) touch() {
	c.updatedAt = time.Now()
}

// Rates returns the engine's current phase rates: the learned values once
// evidence exists, the exact Table-1 seed otherwise.
func (c *Calibration) Rates(eng *engines.Engine) engines.Rates {
	if c == nil {
		return eng.SeedRates()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	ec, ok := c.engs[eng.Name()]
	if !ok || ec.Samples == 0 {
		return eng.SeedRates()
	}
	return ec.Learned
}

// Selectivity returns the learned output-size ratio for an operator class,
// reporting ok only when at least one observation has been folded in.
func (c *Calibration) Selectivity(t ir.OpType) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc, ok := c.sels[t.String()]
	if !ok || sc.Samples == 0 {
		return 0, false
	}
	return sc.Learned, true
}

// SelectivityPrior returns the ratio the planner would currently assume
// for an operator class: the learned value when evidence exists, the
// conservative hiBound otherwise. It is the prior that damped history
// observations ease away from.
func (c *Calibration) SelectivityPrior(t ir.OpType) float64 {
	if s, ok := c.Selectivity(t); ok {
		return s
	}
	return hiBound(t)
}

// ObserveSelectivity folds one observed output/input ratio into the class
// model with the damped update learned += α·(observed − learned), seeding
// from the conservative hiBound on first evidence.
func (c *Calibration) ObserveSelectivity(t ir.OpType, ratio float64) {
	if c == nil || ratio < 0 || ratio != ratio || ratio > maxSelectivity {
		return
	}
	key := t.String()
	c.mu.Lock()
	sc, ok := c.sels[key]
	if !ok {
		sc = &SelectivityCalibration{Class: key, Seed: hiBound(t), Learned: hiBound(t), anchor: hiBound(t)}
		c.sels[key] = sc
	}
	sc.Learned += step(SelectivityDamping, sc.Samples) * (ratio - sc.Learned)
	sc.Samples++
	c.touch()
	if materially(sc.anchor, sc.Learned) {
		sc.anchor = sc.Learned
		c.version.Add(1)
	}
	c.mu.Unlock()
}

// ObserveRates folds one job's observed phase rates into the engine model.
// Zero fields carry no signal and are skipped; every learned rate is
// clamped to [seed/clamp, seed·clamp], so rates stay strictly positive
// under any observation sequence.
func (c *Calibration) ObserveRates(eng *engines.Engine, obs engines.Rates) {
	if c == nil {
		return
	}
	c.mu.Lock()
	ec, ok := c.engs[eng.Name()]
	if !ok {
		seed := eng.SeedRates()
		ec = &EngineCalibration{Engine: eng.Name(), Seed: seed, Learned: seed, anchor: seed}
		c.engs[eng.Name()] = ec
	}
	fields := []struct {
		seed, learned, anchor, obs *float64
	}{
		{&ec.Seed.OverheadS, &ec.Learned.OverheadS, &ec.anchor.OverheadS, &obs.OverheadS},
		{&ec.Seed.PullMBps, &ec.Learned.PullMBps, &ec.anchor.PullMBps, &obs.PullMBps},
		{&ec.Seed.LoadMBps, &ec.Learned.LoadMBps, &ec.anchor.LoadMBps, &obs.LoadMBps},
		{&ec.Seed.ProcMBps, &ec.Learned.ProcMBps, &ec.anchor.ProcMBps, &obs.ProcMBps},
		{&ec.Seed.GraphProcMBps, &ec.Learned.GraphProcMBps, &ec.anchor.GraphProcMBps, &obs.GraphProcMBps},
		{&ec.Seed.PushMBps, &ec.Learned.PushMBps, &ec.anchor.PushMBps, &obs.PushMBps},
		{&ec.Seed.ShuffleMBps, &ec.Learned.ShuffleMBps, &ec.anchor.ShuffleMBps, &obs.ShuffleMBps},
	}
	st := step(RateDamping, ec.Samples)
	moved := false
	for _, f := range fields {
		o := *f.obs
		if o <= 0 || o != o || *f.seed <= 0 {
			continue // no signal, or the engine has no such phase
		}
		v := *f.learned + st*(o-*f.learned)
		if lo := *f.seed / rateClampFactor; v < lo {
			v = lo
		}
		if hi := *f.seed * rateClampFactor; v > hi {
			v = hi
		}
		*f.learned = v
		if materially(*f.anchor, v) {
			*f.anchor = v
			moved = true
		}
	}
	ec.Samples++
	c.touch()
	if moved {
		c.version.Add(1)
	}
	c.mu.Unlock()
}

// ObserveRun extracts the effective phase rates one executed job achieved
// and folds them in — the runner's post-execution feedback hook.
func (c *Calibration) ObserveRun(eng *engines.Engine, cl *cluster.Cluster, res *engines.RunResult) {
	c.ObserveRates(eng, eng.ObservedRates(cl, res))
}

// Snapshot copies the store for display or persistence, engines and
// classes sorted by name.
func (c *Calibration) Snapshot() CalibrationSnapshot {
	if c == nil {
		return CalibrationSnapshot{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := CalibrationSnapshot{Version: c.version.Load(), UpdatedAt: c.updatedAt}
	for _, ec := range c.engs {
		snap.Engines = append(snap.Engines, *ec)
	}
	for _, sc := range c.sels {
		snap.Selectivities = append(snap.Selectivities, *sc)
	}
	sort.Slice(snap.Engines, func(i, j int) bool { return snap.Engines[i].Engine < snap.Engines[j].Engine })
	sort.Slice(snap.Selectivities, func(i, j int) bool { return snap.Selectivities[i].Class < snap.Selectivities[j].Class })
	return snap
}

// restore replaces the store's contents with a snapshot (persistence
// load); the version counter resumes from the snapshot's.
func (c *Calibration) restore(snap CalibrationSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.engs = map[string]*EngineCalibration{}
	for i := range snap.Engines {
		ec := snap.Engines[i]
		c.engs[ec.Engine] = &ec
	}
	c.sels = map[string]*SelectivityCalibration{}
	for i := range snap.Selectivities {
		sc := snap.Selectivities[i]
		c.sels[sc.Class] = &sc
	}
	c.updatedAt = snap.UpdatedAt
	c.version.Store(snap.Version)
}

// SaveFile writes the calibration state as indented JSON.
func (c *Calibration) SaveFile(path string) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFile replaces the state from a file written by SaveFile; a missing
// file is a no-op so first runs need no setup.
func (c *Calibration) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap CalibrationSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("calibration: %s: %w", path, err)
	}
	c.restore(snap)
	return nil
}
