package cluster

import (
	"math"
	"testing"
)

func TestNewClampsNodes(t *testing.T) {
	c := New("x", 0, LocalNode)
	if c.Nodes != 1 {
		t.Errorf("Nodes = %d, want 1", c.Nodes)
	}
}

func TestAggregates(t *testing.T) {
	c := EC2(10)
	if c.TotalCores() != 40 {
		t.Errorf("TotalCores = %d", c.TotalCores())
	}
	if got := c.AggregateDiskMBps(); got != 1000 {
		t.Errorf("AggregateDiskMBps = %v", got)
	}
	if got := c.AggregateNetMBps(); got != 1200 {
		t.Errorf("AggregateNetMBps = %v", got)
	}
}

func TestRestrict(t *testing.T) {
	c := EC2(100)
	r := c.Restrict(16)
	if r.Nodes != 16 {
		t.Errorf("Restrict(16).Nodes = %d", r.Nodes)
	}
	if r.Spec != c.Spec {
		t.Error("Restrict changed spec")
	}
	if c.Restrict(200) != c {
		t.Error("Restrict above size should return same cluster")
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(100e6, 100); math.Abs(float64(got)-1.0) > 1e-9 {
		t.Errorf("100MB at 100MB/s = %v, want 1s", got)
	}
	if TransferTime(100, 0) != 0 {
		t.Error("zero bandwidth should cost zero")
	}
	if TransferTime(0, 100) != 0 {
		t.Error("zero bytes should cost zero")
	}
}

func TestSecondsString(t *testing.T) {
	if Seconds(1.25).String() != "1.2s" && Seconds(1.25).String() != "1.3s" {
		t.Errorf("String = %q", Seconds(1.25).String())
	}
}
