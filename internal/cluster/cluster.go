// Package cluster models the deployment a Musketeer workflow runs on: a set
// of identical nodes with per-node core counts, memory, and disk/network
// bandwidth, plus simulated-time bookkeeping.
//
// The paper evaluates on a 100-node EC2 m1.xlarge cluster and a 7-node local
// cluster; both are expressible as NodeSpecs. Engines consume the cluster to
// decide how many parallel readers/writers/workers a job gets, and the cost
// model converts logical data volumes into simulated seconds using the
// cluster's aggregate rates.
package cluster

import "fmt"

// Seconds is a simulated duration. All makespans in the benchmark harness
// are Seconds, never wall-clock time (except Fig 13, which measures the real
// runtime of the partitioning algorithms).
type Seconds float64

// String renders the duration with fixed precision for bench tables.
func (s Seconds) String() string { return fmt.Sprintf("%.1fs", float64(s)) }

// NodeSpec describes one machine.
type NodeSpec struct {
	Cores    int
	MemGB    float64
	DiskMBps float64 // sequential disk bandwidth per node
	NetMBps  float64 // network bandwidth per node
}

// EC2M1XLarge approximates the m1.xlarge instances used for the paper's
// 100-node experiments (4 vCPU, 15 GB, moderate disk and network).
var EC2M1XLarge = NodeSpec{Cores: 4, MemGB: 15, DiskMBps: 100, NetMBps: 120}

// LocalNode approximates the paper's dedicated seven-machine cluster
// (lower variance, faster local disks, GbE).
var LocalNode = NodeSpec{Cores: 8, MemGB: 16, DiskMBps: 150, NetMBps: 110}

// Cluster is a homogeneous set of nodes.
type Cluster struct {
	Name  string
	Spec  NodeSpec
	Nodes int
}

// New returns a cluster of n nodes with the given spec.
func New(name string, n int, spec NodeSpec) *Cluster {
	if n < 1 {
		n = 1
	}
	return &Cluster{Name: name, Spec: spec, Nodes: n}
}

// EC2 returns an n-node EC2 m1.xlarge cluster.
func EC2(n int) *Cluster { return New(fmt.Sprintf("ec2-%d", n), n, EC2M1XLarge) }

// Local returns the paper's 7-node local cluster (or n nodes of it).
func Local(n int) *Cluster { return New(fmt.Sprintf("local-%d", n), n, LocalNode) }

// TotalCores returns the aggregate core count.
func (c *Cluster) TotalCores() int { return c.Nodes * c.Spec.Cores }

// AggregateDiskMBps returns cluster-wide disk bandwidth when all nodes
// stream in parallel (the HDFS parallel-read case).
func (c *Cluster) AggregateDiskMBps() float64 {
	return float64(c.Nodes) * c.Spec.DiskMBps
}

// AggregateNetMBps returns cluster-wide network bandwidth.
func (c *Cluster) AggregateNetMBps() float64 {
	return float64(c.Nodes) * c.Spec.NetMBps
}

// Restrict returns a view of the cluster limited to at most n nodes,
// which is how single-machine engines (Metis, GraphChi, serial C) and
// capped engines (PowerGraph beyond 16 nodes) see a larger deployment.
func (c *Cluster) Restrict(n int) *Cluster {
	if n >= c.Nodes {
		return c
	}
	return &Cluster{Name: fmt.Sprintf("%s[%d]", c.Name, n), Spec: c.Spec, Nodes: n}
}

// MB expresses a byte count in megabytes for rate arithmetic.
func MB(bytes int64) float64 { return float64(bytes) / 1e6 }

// TransferTime returns the simulated time to move `bytes` at `mbps`
// aggregate bandwidth; zero-bandwidth transfers take zero time so optional
// stages (e.g. LOAD for engines without a load phase) cost nothing.
func TransferTime(bytes int64, mbps float64) Seconds {
	if mbps <= 0 || bytes <= 0 {
		return 0
	}
	return Seconds(MB(bytes) / mbps)
}
