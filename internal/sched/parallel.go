package sched

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns when all calls have finished. It is the
// data-parallel counterpart to Scheduler.Run for independent, homogeneous
// work items (the exhaustive partitioner's search subtrees): no
// dependencies, no retry, no admission control — just a bounded worker
// loop owned by this package so client packages stay goroutine-free.
// Indices are claimed atomically, so call order is unspecified; fn must be
// safe to run concurrently with itself.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	//mkvet:ignore context-discipline bounded CPU-local fork-join: items are not cancellable mid-flight by design, callers observe ctx between items
	wg.Wait()
}
