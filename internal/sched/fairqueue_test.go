package sched

import (
	"sync"
	"testing"
	"time"
)

// plugged builds a FairQueue whose single worker is blocked on a plug job,
// so tests can stage queue contents and then observe dispatch order
// deterministically.
func plugged(t *testing.T, opts FairOptions) (*FairQueue, chan struct{}) {
	t.Helper()
	opts.Workers = 1
	f := NewFairQueue(opts)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := f.Submit("__plug", func() {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	return f, release
}

// TestFairQueueStarvation is the ISSUE's pinned property: a tenant
// flooding 100 submissions cannot starve a second tenant's single job past
// its fair share. With one worker and round-robin dispatch, B's job must
// run no later than second once the worker frees up — not 101st.
func TestFairQueueStarvation(t *testing.T) {
	f, release := plugged(t, FairOptions{MaxQueued: 200})
	defer f.Close()

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 101)
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			done <- struct{}{}
		}
	}
	for i := 0; i < 100; i++ {
		if err := f.Submit("flooder", record("A")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Submit("patient", record("B")); err != nil {
		t.Fatal(err)
	}
	close(release)
	for i := 0; i < 101; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("queue stalled after %d completions", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, name := range order {
		if name == "B" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("tenant B dispatched at position %d of %d, want within the first 2 (order head: %v)",
			pos, len(order), order[:min(5, len(order))])
	}
	if len(order) != 101 {
		t.Fatalf("completed %d submissions, want 101", len(order))
	}
}

func TestFairQueueRejectsBeyondMaxQueued(t *testing.T) {
	f, release := plugged(t, FairOptions{MaxQueued: 3})
	defer f.Close()
	defer close(release)

	for i := 0; i < 3; i++ {
		if err := f.Submit("t", func() {}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := f.Submit("t", func() {}); err != ErrQueueFull {
		t.Fatalf("4th submit: got %v, want ErrQueueFull", err)
	}
	// The bound is per tenant: another tenant still gets in.
	if err := f.Submit("other", func() {}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if got := f.Queued("t"); got != 3 {
		t.Fatalf("Queued(t) = %d, want 3", got)
	}
}

func TestFairQueueMaxInFlight(t *testing.T) {
	f := NewFairQueue(FairOptions{Workers: 4, MaxInFlight: 1})
	defer f.Close()

	block := make(chan struct{})
	running := make(chan struct{}, 4)
	for i := 0; i < 3; i++ {
		if err := f.Submit("capped", func() {
			running <- struct{}{}
			<-block
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-running
	// With MaxInFlight 1, the other two must stay queued even though three
	// workers idle.
	time.Sleep(50 * time.Millisecond)
	if got := f.InFlight("capped"); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	if got := f.Queued("capped"); got != 2 {
		t.Errorf("Queued = %d, want 2", got)
	}
	// Another tenant is not affected by the cap.
	ran := make(chan struct{})
	if err := f.Submit("free", func() { close(ran) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("uncapped tenant blocked behind a capped one")
	}
	close(block)
}

func TestFairQueueWeights(t *testing.T) {
	f, release := plugged(t, FairOptions{
		MaxQueued: 50,
		Weights:   map[string]int{"gold": 2, "bronze": 1},
	})
	defer f.Close()

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 12)
	rec := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			done <- struct{}{}
		}
	}
	for i := 0; i < 6; i++ {
		if err := f.Submit("gold", rec("g")); err != nil {
			t.Fatal(err)
		}
		if err := f.Submit("bronze", rec("b")); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	for i := 0; i < 12; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("queue stalled")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// In the first 6 dispatches, gold (weight 2) must appear about twice as
	// often as bronze: 4 of 6.
	g := 0
	for _, name := range order[:6] {
		if name == "g" {
			g++
		}
	}
	if g != 4 {
		t.Errorf("gold got %d of the first 6 dispatches, want 4 (order: %v)", g, order)
	}
}

func TestFairQueueSubmitAfterClose(t *testing.T) {
	f := NewFairQueue(FairOptions{Workers: 1})
	f.Close()
	if err := f.Submit("t", func() {}); err != ErrQueueClosed {
		t.Fatalf("got %v, want ErrQueueClosed", err)
	}
	// Close is idempotent.
	f.Close()
}

func TestFairQueueCloseWaitsForInFlight(t *testing.T) {
	f := NewFairQueue(FairOptions{Workers: 2})
	started := make(chan struct{})
	finished := make(chan struct{})
	if err := f.Submit("t", func() {
		close(started)
		time.Sleep(100 * time.Millisecond)
		close(finished)
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	f.Close()
	select {
	case <-finished:
	default:
		t.Fatal("Close returned before the in-flight submission finished")
	}
}
