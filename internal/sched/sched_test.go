package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musketeer/internal/cluster"
)

func ok(d cluster.Seconds) func(context.Context, int) (Result, error) {
	return func(context.Context, int) (Result, error) {
		return Result{Duration: d}, nil
	}
}

func TestRunDependencyOrderAndMakespan(t *testing.T) {
	// Diamond: 0 → {1, 2} → 3. Critical path = 1 + 5 + 1 = 7.
	var mu sync.Mutex
	var order []int
	traced := func(i int, d cluster.Seconds) func(context.Context, int) (Result, error) {
		return func(context.Context, int) (Result, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return Result{Duration: d, Value: i}, nil
		}
	}
	s := New(Options{Workers: 4})
	rep := s.Run(context.Background(), []Job{
		{Name: "a", Run: traced(0, 1)},
		{Name: "b", Deps: []int{0}, Run: traced(1, 5)},
		{Name: "c", Deps: []int{0}, Run: traced(2, 2)},
		{Name: "d", Deps: []int{1, 2}, Run: traced(3, 1)},
	})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Makespan != 7 {
		t.Errorf("makespan = %v, want 7", rep.Makespan)
	}
	if rep.SumDuration != 9 {
		t.Errorf("sum = %v, want 9", rep.SumDuration)
	}
	pos := map[int]int{}
	for p, i := range order {
		pos[i] = p
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Errorf("dependency order violated: %v", order)
	}
	if got := rep.Outcomes[3].Start; got != 6 {
		t.Errorf("job d start = %v, want 6", got)
	}
	if got := rep.Outcomes[3].Value; got != 3 {
		t.Errorf("job d value = %v", got)
	}
}

// TestFailFastNoStragglers is the satellite regression test: after the
// first job failure, in-flight siblings must be cancelled (not run to
// completion) and queued jobs must never start.
func TestFailFastNoStragglers(t *testing.T) {
	boom := errors.New("boom")
	var completed atomic.Int32 // siblings that ran to completion
	var started atomic.Int32
	release := make(chan struct{})
	sibling := func(ctx context.Context, _ int) (Result, error) {
		started.Add(1)
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-release:
			completed.Add(1)
			return Result{}, nil
		}
	}
	s := New(Options{Workers: 8})
	jobs := []Job{
		{Name: "failer", Run: func(ctx context.Context, _ int) (Result, error) {
			// Let the siblings get in flight before failing.
			for started.Load() < 3 {
				time.Sleep(time.Millisecond)
			}
			return Result{}, boom
		}},
		{Name: "sib1", Run: sibling},
		{Name: "sib2", Run: sibling},
		{Name: "sib3", Run: sibling},
		{Name: "downstream", Deps: []int{0}, Run: ok(1)},
		{Name: "downstream2", Deps: []int{1}, Run: ok(1)},
	}
	rep := s.Run(context.Background(), jobs)
	close(release) // stragglers, if any, may now finish — too late to count
	if !errors.Is(rep.Err, boom) {
		t.Fatalf("err = %v, want %v", rep.Err, boom)
	}
	var je *JobError
	if !errors.As(rep.Err, &je) || je.Job != "failer" {
		t.Errorf("err should name the failing job: %v", rep.Err)
	}
	if n := completed.Load(); n != 0 {
		t.Errorf("%d in-flight siblings ran to completion after the failure", n)
	}
	for _, i := range []int{4, 5} {
		if !rep.Outcomes[i].Skipped || rep.Outcomes[i].Attempts != 0 {
			t.Errorf("downstream job %d should be skipped without running: %+v", i, rep.Outcomes[i])
		}
	}
	for _, i := range []int{1, 2, 3} {
		if out := rep.Outcomes[i]; !errors.Is(out.Err, context.Canceled) {
			t.Errorf("sibling %d should observe cancellation, got %+v", i, out)
		}
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Options{Workers: 2})
	var ran atomic.Int32
	jobs := []Job{
		{Name: "canceller", Run: func(context.Context, int) (Result, error) {
			cancel()
			return Result{}, nil
		}},
		{Name: "late", Deps: []int{0}, Run: func(ctx context.Context, _ int) (Result, error) {
			ran.Add(1)
			return Result{}, nil
		}},
	}
	rep := s.Run(ctx, jobs)
	if rep.Err == nil {
		t.Fatal("cancelled submission reported success")
	}
	if !errors.Is(rep.Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", rep.Err)
	}
	if ran.Load() != 0 {
		t.Error("job dispatched after external cancellation")
	}
}

func TestRetryTransient(t *testing.T) {
	transient := errors.New("transient")
	var attempts atomic.Int32
	s := New(Options{
		Workers:    2,
		MaxRetries: 3,
		Retryable:  func(err error) bool { return errors.Is(err, transient) },
	})
	rep := s.Run(context.Background(), []Job{{
		Name: "flaky",
		Run: func(_ context.Context, attempt int) (Result, error) {
			attempts.Add(1)
			if attempt < 2 {
				return Result{}, transient
			}
			return Result{Duration: 4}, nil
		},
	}})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if got := rep.Outcomes[0].Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if rep.Makespan != 4 {
		t.Errorf("makespan = %v", rep.Makespan)
	}

	// Retry budget exhausted → failure propagates.
	rep = s.Run(context.Background(), []Job{{
		Name: "hopeless",
		Run: func(context.Context, int) (Result, error) {
			return Result{}, transient
		},
	}})
	if !errors.Is(rep.Err, transient) {
		t.Errorf("err = %v, want transient after retries", rep.Err)
	}
	if got := rep.Outcomes[0].Attempts; got != 4 {
		t.Errorf("attempts = %d, want 1+3 retries", got)
	}

	// Non-retryable errors are not retried.
	fatal := errors.New("fatal")
	rep = s.Run(context.Background(), []Job{{
		Name: "fatal",
		Run:  func(context.Context, int) (Result, error) { return Result{}, fatal },
	}})
	if got := rep.Outcomes[0].Attempts; got != 1 {
		t.Errorf("non-retryable attempts = %d, want 1", got)
	}
}

func TestAdmissionControlBoundsConcurrency(t *testing.T) {
	const workers = 3
	s := New(Options{Workers: workers})
	var cur, peak atomic.Int32
	job := func(ctx context.Context, _ int) (Result, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return Result{Duration: 1}, nil
	}
	// Two concurrent submissions share the same admission budget.
	var wg sync.WaitGroup
	for sub := 0; sub < 2; sub++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]Job, 8)
			for i := range jobs {
				jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: job}
			}
			if rep := s.Run(context.Background(), jobs); rep.Err != nil {
				t.Error(rep.Err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestRunNestedBypassesAdmission(t *testing.T) {
	// A one-worker scheduler whose single admitted job submits a nested
	// DAG: with admission control this would deadlock; RunNested must
	// complete.
	s := New(Options{Workers: 1})
	done := make(chan *Report, 1)
	go func() {
		done <- s.Run(context.Background(), []Job{{
			Name: "outer",
			Run: func(ctx context.Context, _ int) (Result, error) {
				inner := s.RunNested(ctx, []Job{
					{Name: "in1", Run: ok(2)},
					{Name: "in2", Deps: []int{0}, Run: ok(3)},
				})
				if inner.Err != nil {
					return Result{}, inner.Err
				}
				return Result{Duration: inner.SumDuration}, nil
			},
		}})
	}()
	select {
	case rep := <-done:
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Makespan != 5 {
			t.Errorf("makespan = %v, want 5", rep.Makespan)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested submission deadlocked")
	}
}

func TestInvalidDependencies(t *testing.T) {
	s := New(Options{Workers: 2})
	if rep := s.Run(context.Background(), []Job{{Name: "x", Deps: []int{5}, Run: ok(1)}}); rep.Err == nil {
		t.Error("out-of-range dependency accepted")
	}
	rep := s.Run(context.Background(), []Job{
		{Name: "a", Deps: []int{1}, Run: ok(1)},
		{Name: "b", Deps: []int{0}, Run: ok(1)},
	})
	if rep.Err == nil {
		t.Error("dependency cycle accepted")
	}
	if rep := s.Run(context.Background(), nil); rep.Err != nil || len(rep.Outcomes) != 0 {
		t.Errorf("empty submission: %+v", rep)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	// The simulated timeline must not depend on real interleaving: run the
	// same jittery DAG many times and expect identical accounting.
	mk := func() []Job {
		return []Job{
			{Name: "a", Run: ok(3)},
			{Name: "b", Run: ok(1)},
			{Name: "c", Deps: []int{0, 1}, Run: func(context.Context, int) (Result, error) {
				time.Sleep(time.Duration(time.Now().UnixNano() % 997)) // real-time jitter
				return Result{Duration: 2}, nil
			}},
			{Name: "d", Deps: []int{1}, Run: ok(10)},
		}
	}
	s := New(Options{Workers: 4})
	for trial := 0; trial < 20; trial++ {
		rep := s.Run(context.Background(), mk())
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Makespan != 11 {
			t.Fatalf("trial %d: makespan = %v, want 11", trial, rep.Makespan)
		}
		if rep.Outcomes[2].Start != 3 || rep.Outcomes[2].Finish != 5 {
			t.Fatalf("trial %d: job c timeline = [%v, %v], want [3, 5]",
				trial, rep.Outcomes[2].Start, rep.Outcomes[2].Finish)
		}
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i].Load())
			}
		}
	}
	ForEach(4, 0, func(int) { t.Error("fn called for n=0") })
}
