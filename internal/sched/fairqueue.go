package sched

import (
	"errors"
	"sync"
)

// FairQueue is the serve mode's tenant-level admission layer: it sits in
// front of the job Scheduler and decides *whose* submission runs next, the
// way the Scheduler decides *which job* of a submission runs next. Each
// tenant gets its own bounded FIFO; a fixed worker pool drains the queues
// by deficit round robin, so a tenant flooding submissions advances other
// tenants' positions instead of starving them:
//
//   - Every tenant accrues Quantum×weight credits when the round-robin
//     cursor visits it; dispatching one submission spends one credit.
//     Unspent credits (a tenant capped by MaxInFlight) carry over, so
//     backpressured tenants are not penalized for the capacity they could
//     not use.
//   - MaxInFlight bounds a tenant's concurrently running submissions, so a
//     single tenant cannot occupy every worker even when alone in the
//     queue just before a burst from someone else.
//   - MaxQueued bounds a tenant's waiting submissions; beyond it Submit
//     rejects with ErrQueueFull, which the server surfaces as HTTP 429 —
//     admission control by rejection rather than unbounded buffering.
//
// FairQueue is safe for concurrent use. Work items are opaque funcs; the
// queue neither interprets nor times them.
type FairQueue struct {
	opts FairOptions

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	// order is the round-robin ring of tenants ever seen, in first-submit
	// order; rr is the cursor. Tenant count is small (it only grows), so an
	// empty tenant staying in the ring costs one skip per round.
	order  []string
	rr     int
	wg     sync.WaitGroup
	closed bool
}

// FairOptions configures a FairQueue. The zero value of each field picks a
// sensible default.
type FairOptions struct {
	// Workers is the number of submissions run concurrently across all
	// tenants. Default 4.
	Workers int
	// MaxQueued bounds each tenant's waiting submissions. Default 64.
	MaxQueued int
	// MaxInFlight bounds each tenant's concurrently running submissions.
	// Default: Workers (a lone tenant may use the whole pool).
	MaxInFlight int
	// Quantum is the credit each weight unit earns per round-robin visit.
	// Default 1.
	Quantum int
	// Weights maps tenant name to relative weight; absent tenants weigh 1.
	Weights map[string]int
}

// ErrQueueFull is returned by Submit when the tenant's queue is at
// MaxQueued.
var ErrQueueFull = errors.New("sched: tenant queue full")

// ErrQueueClosed is returned by Submit after Close.
var ErrQueueClosed = errors.New("sched: fair queue closed")

type tenantQueue struct {
	name     string
	waiting  []func()
	deficit  int
	inflight int
}

// NewFairQueue starts a fair queue with opts.Workers dispatch workers.
func NewFairQueue(opts FairOptions) *FairQueue {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 64
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = opts.Workers
	}
	if opts.Quantum <= 0 {
		opts.Quantum = 1
	}
	f := &FairQueue{
		opts:    opts,
		tenants: make(map[string]*tenantQueue),
	}
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go f.worker()
	}
	return f
}

// Submit enqueues run for the tenant. It returns ErrQueueFull when the
// tenant's queue is at capacity and ErrQueueClosed after Close; run is
// never invoked on error.
func (f *FairQueue) Submit(tenant string, run func()) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrQueueClosed
	}
	tq := f.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant}
		f.tenants[tenant] = tq
		f.order = append(f.order, tenant)
	}
	if len(tq.waiting) >= f.opts.MaxQueued {
		return ErrQueueFull
	}
	tq.waiting = append(tq.waiting, run)
	f.cond.Signal()
	return nil
}

// Queued reports the tenant's waiting submissions.
func (f *FairQueue) Queued(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tq := f.tenants[tenant]; tq != nil {
		return len(tq.waiting)
	}
	return 0
}

// InFlight reports the tenant's running submissions.
func (f *FairQueue) InFlight(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tq := f.tenants[tenant]; tq != nil {
		return tq.inflight
	}
	return 0
}

// Close stops the workers and waits for in-flight submissions to finish.
// Waiting submissions that were never dispatched are discarded; callers
// that track per-submission state observe them as still queued.
func (f *FairQueue) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.cond.Broadcast()
	}
	f.mu.Unlock()
	//mkvet:ignore context-discipline shutdown drain mirrors net/http.Server.Close: the wait is bounded by in-flight job completion, there is nothing for a context to cancel early
	f.wg.Wait()
}

func (f *FairQueue) weight(tenant string) int {
	if w, ok := f.opts.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// next pops the next submission by deficit round robin. Caller holds f.mu.
// Returns nil when nothing is dispatchable (all queues empty, or every
// non-empty tenant is at its in-flight cap).
func (f *FairQueue) next() (*tenantQueue, func()) {
	n := len(f.order)
	if n == 0 {
		return nil, nil
	}
	// One ring scan; an empty deficit refills on visit, so every eligible
	// tenant dispatches when the cursor reaches it. A tenant at its
	// in-flight cap is skipped without a refill, so its credit reflects
	// capacity it could actually have used.
	for i := 0; i < n; i++ {
		tq := f.tenants[f.order[f.rr]]
		if len(tq.waiting) > 0 && tq.inflight < f.opts.MaxInFlight {
			if tq.deficit < 1 {
				tq.deficit += f.opts.Quantum * f.weight(tq.name)
			}
			tq.deficit--
			run := tq.waiting[0]
			tq.waiting[0] = nil
			tq.waiting = tq.waiting[1:]
			if len(tq.waiting) == 0 {
				// Fully drained tenants restart from a clean slate: banked
				// credit must not let a later burst monopolize the workers.
				tq.deficit = 0
			}
			// The cursor advances past the dispatching tenant only once its
			// credit is spent, so weight w yields up to w consecutive
			// dispatches per visit.
			if tq.deficit < 1 {
				f.rr = (f.rr + 1) % n
			}
			return tq, run
		}
		f.rr = (f.rr + 1) % n
	}
	return nil, nil
}

// worker runs dispatched submissions until Close.
func (f *FairQueue) worker() {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		var tq *tenantQueue
		var run func()
		for {
			if f.closed {
				f.mu.Unlock()
				return
			}
			if tq, run = f.next(); run != nil {
				break
			}
			f.cond.Wait()
		}
		tq.inflight++
		f.mu.Unlock()

		run()

		f.mu.Lock()
		tq.inflight--
		// A finished submission may unblock this tenant (in-flight cap) or
		// free a worker for anyone; wake all waiters.
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}
