// Package sched is the execution stack's job scheduler — and its only
// sanctioned source of concurrency (a mklint rule forbids bare go
// statements in internal/core and internal/engines).
//
// A Scheduler dispatches DAGs of jobs with bounded-worker admission
// control: every deployment owns one scheduler, concurrent workflow
// submissions share its worker budget, and a job runs only once all of its
// dependencies have succeeded. Failure handling is fail-fast: the first
// job error cancels the submission's context, in-flight siblings observe
// the cancellation, queued jobs never start, and transitively dependent
// jobs are skipped outright. Jobs that fail with an error the scheduler's
// retry predicate accepts (transient fault-injected failures) are retried
// up to MaxRetries times before the failure is propagated.
//
// Simulated time is accounted deterministically: each job reports a
// simulated duration, and the scheduler derives per-job start/finish times
// and the submission's makespan from the dependency structure alone —
// identical numbers regardless of how the real goroutines interleave.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/obs"
)

// Job is one schedulable unit of a submission.
type Job struct {
	// Name labels the job in errors and outcomes.
	Name string
	// Deps are indices (into the submitted slice) of jobs that must
	// succeed before this one is dispatched.
	Deps []int
	// Run executes one attempt of the job. attempt is 0-based and
	// increments across retries. The context carries the submission's
	// cancellation; long-running jobs must observe it.
	Run func(ctx context.Context, attempt int) (Result, error)
	// Predicted is the cost model's predicted simulated duration. When the
	// scheduler speculates (Options.SpeculativeMultiple > 0), an attempt
	// whose reported duration exceeds the multiple of this prediction gets a
	// backup attempt; the first finisher (in simulated time) wins. Zero
	// disables speculation for this job.
	Predicted cluster.Seconds
	// Log, when set, receives this job's lifecycle events (dispatch,
	// completion, retry, failure, skip, speculation) — typically the
	// submission's run-scoped logger. Nil falls back to Options.Log.
	Log *obs.Logger
}

// Result is what a successful job attempt reports back.
type Result struct {
	// Duration is the job's simulated duration; the scheduler derives the
	// submission's deterministic critical path from these.
	Duration cluster.Seconds
	// Value is an arbitrary payload handed back through the outcome.
	Value any
}

// Outcome reports one job of a finished submission.
type Outcome struct {
	Name     string
	Value    any
	Duration cluster.Seconds
	// Start and Finish place the job on the submission's simulated
	// timeline: Start is the latest dependency finish, Finish is
	// Start+Duration. Zero for failed or skipped jobs.
	Start, Finish cluster.Seconds
	// Attempts counts Run invocations (0 when the job never started).
	Attempts int
	// QueueWait is how long the job waited (real wall clock) between
	// submission and dispatch — time spent queued behind admission control
	// and unresolved dependencies. RunWall is the wall-clock time spent in
	// Run calls, retries included. Both are zero for skipped jobs.
	QueueWait, RunWall time.Duration
	// Err is the job's final error, nil on success or skip.
	Err error
	// Skipped marks a job that never ran: a dependency failed or the
	// submission was cancelled before dispatch.
	Skipped bool
	// Speculated marks a job that ran a backup attempt after its original
	// exceeded the speculation threshold; BackupWon reports that the backup
	// finished first (its result was kept). SpecWaste is the simulated time
	// the losing attempt burned before being cancelled — real cluster work
	// that bought no progress, included in the report's SumDuration but
	// never in the critical path.
	Speculated bool
	BackupWon  bool
	SpecWaste  cluster.Seconds
}

// JobError wraps a failed job's root-cause error with its name.
type JobError struct {
	Job string
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %s: %v", e.Job, e.Err) }
func (e *JobError) Unwrap() error { return e.Err }

// Report aggregates a finished submission. Outcomes is index-aligned with
// the submitted jobs.
type Report struct {
	Outcomes []Outcome
	// Makespan is the critical path through the job DAG in simulated
	// time (zero when any job failed).
	Makespan cluster.Seconds
	// SumDuration totals every completed job's simulated duration.
	SumDuration cluster.Seconds
	// Err is the first job failure (root cause, wrapped in a *JobError),
	// or the submission context's error when it was cancelled externally.
	Err error
}

// Options configures a Scheduler.
type Options struct {
	// Workers bounds how many jobs run at once across every concurrent
	// submission sharing the scheduler (admission control). <= 0 selects
	// max(4, GOMAXPROCS).
	Workers int
	// MaxRetries is how many times a failed job is re-run when Retryable
	// accepts its error. Zero disables retry.
	MaxRetries int
	// Retryable classifies errors as transient. Nil retries nothing.
	Retryable func(error) bool
	// SpeculativeMultiple enables straggler mitigation: when a job with a
	// non-zero Predicted cost reports a duration exceeding this multiple of
	// the prediction, the scheduler launches a backup attempt and keeps
	// whichever finishes first in simulated time. Zero disables speculation.
	SpeculativeMultiple float64
	// Metrics, when set, receives scheduler counters and latency
	// histograms (jobs completed/failed/skipped, retries, queue wait and
	// run wall time). Nil disables metric recording at zero cost.
	Metrics *obs.Registry
	// Log, when set, receives structured lifecycle events for jobs that do
	// not carry their own run-scoped logger. Nil disables logging at zero
	// cost.
	Log *obs.Logger
}

// Scheduler dispatches job DAGs under shared admission control.
type Scheduler struct {
	opts Options
	sem  chan struct{}
}

// New builds a scheduler.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers < 4 {
			opts.Workers = 4
		}
	}
	return &Scheduler{opts: opts, sem: make(chan struct{}, opts.Workers)}
}

// Workers returns the scheduler's admission bound.
func (s *Scheduler) Workers() int { return cap(s.sem) }

// Run executes the job DAG under the scheduler's admission control and
// blocks until every job has completed, failed, or been skipped.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) *Report {
	return s.run(ctx, jobs, true)
}

// RunNested executes a job DAG on behalf of work that is already inside an
// admitted job (e.g. the WHILE driver dispatching one iteration's body
// jobs). It bypasses admission control — the parent already holds a worker
// slot, and waiting for more slots from within it could deadlock — but
// keeps dependency dispatch, fail-fast cancellation, and retry.
func (s *Scheduler) RunNested(ctx context.Context, jobs []Job) *Report {
	return s.run(ctx, jobs, false)
}

func (s *Scheduler) run(ctx context.Context, jobs []Job, admission bool) *Report {
	n := len(jobs)
	rep := &Report{Outcomes: make([]Outcome, n)}
	if n == 0 {
		return rep
	}
	pending := make([]int, n)      // unresolved dependency counts
	dependents := make([][]int, n) // reverse edges
	for i, j := range jobs {
		for _, d := range j.Deps {
			if d < 0 || d >= n || d == i {
				rep.Err = fmt.Errorf("sched: job %d (%s) has invalid dependency %d", i, j.Name, d)
				return rep
			}
			pending[i]++
			dependents[d] = append(dependents[d], i)
		}
	}
	// Reject cyclic dependency graphs up front (Kahn's algorithm): a cycle
	// reached mid-run would leave the event loop waiting forever.
	{
		deg := append([]int(nil), pending...)
		queue := make([]int, 0, n)
		for i, p := range deg {
			if p == 0 {
				queue = append(queue, i)
			}
		}
		seen := 0
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			seen++
			for _, dep := range dependents[i] {
				if deg[dep]--; deg[dep] == 0 {
					queue = append(queue, dep)
				}
			}
		}
		if seen != n {
			rep.Err = fmt.Errorf("sched: dependency cycle among %d of %d jobs", n-seen, n)
			return rep
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Every job is considered submitted now; queue wait measures from here
	// to the moment its first attempt begins (dependency resolution plus
	// admission control).
	submitted := time.Now()

	type completion struct {
		i   int
		out Outcome
	}
	completions := make(chan completion, n)
	start := func(i int) {
		go func() {
			completions <- completion{i, s.runJob(runCtx, jobs[i], admission, submitted)}
		}()
	}

	// resolve records job i's outcome and dispatches (or skips) newly
	// unblocked dependents. It runs only on this goroutine, so the
	// bookkeeping needs no locks.
	finished := 0
	blocked := make([]bool, n) // some dependency failed or was skipped
	var resolve func(i int, out Outcome)
	resolve = func(i int, out Outcome) {
		rep.Outcomes[i] = out
		finished++
		if out.Err != nil && rep.Err == nil {
			rep.Err = &JobError{Job: jobs[i].Name, Err: out.Err}
			cancel() // fail fast: stop in-flight siblings, never start queued jobs
		}
		failed := out.Err != nil || out.Skipped
		for _, dep := range dependents[i] {
			if failed {
				blocked[dep] = true
			}
			pending[dep]--
			if pending[dep] > 0 {
				continue
			}
			if blocked[dep] {
				s.logFor(jobs[dep]).Debug("job_skipped").Str("job", jobs[dep].Name).Str("blocked_by", jobs[i].Name).Emit()
				resolve(dep, Outcome{Name: jobs[dep].Name, Skipped: true})
			} else {
				start(dep)
			}
		}
	}

	for i := range jobs {
		if pending[i] == 0 {
			start(i)
		}
	}
	for finished < n {
		c := <-completions
		resolve(c.i, c.out)
	}
	if rep.Err == nil {
		if err := ctx.Err(); err != nil {
			rep.Err = err
		}
	}

	// Deterministic simulated-time accounting over the dependency DAG. A
	// speculated job's losing attempt consumed real cluster time that the
	// critical path never sees; SumDuration bills it.
	for _, out := range rep.Outcomes {
		rep.SumDuration += out.Duration + out.SpecWaste
	}
	if rep.Err == nil {
		finish := make([]cluster.Seconds, n)
		done := make([]bool, n)
		var at func(i int) cluster.Seconds
		at = func(i int) cluster.Seconds {
			if done[i] {
				return finish[i]
			}
			done[i] = true // deps are acyclic (validated by dispatch above)
			var start cluster.Seconds
			for _, d := range jobs[i].Deps {
				if f := at(d); f > start {
					start = f
				}
			}
			rep.Outcomes[i].Start = start
			rep.Outcomes[i].Finish = start + rep.Outcomes[i].Duration
			finish[i] = rep.Outcomes[i].Finish
			return finish[i]
		}
		for i := range jobs {
			if f := at(i); f > rep.Makespan {
				rep.Makespan = f
			}
		}
	}
	s.recordMetrics(rep)
	return rep
}

// recordMetrics publishes one finished submission's outcomes to the
// scheduler's metrics registry (a free no-op when Options.Metrics is nil).
func (s *Scheduler) recordMetrics(rep *Report) {
	m := s.opts.Metrics
	if m == nil {
		return
	}
	for _, out := range rep.Outcomes {
		switch {
		case out.Skipped:
			m.Counter("sched_jobs_skipped_total").Add(1)
		case out.Err != nil:
			m.Counter("sched_jobs_failed_total").Add(1)
		default:
			m.Counter("sched_jobs_completed_total").Add(1)
		}
		if out.Speculated {
			m.Counter("sched_speculative_attempts_total").Add(1)
			if out.BackupWon {
				m.Counter("sched_speculative_wins_total").Add(1)
			}
			m.Histogram("sched_speculative_waste_s").Observe(float64(out.SpecWaste))
		}
		if retries := out.Attempts - 1; retries > 0 {
			if out.Speculated {
				retries-- // the backup attempt is speculation, not a retry
			}
			if retries > 0 {
				m.Counter("sched_job_retries_total").Add(int64(retries))
			}
		}
		if out.Attempts > 0 {
			m.Histogram("sched_queue_wait_ms").Observe(float64(out.QueueWait) / float64(time.Millisecond))
			m.Histogram("sched_run_ms").Observe(float64(out.RunWall) / float64(time.Millisecond))
		}
	}
}

// logFor picks the job's event logger: its own run-scoped logger, falling
// back to the scheduler-wide one. Both may be nil (logging disabled).
func (s *Scheduler) logFor(j Job) *obs.Logger {
	if j.Log != nil {
		return j.Log
	}
	return s.opts.Log
}

// runJob admits and executes one job, retrying transient failures.
func (s *Scheduler) runJob(ctx context.Context, j Job, admission bool, submitted time.Time) Outcome {
	out := Outcome{Name: j.Name}
	log := s.logFor(j).WithJob(j.Name)
	if admission {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			// Cancelled while queued: the job never started.
			log.Debug("job_skipped").Str("reason", "cancelled_in_queue").Emit()
			out.Skipped = true
			return out
		}
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if attempt == 0 {
				log.Debug("job_skipped").Str("reason", "cancelled_before_dispatch").Emit()
				out.Skipped = true
			} else {
				out.Err = err
			}
			return out
		}
		if attempt == 0 {
			// Dispatched: dependency resolution and admission are behind us.
			out.QueueWait = time.Since(submitted)
			log.Debug("job_dispatch").
				Float("queue_wait_ms", float64(out.QueueWait)/float64(time.Millisecond)).
				Float("predicted_s", float64(j.Predicted)).
				Emit()
		}
		out.Attempts = attempt + 1
		attemptStart := time.Now()
		res, err := j.Run(ctx, attempt)
		out.RunWall += time.Since(attemptStart)
		if err == nil {
			out.Value, out.Duration = res.Value, res.Duration
			s.speculate(ctx, j, &out, attempt)
			log.Info("job_complete").
				Int("attempts", int64(out.Attempts)).
				Float("duration_s", float64(out.Duration)).
				Bool("speculated", out.Speculated).
				Emit()
			return out
		}
		out.Err = err
		if attempt >= s.opts.MaxRetries || s.opts.Retryable == nil || !s.opts.Retryable(err) {
			log.Error("job_failed").Int("attempts", int64(out.Attempts)).Err(err).Emit()
			return out
		}
		log.WithAttempt(attempt).Warn("job_retry").
			Int("max_retries", int64(s.opts.MaxRetries)).
			Err(err).
			Emit()
		out.Err = nil // retrying
	}
}

// specCtxKey marks a job context as belonging to a speculative backup
// attempt, so the backup itself is never re-speculated.
type specCtxKey struct{}

// IsSpeculative reports whether ctx belongs to a speculative backup attempt
// launched by the scheduler's straggler mitigation.
func IsSpeculative(ctx context.Context) bool {
	v, _ := ctx.Value(specCtxKey{}).(bool)
	return v
}

// speculate implements straggler mitigation on the simulated timeline. The
// backup launches at T0 = multiple × predicted — the moment the scheduler
// notices the original has overrun — and runs as a fresh attempt (new fault
// draws: it will usually not land on the same slow node). Whichever attempt
// finishes first in simulated time wins; the loser is cancelled at that
// moment and its burn since T0 is accounted as SpecWaste.
func (s *Scheduler) speculate(ctx context.Context, j Job, out *Outcome, attempt int) {
	mult := s.opts.SpeculativeMultiple
	if mult <= 0 || j.Predicted <= 0 || IsSpeculative(ctx) {
		return
	}
	launch := cluster.Seconds(mult * float64(j.Predicted))
	if out.Duration <= launch {
		return
	}
	out.Speculated = true
	s.logFor(j).WithJob(j.Name).Info("job_speculate").
		Float("predicted_s", float64(j.Predicted)).
		Float("original_s", float64(out.Duration)).
		Float("launch_s", float64(launch)).
		Emit()
	attemptStart := time.Now()
	res, err := j.Run(context.WithValue(ctx, specCtxKey{}, true), attempt+1)
	out.RunWall += time.Since(attemptStart)
	out.Attempts++
	if err != nil {
		// A failed backup changes nothing: the original already succeeded.
		return
	}
	backupFinish := launch + res.Duration
	if backupFinish < out.Duration {
		// Backup won: its result stands and the job finishes at the backup's
		// finish; the original is cancelled at that moment.
		out.BackupWon = true
		out.Value = res.Value
		out.Duration = backupFinish
	}
	// Both attempts ran from launch until the winner finished; the loser's
	// share of that overlap is speculation's bill.
	out.SpecWaste = out.Duration - launch
}
