package sched

import (
	"context"
	"errors"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/obs"
)

// specJob reports durs[attempt] as its simulated duration, recording which
// attempts ran and whether they were flagged speculative.
func specJob(name string, predicted cluster.Seconds, durs []cluster.Seconds, specSeen *[]bool) Job {
	return Job{
		Name:      name,
		Predicted: predicted,
		Run: func(ctx context.Context, attempt int) (Result, error) {
			if specSeen != nil {
				*specSeen = append(*specSeen, IsSpeculative(ctx))
			}
			d := durs[len(durs)-1]
			if attempt < len(durs) {
				d = durs[attempt]
			}
			return Result{Duration: d, Value: attempt}, nil
		},
	}
}

func TestSpeculationBackupWins(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Workers: 2, SpeculativeMultiple: 1.5, Metrics: reg})
	// Predicted 100 ⇒ backup launches at 150. Original straggles to 500;
	// the backup takes the nominal 100 and finishes at 250 — first.
	var spec []bool
	rep := s.Run(context.Background(), []Job{specJob("a", 100, []cluster.Seconds{500, 100}, &spec)})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	out := rep.Outcomes[0]
	if !out.Speculated || !out.BackupWon {
		t.Fatalf("expected winning backup, got %+v", out)
	}
	if out.Duration != 250 {
		t.Errorf("duration = %v, want 250 (launch 150 + backup 100)", out.Duration)
	}
	if out.SpecWaste != 100 {
		t.Errorf("waste = %v, want 100 (original cancelled at 250, burned since 150)", out.SpecWaste)
	}
	if out.Value != 1 {
		t.Errorf("value = %v, want the backup attempt's", out.Value)
	}
	if out.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", out.Attempts)
	}
	// The backup saw the speculative marker; the original did not.
	if len(spec) != 2 || spec[0] || !spec[1] {
		t.Errorf("speculative flags = %v, want [false true]", spec)
	}
	// The cluster bill includes the loser's burn; the makespan does not.
	if rep.Makespan != 250 {
		t.Errorf("makespan = %v, want 250", rep.Makespan)
	}
	if rep.SumDuration != 350 {
		t.Errorf("sum duration = %v, want 350 (250 + 100 waste)", rep.SumDuration)
	}
	if reg.Counter("sched_speculative_attempts_total").Value() != 1 ||
		reg.Counter("sched_speculative_wins_total").Value() != 1 {
		t.Error("speculation counters not recorded")
	}
}

func TestSpeculationOriginalWins(t *testing.T) {
	s := New(Options{Workers: 2, SpeculativeMultiple: 1.5})
	// Original overruns to 200 (launch at 150), but the backup is even
	// slower: 150 + 120 = 270 > 200. Original's result stands.
	rep := s.Run(context.Background(), []Job{specJob("a", 100, []cluster.Seconds{200, 120}, nil)})
	out := rep.Outcomes[0]
	if !out.Speculated || out.BackupWon {
		t.Fatalf("expected losing backup, got %+v", out)
	}
	if out.Duration != 200 || out.Value != 0 {
		t.Errorf("original result must stand: %+v", out)
	}
	if out.SpecWaste != 50 {
		t.Errorf("waste = %v, want 50 (backup burned 150..200)", out.SpecWaste)
	}
}

func TestSpeculationNotTriggered(t *testing.T) {
	// Under the threshold, disabled multiple, zero prediction — no backups.
	cases := []struct {
		name string
		opts Options
		job  Job
	}{
		{"under threshold", Options{SpeculativeMultiple: 1.5}, specJob("a", 100, []cluster.Seconds{120}, nil)},
		{"speculation off", Options{}, specJob("a", 100, []cluster.Seconds{900}, nil)},
		{"no prediction", Options{SpeculativeMultiple: 1.5}, specJob("a", 0, []cluster.Seconds{900}, nil)},
	}
	for _, tc := range cases {
		rep := New(tc.opts).Run(context.Background(), []Job{tc.job})
		out := rep.Outcomes[0]
		if out.Speculated || out.Attempts != 1 || out.SpecWaste != 0 {
			t.Errorf("%s: unexpected speculation: %+v", tc.name, out)
		}
	}
}

func TestSpeculationBackupFailureKeepsOriginal(t *testing.T) {
	s := New(Options{Workers: 2, SpeculativeMultiple: 1.5})
	boom := errors.New("backup died")
	job := Job{
		Name:      "a",
		Predicted: 100,
		Run: func(ctx context.Context, attempt int) (Result, error) {
			if IsSpeculative(ctx) {
				return Result{}, boom
			}
			return Result{Duration: 500, Value: "orig"}, nil
		},
	}
	rep := s.Run(context.Background(), []Job{job})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	out := rep.Outcomes[0]
	if !out.Speculated || out.BackupWon {
		t.Fatalf("failed backup must not win: %+v", out)
	}
	if out.Value != "orig" || out.Duration != 500 || out.Err != nil {
		t.Errorf("original result must survive a failed backup: %+v", out)
	}
}

func TestSpeculationBackupNeverReSpeculates(t *testing.T) {
	s := New(Options{Workers: 2, SpeculativeMultiple: 1.5})
	calls := 0
	job := Job{
		Name:      "a",
		Predicted: 10,
		Run: func(ctx context.Context, attempt int) (Result, error) {
			calls++
			return Result{Duration: 10_000}, nil // every attempt straggles
		},
	}
	rep := s.Run(context.Background(), []Job{job})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if calls != 2 {
		t.Errorf("straggling backup relaunched: %d calls, want 2", calls)
	}
}
