package exec

import (
	"testing"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// BenchmarkStream* pit the fused batch pipeline against operator-at-a-time
// materialization on the same SELECT→PROJECT→AGG chain. The B/op column is
// the interesting one: the fused path must not materialize the SELECT and
// PROJECT intermediates. mkbenchgate gates time, allocs, and bytes.

func streamBenchOps(b *testing.B) []*ir.Op {
	b.Helper()
	d := ir.NewDAG()
	in := d.AddInput("events", "in/events", relation.NewSchema("k:int", "v:int", "w:float"))
	sel := d.Add(ir.OpSelect, "hot", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(2)))}, in)
	proj := d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"k", "v"}}, sel)
	d.Add(ir.OpAgg, "by_k", ir.Params{GroupBy: []string{"k"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "v", As: "total"}}}, proj)
	if err := d.Validate(); err != nil {
		b.Fatal(err)
	}
	ops, err := d.TopoSort()
	if err != nil {
		b.Fatal(err)
	}
	return ops
}

func benchStreamChain(b *testing.B, opts RunOptions) {
	ops := streamBenchOps(b)
	input := benchRelation(100_000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := Env{"in/events": input}
		if err := RunOps(ops, env, NewTrace(), opts); err != nil {
			b.Fatal(err)
		}
		if out := env["by_k"]; out == nil || out.NumRows() == 0 {
			b.Fatal("chain produced no output")
		}
	}
}

func BenchmarkStreamFusedChain(b *testing.B) {
	benchStreamChain(b, RunOptions{Keep: func(op *ir.Op) bool { return op.Out == "by_k" }})
}

func BenchmarkStreamMaterializedChain(b *testing.B) {
	benchStreamChain(b, RunOptions{NoFuse: true})
}
