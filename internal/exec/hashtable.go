package exec

import (
	"bytes"

	"musketeer/internal/relation"
)

// This file implements the hashed-key tables the hot kernels (group-by,
// join, distinct, set ops) use instead of map[string] keyed by the legacy
// Row.Key string. Rows are keyed by a 64-bit maphash of an unambiguous
// binary encoding (relation.Row.AppendKey); the encoding bytes are kept per
// table entry so hash collisions verify against the real key. Probing
// allocates nothing: the encoding is written into a per-worker scratch
// buffer and only copied when a new entry is inserted.

// keySet is a set of row keys, used by DISTINCT/INTERSECT/DIFFERENCE.
type keySet struct {
	buckets map[uint64][][]byte
	h       relation.KeyHasher
}

func newKeySet(capacity int) *keySet {
	return &keySet{buckets: make(map[uint64][][]byte, capacity)}
}

// add inserts the key of row's projection onto cols, reporting whether it
// was newly added.
func (s *keySet) add(row relation.Row, cols []int) bool {
	hash, key := s.h.HashKey(row, cols)
	bucket := s.buckets[hash]
	for _, k := range bucket {
		if bytes.Equal(k, key) {
			return false
		}
	}
	s.buckets[hash] = append(bucket, append([]byte(nil), key...))
	return true
}

// contains reports membership without inserting.
func (s *keySet) contains(row relation.Row, cols []int) bool {
	hash, key := s.h.HashKey(row, cols)
	for _, k := range s.buckets[hash] {
		if bytes.Equal(k, key) {
			return true
		}
	}
	return false
}

// joinTable is the build side of the hash join.
type joinTable struct {
	buckets map[uint64][]*joinEntry
}

type joinEntry struct {
	key  []byte
	rows []relation.Row
}

// buildJoinTable indexes rows by their projection onto cols.
func buildJoinTable(rows []relation.Row, cols []int) *joinTable {
	t := &joinTable{buckets: make(map[uint64][]*joinEntry, len(rows))}
	var h relation.KeyHasher
	for _, row := range rows {
		hash, key := h.HashKey(row, cols)
		var e *joinEntry
		for _, cand := range t.buckets[hash] {
			if bytes.Equal(cand.key, key) {
				e = cand
				break
			}
		}
		if e == nil {
			e = &joinEntry{key: append([]byte(nil), key...)}
			t.buckets[hash] = append(t.buckets[hash], e)
		}
		e.rows = append(e.rows, row)
	}
	return t
}

// probe returns the build rows matching row's projection onto cols, hashing
// through h so concurrent probers each use their own scratch buffer.
func (t *joinTable) probe(h *relation.KeyHasher, row relation.Row, cols []int) []relation.Row {
	hash, key := h.HashKey(row, cols)
	for _, e := range t.buckets[hash] {
		if bytes.Equal(e.key, key) {
			return e.rows
		}
	}
	return nil
}

// aggTable accumulates per-group aggregation state in first-appearance
// order.
type aggTable struct {
	buckets map[uint64][]*aggEntry
	order   []*aggEntry
	h       relation.KeyHasher
}

type aggEntry struct {
	hash uint64
	key  []byte
	st   *aggState
}

func newAggTable() *aggTable {
	return &aggTable{buckets: make(map[uint64][]*aggEntry, 64)}
}

// state returns the aggregation state for row's group, creating it (via
// newAggState) on first appearance.
func (t *aggTable) state(row relation.Row, gIdx, aIdx []int) *aggState {
	hash, key := t.h.HashKey(row, gIdx)
	for _, e := range t.buckets[hash] {
		if bytes.Equal(e.key, key) {
			return e.st
		}
	}
	e := &aggEntry{hash: hash, key: append([]byte(nil), key...), st: newAggState(row, gIdx, aIdx)}
	t.buckets[hash] = append(t.buckets[hash], e)
	t.order = append(t.order, e)
	return e.st
}

// absorb merges another table's groups into t, preserving t's
// first-appearance order and appending o's new groups in o's order.
func (t *aggTable) absorb(o *aggTable) {
	for _, oe := range o.order {
		var e *aggEntry
		for _, cand := range t.buckets[oe.hash] {
			if bytes.Equal(cand.key, oe.key) {
				e = cand
				break
			}
		}
		if e == nil {
			t.buckets[oe.hash] = append(t.buckets[oe.hash], oe)
			t.order = append(t.order, oe)
			continue
		}
		e.st.merge(oe.st)
	}
}
