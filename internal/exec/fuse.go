package exec

import (
	"fmt"
	"sync"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// This file is the operator fuser: it plans maximal SELECT/PROJECT/ARITH/
// JOIN-probe(/terminal AGG) chains over a topologically-ordered operator
// list and runs each chain as one streaming pipeline (stream.go) instead of
// materializing every intermediate relation. Elided intermediates are
// metered by accTaps, so the recorded trace — and therefore every simulated
// cost, golden trace, and history entry downstream — is identical to what
// op-by-op materialized evaluation records.

// RunOptions parameterizes a RunOps evaluation.
type RunOptions struct {
	// Keep marks operators whose outputs must materialize into the
	// environment even when a fused pipeline could stream through them
	// (fragment external outputs, loop-carried relations). nil keeps
	// nothing extra: every eligible interior operator fuses.
	Keep func(*ir.Op) bool
	// BatchRows overrides the pipeline batch size
	// (relation.DefaultBatchRows). Tests force tiny batches.
	BatchRows int
	// Check runs before each execution unit (a fused chain or a single
	// operator); a non-nil error aborts the run. Engines use it for
	// cancellation.
	Check func() error
	// SkipInputs skips OpInput operators instead of resolving them
	// (engines bind external inputs into env themselves).
	SkipInputs bool
	// NoFuse disables pipeline fusion: every operator runs as a
	// standalone materialized kernel.
	NoFuse bool
}

// RunOps evaluates ops — which must already be in topological order —
// against env, fusing eligible operator chains into streaming pipelines.
// Results of non-elided operators land in env under their output names;
// trace (which may be nil) records the same per-operator volumes a
// materialized evaluation would.
func RunOps(ops []*ir.Op, env Env, trace *Trace, opts RunOptions) error {
	var elided map[*ir.Op]bool
	var byLast map[*ir.Op]*opChain
	if !opts.NoFuse {
		elided, byLast = planChains(ops, opts.Keep)
	}
	for _, op := range ops {
		if opts.SkipInputs && op.Type == ir.OpInput {
			continue
		}
		if elided[op] {
			continue // runs inside its chain, at the chain's last member
		}
		if opts.Check != nil {
			if err := opts.Check(); err != nil {
				return err
			}
		}
		if c := byLast[op]; c != nil {
			if err := runChain(c, env, trace, opts); err != nil {
				return err
			}
			continue
		}
		var rel *relation.Relation
		var err error
		if op.Type == ir.OpWhile {
			rel, err = runWhile(op, env, trace, opts)
		} else {
			rel, err = RunOp(op, env, trace)
		}
		if err != nil {
			return err
		}
		env[op.Out] = rel
		if trace != nil {
			trace.OutBytes[op.ID] = rel.EffectiveBytes()
			trace.OutRows[op.ID] = rel.NumRows()
			if op.Type != ir.OpInput && op.Type != ir.OpWhile {
				// PROCESS volume covers produced data too: materializing a
				// generative operator's output is real work.
				trace.ProcBytes[op.ID] += rel.EffectiveBytes()
			}
		}
	}
	return nil
}

// opChain is one fused pipeline: ops in DAG topological order. All members
// but the last are elided; the chain executes at the last member's position
// and materializes only that member's output.
type opChain struct {
	ops []*ir.Op
}

// fusableMember reports whether t can be an interior or terminal member of
// a fused chain. AGG is terminal-only (it has no streaming output) —
// planChains enforces that by ending a chain once it absorbs one.
func fusableMember(t ir.OpType) bool {
	switch t {
	case ir.OpSelect, ir.OpProject, ir.OpArith, ir.OpJoin, ir.OpAgg:
		return true
	}
	return false
}

// fusableHead reports whether t can start a chain (scan its materialized
// input and stream from there).
func fusableHead(t ir.OpType) bool {
	switch t {
	case ir.OpSelect, ir.OpProject, ir.OpArith, ir.OpJoin:
		return true
	}
	return false
}

// planChains partitions the fusable subgraph of ops into maximal chains. An
// operator is elided (streamed through, never materialized) only when its
// single consumer edge is the next chain member and the caller does not
// Keep it. Join consumers only extend a chain through their probe (first)
// input, and only when their build side is materialized.
func planChains(ops []*ir.Op, keep func(*ir.Op) bool) (map[*ir.Op]bool, map[*ir.Op]*opChain) {
	member := make(map[*ir.Op]bool, len(ops))
	for _, op := range ops {
		if op.Type != ir.OpInput {
			member[op] = true
		}
	}
	// Consumer edges within the list; a consumer reading the same producer
	// twice (self join) contributes two edges, which blocks fusion.
	cons := make(map[*ir.Op][]*ir.Op)
	for _, op := range ops {
		if op.Type == ir.OpInput {
			continue
		}
		for _, in := range op.Inputs {
			if member[in] {
				cons[in] = append(cons[in], op)
			}
		}
	}
	elided := make(map[*ir.Op]bool)
	byLast := make(map[*ir.Op]*opChain)
	assigned := make(map[*ir.Op]bool)
	for _, op := range ops {
		if assigned[op] || !member[op] || !fusableHead(op.Type) {
			continue
		}
		c := &opChain{ops: []*ir.Op{op}}
		cur := op
		for {
			if keep != nil && keep(cur) {
				break // cur must materialize; the chain ends at it
			}
			edges := cons[cur]
			if len(edges) != 1 {
				break
			}
			next := edges[0]
			if assigned[next] || !fusableMember(next.Type) || len(next.Inputs) == 0 || next.Inputs[0] != cur {
				break
			}
			if next.Type == ir.OpJoin && (len(next.Inputs) < 2 || elided[next.Inputs[1]] || next.Inputs[1] == cur) {
				break
			}
			elided[cur] = true
			assigned[next] = true
			c.ops = append(c.ops, next)
			cur = next
			if cur.Type == ir.OpAgg {
				break
			}
		}
		if len(c.ops) == 1 {
			continue // nothing fused with it; runs as a singleton
		}
		assigned[op] = true
		byLast[cur] = c
	}
	return elided, byLast
}

// stagePlan is one chain member's resolved execution plan. The plan is
// immutable once built, so concurrent chunk pipelines share it.
type stagePlan struct {
	op       *ir.Op
	inSch    relation.Schema
	sch      relation.Schema
	pred     *ir.Pred  // SELECT
	idx      []int     // PROJECT
	dstIdx   int       // ARITH; -1 appends
	js       joinSpec  // JOIN
	build    *joinTable
	buildRel *relation.Relation
	ag       aggSpec // terminal AGG
	fresh    bool    // allocate fresh value storage per batch (rows escape)
}

// runChain executes one fused chain: it resolves every member against the
// environment, streams the head's input relation through the composed
// pipeline (chunk-parallel above ParallelThreshold), materializes only the
// terminal's output, and reconstructs the exact per-operator trace the
// materialized path would have recorded.
func runChain(c *opChain, env Env, trace *Trace, opts RunOptions) error {
	head, last := c.ops[0], c.ops[len(c.ops)-1]
	n := len(c.ops)
	src, ok := env[head.Inputs[0].Out]
	if !ok {
		return fmt.Errorf("exec: %s: input relation %q not materialized", head, head.Inputs[0].Out)
	}
	specs := make([]stagePlan, n)
	prev := src.Schema
	for i, op := range c.ops {
		sp := stagePlan{op: op, inSch: prev, dstIdx: -1}
		schemas := map[*ir.Op]relation.Schema{op.Inputs[0]: prev}
		if op.Type == ir.OpJoin {
			b, ok := env[op.Inputs[1].Out]
			if !ok {
				return fmt.Errorf("exec: %s: input relation %q not materialized", op, op.Inputs[1].Out)
			}
			sp.buildRel = b
			schemas[op.Inputs[1]] = b.Schema
		}
		outSch, err := ir.OutputSchema(op, schemas)
		if err != nil {
			return err
		}
		sp.sch = outSch
		switch op.Type {
		case ir.OpSelect:
			sp.pred = op.Params.Pred
		case ir.OpProject:
			sp.idx = make([]int, len(op.Params.Columns))
			for k, col := range op.Params.Columns {
				sp.idx[k] = prev.Index(col)
			}
		case ir.OpArith:
			sp.dstIdx = prev.Index(op.Params.Dst)
		case ir.OpJoin:
			js, err := resolveJoinSpec(op, prev, sp.buildRel.Schema)
			if err != nil {
				return err
			}
			sp.js = js
			sp.build = buildJoinTable(sp.buildRel.Rows, js.rIdx)
		case ir.OpAgg:
			ag, err := resolveAggSpec(op, prev)
			if err != nil {
				return err
			}
			sp.ag = ag
		}
		specs[i] = sp
		prev = outSch
	}
	isAgg := last.Type == ir.OpAgg
	if !isAgg {
		// The last constructing stage before the materializing terminal
		// must allocate per batch: its rows escape the pipeline. A chain of
		// pure SELECTs shares the (stable) scan rows and needs no copy.
		for i := n - 1; i >= 0; i-- {
			switch specs[i].op.Type {
			case ir.OpProject, ir.OpArith, ir.OpJoin:
				specs[i].fresh = true
			default:
				continue
			}
			break
		}
	}
	pipeSpecs := specs
	if isAgg {
		pipeSpecs = specs[:n-1]
	}
	out := relation.New(last.Out, specs[n-1].sch)

	type chunkResult struct {
		rows   []relation.Row
		table  *aggTable
		inRows int
		taps   []*accTap
		err    error
	}
	ranges := [][2]int{{0, len(src.Rows)}}
	if len(src.Rows) >= ParallelThreshold {
		ranges = chunkRanges(len(src.Rows))
	}
	results := make([]chunkResult, len(ranges))
	runChunk := func(ci, lo, hi int) {
		res := &results[ci]
		res.taps = make([]*accTap, n)
		for i := 0; i < n-1; i++ {
			res.taps[i] = &accTap{}
		}
		pipe := buildPipeline(pipeSpecs, src.Schema, src.Rows[lo:hi], opts.BatchRows, res.taps)
		if isAgg {
			res.table = newAggTable()
			res.inRows, res.err = drainAgg(pipe, res.table, specs[n-1].ag.gIdx, specs[n-1].ag.aIdx)
		} else {
			res.rows, res.err = drainRows(pipe, nil)
		}
	}
	if len(ranges) == 1 {
		runChunk(0, ranges[0][0], ranges[0][1])
	} else {
		var wg sync.WaitGroup
		for ci, rg := range ranges {
			wg.Add(1)
			go func(ci, lo, hi int) {
				defer wg.Done()
				runChunk(ci, lo, hi)
			}(ci, rg[0], rg[1])
		}
		wg.Wait()
	}
	// Merge chunk results in chunk order, which preserves the serial row
	// order (chunks are contiguous input ranges) and the serial group
	// first-appearance order.
	taps := make([]*accTap, n)
	for i := 0; i < n-1; i++ {
		taps[i] = &accTap{}
	}
	var table *aggTable
	aggIn := 0
	total := 0
	for i := range results {
		if results[i].err != nil {
			return results[i].err
		}
		total += len(results[i].rows)
	}
	if !isAgg && total > 0 {
		out.Rows = make([]relation.Row, 0, total)
	}
	for ri := range results {
		res := &results[ri]
		if isAgg {
			aggIn += res.inRows
			if table == nil {
				table = res.table
			} else {
				table.absorb(res.table)
			}
		} else {
			out.Rows = append(out.Rows, res.rows...)
		}
		for i := 0; i < n-1; i++ {
			taps[i].rows += res.taps[i].rows
			taps[i].phys += res.taps[i].phys
		}
	}
	if isAgg {
		emitAggRows(last, specs[n-1].inSch, specs[n-1].ag, table, aggIn, out)
	}

	// Reconstruct the trace of the equivalent materialized evaluation: walk
	// the chain accumulating each member's input volume, scale ratio, and
	// (virtual) output size, using the exact float arithmetic of
	// propagateScale/ScaleRatio so traces — and everything costed from them
	// — are bit-identical with fusion on or off.
	prevEff := src.EffectiveBytes()
	prevRatio := src.ScaleRatio()
	for i, op := range c.ops {
		if trace != nil {
			trace.ProcBytes[op.ID] += prevEff
			trace.InBytes[op.ID] += prevEff
		}
		ratio := prevRatio
		if ratio < 1 {
			ratio = 1
		}
		if op.Type == ir.OpJoin {
			b := specs[i].buildRel
			if trace != nil {
				trace.ProcBytes[op.ID] += b.EffectiveBytes()
				trace.InBytes[op.ID] += b.EffectiveBytes()
			}
			if r := b.ScaleRatio(); r > ratio {
				ratio = r
			}
		}
		var phys int64
		var rowsN int
		if i == n-1 {
			phys = out.PhysicalBytes()
			rowsN = len(out.Rows)
		} else {
			phys = taps[i].phys
			rowsN = taps[i].rows
		}
		var logical int64
		if ratio > 1 {
			logical = int64(float64(phys) * ratio)
		}
		eff := phys
		if logical > 0 {
			eff = logical
		}
		if i == n-1 {
			out.LogicalBytes = logical
		}
		if trace != nil {
			trace.OutBytes[op.ID] = eff
			trace.OutRows[op.ID] = rowsN
			trace.ProcBytes[op.ID] += eff
		}
		prevEff = eff
		if logical > 0 && phys > 0 {
			prevRatio = float64(logical) / float64(phys)
		} else {
			prevRatio = 1
		}
	}
	env[last.Out] = out
	return nil
}

// buildPipeline composes one pipeline instance over a scan range. The
// chain's leading SELECTs and an immediately following PROJECT fold into
// the scan itself (predicate and projection pushdown); remaining members
// become streaming stages.
func buildPipeline(specs []stagePlan, srcSch relation.Schema, rows []relation.Row, batchRows int, taps []*accTap) relation.RowSource {
	scan := &scanSource{in: rows, inSch: srcSch, sch: srcSch, batchRows: batchRows}
	i := 0
	for ; i < len(specs) && specs[i].op.Type == ir.OpSelect; i++ {
		scan.preds = append(scan.preds, specs[i].pred)
		scan.predTaps = append(scan.predTaps, taps[i])
	}
	if i < len(specs) && specs[i].op.Type == ir.OpProject {
		scan.proj = specs[i].idx
		scan.projTap = taps[i]
		scan.ar = valArena{fresh: specs[i].fresh}
		scan.sch = specs[i].sch
		i++
	}
	var src relation.RowSource = scan
	for ; i < len(specs); i++ {
		sp := &specs[i]
		switch sp.op.Type {
		case ir.OpSelect:
			src = &selectStage{src: src, sch: sp.sch, pred: sp.pred, tap: taps[i]}
		case ir.OpProject:
			src = &projectStage{src: src, sch: sp.sch, idx: sp.idx, tap: taps[i], ar: valArena{fresh: sp.fresh}}
		case ir.OpArith:
			src = &arithStage{src: src, inSch: sp.inSch, sch: sp.sch, op: sp.op, dstIdx: sp.dstIdx, tap: taps[i], ar: valArena{fresh: sp.fresh}}
		case ir.OpJoin:
			src = &joinProbeStage{src: src, sch: sp.sch, lIdx: sp.js.lIdx, rKeep: sp.js.rKeep, build: sp.build, tap: taps[i], ar: valArena{fresh: sp.fresh}}
		}
	}
	return src
}
