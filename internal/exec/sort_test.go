package exec

import (
	"math/rand"
	"sort"
	"testing"

	"musketeer/internal/relation"
)

// sortTestRows builds rows with heavy key duplication plus a unique tag
// column, so stability violations are observable.
func sortTestRows(n int, seed int64) []relation.Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Int(int64(r.Intn(16))), // sort key: many ties
			relation.Int(int64(i)),          // input position tag
		}
	}
	return rows
}

// TestParallelSortMatchesSerial checks that the parallel merge sort produces
// exactly the serial stable sort's row order — same keys AND same tie order —
// for ascending and descending sorts across sizes that hit uneven chunk
// splits and odd run counts.
func TestParallelSortMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4095, 4096, 4097, 10000} {
		for _, desc := range []bool{false, true} {
			rows := sortTestRows(n, int64(n)+1)
			keyIdx := []int{0}

			serial := make([]relation.Row, n)
			copy(serial, rows)
			sort.SliceStable(serial, func(i, j int) bool {
				c := serial[i][0].Compare(serial[j][0])
				if desc {
					return c > 0
				}
				return c < 0
			})

			old := ParallelThreshold
			ParallelThreshold = 1
			parallel := sortRowsBy(rows, keyIdx, desc)
			ParallelThreshold = old

			if len(parallel) != n {
				t.Fatalf("n=%d desc=%v: got %d rows", n, desc, len(parallel))
			}
			for i := range serial {
				if !serial[i][0].Equal(parallel[i][0]) || !serial[i][1].Equal(parallel[i][1]) {
					t.Fatalf("n=%d desc=%v: row %d is %v, want %v (stability broken)",
						n, desc, i, parallel[i], serial[i])
				}
			}
			// Input must not be mutated (other operators share the slice).
			for i := range rows {
				if rows[i][1].I != int64(i) {
					t.Fatalf("n=%d desc=%v: input mutated at %d", n, desc, i)
				}
			}
		}
	}
}

// BenchmarkSortRows measures the sort kernel serially and in parallel on the
// same 100k-row input.
func BenchmarkSortRows(b *testing.B) {
	rows := sortTestRows(100000, 42)
	keyIdx := []int{0}
	bench := func(name string, threshold int) {
		b.Run(name, func(b *testing.B) {
			old := ParallelThreshold
			ParallelThreshold = threshold
			defer func() { ParallelThreshold = old }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sortRowsBy(rows, keyIdx, false)
			}
		})
	}
	bench("serial", 1<<30)
	bench("parallel", 1)
}
