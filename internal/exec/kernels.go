// Package exec implements the operator semantics of the Musketeer IR: one
// executable kernel per operator type, a DAG interpreter, and the dynamic
// WHILE-loop driver.
//
// Every back-end engine executes its generated jobs through these kernels,
// so a single source of truth defines what each operator computes; the
// engines differ in *how* work is split into jobs, what gets materialized
// where, and what the simulated execution costs. This mirrors the paper's
// property that all back-ends implement the same operator set and lets the
// test suite assert cross-engine result equality.
package exec

import (
	"fmt"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// EvalPred evaluates a predicate against a row.
func EvalPred(p *ir.Pred, schema relation.Schema, row relation.Row) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch p.Kind {
	case ir.PredAnd:
		l, err := EvalPred(p.Left, schema, row)
		if err != nil || !l {
			return false, err
		}
		return EvalPred(p.Right, schema, row)
	case ir.PredOr:
		l, err := EvalPred(p.Left, schema, row)
		if err != nil || l {
			return l, err
		}
		return EvalPred(p.Right, schema, row)
	default:
		lhs, err := operandValue(p.LHS, schema, row)
		if err != nil {
			return false, err
		}
		rhs, err := operandValue(p.RHS, schema, row)
		if err != nil {
			return false, err
		}
		return p.Cmp.Eval(lhs.Compare(rhs)), nil
	}
}

func operandValue(o ir.Operand, schema relation.Schema, row relation.Row) (relation.Value, error) {
	if !o.IsCol {
		return o.Lit, nil
	}
	i := schema.Index(o.Col)
	if i < 0 {
		return relation.Value{}, fmt.Errorf("exec: unknown column %q in %s", o.Col, schema)
	}
	v := row[i]
	if o.Scale != 0 && o.Scale != 1 {
		v = relation.Float(v.AsFloat() * o.Scale)
	}
	return v, nil
}

// EvalOp executes a single non-WHILE operator on its input relations.
// The output relation is named op.Out and inherits a logical size scaled by
// the dominant input's scale ratio (see relation.Relation.LogicalBytes).
func EvalOp(op *ir.Op, inputs []*relation.Relation) (*relation.Relation, error) {
	// Build a transient schema map from the actual inputs so EvalOp can be
	// used standalone (engines evaluate fragments operator by operator).
	schemas := make(map[*ir.Op]relation.Schema)
	for i, in := range op.Inputs {
		if i < len(inputs) {
			schemas[in] = inputs[i].Schema
		}
	}
	outSchema, err := ir.OutputSchema(op, schemas)
	if err != nil {
		return nil, err
	}
	out := relation.New(op.Out, outSchema)

	switch op.Type {
	case ir.OpInput:
		return nil, fmt.Errorf("exec: INPUT %s must be resolved from storage, not evaluated", op)

	case ir.OpSelect:
		in := inputs[0]
		if len(in.Rows) >= ParallelThreshold {
			rows, err := parallelFilter(in.Rows, func(row relation.Row) (bool, error) {
				return EvalPred(op.Params.Pred, in.Schema, row)
			})
			if err != nil {
				return nil, err
			}
			out.Rows = rows
			break
		}
		for _, row := range in.Rows {
			ok, err := EvalPred(op.Params.Pred, in.Schema, row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, row)
			}
		}

	case ir.OpProject:
		in := inputs[0]
		idx := make([]int, len(op.Params.Columns))
		for i, col := range op.Params.Columns {
			idx[i] = in.Schema.Index(col)
		}
		// One backing array for all projected rows: a project emits exactly
		// len(in.Rows) rows of fixed arity, so carve them out of one block.
		flat := make(relation.Row, len(in.Rows)*len(idx))
		out.Rows = make([]relation.Row, 0, len(in.Rows))
		for _, row := range in.Rows {
			nr := flat[:len(idx):len(idx)]
			flat = flat[len(idx):]
			for i, j := range idx {
				nr[i] = row[j]
			}
			out.Rows = append(out.Rows, nr)
		}

	case ir.OpUnion:
		out.Rows = make([]relation.Row, 0, len(inputs[0].Rows)+len(inputs[1].Rows))
		out.Rows = append(out.Rows, inputs[0].Rows...)
		out.Rows = append(out.Rows, inputs[1].Rows...)

	case ir.OpIntersect:
		rcols := allCols(inputs[1])
		right := newKeySet(len(inputs[1].Rows))
		for _, row := range inputs[1].Rows {
			right.add(row, rcols)
		}
		cols := allCols(inputs[0])
		seen := newKeySet(len(inputs[1].Rows))
		for _, row := range inputs[0].Rows {
			if right.contains(row, cols) && seen.add(row, cols) {
				out.Rows = append(out.Rows, row)
			}
		}

	case ir.OpDifference:
		rcols := allCols(inputs[1])
		right := newKeySet(len(inputs[1].Rows))
		for _, row := range inputs[1].Rows {
			right.add(row, rcols)
		}
		cols := allCols(inputs[0])
		seen := newKeySet(len(inputs[0].Rows))
		for _, row := range inputs[0].Rows {
			if !right.contains(row, cols) && seen.add(row, cols) {
				out.Rows = append(out.Rows, row)
			}
		}

	case ir.OpJoin:
		if err := evalJoin(op, inputs, out); err != nil {
			return nil, err
		}

	case ir.OpCrossJoin:
		l, r := inputs[0], inputs[1]
		out.Rows = make([]relation.Row, 0, len(l.Rows)*len(r.Rows))
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				nr := make(relation.Row, 0, len(lr)+len(rr))
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				out.Rows = append(out.Rows, nr)
			}
		}

	case ir.OpAgg:
		if err := evalAgg(op, inputs[0], out); err != nil {
			return nil, err
		}

	case ir.OpArith:
		if err := evalArith(op, inputs[0], out); err != nil {
			return nil, err
		}

	case ir.OpDistinct:
		seen := newKeySet(len(inputs[0].Rows))
		cols := allCols(inputs[0])
		for _, row := range inputs[0].Rows {
			if seen.add(row, cols) {
				out.Rows = append(out.Rows, row)
			}
		}

	case ir.OpSort:
		idx := make([]int, len(op.Params.SortBy))
		for i, c := range op.Params.SortBy {
			idx[i] = inputs[0].Schema.Index(c)
		}
		out.Rows = sortRowsBy(inputs[0].Rows, idx, op.Params.Desc)

	case ir.OpLimit:
		n := op.Params.Limit
		if n > len(inputs[0].Rows) {
			n = len(inputs[0].Rows)
		}
		out.Rows = append(out.Rows, inputs[0].Rows[:n]...)

	case ir.OpUDF:
		udf, ok := udfs[op.Params.UDFName]
		if !ok {
			return nil, fmt.Errorf("exec: unregistered UDF %q", op.Params.UDFName)
		}
		res, err := udf.Fn(inputs)
		if err != nil {
			return nil, fmt.Errorf("exec: UDF %q: %w", op.Params.UDFName, err)
		}
		out.Rows = res.Rows
		out.Schema = res.Schema

	case ir.OpWhile:
		return nil, fmt.Errorf("exec: WHILE %s must be driven by RunWhile", op)

	default:
		return nil, fmt.Errorf("exec: unknown operator %s", op)
	}

	propagateScale(out, inputs)
	return out, nil
}

// propagateScale stamps the output's logical size: physical bytes times the
// dominant (maximum) input scale ratio. Workload generators downscale all
// inputs by a common factor, so this keeps logical volumes consistent as
// data flows through the workflow.
func propagateScale(out *relation.Relation, inputs []*relation.Relation) {
	ratio := 1.0
	for _, in := range inputs {
		if r := in.ScaleRatio(); r > ratio {
			ratio = r
		}
	}
	if ratio > 1 {
		out.LogicalBytes = int64(float64(out.PhysicalBytes()) * ratio)
	}
}

func allCols(r *relation.Relation) []int {
	cols := make([]int, r.Schema.Arity())
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// joinSpec is a join's resolved column indexes: probe keys, build keys, and
// the build-side columns the output keeps. Shared by the materialized kernel
// and the streaming probe stage so both resolve (and fail) identically.
type joinSpec struct {
	lIdx, rIdx, rKeep []int
}

func resolveJoinSpec(op *ir.Op, l, r relation.Schema) (joinSpec, error) {
	var js joinSpec
	js.lIdx = make([]int, len(op.Params.LeftCols))
	for i, c := range op.Params.LeftCols {
		j := l.Index(c)
		if j < 0 {
			return js, fmt.Errorf("exec: %s: unknown left key %q", op, c)
		}
		js.lIdx[i] = j
	}
	js.rIdx = make([]int, len(op.Params.RightCols))
	rKeyCol := make(map[int]bool)
	for i, c := range op.Params.RightCols {
		j := r.Index(c)
		if j < 0 {
			return js, fmt.Errorf("exec: %s: unknown right key %q", op, c)
		}
		js.rIdx[i] = j
		rKeyCol[j] = true
	}
	js.rKeep = make([]int, 0, r.Arity())
	for i := 0; i < r.Arity(); i++ {
		if !rKeyCol[i] {
			js.rKeep = append(js.rKeep, i)
		}
	}
	return js, nil
}

func evalJoin(op *ir.Op, inputs []*relation.Relation, out *relation.Relation) error {
	l, r := inputs[0], inputs[1]
	js, err := resolveJoinSpec(op, l.Schema, r.Schema)
	if err != nil {
		return err
	}
	lIdx, rIdx, rKeep := js.lIdx, js.rIdx, js.rKeep
	// Hash join: build on the right input, probe with the left. Keys are
	// 64-bit maphashes verified against the encoded key bytes, so neither
	// build nor probe allocates a per-row key string. Probing is
	// embarrassingly parallel; the build table is read-only once complete.
	build := buildJoinTable(r.Rows, rIdx)
	emit := func(lr relation.Row, matches []relation.Row, acc []relation.Row) []relation.Row {
		if len(matches) == 0 {
			return acc
		}
		// One backing array per probe: every output row of this probe has
		// the same arity, so a key matching m build rows costs one
		// allocation instead of m.
		arity := len(lr) + len(rKeep)
		flat := make(relation.Row, len(matches)*arity)
		for _, rr := range matches {
			nr := flat[:arity:arity]
			flat = flat[arity:]
			copy(nr, lr)
			k := len(lr)
			for _, j := range rKeep {
				nr[k] = rr[j]
				k++
			}
			acc = append(acc, nr)
		}
		return acc
	}
	if len(l.Rows) >= ParallelThreshold {
		out.Rows = parallelProbe(l.Rows, lIdx, build, emit)
		return nil
	}
	var h relation.KeyHasher
	for _, lr := range l.Rows {
		out.Rows = emit(lr, build.probe(&h, lr, lIdx), out.Rows)
	}
	return nil
}

type aggState struct {
	key   relation.Row
	sum   []relation.Value
	count []int64
	min   []relation.Value
	max   []relation.Value
	n     int64
	armed []bool // whether min/max have seen a value
}

// newAggState initializes a group's state from its first row.
func newAggState(row relation.Row, gIdx, aIdx []int) *aggState {
	st := &aggState{
		key:   make(relation.Row, len(gIdx)),
		sum:   make([]relation.Value, len(aIdx)),
		count: make([]int64, len(aIdx)),
		min:   make([]relation.Value, len(aIdx)),
		max:   make([]relation.Value, len(aIdx)),
		armed: make([]bool, len(aIdx)),
	}
	for i, j := range gIdx {
		st.key[i] = row[j]
	}
	for i, j := range aIdx {
		if j >= 0 {
			st.sum[i] = relation.Float(0)
			st.min[i] = row[j]
			st.max[i] = row[j]
			st.armed[i] = true
		}
	}
	return st
}

// accumulate folds one row into the state.
func (st *aggState) accumulate(row relation.Row, aIdx []int) {
	st.n++
	for i, j := range aIdx {
		if j < 0 {
			continue
		}
		v := row[j]
		st.sum[i] = st.sum[i].Add(v)
		st.count[i]++
		if v.Compare(st.min[i]) < 0 {
			st.min[i] = v
		}
		if v.Compare(st.max[i]) > 0 {
			st.max[i] = v
		}
	}
}

// merge folds a partial state for the same group into st — the combiner
// step: every aggregator is associative in this decomposed form.
func (st *aggState) merge(o *aggState) {
	st.n += o.n
	for i := range st.sum {
		if !o.armed[i] {
			continue
		}
		st.sum[i] = st.sum[i].Add(o.sum[i])
		st.count[i] += o.count[i]
		if !st.armed[i] || o.min[i].Compare(st.min[i]) < 0 {
			st.min[i] = o.min[i]
		}
		if !st.armed[i] || o.max[i].Compare(st.max[i]) > 0 {
			st.max[i] = o.max[i]
		}
		st.armed[i] = true
	}
}

// aggSpec is an aggregation's resolved column indexes: group-by columns and
// one aggregated column per AggSpec (-1 for COUNT). Shared by the
// materialized kernel and the streaming aggregation sink.
type aggSpec struct {
	gIdx, aIdx []int
}

func resolveAggSpec(op *ir.Op, in relation.Schema) (aggSpec, error) {
	var sp aggSpec
	sp.gIdx = make([]int, len(op.Params.GroupBy))
	for i, c := range op.Params.GroupBy {
		j := in.Index(c)
		if j < 0 {
			return sp, fmt.Errorf("exec: %s: unknown group-by column %q", op, c)
		}
		sp.gIdx[i] = j
	}
	sp.aIdx = make([]int, len(op.Params.Aggs))
	for i, a := range op.Params.Aggs {
		if a.Func == ir.AggCount {
			sp.aIdx[i] = -1
			continue
		}
		j := in.Index(a.Col)
		if j < 0 {
			return sp, fmt.Errorf("exec: %s: unknown aggregation column %q", op, a.Col)
		}
		sp.aIdx[i] = j
	}
	return sp, nil
}

// emitAggRows renders a fully-accumulated aggregation table into out.
// inRows is the number of input rows the table saw: an empty-group-by
// aggregation over an empty input still yields one row of zeros/identities
// in SQL semantics, so AVG/COUNT pipelines stay total.
func emitAggRows(op *ir.Op, in relation.Schema, sp aggSpec, table *aggTable, inRows int, out *relation.Relation) {
	if inRows == 0 && len(sp.gIdx) == 0 {
		row := make(relation.Row, len(op.Params.Aggs))
		for i, a := range op.Params.Aggs {
			if a.Func == ir.AggCount {
				row[i] = relation.Int(0)
			} else {
				row[i] = relation.Float(0)
			}
		}
		out.Rows = append(out.Rows, row)
		return
	}
	out.Rows = make([]relation.Row, 0, len(table.order))
	for _, e := range table.order {
		st := e.st
		row := make(relation.Row, 0, len(sp.gIdx)+len(op.Params.Aggs))
		row = append(row, st.key...)
		for i, a := range op.Params.Aggs {
			switch a.Func {
			case ir.AggCount:
				row = append(row, relation.Int(st.n))
			case ir.AggSum:
				v := st.sum[i]
				// Keep integer sums integral.
				if j := sp.aIdx[i]; j >= 0 && in.Cols[j].Kind == relation.KindInt {
					v = relation.Int(int64(v.AsFloat()))
				}
				row = append(row, v)
			case ir.AggMin:
				row = append(row, st.min[i])
			case ir.AggMax:
				row = append(row, st.max[i])
			case ir.AggAvg:
				if st.count[i] == 0 {
					row = append(row, relation.Float(0))
				} else {
					row = append(row, relation.Float(st.sum[i].AsFloat()/float64(st.count[i])))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
}

func evalAgg(op *ir.Op, in *relation.Relation, out *relation.Relation) error {
	sp, err := resolveAggSpec(op, in.Schema)
	if err != nil {
		return err
	}
	// Combiner-style evaluation: every supported aggregator is associative
	// once AVG is decomposed into SUM+COUNT (the decomposition Musketeer's
	// generated GROUP BY uses, §6.2), so large inputs aggregate per chunk
	// in parallel and the partial states merge.
	var table *aggTable
	if len(in.Rows) >= ParallelThreshold {
		table = parallelAggregate(in.Rows, sp.gIdx, sp.aIdx)
	} else {
		table = aggregateChunk(in.Rows, sp.gIdx, sp.aIdx)
	}
	emitAggRows(op, in.Schema, sp, table, len(in.Rows), out)
	return nil
}

func evalArith(op *ir.Op, in *relation.Relation, out *relation.Relation) error {
	dstIdx := in.Schema.Index(op.Params.Dst)
	inPlace := dstIdx >= 0
	arity := in.Schema.Arity()
	if !inPlace {
		arity++
	}
	// Output rows all share one flat backing array; arith emits exactly one
	// fixed-arity row per input row.
	flat := make(relation.Row, len(in.Rows)*arity)
	out.Rows = make([]relation.Row, 0, len(in.Rows))
	for _, row := range in.Rows {
		l, err := operandValue(op.Params.ALeft, in.Schema, row)
		if err != nil {
			return err
		}
		r, err := operandValue(op.Params.ARght, in.Schema, row)
		if err != nil {
			return err
		}
		v := op.Params.AOp.Apply(l, r)
		nr := flat[:arity:arity]
		flat = flat[arity:]
		copy(nr, row)
		if inPlace {
			nr[dstIdx] = v
		} else {
			nr[arity-1] = v
		}
		out.Rows = append(out.Rows, nr)
	}
	return nil
}
