package exec

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// The streaming/fusion equivalence suite: every fusable chain shape must
// produce byte-identical kept relations and an identical trace whether it
// runs fused (batch pipelines with elided intermediates) or materialized
// (NoFuse), at adversarially tiny batch sizes (1–3 rows, so every stage
// boundary and arena-reuse path is crossed many times) and with
// chunk-parallel pipelines forced on.

func streamRelation(rows int) *relation.Relation {
	rel := relation.New("src", relation.NewSchema("k:int", "v:int", "s:string", "f:float"))
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		rel.MustAppend(relation.Row{
			relation.Int(int64(i % 7)),
			relation.Int(int64(i)),
			relation.Str(words[i%len(words)]),
			relation.Float(float64(i) * 1.5),
		})
	}
	rel.LogicalBytes = rel.PhysicalBytes() * 50
	return rel
}

func streamBuildSide(rows int) *relation.Relation {
	rel := relation.New("dim", relation.NewSchema("k:int", "label:string"))
	for i := 0; i < rows; i++ {
		rel.MustAppend(relation.Row{relation.Int(int64(i)), relation.Str(fmt.Sprintf("label-%d", i))})
	}
	rel.LogicalBytes = rel.PhysicalBytes() * 10
	return rel
}

// chainCase builds one DAG shape. keep names the relations a consumer
// outside the chain reads (always includes the sink).
type chainCase struct {
	name  string
	build func(d *ir.DAG) // add ops to a DAG that has inputs src(+dim)
	keep  []string
}

func pred(col string, op ir.CmpOp, v int64) *ir.Pred {
	return ir.Cmp(ir.ColRef(col), op, ir.LitOp(relation.Int(v)))
}

func streamCases() []chainCase {
	return []chainCase{
		{
			name: "select-project",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s := d.Add(ir.OpSelect, "hot", ir.Params{Pred: pred("v", ir.CmpGt, 3)}, in)
				d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"k", "v"}}, s)
			},
			keep: []string{"slim"},
		},
		{
			name: "select-arith",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s := d.Add(ir.OpSelect, "hot", ir.Params{Pred: pred("k", ir.CmpLt, 5)}, in)
				d.Add(ir.OpArith, "scaled", ir.Params{Dst: "f", ALeft: ir.ColRef("f"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul}, s)
			},
			keep: []string{"scaled"},
		},
		{
			name: "arith-new-column-chain",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				a := d.Add(ir.OpArith, "plus", ir.Params{Dst: "v2", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(10)), AOp: ir.ArithAdd}, in)
				d.Add(ir.OpArith, "twice", ir.Params{Dst: "v2", ALeft: ir.ColRef("v2"), ARght: ir.LitOp(relation.Int(2)), AOp: ir.ArithMul}, a)
			},
			keep: []string{"twice"},
		},
		{
			name: "multi-select-project",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s1 := d.Add(ir.OpSelect, "s1", ir.Params{Pred: pred("v", ir.CmpGt, 1)}, in)
				s2 := d.Add(ir.OpSelect, "s2", ir.Params{Pred: pred("k", ir.CmpLt, 6)}, s1)
				d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"s", "v"}}, s2)
			},
			keep: []string{"slim"},
		},
		{
			name: "project-agg",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				p := d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"k", "v"}}, in)
				d.Add(ir.OpAgg, "sums", ir.Params{GroupBy: []string{"k"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "v", As: "total"}}}, p)
			},
			keep: []string{"sums"},
		},
		{
			name: "select-project-agg",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s := d.Add(ir.OpSelect, "hot", ir.Params{Pred: pred("v", ir.CmpGt, 2)}, in)
				p := d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"s", "f"}}, s)
				d.Add(ir.OpAgg, "stats", ir.Params{GroupBy: []string{"s"}, Aggs: []ir.AggSpec{{Func: ir.AggMax, Col: "f", As: "hi"}}}, p)
			},
			keep: []string{"stats"},
		},
		{
			name: "global-agg-terminal",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s := d.Add(ir.OpSelect, "none", ir.Params{Pred: pred("v", ir.CmpLt, -1)}, in)
				d.Add(ir.OpAgg, "count", ir.Params{Aggs: []ir.AggSpec{{Func: ir.AggCount, Col: "v", As: "n"}}}, s)
			},
			keep: []string{"count"},
		},
		{
			name: "join-select",
			build: func(d *ir.DAG) {
				in, dim := d.ByOut("src"), d.ByOut("dim")
				j := d.Add(ir.OpJoin, "joined", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, in, dim)
				d.Add(ir.OpSelect, "hotjoin", ir.Params{Pred: pred("v", ir.CmpGt, 4)}, j)
			},
			keep: []string{"hotjoin"},
		},
		{
			name: "select-join-agg",
			build: func(d *ir.DAG) {
				in, dim := d.ByOut("src"), d.ByOut("dim")
				s := d.Add(ir.OpSelect, "hot", ir.Params{Pred: pred("v", ir.CmpGt, 1)}, in)
				j := d.Add(ir.OpJoin, "joined", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, s, dim)
				d.Add(ir.OpAgg, "bylabel", ir.Params{GroupBy: []string{"label"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "v", As: "total"}}}, j)
			},
			keep: []string{"bylabel"},
		},
		{
			name: "kept-intermediate-breaks-chain",
			build: func(d *ir.DAG) {
				in := d.ByOut("src")
				s := d.Add(ir.OpSelect, "hot", ir.Params{Pred: pred("v", ir.CmpGt, 3)}, in)
				d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"k", "v"}}, s)
			},
			keep: []string{"hot", "slim"},
		},
	}
}

func buildStreamDAG(t *testing.T, c chainCase, src, dim *relation.Relation) []*ir.Op {
	t.Helper()
	d := ir.NewDAG()
	d.AddInput("src", "in/src", src.Schema)
	d.AddInput("dim", "in/dim", dim.Schema)
	c.build(d)
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	ops, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func runStream(t *testing.T, ops []*ir.Op, src, dim *relation.Relation, opts RunOptions) (Env, *Trace) {
	t.Helper()
	env := Env{"src": src, "dim": dim}
	trace := NewTrace()
	if err := RunOps(ops, env, trace, opts); err != nil {
		t.Fatalf("RunOps: %v", err)
	}
	return env, trace
}

func sameRelation(t *testing.T, name string, want, got *relation.Relation) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: missing from fused env", name)
	}
	if want.Schema.String() != got.Schema.String() {
		t.Fatalf("%s: schema %s vs %s", name, want.Schema, got.Schema)
	}
	if want.LogicalBytes != got.LogicalBytes {
		t.Errorf("%s: LogicalBytes %d vs %d", name, want.LogicalBytes, got.LogicalBytes)
	}
	if !bytes.Equal(want.EncodeBytesOpts(relation.CodecOptions{}), got.EncodeBytesOpts(relation.CodecOptions{})) {
		t.Fatalf("%s: rows differ\nwant:\n%s\ngot:\n%s", name,
			want.EncodeBytesOpts(relation.CodecOptions{}), got.EncodeBytesOpts(relation.CodecOptions{}))
	}
}

func sameTrace(t *testing.T, want, got *Trace) {
	t.Helper()
	if !reflect.DeepEqual(want.OutBytes, got.OutBytes) {
		t.Errorf("OutBytes: %v vs %v", want.OutBytes, got.OutBytes)
	}
	if !reflect.DeepEqual(want.OutRows, got.OutRows) {
		t.Errorf("OutRows: %v vs %v", want.OutRows, got.OutRows)
	}
	if !reflect.DeepEqual(want.ProcBytes, got.ProcBytes) {
		t.Errorf("ProcBytes: %v vs %v", want.ProcBytes, got.ProcBytes)
	}
	if !reflect.DeepEqual(want.InBytes, got.InBytes) {
		t.Errorf("InBytes: %v vs %v", want.InBytes, got.InBytes)
	}
}

// TestStreamingMatchesMaterialized drives every fused shape at batch sizes
// 1, 2, 3 and the default, and demands bit-identical kept outputs and
// traces against the NoFuse evaluation.
func TestStreamingMatchesMaterialized(t *testing.T) {
	src := streamRelation(97) // prime, so tiny batches end ragged
	dim := streamBuildSide(7)
	for _, c := range streamCases() {
		for _, batch := range []int{1, 2, 3, 0} {
			t.Run(fmt.Sprintf("%s/batch%d", c.name, batch), func(t *testing.T) {
				ops := buildStreamDAG(t, c, src, dim)
				keep := map[string]bool{}
				for _, k := range c.keep {
					keep[k] = true
				}
				wantEnv, wantTrace := runStream(t, ops, src, dim, RunOptions{NoFuse: true})
				gotEnv, gotTrace := runStream(t, ops, src, dim, RunOptions{
					Keep:      func(op *ir.Op) bool { return keep[op.Out] },
					BatchRows: batch,
				})
				for _, k := range c.keep {
					sameRelation(t, k, wantEnv[k], gotEnv[k])
				}
				sameTrace(t, wantTrace, gotTrace)
			})
		}
	}
}

// TestStreamingMatchesMaterializedParallel forces the chunk-parallel fused
// path (ParallelThreshold = 1) and re-checks every shape.
func TestStreamingMatchesMaterializedParallel(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	src := streamRelation(97)
	dim := streamBuildSide(7)
	for _, c := range streamCases() {
		t.Run(c.name, func(t *testing.T) {
			ops := buildStreamDAG(t, c, src, dim)
			keep := map[string]bool{}
			for _, k := range c.keep {
				keep[k] = true
			}
			wantEnv, wantTrace := runStream(t, ops, src, dim, RunOptions{NoFuse: true})
			gotEnv, gotTrace := runStream(t, ops, src, dim, RunOptions{
				Keep:      func(op *ir.Op) bool { return keep[op.Out] },
				BatchRows: 3,
			})
			for _, k := range c.keep {
				sameRelation(t, k, wantEnv[k], gotEnv[k])
			}
			sameTrace(t, wantTrace, gotTrace)
		})
	}
}

// TestStreamingWhileBodyTinyBatches runs an iterative WHILE whose body is a
// fusable chain at batch size 1 and compares against the NoFuse run.
func TestStreamingWhileBodyTinyBatches(t *testing.T) {
	src := streamRelation(31)
	dim := streamBuildSide(7)
	build := func() []*ir.Op {
		d := ir.NewDAG()
		in := d.AddInput("src", "in/src", src.Schema)
		body := ir.NewDAG()
		bin := body.AddInput("src", "in/src", src.Schema)
		a := body.Add(ir.OpArith, "bumped", ir.Params{Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(1)), AOp: ir.ArithAdd}, bin)
		body.Add(ir.OpProject, "next", ir.Params{Columns: []string{"k", "v", "s", "f"}}, a)
		d.Add(ir.OpWhile, "looped", ir.Params{
			Body:    body,
			MaxIter: 4,
			Carried: map[string]string{"src": "next"},
		}, in)
		ops, err := d.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	wantEnv, wantTrace := runStream(t, build(), src, dim, RunOptions{NoFuse: true})
	gotEnv, gotTrace := runStream(t, build(), src, dim, RunOptions{BatchRows: 1})
	sameRelation(t, "looped", wantEnv["looped"], gotEnv["looped"])
	sameTrace(t, wantTrace, gotTrace)
	if wantTrace.Iterations[gotOpID(t, build(), "looped")] != 4 {
		t.Errorf("iterations = %v", wantTrace.Iterations)
	}
}

func gotOpID(t *testing.T, ops []*ir.Op, out string) int {
	t.Helper()
	for _, op := range ops {
		if op.Out == out {
			return op.ID
		}
	}
	t.Fatalf("op %q not found", out)
	return -1
}
