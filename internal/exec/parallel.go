package exec

import (
	"runtime"
	"sync"

	"musketeer/internal/relation"
)

// ParallelThreshold is the row count above which the data-parallel kernels
// split work across goroutines. Physical samples in this repository are
// usually small, so the default only engages for larger inputs; tests lower
// it to exercise the parallel paths.
var ParallelThreshold = 4096

// chunkRanges splits [0, n) into roughly GOMAXPROCS contiguous ranges.
func chunkRanges(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var ranges [][2]int
	size := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// parallelFilter evaluates keep() over row chunks concurrently and
// concatenates the survivors in input order, so the result is identical to
// the serial evaluation. The first error wins.
func parallelFilter(rows []relation.Row, keep func(relation.Row) (bool, error)) ([]relation.Row, error) {
	ranges := chunkRanges(len(rows))
	results := make([][]relation.Row, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			var out []relation.Row
			for _, row := range rows[lo:hi] {
				ok, err := keep(row)
				if err != nil {
					errs[i] = err
					return
				}
				if ok {
					out = append(out, row)
				}
			}
			results[i] = out
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []relation.Row
	for _, chunk := range results {
		out = append(out, chunk...)
	}
	return out, nil
}

// aggregateChunk builds per-group aggregation state over a row slice,
// returning the states and the keys in first-appearance order.
func aggregateChunk(rows []relation.Row, gIdx, aIdx []int) (map[string]*aggState, []string) {
	groups := make(map[string]*aggState)
	var order []string
	for _, row := range rows {
		k := row.Key(gIdx)
		st, ok := groups[k]
		if !ok {
			st = newAggState(row, gIdx, aIdx)
			groups[k] = st
			order = append(order, k)
		}
		st.accumulate(row, aIdx)
	}
	return groups, order
}

// parallelAggregate computes partial aggregates per chunk concurrently and
// merges them in chunk order, which preserves the serial first-appearance
// output order (chunks are contiguous input ranges).
func parallelAggregate(rows []relation.Row, gIdx, aIdx []int) (map[string]*aggState, []string) {
	ranges := chunkRanges(len(rows))
	partGroups := make([]map[string]*aggState, len(ranges))
	partOrder := make([][]string, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partGroups[i], partOrder[i] = aggregateChunk(rows[lo:hi], gIdx, aIdx)
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	groups := make(map[string]*aggState)
	var order []string
	for i := range ranges {
		for _, k := range partOrder[i] {
			st, ok := groups[k]
			if !ok {
				groups[k] = partGroups[i][k]
				order = append(order, k)
				continue
			}
			st.merge(partGroups[i][k])
		}
	}
	return groups, order
}

// parallelProbe probes a pre-built hash table with left-row chunks
// concurrently; emit builds the output rows for one probe match list.
// Output preserves input order (chunk concatenation).
func parallelProbe(left []relation.Row, lIdx []int, build map[string][]relation.Row,
	emit func(l relation.Row, matches []relation.Row, out []relation.Row) []relation.Row) []relation.Row {
	ranges := chunkRanges(len(left))
	results := make([][]relation.Row, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			var out []relation.Row
			for _, lr := range left[lo:hi] {
				out = emit(lr, build[lr.Key(lIdx)], out)
			}
			results[i] = out
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	var out []relation.Row
	for _, chunk := range results {
		out = append(out, chunk...)
	}
	return out
}
