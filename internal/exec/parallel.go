package exec

import (
	"runtime"
	"sync"

	"musketeer/internal/relation"
)

// ParallelThreshold is the row count above which the data-parallel kernels
// (filter, aggregate, join probe, sort) split work across goroutines.
// Chunking costs one goroutine plus one result-slice per chunk and (for the
// sort) a full copy per merge round, so it only pays once per-row work
// dominates: with BenchmarkSortRows/BenchmarkKernelAgg the crossover lands
// between ~1k rows (sort, join probe) and ~4k rows (aggregate, whose
// per-chunk tables must be re-merged); 2048 sits in that band while keeping
// small test relations on the cheaper serial paths. On a single-core host
// chunkRanges collapses to one chunk, so the parallel paths degrade to the
// serial ones plus one goroutine handoff (BenchmarkSortRows/parallel runs
// within ~5% of serial at GOMAXPROCS=1). Tests lower the threshold to
// exercise the parallel code on small data.
var ParallelThreshold = 2048

// chunkRanges splits [0, n) into roughly GOMAXPROCS contiguous ranges. A
// tiny trailing remainder (under half a chunk) is folded into the previous
// range instead of spawning a near-empty goroutine.
func chunkRanges(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	ranges := make([][2]int, 0, workers)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	if k := len(ranges); k >= 2 && ranges[k-1][1]-ranges[k-1][0] < size/2 {
		ranges[k-2][1] = ranges[k-1][1]
		ranges = ranges[:k-1]
	}
	return ranges
}

// parallelFilter evaluates keep() over row chunks concurrently and
// concatenates the survivors in input order, so the result is identical to
// the serial evaluation. The first error wins.
func parallelFilter(rows []relation.Row, keep func(relation.Row) (bool, error)) ([]relation.Row, error) {
	ranges := chunkRanges(len(rows))
	results := make([][]relation.Row, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			var out []relation.Row
			for _, row := range rows[lo:hi] {
				ok, err := keep(row)
				if err != nil {
					errs[i] = err
					return
				}
				if ok {
					out = append(out, row)
				}
			}
			results[i] = out
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []relation.Row
	for _, chunk := range results {
		out = append(out, chunk...)
	}
	return out, nil
}

// aggregateChunk builds per-group aggregation state over a row slice. The
// table records groups in first-appearance order.
func aggregateChunk(rows []relation.Row, gIdx, aIdx []int) *aggTable {
	t := newAggTable()
	for _, row := range rows {
		t.state(row, gIdx, aIdx).accumulate(row, aIdx)
	}
	return t
}

// parallelAggregate computes partial aggregates per chunk concurrently and
// merges them in chunk order, which preserves the serial first-appearance
// output order (chunks are contiguous input ranges).
func parallelAggregate(rows []relation.Row, gIdx, aIdx []int) *aggTable {
	ranges := chunkRanges(len(rows))
	parts := make([]*aggTable, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			parts[i] = aggregateChunk(rows[lo:hi], gIdx, aIdx)
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	t := parts[0]
	for _, part := range parts[1:] {
		t.absorb(part)
	}
	return t
}

// parallelProbe probes a pre-built join table with left-row chunks
// concurrently; emit builds the output rows for one probe match list.
// Each worker hashes through its own KeyHasher (the seed is shared, so the
// hashes agree with the build side). Output preserves input order (chunk
// concatenation).
func parallelProbe(left []relation.Row, lIdx []int, build *joinTable,
	emit func(l relation.Row, matches []relation.Row, out []relation.Row) []relation.Row) []relation.Row {
	ranges := chunkRanges(len(left))
	results := make([][]relation.Row, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			var h relation.KeyHasher
			var out []relation.Row
			for _, lr := range left[lo:hi] {
				out = emit(lr, build.probe(&h, lr, lIdx), out)
			}
			results[i] = out
		}(i, rg[0], rg[1])
	}
	wg.Wait()
	n := 0
	for _, chunk := range results {
		n += len(chunk)
	}
	out := make([]relation.Row, 0, n)
	for _, chunk := range results {
		out = append(out, chunk...)
	}
	return out
}
