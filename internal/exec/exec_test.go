package exec

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func mkRel(name string, schema relation.Schema, rows ...relation.Row) *relation.Relation {
	r := relation.New(name, schema)
	for _, row := range rows {
		r.MustAppend(row)
	}
	return r
}

func intRows(vals ...int64) []relation.Row {
	rows := make([]relation.Row, len(vals))
	for i, v := range vals {
		rows[i] = relation.Row{relation.Int(v)}
	}
	return rows
}

func evalOne(t *testing.T, typ ir.OpType, params ir.Params, inputs ...*relation.Relation) *relation.Relation {
	t.Helper()
	d := ir.NewDAG()
	ops := make([]*ir.Op, len(inputs))
	for i, in := range inputs {
		ops[i] = d.AddInput(in.Name, "in/"+in.Name, in.Schema)
	}
	op := d.Add(typ, "out", params, ops...)
	got, err := EvalOp(op, inputs)
	if err != nil {
		t.Fatalf("EvalOp(%s): %v", typ, err)
	}
	return got
}

func TestSelect(t *testing.T) {
	in := mkRel("t", relation.NewSchema("a:int"), intRows(1, 2, 3, 4, 5)...)
	got := evalOne(t, ir.OpSelect, ir.Params{
		Pred: ir.Cmp(ir.ColRef("a"), ir.CmpGt, ir.LitOp(relation.Int(3))),
	}, in)
	if got.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", got.NumRows())
	}
}

func TestSelectCompoundPred(t *testing.T) {
	in := mkRel("t", relation.NewSchema("a:int", "s:string"),
		relation.Row{relation.Int(1), relation.Str("x")},
		relation.Row{relation.Int(2), relation.Str("y")},
		relation.Row{relation.Int(3), relation.Str("x")},
	)
	pred := ir.And(
		ir.Cmp(ir.ColRef("s"), ir.CmpEq, ir.LitOp(relation.Str("x"))),
		ir.Cmp(ir.ColRef("a"), ir.CmpGe, ir.LitOp(relation.Int(2))),
	)
	got := evalOne(t, ir.OpSelect, ir.Params{Pred: pred}, in)
	if got.NumRows() != 1 || got.Rows[0][0].I != 3 {
		t.Errorf("rows = %v", got.Rows)
	}
	pred2 := ir.Or(
		ir.Cmp(ir.ColRef("a"), ir.CmpEq, ir.LitOp(relation.Int(1))),
		ir.Cmp(ir.ColRef("a"), ir.CmpEq, ir.LitOp(relation.Int(2))),
	)
	got2 := evalOne(t, ir.OpSelect, ir.Params{Pred: pred2}, in)
	if got2.NumRows() != 2 {
		t.Errorf("or rows = %v", got2.Rows)
	}
}

func TestProjectWithRename(t *testing.T) {
	in := mkRel("t", relation.NewSchema("a:int", "b:string"),
		relation.Row{relation.Int(1), relation.Str("x")})
	got := evalOne(t, ir.OpProject, ir.Params{Columns: []string{"b", "a"}, As: []string{"name", "id"}}, in)
	want := relation.NewSchema("name:string", "id:int")
	if !got.Schema.Equal(want) {
		t.Errorf("schema = %s", got.Schema)
	}
	if got.Rows[0][0].S != "x" || got.Rows[0][1].I != 1 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestUnionBagSemantics(t *testing.T) {
	a := mkRel("a", relation.NewSchema("x:int"), intRows(1, 2)...)
	b := mkRel("b", relation.NewSchema("x:int"), intRows(2, 3)...)
	got := evalOne(t, ir.OpUnion, ir.Params{}, a, b)
	if got.NumRows() != 4 {
		t.Errorf("union rows = %d, want 4 (bag)", got.NumRows())
	}
}

func TestIntersectSetSemantics(t *testing.T) {
	a := mkRel("a", relation.NewSchema("x:int"), intRows(1, 2, 2, 3)...)
	b := mkRel("b", relation.NewSchema("x:int"), intRows(2, 3, 4)...)
	got := evalOne(t, ir.OpIntersect, ir.Params{}, a, b)
	if got.NumRows() != 2 {
		t.Errorf("intersect rows = %v", got.Rows)
	}
}

func TestDifferenceSetSemantics(t *testing.T) {
	a := mkRel("a", relation.NewSchema("x:int"), intRows(1, 1, 2, 3)...)
	b := mkRel("b", relation.NewSchema("x:int"), intRows(2)...)
	got := evalOne(t, ir.OpDifference, ir.Params{}, a, b)
	if got.NumRows() != 2 { // {1, 3}
		t.Errorf("difference rows = %v", got.Rows)
	}
}

func TestJoinDropsRightKeys(t *testing.T) {
	locs := mkRel("locs", relation.NewSchema("id:int", "town:string"),
		relation.Row{relation.Int(1), relation.Str("cam")},
		relation.Row{relation.Int(2), relation.Str("oxf")},
	)
	prices := mkRel("prices", relation.NewSchema("id:int", "price:float"),
		relation.Row{relation.Int(1), relation.Float(100)},
		relation.Row{relation.Int(1), relation.Float(200)},
		relation.Row{relation.Int(3), relation.Float(300)},
	)
	got := evalOne(t, ir.OpJoin, ir.Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	if !got.Schema.Equal(relation.NewSchema("id:int", "town:string", "price:float")) {
		t.Errorf("schema = %s", got.Schema)
	}
	if got.NumRows() != 2 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestJoinMultiKey(t *testing.T) {
	a := mkRel("a", relation.NewSchema("x:int", "y:int", "v:int"),
		relation.Row{relation.Int(1), relation.Int(2), relation.Int(10)},
		relation.Row{relation.Int(1), relation.Int(3), relation.Int(20)},
	)
	b := mkRel("b", relation.NewSchema("p:int", "q:int", "w:int"),
		relation.Row{relation.Int(1), relation.Int(2), relation.Int(7)},
	)
	got := evalOne(t, ir.OpJoin, ir.Params{LeftCols: []string{"x", "y"}, RightCols: []string{"p", "q"}}, a, b)
	if got.NumRows() != 1 || got.Rows[0][3].I != 7 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestCrossJoin(t *testing.T) {
	a := mkRel("a", relation.NewSchema("x:int"), intRows(1, 2)...)
	b := mkRel("b", relation.NewSchema("y:int"), intRows(10, 20, 30)...)
	got := evalOne(t, ir.OpCrossJoin, ir.Params{}, a, b)
	if got.NumRows() != 6 {
		t.Errorf("cross rows = %d", got.NumRows())
	}
}

func TestAggAllFuncs(t *testing.T) {
	in := mkRel("t", relation.NewSchema("g:string", "v:int"),
		relation.Row{relation.Str("a"), relation.Int(1)},
		relation.Row{relation.Str("a"), relation.Int(3)},
		relation.Row{relation.Str("b"), relation.Int(10)},
	)
	got := evalOne(t, ir.OpAgg, ir.Params{
		GroupBy: []string{"g"},
		Aggs: []ir.AggSpec{
			{Func: ir.AggSum, Col: "v", As: "s"},
			{Func: ir.AggCount, As: "n"},
			{Func: ir.AggMin, Col: "v", As: "lo"},
			{Func: ir.AggMax, Col: "v", As: "hi"},
			{Func: ir.AggAvg, Col: "v", As: "avg"},
		},
	}, in)
	if got.NumRows() != 2 {
		t.Fatalf("groups = %d", got.NumRows())
	}
	byKey := map[string]relation.Row{}
	for _, r := range got.Rows {
		byKey[r[0].S] = r
	}
	a := byKey["a"]
	if a[1].I != 4 || a[2].I != 2 || a[3].I != 1 || a[4].I != 3 || a[5].F != 2 {
		t.Errorf("group a = %v", a)
	}
	b := byKey["b"]
	if b[1].I != 10 || b[2].I != 1 {
		t.Errorf("group b = %v", b)
	}
}

func TestAggEmptyGroupByOnEmptyInput(t *testing.T) {
	in := mkRel("t", relation.NewSchema("v:int"))
	got := evalOne(t, ir.OpAgg, ir.Params{
		Aggs: []ir.AggSpec{{Func: ir.AggCount, As: "n"}, {Func: ir.AggSum, Col: "v", As: "s"}},
	}, in)
	if got.NumRows() != 1 || got.Rows[0][0].I != 0 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestArithInPlaceAndNewColumn(t *testing.T) {
	in := mkRel("t", relation.NewSchema("v:float"),
		relation.Row{relation.Float(2)})
	inPlace := evalOne(t, ir.OpArith, ir.Params{
		Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul,
	}, in)
	if inPlace.Rows[0][0].F != 1.7 {
		t.Errorf("in-place = %v", inPlace.Rows[0])
	}
	newCol := evalOne(t, ir.OpArith, ir.Params{
		Dst: "w", ALeft: ir.ColRef("v"), ARght: ir.ColRef("v"), AOp: ir.ArithAdd,
	}, in)
	if newCol.Schema.Arity() != 2 || newCol.Rows[0][1].F != 4 {
		t.Errorf("new-col = %v %s", newCol.Rows[0], newCol.Schema)
	}
}

func TestDistinct(t *testing.T) {
	in := mkRel("t", relation.NewSchema("v:int"), intRows(1, 1, 2, 2, 2, 3)...)
	got := evalOne(t, ir.OpDistinct, ir.Params{}, in)
	if got.NumRows() != 3 {
		t.Errorf("distinct rows = %d", got.NumRows())
	}
}

func TestUDFRegistryAndEval(t *testing.T) {
	RegisterUDF("double", UDF{
		Fn: func(in []*relation.Relation) (*relation.Relation, error) {
			out := relation.New("out", in[0].Schema)
			for _, r := range in[0].Rows {
				nr := r.Clone()
				nr[0] = nr[0].Add(nr[0])
				out.Rows = append(out.Rows, nr)
			}
			return out, nil
		},
		OutSchema: func(in []relation.Schema) (relation.Schema, error) { return in[0], nil },
	})
	in := mkRel("t", relation.NewSchema("v:int"), intRows(3)...)
	got := evalOne(t, ir.OpUDF, ir.Params{UDFName: "double"}, in)
	if got.Rows[0][0].I != 6 {
		t.Errorf("udf result = %v", got.Rows)
	}
}

func TestUDFErrorPropagates(t *testing.T) {
	RegisterUDF("boom", UDF{
		Fn: func(in []*relation.Relation) (*relation.Relation, error) {
			return nil, fmt.Errorf("kaboom")
		},
		OutSchema: func(in []relation.Schema) (relation.Schema, error) { return in[0], nil },
	})
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("v:int"))
	op := d.Add(ir.OpUDF, "out", ir.Params{UDFName: "boom"}, in)
	_, err := EvalOp(op, []*relation.Relation{mkRel("t", relation.NewSchema("v:int"), intRows(1)...)})
	if err == nil {
		t.Error("UDF error swallowed")
	}
}

func TestScalePropagation(t *testing.T) {
	in := mkRel("t", relation.NewSchema("v:int"), intRows(1, 2, 3, 4)...)
	in.LogicalBytes = in.PhysicalBytes() * 1000
	got := evalOne(t, ir.OpSelect, ir.Params{
		Pred: ir.Cmp(ir.ColRef("v"), ir.CmpLe, ir.LitOp(relation.Int(2))),
	}, in)
	wantApprox := float64(got.PhysicalBytes()) * 1000
	if math.Abs(float64(got.LogicalBytes)-wantApprox) > wantApprox*0.01 {
		t.Errorf("logical = %d, want ~%g", got.LogicalBytes, wantApprox)
	}
}

func TestRunDAGEndToEnd(t *testing.T) {
	// max-property-price (paper Listing 1) end to end.
	d := ir.NewDAG()
	props := d.AddInput("properties", "in/properties", relation.NewSchema("id:int", "street:string", "town:string"))
	prices := d.AddInput("prices", "in/prices", relation.NewSchema("id:int", "price:float"))
	locs := d.Add(ir.OpProject, "locs", ir.Params{Columns: []string{"id", "street", "town"}}, props)
	idPrice := d.Add(ir.OpJoin, "id_price", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	d.Add(ir.OpAgg, "street_price", ir.Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []ir.AggSpec{{Func: ir.AggMax, Col: "price", As: "max_price"}},
	}, idPrice)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	env := Env{
		"properties": mkRel("properties", relation.NewSchema("id:int", "street:string", "town:string"),
			relation.Row{relation.Int(1), relation.Str("mill rd"), relation.Str("cam")},
			relation.Row{relation.Int(2), relation.Str("mill rd"), relation.Str("cam")},
			relation.Row{relation.Int(3), relation.Str("high st"), relation.Str("oxf")},
		),
		"prices": mkRel("prices", relation.NewSchema("id:int", "price:float"),
			relation.Row{relation.Int(1), relation.Float(100)},
			relation.Row{relation.Int(2), relation.Float(250)},
			relation.Row{relation.Int(3), relation.Float(70)},
		),
	}
	out, trace, err := RunDAG(d, env)
	if err != nil {
		t.Fatal(err)
	}
	sp := out["street_price"]
	if sp.NumRows() != 2 {
		t.Fatalf("street_price rows = %v", sp.Rows)
	}
	want := map[string]float64{"mill rd": 250, "high st": 70}
	for _, r := range sp.Rows {
		if want[r[0].S] != r[2].F {
			t.Errorf("row %v, want max %v", r, want[r[0].S])
		}
	}
	if trace.OutRows[idPrice.ID] != 3 {
		t.Errorf("trace join rows = %d", trace.OutRows[idPrice.ID])
	}
}

// referencePageRank computes damped PageRank contributions directly,
// mirroring the IR body used in the WHILE test: rank flows along edges,
// then rank = 0.15 + 0.85 * sum(in).
// Vertices with no in-edges disappear (as in the relational formulation).
func referencePageRank(edges map[int64][]int64, ranks map[int64]float64, iters int) map[int64]float64 {
	deg := map[int64]int{}
	for src, dsts := range edges {
		deg[src] = len(dsts)
	}
	for i := 0; i < iters; i++ {
		next := map[int64]float64{}
		for src, dsts := range edges {
			r, ok := ranks[src]
			if !ok {
				continue
			}
			share := r / float64(len(dsts))
			for _, d := range dsts {
				next[d] += share
			}
		}
		for v := range next {
			next[v] = 0.15 + 0.85*next[v]
		}
		ranks = next
	}
	return ranks
}

func buildPageRankDAG(iters int) *ir.DAG {
	d := ir.NewDAG()
	edges := d.AddInput("edges", "in/edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	ranks := d.AddInput("ranks", "in/ranks", relation.NewSchema("vertex:int", "rank:float"))

	body := ir.NewDAG()
	bRanks := body.AddInput("ranks", "", relation.NewSchema("vertex:int", "rank:float"))
	bEdges := body.AddInput("edges", "", relation.NewSchema("src:int", "dst:int", "degree:int"))
	// scatter: send rank/degree along each edge
	j := body.Add(ir.OpJoin, "sent", ir.Params{LeftCols: []string{"vertex"}, RightCols: []string{"src"}}, bRanks, bEdges)
	sh := body.Add(ir.OpArith, "shared", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.ColRef("degree"), AOp: ir.ArithDiv}, j)
	// gather: sum incoming rank per destination
	g := body.Add(ir.OpAgg, "gathered", ir.Params{
		GroupBy: []string{"dst"},
		Aggs:    []ir.AggSpec{{Func: ir.AggSum, Col: "rank", As: "rank"}},
	}, sh)
	// apply: rank = 0.15 + 0.85 * gathered
	m := body.Add(ir.OpArith, "damped", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul}, g)
	ap := body.Add(ir.OpArith, "applied", ir.Params{Dst: "rank", ALeft: ir.ColRef("rank"), ARght: ir.LitOp(relation.Float(0.15)), AOp: ir.ArithAdd}, m)
	body.Add(ir.OpProject, "new_ranks", ir.Params{Columns: []string{"dst", "rank"}, As: []string{"vertex", "rank"}}, ap)

	d.Add(ir.OpWhile, "final_ranks", ir.Params{
		Body:    body,
		MaxIter: iters,
		Carried: map[string]string{"ranks": "new_ranks"},
	}, ranks, edges)
	return d
}

func TestWhilePageRankMatchesReference(t *testing.T) {
	adj := map[int64][]int64{
		1: {2, 3},
		2: {3},
		3: {1},
		4: {1, 3},
	}
	iters := 5
	edgeRel := relation.New("edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	for src, dsts := range adj {
		for _, dst := range dsts {
			edgeRel.MustAppend(relation.Row{relation.Int(src), relation.Int(dst), relation.Int(int64(len(dsts)))})
		}
	}
	rankRel := relation.New("ranks", relation.NewSchema("vertex:int", "rank:float"))
	init := map[int64]float64{}
	for _, v := range []int64{1, 2, 3, 4} {
		rankRel.MustAppend(relation.Row{relation.Int(v), relation.Float(1)})
		init[v] = 1
	}

	d := buildPageRankDAG(iters)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	out, trace, err := RunDAG(d, Env{"edges": edgeRel, "ranks": rankRel})
	if err != nil {
		t.Fatal(err)
	}
	want := referencePageRank(adj, init, iters)
	got := out["final_ranks"]
	whileOp := d.ByOut("final_ranks")
	if trace.Iterations[whileOp.ID] != iters {
		t.Errorf("iterations = %d, want %d", trace.Iterations[whileOp.ID], iters)
	}
	if got.NumRows() != len(want) {
		t.Fatalf("rank rows = %d, want %d: %v", got.NumRows(), len(want), got.Rows)
	}
	for _, r := range got.Rows {
		v, rank := r[0].I, r[1].F
		if math.Abs(rank-want[v]) > 1e-9 {
			t.Errorf("vertex %d rank = %g, want %g", v, rank, want[v])
		}
	}
}

func TestWhileCondRelStopsEarly(t *testing.T) {
	// Loop decrements a counter; condition relation selects rows > 0.
	d := ir.NewDAG()
	in := d.AddInput("counter", "in/counter", relation.NewSchema("v:int"))
	body := ir.NewDAG()
	bIn := body.AddInput("counter", "", relation.NewSchema("v:int"))
	dec := body.Add(ir.OpArith, "next", ir.Params{Dst: "v", ALeft: ir.ColRef("v"), ARght: ir.LitOp(relation.Int(1)), AOp: ir.ArithSub}, bIn)
	body.Add(ir.OpSelect, "pending", ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(0)))}, dec)
	w := d.Add(ir.OpWhile, "done", ir.Params{
		Body:    body,
		MaxIter: 100,
		CondRel: "pending",
		Carried: map[string]string{"counter": "next"},
	}, in)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	env := Env{"counter": mkRel("counter", relation.NewSchema("v:int"), intRows(3)...)}
	out, trace, err := RunDAG(d, env)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Iterations[w.ID] != 3 {
		t.Errorf("iterations = %d, want 3", trace.Iterations[w.ID])
	}
	if out["done"].Rows[0][0].I != 0 {
		t.Errorf("final = %v", out["done"].Rows)
	}
}

func TestRunOpMissingInput(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("v:int"))
	op := d.Add(ir.OpDistinct, "o", ir.Params{}, in)
	if _, err := RunOp(op, Env{}, newTrace()); err == nil {
		t.Error("missing input not reported")
	}
	if _, err := RunOp(in, Env{}, newTrace()); err == nil {
		t.Error("missing input binding not reported")
	}
}

func TestSelectionCountQuick(t *testing.T) {
	// |select(R, v>c)| + |select(R, v<=c)| == |R|
	f := func(vals []int64, c int64) bool {
		in := mkRel("t", relation.NewSchema("v:int"), intRows(vals...)...)
		gt := mustEval(ir.OpSelect, ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpGt, ir.LitOp(relation.Int(c)))}, in)
		le := mustEval(ir.OpSelect, ir.Params{Pred: ir.Cmp(ir.ColRef("v"), ir.CmpLe, ir.LitOp(relation.Int(c)))}, in)
		return gt.NumRows()+le.NumRows() == in.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnionDifferenceQuick(t *testing.T) {
	// distinct(A) == difference(A, empty)
	f := func(vals []int64) bool {
		a := mkRel("a", relation.NewSchema("v:int"), intRows(vals...)...)
		empty := mkRel("b", relation.NewSchema("v:int"))
		diff := mustEval(ir.OpDifference, ir.Params{}, a, empty)
		dist := mustEval(ir.OpDistinct, ir.Params{}, a)
		return diff.Fingerprint() == dist.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJoinCardinalityQuick(t *testing.T) {
	// |A ⋈ B| == sum over keys of countA(k)*countB(k)
	f := func(as, bs []uint8) bool {
		a := relation.New("a", relation.NewSchema("k:int"))
		for _, v := range as {
			a.MustAppend(relation.Row{relation.Int(int64(v % 8))})
		}
		b := relation.New("b", relation.NewSchema("k:int"))
		for _, v := range bs {
			b.MustAppend(relation.Row{relation.Int(int64(v % 8))})
		}
		got := mustEval(ir.OpJoin, ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, a, b)
		ca, cb := map[int64]int{}, map[int64]int{}
		for _, r := range a.Rows {
			ca[r[0].I]++
		}
		for _, r := range b.Rows {
			cb[r[0].I]++
		}
		want := 0
		for k, n := range ca {
			want += n * cb[k]
		}
		return got.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustEval(typ ir.OpType, params ir.Params, inputs ...*relation.Relation) *relation.Relation {
	d := ir.NewDAG()
	ops := make([]*ir.Op, len(inputs))
	for i, in := range inputs {
		ops[i] = d.AddInput(in.Name+fmt.Sprint(i), "in", in.Schema)
	}
	op := d.Add(typ, "out", params, ops...)
	rel, err := EvalOp(op, inputs)
	if err != nil {
		panic(err)
	}
	return rel
}

func TestSortKernel(t *testing.T) {
	in := mkRel("t", relation.NewSchema("k:int", "v:string"),
		relation.Row{relation.Int(3), relation.Str("c")},
		relation.Row{relation.Int(1), relation.Str("a")},
		relation.Row{relation.Int(2), relation.Str("b")},
		relation.Row{relation.Int(1), relation.Str("z")},
	)
	asc := evalOne(t, ir.OpSort, ir.Params{SortBy: []string{"k"}}, in)
	if asc.Rows[0][0].I != 1 || asc.Rows[3][0].I != 3 {
		t.Errorf("asc = %v", asc.Rows)
	}
	// Stability: equal keys keep input order.
	if asc.Rows[0][1].S != "a" || asc.Rows[1][1].S != "z" {
		t.Errorf("sort not stable: %v", asc.Rows)
	}
	desc := evalOne(t, ir.OpSort, ir.Params{SortBy: []string{"k"}, Desc: true}, in)
	if desc.Rows[0][0].I != 3 {
		t.Errorf("desc = %v", desc.Rows)
	}
	// The input slice must not be mutated.
	if in.Rows[0][0].I != 3 {
		t.Error("sort mutated its input")
	}
}

func TestLimitKernel(t *testing.T) {
	in := mkRel("t", relation.NewSchema("v:int"), intRows(1, 2, 3, 4, 5)...)
	got := evalOne(t, ir.OpLimit, ir.Params{Limit: 3}, in)
	if got.NumRows() != 3 || got.Rows[2][0].I != 3 {
		t.Errorf("limit = %v", got.Rows)
	}
	over := evalOne(t, ir.OpLimit, ir.Params{Limit: 99}, in)
	if over.NumRows() != 5 {
		t.Errorf("limit beyond size = %d rows", over.NumRows())
	}
}

func TestTopNPipeline(t *testing.T) {
	// sort desc + limit = top-N, the classic extension workload.
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("v:int"))
	s := d.Add(ir.OpSort, "sorted", ir.Params{SortBy: []string{"v"}, Desc: true}, in)
	d.Add(ir.OpLimit, "top", ir.Params{Limit: 2}, s)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := mkRel("t", relation.NewSchema("v:int"), intRows(5, 9, 1, 7, 3)...)
	env, _, err := RunDAG(d, Env{"t": rel})
	if err != nil {
		t.Fatal(err)
	}
	top := env["top"]
	if top.Rows[0][0].I != 9 || top.Rows[1][0].I != 7 {
		t.Errorf("top-2 = %v", top.Rows)
	}
}
