package exec

import (
	"fmt"
	"testing"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Micro-benchmarks for the shared operator kernels (the per-row machinery
// every simulated engine executes). Run with:
//
//	go test -bench=Kernel ./internal/exec -benchmem

func benchRelation(rows, keys int) *relation.Relation {
	rel := relation.New("b", relation.NewSchema("k:int", "v:int", "w:float"))
	for i := 0; i < rows; i++ {
		rel.MustAppend(relation.Row{
			relation.Int(int64(i % keys)),
			relation.Int(int64(i)),
			relation.Float(float64(i) * 0.5),
		})
	}
	return rel
}

func benchOp(b *testing.B, typ ir.OpType, params ir.Params, inputs ...*relation.Relation) {
	b.Helper()
	d := ir.NewDAG()
	ops := make([]*ir.Op, len(inputs))
	for i, in := range inputs {
		ops[i] = d.AddInput(fmt.Sprintf("in%d", i), "in", in.Schema)
	}
	op := d.Add(typ, "out", params, ops...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalOp(op, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSelect(b *testing.B) {
	in := benchRelation(20000, 64)
	benchOp(b, ir.OpSelect, ir.Params{
		Pred: ir.Cmp(ir.ColRef("v"), ir.CmpLt, ir.LitOp(relation.Int(10000))),
	}, in)
}

func BenchmarkKernelProject(b *testing.B) {
	in := benchRelation(20000, 64)
	benchOp(b, ir.OpProject, ir.Params{Columns: []string{"k", "w"}}, in)
}

func BenchmarkKernelHashJoin(b *testing.B) {
	left := benchRelation(20000, 256)
	right := benchRelation(2000, 256)
	benchOp(b, ir.OpJoin, ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, left, right)
}

func BenchmarkKernelAgg(b *testing.B) {
	in := benchRelation(20000, 128)
	benchOp(b, ir.OpAgg, ir.Params{
		GroupBy: []string{"k"},
		Aggs: []ir.AggSpec{
			{Func: ir.AggSum, Col: "v", As: "s"},
			{Func: ir.AggMax, Col: "w", As: "hi"},
		},
	}, in)
}

func BenchmarkKernelAggParallel(b *testing.B) {
	old := ParallelThreshold
	ParallelThreshold = 1
	defer func() { ParallelThreshold = old }()
	in := benchRelation(20000, 128)
	benchOp(b, ir.OpAgg, ir.Params{
		GroupBy: []string{"k"},
		Aggs:    []ir.AggSpec{{Func: ir.AggSum, Col: "v", As: "s"}},
	}, in)
}

func BenchmarkKernelDistinct(b *testing.B) {
	in := benchRelation(20000, 5000)
	benchOp(b, ir.OpDistinct, ir.Params{}, in)
}

func BenchmarkKernelArith(b *testing.B) {
	in := benchRelation(20000, 64)
	benchOp(b, ir.OpArith, ir.Params{
		Dst: "w", ALeft: ir.ColRef("w"), ARght: ir.LitOp(relation.Float(0.85)), AOp: ir.ArithMul,
	}, in)
}
