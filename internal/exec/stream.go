package exec

import (
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// This file holds the streaming operator kernels: relation.RowSource stages
// that a fused chain composes into a single pull pipeline (see fuse.go for
// chain planning and the driver). Each stage consumes its upstream via the
// iterator interface only and reuses its output buffers across batches, so a
// fused SELECT→PROJECT→AGG chain runs with no per-row allocation and no
// materialized intermediates.

// accTap accumulates the row count and physical byte size of the rows an
// elided stage emits. The byte computation matches
// relation.Relation.PhysicalBytes exactly, which is what lets the fused
// driver reconstruct the same trace a materialized evaluation records.
type accTap struct {
	rows    int
	phys    int64
	scratch []byte
}

func (a *accTap) addRow(row relation.Row) {
	a.rows++
	for _, v := range row {
		if v.Kind == relation.KindString {
			a.phys += int64(len(v.S)) + 1 // field + separator/newline
			continue
		}
		a.scratch = v.AppendText(a.scratch[:0])
		a.phys += int64(len(a.scratch)) + 1
	}
}

// valArena hands out value storage for constructing stages. A reusable
// arena recycles one backing slice across batches; a fresh arena allocates
// per batch, which the last constructing stage before a materializing
// terminal needs because its rows escape the pipeline.
type valArena struct {
	fresh bool
	vals  []relation.Value
}

func (a *valArena) take(n int) []relation.Value {
	if a.fresh {
		return make([]relation.Value, n)
	}
	if cap(a.vals) < n {
		a.vals = make([]relation.Value, n)
	}
	return a.vals[:n]
}

// scanSource is the head of a fused pipeline. It scans a row range and
// applies the chain's leading SELECT predicates (predicate pushdown) and an
// immediately following PROJECT (projection pushdown) during the scan
// itself, so filtered-out rows are never copied and surviving rows are
// narrowed before any downstream stage sees them.
type scanSource struct {
	in        []relation.Row
	inSch     relation.Schema
	sch       relation.Schema // post-projection schema
	batchRows int
	pos       int

	preds    []*ir.Pred
	predTaps []*accTap // aligned with preds; nil entries are unmetered

	proj    []int // projection indexes; nil when no PROJECT folded in
	projTap *accTap
	ar      valArena

	out []relation.Row
}

func (s *scanSource) Schema() relation.Schema { return s.sch }

func (s *scanSource) Next() (relation.Batch, error) {
	n := s.batchRows
	if n <= 0 {
		n = relation.DefaultBatchRows
	}
	for s.pos < len(s.in) {
		hi := s.pos + n
		if hi > len(s.in) {
			hi = len(s.in)
		}
		scan := s.in[s.pos:hi]
		s.pos = hi
		s.out = s.out[:0]
		for _, row := range scan {
			keep := true
			for pi, p := range s.preds {
				ok, err := EvalPred(p, s.inSch, row)
				if err != nil {
					return relation.Batch{}, err
				}
				if !ok {
					keep = false
					break
				}
				// The tap meters this SELECT's own output: rows it passes,
				// even ones a later pushed-down predicate drops.
				if t := s.predTaps[pi]; t != nil {
					t.addRow(row)
				}
			}
			if keep {
				s.out = append(s.out, row)
			}
		}
		if len(s.out) == 0 {
			continue
		}
		if s.proj == nil {
			return relation.Batch{Rows: s.out}, nil
		}
		arity := len(s.proj)
		vals := s.ar.take(len(s.out) * arity)
		for i, row := range s.out {
			nr := relation.Row(vals[:arity:arity])
			vals = vals[arity:]
			for k, j := range s.proj {
				nr[k] = row[j]
			}
			if s.projTap != nil {
				s.projTap.addRow(nr)
			}
			s.out[i] = nr
		}
		return relation.Batch{Rows: s.out}, nil
	}
	return relation.Batch{}, nil
}

// selectStage filters an upstream source. Rows pass through by reference;
// the stage owns only the batch header slice.
type selectStage struct {
	src  relation.RowSource
	sch  relation.Schema
	pred *ir.Pred
	tap  *accTap
	out  []relation.Row
}

func (s *selectStage) Schema() relation.Schema { return s.sch }

func (s *selectStage) Next() (relation.Batch, error) {
	for {
		b, err := s.src.Next()
		if err != nil || b.Empty() {
			return relation.Batch{}, err
		}
		s.out = s.out[:0]
		for _, row := range b.Rows {
			ok, err := EvalPred(s.pred, s.sch, row)
			if err != nil {
				return relation.Batch{}, err
			}
			if ok {
				if s.tap != nil {
					s.tap.addRow(row)
				}
				//mkvet:ignore arena-escape s.out is this stage's per-Next output view, re-sliced at the top of every Next: aliased rows never outlive the upstream contract window
				s.out = append(s.out, row)
			}
		}
		if len(s.out) > 0 {
			return relation.Batch{Rows: s.out}, nil
		}
	}
}

// projectStage narrows rows to a column subset, copying values into its
// arena (value structs are copied, so outputs never alias upstream storage).
type projectStage struct {
	src relation.RowSource
	sch relation.Schema
	idx []int
	tap *accTap
	ar  valArena
	out []relation.Row
}

func (p *projectStage) Schema() relation.Schema { return p.sch }

func (p *projectStage) Next() (relation.Batch, error) {
	b, err := p.src.Next()
	if err != nil || b.Empty() {
		return relation.Batch{}, err
	}
	arity := len(p.idx)
	vals := p.ar.take(len(b.Rows) * arity)
	p.out = p.out[:0]
	for _, row := range b.Rows {
		nr := relation.Row(vals[:arity:arity])
		vals = vals[arity:]
		for k, j := range p.idx {
			nr[k] = row[j]
		}
		if p.tap != nil {
			p.tap.addRow(nr)
		}
		p.out = append(p.out, nr)
	}
	return relation.Batch{Rows: p.out}, nil
}

// arithStage computes a derived column per row, in place of dstIdx or
// appended when dstIdx is negative.
type arithStage struct {
	src    relation.RowSource
	inSch  relation.Schema
	sch    relation.Schema
	op     *ir.Op
	dstIdx int
	tap    *accTap
	ar     valArena
	out    []relation.Row
}

func (a *arithStage) Schema() relation.Schema { return a.sch }

func (a *arithStage) Next() (relation.Batch, error) {
	b, err := a.src.Next()
	if err != nil || b.Empty() {
		return relation.Batch{}, err
	}
	arity := a.inSch.Arity()
	if a.dstIdx < 0 {
		arity++
	}
	vals := a.ar.take(len(b.Rows) * arity)
	a.out = a.out[:0]
	for _, row := range b.Rows {
		l, err := operandValue(a.op.Params.ALeft, a.inSch, row)
		if err != nil {
			return relation.Batch{}, err
		}
		r, err := operandValue(a.op.Params.ARght, a.inSch, row)
		if err != nil {
			return relation.Batch{}, err
		}
		v := a.op.Params.AOp.Apply(l, r)
		nr := relation.Row(vals[:arity:arity])
		vals = vals[arity:]
		copy(nr, row)
		if a.dstIdx >= 0 {
			nr[a.dstIdx] = v
		} else {
			nr[arity-1] = v
		}
		if a.tap != nil {
			a.tap.addRow(nr)
		}
		a.out = append(a.out, nr)
	}
	return relation.Batch{Rows: a.out}, nil
}

// joinProbeStage probes a pre-built hash-join table with the streaming
// (left) side, emitting left-row ++ kept-right-column rows. The build table
// is read-only and may be shared across concurrent pipeline instances; each
// stage hashes through its own KeyHasher.
type joinProbeStage struct {
	src     relation.RowSource
	sch     relation.Schema
	lIdx    []int
	rKeep   []int
	build   *joinTable
	h       relation.KeyHasher
	tap     *accTap
	ar      valArena
	out     []relation.Row
	matches [][]relation.Row
}

func (j *joinProbeStage) Schema() relation.Schema { return j.sch }

func (j *joinProbeStage) Next() (relation.Batch, error) {
	for {
		b, err := j.src.Next()
		if err != nil || b.Empty() {
			return relation.Batch{}, err
		}
		total := 0
		j.matches = j.matches[:0]
		for _, lr := range b.Rows {
			m := j.build.probe(&j.h, lr, j.lIdx)
			j.matches = append(j.matches, m)
			total += len(m)
		}
		if total == 0 {
			continue
		}
		arity := j.sch.Arity()
		vals := j.ar.take(total * arity)
		j.out = j.out[:0]
		for i, lr := range b.Rows {
			for _, rr := range j.matches[i] {
				nr := relation.Row(vals[:arity:arity])
				vals = vals[arity:]
				copy(nr, lr)
				k := len(lr)
				for _, c := range j.rKeep {
					nr[k] = rr[c]
					k++
				}
				if j.tap != nil {
					j.tap.addRow(nr)
				}
				j.out = append(j.out, nr)
			}
		}
		return relation.Batch{Rows: j.out}, nil
	}
}

// drainAgg is the aggregation sink: it folds every upstream row into the
// table (which copies the values it keeps) and reports how many rows it
// consumed.
func drainAgg(src relation.RowSource, table *aggTable, gIdx, aIdx []int) (int, error) {
	rows := 0
	for {
		b, err := src.Next()
		if err != nil {
			return rows, err
		}
		if b.Empty() {
			return rows, nil
		}
		for _, row := range b.Rows {
			table.state(row, gIdx, aIdx).accumulate(row, aIdx)
		}
		rows += len(b.Rows)
	}
}

// drainRows is the materializing sink: it appends every batch's row headers
// to dst (the final constructing stage allocates fresh value storage, so
// the appended rows are durable).
func drainRows(src relation.RowSource, dst []relation.Row) ([]relation.Row, error) {
	for {
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if b.Empty() {
			return dst, nil
		}
		dst = append(dst, b.Rows...)
	}
}
