package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// withThreshold runs fn with ParallelThreshold temporarily lowered so the
// parallel kernel paths engage on small test data.
func withThreshold(t *testing.T, n int, fn func()) {
	t.Helper()
	old := ParallelThreshold
	ParallelThreshold = n
	defer func() { ParallelThreshold = old }()
	fn()
}

func bigIntRelation(name string, rows int, seed int64) *relation.Relation {
	r := rand.New(rand.NewSource(seed))
	rel := relation.New(name, relation.NewSchema("k:int", "v:int"))
	for i := 0; i < rows; i++ {
		rel.MustAppend(relation.Row{
			relation.Int(int64(r.Intn(64))),
			relation.Int(int64(i)),
		})
	}
	return rel
}

func TestParallelSelectMatchesSerial(t *testing.T) {
	in := bigIntRelation("t", 5000, 1)
	d := ir.NewDAG()
	src := d.AddInput("t", "in/t", in.Schema)
	op := d.Add(ir.OpSelect, "out", ir.Params{
		Pred: ir.Cmp(ir.ColRef("k"), ir.CmpLt, ir.LitOp(relation.Int(20))),
	}, src)

	serialOut, err := EvalOp(op, []*relation.Relation{in})
	if err != nil {
		t.Fatal(err)
	}
	withThreshold(t, 1, func() {
		parallelOut, err := EvalOp(op, []*relation.Relation{in})
		if err != nil {
			t.Fatal(err)
		}
		if len(parallelOut.Rows) != len(serialOut.Rows) {
			t.Fatalf("row counts differ: %d vs %d", len(parallelOut.Rows), len(serialOut.Rows))
		}
		// Order must match the serial evaluation exactly (chunk order).
		for i := range serialOut.Rows {
			for j := range serialOut.Rows[i] {
				if !serialOut.Rows[i][j].Equal(parallelOut.Rows[i][j]) {
					t.Fatalf("row %d differs: %v vs %v", i, serialOut.Rows[i], parallelOut.Rows[i])
				}
			}
		}
	})
}

func TestParallelJoinMatchesSerial(t *testing.T) {
	left := bigIntRelation("l", 4000, 2)
	right := bigIntRelation("r", 300, 3)
	d := ir.NewDAG()
	ls := d.AddInput("l", "in/l", left.Schema)
	rs := d.AddInput("r", "in/r", relation.NewSchema("k:int", "w:int"))
	rr := relation.New("r", relation.NewSchema("k:int", "w:int"))
	rr.Rows = right.Rows
	op := d.Add(ir.OpJoin, "out", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, ls, rs)

	serialOut, err := EvalOp(op, []*relation.Relation{left, rr})
	if err != nil {
		t.Fatal(err)
	}
	withThreshold(t, 1, func() {
		parallelOut, err := EvalOp(op, []*relation.Relation{left, rr})
		if err != nil {
			t.Fatal(err)
		}
		if parallelOut.Fingerprint() != serialOut.Fingerprint() {
			t.Error("parallel join result differs from serial")
		}
		if len(parallelOut.Rows) != len(serialOut.Rows) {
			t.Errorf("row counts: %d vs %d", len(parallelOut.Rows), len(serialOut.Rows))
		}
	})
}

func TestParallelSelectPropagatesErrors(t *testing.T) {
	in := bigIntRelation("t", 1000, 4)
	d := ir.NewDAG()
	src := d.AddInput("t", "in/t", in.Schema)
	// Predicate referencing a column the rows don't have: rows are
	// evaluated against a schema claiming a missing column.
	op := d.Add(ir.OpSelect, "out", ir.Params{
		Pred: ir.Cmp(ir.ColRef("k"), ir.CmpLt, ir.LitOp(relation.Int(20))),
	}, src)
	_ = op
	withThreshold(t, 1, func() {
		_, err := parallelFilter(in.Rows, func(row relation.Row) (bool, error) {
			return false, fmt.Errorf("boom")
		})
		if err == nil {
			t.Error("error swallowed by parallel filter")
		}
	})
}

func TestChunkRanges(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 4097} {
		ranges := chunkRanges(n)
		covered := 0
		last := 0
		for _, rg := range ranges {
			if rg[0] != last {
				t.Fatalf("n=%d: gap at %d", n, rg[0])
			}
			if rg[1] <= rg[0] {
				t.Fatalf("n=%d: empty range %v", n, rg)
			}
			covered += rg[1] - rg[0]
			last = rg[1]
		}
		if covered != n {
			t.Errorf("n=%d: covered %d", n, covered)
		}
	}
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	in := bigIntRelation("t", 6000, 5)
	d := ir.NewDAG()
	src := d.AddInput("t", "in/t", in.Schema)
	op := d.Add(ir.OpAgg, "out", ir.Params{
		GroupBy: []string{"k"},
		Aggs: []ir.AggSpec{
			{Func: ir.AggSum, Col: "v", As: "s"},
			{Func: ir.AggCount, As: "n"},
			{Func: ir.AggMin, Col: "v", As: "lo"},
			{Func: ir.AggMax, Col: "v", As: "hi"},
			{Func: ir.AggAvg, Col: "v", As: "avg"},
		},
	}, src)
	serialOut, err := EvalOp(op, []*relation.Relation{in})
	if err != nil {
		t.Fatal(err)
	}
	withThreshold(t, 1, func() {
		parallelOut, err := EvalOp(op, []*relation.Relation{in})
		if err != nil {
			t.Fatal(err)
		}
		if parallelOut.Fingerprint() != serialOut.Fingerprint() {
			t.Error("parallel aggregation differs from serial")
		}
		// Output group order must be identical too (first appearance).
		for i := range serialOut.Rows {
			if !serialOut.Rows[i][0].Equal(parallelOut.Rows[i][0]) {
				t.Fatalf("group order differs at %d: %v vs %v", i, serialOut.Rows[i][0], parallelOut.Rows[i][0])
			}
		}
	})
}
