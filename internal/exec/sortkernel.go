package exec

import (
	"sort"

	"musketeer/internal/relation"
)

// sortRowsBy returns a new slice of rows stably ordered by the key columns.
// The input is not mutated (other operators may share the row slice).
func sortRowsBy(rows []relation.Row, keyIdx []int, desc bool) []relation.Row {
	out := make([]relation.Row, len(rows))
	copy(out, rows)
	sort.SliceStable(out, func(i, j int) bool {
		for _, k := range keyIdx {
			c := out[i][k].Compare(out[j][k])
			if c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out
}
