package exec

import (
	"sort"
	"sync"

	"musketeer/internal/relation"
)

// sortRowsBy returns a new slice of rows stably ordered by the key columns.
// The input is not mutated (other operators may share the row slice).
//
// Above ParallelThreshold the sort runs as a parallel stable merge sort:
// contiguous chunks are sorted concurrently with sort.SliceStable, then
// adjacent sorted runs merge pairwise (also concurrently) with ties taken
// from the left run — which preserves input order on equal keys, so the
// result is byte-identical to the serial stable sort.
func sortRowsBy(rows []relation.Row, keyIdx []int, desc bool) []relation.Row {
	out := make([]relation.Row, len(rows))
	copy(out, rows)
	less := func(a, b relation.Row) bool {
		for _, k := range keyIdx {
			c := a[k].Compare(b[k])
			if c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	if len(out) < ParallelThreshold {
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out
	}
	ranges := chunkRanges(len(out))
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(chunk []relation.Row) {
			defer wg.Done()
			sort.SliceStable(chunk, func(i, j int) bool { return less(chunk[i], chunk[j]) })
		}(out[rg[0]:rg[1]])
	}
	wg.Wait()
	// Pairwise merge rounds until one run remains; src/dst ping-pong so each
	// round copies every row at most once.
	bounds := make([]int, 0, len(ranges)+1)
	bounds = append(bounds, 0)
	for _, rg := range ranges {
		bounds = append(bounds, rg[1])
	}
	src, dst := out, make([]relation.Row, len(out))
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		next = append(next, 0)
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
			next = append(next, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the final run has no partner; copy it through.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			next = append(next, hi)
		}
		mwg.Wait()
		bounds = next
		src, dst = dst, src
	}
	return src
}

// mergeRuns stably merges sorted runs a and b into dst (len(dst) must equal
// len(a)+len(b)): on ties the element from a wins, keeping earlier input
// positions first.
func mergeRuns(dst, a, b []relation.Row, less func(x, y relation.Row) bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[i+j] = b[j]
			j++
		} else {
			dst[i+j] = a[i]
			i++
		}
	}
	copy(dst[i+j:], a[i:])
	copy(dst[i+j+len(a[i:]):], b[j:])
}
