package exec

import (
	"fmt"

	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Env binds relation names to materialized relations during evaluation.
type Env map[string]*relation.Relation

// Clone shallow-copies the environment (relations are shared).
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// UDF is a registered user-defined function: an execution body plus the
// schema transform the IR validator uses.
type UDF struct {
	Fn        func(inputs []*relation.Relation) (*relation.Relation, error)
	OutSchema ir.UDFSchemaFn
}

var udfs = map[string]UDF{}

// RegisterUDF installs a UDF under name for both execution and schema
// inference. Re-registration replaces the previous definition.
func RegisterUDF(name string, udf UDF) {
	udfs[name] = udf
	ir.RegisterUDFSchema(name, udf.OutSchema)
}

// Trace records what a DAG evaluation did; engines and the history store
// consume it for cost calibration and bound refinement.
type Trace struct {
	// OutBytes maps operator ID to the effective (logical) output size of
	// its most recent evaluation.
	OutBytes map[int]int64
	// OutRows maps operator ID to physical output row count (most recent).
	OutRows map[int]int
	// ProcBytes maps operator ID to the cumulative effective bytes it
	// processed (inputs plus produced data) — accumulated across WHILE
	// iterations, this is the PROCESS volume of the paper's cost model.
	ProcBytes map[int]int64
	// InBytes maps operator ID to cumulative effective input bytes only
	// (the volume a shuffle operator moves across the network).
	InBytes map[int]int64
	// Iterations maps WHILE operator IDs to the number of iterations run.
	Iterations map[int]int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{OutBytes: map[int]int64{}, OutRows: map[int]int{}, ProcBytes: map[int]int64{}, InBytes: map[int]int64{}, Iterations: map[int]int{}}
}

func newTrace() *Trace { return NewTrace() }

// Merge folds another trace into t: sizes and counts take the other
// trace's latest values, processed bytes accumulate.
func (t *Trace) Merge(o *Trace) {
	for k, v := range o.OutBytes {
		t.OutBytes[k] = v
	}
	for k, v := range o.OutRows {
		t.OutRows[k] = v
	}
	for k, v := range o.ProcBytes {
		t.ProcBytes[k] += v
	}
	for k, v := range o.InBytes {
		t.InBytes[k] += v
	}
	for k, v := range o.Iterations {
		t.Iterations[k] = v
	}
}

// TotalProcBytes sums processed bytes over the given operator IDs; with a
// nil filter it sums everything.
func (t *Trace) TotalProcBytes(ids map[int]bool) int64 {
	var n int64
	for id, v := range t.ProcBytes {
		if ids == nil || ids[id] {
			n += v
		}
	}
	return n
}

// RunDAG evaluates every operator of the DAG in topological order. Input
// operators resolve from env by output name (or DFS path); every operator's
// result is added to the returned environment under its output name.
func RunDAG(d *ir.DAG, env Env) (Env, *Trace, error) {
	ops, err := d.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	env = env.Clone()
	trace := newTrace()
	// RunDAG's contract is that every operator's result is readable from the
	// returned environment, so nothing may be elided here: fusion runs where
	// intermediates are known to be private — engine fragments (RunOps with
	// a Keep set) and WHILE bodies.
	if err := RunOps(ops, env, trace, RunOptions{NoFuse: true}); err != nil {
		return nil, nil, err
	}
	return env, trace, nil
}

// RunOp evaluates one operator against an environment, handling INPUT
// resolution and WHILE iteration.
func RunOp(op *ir.Op, env Env, trace *Trace) (*relation.Relation, error) {
	switch op.Type {
	case ir.OpInput:
		if rel, ok := env[op.Out]; ok {
			return rel, nil
		}
		if rel, ok := env[op.Params.Path]; ok {
			return rel, nil
		}
		return nil, fmt.Errorf("exec: input relation %q (path %q) not bound", op.Out, op.Params.Path)
	case ir.OpWhile:
		return RunWhile(op, env, trace)
	default:
		inputs := make([]*relation.Relation, len(op.Inputs))
		for i, in := range op.Inputs {
			rel, ok := env[in.Out]
			if !ok {
				return nil, fmt.Errorf("exec: %s: input relation %q not materialized", op, in.Out)
			}
			inputs[i] = rel
			if trace != nil {
				trace.ProcBytes[op.ID] += rel.EffectiveBytes()
				trace.InBytes[op.ID] += rel.EffectiveBytes()
			}
		}
		return EvalOp(op, inputs)
	}
}

// RunWhile drives a WHILE operator: it evaluates the body DAG repeatedly,
// rebinding loop-carried relations between iterations, until MaxIter is
// reached or the condition relation becomes empty. This is the "successive
// DAG expansion" of paper §4.2 — each iteration is a fresh evaluation of
// the body against an updated environment.
func RunWhile(op *ir.Op, env Env, trace *Trace) (*relation.Relation, error) {
	return runWhile(op, env, trace, RunOptions{})
}

// runWhile implements RunWhile with evaluation options threaded through.
// Body iterations fuse eligible operator chains: only loop-carried
// relations, the stop-condition relation, and the result relation are read
// between iterations, so everything else streams.
func runWhile(op *ir.Op, env Env, trace *Trace, opts RunOptions) (*relation.Relation, error) {
	body := op.Params.Body
	if body == nil {
		return nil, fmt.Errorf("exec: %s: WHILE without body", op)
	}
	// Bind body inputs: body INPUT ops resolve by name against the outer
	// environment (the WHILE's own inputs are in scope by construction).
	loopEnv := make(Env)
	for _, bop := range body.Ops {
		if bop.Type != ir.OpInput {
			continue
		}
		rel, ok := env[bop.Out]
		if !ok {
			rel, ok = env[bop.Params.Path]
		}
		if !ok {
			return nil, fmt.Errorf("exec: %s: body input %q not bound in outer scope", op, bop.Out)
		}
		loopEnv[bop.Out] = rel
	}
	bodyOps, err := body.TopoSort()
	if err != nil {
		return nil, err
	}
	keepNames := map[string]bool{op.ResultRelation(): true}
	for _, outName := range op.Params.Carried {
		keepNames[outName] = true
	}
	if op.Params.CondRel != "" {
		keepNames[op.Params.CondRel] = true
	}
	bodyOpts := RunOptions{
		Keep:      func(bop *ir.Op) bool { return keepNames[bop.Out] },
		BatchRows: opts.BatchRows,
		Check:     opts.Check,
		NoFuse:    opts.NoFuse,
	}
	maxIter := op.Params.MaxIter
	if maxIter <= 0 {
		maxIter = 1 << 20 // condition-only loop; CondRel must terminate it
	}
	iters := 0
	converged := op.Params.CondRel == "" // bounded loops terminate by cap
	var lastOut Env
	for ; iters < maxIter; iters++ {
		outEnv := loopEnv.Clone()
		bodyTrace := newTrace()
		if err := RunOps(bodyOps, outEnv, bodyTrace, bodyOpts); err != nil {
			return nil, fmt.Errorf("exec: %s iteration %d: %w", op, iters+1, err)
		}
		trace.Merge(bodyTrace)
		lastOut = outEnv
		// Rebind carried relations for the next iteration.
		for inName, outName := range op.Params.Carried {
			rel, ok := outEnv[outName]
			if !ok {
				return nil, fmt.Errorf("exec: %s: carried output %q missing", op, outName)
			}
			loopEnv[inName] = rel
		}
		if op.Params.CondRel != "" {
			cond, ok := outEnv[op.Params.CondRel]
			if !ok {
				return nil, fmt.Errorf("exec: %s: condition relation %q missing", op, op.Params.CondRel)
			}
			if cond.NumRows() == 0 {
				converged = true
				iters++
				break
			}
		}
	}
	trace.Iterations[op.ID] = iters
	if !converged {
		// A data-dependent loop that exhausts its iteration cap with the
		// stop condition still non-empty never reached its fixpoint;
		// returning the truncated state silently would present a wrong
		// answer as a result.
		return nil, fmt.Errorf("exec: %s: WHILE did not converge: condition %q still non-empty after %d iterations (cap %d)",
			op, op.Params.CondRel, iters, maxIter)
	}
	res := op.ResultRelation()
	// After the final rebind, the result is the carried value now bound to
	// the body input side; find it via the carry mapping.
	for inName, outName := range op.Params.Carried {
		if outName == res {
			rel := loopEnv[inName]
			out := &relation.Relation{Name: op.Out, Schema: rel.Schema, Rows: rel.Rows, LogicalBytes: rel.LogicalBytes}
			return out, nil
		}
	}
	// No carry mapping selects the result: take it from the last
	// iteration's outputs.
	if lastOut == nil {
		return nil, fmt.Errorf("exec: %s: WHILE ran zero iterations", op)
	}
	rel, ok := lastOut[res]
	if !ok {
		return nil, fmt.Errorf("exec: %s: result relation %q missing", op, res)
	}
	return &relation.Relation{Name: op.Out, Schema: rel.Schema, Rows: rel.Rows, LogicalBytes: rel.LogicalBytes}, nil
}
