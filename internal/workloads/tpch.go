package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/hive"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// TPCHQ17Hive is TPC-H query 17 ("small-quantity-order revenue") in the
// HiveQL front-end dialect: the average yearly revenue lost if orders for
// small quantities of certain parts were no longer taken. The correlated
// subquery becomes an AVG aggregation joined back, as Hive plans it.
const TPCHQ17Hive = `
SELECT partkey FROM part WHERE brand == "Brand#23" AND container == "MED BOX" AS target_parts;
SELECT partkey, AVG(quantity) AS avg_qty FROM lineitem GROUP BY partkey AS part_avg;
lineitem JOIN target_parts ON lineitem.partkey = target_parts.partkey AS target_items;
target_items JOIN part_avg ON target_items.partkey = part_avg.partkey AS with_avg;
SELECT * FROM with_avg WHERE quantity < 0.2 * avg_qty AS small_orders;
SELECT SUM(extendedprice) AS revenue FROM small_orders AS q17;
`

// tpchSchemas returns the lineitem and part schemas used by Q17.
func tpchSchemas() (relation.Schema, relation.Schema) {
	lineitem := relation.NewSchema("partkey:int", "quantity:float", "extendedprice:float")
	part := relation.NewSchema("partkey:int", "brand:string", "container:string")
	return lineitem, part
}

// TPCHData generates lineitem and part tables at the given TPC-H scale
// factor: SF 10 ≈ 7.5 GB, SF 100 ≈ 75 GB of input (paper §6.2).
func TPCHData(scaleFactor int) (lineitem, part *relation.Relation) {
	liSchema, pSchema := tpchSchemas()
	r := rng(20)
	const physParts = 200
	part = relation.New("part", pSchema)
	brands := []string{"Brand#23", "Brand#12", "Brand#44", "Brand#55"}
	containers := []string{"MED BOX", "SM CASE", "LG DRUM", "JUMBO PKG"}
	for i := 0; i < physParts; i++ {
		part.MustAppend(relation.Row{
			relation.Int(int64(i)),
			relation.Str(brands[r.Intn(len(brands))]),
			relation.Str(containers[r.Intn(len(containers))]),
		})
	}
	lineitem = relation.New("lineitem", liSchema)
	for i := 0; i < 4000; i++ {
		lineitem.MustAppend(relation.Row{
			relation.Int(int64(r.Intn(physParts))),
			relation.Float(float64(1 + r.Intn(50))),
			relation.Float(900 + 100*r.Float64()*float64(1+r.Intn(50))),
		})
	}
	// TPC-H: lineitem dominates (~73 MB/SF), part is small (~2.3 MB/SF).
	scaleTo(lineitem, int64(scaleFactor)*mb(73))
	scaleTo(part, int64(scaleFactor)*mb(2.3))
	return lineitem, part
}

// TPCHCatalog returns the catalog for the Q17 tables.
func TPCHCatalog() frontends.Catalog {
	liSchema, pSchema := tpchSchemas()
	return frontends.Catalog{
		"lineitem": {Path: "in/tpch/lineitem", Schema: liSchema},
		"part":     {Path: "in/tpch/part", Schema: pSchema},
	}
}

// TPCHQ17 builds the Q17 workload from the Hive front-end at a TPC-H scale
// factor.
func TPCHQ17(scaleFactor int) *Workload {
	lineitem, part := TPCHData(scaleFactor)
	cat := TPCHCatalog()
	return &Workload{
		Name: sprintf("tpch-q17-sf%d", scaleFactor),
		Build: func() (*ir.DAG, error) {
			return hive.Parse(TPCHQ17Hive, cat)
		},
		Inputs: map[string]*relation.Relation{
			"in/tpch/lineitem": lineitem,
			"in/tpch/part":     part,
		},
		Output: "q17",
	}
}

// TPCHQ17Lindi builds the same query through the Lindi front-end (the
// second arm of Fig 7).
func TPCHQ17Lindi(scaleFactor int) *Workload {
	lineitem, part := TPCHData(scaleFactor)
	cat := TPCHCatalog()
	return &Workload{
		Name: sprintf("tpch-q17-lindi-sf%d", scaleFactor),
		Build: func() (*ir.DAG, error) {
			b := lindi.NewBuilder(cat)
			target := b.From("part").
				Where(ir.And(
					ir.Cmp(ir.ColRef("brand"), ir.CmpEq, ir.LitOp(relation.Str("Brand#23"))),
					ir.Cmp(ir.ColRef("container"), ir.CmpEq, ir.LitOp(relation.Str("MED BOX"))),
				)).
				Select("partkey").Named("target_parts")
			avg := b.From("lineitem").GroupBy([]string{"partkey"}).Avg("quantity", "avg_qty").Done().Named("part_avg")
			items := b.From("lineitem").Join(target, []string{"partkey"}, []string{"partkey"}).Named("target_items")
			items.Join(avg, []string{"partkey"}, []string{"partkey"}).
				Where(ir.Cmp(ir.ColRef("quantity"), ir.CmpLt, ir.ScaledCol("avg_qty", 0.2))).
				GroupBy(nil).Sum("extendedprice", "revenue").Done().
				Named("q17")
			return b.Build()
		},
		Inputs: map[string]*relation.Relation{
			"in/tpch/lineitem": lineitem,
			"in/tpch/part":     part,
		},
		Output: "q17",
	}
}
