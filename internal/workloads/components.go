package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/gas"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// ConnectedComponentsGAS expresses label propagation in the GAS DSL: each
// vertex repeatedly adopts the minimum label among its in-neighbors (and
// itself, via zero-cost self-loops). After enough rounds every vertex in a
// weakly-reachable region carries the region's minimum vertex ID.
const ConnectedComponentsGAS = `
GATHER = {
    MIN(vertex_value)
}
APPLY = { }
SCATTER = { }
ITERATION_STOP = (iteration < %d)
`

// ConnectedComponents builds a label-propagation workload over the graph.
// Edges are symmetrized and given self-loops so labels both flow in either
// direction and persist between rounds.
func ConnectedComponents(g *Graph, iterations int) *Workload {
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int"))
	seen := map[[2]int64]bool{}
	maxVertex := int64(0)
	addEdge := func(s, d int64) {
		k := [2]int64{s, d}
		if seen[k] {
			return
		}
		seen[k] = true
		edges.MustAppend(relation.Row{relation.Int(s), relation.Int(d)})
	}
	for _, row := range g.Edges.Rows {
		s, d := row[0].I, row[1].I
		addEdge(s, d)
		addEdge(d, s)
		if s > maxVertex {
			maxVertex = s
		}
		if d > maxVertex {
			maxVertex = d
		}
	}
	for v := int64(0); v <= maxVertex; v++ {
		addEdge(v, v)
	}
	scaleTo(edges, 2*g.LogicalEdges*bytesPerEdge)

	labels := relation.New("vertices", relation.NewSchema("vertex:int", "vertex_value:float"))
	for v := int64(0); v <= maxVertex; v++ {
		labels.MustAppend(relation.Row{relation.Int(v), relation.Float(float64(v))})
	}
	scaleTo(labels, g.LogicalVertices*bytesPerVertex)

	cat := frontends.Catalog{
		"vertices": {Path: "in/" + g.Name + "/labels", Schema: labels.Schema},
		"edges":    {Path: "in/" + g.Name + "/symedges", Schema: edges.Schema},
	}
	src := sprintf(ConnectedComponentsGAS, iterations)
	return &Workload{
		Name: "components-" + g.Name,
		Build: func() (*ir.DAG, error) {
			return gas.Parse(src, cat, gas.Config{Vertices: "vertices", Edges: "edges", Output: "components"})
		},
		Inputs: map[string]*relation.Relation{
			"in/" + g.Name + "/labels":   labels,
			"in/" + g.Name + "/symedges": edges,
		},
		Output: "components",
	}
}
