package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// KMeans builds the §6.7 k-means workload: logicalPoints random 2-D points
// clustered into k centers over `iterations` Lloyd rounds. The assignment
// step uses the CROSS JOIN operator — deliberately, as in the paper ("our
// k-means uses the CROSS JOIN operator, which is inefficient") — which is
// also why the workflow cannot be expressed in vertex-centric systems.
func KMeans(logicalPoints int64, k, iterations int) *Workload {
	r := rng(50)
	points := relation.New("points", relation.NewSchema("pid:int", "x:float", "y:float"))
	const physPoints = 600
	for i := 0; i < physPoints; i++ {
		// A few latent clusters so iterations actually move the centers.
		cx, cy := float64(i%4)*10, float64((i/4)%3)*10
		points.MustAppend(relation.Row{
			relation.Int(int64(i)),
			relation.Float(cx + r.NormFloat64()),
			relation.Float(cy + r.NormFloat64()),
		})
	}
	scaleTo(points, logicalPoints*22) // ~22 B per 2-D point row

	centers := relation.New("centers", relation.NewSchema("cid:int", "cx:float", "cy:float"))
	physK := k
	if physK > 8 {
		physK = 8 // physical sample uses few centers; logical size carries k
	}
	for c := 0; c < physK; c++ {
		centers.MustAppend(relation.Row{
			relation.Int(int64(c)),
			relation.Float(40 * r.Float64()),
			relation.Float(30 * r.Float64()),
		})
	}
	scaleTo(centers, int64(k)*24)

	cat := frontends.Catalog{
		"points":  {Path: "in/kmeans/points", Schema: points.Schema},
		"centers": {Path: "in/kmeans/centers", Schema: centers.Schema},
	}
	return &Workload{
		Name: sprintf("kmeans-%dm-k%d", logicalPoints/1_000_000, k),
		Build: func() (*ir.DAG, error) {
			b := lindi.NewBuilder(cat)
			b.Iterate("kmeans", []string{"points", "centers"}, lindi.LoopSpec{
				MaxIter: iterations,
				Carried: map[string]string{"centers": "new_centers"},
			}, func(body *lindi.Builder) error {
				dist := body.From("points").Cross(body.From("centers")).
					Compute("dx", ir.ColRef("x"), ir.ArithSub, ir.ColRef("cx")).
					Compute("dy", ir.ColRef("y"), ir.ArithSub, ir.ColRef("cy")).
					Compute("dx", ir.ColRef("dx"), ir.ArithMul, ir.ColRef("dx")).
					Compute("dy", ir.ColRef("dy"), ir.ArithMul, ir.ColRef("dy")).
					Compute("dist", ir.ColRef("dx"), ir.ArithAdd, ir.ColRef("dy")).
					Named("distances")
				mind := dist.GroupBy([]string{"pid"}).Min("dist", "mind").Done().Named("mind")
				dist.Join(mind, []string{"pid"}, []string{"pid"}).
					Where(ir.Cmp(ir.ColRef("dist"), ir.CmpLe, ir.ColRef("mind"))).
					GroupBy([]string{"cid"}).Avg("x", "cx").Avg("y", "cy").Done().
					Named("new_centers")
				return nil
			})
			return b.Build()
		},
		Inputs: map[string]*relation.Relation{
			"in/kmeans/points":  points,
			"in/kmeans/centers": centers,
		},
		Output: "kmeans",
	}
}
