// Package workloads provides the data generators and workflow definitions
// used by the evaluation (paper §2 and §6): the PROJECT and JOIN
// micro-benchmarks, TPC-H query 17, top-shopper, the NetFlix movie
// recommendation workflow (13 operators, plus the 18-operator extended
// version used for the partitioning benchmark), PageRank, single-source
// shortest paths, k-means clustering, and the hybrid cross-community
// PageRank.
//
// Public data sets are substituted with seeded synthetic equivalents of the
// same shape (see DESIGN.md §2): each generator materializes a small
// physical sample and stamps the paper-scale size as the relations'
// LogicalBytes, so operator statistics come from real execution while the
// cost model sees paper-scale volumes.
package workloads

import (
	"fmt"
	"math/rand"

	"musketeer/internal/dfs"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Workload bundles a workflow with its staged inputs.
type Workload struct {
	Name string
	// Build constructs a fresh IR DAG (runs may mutate operator state, so
	// every execution gets its own copy).
	Build func() (*ir.DAG, error)
	// Inputs maps DFS paths to input relations.
	Inputs map[string]*relation.Relation
	// Output names the workflow's primary result relation.
	Output string
}

// Stage writes the workload's inputs into the filesystem.
func (w *Workload) Stage(fs *dfs.DFS) error {
	for path, rel := range w.Inputs {
		if err := fs.WriteRelation(path, rel); err != nil {
			return fmt.Errorf("workloads: stage %s: %w", w.Name, err)
		}
	}
	return nil
}

// InputBytes sums the effective sizes of the workload's inputs.
func (w *Workload) InputBytes() int64 {
	var n int64
	for _, rel := range w.Inputs {
		n += rel.EffectiveBytes()
	}
	return n
}

// MustBuild is Build for contexts where the workload is known-valid.
func (w *Workload) MustBuild() *ir.DAG {
	d, err := w.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: %s: %v", w.Name, err))
	}
	return d
}

// scaleTo stamps rel with a target logical size.
func scaleTo(rel *relation.Relation, logicalBytes int64) *relation.Relation {
	rel.LogicalBytes = logicalBytes
	return rel
}

// gb converts gigabytes to bytes.
func gb(x float64) int64 { return int64(x * 1e9) }

// mb converts megabytes to bytes.
func mb(x float64) int64 { return int64(x * 1e6) }

// rng returns a deterministic generator; every workload derives its data
// from fixed seeds so runs are reproducible.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sprintf is fmt.Sprintf under a short local name for workflow templates.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

var _ = frontends.Catalog{} // catalog types are used by the per-workload files
