package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// NetflixData generates the movie-recommendation inputs: a ratings table
// standing in for the 100 M-row (2.5 GB) NetFlix prize data and a 17,000-
// row movie list (0.5 MB). movieLimit controls how many movies the
// prediction uses (the paper's x-axis in Fig 10).
func NetflixData() (ratings, movies *relation.Relation) {
	r := rng(40)
	const physUsers, physMovies = 150, 60
	ratings = relation.New("ratings", relation.NewSchema("user:int", "movie:int", "rating:float"))
	for u := 0; u < physUsers; u++ {
		seen := map[int]bool{}
		for k := 0; k < 12; k++ {
			m := r.Intn(physMovies)
			if seen[m] {
				continue
			}
			seen[m] = true
			ratings.MustAppend(relation.Row{
				relation.Int(int64(u)), relation.Int(int64(m)),
				relation.Float(float64(1 + r.Intn(5))),
			})
		}
	}
	scaleTo(ratings, gb(2.5))
	movies = relation.New("movies", relation.NewSchema("movie:int", "year:int"))
	for m := 0; m < physMovies; m++ {
		movies.MustAppend(relation.Row{relation.Int(int64(m)), relation.Int(int64(1950 + r.Intn(60)))})
	}
	scaleTo(movies, mb(0.5))
	return ratings, movies
}

func netflixCatalog() frontends.Catalog {
	return frontends.Catalog{
		"ratings": {Path: "in/netflix/ratings", Schema: relation.NewSchema("user:int", "movie:int", "rating:float")},
		"movies":  {Path: "in/netflix/movies", Schema: relation.NewSchema("movie:int", "year:int")},
	}
}

// netflixCore builds the 13-operator item-based recommendation pipeline
// (paper §6.4): restrict to a movie subset, build co-rated movie pairs by
// self-joining on user, score pair similarity, project each user's ratings
// through the similarity matrix, and keep the top recommendation per user.
// movieFraction ∈ (0,1] controls the movie subset ("we control the amount
// of data processed by varying the number of movies used").
func netflixCore(b *lindi.Builder, movieLimit int64) *lindi.Query {
	selMovies := b.From("movies").
		Where(ir.Cmp(ir.ColRef("movie"), ir.CmpLt, ir.LitOp(relation.Int(movieLimit)))). // 1
		Named("sel_movies")
	r1 := b.From("ratings").
		Join(selMovies, []string{"movie"}, []string{"movie"}). // 2
		Named("target_ratings")
	pairs := r1.Join(r1, []string{"user"}, []string{"user"}).Named("pairs") // 3
	sim := pairs.
		Where(ir.Cmp(ir.ColRef("movie"), ir.CmpNe, ir.ColRef("r_movie"))).          // 4
		Compute("prod", ir.ColRef("rating"), ir.ArithMul, ir.ColRef("r_rating")).   // 5
		GroupBy([]string{"movie", "r_movie"}).Sum("prod", "sim").Count("n").Done(). // 6
		Compute("nsim", ir.ColRef("sim"), ir.ArithDiv, ir.ColRef("n")).             // 7
		Named("similarity")
	rec := b.From("ratings").
		Join(sim, []string{"movie"}, []string{"movie"}).                       // 8
		Compute("score", ir.ColRef("rating"), ir.ArithMul, ir.ColRef("nsim")). // 9
		GroupBy([]string{"user", "r_movie"}).Sum("score", "total").Done().     // 10
		Named("recommendations")
	best := rec.GroupBy([]string{"user"}).Max("total", "best").Done().Named("best") // 11
	return rec.Join(best, []string{"user"}, []string{"user"}).                      // 12
											Where(ir.Cmp(ir.ColRef("total"), ir.CmpGe, ir.ColRef("best"))). // 13
											Named("top_recommendation")
}

// Netflix builds the 13-operator movie recommendation workload.
func Netflix(movieLimit int64) *Workload {
	ratings, movies := NetflixData()
	cat := netflixCatalog()
	return &Workload{
		Name: sprintf("netflix-%d", movieLimit),
		Build: func() (*ir.DAG, error) {
			b := lindi.NewBuilder(cat)
			netflixCore(b, movieLimit)
			return b.Build()
		},
		Inputs: map[string]*relation.Relation{
			"in/netflix/ratings": ratings,
			"in/netflix/movies":  movies,
		},
		Output: "top_recommendation",
	}
}

// NetflixExtended is the 18-operator extension of the NetFlix workflow used
// to stress the DAG partitioning algorithms (paper §6.6, Fig 13).
// prefix ≤ 18 truncates the pipeline to its first `prefix` operators
// ("we run subsets of an extended version of the NetFlix workflow").
func NetflixExtended(prefix int) *Workload {
	ratings, movies := NetflixData()
	cat := netflixCatalog()
	return &Workload{
		Name: sprintf("netflix-ext-%dops", prefix),
		Build: func() (*ir.DAG, error) {
			b := lindi.NewBuilder(cat)
			top := netflixCore(b, 40)
			top.
				Select("user", "r_movie", "total").                                               // 14
				Distinct().                                                                       // 15
				Compute("boost", ir.ColRef("total"), ir.ArithMul, ir.LitOp(relation.Float(1.1))). // 16
				Where(ir.Cmp(ir.ColRef("boost"), ir.CmpGt, ir.LitOp(relation.Float(0)))).         // 17
				GroupBy([]string{"r_movie"}).Count("fans").Done().                                // 18
				Named("movie_fans")
			dag, err := b.Build()
			if err != nil {
				return nil, err
			}
			return truncateDAG(dag, prefix)
		},
		Inputs: map[string]*relation.Relation{
			"in/netflix/ratings": ratings,
			"in/netflix/movies":  movies,
		},
		Output: "movie_fans",
	}
}

// truncateDAG keeps the first n compute operators (in topological order)
// plus the inputs they need.
func truncateDAG(dag *ir.DAG, n int) (*ir.DAG, error) {
	order, err := dag.TopoSort()
	if err != nil {
		return nil, err
	}
	keep := map[*ir.Op]bool{}
	count := 0
	for _, op := range order {
		if op.Type == ir.OpInput {
			continue
		}
		ok := true
		for _, in := range op.Inputs {
			if in.Type != ir.OpInput && !keep[in] {
				ok = false
			}
		}
		if !ok || count >= n {
			continue
		}
		keep[op] = true
		count++
	}
	out := ir.NewDAG()
	mapping := map[*ir.Op]*ir.Op{}
	for _, op := range order {
		needed := keep[op]
		if op.Type == ir.OpInput {
			// Keep inputs consumed by kept ops.
			for _, c := range order {
				if keep[c] {
					for _, in := range c.Inputs {
						if in == op {
							needed = true
						}
					}
				}
			}
		}
		if !needed {
			continue
		}
		var ins []*ir.Op
		for _, in := range op.Inputs {
			ins = append(ins, mapping[in])
		}
		mapping[op] = out.Add(op.Type, op.Out, op.Params, ins...)
	}
	return out, out.Validate()
}
