package workloads

import (
	"math/rand"

	"musketeer/internal/frontends"
	"musketeer/internal/frontends/gas"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Graph is a synthetic stand-in for one of the paper's social-network data
// sets: a power-law out-degree directed graph with the original's logical
// vertex/edge counts and a laptop-sized physical sample.
type Graph struct {
	Name string
	// LogicalVertices/LogicalEdges are the original data set's counts.
	LogicalVertices, LogicalEdges int64
	// Edges has schema (src:int, dst:int, degree:int) where degree is the
	// source's out-degree (the PageRank share denominator).
	Edges *relation.Relation
	// Ranks has schema (vertex:int, rank:float), initialized to 1.0.
	Ranks *relation.Relation
}

// bytesPerEdge approximates the on-disk footprint of one edge row in the
// paper's edge-list files.
const bytesPerEdge = 18

// bytesPerVertex approximates one vertex-state row.
const bytesPerVertex = 14

// GenerateGraph builds a power-law graph with physVertices physical
// vertices, stamping paper-scale logical sizes. Out-degrees follow a
// Zipf-like distribution; destinations are preferentially attached so in-
// degree is also skewed (as in real social graphs).
func GenerateGraph(name string, logicalVertices, logicalEdges int64, physVertices int, seed int64) *Graph {
	r := rng(seed)
	avgDeg := float64(logicalEdges) / float64(logicalVertices)
	zipf := rand.NewZipf(r, 1.4, 2.0, uint64(16*avgDeg)+8)

	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "degree:int"))
	type edge struct{ src, dst int64 }
	var list []edge
	deg := make([]int64, physVertices)
	for v := 0; v < physVertices; v++ {
		d := int64(zipf.Uint64()) + 1
		if d > int64(physVertices-1) {
			d = int64(physVertices - 1)
		}
		deg[v] = d
		for i := int64(0); i < d; i++ {
			// Preferential-ish attachment: square the uniform draw so low
			// IDs (early, "popular" vertices) attract more in-edges.
			u := r.Float64()
			dst := int64(u * u * float64(physVertices))
			if dst == int64(v) {
				dst = (dst + 1) % int64(physVertices)
			}
			list = append(list, edge{int64(v), dst})
		}
	}
	for _, e := range list {
		edges.MustAppend(relation.Row{relation.Int(e.src), relation.Int(e.dst), relation.Int(deg[e.src])})
	}
	scaleTo(edges, logicalEdges*bytesPerEdge)

	ranks := relation.New("ranks", relation.NewSchema("vertex:int", "rank:float"))
	for v := 0; v < physVertices; v++ {
		ranks.MustAppend(relation.Row{relation.Int(int64(v)), relation.Float(1)})
	}
	scaleTo(ranks, logicalVertices*bytesPerVertex)

	return &Graph{
		Name:            name,
		LogicalVertices: logicalVertices, LogicalEdges: logicalEdges,
		Edges: edges, Ranks: ranks,
	}
}

// LiveJournal approximates the LiveJournal graph (4.8 M vertices, 69 M
// edges, §2.1).
func LiveJournal() *Graph {
	return GenerateGraph("livejournal", 4_800_000, 69_000_000, 1200, 1)
}

// Orkut approximates the Orkut graph (3 M vertices, 117 M edges, §2.2).
func Orkut() *Graph {
	return GenerateGraph("orkut", 3_000_000, 117_000_000, 1200, 2)
}

// Twitter approximates the Twitter graph (43 M vertices, 1.4 B edges).
func Twitter() *Graph {
	return GenerateGraph("twitter", 43_000_000, 1_400_000_000, 1500, 3)
}

// WebCommunity approximates the synthetically generated web community of
// §6.3 (5.8 M vertices, 82 M edges). It shares roughly a third of its edges
// with the LiveJournal graph so the cross-community intersection (§6.3) is
// meaningful.
func WebCommunity() *Graph {
	lj := LiveJournal()
	g := GenerateGraph("webcommunity", 5_800_000, 82_000_000, 1200, 4)
	r := rng(5)
	edges := relation.New("edges", g.Edges.Schema)
	for i, row := range g.Edges.Rows {
		if i%3 == 0 && i < len(lj.Edges.Rows) {
			// Borrow an edge from LiveJournal (degree column kept from
			// this graph's own structure; the cross-community workflow
			// recomputes degrees anyway).
			ljRow := lj.Edges.Rows[r.Intn(len(lj.Edges.Rows))]
			edges.MustAppend(relation.Row{ljRow[0], ljRow[1], row[2]})
			continue
		}
		edges.MustAppend(row)
	}
	edges.LogicalBytes = g.Edges.LogicalBytes
	g.Edges = edges
	return g
}

// PageRankGAS is the paper's Listing 2 program.
const PageRankGAS = `
GATHER = {
    SUM(vertex_value)
}
APPLY = {
    MUL [vertex_value, 0.85]
    SUM [vertex_value, 0.15]
}
SCATTER = {
    DIV [vertex_value, vertex_degree]
}
ITERATION_STOP = (iteration < %d)
ITERATION = {
    SUM [iteration, 1]
}
`

// PageRank builds the five-iteration PageRank workload over a graph,
// expressed in the GAS DSL front-end exactly as in the paper.
func PageRank(g *Graph, iterations int) *Workload {
	// The GAS front-end's conventions: vertices(vertex, vertex_value),
	// edges(src, dst, vertex_degree).
	verts := relation.New("vertices", relation.NewSchema("vertex:int", "vertex_value:float"))
	for _, row := range g.Ranks.Rows {
		verts.MustAppend(relation.Row{row[0], row[1]})
	}
	verts.LogicalBytes = g.Ranks.LogicalBytes
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "vertex_degree:int"))
	edges.Rows = g.Edges.Rows
	edges.LogicalBytes = g.Edges.LogicalBytes

	cat := frontends.Catalog{
		"vertices": {Path: "in/" + g.Name + "/vertices", Schema: verts.Schema},
		"edges":    {Path: "in/" + g.Name + "/edges", Schema: edges.Schema},
	}
	src := sprintfPageRank(iterations)
	return &Workload{
		Name: "pagerank-" + g.Name,
		Build: func() (*ir.DAG, error) {
			return gas.Parse(src, cat, gas.Config{Vertices: "vertices", Edges: "edges", Output: "pagerank"})
		},
		Inputs: map[string]*relation.Relation{
			"in/" + g.Name + "/vertices": verts,
			"in/" + g.Name + "/edges":    edges,
		},
		Output: "pagerank",
	}
}

func sprintfPageRank(iterations int) string {
	return sprintf(PageRankGAS, iterations)
}
