package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/beer"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// TopShopperBEER is the §6.5 micro-benchmark in the BEER front-end: find
// the largest spenders in a geographic region — filter purchases by region,
// aggregate value by user, keep users above a threshold. Three operators
// that merge into a single job and a single data scan.
const TopShopperBEER = `
eu     = SELECT * FROM purchases WHERE region == "EU";
totals = AGG SUM(value) AS total FROM eu GROUP BY uid;
top    = SELECT * FROM totals WHERE total > 900;
`

// bytesPerPurchase approximates one purchase row on disk.
const bytesPerPurchase = 24

// TopShopper builds the workload for a purchase log covering
// logicalUsers users (the paper sweeps 10 M – 100 M).
func TopShopper(logicalUsers int64) *Workload {
	r := rng(30)
	schema := relation.NewSchema("uid:int", "region:string", "value:float")
	purchases := relation.New("purchases", schema)
	regions := []string{"EU", "US", "APAC"}
	const physUsers = 400
	for i := 0; i < 4*physUsers; i++ {
		purchases.MustAppend(relation.Row{
			relation.Int(int64(r.Intn(physUsers))),
			relation.Str(regions[r.Intn(len(regions))]),
			relation.Float(10 + 490*r.Float64()),
		})
	}
	// ~4 purchases per user.
	scaleTo(purchases, 4*logicalUsers*bytesPerPurchase)
	cat := frontends.Catalog{
		"purchases": {Path: "in/purchases", Schema: schema},
	}
	return &Workload{
		Name: sprintf("top-shopper-%dm", logicalUsers/1_000_000),
		Build: func() (*ir.DAG, error) {
			return beer.Parse(TopShopperBEER, cat)
		},
		Inputs: map[string]*relation.Relation{"in/purchases": purchases},
		Output: "top",
	}
}
