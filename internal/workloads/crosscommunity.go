package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// CrossCommunityPageRank is the §6.3 hybrid workflow: the relative
// popularity of users present in both of two web communities. A batch phase
// intersects the two communities' edge sets, derives out-degrees and the
// initial rank vector; an iterative phase runs PageRank over the common
// subgraph. The batch phase favours general-purpose engines while the
// iterative phase favours graph engines, which is exactly what makes
// combined back-end mappings attractive.
func CrossCommunityPageRank(a, b *Graph, iterations int) *Workload {
	edgeSchema := relation.NewSchema("src:int", "dst:int")
	strip := func(g *Graph, name string) *relation.Relation {
		rel := relation.New(name, edgeSchema)
		for _, row := range g.Edges.Rows {
			rel.MustAppend(relation.Row{row[0], row[1]})
		}
		rel.LogicalBytes = g.Edges.LogicalBytes
		return rel
	}
	e1 := strip(a, "edges_a")
	e2 := strip(b, "edges_b")

	cat := frontends.Catalog{
		"edges_a": {Path: "in/cc/" + a.Name, Schema: edgeSchema},
		"edges_b": {Path: "in/cc/" + b.Name, Schema: edgeSchema},
	}
	return &Workload{
		Name: sprintf("cross-community-%s-%s", a.Name, b.Name),
		Build: func() (*ir.DAG, error) {
			bl := lindi.NewBuilder(cat)
			common := bl.From("edges_a").Intersect(bl.From("edges_b")).Named("common")
			deg := common.GroupBy([]string{"src"}).Count("degree").Done().Named("degrees")
			common.Join(deg, []string{"src"}, []string{"src"}).Named("cedges")
			common.Select("src").Distinct().
				Compute("rank", ir.ColRef("src"), ir.ArithMul, ir.LitOp(relation.Float(0))).
				Compute("rank", ir.ColRef("rank"), ir.ArithAdd, ir.LitOp(relation.Float(1))).
				SelectAs([]string{"src", "rank"}, []string{"vertex", "rank"}).
				Named("cverts")
			bl.Iterate("ccpagerank", []string{"cverts", "cedges"}, lindi.LoopSpec{
				MaxIter: iterations,
				Carried: map[string]string{"cverts": "new_cverts"},
			}, func(body *lindi.Builder) error {
				body.From("cverts").
					Join(body.From("cedges"), []string{"vertex"}, []string{"src"}).
					Compute("rank", ir.ColRef("rank"), ir.ArithDiv, ir.ColRef("degree")).
					GroupBy([]string{"dst"}).Sum("rank", "rank").Done().
					Compute("rank", ir.ColRef("rank"), ir.ArithMul, ir.LitOp(relation.Float(0.85))).
					Compute("rank", ir.ColRef("rank"), ir.ArithAdd, ir.LitOp(relation.Float(0.15))).
					SelectAs([]string{"dst", "rank"}, []string{"vertex", "rank"}).
					Named("new_cverts")
				return nil
			})
			return bl.Build()
		},
		Inputs: map[string]*relation.Relation{
			"in/cc/" + a.Name: e1,
			"in/cc/" + b.Name: e2,
		},
		Output: "ccpagerank",
	}
}
