package workloads

import (
	"math"
	"testing"

	"musketeer/internal/dfs"
	"musketeer/internal/exec"
	"musketeer/internal/ir"
)

// runWorkload stages and interprets a workload directly through the shared
// kernels (no engines), returning the output environment.
func runWorkload(t *testing.T, w *Workload) exec.Env {
	t.Helper()
	fs := dfs.New()
	if err := w.Stage(fs); err != nil {
		t.Fatal(err)
	}
	dag, err := w.Build()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if err := dag.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", w.Name, err)
	}
	env := exec.Env{}
	for path := range w.Inputs {
		rel, err := fs.ReadRelation(path)
		if err != nil {
			t.Fatal(err)
		}
		env[path] = rel
	}
	out, _, err := exec.RunDAG(dag, env)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return out
}

func TestGraphGeneratorShape(t *testing.T) {
	g := GenerateGraph("test", 1_000_000, 10_000_000, 500, 7)
	if g.Edges.NumRows() < 500 {
		t.Errorf("too few edges: %d", g.Edges.NumRows())
	}
	if g.Ranks.NumRows() != 500 {
		t.Errorf("ranks = %d", g.Ranks.NumRows())
	}
	if g.Edges.LogicalBytes != 10_000_000*bytesPerEdge {
		t.Errorf("logical edges bytes = %d", g.Edges.LogicalBytes)
	}
	// Degree column must equal the actual out-degree.
	outDeg := map[int64]int64{}
	for _, row := range g.Edges.Rows {
		outDeg[row[0].I]++
	}
	for _, row := range g.Edges.Rows {
		if row[2].I != outDeg[row[0].I] {
			t.Fatalf("vertex %d degree column %d != actual %d", row[0].I, row[2].I, outDeg[row[0].I])
		}
	}
	// Deterministic across calls.
	g2 := GenerateGraph("test", 1_000_000, 10_000_000, 500, 7)
	if g.Edges.Fingerprint() != g2.Edges.Fingerprint() {
		t.Error("graph generation not deterministic")
	}
	// Power-law-ish: max degree well above average.
	var maxDeg int64
	for _, d := range outDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.Edges.NumRows()) / 500
	if float64(maxDeg) < 3*avg {
		t.Errorf("degree distribution too uniform: max %d avg %.1f", maxDeg, avg)
	}
}

func TestNamedGraphsLogicalSizes(t *testing.T) {
	cases := []struct {
		g     *Graph
		edges int64
	}{
		{LiveJournal(), 69_000_000},
		{Orkut(), 117_000_000},
		{Twitter(), 1_400_000_000},
		{WebCommunity(), 82_000_000},
	}
	for _, c := range cases {
		if c.g.LogicalEdges != c.edges {
			t.Errorf("%s logical edges = %d", c.g.Name, c.g.LogicalEdges)
		}
		if c.g.Edges.LogicalBytes <= 0 {
			t.Errorf("%s missing logical size", c.g.Name)
		}
	}
}

func TestPageRankWorkloadRuns(t *testing.T) {
	g := GenerateGraph("tiny", 1000, 5000, 60, 8)
	w := PageRank(g, 3)
	out := runWorkload(t, w)
	pr := out["pagerank"]
	if pr.NumRows() == 0 {
		t.Fatal("empty pagerank output")
	}
	sum := 0.0
	for _, row := range pr.Rows {
		if row[1].F < 0.1499999 {
			t.Errorf("rank below damping floor: %v", row)
		}
		sum += row[1].F
	}
	if sum <= 0 {
		t.Error("degenerate ranks")
	}
}

func TestProjectMicro(t *testing.T) {
	w := ProjectMicro(gb(2))
	out := runWorkload(t, w)
	col1 := out["col1"]
	if col1.Schema.Arity() != 1 {
		t.Errorf("schema = %s", col1.Schema)
	}
	if w.InputBytes() != gb(2) {
		t.Errorf("input bytes = %d", w.InputBytes())
	}
}

func TestJoinMicros(t *testing.T) {
	asym := runWorkload(t, JoinMicroAsymmetric())
	sym := runWorkload(t, JoinMicroSymmetric())
	aj, sj := asym["joined"], sym["joined"]
	if aj.NumRows() == 0 || sj.NumRows() == 0 {
		t.Fatal("empty join outputs")
	}
	// Asymmetric join is selective; symmetric join is generative
	// (output ≫ input), as in §2.1.
	symWorkload := JoinMicroSymmetric()
	symIn := 0
	for _, rel := range symWorkload.Inputs {
		symIn += rel.NumRows()
	}
	if sj.NumRows() < 4*symIn {
		t.Errorf("symmetric join should blow up: %d rows from %d input rows", sj.NumRows(), symIn)
	}
}

func TestTPCHQ17BothFrontends(t *testing.T) {
	hiveOut := runWorkload(t, TPCHQ17(10))
	lindiOut := runWorkload(t, TPCHQ17Lindi(10))
	h, l := hiveOut["q17"], lindiOut["q17"]
	if h.NumRows() != 1 || l.NumRows() != 1 {
		t.Fatalf("q17 rows: hive %d lindi %d", h.NumRows(), l.NumRows())
	}
	// Decoupling claim: identical IR semantics regardless of front-end.
	if math.Abs(h.Rows[0][0].AsFloat()-l.Rows[0][0].AsFloat()) > 1e-6 {
		t.Errorf("hive revenue %v != lindi revenue %v", h.Rows[0][0], l.Rows[0][0])
	}
	if h.Rows[0][0].AsFloat() <= 0 {
		t.Error("zero revenue: query degenerate")
	}
}

func TestTopShopper(t *testing.T) {
	w := TopShopper(10_000_000)
	out := runWorkload(t, w)
	top := out["top"]
	if top.NumRows() == 0 {
		t.Fatal("no top shoppers found")
	}
	for _, row := range top.Rows {
		if row[1].F <= 900 {
			t.Errorf("threshold violated: %v", row)
		}
	}
}

func TestNetflixThirteenOps(t *testing.T) {
	w := Netflix(40)
	dag, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	compute := 0
	for _, op := range dag.Ops {
		if op.Type != ir.OpInput {
			compute++
		}
	}
	if compute != 13 {
		t.Errorf("netflix compute ops = %d, want 13 (paper §6.4)", compute)
	}
	out := runWorkload(t, w)
	top := out["top_recommendation"]
	if top.NumRows() == 0 {
		t.Fatal("no recommendations")
	}
	// Each user appears with their best-scored movie only.
	for _, row := range top.Rows {
		total, best := row[2].F, row[3].F
		if total < best {
			t.Errorf("non-top recommendation survived: %v", row)
		}
	}
}

func TestNetflixExtendedPrefixes(t *testing.T) {
	full := NetflixExtended(18)
	dag, err := full.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(computeOpsOf(dag)); got != 18 {
		t.Errorf("extended ops = %d, want 18", got)
	}
	for _, n := range []int{2, 5, 9, 13, 16} {
		w := NetflixExtended(n)
		d, err := w.Build()
		if err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		if got := len(computeOpsOf(d)); got != n {
			t.Errorf("prefix %d: ops = %d", n, got)
		}
	}
}

func computeOpsOf(d *ir.DAG) []*ir.Op {
	var ops []*ir.Op
	for _, op := range d.Ops {
		if op.Type != ir.OpInput {
			ops = append(ops, op)
		}
	}
	return ops
}

func TestKMeansConverges(t *testing.T) {
	w := KMeans(100_000_000, 100, 5)
	out := runWorkload(t, w)
	centers := out["kmeans"]
	if centers.NumRows() == 0 {
		t.Fatal("no centers")
	}
	if centers.Schema.Arity() != 3 {
		t.Errorf("center schema = %s", centers.Schema)
	}
	// Centers must lie within the data's bounding box after iterating.
	for _, row := range centers.Rows {
		x, y := row[1].F, row[2].F
		if x < -5 || x > 45 || y < -5 || y > 35 {
			t.Errorf("center escaped data region: %v", row)
		}
	}
}

func TestSSSPDistances(t *testing.T) {
	g := GenerateGraph("tiny", 1000, 5000, 50, 9)
	w := SSSP(g, 8)
	out := runWorkload(t, w)
	dists := out["sssp"]
	reached := 0
	for _, row := range dists.Rows {
		d := row[1].F
		if d < ssspInfinity/2 {
			reached++
			if d < 0 {
				t.Errorf("negative distance %v", row)
			}
		}
	}
	if reached < 2 {
		t.Errorf("SSSP reached only %d vertices", reached)
	}
	// Vertex 0 must have distance 0.
	for _, row := range dists.Rows {
		if row[0].I == 0 && row[1].F != 0 {
			t.Errorf("source distance = %v", row[1])
		}
	}
}

func TestCrossCommunityPageRank(t *testing.T) {
	a := GenerateGraph("a", 4_800_000, 68_000_000, 300, 21)
	b := GenerateGraph("b", 5_800_000, 82_000_000, 300, 22)
	w := CrossCommunityPageRank(a, b, 3)
	dag, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid: batch ops + an iterative graph idiom.
	hasIntersect, hasWhile := false, false
	for _, op := range dag.Ops {
		if op.Type == ir.OpIntersect {
			hasIntersect = true
		}
		if op.Type == ir.OpWhile {
			hasWhile = true
			if ir.DetectGraphIdiom(op) == nil {
				t.Error("iterative phase not detected as graph idiom")
			}
		}
	}
	if !hasIntersect || !hasWhile {
		t.Fatalf("missing phases: intersect=%v while=%v", hasIntersect, hasWhile)
	}
	out := runWorkload(t, w)
	pr := out["ccpagerank"]
	if pr.NumRows() == 0 {
		t.Fatal("empty cross-community pagerank")
	}
}

func TestTriangleCountSoundNotComplete(t *testing.T) {
	g := GenerateGraph("tri", 10000, 60000, 40, 77)
	w := TriangleCount(g)
	dag, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The §8 limitation: this graph workload is NOT detected as a graph
	// idiom (no WHILE/JOIN/GROUP-BY loop shape), so vertex-centric
	// back-ends are ineligible.
	if dag.IsGraphWorkflow() {
		t.Error("triangle counting should not match the graph idiom (idiom recognition is sound, not complete)")
	}
	out := runWorkload(t, w)
	got := out["triangle_count"].Rows[0][0].I

	// Brute force over the distinct edge set: ordered triples a→b→c→a;
	// each directed 3-cycle is counted once per rotation, exactly like
	// the query.
	edges := map[[2]int64]bool{}
	adj := map[int64][]int64{}
	for _, row := range w.Inputs["in/tri/tc_edges"].Rows {
		k := [2]int64{row[0].I, row[1].I}
		if !edges[k] {
			edges[k] = true
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	var want int64
	for a, bs := range adj {
		for _, b := range bs {
			for _, c := range adj[b] {
				if edges[[2]int64{c, a}] {
					want++
				}
			}
		}
	}
	if got != want {
		t.Errorf("triangle count = %d, want %d", got, want)
	}
	if want == 0 {
		t.Log("warning: generated graph has no triangles; test is vacuous")
	}
}

func TestConnectedComponentsConverge(t *testing.T) {
	g := GenerateGraph("cc", 10000, 40000, 60, 88)
	// Enough rounds to cover the sample graph's diameter.
	w := ConnectedComponents(g, 20)
	dag, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !dag.IsGraphWorkflow() {
		t.Error("connected components should match the graph idiom")
	}
	out := runWorkload(t, w)
	labels := out["components"]

	// Reference: union-find over the symmetrized edges.
	parent := map[int64]int64{}
	var find func(int64) int64
	find = func(x int64) int64 {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, row := range w.Inputs["in/cc/symedges"].Rows {
		union(row[0].I, row[1].I)
	}
	// Min label per component.
	minLabel := map[int64]int64{}
	for v := range parent {
		r := find(v)
		if cur, ok := minLabel[r]; !ok || v < cur {
			minLabel[r] = v
		}
	}
	for _, row := range labels.Rows {
		v, label := row[0].I, int64(row[1].F)
		if want := minLabel[find(v)]; label != want {
			t.Fatalf("vertex %d label %d, want component min %d", v, label, want)
		}
	}
}

func TestWorkloadStage(t *testing.T) {
	fs := dfs.New()
	w := TopShopper(1_000_000)
	if err := w.Stage(fs); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("in/purchases") {
		t.Error("input not staged")
	}
}
