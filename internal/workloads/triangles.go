package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/lindi"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// TriangleCount is the paper's §8 idiom-recognition counter-example: a
// graph workload expressed as two self-joins of the edge list plus a
// filter, with no WHILE/JOIN/GROUP-BY loop shape. Idiom recognition is
// sound but not complete, so Musketeer does NOT detect this as a graph
// workload — vertex-centric back-ends are ineligible and the workflow runs
// on general-purpose engines (less efficiently than a specialized
// triangle-count kernel would).
//
// The query counts directed triangles a→b→c→a over distinct vertices.
func TriangleCount(g *Graph) *Workload {
	edgeSchema := relation.NewSchema("src:int", "dst:int")
	edges := relation.New("edges", edgeSchema)
	for _, row := range g.Edges.Rows {
		edges.MustAppend(relation.Row{row[0], row[1]})
	}
	edges.LogicalBytes = g.Edges.LogicalBytes
	cat := frontends.Catalog{
		"edges": {Path: "in/" + g.Name + "/tc_edges", Schema: edgeSchema},
	}
	return &Workload{
		Name: "triangles-" + g.Name,
		Build: func() (*ir.DAG, error) {
			b := lindi.NewBuilder(cat)
			e := b.From("edges").Distinct().Named("e")
			// paths: a→b→c (join e.dst = e.src).
			paths := e.Join(b.From("e"), []string{"dst"}, []string{"src"}).Named("paths")
			// close the triangle: c→a, i.e. join paths on (r_dst=src) and
			// require dst-of-closure == src-of-path.
			// closed schema: (src, dst, r_dst, r_r_dst) — the last column
			// is the closure edge's endpoint, which must equal the path's
			// starting vertex.
			closed := paths.Join(b.From("e"), []string{"r_dst"}, []string{"src"}).Named("closed")
			closed.
				Where(ir.Cmp(ir.ColRef("r_r_dst"), ir.CmpEq, ir.ColRef("src"))).
				GroupBy(nil).Count("triangles").Done().
				Named("triangle_count")
			return b.Build()
		},
		Inputs: map[string]*relation.Relation{"in/" + g.Name + "/tc_edges": edges},
		Output: "triangle_count",
	}
}
