package workloads

import (
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/gas"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// SSSPGAS expresses single-source shortest paths as min-plus propagation in
// the GAS DSL: scatter adds the edge cost to the source's distance, gather
// keeps the minimum incoming distance. Zero-cost self-loops preserve
// settled distances between rounds.
const SSSPGAS = `
GATHER = {
    MIN(vertex_value)
}
APPLY = { }
SCATTER = {
    SUM [vertex_value, cost]
}
ITERATION_STOP = (iteration < %d)
`

// ssspInfinity stands for "unreached" in the distance relation.
const ssspInfinity = 1e18

// SSSP builds the §6.7 SSSP workload over a graph extended with edge costs
// ("the input for SSSP was the Twitter graph extended with costs").
func SSSP(g *Graph, iterations int) *Workload {
	r := rng(60)
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int", "cost:float"))
	maxVertex := int64(0)
	for _, row := range g.Edges.Rows {
		edges.MustAppend(relation.Row{row[0], row[1], relation.Float(1 + 9*r.Float64())})
		if row[0].I > maxVertex {
			maxVertex = row[0].I
		}
		if row[1].I > maxVertex {
			maxVertex = row[1].I
		}
	}
	for v := int64(0); v <= maxVertex; v++ {
		edges.MustAppend(relation.Row{relation.Int(v), relation.Int(v), relation.Float(0)})
	}
	scaleTo(edges, g.LogicalEdges*(bytesPerEdge+6))

	dists := relation.New("vertices", relation.NewSchema("vertex:int", "vertex_value:float"))
	for v := int64(0); v <= maxVertex; v++ {
		d := ssspInfinity
		if v == 0 {
			d = 0
		}
		dists.MustAppend(relation.Row{relation.Int(v), relation.Float(d)})
	}
	scaleTo(dists, g.LogicalVertices*bytesPerVertex)

	cat := frontends.Catalog{
		"vertices": {Path: "in/" + g.Name + "/dists", Schema: dists.Schema},
		"edges":    {Path: "in/" + g.Name + "/cedges", Schema: edges.Schema},
	}
	src := sprintf(SSSPGAS, iterations)
	return &Workload{
		Name: "sssp-" + g.Name,
		Build: func() (*ir.DAG, error) {
			return gas.Parse(src, cat, gas.Config{Vertices: "vertices", Edges: "edges", Output: "sssp"})
		},
		Inputs: map[string]*relation.Relation{
			"in/" + g.Name + "/dists":  dists,
			"in/" + g.Name + "/cedges": edges,
		},
		Output: "sssp",
	}
}
