package workloads

import (
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// ProjectMicro is the §2.1 input-size micro-benchmark: extract one column
// from a space-separated two-column ASCII input (a PROJECT in SQL terms,
// reminiscent of log-analysis batch jobs). logicalBytes sets the input size
// (the paper sweeps 128 MB – 32 GB).
func ProjectMicro(logicalBytes int64) *Workload {
	r := rng(10)
	lines := relation.New("lines", relation.NewSchema("c1:string", "c2:string"))
	letters := []rune("abcdefghijklmnopqrstuvwxyz0123456789")
	word := func(n int) string {
		out := make([]rune, n)
		for i := range out {
			out[i] = letters[r.Intn(len(letters))]
		}
		return string(out)
	}
	for i := 0; i < 800; i++ {
		lines.MustAppend(relation.Row{relation.Str(word(12)), relation.Str(word(20))})
	}
	scaleTo(lines, logicalBytes)
	return &Workload{
		Name: "project-micro",
		Build: func() (*ir.DAG, error) {
			d := ir.NewDAG()
			in := d.AddInput("lines", "in/lines", lines.Schema)
			d.Add(ir.OpProject, "col1", ir.Params{Columns: []string{"c1"}}, in)
			return d, d.Validate()
		},
		Inputs: map[string]*relation.Relation{"in/lines": lines},
		Output: "col1",
	}
}

// JoinMicroAsymmetric is the §2.1 input-skewed join: the LiveJournal
// vertex set (4.8 M rows) joined with its edge set (69 M rows), producing
// only 1.28 M rows / 1.9 GB.
func JoinMicroAsymmetric() *Workload {
	g := LiveJournal()
	vertices := relation.New("vertices", relation.NewSchema("id:int", "label:string"))
	for _, row := range g.Ranks.Rows {
		vertices.MustAppend(relation.Row{row[0], relation.Str("v")})
	}
	scaleTo(vertices, g.LogicalVertices*bytesPerVertex)
	// Plain (src, dst) edge list, as the paper's join reads it.
	edges := relation.New("edges", relation.NewSchema("src:int", "dst:int"))
	for _, row := range g.Edges.Rows {
		edges.MustAppend(relation.Row{row[0], row[1]})
	}
	scaleTo(edges, g.LogicalEdges*bytesPerEdge)
	return &Workload{
		Name: "join-asymmetric",
		Build: func() (*ir.DAG, error) {
			d := ir.NewDAG()
			v := d.AddInput("vertices", "in/ljverts", vertices.Schema)
			e := d.AddInput("edges", "in/ljedges", edges.Schema)
			d.Add(ir.OpJoin, "joined", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"src"}}, v, e)
			return d, d.Validate()
		},
		Inputs: map[string]*relation.Relation{"in/ljverts": vertices, "in/ljedges": edges},
		Output: "joined",
	}
}

// JoinMicroAsymmetricStaged is the §2.1 join as an average programmer
// writes it (§7): each input first staged through an identity pass, then
// joined — two extra operators that Musketeer's merged plan avoids.
func JoinMicroAsymmetricStaged() *Workload {
	base := JoinMicroAsymmetric()
	return &Workload{
		Name: "join-asymmetric-staged",
		Build: func() (*ir.DAG, error) {
			d := ir.NewDAG()
			l := d.AddInput("vertices", "in/ljverts", base.Inputs["in/ljverts"].Schema)
			r := d.AddInput("edges", "in/ljedges", base.Inputs["in/ljedges"].Schema)
			ls := d.Add(ir.OpProject, "verts_staged", ir.Params{Columns: []string{"id", "label"}}, l)
			rs := d.Add(ir.OpProject, "edges_staged", ir.Params{Columns: []string{"src", "dst"}}, r)
			d.Add(ir.OpJoin, "joined", ir.Params{LeftCols: []string{"id"}, RightCols: []string{"src"}}, ls, rs)
			return d, d.Validate()
		},
		Inputs: base.Inputs,
		Output: "joined",
	}
}

// JoinMicroSymmetric is the §2.1 symmetric join of two uniformly random
// 39 M-row data sets producing 1.5 B rows / 29 GB.
func JoinMicroSymmetric() *Workload {
	r := rng(11)
	mk := func(name string, seedCol string) *relation.Relation {
		rel := relation.New(name, relation.NewSchema("k:int", seedCol+":int"))
		for i := 0; i < 1500; i++ {
			// ~38 distinct keys over 1500 rows → ~40 matches per key per
			// side, so the join output is ~40× its input, like the
			// paper's 39 M→1.5 B blow-up.
			rel.MustAppend(relation.Row{relation.Int(int64(r.Intn(38))), relation.Int(int64(i))})
		}
		scaleTo(rel, mb(720)) // 39 M rows × ~18 B
		return rel
	}
	left, right := mk("left", "v"), mk("right", "w")
	return &Workload{
		Name: "join-symmetric",
		Build: func() (*ir.DAG, error) {
			d := ir.NewDAG()
			l := d.AddInput("left", "in/jleft", left.Schema)
			rr := d.AddInput("right", "in/jright", right.Schema)
			d.Add(ir.OpJoin, "joined", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, l, rr)
			return d, d.Validate()
		},
		Inputs: map[string]*relation.Relation{"in/jleft": left, "in/jright": right},
		Output: "joined",
	}
}
