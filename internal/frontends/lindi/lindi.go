// Package lindi implements a LINQ-style programmatic front-end, mirroring
// how Lindi exposes declarative operators over Naiad collections (paper
// §4.1.1). Workflows are built by chaining query methods off From; Build
// assembles the IR DAG:
//
//	b := lindi.NewBuilder(catalog)
//	locs := b.From("properties").Select("id", "street", "town").Named("locs")
//	top := locs.Join(b.From("prices"), []string{"id"}, []string{"id"}).
//	    GroupBy([]string{"street", "town"}).Max("price", "max_price").
//	    Named("street_price")
//	dag, err := b.Build()
//
// Unlike the textual DSLs, Lindi queries also support iteration via
// Builder.Iterate, which mirrors Naiad's fixed-point loops.
package lindi

import (
	"fmt"

	// Linking the analyzer makes dag.Validate() report every diagnostic
	// of the workflow (multi-error, with provenance), not just the first.
	_ "musketeer/internal/analysis"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Builder accumulates a workflow DAG.
type Builder struct {
	cat  frontends.Catalog
	dag  *ir.DAG
	rels map[string]*ir.Op
	tmp  int
	err  error
}

// NewBuilder returns a builder resolving base tables against cat.
func NewBuilder(cat frontends.Catalog) *Builder {
	return &Builder{cat: cat, dag: ir.NewDAG(), rels: map[string]*ir.Op{}}
}

// Query is a handle to a relation under construction.
type Query struct {
	b  *Builder
	op *ir.Op
}

func (b *Builder) fail(err error) *Query {
	if b.err == nil {
		b.err = err
	}
	return &Query{b: b}
}

func (b *Builder) fresh(kind string) string {
	b.tmp++
	return fmt.Sprintf("__lindi_%s_%d", kind, b.tmp)
}

// From starts a query over a catalogued base table (or a relation already
// named with Named).
func (b *Builder) From(table string) *Query {
	if op, ok := b.rels[table]; ok {
		return &Query{b: b, op: op}
	}
	tbl, ok := b.cat[table]
	if !ok {
		return b.fail(fmt.Errorf("lindi: unknown table %q", table))
	}
	op := b.dag.AddInput(table, tbl.Path, tbl.Schema)
	b.rels[table] = op
	return &Query{b: b, op: op}
}

// Build validates and returns the DAG.
func (b *Builder) Build() (*ir.DAG, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.dag.Ops) == 0 {
		return nil, fmt.Errorf("lindi: empty workflow")
	}
	// Programmatic builder: no source lines, but diagnostics still name
	// the originating front-end.
	b.dag.StampProv("lindi", 0, 0)
	if err := b.dag.Validate(); err != nil {
		return nil, fmt.Errorf("lindi: %w", err)
	}
	return b.dag, nil
}

func (q *Query) add(t ir.OpType, params ir.Params, extra ...*ir.Op) *Query {
	if q.b.err != nil || q.op == nil {
		return q
	}
	inputs := append([]*ir.Op{q.op}, extra...)
	op := q.b.dag.Add(t, q.b.fresh(t.String()), params, inputs...)
	return &Query{b: q.b, op: op}
}

// Named assigns the query's current relation a stable name; named relations
// are the workflow's visible results and can be referenced by From.
func (q *Query) Named(name string) *Query {
	if q.b.err != nil || q.op == nil {
		return q
	}
	if _, ok := q.b.rels[name]; ok {
		q.b.err = fmt.Errorf("lindi: relation %q redefined", name)
		return q
	}
	q.op.Out = name
	q.b.rels[name] = q.op
	return q
}

// Op exposes the underlying IR operator (for Iterate wiring).
func (q *Query) Op() *ir.Op { return q.op }

// Where filters by a predicate.
func (q *Query) Where(pred *ir.Pred) *Query {
	return q.add(ir.OpSelect, ir.Params{Pred: pred})
}

// Select projects columns.
func (q *Query) Select(cols ...string) *Query {
	return q.add(ir.OpProject, ir.Params{Columns: cols})
}

// SelectAs projects columns with renaming; as must match cols in length.
func (q *Query) SelectAs(cols, as []string) *Query {
	return q.add(ir.OpProject, ir.Params{Columns: cols, As: as})
}

// Join equi-joins with another query.
func (q *Query) Join(other *Query, leftCols, rightCols []string) *Query {
	if other.b != q.b {
		return q.b.fail(fmt.Errorf("lindi: join across builders"))
	}
	return q.add(ir.OpJoin, ir.Params{LeftCols: leftCols, RightCols: rightCols}, other.op)
}

// Cross computes the Cartesian product.
func (q *Query) Cross(other *Query) *Query {
	return q.add(ir.OpCrossJoin, ir.Params{}, other.op)
}

// Union concatenates (bag semantics).
func (q *Query) Union(other *Query) *Query {
	return q.add(ir.OpUnion, ir.Params{}, other.op)
}

// Intersect keeps common rows (set semantics).
func (q *Query) Intersect(other *Query) *Query {
	return q.add(ir.OpIntersect, ir.Params{}, other.op)
}

// Except keeps rows absent from other (set semantics).
func (q *Query) Except(other *Query) *Query {
	return q.add(ir.OpDifference, ir.Params{}, other.op)
}

// Distinct removes duplicates.
func (q *Query) Distinct() *Query {
	return q.add(ir.OpDistinct, ir.Params{})
}

// Grouping is an aggregation under construction.
type Grouping struct {
	q    *Query
	keys []string
	aggs []ir.AggSpec
}

// GroupBy starts an aggregation over key columns (empty = whole relation).
func (q *Query) GroupBy(keys []string) *Grouping {
	return &Grouping{q: q, keys: keys}
}

// Sum adds SUM(col) AS as; returns the grouping for further aggregates.
func (g *Grouping) Sum(col, as string) *Grouping {
	g.aggs = append(g.aggs, ir.AggSpec{Func: ir.AggSum, Col: col, As: as})
	return g
}

// Count adds COUNT(*) AS as.
func (g *Grouping) Count(as string) *Grouping {
	g.aggs = append(g.aggs, ir.AggSpec{Func: ir.AggCount, As: as})
	return g
}

// Min adds MIN(col) AS as.
func (g *Grouping) Min(col, as string) *Grouping {
	g.aggs = append(g.aggs, ir.AggSpec{Func: ir.AggMin, Col: col, As: as})
	return g
}

// Max adds MAX(col) AS as.
func (g *Grouping) Max(col, as string) *Grouping {
	g.aggs = append(g.aggs, ir.AggSpec{Func: ir.AggMax, Col: col, As: as})
	return g
}

// Avg adds AVG(col) AS as.
func (g *Grouping) Avg(col, as string) *Grouping {
	g.aggs = append(g.aggs, ir.AggSpec{Func: ir.AggAvg, Col: col, As: as})
	return g
}

// Done materializes the aggregation as a query.
func (g *Grouping) Done() *Query {
	return g.q.add(ir.OpAgg, ir.Params{GroupBy: g.keys, Aggs: g.aggs})
}

// OrderBy sorts by key columns.
func (q *Query) OrderBy(desc bool, cols ...string) *Query {
	return q.add(ir.OpSort, ir.Params{SortBy: cols, Desc: desc})
}

// Limit keeps the first n rows.
func (q *Query) Limit(n int) *Query {
	return q.add(ir.OpLimit, ir.Params{Limit: n})
}

// Compute applies column algebra: dst = lhs op rhs (in place when dst is an
// existing column, appended otherwise).
func (q *Query) Compute(dst string, lhs ir.Operand, op ir.ArithOp, rhs ir.Operand) *Query {
	return q.add(ir.OpArith, ir.Params{Dst: dst, ALeft: lhs, ARght: rhs, AOp: op})
}

// Apply invokes a registered UDF over this query (and optional extras).
func (q *Query) Apply(udfName string, extra ...*Query) *Query {
	ops := make([]*ir.Op, len(extra))
	for i, e := range extra {
		ops[i] = e.op
	}
	return q.add(ir.OpUDF, ir.Params{UDFName: udfName}, ops...)
}

// LoopSpec configures Builder.Iterate.
type LoopSpec struct {
	// MaxIter bounds the loop (must be positive unless UntilEmpty is set).
	MaxIter int
	// UntilEmpty optionally names a body relation; iteration stops when it
	// becomes empty.
	UntilEmpty string
	// Carried maps body input relation names to body output relation
	// names rebound between iterations.
	Carried map[string]string
}

// Iterate adds a WHILE operator named `out` whose body is built by fn.
// fn receives a fresh body builder whose From resolves loop inputs: any
// table name that matches an outer named relation (or catalog table) given
// in `inputs` becomes a loop input. The WHILE's result is the carried
// output relation.
func (b *Builder) Iterate(out string, inputs []string, spec LoopSpec, fn func(body *Builder) error) *Query {
	if b.err != nil {
		return &Query{b: b}
	}
	var outerOps []*ir.Op
	bodyBuilder := NewBuilder(b.cat)
	for _, name := range inputs {
		outerOp, ok := b.rels[name]
		if !ok {
			if tbl, okCat := b.cat[name]; okCat {
				outerOp = b.dag.AddInput(name, tbl.Path, tbl.Schema)
				b.rels[name] = outerOp
			} else {
				return b.fail(fmt.Errorf("lindi: loop input %q unknown", name))
			}
		}
		outerOps = append(outerOps, outerOp)
		bridge := bodyBuilder.dag.AddInput(name, "", relation.Schema{})
		bodyBuilder.rels[name] = bridge
	}
	if err := fn(bodyBuilder); err != nil {
		return b.fail(err)
	}
	if bodyBuilder.err != nil {
		return b.fail(bodyBuilder.err)
	}
	w := b.dag.Add(ir.OpWhile, out, ir.Params{
		Body:    bodyBuilder.dag,
		MaxIter: spec.MaxIter,
		CondRel: spec.UntilEmpty,
		Carried: spec.Carried,
	}, outerOps...)
	b.rels[out] = w
	return &Query{b: b, op: w}
}
