package lindi

import (
	"math"
	"testing"

	"musketeer/internal/exec"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func catalog() frontends.Catalog {
	return frontends.Catalog{
		"properties": {Path: "in/properties", Schema: relation.NewSchema("id:int", "street:string", "town:string")},
		"prices":     {Path: "in/prices", Schema: relation.NewSchema("id:int", "price:float")},
		"vertices":   {Path: "in/vertices", Schema: relation.NewSchema("vertex:int", "rank:float")},
		"edges":      {Path: "in/edges", Schema: relation.NewSchema("src:int", "dst:int", "degree:int")},
	}
}

func TestMaxPropertyPriceBuilder(t *testing.T) {
	b := NewBuilder(catalog())
	locs := b.From("properties").Select("id", "street", "town").Named("locs")
	locs.Join(b.From("prices"), []string{"id"}, []string{"id"}).Named("id_price").
		GroupBy([]string{"street", "town"}).Max("price", "max_price").Done().
		Named("street_price")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("street_price").Type != ir.OpAgg {
		t.Errorf("street_price: %v", dag.ByOut("street_price"))
	}
	if dag.ByOut("id_price").Type != ir.OpJoin {
		t.Errorf("id_price: %v", dag.ByOut("id_price"))
	}
}

func TestWhereComputeDistinct(t *testing.T) {
	b := NewBuilder(catalog())
	b.From("prices").
		Where(ir.Cmp(ir.ColRef("price"), ir.CmpGt, ir.LitOp(relation.Float(100)))).
		Compute("vat", ir.ColRef("price"), ir.ArithMul, ir.LitOp(relation.Float(0.2))).
		Distinct().
		Named("taxed")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := dag.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	out := dag.ByOut("taxed")
	if schemas[out].Index("vat") < 0 {
		t.Errorf("schema = %s", schemas[out])
	}
}

func TestSetOps(t *testing.T) {
	b := NewBuilder(catalog())
	a := b.From("prices").Select("id").Named("a1")
	c := b.From("properties").Select("id").Named("c1")
	a.Union(c).Named("u")
	b.From("a1").Intersect(b.From("c1")).Named("i")
	b.From("a1").Except(b.From("c1")).Named("d")
	b.From("a1").Cross(b.From("c1")).Named("x")
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, typ := range map[string]ir.OpType{"u": ir.OpUnion, "i": ir.OpIntersect, "d": ir.OpDifference, "x": ir.OpCrossJoin} {
		if op := dag.ByOut(name); op == nil || op.Type != typ {
			t.Errorf("%s = %v", name, op)
		}
	}
}

func TestIteratePageRank(t *testing.T) {
	b := NewBuilder(catalog())
	b.Iterate("final", []string{"vertices", "edges"}, LoopSpec{
		MaxIter: 5,
		Carried: map[string]string{"vertices": "new_vertices"},
	}, func(body *Builder) error {
		body.From("vertices").
			Join(body.From("edges"), []string{"vertex"}, []string{"src"}).
			Compute("rank", ir.ColRef("rank"), ir.ArithDiv, ir.ColRef("degree")).
			GroupBy([]string{"dst"}).Sum("rank", "rank").Done().
			Compute("rank", ir.ColRef("rank"), ir.ArithMul, ir.LitOp(relation.Float(0.85))).
			Compute("rank", ir.ColRef("rank"), ir.ArithAdd, ir.LitOp(relation.Float(0.15))).
			SelectAs([]string{"dst", "rank"}, []string{"vertex", "rank"}).
			Named("new_vertices")
		return nil
	})
	dag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("final")
	if w.Type != ir.OpWhile || ir.DetectGraphIdiom(w) == nil {
		t.Fatalf("bad while: %v", w)
	}

	edges := relation.New("edges", catalog()["edges"].Schema)
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	vertices := relation.New("vertices", catalog()["vertices"].Schema)
	vertices.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	vertices.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	env, _, err := exec.RunDAG(dag, exec.Env{"vertices": vertices, "edges": edges})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range env["final"].Rows {
		if math.Abs(r[1].F-1.0) > 1e-9 {
			t.Errorf("rank = %v", r)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(catalog())
	b.From("nope")
	if _, err := b.Build(); err == nil {
		t.Error("unknown table accepted")
	}

	b2 := NewBuilder(catalog())
	b2.From("prices").Select("id").Named("x")
	b2.From("properties").Select("id").Named("x")
	if _, err := b2.Build(); err == nil {
		t.Error("redefinition accepted")
	}

	b3 := NewBuilder(catalog())
	if _, err := b3.Build(); err == nil {
		t.Error("empty workflow accepted")
	}

	b4 := NewBuilder(catalog())
	b4.Iterate("w", []string{"missing"}, LoopSpec{MaxIter: 2}, func(body *Builder) error { return nil })
	if _, err := b4.Build(); err == nil {
		t.Error("unknown loop input accepted")
	}

	b5 := NewBuilder(catalog())
	other := NewBuilder(catalog())
	b5.From("prices").Join(other.From("properties"), []string{"id"}, []string{"id"})
	if _, err := b5.Build(); err == nil {
		t.Error("cross-builder join accepted")
	}
}

func TestErrorsShortCircuitChaining(t *testing.T) {
	b := NewBuilder(catalog())
	// Every call after the failure must be a safe no-op.
	b.From("nope").Select("a").Where(nil).Distinct().Named("x")
	if _, err := b.Build(); err == nil {
		t.Error("error lost during chaining")
	}
}
