package frontends

import (
	"testing"

	"musketeer/internal/relation"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lex := NewLexer(src)
	var toks []Token
	for {
		tok, err := lex.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == TokEOF {
			return toks
		}
		toks = append(toks, tok)
	}
}

func TestLexerBasics(t *testing.T) {
	toks := lexAll(t, `SELECT id, price FROM t WHERE x >= 1.5 AND s == "hi"; # comment`)
	kinds := []TokKind{TokIdent, TokIdent, TokSymbol, TokIdent, TokIdent, TokIdent, TokIdent, TokIdent, TokSymbol, TokNumber, TokIdent, TokIdent, TokSymbol, TokString, TokSymbol}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexerQualifiedAndNumbers(t *testing.T) {
	toks := lexAll(t, "locs.id 0.85 -3 1e6 'str'")
	if toks[0].Text != "locs.id" || toks[0].Kind != TokIdent {
		t.Errorf("qualified ident = %v", toks[0])
	}
	if toks[1].Kind != TokNumber || toks[2].Kind != TokNumber || toks[3].Kind != TokNumber {
		t.Errorf("numbers = %v", toks[1:4])
	}
	if toks[4].Kind != TokString || toks[4].Text != "str" {
		t.Errorf("single-quoted string = %v", toks[4])
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"multi\nline\"", "@"} {
		lex := NewLexer(src)
		var err error
		for i := 0; i < 10; i++ {
			var tok Token
			tok, err = lex.Next()
			if err != nil || tok.Kind == TokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lex %q: no error", src)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, "# full line\nx # trailing\ny")
	if len(toks) != 2 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("comments not skipped: %v", toks)
	}
	if toks[1].Line != 3 {
		t.Errorf("line tracking: %d", toks[1].Line)
	}
}

func TestPeekAcceptExpect(t *testing.T) {
	lex := NewLexer("FROM table ;")
	p1, _ := lex.Peek()
	p2, _ := lex.Peek()
	if p1 != p2 {
		t.Error("double peek differs")
	}
	if !lex.Accept(TokIdent, "from") {
		t.Error("case-insensitive accept failed")
	}
	if lex.Accept(TokIdent, "nope") {
		t.Error("accept consumed wrong token")
	}
	if _, err := lex.Expect(TokIdent, "table"); err != nil {
		t.Error(err)
	}
	if _, err := lex.Expect(TokSymbol, ","); err == nil {
		t.Error("expect should fail on ';'")
	}
}

func TestParseLiteral(t *testing.T) {
	v, err := ParseLiteral(Token{Kind: TokNumber, Text: "42"})
	if err != nil || !v.Equal(relation.Int(42)) {
		t.Errorf("int literal = %v, %v", v, err)
	}
	v, err = ParseLiteral(Token{Kind: TokNumber, Text: "0.85"})
	if err != nil || !v.Equal(relation.Float(0.85)) {
		t.Errorf("float literal = %v, %v", v, err)
	}
	v, err = ParseLiteral(Token{Kind: TokString, Text: "x"})
	if err != nil || !v.Equal(relation.Str("x")) {
		t.Errorf("string literal = %v, %v", v, err)
	}
	if _, err := ParseLiteral(Token{Kind: TokSymbol, Text: ";"}); err == nil {
		t.Error("symbol accepted as literal")
	}
}

func TestStripQualifier(t *testing.T) {
	if StripQualifier("locs.id") != "id" {
		t.Error("qualifier not stripped")
	}
	if StripQualifier("id") != "id" {
		t.Error("bare name changed")
	}
}
