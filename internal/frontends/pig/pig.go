// Package pig implements a Pig Latin front-end subset. Pig is one of the
// front-end frameworks the paper's introduction motivates (up to 80 % of
// production jobs arrive through Pig/Hive-class front-ends, §3); this
// package is the worked example of the paper's front-end extensibility
// claim — adding a framework means providing translation logic from its
// constructs to the IR, nothing else changes.
//
// Supported statements:
//
//	locs  = FOREACH properties GENERATE id, street, town;
//	eu    = FILTER purchases BY region == 'EU' AND value > 10;
//	j     = JOIN locs BY id, prices BY id;
//	g     = GROUP j BY (street, town);
//	best  = FOREACH g GENERATE group, MAX(j.price) AS max_price;
//	u     = UNION a, b;
//	d     = DISTINCT a;
//
// As in Pig, GROUP produces a bag which a following FOREACH ... GENERATE
// group, AGG(bag.col) collapses; the pair translates to one IR aggregation
// (Pig relies on exactly this shape to delineate MapReduce jobs, §9).
// FOREACH may also GENERATE arithmetic: `GENERATE id, price * 0.2 AS tax`.
package pig

import (
	"fmt"
	"strings"

	// Linking the analyzer makes dag.Validate() report every diagnostic
	// of the workflow (multi-error, with provenance), not just the first.
	_ "musketeer/internal/analysis"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
)

type parser struct {
	lex  *frontends.Lexer
	cat  frontends.Catalog
	dag  *ir.DAG
	rels map[string]*ir.Op
	// groups remembers GROUP statements awaiting their FOREACH: alias ->
	// (input op, key columns).
	groups map[string]groupInfo
	tmp    int
}

type groupInfo struct {
	input *ir.Op
	keys  []string
}

// Parse translates a Pig Latin workflow into an IR DAG.
func Parse(src string, cat frontends.Catalog) (*ir.DAG, error) {
	p := &parser{
		lex: frontends.NewLexer(src), cat: cat,
		dag: ir.NewDAG(), rels: map[string]*ir.Op{}, groups: map[string]groupInfo{},
	}
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == frontends.TokEOF {
			break
		}
		mark := len(p.dag.Ops)
		if err := p.statement(); err != nil {
			return nil, err
		}
		// Stamp every operator the statement added with its source line so
		// analyzer diagnostics point back at the workflow text.
		p.dag.StampProv("pig", t.Line, mark)
	}
	if len(p.dag.Ops) == 0 {
		return nil, fmt.Errorf("pig: empty workflow")
	}
	for alias := range p.groups {
		return nil, fmt.Errorf("pig: GROUP %q has no consuming FOREACH", alias)
	}
	if err := p.dag.Validate(); err != nil {
		return nil, fmt.Errorf("pig: %w", err)
	}
	return p.dag, nil
}

func (p *parser) statement() error {
	alias, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "="); err != nil {
		return err
	}
	kw, err := p.ident()
	if err != nil {
		return err
	}
	switch strings.ToUpper(kw) {
	case "FOREACH":
		return p.foreachStmt(alias)
	case "FILTER":
		return p.filterStmt(alias)
	case "JOIN":
		return p.joinStmt(alias)
	case "GROUP":
		return p.groupStmt(alias)
	case "UNION":
		return p.binary(alias, ir.OpUnion)
	case "DISTINCT":
		return p.distinctStmt(alias)
	default:
		return fmt.Errorf("pig: unknown operator %q", kw)
	}
}

func (p *parser) ident() (string, error) {
	t, err := p.lex.Next()
	if err != nil {
		return "", err
	}
	if t.Kind != frontends.TokIdent {
		return "", fmt.Errorf("pig: line %d: expected identifier, got %q", t.Line, t.Text)
	}
	return t.Text, nil
}

func (p *parser) resolve(name string) (*ir.Op, error) {
	if op, ok := p.rels[name]; ok {
		return op, nil
	}
	if tbl, ok := p.cat[name]; ok {
		op := p.dag.AddInput(name, tbl.Path, tbl.Schema)
		p.rels[name] = op
		return op, nil
	}
	return nil, fmt.Errorf("pig: unknown relation %q", name)
}

func (p *parser) define(alias string, op *ir.Op) error {
	if _, ok := p.rels[alias]; ok {
		return fmt.Errorf("pig: alias %q redefined", alias)
	}
	p.rels[alias] = op
	_, err := p.lex.Expect(frontends.TokSymbol, ";")
	return err
}

func (p *parser) fresh(base string) string {
	p.tmp++
	return fmt.Sprintf("__pig_%s_%d", base, p.tmp)
}

// filterStmt: FILTER rel BY pred
func (p *parser) filterStmt(alias string) error {
	relName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(relName)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
		return err
	}
	pred, err := p.predicate()
	if err != nil {
		return err
	}
	return p.define(alias, p.dag.Add(ir.OpSelect, alias, ir.Params{Pred: pred}, src))
}

// joinStmt: JOIN a BY col, b BY col
func (p *parser) joinStmt(alias string) error {
	lName, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
		return err
	}
	lCol, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ","); err != nil {
		return err
	}
	rName, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
		return err
	}
	rCol, err := p.ident()
	if err != nil {
		return err
	}
	left, err := p.resolve(lName)
	if err != nil {
		return err
	}
	right, err := p.resolve(rName)
	if err != nil {
		return err
	}
	return p.define(alias, p.dag.Add(ir.OpJoin, alias, ir.Params{
		LeftCols:  []string{frontends.StripQualifier(lCol)},
		RightCols: []string{frontends.StripQualifier(rCol)},
	}, left, right))
}

// groupStmt: GROUP rel BY col | GROUP rel BY (col, col)
// The statement is deferred: it materializes when its FOREACH arrives.
func (p *parser) groupStmt(alias string) error {
	relName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(relName)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
		return err
	}
	var keys []string
	if p.lex.Accept(frontends.TokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return err
			}
			keys = append(keys, frontends.StripQualifier(c))
			if !p.lex.Accept(frontends.TokSymbol, ",") {
				break
			}
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
			return err
		}
	} else {
		c, err := p.ident()
		if err != nil {
			return err
		}
		keys = append(keys, frontends.StripQualifier(c))
	}
	if _, ok := p.groups[alias]; ok || p.rels[alias] != nil {
		return fmt.Errorf("pig: alias %q redefined", alias)
	}
	p.groups[alias] = groupInfo{input: src, keys: keys}
	_, err = p.lex.Expect(frontends.TokSymbol, ";")
	return err
}

// foreachStmt: FOREACH rel GENERATE item [, item ...]
// Over a GROUP alias, items are `group` and aggregates; over a plain
// relation, items are columns (with optional rename) and arithmetic.
func (p *parser) foreachStmt(alias string) error {
	relName, err := p.ident()
	if err != nil {
		return err
	}
	if gi, ok := p.groups[relName]; ok {
		delete(p.groups, relName)
		return p.foreachOverGroup(alias, gi)
	}
	src, err := p.resolve(relName)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "GENERATE"); err != nil {
		return err
	}
	cur := src
	var cols, renames []string
	renamed := false
	for {
		col, err := p.ident()
		if err != nil {
			return err
		}
		col = frontends.StripQualifier(col)
		// Arithmetic item: col OP operand [AS name].
		if sym, _ := p.lex.Peek(); sym.Kind == frontends.TokSymbol && strings.ContainsAny(sym.Text, "+-*/") && len(sym.Text) == 1 {
			p.lex.Next()
			operand, err := p.operand()
			if err != nil {
				return err
			}
			dst := col
			if p.lex.Accept(frontends.TokIdent, "AS") {
				dst, err = p.ident()
				if err != nil {
					return err
				}
			}
			cur = p.dag.Add(ir.OpArith, p.fresh(alias), ir.Params{
				Dst: dst, ALeft: ir.ColRef(col), ARght: operand, AOp: arithOpOf(sym.Text),
			}, cur)
			cols = append(cols, dst)
			renames = append(renames, dst)
			if !p.lex.Accept(frontends.TokSymbol, ",") {
				break
			}
			continue
		}
		name := col
		if p.lex.Accept(frontends.TokIdent, "AS") {
			name, err = p.ident()
			if err != nil {
				return err
			}
			renamed = true
		}
		cols = append(cols, col)
		renames = append(renames, name)
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	params := ir.Params{Columns: cols}
	if renamed {
		params.As = renames
	}
	return p.define(alias, p.dag.Add(ir.OpProject, alias, params, cur))
}

// foreachOverGroup: FOREACH g GENERATE group, AGG(rel.col) AS name, ...
func (p *parser) foreachOverGroup(alias string, gi groupInfo) error {
	if _, err := p.lex.Expect(frontends.TokIdent, "GENERATE"); err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "group"); err != nil {
		return err
	}
	var aggs []ir.AggSpec
	for p.lex.Accept(frontends.TokSymbol, ",") {
		fnName, err := p.ident()
		if err != nil {
			return err
		}
		fn, ok := aggFuncOf(fnName)
		if !ok {
			return fmt.Errorf("pig: unknown aggregate %q", fnName)
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, "("); err != nil {
			return err
		}
		col := ""
		if !p.lex.Accept(frontends.TokSymbol, "*") {
			c, err := p.ident()
			if err != nil {
				return err
			}
			col = frontends.StripQualifier(c)
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
			return err
		}
		as := strings.ToLower(fnName) + "_" + col
		if col == "" {
			as = "count"
		}
		if p.lex.Accept(frontends.TokIdent, "AS") {
			as, err = p.ident()
			if err != nil {
				return err
			}
		}
		aggs = append(aggs, ir.AggSpec{Func: fn, Col: col, As: as})
	}
	if len(aggs) == 0 {
		return fmt.Errorf("pig: FOREACH over GROUP %s needs at least one aggregate", alias)
	}
	return p.define(alias, p.dag.Add(ir.OpAgg, alias, ir.Params{GroupBy: gi.keys, Aggs: aggs}, gi.input))
}

func (p *parser) binary(alias string, t ir.OpType) error {
	lName, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ","); err != nil {
		return err
	}
	rName, err := p.ident()
	if err != nil {
		return err
	}
	l, err := p.resolve(lName)
	if err != nil {
		return err
	}
	r, err := p.resolve(rName)
	if err != nil {
		return err
	}
	return p.define(alias, p.dag.Add(t, alias, ir.Params{}, l, r))
}

func (p *parser) distinctStmt(alias string) error {
	relName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(relName)
	if err != nil {
		return err
	}
	return p.define(alias, p.dag.Add(ir.OpDistinct, alias, ir.Params{}, src))
}

func (p *parser) operand() (ir.Operand, error) {
	t, err := p.lex.Next()
	if err != nil {
		return ir.Operand{}, err
	}
	switch t.Kind {
	case frontends.TokIdent:
		return ir.ColRef(frontends.StripQualifier(t.Text)), nil
	case frontends.TokNumber, frontends.TokString:
		v, err := frontends.ParseLiteral(t)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.LitOp(v), nil
	default:
		return ir.Operand{}, fmt.Errorf("pig: line %d: expected operand, got %q", t.Line, t.Text)
	}
}

// predicate: comparisons with AND/OR (AND binds tighter).
func (p *parser) predicate() (*ir.Pred, error) {
	left, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	for p.lex.Accept(frontends.TokIdent, "OR") {
		right, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		left = ir.Or(left, right)
	}
	return left, nil
}

func (p *parser) conjunction() (*ir.Pred, error) {
	left, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for p.lex.Accept(frontends.TokIdent, "AND") {
		right, err := p.comparison()
		if err != nil {
			return nil, err
		}
		left = ir.And(left, right)
	}
	return left, nil
}

func (p *parser) comparison() (*ir.Pred, error) {
	lhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.lex.Next()
	if err != nil {
		return nil, err
	}
	var cmp ir.CmpOp
	switch opTok.Text {
	case "=", "==":
		cmp = ir.CmpEq
	case "!=":
		cmp = ir.CmpNe
	case "<":
		cmp = ir.CmpLt
	case "<=":
		cmp = ir.CmpLe
	case ">":
		cmp = ir.CmpGt
	case ">=":
		cmp = ir.CmpGe
	default:
		return nil, fmt.Errorf("pig: line %d: expected comparison, got %q", opTok.Line, opTok.Text)
	}
	rhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	return ir.Cmp(lhs, cmp, rhs), nil
}

func arithOpOf(sym string) ir.ArithOp {
	switch sym {
	case "+":
		return ir.ArithAdd
	case "-":
		return ir.ArithSub
	case "*":
		return ir.ArithMul
	default:
		return ir.ArithDiv
	}
}

func aggFuncOf(name string) (ir.AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return ir.AggSum, true
	case "COUNT":
		return ir.AggCount, true
	case "MIN":
		return ir.AggMin, true
	case "MAX":
		return ir.AggMax, true
	case "AVG":
		return ir.AggAvg, true
	}
	return 0, false
}
