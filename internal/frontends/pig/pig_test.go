package pig

import (
	"testing"

	"musketeer/internal/exec"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func catalog() frontends.Catalog {
	return frontends.Catalog{
		"properties": {Path: "in/properties", Schema: relation.NewSchema("id:int", "street:string", "town:string")},
		"prices":     {Path: "in/prices", Schema: relation.NewSchema("id:int", "price:float")},
		"purchases":  {Path: "in/purchases", Schema: relation.NewSchema("uid:int", "region:string", "value:float")},
	}
}

// maxPropertyPrice is the paper's Listing 1 workflow in Pig Latin.
const maxPropertyPrice = `
locs = FOREACH properties GENERATE id, street, town;
j    = JOIN locs BY id, prices BY id;
g    = GROUP j BY (street, town);
best = FOREACH g GENERATE group, MAX(j.price) AS max_price;
`

func TestMaxPropertyPriceTranslation(t *testing.T) {
	dag, err := Parse(maxPropertyPrice, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("locs").Type != ir.OpProject {
		t.Error("locs should be PROJECT")
	}
	if dag.ByOut("j").Type != ir.OpJoin {
		t.Error("j should be JOIN")
	}
	best := dag.ByOut("best")
	if best.Type != ir.OpAgg {
		t.Fatalf("best = %v", best)
	}
	if len(best.Params.GroupBy) != 2 || best.Params.Aggs[0].Func != ir.AggMax {
		t.Errorf("agg params = %+v", best.Params)
	}
	schemas, err := dag.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewSchema("street:string", "town:string", "max_price:float")
	if !schemas[best].Equal(want) {
		t.Errorf("schema = %s, want %s", schemas[best], want)
	}
}

func TestPigExecutesSameAsHive(t *testing.T) {
	dag, err := Parse(maxPropertyPrice, catalog())
	if err != nil {
		t.Fatal(err)
	}
	props := relation.New("properties", catalog()["properties"].Schema)
	props.MustAppend(relation.Row{relation.Int(1), relation.Str("mill"), relation.Str("cam")})
	props.MustAppend(relation.Row{relation.Int(2), relation.Str("mill"), relation.Str("cam")})
	prices := relation.New("prices", catalog()["prices"].Schema)
	prices.MustAppend(relation.Row{relation.Int(1), relation.Float(100)})
	prices.MustAppend(relation.Row{relation.Int(2), relation.Float(300)})
	env, _, err := exec.RunDAG(dag, exec.Env{"properties": props, "prices": prices})
	if err != nil {
		t.Fatal(err)
	}
	out := env["best"]
	if out.NumRows() != 1 || out.Rows[0][2].F != 300 {
		t.Errorf("best = %v", out.Rows)
	}
}

func TestFilterAndArithmetic(t *testing.T) {
	src := `
eu  = FILTER purchases BY region == 'EU' AND value > 10;
tax = FOREACH eu GENERATE uid, value * 0.2 AS vat;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	purchases := relation.New("purchases", catalog()["purchases"].Schema)
	purchases.MustAppend(relation.Row{relation.Int(1), relation.Str("EU"), relation.Float(100)})
	purchases.MustAppend(relation.Row{relation.Int(2), relation.Str("US"), relation.Float(100)})
	purchases.MustAppend(relation.Row{relation.Int(3), relation.Str("EU"), relation.Float(5)})
	env, _, err := exec.RunDAG(dag, exec.Env{"purchases": purchases})
	if err != nil {
		t.Fatal(err)
	}
	out := env["tax"]
	if out.NumRows() != 1 || out.Rows[0][1].F != 20 {
		t.Errorf("tax = %v (%s)", out.Rows, out.Schema)
	}
}

func TestUnionDistinctCount(t *testing.T) {
	src := `
a = FILTER purchases BY region == 'EU';
b = FILTER purchases BY region == 'US';
u = UNION a, b;
d = DISTINCT u;
g = GROUP d BY region;
n = FOREACH g GENERATE group, COUNT(*) AS n, SUM(value) AS total;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	n := dag.ByOut("n")
	if n.Type != ir.OpAgg || n.Params.Aggs[0].Func != ir.AggCount || n.Params.Aggs[1].Func != ir.AggSum {
		t.Errorf("n = %+v", n.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown rel":       `x = FILTER nope BY a > 1;`,
		"unknown op":        `x = FROB purchases;`,
		"dangling group":    `g = GROUP purchases BY uid;`,
		"foreach no agg":    "g = GROUP purchases BY uid;\nx = FOREACH g GENERATE group;",
		"redefined":         "x = DISTINCT purchases;\nx = DISTINCT purchases;",
		"group redefined":   "x = DISTINCT purchases;\ng = GROUP purchases BY uid;\ng = GROUP purchases BY uid;\ny = FOREACH g GENERATE group, COUNT(*);",
		"missing semicolon": `x = DISTINCT purchases`,
		"bad agg":           "g = GROUP purchases BY uid;\nx = FOREACH g GENERATE group, MEDIAN(value);",
		"empty":             ``,
	}
	for name, src := range cases {
		if _, err := Parse(src, catalog()); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

// FuzzParse: the Pig parser never panics and never yields an invalid DAG.
func FuzzParse(f *testing.F) {
	seeds := []string{
		maxPropertyPrice,
		"eu = FILTER purchases BY region == 'EU';",
		"x = FOREACH purchases GENERATE uid, value * 2 AS d;",
		"g = GROUP purchases BY uid;\nn = FOREACH g GENERATE group, COUNT(*);",
		"u = UNION purchases, purchases;",
		"= FILTER ;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := catalog()
	f.Fuzz(func(t *testing.T, src string) {
		dag, err := Parse(src, cat)
		if err == nil {
			if err := dag.Validate(); err != nil {
				t.Fatalf("invalid DAG accepted: %v", err)
			}
		}
	})
}
