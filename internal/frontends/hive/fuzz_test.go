package hive

import (
	"testing"

	"musketeer/internal/frontends"
	"musketeer/internal/relation"
)

// FuzzParse asserts the Hive parser never panics and either returns a valid
// DAG or an error, on arbitrary input. The seed corpus covers the dialect's
// statement forms; `go test` runs the seeds, `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"SELECT id FROM t AS x;",
		"SELECT id, street FROM t WHERE id > 3 AS x;",
		"SELECT * FROM t WHERE a == \"b\" OR c < 0.5 AS x;",
		"t JOIN u ON t.id = u.id AS j;",
		"t JOIN u ON t.id = u.id AND t.k = u.k AS j;",
		"SELECT SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY id AS g;",
		"SELECT * FROM t WHERE a < 0.2 * b AS x;",
		"SELECT FROM WHERE AS ; JOIN ON",
		"SELECT id FROM t AS x; x JOIN t ON x.id = t.id AS y;",
		"\"unterminated",
		"SELECT id FROM t AS \x00;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := frontends.Catalog{
		"t": {Path: "in/t", Schema: relation.NewSchema("id:int", "street:string", "a:string", "b:float", "c:float", "k:int", "v:float")},
		"u": {Path: "in/u", Schema: relation.NewSchema("id:int", "k:int", "w:float")},
	}
	f.Fuzz(func(t *testing.T, src string) {
		dag, err := Parse(src, cat)
		if err == nil {
			if dag == nil {
				t.Fatal("nil DAG without error")
			}
			if err := dag.Validate(); err != nil {
				t.Fatalf("parser returned invalid DAG: %v", err)
			}
		}
	})
}
