package hive

import (
	"testing"

	"musketeer/internal/exec"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func catalog() frontends.Catalog {
	return frontends.Catalog{
		"properties": {Path: "in/properties", Schema: relation.NewSchema("id:int", "street:string", "town:string")},
		"prices":     {Path: "in/prices", Schema: relation.NewSchema("id:int", "price:float")},
		"purchases":  {Path: "in/purchases", Schema: relation.NewSchema("uid:int", "region:string", "value:float")},
	}
}

const listing1 = `
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) AS max_price FROM id_price GROUP BY street AND town AS street_price;
`

func TestListing1Translation(t *testing.T) {
	dag, err := Parse(listing1, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("locs").Type != ir.OpProject {
		t.Error("locs should be a PROJECT")
	}
	j := dag.ByOut("id_price")
	if j.Type != ir.OpJoin || j.Params.LeftCols[0] != "id" || j.Params.RightCols[0] != "id" {
		t.Errorf("join = %v %v", j, j.Params)
	}
	g := dag.ByOut("street_price")
	if g.Type != ir.OpAgg || len(g.Params.GroupBy) != 2 || g.Params.Aggs[0].Func != ir.AggMax {
		t.Errorf("agg = %v %v", g, g.Params)
	}
	schemas, err := dag.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewSchema("street:string", "town:string", "max_price:float")
	if !schemas[g].Equal(want) {
		t.Errorf("schema = %s, want %s", schemas[g], want)
	}
}

func TestListing1Executes(t *testing.T) {
	dag, err := Parse(listing1, catalog())
	if err != nil {
		t.Fatal(err)
	}
	props := relation.New("properties", catalog()["properties"].Schema)
	props.MustAppend(relation.Row{relation.Int(1), relation.Str("mill"), relation.Str("cam")})
	props.MustAppend(relation.Row{relation.Int(2), relation.Str("mill"), relation.Str("cam")})
	prices := relation.New("prices", catalog()["prices"].Schema)
	prices.MustAppend(relation.Row{relation.Int(1), relation.Float(100)})
	prices.MustAppend(relation.Row{relation.Int(2), relation.Float(300)})
	env, _, err := exec.RunDAG(dag, exec.Env{"properties": props, "prices": prices})
	if err != nil {
		t.Fatal(err)
	}
	out := env["street_price"]
	if out.NumRows() != 1 || out.Rows[0][2].F != 300 {
		t.Errorf("street_price = %v", out.Rows)
	}
}

func TestWhereAndAliases(t *testing.T) {
	src := `
SELECT uid AS user, value FROM purchases WHERE region == "EU" AND value > 10 AS eu;
SELECT SUM(value) AS total FROM eu GROUP BY user AS totals;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	eu := dag.ByOut("eu")
	if eu.Type != ir.OpProject || eu.Params.As[0] != "user" {
		t.Errorf("eu = %v %+v", eu, eu.Params)
	}
	if eu.Inputs[0].Type != ir.OpSelect {
		t.Error("WHERE should produce a SELECT before the projection")
	}
	schemas, err := dag.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	totals := dag.ByOut("totals")
	if !schemas[totals].Equal(relation.NewSchema("user:int", "total:float")) {
		t.Errorf("totals schema = %s", schemas[totals])
	}
}

func TestSelectStarWithWhere(t *testing.T) {
	src := `SELECT * FROM purchases WHERE value >= 100 AS big;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	big := dag.ByOut("big")
	if big.Type != ir.OpSelect {
		t.Errorf("big = %v", big)
	}
}

func TestOrPredicate(t *testing.T) {
	src := `SELECT * FROM purchases WHERE region == "EU" OR region == "US" AS both;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	p := dag.ByOut("both").Params.Pred
	if p.Kind != ir.PredOr {
		t.Errorf("pred = %s", p)
	}
}

func TestCountStar(t *testing.T) {
	src := `SELECT region, COUNT(*) AS n FROM purchases GROUP BY region AS counts;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	op := dag.ByOut("counts")
	if op.Params.Aggs[0].Func != ir.AggCount || op.Params.Aggs[0].Col != "" {
		t.Errorf("aggs = %v", op.Params.Aggs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown relation": `SELECT a FROM nothere AS x;`,
		"missing AS":       `SELECT id FROM properties;`,
		"missing semi":     `SELECT id FROM properties AS x`,
		"group no agg":     `SELECT id FROM properties GROUP BY id AS x;`,
		"star no where":    `SELECT * FROM properties AS x;`,
		"bad join":         `properties JOIN ON id = id AS x;`,
		"unknown col":      `SELECT nope FROM properties AS x;`,
		"empty":            ``,
		"garbage":          `;;;`,
		"redefine": `SELECT id FROM properties AS x;
SELECT id FROM properties AS x;`,
	}
	for name, src := range cases {
		if _, err := Parse(src, catalog()); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestMultiKeyJoin(t *testing.T) {
	src := `properties JOIN properties2 ON properties.id = properties2.id AND properties.street = properties2.street AS j;`
	cat := catalog()
	cat["properties2"] = cat["properties"]
	dag, err := Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	j := dag.ByOut("j")
	if len(j.Params.LeftCols) != 2 {
		t.Errorf("join keys = %v", j.Params.LeftCols)
	}
}

func TestOrderByLimit(t *testing.T) {
	src := `SELECT uid, SUM(value) AS total FROM purchases GROUP BY uid ORDER BY total DESC LIMIT 3 AS top3;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	top := dag.ByOut("top3")
	if top.Type != ir.OpLimit || top.Params.Limit != 3 {
		t.Fatalf("top3 = %v %+v", top, top.Params)
	}
	srt := top.Inputs[0]
	if srt.Type != ir.OpSort || !srt.Params.Desc || srt.Params.SortBy[0] != "total" {
		t.Fatalf("sort = %v %+v", srt, srt.Params)
	}
	if srt.Inputs[0].Type != ir.OpAgg {
		t.Errorf("sort input = %v", srt.Inputs[0])
	}

	purchases := relation.New("purchases", catalog()["purchases"].Schema)
	for i := int64(0); i < 20; i++ {
		purchases.MustAppend(relation.Row{relation.Int(i % 5), relation.Str("EU"), relation.Float(float64(10 * (i + 1)))})
	}
	env, _, err := exec.RunDAG(dag, exec.Env{"purchases": purchases})
	if err != nil {
		t.Fatal(err)
	}
	out := env["top3"]
	if out.NumRows() != 3 || out.Rows[0][1].F < out.Rows[1][1].F {
		t.Errorf("top3 = %v", out.Rows)
	}
}

func TestOrderByWithoutLimit(t *testing.T) {
	src := `SELECT uid, value FROM purchases ORDER BY value AS sorted;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("sorted").Type != ir.OpSort {
		t.Errorf("sorted = %v", dag.ByOut("sorted"))
	}
}

func TestLimitOnly(t *testing.T) {
	src := `SELECT * FROM purchases LIMIT 2 AS sample;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("sample").Type != ir.OpLimit {
		t.Errorf("sample = %v", dag.ByOut("sample"))
	}
}
