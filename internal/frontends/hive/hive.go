// Package hive parses the HiveQL subset Musketeer supports (paper §4.1.1,
// Listing 1) and translates it to the IR.
//
// The dialect is statement-oriented; every statement names its result with
// a trailing AS:
//
//	SELECT id, street, town FROM properties AS locs;
//	locs JOIN prices ON locs.id = prices.id AS id_price;
//	SELECT street, town, MAX(price) FROM id_price
//	    GROUP BY street AND town AS street_price;
//
// SELECT statements may carry a WHERE clause; aggregate functions (SUM,
// COUNT, MIN, MAX, AVG) in the select list require a GROUP BY (aggregation
// over the whole relation uses GROUP BY with no columns, i.e. omit the
// clause and aggregate alone). Relational operands resolve first against
// relations defined earlier in the workflow, then against the catalog.
package hive

import (
	"fmt"
	"strings"

	// Linking the analyzer makes dag.Validate() report every diagnostic
	// of the workflow (multi-error, with provenance), not just the first.
	_ "musketeer/internal/analysis"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
)

type parser struct {
	lex  *frontends.Lexer
	cat  frontends.Catalog
	dag  *ir.DAG
	rels map[string]*ir.Op
	tmp  int
}

// Parse translates a workflow in the Hive dialect into an IR DAG.
func Parse(src string, cat frontends.Catalog) (*ir.DAG, error) {
	p := &parser{
		lex:  frontends.NewLexer(src),
		cat:  cat,
		dag:  ir.NewDAG(),
		rels: map[string]*ir.Op{},
	}
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return nil, err
		}
		if t.Kind == frontends.TokEOF {
			break
		}
		mark := len(p.dag.Ops)
		if err := p.statement(); err != nil {
			return nil, err
		}
		// Stamp every operator the statement added with its source line so
		// analyzer diagnostics point back at the workflow text.
		p.dag.StampProv("hive", t.Line, mark)
	}
	if len(p.dag.Ops) == 0 {
		return nil, fmt.Errorf("hive: empty workflow")
	}
	if err := p.dag.Validate(); err != nil {
		return nil, fmt.Errorf("hive: %w", err)
	}
	return p.dag, nil
}

func (p *parser) statement() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	switch {
	case frontends.IsKeyword(t, "SELECT"):
		return p.selectStmt()
	case t.Kind == frontends.TokIdent:
		return p.joinStmt(t.Text)
	default:
		return fmt.Errorf("hive: line %d: unexpected %q", t.Line, t.Text)
	}
}

// resolve returns the operator producing the named relation, consulting the
// catalog for base tables.
func (p *parser) resolve(name string) (*ir.Op, error) {
	if op, ok := p.rels[name]; ok {
		return op, nil
	}
	if tbl, ok := p.cat[name]; ok {
		op := p.dag.AddInput(name, tbl.Path, tbl.Schema)
		p.rels[name] = op
		return op, nil
	}
	return nil, fmt.Errorf("hive: unknown relation %q", name)
}

func (p *parser) fresh(base string) string {
	p.tmp++
	return fmt.Sprintf("__%s_%d", base, p.tmp)
}

type selItem struct {
	col   string
	alias string
	agg   ir.AggFunc
	isAgg bool
}

func (p *parser) selectStmt() error {
	var items []selItem
	for {
		it, err := p.selItem()
		if err != nil {
			return err
		}
		items = append(items, it)
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "FROM"); err != nil {
		return err
	}
	srcTok, err := p.lex.Next()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcTok.Text)
	if err != nil {
		return err
	}

	var pred *ir.Pred
	if p.lex.Accept(frontends.TokIdent, "WHERE") {
		pred, err = p.predicate()
		if err != nil {
			return err
		}
	}
	var groupBy []string
	if p.lex.Accept(frontends.TokIdent, "GROUP") {
		if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
			return err
		}
		for {
			c, err := p.lex.Next()
			if err != nil {
				return err
			}
			if c.Kind != frontends.TokIdent {
				return fmt.Errorf("hive: line %d: expected group-by column, got %q", c.Line, c.Text)
			}
			groupBy = append(groupBy, frontends.StripQualifier(c.Text))
			// The paper's dialect separates group-by columns with AND;
			// accept ',' too.
			if p.lex.Accept(frontends.TokIdent, "AND") || p.lex.Accept(frontends.TokSymbol, ",") {
				continue
			}
			break
		}
	}
	var orderBy []string
	orderDesc := false
	if p.lex.Accept(frontends.TokIdent, "ORDER") {
		if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
			return err
		}
		for {
			c, err := p.lex.Next()
			if err != nil {
				return err
			}
			if c.Kind != frontends.TokIdent {
				return fmt.Errorf("hive: line %d: expected order-by column, got %q", c.Line, c.Text)
			}
			orderBy = append(orderBy, frontends.StripQualifier(c.Text))
			if p.lex.Accept(frontends.TokSymbol, ",") {
				continue
			}
			break
		}
		orderDesc = p.lex.Accept(frontends.TokIdent, "DESC")
	}
	limit := 0
	if p.lex.Accept(frontends.TokIdent, "LIMIT") {
		nTok, err := p.lex.Next()
		if err != nil {
			return err
		}
		lit, err := frontends.ParseLiteral(nTok)
		if err != nil {
			return err
		}
		limit = int(lit.AsInt())
	}
	name, err := p.asName()
	if err != nil {
		return err
	}
	// finish appends the optional SORT/LIMIT tail and registers the result
	// under the statement name.
	finish := func(cur *ir.Op) error {
		if len(orderBy) > 0 {
			out := name
			if limit > 0 {
				out = p.fresh(name + "_sorted")
			}
			cur = p.dag.Add(ir.OpSort, out, ir.Params{SortBy: orderBy, Desc: orderDesc}, cur)
		}
		if limit > 0 {
			cur = p.dag.Add(ir.OpLimit, name, ir.Params{Limit: limit}, cur)
		}
		cur.Out = name
		p.rels[name] = cur
		return p.semi()
	}

	cur := src
	if pred != nil {
		out := name
		// The filter is an intermediate when a projection/aggregation
		// follows.
		out = p.fresh(name + "_where")
		cur = p.dag.Add(ir.OpSelect, out, ir.Params{Pred: pred}, cur)
	}

	hasAgg := false
	for _, it := range items {
		if it.isAgg {
			hasAgg = true
		}
	}
	hasTail := len(orderBy) > 0 || limit > 0
	if hasAgg {
		var aggs []ir.AggSpec
		for _, it := range items {
			if !it.isAgg {
				continue // plain columns in an aggregate SELECT are the group keys
			}
			as := it.alias
			if as == "" {
				as = strings.ToLower(it.agg.String()) + "_" + it.col
				if it.col == "" {
					as = "count"
				}
			}
			aggs = append(aggs, ir.AggSpec{Func: it.agg, Col: it.col, As: as})
		}
		out := name
		if hasTail {
			out = p.fresh(name + "_agg")
		}
		return finish(p.dag.Add(ir.OpAgg, out, ir.Params{GroupBy: groupBy, Aggs: aggs}, cur))
	}
	if len(groupBy) > 0 {
		return fmt.Errorf("hive: GROUP BY without aggregate function in %q", name)
	}
	// Plain projection; SELECT * keeps the relation (filter-only).
	if len(items) == 1 && items[0].col == "*" {
		if pred == nil && !hasTail {
			return fmt.Errorf("hive: SELECT * without WHERE is a no-op in %q", name)
		}
		return finish(cur)
	}
	cols := make([]string, len(items))
	aliases := make([]string, len(items))
	renamed := false
	for i, it := range items {
		cols[i] = it.col
		aliases[i] = it.col
		if it.alias != "" {
			aliases[i] = it.alias
			renamed = true
		}
	}
	params := ir.Params{Columns: cols}
	if renamed {
		params.As = aliases
	}
	out := name
	if hasTail {
		out = p.fresh(name + "_proj")
	}
	return finish(p.dag.Add(ir.OpProject, out, params, cur))
}

func (p *parser) selItem() (selItem, error) {
	t, err := p.lex.Next()
	if err != nil {
		return selItem{}, err
	}
	if t.Kind == frontends.TokSymbol && t.Text == "*" {
		return selItem{col: "*"}, nil
	}
	if t.Kind != frontends.TokIdent {
		return selItem{}, fmt.Errorf("hive: line %d: expected column, got %q", t.Line, t.Text)
	}
	if agg, ok := aggFunc(t.Text); ok {
		if next, _ := p.lex.Peek(); next.Kind == frontends.TokSymbol && next.Text == "(" {
			p.lex.Next()
			col := ""
			ct, err := p.lex.Next()
			if err != nil {
				return selItem{}, err
			}
			if !(ct.Kind == frontends.TokSymbol && ct.Text == "*") {
				col = frontends.StripQualifier(ct.Text)
			}
			if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
				return selItem{}, err
			}
			it := selItem{col: col, agg: agg, isAgg: true}
			if p.lex.Accept(frontends.TokIdent, "AS") {
				at, err := p.lex.Next()
				if err != nil {
					return selItem{}, err
				}
				it.alias = at.Text
			}
			return it, nil
		}
	}
	it := selItem{col: frontends.StripQualifier(t.Text)}
	if p.lex.Accept(frontends.TokIdent, "AS") {
		at, err := p.lex.Next()
		if err != nil {
			return selItem{}, err
		}
		it.alias = at.Text
	}
	return it, nil
}

func aggFunc(name string) (ir.AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return ir.AggSum, true
	case "COUNT":
		return ir.AggCount, true
	case "MIN":
		return ir.AggMin, true
	case "MAX":
		return ir.AggMax, true
	case "AVG":
		return ir.AggAvg, true
	}
	return 0, false
}

// joinStmt parses `left JOIN right ON l.c = r.c [AND ...] AS name;`.
func (p *parser) joinStmt(leftName string) error {
	if _, err := p.lex.Expect(frontends.TokIdent, "JOIN"); err != nil {
		return err
	}
	rightTok, err := p.lex.Next()
	if err != nil {
		return err
	}
	left, err := p.resolve(leftName)
	if err != nil {
		return err
	}
	right, err := p.resolve(rightTok.Text)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "ON"); err != nil {
		return err
	}
	var lcols, rcols []string
	for {
		lt, err := p.lex.Next()
		if err != nil {
			return err
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, "="); err != nil {
			return err
		}
		rt, err := p.lex.Next()
		if err != nil {
			return err
		}
		lcols = append(lcols, frontends.StripQualifier(lt.Text))
		rcols = append(rcols, frontends.StripQualifier(rt.Text))
		if !p.lex.Accept(frontends.TokIdent, "AND") {
			break
		}
	}
	name, err := p.asName()
	if err != nil {
		return err
	}
	p.rels[name] = p.dag.Add(ir.OpJoin, name, ir.Params{LeftCols: lcols, RightCols: rcols}, left, right)
	return p.semi()
}

func (p *parser) asName() (string, error) {
	if _, err := p.lex.Expect(frontends.TokIdent, "AS"); err != nil {
		return "", err
	}
	t, err := p.lex.Next()
	if err != nil {
		return "", err
	}
	if t.Kind != frontends.TokIdent {
		return "", fmt.Errorf("hive: line %d: expected relation name, got %q", t.Line, t.Text)
	}
	return t.Text, nil
}

func (p *parser) semi() error {
	_, err := p.lex.Expect(frontends.TokSymbol, ";")
	return err
}

// predicate parses OR-separated conjunctions of comparisons; AND binds
// tighter than OR.
func (p *parser) predicate() (*ir.Pred, error) {
	left, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	for p.lex.Accept(frontends.TokIdent, "OR") {
		right, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		left = ir.Or(left, right)
	}
	return left, nil
}

func (p *parser) conjunction() (*ir.Pred, error) {
	left, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lex.Peek()
		if err != nil {
			return nil, err
		}
		if !frontends.IsKeyword(t, "AND") {
			return left, nil
		}
		p.lex.Next()
		right, err := p.comparison()
		if err != nil {
			return nil, err
		}
		left = ir.And(left, right)
	}
}

func (p *parser) comparison() (*ir.Pred, error) {
	lhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.lex.Next()
	if err != nil {
		return nil, err
	}
	var cmp ir.CmpOp
	switch opTok.Text {
	case "=", "==":
		cmp = ir.CmpEq
	case "!=":
		cmp = ir.CmpNe
	case "<":
		cmp = ir.CmpLt
	case "<=":
		cmp = ir.CmpLe
	case ">":
		cmp = ir.CmpGt
	case ">=":
		cmp = ir.CmpGe
	default:
		return nil, fmt.Errorf("hive: line %d: expected comparison, got %q", opTok.Line, opTok.Text)
	}
	rhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	return ir.Cmp(lhs, cmp, rhs), nil
}

func (p *parser) operand() (ir.Operand, error) {
	t, err := p.lex.Next()
	if err != nil {
		return ir.Operand{}, err
	}
	switch t.Kind {
	case frontends.TokIdent:
		return ir.ColRef(frontends.StripQualifier(t.Text)), nil
	case frontends.TokNumber, frontends.TokString:
		v, err := frontends.ParseLiteral(t)
		if err != nil {
			return ir.Operand{}, err
		}
		// Scaled column operand: `0.2 * col` (TPC-H Q17's correlated
		// threshold).
		if t.Kind == frontends.TokNumber && p.lex.Accept(frontends.TokSymbol, "*") {
			ct, err := p.lex.Next()
			if err != nil {
				return ir.Operand{}, err
			}
			if ct.Kind != frontends.TokIdent {
				return ir.Operand{}, fmt.Errorf("hive: line %d: expected column after '*', got %q", ct.Line, ct.Text)
			}
			return ir.ScaledCol(frontends.StripQualifier(ct.Text), v.AsFloat()), nil
		}
		return ir.LitOp(v), nil
	default:
		return ir.Operand{}, fmt.Errorf("hive: line %d: expected operand, got %q", t.Line, t.Text)
	}
}
