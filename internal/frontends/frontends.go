// Package frontends holds what Musketeer's front-end frameworks share: the
// table catalog that binds workflow-level relation names to DFS paths and
// schemas, and the lexer used by the textual DSL parsers (HiveQL subset,
// BEER, and the GAS DSL).
package frontends

import (
	"fmt"
	"strings"
	"unicode"

	"musketeer/internal/relation"
)

// Table is one catalogued base relation.
type Table struct {
	Path   string
	Schema relation.Schema
}

// Catalog maps base-table names to their storage location and schema.
// Front-ends resolve FROM/JOIN references against it; unresolved names must
// refer to relations defined earlier in the same workflow.
type Catalog map[string]Table

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol
)

// Token is one lexeme with its source line for error messages.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

// Lexer splits DSL source into tokens. Symbols cover the operators used by
// all three textual front-ends: = == != < <= > >= ( ) { } [ ] , ; * .
type Lexer struct {
	src  []rune
	pos  int
	line int
	// Peeked holds a pushed-back token.
	peeked *Token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '.' || l.src[l.pos] == '/') {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: string(l.src[start:l.pos]), Line: l.line}, nil
	case unicode.IsDigit(c) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '-' || l.src[l.pos] == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Line: l.line}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			if l.src[l.pos] == '\n' {
				return Token{}, fmt.Errorf("line %d: unterminated string", l.line)
			}
			b.WriteRune(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("line %d: unterminated string", l.line)
		}
		l.pos++
		return Token{Kind: TokString, Text: b.String(), Line: l.line}, nil
	case strings.ContainsRune("=!<>", c):
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return Token{Kind: TokSymbol, Text: string(l.src[start:l.pos]), Line: l.line}, nil
	case strings.ContainsRune("(){}[],;*", c):
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Line: l.line}, nil
	default:
		return Token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
	}
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() (Token, error) {
	if l.peeked != nil {
		return *l.peeked, nil
	}
	t, err := l.Next()
	if err != nil {
		return t, err
	}
	l.peeked = &t
	return t, nil
}

// Expect consumes the next token and checks it is the given symbol (or a
// case-insensitive keyword when kind is TokIdent).
func (l *Lexer) Expect(kind TokKind, text string) (Token, error) {
	t, err := l.Next()
	if err != nil {
		return t, err
	}
	if t.Kind != kind || !strings.EqualFold(t.Text, text) {
		return t, fmt.Errorf("line %d: expected %q, got %q", t.Line, text, t.Text)
	}
	return t, nil
}

// Accept consumes the next token if it matches; reports whether it did.
func (l *Lexer) Accept(kind TokKind, text string) bool {
	t, err := l.Peek()
	if err != nil {
		return false
	}
	if t.Kind == kind && strings.EqualFold(t.Text, text) {
		l.peeked = nil
		return true
	}
	return false
}

// IsKeyword reports whether tok is the given case-insensitive keyword.
func IsKeyword(t Token, kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// ParseLiteral converts a number or string token into a Value. Numbers
// containing '.', 'e' or 'E' become floats, others ints.
func ParseLiteral(t Token) (relation.Value, error) {
	switch t.Kind {
	case TokString:
		return relation.Str(t.Text), nil
	case TokNumber:
		if strings.ContainsAny(t.Text, ".eE") {
			return relation.ParseValue(relation.KindFloat, t.Text)
		}
		return relation.ParseValue(relation.KindInt, t.Text)
	default:
		return relation.Value{}, fmt.Errorf("line %d: expected literal, got %q", t.Line, t.Text)
	}
}

// StripQualifier removes a leading "rel." qualifier from a column
// reference (Hive allows locs.id; the IR uses bare column names).
func StripQualifier(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
