// Package gas implements Musketeer's Gather-Apply-Scatter DSL front-end
// (paper §4.1.2, Listing 2). Users define a graph computation as three
// steps of relational operators / column algebra, plus an iteration bound:
//
//	GATHER = {
//	    SUM(vertex_value)
//	}
//	APPLY = {
//	    MUL [vertex_value, 0.85]
//	    SUM [vertex_value, 0.15]
//	}
//	SCATTER = {
//	    DIV [vertex_value, vertex_degree]
//	}
//	ITERATION_STOP = (iteration < 20)
//	ITERATION = {
//	    SUM [iteration, 1]
//	}
//
// Translation to the IR follows the paper's reverse-GraphX mapping
// (§4.3.1): the scatter step becomes a JOIN of the vertex state with the
// edge set on the vertex column (sending messages along edges), the gather
// step a GROUP BY on the destination vertex with the gather aggregation
// (receiving messages), and the apply step the remaining operators.
// The resulting WHILE body matches the graph idiom by construction, so
// vertex-centric back-ends (PowerGraph, GraphChi) are eligible targets.
//
// Data conventions: the vertex relation is (vertex:int, vertex_value:float);
// the edge relation is (src:int, dst:int, ...) and carries any per-edge or
// per-source columns the steps reference (e.g. vertex_degree, cost).
package gas

import (
	"fmt"
	"strings"

	// Linking the analyzer makes dag.Validate() report every diagnostic
	// of the workflow (multi-error, with provenance), not just the first.
	_ "musketeer/internal/analysis"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Config names the catalogued vertex and edge tables the program runs over.
type Config struct {
	// Vertices / Edges are catalog table names.
	Vertices, Edges string
	// Output names the WHILE operator's output relation (default
	// "gas_result").
	Output string
}

type step struct {
	ariths []arithSpec
	aggs   []ir.AggSpec
}

type arithSpec struct {
	op       ir.ArithOp
	dst      string
	lhs, rhs ir.Operand
}

// Parse translates a GAS DSL program into an IR DAG containing a single
// WHILE operator over the configured vertex and edge tables.
func Parse(src string, cat frontends.Catalog, cfg Config) (*ir.DAG, error) {
	vTbl, ok := cat[cfg.Vertices]
	if !ok {
		return nil, fmt.Errorf("gas: vertices table %q not in catalog", cfg.Vertices)
	}
	eTbl, ok := cat[cfg.Edges]
	if !ok {
		return nil, fmt.Errorf("gas: edges table %q not in catalog", cfg.Edges)
	}
	if vTbl.Schema.Index("vertex") < 0 || vTbl.Schema.Index("vertex_value") < 0 {
		return nil, fmt.Errorf("gas: vertices schema %s must have (vertex, vertex_value)", vTbl.Schema)
	}
	if eTbl.Schema.Index("src") < 0 || eTbl.Schema.Index("dst") < 0 {
		return nil, fmt.Errorf("gas: edges schema %s must have (src, dst)", eTbl.Schema)
	}

	lex := frontends.NewLexer(src)
	var gather, apply, scatter step
	maxIter := 0
	seen := map[string]bool{}
	for {
		t, err := lex.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == frontends.TokEOF {
			break
		}
		if t.Kind != frontends.TokIdent {
			return nil, fmt.Errorf("gas: line %d: expected section name, got %q", t.Line, t.Text)
		}
		section := strings.ToUpper(t.Text)
		if seen[section] {
			return nil, fmt.Errorf("gas: duplicate section %s", section)
		}
		seen[section] = true
		if _, err := lex.Expect(frontends.TokSymbol, "="); err != nil {
			return nil, err
		}
		switch section {
		case "GATHER":
			gather, err = parseStep(lex, true)
		case "APPLY":
			apply, err = parseStep(lex, false)
		case "SCATTER":
			scatter, err = parseStep(lex, false)
		case "ITERATION":
			_, err = parseStep(lex, false) // counter update; implicit in the driver
		case "ITERATION_STOP":
			maxIter, err = parseStop(lex)
		default:
			return nil, fmt.Errorf("gas: line %d: unknown section %q", t.Line, t.Text)
		}
		if err != nil {
			return nil, err
		}
	}
	if len(gather.aggs) == 0 {
		return nil, fmt.Errorf("gas: GATHER must declare an aggregation")
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("gas: ITERATION_STOP missing or non-positive")
	}

	out := cfg.Output
	if out == "" {
		out = "gas_result"
	}
	dag := ir.NewDAG()
	vertices := dag.AddInput(cfg.Vertices, vTbl.Path, vTbl.Schema)
	edges := dag.AddInput(cfg.Edges, eTbl.Path, eTbl.Schema)

	body := ir.NewDAG()
	bV := body.AddInput(cfg.Vertices, "", relation.Schema{})
	bE := body.AddInput(cfg.Edges, "", relation.Schema{})

	// Scatter: send state along edges — JOIN vertex state with edges on
	// vertex = src, then the scatter column algebra.
	cur := body.Add(ir.OpJoin, "__sent", ir.Params{LeftCols: []string{"vertex"}, RightCols: []string{"src"}}, bV, bE)
	cur, err := addAriths(body, cur, "__scatter", scatter.ariths)
	if err != nil {
		return nil, err
	}
	// Gather: receive — GROUP BY destination with the gather aggregation.
	aggs := make([]ir.AggSpec, len(gather.aggs))
	copy(aggs, gather.aggs)
	cur = body.Add(ir.OpAgg, "__gathered", ir.Params{GroupBy: []string{"dst"}, Aggs: aggs}, cur)
	// Apply: update vertex state.
	cur, err = addAriths(body, cur, "__apply", apply.ariths)
	if err != nil {
		return nil, err
	}
	body.Add(ir.OpProject, "__new_vertices", ir.Params{
		Columns: []string{"dst", "vertex_value"},
		As:      []string{"vertex", "vertex_value"},
	}, cur)

	dag.Add(ir.OpWhile, out, ir.Params{
		Body:    body,
		MaxIter: maxIter,
		Carried: map[string]string{cfg.Vertices: "__new_vertices"},
	}, vertices, edges)
	// The whole program lowers to one WHILE, so every operator shares the
	// front-end provenance (no useful per-section line mapping survives).
	dag.StampProv("gas", 0, 0)
	if err := dag.Validate(); err != nil {
		return nil, fmt.Errorf("gas: %w", err)
	}
	return dag, nil
}

func addAriths(body *ir.DAG, cur *ir.Op, prefix string, specs []arithSpec) (*ir.Op, error) {
	for i, a := range specs {
		cur = body.Add(ir.OpArith, fmt.Sprintf("%s_%d", prefix, i), ir.Params{
			Dst: a.dst, ALeft: a.lhs, ARght: a.rhs, AOp: a.op,
		}, cur)
	}
	return cur, nil
}

// parseStep reads `{ item* }` where items are either aggregations
// `FUNC(col)` (gather steps) or column algebra `FUNC [col, operand]`.
func parseStep(lex *frontends.Lexer, gatherStep bool) (step, error) {
	var st step
	if _, err := lex.Expect(frontends.TokSymbol, "{"); err != nil {
		return st, err
	}
	for {
		t, err := lex.Next()
		if err != nil {
			return st, err
		}
		if t.Kind == frontends.TokSymbol && t.Text == "}" {
			return st, nil
		}
		if t.Kind != frontends.TokIdent {
			return st, fmt.Errorf("gas: line %d: expected operator, got %q", t.Line, t.Text)
		}
		next, err := lex.Peek()
		if err != nil {
			return st, err
		}
		switch {
		case next.Kind == frontends.TokSymbol && next.Text == "(":
			// Aggregation form FUNC(col).
			lex.Next()
			col, err := lex.Next()
			if err != nil {
				return st, err
			}
			if _, err := lex.Expect(frontends.TokSymbol, ")"); err != nil {
				return st, err
			}
			fn, ok := aggFunc(t.Text)
			if !ok {
				return st, fmt.Errorf("gas: line %d: unknown aggregation %q", t.Line, t.Text)
			}
			if !gatherStep {
				return st, fmt.Errorf("gas: line %d: aggregation %q only allowed in GATHER", t.Line, t.Text)
			}
			st.aggs = append(st.aggs, ir.AggSpec{Func: fn, Col: col.Text, As: col.Text})
		case next.Kind == frontends.TokSymbol && next.Text == "[":
			// Column algebra FUNC [col, operand].
			lex.Next()
			colTok, err := lex.Next()
			if err != nil {
				return st, err
			}
			if _, err := lex.Expect(frontends.TokSymbol, ","); err != nil {
				return st, err
			}
			opTok, err := lex.Next()
			if err != nil {
				return st, err
			}
			if _, err := lex.Expect(frontends.TokSymbol, "]"); err != nil {
				return st, err
			}
			var aop ir.ArithOp
			switch strings.ToUpper(t.Text) {
			case "SUM":
				aop = ir.ArithAdd
			case "SUB":
				aop = ir.ArithSub
			case "MUL":
				aop = ir.ArithMul
			case "DIV":
				aop = ir.ArithDiv
			default:
				return st, fmt.Errorf("gas: line %d: unknown algebra op %q", t.Line, t.Text)
			}
			var rhs ir.Operand
			if opTok.Kind == frontends.TokIdent {
				rhs = ir.ColRef(opTok.Text)
			} else {
				v, err := frontends.ParseLiteral(opTok)
				if err != nil {
					return st, err
				}
				rhs = ir.LitOp(v)
			}
			st.ariths = append(st.ariths, arithSpec{op: aop, dst: colTok.Text, lhs: ir.ColRef(colTok.Text), rhs: rhs})
		default:
			return st, fmt.Errorf("gas: line %d: expected '(' or '[' after %q", t.Line, t.Text)
		}
	}
}

func aggFunc(name string) (ir.AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return ir.AggSum, true
	case "COUNT":
		return ir.AggCount, true
	case "MIN":
		return ir.AggMin, true
	case "MAX":
		return ir.AggMax, true
	case "AVG":
		return ir.AggAvg, true
	}
	return 0, false
}

// parseStop reads `(iteration < N)`.
func parseStop(lex *frontends.Lexer) (int, error) {
	if _, err := lex.Expect(frontends.TokSymbol, "("); err != nil {
		return 0, err
	}
	if _, err := lex.Expect(frontends.TokIdent, "iteration"); err != nil {
		return 0, err
	}
	if _, err := lex.Expect(frontends.TokSymbol, "<"); err != nil {
		return 0, err
	}
	nTok, err := lex.Next()
	if err != nil {
		return 0, err
	}
	lit, err := frontends.ParseLiteral(nTok)
	if err != nil {
		return 0, err
	}
	if _, err := lex.Expect(frontends.TokSymbol, ")"); err != nil {
		return 0, err
	}
	return int(lit.AsInt()), nil
}
