package gas

import (
	"testing"

	"musketeer/internal/frontends"
	"musketeer/internal/relation"
)

// FuzzParse asserts the GAS parser never panics and never returns an
// invalid DAG on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		listing2,
		"GATHER = { MIN(vertex_value) }\nSCATTER = { SUM [vertex_value, cost] }\nITERATION_STOP = (iteration < 4)",
		"GATHER = { SUM(vertex_value) }\nITERATION_STOP = (iteration < 1)",
		"GATHER = {",
		"ITERATION_STOP = (iteration < x)",
		"APPLY = { MUL [a, b] DIV [a, 2] SUB [a, 1] }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := frontends.Catalog{
		"vertices": {Path: "in/v", Schema: relation.NewSchema("vertex:int", "vertex_value:float")},
		"edges":    {Path: "in/e", Schema: relation.NewSchema("src:int", "dst:int", "vertex_degree:int", "cost:float")},
	}
	f.Fuzz(func(t *testing.T, src string) {
		dag, err := Parse(src, cat, Config{Vertices: "vertices", Edges: "edges"})
		if err == nil {
			if err := dag.Validate(); err != nil {
				t.Fatalf("invalid DAG accepted: %v", err)
			}
		}
	})
}
