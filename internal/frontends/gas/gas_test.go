package gas

import (
	"math"
	"testing"

	"musketeer/internal/exec"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func catalog() frontends.Catalog {
	return frontends.Catalog{
		"vertices": {Path: "in/vertices", Schema: relation.NewSchema("vertex:int", "vertex_value:float")},
		"edges":    {Path: "in/edges", Schema: relation.NewSchema("src:int", "dst:int", "vertex_degree:int")},
		"cedges":   {Path: "in/cedges", Schema: relation.NewSchema("src:int", "dst:int", "cost:float")},
	}
}

// listing2 is the paper's Listing 2 PageRank program verbatim (modulo the
// iteration bound).
const listing2 = `
GATHER = {
    SUM(vertex_value)
}
APPLY = {
    MUL [vertex_value, 0.85]
    SUM [vertex_value, 0.15]
}
SCATTER = {
    DIV [vertex_value, vertex_degree]
}
ITERATION_STOP = (iteration < 5)
ITERATION = {
    SUM [iteration, 1]
}
`

func TestListing2Translates(t *testing.T) {
	dag, err := Parse(listing2, catalog(), Config{Vertices: "vertices", Edges: "edges", Output: "ranks"})
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("ranks")
	if w == nil || w.Type != ir.OpWhile {
		t.Fatalf("no WHILE in:\n%s", dag)
	}
	if w.Params.MaxIter != 5 {
		t.Errorf("MaxIter = %d", w.Params.MaxIter)
	}
	idiom := ir.DetectGraphIdiom(w)
	if idiom == nil {
		t.Fatal("GAS translation must match the graph idiom by construction")
	}
	if idiom.Scatter.Type != ir.OpJoin || idiom.Gather.Type != ir.OpAgg {
		t.Errorf("idiom roles: scatter=%v gather=%v", idiom.Scatter, idiom.Gather)
	}
}

func TestListing2PageRankExecution(t *testing.T) {
	dag, err := Parse(listing2, catalog(), Config{Vertices: "vertices", Edges: "edges", Output: "ranks"})
	if err != nil {
		t.Fatal(err)
	}
	// 1 -> 2, 2 -> 1 with degree 1 each: ranks stay 1.0.
	edges := relation.New("edges", catalog()["edges"].Schema)
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	vertices := relation.New("vertices", catalog()["vertices"].Schema)
	vertices.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	vertices.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	env, _, err := exec.RunDAG(dag, exec.Env{"vertices": vertices, "edges": edges})
	if err != nil {
		t.Fatal(err)
	}
	out := env["ranks"]
	if out.NumRows() != 2 {
		t.Fatalf("ranks = %v", out.Rows)
	}
	for _, r := range out.Rows {
		if math.Abs(r[1].F-1.0) > 1e-9 {
			t.Errorf("rank %v, want 1.0", r)
		}
	}
}

// TestSSSPViaGAS runs min-plus propagation: SCATTER adds the edge cost,
// GATHER takes the minimum. Self-loops with cost 0 keep settled distances.
func TestSSSPViaGAS(t *testing.T) {
	src := `
GATHER = { MIN(vertex_value) }
APPLY = { }
SCATTER = { SUM [vertex_value, cost] }
ITERATION_STOP = (iteration < 4)
`
	dag, err := Parse(src, catalog(), Config{Vertices: "vertices", Edges: "cedges", Output: "dists"})
	if err != nil {
		t.Fatal(err)
	}
	const inf = 1e18
	edges := relation.New("cedges", catalog()["cedges"].Schema)
	add := func(s, d int64, c float64) {
		edges.MustAppend(relation.Row{relation.Int(s), relation.Int(d), relation.Float(c)})
	}
	// Path 1 -> 2 -> 3 plus a costly shortcut 1 -> 3; self loops keep state.
	add(1, 2, 1)
	add(2, 3, 1)
	add(1, 3, 10)
	for _, v := range []int64{1, 2, 3} {
		add(v, v, 0)
	}
	vertices := relation.New("vertices", catalog()["vertices"].Schema)
	vertices.MustAppend(relation.Row{relation.Int(1), relation.Float(0)})
	vertices.MustAppend(relation.Row{relation.Int(2), relation.Float(inf)})
	vertices.MustAppend(relation.Row{relation.Int(3), relation.Float(inf)})
	env, _, err := exec.RunDAG(dag, exec.Env{"vertices": vertices, "cedges": edges})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 0, 2: 1, 3: 2}
	for _, r := range env["dists"].Rows {
		if math.Abs(r[1].F-want[r[0].I]) > 1e-9 {
			t.Errorf("dist[%d] = %v, want %v", r[0].I, r[1].F, want[r[0].I])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no gather":      `APPLY = { } SCATTER = { } ITERATION_STOP = (iteration < 5)`,
		"no stop":        `GATHER = { SUM(vertex_value) } SCATTER = { }`,
		"dup section":    `GATHER = { SUM(v) } GATHER = { SUM(v) } ITERATION_STOP = (iteration < 5)`,
		"agg in scatter": `GATHER = { SUM(v) } SCATTER = { SUM(v) } ITERATION_STOP = (iteration < 5)`,
		"bad section":    `WIBBLE = { }`,
		"bad agg":        `GATHER = { MEDIAN(v) } ITERATION_STOP = (iteration < 5)`,
		"bad arith":      `GATHER = { SUM(vertex_value) } APPLY = { FOO [v, 1] } ITERATION_STOP = (iteration < 5)`,
	}
	for name, src := range cases {
		if _, err := Parse(src, catalog(), Config{Vertices: "vertices", Edges: "edges"}); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
	if _, err := Parse(listing2, catalog(), Config{Vertices: "missing", Edges: "edges"}); err == nil {
		t.Error("missing vertices table accepted")
	}
	badCat := frontends.Catalog{
		"vertices": {Path: "v", Schema: relation.NewSchema("a:int")},
		"edges":    {Path: "e", Schema: relation.NewSchema("src:int", "dst:int")},
	}
	if _, err := Parse(listing2, badCat, Config{Vertices: "vertices", Edges: "edges"}); err == nil {
		t.Error("bad vertex schema accepted")
	}
}

func TestDefaultOutputName(t *testing.T) {
	dag, err := Parse(listing2, catalog(), Config{Vertices: "vertices", Edges: "edges"})
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("gas_result") == nil {
		t.Error("default output name missing")
	}
}
