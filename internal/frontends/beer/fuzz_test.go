package beer

import (
	"testing"

	"musketeer/internal/frontends"
	"musketeer/internal/relation"
)

// FuzzParse asserts the BEER parser never panics and never returns an
// invalid DAG, on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"x = SELECT a FROM t;",
		"x = SELECT * FROM t WHERE a > 1 AND b < 2;",
		"x = JOIN t, u ON k = k;",
		"x = AGG SUM(v) AS s FROM t GROUP BY k;",
		"x = MUL [v, 0.5] FROM t;",
		"x = MUL [v, 2] AS w FROM t;",
		"x = DISTINCT t;",
		"x = UNION t, t;",
		"w = WHILE (iteration < 3) CARRY t = y { y = DISTINCT t; };",
		"w = WHILE (iteration < 3) CARRY t = y UNTILEMPTY p { y = DISTINCT t; p = SELECT * FROM y WHERE k > 0; };",
		"x = ",
		"= =",
		"x = WHILE (iteration < ) CARRY {",
		"x = UDF f(t);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := frontends.Catalog{
		"t": {Path: "in/t", Schema: relation.NewSchema("k:int", "a:int", "b:int", "v:float")},
		"u": {Path: "in/u", Schema: relation.NewSchema("k:int", "w:float")},
	}
	f.Fuzz(func(t *testing.T, src string) {
		dag, err := Parse(src, cat)
		if err == nil {
			if dag == nil {
				t.Fatal("nil DAG without error")
			}
			if err := dag.Validate(); err != nil {
				t.Fatalf("parser returned invalid DAG: %v", err)
			}
		}
	})
}
