package beer

import (
	"math"
	"testing"

	"musketeer/internal/exec"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func catalog() frontends.Catalog {
	return frontends.Catalog{
		"purchases": {Path: "in/purchases", Schema: relation.NewSchema("uid:int", "region:string", "value:float")},
		"vertices":  {Path: "in/vertices", Schema: relation.NewSchema("vertex:int", "rank:float")},
		"edges":     {Path: "in/edges", Schema: relation.NewSchema("src:int", "dst:int", "degree:int")},
		"a":         {Path: "in/a", Schema: relation.NewSchema("x:int")},
		"b":         {Path: "in/b", Schema: relation.NewSchema("x:int")},
	}
}

const topShopper = `
# top-shopper (paper §6.5): filter by region, aggregate by user, threshold.
eu      = SELECT * FROM purchases WHERE region == "EU";
totals  = AGG SUM(value) AS total FROM eu GROUP BY uid;
top     = SELECT * FROM totals WHERE total > 100;
`

func TestTopShopperParsesAndRuns(t *testing.T) {
	dag, err := Parse(topShopper, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("top") == nil || dag.ByOut("totals").Type != ir.OpAgg {
		t.Fatalf("unexpected DAG:\n%s", dag)
	}
	purchases := relation.New("purchases", catalog()["purchases"].Schema)
	rows := []struct {
		uid    int64
		region string
		value  float64
	}{
		{1, "EU", 80}, {1, "EU", 30}, {2, "EU", 50}, {3, "US", 500},
	}
	for _, r := range rows {
		purchases.MustAppend(relation.Row{relation.Int(r.uid), relation.Str(r.region), relation.Float(r.value)})
	}
	env, _, err := exec.RunDAG(dag, exec.Env{"purchases": purchases})
	if err != nil {
		t.Fatal(err)
	}
	top := env["top"]
	if top.NumRows() != 1 || top.Rows[0][0].I != 1 {
		t.Errorf("top = %v", top.Rows)
	}
}

const pageRank = `
final = WHILE (iteration < 5) CARRY vertices = new_vertices {
    sent     = JOIN vertices, edges ON vertex = src;
    shared   = DIV [rank, degree] FROM sent;
    gathered = AGG SUM(rank) AS rank FROM shared GROUP BY dst;
    damped   = MUL [rank, 0.85] FROM gathered;
    applied  = SUM [rank, 0.15] FROM damped;
    new_vertices = PROJECT dst AS vertex, rank FROM applied;
};
`

func TestPageRankWhileParses(t *testing.T) {
	dag, err := Parse(pageRank, catalog())
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("final")
	if w == nil || w.Type != ir.OpWhile {
		t.Fatalf("no WHILE:\n%s", dag)
	}
	if w.Params.MaxIter != 5 {
		t.Errorf("MaxIter = %d", w.Params.MaxIter)
	}
	if len(w.Inputs) != 2 {
		t.Errorf("while inputs = %v", w.Inputs)
	}
	if ir.DetectGraphIdiom(w) == nil {
		t.Error("graph idiom not detected in BEER PageRank — idiom recognition on a relational front-end is the paper's §4.3.1 claim")
	}
}

func TestPageRankBEERExecution(t *testing.T) {
	dag, err := Parse(pageRank, catalog())
	if err != nil {
		t.Fatal(err)
	}
	edges := relation.New("edges", catalog()["edges"].Schema)
	edges.MustAppend(relation.Row{relation.Int(1), relation.Int(2), relation.Int(1)})
	edges.MustAppend(relation.Row{relation.Int(2), relation.Int(1), relation.Int(1)})
	vertices := relation.New("vertices", catalog()["vertices"].Schema)
	vertices.MustAppend(relation.Row{relation.Int(1), relation.Float(1)})
	vertices.MustAppend(relation.Row{relation.Int(2), relation.Float(1)})
	env, trace, err := exec.RunDAG(dag, exec.Env{"edges": edges, "vertices": vertices})
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("final")
	if trace.Iterations[w.ID] != 5 {
		t.Errorf("iterations = %d", trace.Iterations[w.ID])
	}
	for _, r := range env["final"].Rows {
		if math.Abs(r[1].F-1.0) > 1e-9 {
			t.Errorf("rank = %v, want 1.0 (symmetric cycle)", r)
		}
	}
}

func TestUntilEmptyLoop(t *testing.T) {
	src := `
done = WHILE (iteration < 50) CARRY a = next UNTILEMPTY pending {
    next    = SUB [x, 1] FROM a;
    pending = SELECT * FROM next WHERE x > 0;
};
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	a := relation.New("a", relation.NewSchema("x:int"))
	a.MustAppend(relation.Row{relation.Int(4)})
	env, trace, err := exec.RunDAG(dag, exec.Env{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("done")
	if trace.Iterations[w.ID] != 4 {
		t.Errorf("iterations = %d, want 4", trace.Iterations[w.ID])
	}
	if env["done"].Rows[0][0].I != 0 {
		t.Errorf("final = %v", env["done"].Rows)
	}
}

func TestSetOpsAndDistinct(t *testing.T) {
	src := `
u = UNION a, b;
i = INTERSECT a, b;
d = DIFFERENCE a, b;
dd = DISTINCT u;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	for name, typ := range map[string]ir.OpType{
		"u": ir.OpUnion, "i": ir.OpIntersect, "d": ir.OpDifference, "dd": ir.OpDistinct,
	} {
		if op := dag.ByOut(name); op == nil || op.Type != typ {
			t.Errorf("%s = %v", name, op)
		}
	}
}

func TestCrossAndProjectRename(t *testing.T) {
	src := `
c = CROSS a, b;
p = PROJECT x AS left_x FROM a;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("c").Type != ir.OpCrossJoin {
		t.Error("cross missing")
	}
	p := dag.ByOut("p")
	if p.Params.As[0] != "left_x" {
		t.Errorf("rename = %v", p.Params)
	}
}

func TestArithNewColumn(t *testing.T) {
	src := `v2 = MUL [value, 2] AS doubled FROM purchases;`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	op := dag.ByOut("v2")
	if op.Params.Dst != "doubled" || op.Params.AOp != ir.ArithMul {
		t.Errorf("params = %+v", op.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown rel":      `x = SELECT * FROM nope WHERE a > 1;`,
		"redefined":        "x = DISTINCT a;\nx = DISTINCT b;",
		"bad op":           `x = FROBNICATE a;`,
		"while no carry":   `x = WHILE (iteration < 3) { y = DISTINCT a; };`,
		"while bad bound":  `x = WHILE (iteration < 0) CARRY a = y { y = DISTINCT a; };`,
		"unterminated":     `x = WHILE (iteration < 3) CARRY a = y { y = DISTINCT a;`,
		"missing semi":     `x = DISTINCT a`,
		"select star noop": `x = SELECT * FROM a;`,
		"agg unknown func": `x = AGG MEDIAN(v) AS m FROM a;`,
		"arith lit target": `x = MUL [1, 2] FROM a;`,
	}
	for name, src := range cases {
		if _, err := Parse(src, catalog()); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestNestedScopeResolution(t *testing.T) {
	// Body references both an outer intermediate and a catalog table.
	src := `
eu = SELECT * FROM purchases WHERE region == "EU";
w = WHILE (iteration < 2) CARRY eu = nxt {
    j   = JOIN eu, a ON uid = x;
    nxt = PROJECT uid, region, value FROM j;
};
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	w := dag.ByOut("w")
	if len(w.Inputs) != 2 {
		t.Fatalf("while inputs = %d, want 2 (eu + a)", len(w.Inputs))
	}
}

func TestSortLimitTopN(t *testing.T) {
	src := `
totals = AGG SUM(value) AS total FROM purchases GROUP BY uid;
ranked = SORT totals BY total DESC;
top3   = LIMIT ranked 3;
`
	dag, err := Parse(src, catalog())
	if err != nil {
		t.Fatal(err)
	}
	if dag.ByOut("ranked").Type != ir.OpSort || !dag.ByOut("ranked").Params.Desc {
		t.Errorf("ranked = %+v", dag.ByOut("ranked"))
	}
	if dag.ByOut("top3").Params.Limit != 3 {
		t.Errorf("top3 = %+v", dag.ByOut("top3").Params)
	}
	purchases := relation.New("purchases", catalog()["purchases"].Schema)
	for i := int64(0); i < 20; i++ {
		purchases.MustAppend(relation.Row{relation.Int(i % 5), relation.Str("EU"), relation.Float(float64(10 * (i + 1)))})
	}
	env, _, err := exec.RunDAG(dag, exec.Env{"purchases": purchases})
	if err != nil {
		t.Fatal(err)
	}
	top := env["top3"]
	if top.NumRows() != 3 {
		t.Fatalf("top3 rows = %d", top.NumRows())
	}
	if top.Rows[0][1].F < top.Rows[1][1].F || top.Rows[1][1].F < top.Rows[2][1].F {
		t.Errorf("not descending: %v", top.Rows)
	}
}
