// Package beer implements BEER, Musketeer's own SQL-like workflow DSL with
// iteration support (paper §4.1.1). The paper does not publish BEER's
// grammar, so this dialect is our reconstruction: statement-per-line
// assignments whose right-hand sides mirror the IR operator set, plus a
// WHILE block for data-dependent iteration.
//
//	locs    = SELECT id, street, town FROM properties;
//	eu      = SELECT * FROM purchases WHERE region == "EU" AND value > 10;
//	j       = JOIN locs, prices ON id = id;
//	total   = AGG SUM(value) AS total FROM j GROUP BY uid;
//	top     = SELECT * FROM total WHERE total > 1000;
//	both    = INTERSECT a, b;            # also UNION, DIFFERENCE, DISTINCT
//	scaled  = MUL [rank, 0.85] FROM g;   # in-place column algebra
//	shifted = SUM [rank, 0.15] FROM scaled;
//	renamed = PROJECT dst AS vertex, rank FROM applied;
//	final   = WHILE (iteration < 20) CARRY ranks = new_ranks {
//	    ...statements defining new_ranks from ranks...
//	};
//
// WHILE blocks may also declare `UNTILEMPTY rel` to stop once a body
// relation becomes empty (e.g. SSSP frontier convergence). Identifiers
// resolve against earlier statements, then the enclosing scope (inside
// WHILE), then the catalog.
package beer

import (
	"fmt"
	"strings"

	// Linking the analyzer makes dag.Validate() report every diagnostic
	// of the workflow (multi-error, with provenance), not just the first.
	_ "musketeer/internal/analysis"
	"musketeer/internal/frontends"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

type parser struct {
	lex   *frontends.Lexer
	cat   frontends.Catalog
	dag   *ir.DAG
	rels  map[string]*ir.Op
	outer *parser // non-nil inside a WHILE body
	// whileInputs collects, for a body parser, the outer operators the
	// body references (they become the WHILE op's inputs).
	whileInputs []*ir.Op
}

// Parse translates a BEER workflow into an IR DAG.
func Parse(src string, cat frontends.Catalog) (*ir.DAG, error) {
	p := &parser{lex: frontends.NewLexer(src), cat: cat, dag: ir.NewDAG(), rels: map[string]*ir.Op{}}
	if err := p.statements(func() (bool, error) {
		t, err := p.lex.Peek()
		return t.Kind == frontends.TokEOF, err
	}); err != nil {
		return nil, err
	}
	if len(p.dag.Ops) == 0 {
		return nil, fmt.Errorf("beer: empty workflow")
	}
	if err := p.dag.Validate(); err != nil {
		return nil, fmt.Errorf("beer: %w", err)
	}
	return p.dag, nil
}

func (p *parser) statements(done func() (bool, error)) error {
	for {
		stop, err := done()
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		t, err := p.lex.Peek()
		if err != nil {
			return err
		}
		mark := len(p.dag.Ops)
		if err := p.statement(); err != nil {
			return err
		}
		// Stamp provenance per statement; body parsers run this same loop
		// over their own DAG, so loop-body operators get their own lines.
		p.dag.StampProv("beer", t.Line, mark)
	}
}

func (p *parser) statement() error {
	nameTok, err := p.lex.Next()
	if err != nil {
		return err
	}
	if nameTok.Kind != frontends.TokIdent {
		return fmt.Errorf("beer: line %d: expected relation name, got %q", nameTok.Line, nameTok.Text)
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "="); err != nil {
		return err
	}
	kw, err := p.lex.Next()
	if err != nil {
		return err
	}
	name := nameTok.Text
	switch strings.ToUpper(kw.Text) {
	case "SELECT":
		return p.selectStmt(name)
	case "PROJECT":
		return p.projectStmt(name)
	case "JOIN":
		return p.binaryKeyed(name, ir.OpJoin)
	case "CROSS":
		return p.binaryPlain(name, ir.OpCrossJoin)
	case "UNION":
		return p.binaryPlain(name, ir.OpUnion)
	case "INTERSECT":
		return p.binaryPlain(name, ir.OpIntersect)
	case "DIFFERENCE":
		return p.binaryPlain(name, ir.OpDifference)
	case "DISTINCT":
		return p.unaryPlain(name, ir.OpDistinct)
	case "AGG":
		return p.aggStmt(name)
	case "SUM", "SUB", "MUL", "DIV":
		return p.arithStmt(name, kw.Text)
	case "SORT":
		return p.sortStmt(name)
	case "LIMIT":
		return p.limitStmt(name)
	case "UDF":
		return p.udfStmt(name)
	case "WHILE":
		return p.whileStmt(name)
	default:
		return fmt.Errorf("beer: line %d: unknown operator %q", kw.Line, kw.Text)
	}
}

// resolve finds the producer of a relation name: current scope, enclosing
// WHILE scopes (creating a body INPUT bridge), then the catalog.
func (p *parser) resolve(name string) (*ir.Op, error) {
	if op, ok := p.rels[name]; ok {
		return op, nil
	}
	if p.outer != nil {
		outerOp, err := p.outer.resolve(name)
		if err == nil {
			bridge := p.dag.AddInput(name, "", relation.Schema{})
			p.rels[name] = bridge
			p.whileInputs = append(p.whileInputs, outerOp)
			return bridge, nil
		}
	}
	if tbl, ok := p.cat[name]; ok {
		op := p.dag.AddInput(name, tbl.Path, tbl.Schema)
		p.rels[name] = op
		return op, nil
	}
	return nil, fmt.Errorf("beer: unknown relation %q", name)
}

func (p *parser) define(name string, op *ir.Op) error {
	if _, ok := p.rels[name]; ok {
		return fmt.Errorf("beer: relation %q redefined", name)
	}
	p.rels[name] = op
	return p.semi()
}

func (p *parser) semi() error {
	_, err := p.lex.Expect(frontends.TokSymbol, ";")
	return err
}

func (p *parser) ident() (string, error) {
	t, err := p.lex.Next()
	if err != nil {
		return "", err
	}
	if t.Kind != frontends.TokIdent {
		return "", fmt.Errorf("beer: line %d: expected identifier, got %q", t.Line, t.Text)
	}
	return t.Text, nil
}

// selectStmt: SELECT cols|* FROM rel [WHERE pred]
func (p *parser) selectStmt(name string) error {
	var cols, aliases []string
	star := false
	renamed := false
	if p.lex.Accept(frontends.TokSymbol, "*") {
		star = true
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return err
			}
			alias := c
			if p.lex.Accept(frontends.TokIdent, "AS") {
				alias, err = p.ident()
				if err != nil {
					return err
				}
				renamed = true
			}
			cols = append(cols, c)
			aliases = append(aliases, alias)
			if !p.lex.Accept(frontends.TokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "FROM"); err != nil {
		return err
	}
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	cur := src
	if p.lex.Accept(frontends.TokIdent, "WHERE") {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		out := name
		if !star {
			out = "__" + name + "_where"
		}
		cur = p.dag.Add(ir.OpSelect, out, ir.Params{Pred: pred}, cur)
		if star {
			return p.define(name, cur)
		}
	} else if star {
		return fmt.Errorf("beer: SELECT * FROM %s without WHERE is a no-op", srcName)
	}
	params := ir.Params{Columns: cols}
	if renamed {
		params.As = aliases
	}
	return p.define(name, p.dag.Add(ir.OpProject, name, params, cur))
}

// projectStmt: PROJECT col [AS alias], ... FROM rel
func (p *parser) projectStmt(name string) error {
	var cols, aliases []string
	renamed := false
	for {
		c, err := p.ident()
		if err != nil {
			return err
		}
		alias := c
		if p.lex.Accept(frontends.TokIdent, "AS") {
			alias, err = p.ident()
			if err != nil {
				return err
			}
			renamed = true
		}
		cols = append(cols, c)
		aliases = append(aliases, alias)
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "FROM"); err != nil {
		return err
	}
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	params := ir.Params{Columns: cols}
	if renamed {
		params.As = aliases
	}
	return p.define(name, p.dag.Add(ir.OpProject, name, params, src))
}

// binaryKeyed: JOIN a, b ON c1 = c2 [AND c3 = c4]
func (p *parser) binaryKeyed(name string, t ir.OpType) error {
	lName, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ","); err != nil {
		return err
	}
	rName, err := p.ident()
	if err != nil {
		return err
	}
	left, err := p.resolve(lName)
	if err != nil {
		return err
	}
	right, err := p.resolve(rName)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "ON"); err != nil {
		return err
	}
	var lcols, rcols []string
	for {
		lc, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, "="); err != nil {
			return err
		}
		rc, err := p.ident()
		if err != nil {
			return err
		}
		lcols = append(lcols, frontends.StripQualifier(lc))
		rcols = append(rcols, frontends.StripQualifier(rc))
		if !p.lex.Accept(frontends.TokIdent, "AND") {
			break
		}
	}
	return p.define(name, p.dag.Add(t, name, ir.Params{LeftCols: lcols, RightCols: rcols}, left, right))
}

func (p *parser) binaryPlain(name string, t ir.OpType) error {
	lName, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ","); err != nil {
		return err
	}
	rName, err := p.ident()
	if err != nil {
		return err
	}
	left, err := p.resolve(lName)
	if err != nil {
		return err
	}
	right, err := p.resolve(rName)
	if err != nil {
		return err
	}
	return p.define(name, p.dag.Add(t, name, ir.Params{}, left, right))
}

func (p *parser) unaryPlain(name string, t ir.OpType) error {
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	return p.define(name, p.dag.Add(t, name, ir.Params{}, src))
}

// aggStmt: AGG f(col) AS out [, ...] FROM rel [GROUP BY col, ...]
func (p *parser) aggStmt(name string) error {
	var aggs []ir.AggSpec
	for {
		fnName, err := p.ident()
		if err != nil {
			return err
		}
		var fn ir.AggFunc
		switch strings.ToUpper(fnName) {
		case "SUM":
			fn = ir.AggSum
		case "COUNT":
			fn = ir.AggCount
		case "MIN":
			fn = ir.AggMin
		case "MAX":
			fn = ir.AggMax
		case "AVG":
			fn = ir.AggAvg
		default:
			return fmt.Errorf("beer: unknown aggregate %q", fnName)
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, "("); err != nil {
			return err
		}
		col := ""
		if !p.lex.Accept(frontends.TokSymbol, "*") {
			col, err = p.ident()
			if err != nil {
				return err
			}
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
			return err
		}
		if _, err := p.lex.Expect(frontends.TokIdent, "AS"); err != nil {
			return err
		}
		as, err := p.ident()
		if err != nil {
			return err
		}
		aggs = append(aggs, ir.AggSpec{Func: fn, Col: col, As: as})
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "FROM"); err != nil {
		return err
	}
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	var groupBy []string
	if p.lex.Accept(frontends.TokIdent, "GROUP") {
		if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
			return err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return err
			}
			groupBy = append(groupBy, c)
			if !p.lex.Accept(frontends.TokSymbol, ",") {
				break
			}
		}
	}
	return p.define(name, p.dag.Add(ir.OpAgg, name, ir.Params{GroupBy: groupBy, Aggs: aggs}, src))
}

// arithStmt: MUL [col, operand] [AS dst] FROM rel
func (p *parser) arithStmt(name, opName string) error {
	var aop ir.ArithOp
	switch strings.ToUpper(opName) {
	case "SUM":
		aop = ir.ArithAdd
	case "SUB":
		aop = ir.ArithSub
	case "MUL":
		aop = ir.ArithMul
	case "DIV":
		aop = ir.ArithDiv
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "["); err != nil {
		return err
	}
	lhs, err := p.operand()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ","); err != nil {
		return err
	}
	rhs, err := p.operand()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "]"); err != nil {
		return err
	}
	if !lhs.IsCol {
		return fmt.Errorf("beer: arithmetic target must be a column")
	}
	dst := lhs.Col
	if p.lex.Accept(frontends.TokIdent, "AS") {
		dst, err = p.ident()
		if err != nil {
			return err
		}
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "FROM"); err != nil {
		return err
	}
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	return p.define(name, p.dag.Add(ir.OpArith, name, ir.Params{Dst: dst, ALeft: lhs, ARght: rhs, AOp: aop}, src))
}

// sortStmt: SORT rel BY col [, col...] [DESC]
func (p *parser) sortStmt(name string) error {
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "BY"); err != nil {
		return err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return err
		}
		cols = append(cols, c)
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	desc := p.lex.Accept(frontends.TokIdent, "DESC")
	return p.define(name, p.dag.Add(ir.OpSort, name, ir.Params{SortBy: cols, Desc: desc}, src))
}

// limitStmt: LIMIT rel N
func (p *parser) limitStmt(name string) error {
	srcName, err := p.ident()
	if err != nil {
		return err
	}
	src, err := p.resolve(srcName)
	if err != nil {
		return err
	}
	nTok, err := p.lex.Next()
	if err != nil {
		return err
	}
	lit, err := frontends.ParseLiteral(nTok)
	if err != nil {
		return err
	}
	return p.define(name, p.dag.Add(ir.OpLimit, name, ir.Params{Limit: int(lit.AsInt())}, src))
}

// udfStmt: UDF fname(rel [, rel...])
func (p *parser) udfStmt(name string) error {
	fn, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "("); err != nil {
		return err
	}
	var inputs []*ir.Op
	for {
		rn, err := p.ident()
		if err != nil {
			return err
		}
		op, err := p.resolve(rn)
		if err != nil {
			return err
		}
		inputs = append(inputs, op)
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
		return err
	}
	return p.define(name, p.dag.Add(ir.OpUDF, name, ir.Params{UDFName: fn}, inputs...))
}

// whileStmt: WHILE (iteration < N) CARRY a = b [, c = d] [UNTILEMPTY rel] { stmts }
func (p *parser) whileStmt(name string) error {
	if _, err := p.lex.Expect(frontends.TokSymbol, "("); err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "iteration"); err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "<"); err != nil {
		return err
	}
	nTok, err := p.lex.Next()
	if err != nil {
		return err
	}
	lit, err := frontends.ParseLiteral(nTok)
	if err != nil {
		return err
	}
	maxIter := int(lit.AsInt())
	if maxIter <= 0 {
		return fmt.Errorf("beer: line %d: WHILE bound must be positive", nTok.Line)
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, ")"); err != nil {
		return err
	}
	if _, err := p.lex.Expect(frontends.TokIdent, "CARRY"); err != nil {
		return err
	}
	carried := map[string]string{}
	for {
		in, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.lex.Expect(frontends.TokSymbol, "="); err != nil {
			return err
		}
		out, err := p.ident()
		if err != nil {
			return err
		}
		carried[in] = out
		if !p.lex.Accept(frontends.TokSymbol, ",") {
			break
		}
	}
	condRel := ""
	if p.lex.Accept(frontends.TokIdent, "UNTILEMPTY") {
		condRel, err = p.ident()
		if err != nil {
			return err
		}
	}
	if _, err := p.lex.Expect(frontends.TokSymbol, "{"); err != nil {
		return err
	}

	body := &parser{lex: p.lex, cat: p.cat, dag: ir.NewDAG(), rels: map[string]*ir.Op{}, outer: p}
	if err := body.statements(func() (bool, error) {
		t, err := p.lex.Peek()
		if err != nil {
			return false, err
		}
		if t.Kind == frontends.TokEOF {
			return false, fmt.Errorf("beer: line %d: unterminated WHILE body", t.Line)
		}
		return t.Kind == frontends.TokSymbol && t.Text == "}", nil
	}); err != nil {
		return err
	}
	p.lex.Next() // consume '}'
	// Deduplicate WHILE inputs preserving order.
	var inputs []*ir.Op
	seen := map[*ir.Op]bool{}
	for _, op := range body.whileInputs {
		if !seen[op] {
			seen[op] = true
			inputs = append(inputs, op)
		}
	}
	w := p.dag.Add(ir.OpWhile, name, ir.Params{
		Body: body.dag, MaxIter: maxIter, CondRel: condRel, Carried: carried,
	}, inputs...)
	return p.define(name, w)
}

func (p *parser) operand() (ir.Operand, error) {
	t, err := p.lex.Next()
	if err != nil {
		return ir.Operand{}, err
	}
	switch t.Kind {
	case frontends.TokIdent:
		return ir.ColRef(t.Text), nil
	case frontends.TokNumber, frontends.TokString:
		v, err := frontends.ParseLiteral(t)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.LitOp(v), nil
	default:
		return ir.Operand{}, fmt.Errorf("beer: line %d: expected operand, got %q", t.Line, t.Text)
	}
}

// predicate parses OR of ANDs of comparisons (AND binds tighter).
func (p *parser) predicate() (*ir.Pred, error) {
	left, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	for p.lex.Accept(frontends.TokIdent, "OR") {
		right, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		left = ir.Or(left, right)
	}
	return left, nil
}

func (p *parser) conjunction() (*ir.Pred, error) {
	left, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for p.lex.Accept(frontends.TokIdent, "AND") {
		right, err := p.comparison()
		if err != nil {
			return nil, err
		}
		left = ir.And(left, right)
	}
	return left, nil
}

func (p *parser) comparison() (*ir.Pred, error) {
	lhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok, err := p.lex.Next()
	if err != nil {
		return nil, err
	}
	var cmp ir.CmpOp
	switch opTok.Text {
	case "=", "==":
		cmp = ir.CmpEq
	case "!=":
		cmp = ir.CmpNe
	case "<":
		cmp = ir.CmpLt
	case "<=":
		cmp = ir.CmpLe
	case ">":
		cmp = ir.CmpGt
	case ">=":
		cmp = ir.CmpGe
	default:
		return nil, fmt.Errorf("beer: line %d: expected comparison, got %q", opTok.Line, opTok.Text)
	}
	rhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	return ir.Cmp(lhs, cmp, rhs), nil
}
