package chaos

import (
	"math"
	"testing"
)

func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var nilPlan *Plan
	plans := []*Plan{nilPlan, {}, {Seed: 42}}
	for _, p := range plans {
		if p.Enabled() {
			t.Errorf("%v should be disabled", p)
		}
		if p.CrashesJob("j", 0) || p.Straggles("j", 0) || p.FailsRead("j", 0, 0) {
			t.Errorf("%v injected a fault", p)
		}
		if n := p.TaskFailures("j", 0, 5); n != 0 {
			t.Errorf("%v injected %d task failures with MTBF disabled", p, n)
		}
	}
	if nilPlan.String() != "chaos: disabled" {
		t.Error("nil plan string")
	}
	// Defaults survive a nil receiver.
	if nilPlan.SlowBy() != 3 || nilPlan.Interval(0) != 60 || nilPlan.CheckpointCost() != 1 {
		t.Error("nil plan defaults")
	}
	if nilPlan.SpecMultiple() != 0 {
		t.Error("nil plan should disable speculation")
	}
}

func TestDrawsDeterministicAndKeyed(t *testing.T) {
	p := &Plan{Seed: 7, JobCrashProb: 0.5, SlowNodeProb: 0.5, DFSReadFailProb: 0.5, MTBFSeconds: 100}
	for attempt := 0; attempt < 16; attempt++ {
		if p.CrashesJob("job_a", attempt) != p.CrashesJob("job_a", attempt) {
			t.Fatal("CrashesJob not deterministic")
		}
		if p.FailurePoint("job_a", attempt, 3) != p.FailurePoint("job_a", attempt, 3) {
			t.Fatal("FailurePoint not deterministic")
		}
	}
	// Draw kinds are independent: the same (job, attempt) key must not give
	// identical variates for different fault kinds.
	same := 0
	for i := 0; i < 64; i++ {
		job := string(rune('a' + i%26))
		if p.CrashesJob(job, i) == p.Straggles(job, i) {
			same++
		}
	}
	if same == 64 {
		t.Error("crash and straggle draws are perfectly correlated")
	}
	// Different seeds change fates.
	q := &Plan{Seed: 8, JobCrashProb: 0.5}
	diff := false
	for i := 0; i < 64 && !diff; i++ {
		diff = p.CrashesJob("job_a", i) != q.CrashesJob("job_a", i)
	}
	if !diff {
		t.Error("seed does not influence draws")
	}
}

func TestDrawDistribution(t *testing.T) {
	// The keyed variates should be roughly uniform: with p=0.5 over many
	// (job, attempt) keys, both outcomes occur at unsuspicious rates.
	p := &Plan{Seed: 3, JobCrashProb: 0.5}
	crashed := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.CrashesJob("job", i) {
			crashed++
		}
	}
	if crashed < n/3 || crashed > 2*n/3 {
		t.Errorf("crash rate %d/%d is far from 0.5", crashed, n)
	}
	// FailurePoint stays in [0,1).
	for i := 0; i < 200; i++ {
		if f := p.FailurePoint("job", 0, i); f < 0 || f >= 1 {
			t.Fatalf("FailurePoint %g outside [0,1)", f)
		}
	}
}

func TestTaskFailuresExpectation(t *testing.T) {
	p := &Plan{Seed: 9, MTBFSeconds: 100}
	// Integer expectations are exact; fractional parts are Bernoulli.
	if n := p.TaskFailures("j", 0, 3.0); n != 3 {
		t.Errorf("expected 3 failures, got %d", n)
	}
	sum := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		sum += p.TaskFailures("j", i, 0.5)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-0.5) > 0.1 {
		t.Errorf("mean failures %.3f for expectation 0.5", mean)
	}
}

func TestDefaultPlanScales(t *testing.T) {
	quiet := Default(1, 0)
	if quiet.Enabled() {
		t.Error("zero-rate default plan should be quiet")
	}
	if quiet.SpecMultiple() != 1.5 {
		t.Error("default plan should enable speculation")
	}
	p := Default(1, 30)
	if !p.Enabled() || p.MTBFSeconds != 120 {
		t.Errorf("30/hour => MTBF 120s, got %+v", p)
	}
	hot := Default(1, 6000)
	if hot.JobCrashProb > 0.2 || hot.SlowNodeProb > 0.25 || hot.DFSReadFailProb > 0.3 {
		t.Errorf("probabilities must saturate: %+v", hot)
	}
}
