// Package chaos is the execution stack's deterministic fault-injection
// source. A Plan describes what goes wrong during a simulated execution —
// whole-job crashes, per-task worker failures, slow nodes, DFS read
// failures — and every draw is a pure hash of (seed, kind, job, attempt,
// index). There is no shared generator state: draws are order-independent,
// so concurrently scheduled jobs see exactly the same fates regardless of
// goroutine interleaving, repeated runs with one seed are byte-identical,
// and the package is trivially race-free. The package depends on nothing;
// the engines layer maps the injected faults onto each back-end's recovery
// mechanism (paper Table 3).
package chaos

import "fmt"

// Plan is a seedable fault-injection plan. The zero value injects nothing;
// a nil *Plan is valid everywhere and disables injection at zero cost.
type Plan struct {
	// Seed makes every draw reproducible. Two runs of the same workflow
	// with the same seed produce identical faults, makespans, and traces.
	Seed int64
	// JobCrashProb is the probability an individual job attempt dies
	// outright (driver/master loss) before producing output. Crashed
	// attempts surface as transient errors for the scheduler to retry.
	JobCrashProb float64
	// MTBFSeconds is the cluster-wide mean simulated time between worker
	// (task-level) failures. A job of duration d occupying n of N cluster
	// nodes expects d·n/(N·MTBF) failures. Zero disables task faults.
	MTBFSeconds float64
	// SlowNodeProb is the probability a job attempt lands on a straggler
	// node and runs SlowFactor times slower.
	SlowNodeProb float64
	// SlowFactor is the straggled attempt's duration multiplier
	// (default 3).
	SlowFactor float64
	// DFSReadFailProb is the per-input probability that a block read fails
	// mid-pull and is re-fetched from a replica, paying the transfer twice.
	DFSReadFailProb float64
	// CheckpointIntervalS is the checkpoint period for engines that recover
	// by rollback (default: the engine profile's period, or 60 simulated
	// seconds).
	CheckpointIntervalS float64
	// CheckpointCostS is the simulated cost of writing one checkpoint
	// (default 1).
	CheckpointCostS float64
	// SpeculativeMultiple makes the scheduler launch a backup attempt when
	// a job's duration exceeds this multiple of its predicted cost — the
	// straggler-mitigation policy. First finisher wins; the loser's burn is
	// accounted as waste. Zero disables speculation.
	SpeculativeMultiple float64
}

// Default returns a plan exercising every injection point at the given
// fault rate (expected worker failures per simulated hour across the
// cluster): task faults via MTBF=3600/rate, with job-crash, straggler, and
// DFS-read-failure probabilities scaled to the same rate, and speculative
// backups at 1.5x predicted cost. rate <= 0 yields a seeded but quiet plan.
func Default(seed int64, perHour float64) *Plan {
	p := &Plan{Seed: seed, SpeculativeMultiple: 1.5}
	if perHour <= 0 {
		return p
	}
	p.MTBFSeconds = 3600 / perHour
	scale := perHour / 60 // one fault a minute saturates the probabilities
	if scale > 1 {
		scale = 1
	}
	p.JobCrashProb = 0.2 * scale
	p.SlowNodeProb = 0.25 * scale
	p.DFSReadFailProb = 0.3 * scale
	return p
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.JobCrashProb > 0 || p.MTBFSeconds > 0 ||
		p.SlowNodeProb > 0 || p.DFSReadFailProb > 0)
}

// drawKind namespaces the keyed draws so, e.g., a job's crash draw and its
// straggler draw are independent.
type drawKind uint64

const (
	drawJobCrash drawKind = iota + 1
	drawTaskCount
	drawTaskPoint
	drawStraggle
	drawRead
)

// mix folds one word into the hash with the splitmix64 finalizer — enough
// avalanche that consecutive seeds, attempts, and indices produce
// independent-looking uniform draws.
func mix(h, v uint64) uint64 {
	h ^= v
	h += 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// draw returns the uniform [0,1) variate keyed by (seed, kind, job,
// attempt, index). Pure and allocation-free.
func (p *Plan) draw(kind drawKind, job string, attempt, index int) float64 {
	h := mix(uint64(p.Seed), uint64(kind))
	for i := 0; i < len(job); i++ {
		h = mix(h, uint64(job[i]))
	}
	h = mix(h, uint64(attempt)+1)
	h = mix(h, uint64(index)+1)
	return float64(h>>11) / (1 << 53)
}

// CrashesJob reports whether the (job, attempt) pair dies outright before
// producing output. Deterministic per attempt — and varying across
// attempts, so a retried job is not doomed to repeat the same death.
func (p *Plan) CrashesJob(job string, attempt int) bool {
	if p == nil || p.JobCrashProb <= 0 {
		return false
	}
	return p.draw(drawJobCrash, job, attempt, 0) < p.JobCrashProb
}

// FailsRead reports whether the attempt's input-th DFS read fails mid-pull
// and must be re-fetched from a replica.
func (p *Plan) FailsRead(job string, attempt, input int) bool {
	if p == nil || p.DFSReadFailProb <= 0 {
		return false
	}
	return p.draw(drawRead, job, attempt, input) < p.DFSReadFailProb
}

// Straggles reports whether the attempt landed on a slow node.
func (p *Plan) Straggles(job string, attempt int) bool {
	if p == nil || p.SlowNodeProb <= 0 {
		return false
	}
	return p.draw(drawStraggle, job, attempt, 0) < p.SlowNodeProb
}

// SlowBy returns the straggler duration multiplier (default 3).
func (p *Plan) SlowBy() float64 {
	if p == nil || p.SlowFactor <= 1 {
		return 3
	}
	return p.SlowFactor
}

// TaskFailures converts the attempt's expected failure count (its node-time
// exposure divided by the MTBF) into a concrete count: the integer part
// plus a keyed Bernoulli draw on the fraction.
func (p *Plan) TaskFailures(job string, attempt int, expected float64) int {
	if p == nil || p.MTBFSeconds <= 0 || expected <= 0 {
		return 0
	}
	n := int(expected)
	if p.draw(drawTaskCount, job, attempt, 0) < expected-float64(n) {
		n++
	}
	return n
}

// FailurePoint returns where (as a fraction of the job's duration) the
// attempt's i-th task failure strikes. The draw is keyed by (job, attempt,
// i) only, so every engine sees the same injected fault at the same point —
// which is what makes recovery-cost comparisons across mechanisms fair.
func (p *Plan) FailurePoint(job string, attempt, i int) float64 {
	if p == nil {
		return 0
	}
	return p.draw(drawTaskPoint, job, attempt, i)
}

// Interval returns the checkpoint period, defaulting engineDefault (an
// engine profile's period) and then 60 simulated seconds.
func (p *Plan) Interval(engineDefault float64) float64 {
	if p != nil && p.CheckpointIntervalS > 0 {
		return p.CheckpointIntervalS
	}
	if engineDefault > 0 {
		return engineDefault
	}
	return 60
}

// CheckpointCost returns the simulated cost of writing one checkpoint
// (default 1 second).
func (p *Plan) CheckpointCost() float64 {
	if p == nil || p.CheckpointCostS <= 0 {
		return 1
	}
	return p.CheckpointCostS
}

// SpecMultiple returns the speculation trigger multiple (0 = disabled).
func (p *Plan) SpecMultiple() float64 {
	if p == nil || p.SpeculativeMultiple <= 0 {
		return 0
	}
	return p.SpeculativeMultiple
}

// String renders the plan for logs.
func (p *Plan) String() string {
	if !p.Enabled() {
		return "chaos: disabled"
	}
	return fmt.Sprintf("chaos: seed=%d crash=%.2f mtbf=%.0fs slow=%.2fx%.1f dfs=%.2f spec=%.1fx",
		p.Seed, p.JobCrashProb, p.MTBFSeconds, p.SlowNodeProb, p.SlowBy(), p.DFSReadFailProb, p.SpeculativeMultiple)
}
