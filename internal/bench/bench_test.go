package bench

import (
	"strings"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

func TestTablePrinting(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("hello %d", 42)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "bbbb", "333", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("FIG7"); err != nil {
		t.Error("ByID should be case-insensitive")
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) < 16 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func TestMappingQualityThresholds(t *testing.T) {
	if mappingQuality(105, 100) != "good" {
		t.Error("5% over best should be good")
	}
	if mappingQuality(125, 100) != "reasonable" {
		t.Error("25% over best should be reasonable")
	}
	if mappingQuality(200, 100) != "poor" {
		t.Error("2x over best should be poor")
	}
}

func TestFig14ConfigsCount(t *testing.T) {
	if got := len(fig14Configs()); got != 33 {
		t.Errorf("configs = %d, want the paper's 33", got)
	}
}

func TestRunOnAndAutoAgreeOnResults(t *testing.T) {
	w := workloads.TopShopper(1_000_000)
	c := cluster.Local(7)
	single, err := runOn(w, c, "naiad", engines.ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := runAuto(w, c, nil, engines.ModeOptimized, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Jobs == 0 || auto.Jobs == 0 {
		t.Error("no jobs executed")
	}
	if auto.Makespan > single.Makespan*2 {
		t.Errorf("auto (%v) much worse than a known-good single mapping (%v)", auto.Makespan, single.Makespan)
	}
}

func TestRunUnmergedSlower(t *testing.T) {
	w := workloads.TopShopper(10_000_000)
	c := cluster.EC2(100)
	on, err := runOn(w, c, "hadoop", engines.ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	off, err := runUnmerged(w, c, "hadoop", engines.ModeOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if off.Makespan <= on.Makespan {
		t.Errorf("unmerged (%v) should be slower than merged (%v)", off.Makespan, on.Makespan)
	}
}

func TestRunComboUsesGraphEngine(t *testing.T) {
	lj := workloads.GenerateGraph("a", 4_800_000, 68_000_000, 300, 31)
	web := workloads.GenerateGraph("b", 5_800_000, 82_000_000, 300, 32)
	// Force overlap so the iterative phase is non-trivial.
	w := workloads.CrossCommunityPageRank(lj, lj, 3)
	_ = web
	r, err := runCombo(w, cluster.Local(7), "hadoop", "powergraph")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range r.Engines {
		if e == "powergraph" {
			found = true
		}
	}
	if !found {
		t.Errorf("combo did not use the graph engine: %v", r.Engines)
	}
}

func TestUnknownEngineErrors(t *testing.T) {
	w := workloads.TopShopper(1_000_000)
	if _, err := runOn(w, cluster.Local(7), "flink", engines.ModeOptimized); err == nil {
		t.Error("unknown engine accepted by runOn")
	}
	if _, err := runUnmerged(w, cluster.Local(7), "flink", engines.ModeOptimized); err == nil {
		t.Error("unknown engine accepted by runUnmerged")
	}
	if _, err := runAuto(w, cluster.Local(7), []string{"flink"}, engines.ModeOptimized, nil); err == nil {
		t.Error("unknown engine accepted by runAuto")
	}
}

// TestCheapExperimentsProduceTables smoke-tests the fast experiments end to
// end (the full set runs under `go test -bench` / cmd/mkbench).
func TestCheapExperimentsProduceTables(t *testing.T) {
	for _, id := range []string{"fig2a", "fig7", "fig12a", "fig13", "tab1", "sec7"} {
		exp, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		table, err := exp.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 || len(table.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

// TestExperimentIDsCoverDesignIndex keeps DESIGN.md's per-experiment index
// and the registered experiments in sync: every benchmark named there must
// resolve.
func TestExperimentIDsCoverDesignIndex(t *testing.T) {
	for _, id := range []string{
		"fig2a", "fig2b", "fig3", "fig7", "fig8", "fig8c", "fig9",
		"fig10", "fig11", "fig12a", "fig12b", "fig13", "fig14",
		"fig15", "fig16", "tab1", "tab3", "sec7", "ext-faults",
	} {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %q missing: %v", id, err)
		}
	}
	if got := len(All()); got != 19 {
		t.Errorf("registered experiments = %d, want 19", got)
	}
}
