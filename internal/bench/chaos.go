package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/sched"
	"musketeer/internal/workloads"
)

// The chaos benchmark measures makespan inflation under fault injection:
// one iterative workflow executed on each engine at increasing fault rates,
// with the full recovery machinery live — whole-job crashes retried by the
// scheduler, worker failures recovered per Table 3's mechanism, stragglers
// speculatively re-executed, DFS reads re-fetched. Every run is seeded, so
// the artifact regenerates byte-identically (modulo metadata) on one
// machine and comparably on another.

// ChaosRun is one (engine, fault rate) cell.
type ChaosRun struct {
	Engine       string  `json:"engine"`
	Mechanism    string  `json:"mechanism"`
	FaultsPerHr  float64 `json:"faults_per_hour"`
	MakespanS    float64 `json:"makespan_s"`
	InflationPct float64 `json:"inflation_pct"` // vs the engine's fault-free makespan
	Failures     int     `json:"failures"`
	Checkpoints  int     `json:"checkpoints"`
	Stragglers   int     `json:"stragglers"`
	DFSRetries   int     `json:"dfs_retries"`
	JobRetries   int64   `json:"job_retries"`
	Speculated   int64   `json:"speculated"`
}

// ChaosReport is the benchmark's JSON artifact (BENCH_chaos.json).
type ChaosReport struct {
	Description string     `json:"description"`
	Meta        Meta       `json:"meta"`
	Workflow    string     `json:"workflow"`
	Seed        int64      `json:"seed"`
	Runs        []ChaosRun `json:"runs"`
}

// chaosRates are the swept fault rates (expected worker failures per
// simulated hour across the cluster).
var chaosRates = []float64{0, 6, 30, 120}

// chaosEngines are the swept back-ends, one per Table 3 recovery mechanism.
var chaosEngines = []string{"naiad", "spark", "hadoop", "metis"}

// RunChaos sweeps fault rate × engine over 5-iteration PageRank on the
// 100-node cluster and reports makespan inflation per recovery mechanism.
func RunChaos(seed int64) (*ChaosReport, error) {
	w := workloads.PageRank(workloads.Orkut(), 5)
	rep := &ChaosReport{
		Description: "makespan inflation vs fault rate per engine: 5-iteration PageRank (Orkut), EC2-100, seeded chaos plan (job crashes, worker faults, stragglers + speculation, DFS read retries)",
		Meta:        CollectMeta(fmt.Sprintf("seed=%d", seed)),
		Workflow:    w.Name,
		Seed:        seed,
	}
	baseline := map[string]float64{}
	for _, rate := range chaosRates {
		for _, engine := range chaosEngines {
			run, err := runChaosOn(w, engine, seed, rate)
			if err != nil {
				return nil, fmt.Errorf("bench: chaos %s @%g/h: %w", engine, rate, err)
			}
			if rate == 0 {
				baseline[engine] = run.MakespanS
			}
			if b := baseline[engine]; b > 0 {
				run.InflationPct = 100 * (run.MakespanS - b) / b
			}
			rep.Runs = append(rep.Runs, *run)
		}
	}
	return rep, nil
}

// runChaosOn executes the workload once on the named engine under the
// seeded plan, with retries and speculation live.
func runChaosOn(w *workloads.Workload, engine string, seed int64, rate float64) (*ChaosRun, error) {
	s, err := newSession(w, cluster.EC2(100))
	if err != nil {
		return nil, err
	}
	eng, ok := s.reg[engine]
	if !ok {
		return nil, fmt.Errorf("unknown engine %q", engine)
	}
	plan := chaos.Default(seed, rate)
	s.chaos = plan
	s.metrics = obs.NewRegistry()
	s.sched = sched.New(sched.Options{
		MaxRetries:          5,
		Retryable:           engines.IsTransient,
		Metrics:             s.metrics,
		SpeculativeMultiple: plan.SpecMultiple(),
	})
	res, err := s.execute(engines.ModeOptimized, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.MapTo(dag, est, eng)
	})
	if err != nil {
		return nil, err
	}
	return &ChaosRun{
		Engine:      engine,
		Mechanism:   eng.FaultTolerance().String(),
		FaultsPerHr: rate,
		MakespanS:   float64(res.Makespan),
		Failures:    res.Failures,
		Checkpoints: res.Checkpoints,
		Stragglers:  res.Stragglers,
		DFSRetries:  res.DFSRetries,
		JobRetries:  s.metrics.Counter("sched_job_retries_total").Value(),
		Speculated:  s.metrics.Counter("sched_speculative_attempts_total").Value(),
	}, nil
}

// WriteChaosJSON writes the report as indented JSON.
func WriteChaosJSON(path string, rep *ChaosReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
