package bench

import (
	"fmt"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/workloads"
)

// Tab3Features regenerates the paper's Table 3 for the supported engines:
// a feature matrix of processing paradigm, deployment unit, native
// iteration, fault tolerance, and implementation language, derived from the
// engines' actual metadata (nothing hand-copied).
func Tab3Features() Experiment {
	return Experiment{
		ID:    "tab3",
		Title: "Back-end feature matrix (paper Table 3, supported systems)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "tab3",
				Title:   "Engine features (derived from engine metadata)",
				Columns: []string{"system", "paradigm", "unit", "iteration", "fault-tolerance", "language"},
			}
			all := append(engines.StandardEngines(), engines.XStream())
			for _, e := range all {
				p := e.Profile()
				unit := "cluster"
				if p.SingleMachine {
					unit = "machine"
				}
				iter := "driver-looped"
				if p.NativeIteration {
					iter = "native"
				}
				t.AddRow(e.Name(), e.Paradigm().String(), unit, iter,
					e.FaultTolerance().String(), e.Language())
			}
			t.Note("paper Table 3: the seven bold rows; xstream added here as the §3 extensibility demonstration")
			return t, nil
		},
	}
}

// ExtFaults is an extension experiment grounded in Table 3's fault-
// tolerance column (not a paper figure): the same PageRank workflow under
// increasing failure rates, comparing recovery mechanisms. Task-level retry
// and checkpointing degrade gracefully; driver-looped Hadoop pays per-job
// anyway; a from-scratch restart on long single-machine jobs is
// catastrophic.
func ExtFaults() Experiment {
	return Experiment{
		ID:    "ext-faults",
		Title: "Extension: failure injection vs recovery mechanism (Table 3)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "ext-faults",
				Title:   "5-iteration PageRank (Orkut) under worker failures, EC2-100",
				Columns: []string{"MTBF", "naiad(checkpoint)", "spark(lineage)", "hadoop(task-retry)"},
			}
			w := workloads.PageRank(workloads.Orkut(), 5)
			for _, mtbf := range []float64{0, 600, 120, 30} {
				label := "none"
				if mtbf > 0 {
					label = fmt.Sprintf("%.0fs", mtbf)
				}
				cells := []string{label}
				for _, eng := range []string{"naiad", "spark", "hadoop"} {
					r, err := runOnWithFaults(w, cluster.EC2(100), eng, mtbf)
					if err != nil {
						return nil, err
					}
					cell := secs(r.Makespan)
					if r.Failures > 0 {
						cell += fmt.Sprintf(" (%df)", r.Failures)
					}
					cells = append(cells, cell)
				}
				t.AddRow(cells...)
			}
			t.Note("extension (no paper counterpart): recovery cost per mechanism under injected failures; results are unchanged by failures (verified by tests)")
			return t, nil
		},
	}
}

// runOnWithFaults is runOn with a failure model installed.
func runOnWithFaults(w *workloads.Workload, c *cluster.Cluster, engine string, mtbf float64) (*RunResult, error) {
	s, err := newSession(w, c)
	if err != nil {
		return nil, err
	}
	eng, ok := s.reg[engine]
	if !ok {
		return nil, fmt.Errorf("bench: unknown engine %q", engine)
	}
	s.chaos = &chaos.Plan{MTBFSeconds: mtbf, Seed: 11}
	return s.execute(engines.ModeOptimized, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.MapTo(dag, est, eng)
	})
}
