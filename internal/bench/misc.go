package bench

import (
	"fmt"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

// Fig15SSSPKMeans regenerates Figure 15: SSSP and k-means makespans per
// back-end, with Musketeer's automated choice marked (♣ in the paper).
func Fig15SSSPKMeans() Experiment {
	return Experiment{
		ID:    "fig15",
		Title: "SSSP and k-means: per-back-end makespan and automated choice",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig15",
				Title:   "SSSP (Twitter+costs) and k-means (100M pts, k=100), 5 iterations, EC2-100",
				Columns: []string{"workflow", "system", "makespan", "chosen"},
			}
			c := cluster.EC2(100)
			cases := []struct {
				w    *workloads.Workload
				engs []string
			}{
				{workloads.SSSP(workloads.Twitter(), 5), []string{"hadoop", "spark", "naiad", "powergraph", "graphchi"}},
				{workloads.KMeans(100_000_000, 100, 5), []string{"hadoop", "spark", "naiad", "metis", "serial"}},
			}
			for _, cs := range cases {
				auto, err := runAuto(cs.w, c, nil, engines.ModeOptimized, nil)
				if err != nil {
					return nil, err
				}
				chosen := join(auto.Engines)
				for _, eng := range cs.engs {
					r, err := runOn(cs.w, c, eng, engines.ModeOptimized)
					if err != nil {
						t.AddRow(cs.w.Name, eng, "n/a ("+err.Error()[:min(24, len(err.Error()))]+")", "")
						continue
					}
					mark := ""
					if eng == chosen {
						mark = "♣"
					}
					cell := secs(r.Makespan)
					if r.OOM {
						cell += " (OOM)"
					}
					t.AddRow(cs.w.Name, eng, cell, mark)
				}
				t.AddRow(cs.w.Name, "musketeer-auto", secs(auto.Makespan), "→ "+chosen)
			}
			t.Note("paper Fig15: Musketeer correctly identifies Naiad for both; Spark OOMs on k-means (CROSS JOIN intermediate); SSSP is vertex-centric-expressible, k-means is not")
			return t, nil
		},
	}
}

// Tab1Calibration regenerates Table 1: the PULL/LOAD/PROCESS/PUSH rate
// parameters of the cost function, and verifies the cost model round-trips
// by deriving each rate back from a measured no-op-style job.
func Tab1Calibration() Experiment {
	return Experiment{
		ID:    "tab1",
		Title: "Cost-function rate parameters (calibration, per node)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "tab1",
				Title:   "Calibrated per-node rates (MB/s) and per-job overhead",
				Columns: []string{"engine", "PULL", "LOAD", "PROCESS", "PUSH", "overhead", "derived-PULL"},
			}
			// Derive PULL back from a measured single-operator job on one
			// node: rate = bytes / measured pull seconds.
			w := workloads.ProjectMicro(1e9)
			for _, eng := range engines.StandardEngines() {
				p := eng.Profile()
				derived := "n/a"
				if eng.Paradigm() != engines.ParadigmVertexCentric {
					s, err := newSession(w, cluster.EC2(1))
					if err != nil {
						return nil, err
					}
					plan, err := singleOpPlan(s, eng)
					if err != nil {
						return nil, err
					}
					res, err := engines.Run(engines.RunContext{DFS: s.fs, Cluster: s.c}, plan)
					if err != nil {
						return nil, err
					}
					if res.Breakdown.Pull > 0 {
						derived = fmt.Sprintf("%.0f", float64(res.PullBytes)/1e6/float64(res.Breakdown.Pull))
					}
				}
				t.AddRow(eng.Name(),
					fmt.Sprintf("%.0f", p.PullMBps),
					fmt.Sprintf("%.0f", p.LoadMBps),
					fmt.Sprintf("%.0f", p.ProcMBps),
					fmt.Sprintf("%.0f", p.PushMBps),
					fmt.Sprintf("%.1fs", p.PerJobOverheadS),
					derived)
			}
			t.Note("paper Tab1: PULL/PUSH from a no-op operator, LOAD engine-specific ingest, PROCESS in-memory operator rate; derived-PULL checks the model round-trips (should equal PULL)")
			return t, nil
		},
	}
}

// Sec7StudentJoin regenerates the §7 anecdote: the best student-written
// Hadoop JOIN (608s) vs Musketeer's generated job (223s). We model the
// average-programmer implementation as naive per-operator code generation.
func Sec7StudentJoin() Experiment {
	return Experiment{
		ID:    "sec7",
		Title: "§7 anecdote: student-written vs Musketeer-generated Hadoop join",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "sec7",
				Title:   "JOIN workflow on Hadoop (simulated seconds, local cluster)",
				Columns: []string{"implementation", "makespan", "vs-musketeer"},
			}
			c := cluster.Local(7)
			// The student implementations staged each input through its
			// own identity MapReduce pass before the join (a common
			// beginner pattern) and used per-operator naive code; model
			// that as the unmerged, naive plan of a staged workflow.
			student, err := runUnmerged(workloads.JoinMicroAsymmetricStaged(), c, "hadoop", engines.ModeNaive)
			if err != nil {
				return nil, err
			}
			musketeer, err := runOn(workloads.JoinMicroAsymmetric(), c, "hadoop", engines.ModeOptimized)
			if err != nil {
				return nil, err
			}
			t.AddRow("student (naive codegen)", secs(student.Makespan),
				fmt.Sprintf("%.1fx", float64(student.Makespan)/float64(musketeer.Makespan)))
			t.AddRow("musketeer (generated)", secs(musketeer.Makespan), "1.0x")
			t.Note("paper §7: best of eight student implementations took 608s vs Musketeer's 223s (2.7x)")
			return t, nil
		},
	}
}

// singleOpPlan plans the workload's single compute op on the engine.
func singleOpPlan(s *session, eng *engines.Engine) (*engines.Plan, error) {
	dag, err := s.w.Build()
	if err != nil {
		return nil, err
	}
	frag, err := wholeFragment(dag)
	if err != nil {
		return nil, err
	}
	return eng.Plan(frag, engines.ModeHand)
}
