package bench

import (
	"fmt"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

// exhaustiveBudget caps each exhaustive-search run; the paper lets it run
// for hundreds of seconds at 17-18 operators, which would make the bench
// suite unusable, so runs that exceed the budget report ">budget".
const exhaustiveBudget = 3 * time.Second

// Fig13Partitioning regenerates Figure 13: real wall-clock runtime of the
// exhaustive search and the dynamic-programming heuristic on growing
// prefixes of the 18-operator extended NetFlix workflow.
func Fig13Partitioning() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "DAG partitioning runtime: exhaustive vs dynamic heuristic",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig13",
				Title:   "Partitioning algorithm runtime (real wall clock)",
				Columns: []string{"operators", "exhaustive", "dynamic"},
			}
			c := cluster.EC2(100)
			engs := engines.StandardEngines()
			for _, n := range []int{2, 4, 6, 8, 10, 12, 13, 14, 16, 18} {
				w := workloads.NetflixExtended(n)
				fs := dfs.New()
				if err := w.Stage(fs); err != nil {
					return nil, err
				}
				dag, err := w.Build()
				if err != nil {
					return nil, err
				}
				est, err := core.NewEstimator(dag, fs, c, nil)
				if err != nil {
					return nil, err
				}

				start := time.Now()
				_, exErr := core.PartitionExhaustive(dag, est, engs, exhaustiveBudget)
				exDur := time.Since(start)
				exCell := fmt.Sprintf("%.3fms", float64(exDur.Microseconds())/1000)
				if exDur >= exhaustiveBudget {
					exCell = fmt.Sprintf(">%s (budget)", exhaustiveBudget)
				}
				if exErr != nil {
					exCell = "error"
				}

				start = time.Now()
				if _, err := core.PartitionDynamic(dag, est, engs); err != nil {
					return nil, err
				}
				dynDur := time.Since(start)
				t.AddRow(itoa(n), exCell, fmt.Sprintf("%.3fms", float64(dynDur.Microseconds())/1000))
			}
			t.Note("paper Fig13: exhaustive under 1s up to 13 operators, exponential beyond; dynamic heuristic under 10ms even at 18 operators")
			return t, nil
		},
	}
}
