// Package bench regenerates every table and figure of the paper's
// evaluation (§2 and §6). Each experiment stages a workload, runs it
// through the full Musketeer pipeline (front-end → IR → partitioning →
// code generation → simulated engines), and prints the same series the
// paper plots, alongside the paper's qualitative expectation.
//
// Makespans are simulated seconds from the engines' calibrated profiles;
// Fig 13 (partitioning runtime) is real wall-clock time of the partitioning
// algorithms. EXPERIMENTS.md records paper-vs-measured for every
// experiment.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"musketeer/internal/chaos"
	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/obs"
	"musketeer/internal/sched"
	"musketeer/internal/workloads"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note (paper expectation, caveats).
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one paper table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// RunResult is one measured workflow execution.
type RunResult struct {
	Makespan   cluster.Seconds
	SumJobTime cluster.Seconds
	Jobs       int
	OOM        bool
	Failures   int
	Engines    []string
	// Checkpoints / Stragglers / DFSRetries aggregate the chaos plan's
	// injected faults across the run's jobs.
	Checkpoints int
	Stragglers  int
	DFSRetries  int
	// Accuracy is the execution's predicted-vs-measured makespan record.
	Accuracy *obs.WorkflowAccuracy
}

// secs renders a simulated duration for a table cell.
func secs(s cluster.Seconds) string {
	f := float64(s)
	switch {
	case math.IsInf(f, 1):
		return "inf"
	case f >= 100:
		return fmt.Sprintf("%.0fs", f)
	default:
		return fmt.Sprintf("%.1fs", f)
	}
}

// pct renders a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%+.0f%%", 100*x) }

// session stages a workload onto a fresh deployment.
type session struct {
	fs  *dfs.DFS
	c   *cluster.Cluster
	w   *workloads.Workload
	h   *core.History
	reg map[string]*engines.Engine
	// chaos, when set, injects the plan's faults into the run and adds the
	// expected-recovery term to the planner's fragment scores.
	chaos *chaos.Plan
	// sched, when set, replaces the default scheduler (chaos runs need a
	// retry budget and speculation); metrics, when set, collects counters.
	sched   *sched.Scheduler
	metrics *obs.Registry
}

func newSession(w *workloads.Workload, c *cluster.Cluster) (*session, error) {
	s := &session{fs: dfs.New(), c: c, w: w, h: core.NewHistory(), reg: engines.Registry()}
	if err := w.Stage(s.fs); err != nil {
		return nil, err
	}
	return s, nil
}

// execute runs the workload under the given partitioning strategy.
// strategy receives a fresh estimator and must return a partitioning.
func (s *session) execute(mode engines.PlanMode, strategy func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error)) (*RunResult, error) {
	dag, err := s.w.Build()
	if err != nil {
		return nil, err
	}
	core.Optimize(dag)
	est, err := core.NewEstimator(dag, s.fs, s.c, s.h)
	if err != nil {
		return nil, err
	}
	est.WithChaos(s.chaos)
	part, err := strategy(est, dag)
	if err != nil {
		return nil, err
	}
	r := &core.Runner{
		Ctx:     engines.RunContext{DFS: s.fs, Cluster: s.c, Chaos: s.chaos},
		History: s.h, Mode: mode,
		Sched: s.sched, Metrics: s.metrics,
	}
	res, err := r.Execute(dag, part)
	if err != nil {
		return nil, err
	}
	out := &RunResult{
		Makespan: res.Makespan, SumJobTime: res.SumJobTime,
		Jobs: len(res.Jobs), OOM: res.OOM,
		Engines:  part.Engines(),
		Accuracy: res.Accuracy,
	}
	for _, jr := range res.Jobs {
		out.Failures += jr.Failures
		out.Checkpoints += jr.Checkpoints
		out.DFSRetries += jr.DFSRetries
		if jr.Straggler {
			out.Stragglers++
		}
	}
	return out, nil
}

// runOn executes the workload mapped entirely onto one engine.
func runOn(w *workloads.Workload, c *cluster.Cluster, engine string, mode engines.PlanMode) (*RunResult, error) {
	s, err := newSession(w, c)
	if err != nil {
		return nil, err
	}
	eng, ok := s.reg[engine]
	if !ok {
		return nil, fmt.Errorf("bench: unknown engine %q", engine)
	}
	return s.execute(mode, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.MapTo(dag, est, eng)
	})
}

// runAuto executes the workload with automatic mapping over an engine set
// (nil = the seven standard engines).
func runAuto(w *workloads.Workload, c *cluster.Cluster, engineNames []string, mode engines.PlanMode, h *core.History) (*RunResult, error) {
	s, err := newSession(w, c)
	if err != nil {
		return nil, err
	}
	if h != nil {
		s.h = h
	}
	engs, err := s.resolve(engineNames)
	if err != nil {
		return nil, err
	}
	return s.execute(mode, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.AutoMap(dag, est, engs)
	})
}

// runUnmerged executes with operator merging disabled (one job per
// operator) on one engine — the Fig 12 ablation.
func runUnmerged(w *workloads.Workload, c *cluster.Cluster, engine string, mode engines.PlanMode) (*RunResult, error) {
	s, err := newSession(w, c)
	if err != nil {
		return nil, err
	}
	eng := s.reg[engine]
	if eng == nil {
		return nil, fmt.Errorf("bench: unknown engine %q", engine)
	}
	return s.execute(mode, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.PerOperatorPartitioning(dag, est, eng)
	})
}

// runCombo executes a hybrid workflow with the batch phase on one engine
// and every iterative (WHILE) fragment forced onto a graph engine — the
// fixed combinations of Fig 9.
func runCombo(w *workloads.Workload, c *cluster.Cluster, batch, graph string) (*RunResult, error) {
	s, err := newSession(w, c)
	if err != nil {
		return nil, err
	}
	be, ge := s.reg[batch], s.reg[graph]
	if be == nil || ge == nil {
		return nil, fmt.Errorf("bench: unknown engines %q/%q", batch, graph)
	}
	return s.execute(engines.ModeOptimized, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		// Let the mapper explore the pair; if it declines the graph
		// engine, force it onto the iterative fragment (the paper fixed
		// these combinations by hand).
		part, err := core.AutoMap(dag, est, []*engines.Engine{be, ge})
		if err != nil {
			return nil, err
		}
		usesGraph := false
		for _, j := range part.Jobs {
			if j.Engine == ge {
				usesGraph = true
			}
		}
		if !usesGraph {
			part, err = core.MapTo(dag, est, be)
			if err != nil {
				return nil, err
			}
			for i := range part.Jobs {
				if part.Jobs[i].Frag.While() != nil && ge.ValidFragment(part.Jobs[i].Frag) == nil {
					part.Jobs[i].Engine = ge
					part.Jobs[i].Cost = est.FragmentCost(part.Jobs[i].Frag, ge)
				}
			}
		}
		return part, nil
	})
}

func (s *session) resolve(names []string) ([]*engines.Engine, error) {
	if names == nil {
		return engines.StandardEngines(), nil
	}
	var engs []*engines.Engine
	for _, n := range names {
		e, ok := s.reg[n]
		if !ok {
			return nil, fmt.Errorf("bench: unknown engine %q", n)
		}
		engs = append(engs, e)
	}
	return engs, nil
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		Fig2aProject(), Fig2bJoin(),
		Fig3PageRankMotivation(),
		Fig7TPCH(),
		Fig8PageRank(), Fig8cEfficiency(),
		Fig9CrossCommunity(),
		Fig10NetflixOverhead(), Fig11PageRankOverhead(),
		Fig12aMerging(), Fig12bMerging(),
		Fig13Partitioning(),
		Fig14MappingQuality(),
		Fig16Heuristic(),
		Tab3Features(),
		ExtFaults(),
		Fig15SSSPKMeans(),
		Tab1Calibration(),
		Sec7StudentJoin(),
	}
}

// wholeFragment wraps all of a DAG's operators into one fragment.
func wholeFragment(dag *ir.DAG) (*ir.Fragment, error) {
	return ir.NewFragment(dag, dag.Ops)
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
