package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/frontends"
	"musketeer/internal/frontends/hive"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
)

// The concurrency benchmark measures workflow *throughput* on one shared
// deployment: N identical workflows executed back-to-back versus N
// executed concurrently — each in its own DFS session namespace, all
// sharing one scheduler's admission control, exactly as the public API's
// Workflow.ExecuteCtx arranges. Every execution runs the pipeline
// end-to-end (parse, optimize, plan, generate, run), which is the request
// pattern of a multi-tenant Musketeer service.

// ConcurrencyRun is one measured configuration.
type ConcurrencyRun struct {
	Mode           string  `json:"mode"` // "serial" or "concurrent"
	Workflows      int     `json:"workflows"`
	WallMS         float64 `json:"wall_ms"`
	ThroughputWFPS float64 `json:"throughput_wf_per_s"`
}

// ConcurrencyReport is the benchmark's JSON artifact (BENCH_concurrency.json).
type ConcurrencyReport struct {
	Description string           `json:"description"`
	Meta        Meta             `json:"meta"`
	Workflow    string           `json:"workflow"`
	Runs        []ConcurrencyRun `json:"runs"`
	Speedup     float64          `json:"speedup_concurrent_vs_serial"`
}

const concurrencyHive = `
SELECT id, street, town FROM properties AS locs;
locs JOIN prices ON locs.id = prices.id AS id_price;
SELECT street, town, MAX(price) AS max_price FROM id_price GROUP BY street AND town AS street_price;
`

var concurrencyInputs = []string{"in/properties", "in/prices"}

// stageConcurrency stages the join-heavy property/prices workload (rows
// sets the physical work per execution) on a fresh shared DFS.
func stageConcurrency(fs *dfs.DFS, rows int64) (frontends.Catalog, error) {
	props := relation.New("properties", relation.NewSchema("id:int", "street:string", "town:string"))
	streets := []string{"mill rd", "high st", "king st", "station rd"}
	for i := int64(0); i < rows; i++ {
		props.MustAppend(relation.Row{relation.Int(i), relation.Str(streets[i%4]), relation.Str("cam")})
	}
	props.LogicalBytes = props.PhysicalBytes() * 100
	prices := relation.New("prices", relation.NewSchema("id:int", "price:float"))
	for i := int64(0); i < rows; i++ {
		prices.MustAppend(relation.Row{relation.Int(i), relation.Float(float64(100 + i%977))})
	}
	prices.LogicalBytes = prices.PhysicalBytes() * 100
	if err := fs.WriteRelation("in/properties", props); err != nil {
		return nil, err
	}
	if err := fs.WriteRelation("in/prices", prices); err != nil {
		return nil, err
	}
	return frontends.Catalog{
		"properties": {Path: "in/properties", Schema: props.Schema},
		"prices":     {Path: "in/prices", Schema: prices.Schema},
	}, nil
}

// RunConcurrency executes n identical workflows serially and then
// concurrently on one shared deployment and reports wall-clock throughput.
// Each execution compiles its own workflow (real requests arrive
// pre-compilation) and runs inside a private session namespace with the
// deployment's shared scheduler providing admission control. ctx bounds
// every execution (the harness forwards it instead of minting its own).
func RunConcurrency(ctx context.Context, n int, rows int64) (*ConcurrencyReport, error) {
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
	}
	if rows <= 0 {
		rows = 20_000
	}
	fs := dfs.New()
	c := cluster.Local(7)
	h := core.NewHistory()
	scheduler := sched.New(sched.Options{})
	cat, err := stageConcurrency(fs, rows)
	if err != nil {
		return nil, err
	}
	execOne := func(ns string) error {
		dag, err := hive.Parse(concurrencyHive, cat)
		if err != nil {
			return err
		}
		core.Optimize(dag)
		est, err := core.NewEstimator(dag, fs, c, h)
		if err != nil {
			return err
		}
		part, err := core.AutoMap(dag, est, engines.StandardEngines())
		if err != nil {
			return err
		}
		for _, in := range concurrencyInputs {
			if err := fs.Copy(in, ns+"/"+in); err != nil {
				return err
			}
		}
		r := &core.Runner{
			Ctx:     engines.RunContext{DFS: fs.Namespace(ns), Cluster: c},
			History: h,
			Mode:    engines.ModeOptimized,
			Sched:   scheduler,
		}
		res, err := r.ExecuteCtx(ctx, dag, part)
		if err != nil {
			return err
		}
		if res.Makespan <= 0 {
			return fmt.Errorf("bench: zero makespan")
		}
		return nil
	}

	// Warm-up: fault in lazily initialized state outside the timed runs.
	if err := execOne("__warm/0"); err != nil {
		return nil, err
	}

	serialStart := time.Now()
	for i := 0; i < n; i++ {
		if err := execOne(fmt.Sprintf("__serial/%d", i)); err != nil {
			return nil, err
		}
	}
	serialWall := time.Since(serialStart)

	errs := make([]error, n)
	concStart := time.Now()
	sched.ForEach(n, n, func(i int) { errs[i] = execOne(fmt.Sprintf("__conc/%d", i)) })
	concWall := time.Since(concStart)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	wfps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}
	rep := &ConcurrencyReport{
		Description: "Concurrent-workflow throughput on one shared deployment: N identical Hive workflows (compile+optimize+plan+run each), serial vs concurrent; every execution in its own DFS session under the shared scheduler's admission control.",
		Meta:        CollectMeta(fmt.Sprintf("-concurrency %d (rows %d)", n, rows)),
		Workflow:    fmt.Sprintf("hive property join+agg, %d rows per input", rows),
		Runs: []ConcurrencyRun{
			{Mode: "serial", Workflows: n, WallMS: float64(serialWall.Microseconds()) / 1000, ThroughputWFPS: wfps(serialWall)},
			{Mode: "concurrent", Workflows: n, WallMS: float64(concWall.Microseconds()) / 1000, ThroughputWFPS: wfps(concWall)},
		},
	}
	if concWall > 0 {
		rep.Speedup = serialWall.Seconds() / concWall.Seconds()
	}
	return rep, nil
}

// WriteConcurrencyJSON writes the report as indented JSON.
func WriteConcurrencyJSON(path string, rep *ConcurrencyReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
