package bench

import (
	"fmt"
	"testing"

	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

// BenchmarkPartitionExhaustive measures the exhaustive search on growing
// prefixes of the extended NetFlix workflow. A fresh estimator per iteration
// keeps the fragment-cost cache cold, so the numbers reflect a full search,
// not cache replay.
func BenchmarkPartitionExhaustive(b *testing.B) {
	c := cluster.EC2(100)
	engs := engines.StandardEngines()
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			w := workloads.NetflixExtended(n)
			fs := dfs.New()
			if err := w.Stage(fs); err != nil {
				b.Fatal(err)
			}
			dag, err := w.Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				est, err := core.NewEstimator(dag, fs, c, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := core.PartitionExhaustive(dag, est, engs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
