package bench

import (
	"reflect"
	"testing"
)

// TestRunChaosDeterministicAndMonotone: the chaos benchmark must be a pure
// function of its seed (two runs agree exactly), its fault-free rows must
// anchor inflation at zero, and injected faults can only lengthen a run.
func TestRunChaosDeterministicAndMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault-rate sweep")
	}
	a, err := RunChaos(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("same seed produced different runs")
	}
	if len(a.Runs) != len(chaosRates)*len(chaosEngines) {
		t.Fatalf("%d runs, want %d", len(a.Runs), len(chaosRates)*len(chaosEngines))
	}
	inflated := false
	for _, r := range a.Runs {
		if r.FaultsPerHr == 0 && r.InflationPct != 0 {
			t.Errorf("%s fault-free row has inflation %v%%", r.Engine, r.InflationPct)
		}
		if r.InflationPct < 0 {
			t.Errorf("%s @%g/h shrank by %v%% — faults can only add cost",
				r.Engine, r.FaultsPerHr, r.InflationPct)
		}
		if r.InflationPct > 0 {
			inflated = true
		}
	}
	if !inflated {
		t.Error("no run inflated: the plan injected nothing")
	}
}
