package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"musketeer"
	"musketeer/internal/relation"
	"musketeer/internal/sched"
	"musketeer/internal/workloads"
)

// The service benchmark measures Musketeer-as-a-service: a served
// deployment (the root package's multi-tenant HTTP plane) under a load of
// concurrent workflow sessions. Three phases:
//
//  1. cold — each distinct workflow variant submitted once, sequentially,
//     on an idle service: the full compile + optimize + partition-search +
//     run path, i.e. a guaranteed plan-cache miss.
//  2. hit — the same variants resubmitted sequentially after the cache and
//     calibration have converged: every submission replays a cached plan.
//  3. storm — hundreds of concurrent sessions across multiple tenants and
//     variants with seeded arrival jitter, measuring loaded
//     submit-to-result latency, throughput, and the plan-cache hit rate.
//
// Cold and hit run unloaded so their ratio isolates what the plan cache
// saves per submission; the storm's numbers fold in queueing, which is the
// service's real operating point. Cold/hit p50s and the hit rate are
// machine-comparable; storm latency is gated with generous slack only.

// ServiceLatency summarizes one phase's submit-to-result distribution.
type ServiceLatency struct {
	Samples int     `json:"samples"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// ServiceReport is the benchmark's JSON artifact (BENCH_service.json).
type ServiceReport struct {
	Description string `json:"description"`
	Meta        Meta   `json:"meta"`
	Workflow    string `json:"workflow"`
	Tenants     int    `json:"tenants"`
	Variants    int    `json:"variants"`
	Workers     int    `json:"workers"`
	Sessions    int    `json:"sessions"`
	// ConvergenceRounds is how many sequential all-variant rounds it took
	// until the calibration version held still for two consecutive rounds
	// (feedback settling; cached plans stay valid from then on).
	ConvergenceRounds int `json:"convergence_rounds"`

	Cold  ServiceLatency `json:"cold"`
	Hit   ServiceLatency `json:"hit"`
	Storm ServiceLatency `json:"storm"`

	StormWallMS         float64 `json:"storm_wall_ms"`
	StormThroughputWFPS float64 `json:"storm_throughput_wf_per_s"`
	// HitRate is the storm phase's plan-cache hit fraction.
	HitRate float64 `json:"plan_cache_hit_rate"`
	// Speedup is Cold.P50MS / Hit.P50MS — what skipping compile, optimize,
	// and partition search saves on an otherwise idle service.
	Speedup float64 `json:"cold_over_hit_p50"`
}

// serviceBeer renders one workflow variant: cross-community PageRank in
// BEER with a variant-specific damping literal, so each variant has a
// distinct canonical hash (its own plan-cache entry) while exercising the
// same two-engine shape.
func serviceBeer(damping float64) string {
	return fmt.Sprintf(`
common  = INTERSECT edges_a, edges_b;
degs    = AGG COUNT(*) AS degree FROM common GROUP BY src;
cedges  = JOIN common, degs ON src = src;
srcs    = PROJECT src FROM common;
dsrcs   = DISTINCT srcs;
seeded  = MUL [src, 0.0] AS rank FROM dsrcs;
ranked  = SUM [rank, 1.0] FROM seeded;
cverts  = PROJECT src AS vertex, rank FROM ranked;
ccpr    = WHILE (iteration < 3) CARRY cverts = new_cverts {
    sent     = JOIN cverts, cedges ON vertex = src;
    shared   = DIV [rank, degree] FROM sent;
    gathered = AGG SUM(rank) AS rank FROM shared GROUP BY dst;
    damped   = MUL [rank, %.2f] FROM gathered;
    applied  = SUM [rank, 0.15] FROM damped;
    new_cverts = PROJECT dst AS vertex, rank FROM applied;
};
`, damping)
}

// serviceClient is a minimal HTTP client for the serve API.
type serviceClient struct {
	base string
	hc   *http.Client
}

func (c *serviceClient) stageEdges(tenant string, scale int64) error {
	for i, name := range []string{"edges_a", "edges_b"} {
		g := workloads.GenerateGraph("g", scale, scale*8, 40, int64(i+1))
		rel := relation.New(name, relation.NewSchema("src:int", "dst:int"))
		for _, row := range g.Edges.Rows {
			rel.MustAppend(relation.Row{row[0], row[1]})
		}
		rel.LogicalBytes = g.Edges.LogicalBytes
		url := fmt.Sprintf("%s/api/v1/tenants/%s/inputs/in/%s", c.base, tenant, name)
		resp, err := c.hc.Post(url, "text/tab-separated-values", bytes.NewReader(rel.EncodeBytes()))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("bench: staging %s for %s: status %d", name, tenant, resp.StatusCode)
		}
	}
	return nil
}

func (c *serviceClient) submit(tenant, source string) (string, error) {
	req := musketeer.SubmitRequest{
		Frontend: "beer",
		Source:   source,
		Catalog: map[string]musketeer.TableSpec{
			"edges_a": {Path: "in/edges_a", Schema: []string{"src:int", "dst:int"}},
			"edges_b": {Path: "in/edges_b", Schema: []string{"src:int", "dst:int"}},
		},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Post(c.base+"/api/v1/tenants/"+tenant+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st musketeer.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("bench: submit for %s: status %d", tenant, resp.StatusCode)
	}
	return st.ID, nil
}

func (c *serviceClient) poll(ctx context.Context, tenant, id string) (musketeer.JobStatus, error) {
	for {
		resp, err := c.hc.Get(c.base + "/api/v1/tenants/" + tenant + "/jobs/" + id)
		if err != nil {
			return musketeer.JobStatus{}, err
		}
		var st musketeer.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return musketeer.JobStatus{}, err
		}
		switch st.Status {
		case "ok":
			return st, nil
		case "failed":
			return st, fmt.Errorf("bench: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// session submits one workflow and waits for its result, returning the
// submit-to-result latency and whether the plan cache hit.
func (c *serviceClient) session(ctx context.Context, tenant, source string) (time.Duration, bool, error) {
	start := time.Now()
	id, err := c.submit(tenant, source)
	if err != nil {
		return 0, false, err
	}
	st, err := c.poll(ctx, tenant, id)
	if err != nil {
		return 0, false, err
	}
	return time.Since(start), st.Result != nil && st.Result.PlanCacheHit, nil
}

// latencyStats computes the phase summary from raw samples.
func latencyStats(samples []time.Duration) ServiceLatency {
	if len(samples) == 0 {
		return ServiceLatency{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx].Seconds() * 1e3
	}
	return ServiceLatency{
		Samples: len(sorted),
		P50MS:   pct(0.50),
		P99MS:   pct(0.99),
		MaxMS:   sorted[len(sorted)-1].Seconds() * 1e3,
	}
}

// RunService boots a served deployment under httptest and drives the
// cold / hit / storm phases. sessions is the storm's total submission
// count (0 = 240); tenants the namespace count (0 = 4).
func RunService(ctx context.Context, sessions, tenants int) (*ServiceReport, error) {
	if sessions <= 0 {
		sessions = 240
	}
	if tenants <= 0 {
		tenants = 4
	}
	const (
		variants = 6
		workers  = 8
		scale    = 100_000
	)
	m := musketeer.New(musketeer.EC2(16), musketeer.WithPlanCache(64))
	srv := m.NewServer(musketeer.ServeOptions{
		Workers: workers,
		// The storm fires all sessions at once; the queue must hold a whole
		// tenant's share without 429s.
		MaxQueued: sessions,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &serviceClient{base: ts.URL, hc: ts.Client()}

	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
		if err := client.stageEdges(names[i], scale); err != nil {
			return nil, err
		}
	}
	sources := make([]string, variants)
	for i := range sources {
		sources[i] = serviceBeer(0.80 + float64(i)*0.02)
	}

	// Phase 1: cold. First submission of each variant — full pipeline.
	cold := make([]time.Duration, 0, variants)
	for i, src := range sources {
		d, hit, err := client.session(ctx, names[i%tenants], src)
		if err != nil {
			return nil, err
		}
		if hit {
			return nil, fmt.Errorf("bench: cold submission of variant %d hit the plan cache", i)
		}
		cold = append(cold, d)
	}

	// Converge: repeat all-variant rounds until the calibration version
	// holds still across two consecutive full rounds. Every run's feedback
	// nudges the class models; the decaying calibration step makes the
	// nudges shrink, and once the version freezes for a whole round every
	// stored plan stays valid — the next round is all cache hits. (A rare
	// straggler bump can still land later, when a slowly-drifting model
	// finally crosses the materiality threshold; phase 2 tolerates those.)
	rounds, quiet := 0, 0
	for ; rounds < 60 && quiet < 2; rounds++ {
		v := m.Calibration().Version()
		for i, src := range sources {
			if _, _, err := client.session(ctx, names[i%tenants], src); err != nil {
				return nil, err
			}
		}
		if m.Calibration().Version() == v {
			quiet++
		} else {
			quiet = 0
		}
	}

	// Phase 2: hit. Sequential resubmissions; in steady state every one is
	// a replay. Only hits feed the latency stats — a straggler calibration
	// bump may force one round of re-searches, which would otherwise smear
	// the cold path into the hit distribution — and the phase fails if
	// replays are not the overwhelming majority.
	hits := make([]time.Duration, 0, 4*variants)
	missed := 0
	for r := 0; r < 4; r++ {
		for i, src := range sources {
			d, hit, err := client.session(ctx, names[i%tenants], src)
			if err != nil {
				return nil, err
			}
			if !hit {
				missed++
				continue
			}
			hits = append(hits, d)
		}
	}
	if missed > 2*variants {
		return nil, fmt.Errorf("bench: %d of %d converged submissions missed the plan cache", missed, 4*variants)
	}

	// Phase 3: storm. sessions concurrent clients, seeded arrival jitter.
	rng := rand.New(rand.NewSource(9))
	delays := make([]time.Duration, sessions)
	for i := range delays {
		delays[i] = time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
	}
	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, sessions)
		hitCount  int
		firstErr  error
	)
	stormStart := time.Now()
	// One ForEach worker per session: every client must be in flight at
	// once — the storm measures the service under full concurrency, not a
	// work-stealing trickle.
	sched.ForEach(sessions, sessions, func(i int) {
		time.Sleep(delays[i])
		d, hit, err := client.session(ctx, names[i%tenants], sources[i%variants])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		latencies = append(latencies, d)
		if hit {
			hitCount++
		}
	})
	stormWall := time.Since(stormStart)
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &ServiceReport{
		Description: "Musketeer-as-a-service: multi-tenant serve plane under load. Cold = first submission per workflow variant (full compile+optimize+partition-search), hit = converged resubmission (plan-cache replay), storm = concurrent sessions across tenants with seeded arrival jitter. Latencies are HTTP submit-to-result.",
		Meta:        CollectMeta(fmt.Sprintf("-service %d (tenants %d)", sessions, tenants)),
		Workflow:    fmt.Sprintf("BEER cross-community PageRank, %d variants, logical scale %d vertices, EC2(16)", variants, scale),
		Tenants:     tenants,
		Variants:    variants,
		Workers:     workers,
		Sessions:    sessions,

		ConvergenceRounds: rounds,
		Cold:              latencyStats(cold),
		Hit:               latencyStats(hits),
		Storm:             latencyStats(latencies),

		StormWallMS:         stormWall.Seconds() * 1e3,
		StormThroughputWFPS: float64(len(latencies)) / stormWall.Seconds(),
		HitRate:             float64(hitCount) / float64(len(latencies)),
	}
	if rep.Hit.P50MS > 0 {
		rep.Speedup = rep.Cold.P50MS / rep.Hit.P50MS
	}
	return rep, nil
}

// WriteServiceJSON writes the report as indented JSON.
func WriteServiceJSON(path string, rep *ServiceReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
