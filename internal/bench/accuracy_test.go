package bench

import (
	"strings"
	"testing"
)

func TestAccuracyLearningConverges(t *testing.T) {
	// The calibration loop's core promise: re-running the same workloads
	// against a shared history/calibration store shrinks estimator error
	// round over round.
	rep, err := RunAccuracy(3, []string{"tpch", "pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Learning
	if l == nil || len(l.MeanAbsErrorByRound) != 3 {
		t.Fatalf("learning trajectory missing: %+v", l)
	}
	if !l.Converged {
		t.Errorf("not converged: %v", l.MeanAbsErrorByRound)
	}
	if final, first := l.MeanAbsErrorByRound[2], l.MeanAbsErrorByRound[0]; final >= first {
		t.Errorf("round-3 mean |error| %.3f did not shrink below round-1 %.3f", final, first)
	}
	if l.Calibration == nil || l.Calibration.Version == 0 {
		t.Error("no calibration evidence accumulated")
	}
	// The report keeps the final round in the legacy top-level fields.
	if len(rep.Rounds) != 3 || rep.Summary != rep.Rounds[2].Summary {
		t.Errorf("top-level summary is not the final round's")
	}
}

func TestAccuracyLearningFlipsEngineToFaster(t *testing.T) {
	// Pins the ISSUE's success criterion: after learning, at least one job
	// must flip to an engine that is genuinely faster (measured, not just
	// predicted). On the TPC-H case the calibrated model discovers the
	// workload is small enough for the low-overhead serial engine.
	rep, err := RunAccuracy(4, []string{"tpch"})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Learning
	if l == nil || len(l.Flips) == 0 {
		t.Fatal("no engine flip after 4 learning rounds")
	}
	fasterFlip := false
	for _, f := range l.Flips {
		if f.From == f.To || f.Round < 2 {
			t.Errorf("malformed flip record: %+v", f)
		}
		if f.AfterActualS < f.BeforeActualS {
			fasterFlip = true
		}
	}
	if !fasterFlip {
		t.Errorf("no flip landed on a measurably faster engine: %+v", l.Flips)
	}
}

func TestAccuracyCaseFilter(t *testing.T) {
	rep, err := RunAccuracy(1, []string{"kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workflows) != 1 || !strings.Contains(rep.Workflows[0].Workflow, "kmeans") {
		t.Errorf("filter kept %v", rep.Workflows)
	}
	if _, err := RunAccuracy(1, []string{"no-such-case"}); err == nil || !strings.Contains(err.Error(), "matches no case") {
		t.Errorf("bad filter error = %v", err)
	}
}
