package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/engines"
	"musketeer/internal/obs"
	"musketeer/internal/workloads"
)

// The accuracy benchmark measures the estimator's track record — and, run
// over several rounds, the feedback calibration loop's convergence. Every
// round executes the same auto-mapped workloads against ONE shared history
// store; after each execution the runner feeds observed phase rates and
// operator selectivities back into the calibration state, so later rounds
// plan with learned parameters. The paper's mapping quality (§6.7) depends
// directly on these predictions being usable; Fig 14's conservatism (never
// short-circuiting estimates with recorded runtimes) is preserved — only
// rates and selectivities are calibrated.

// AccuracyReport is the benchmark's JSON artifact (BENCH_accuracy.json).
// Workflows and Summary describe the FINAL round (the calibrated
// steady-state, and the schema older tooling reads); Rounds and Learning
// record the convergence trajectory.
type AccuracyReport struct {
	Description string                  `json:"description"`
	Meta        Meta                    `json:"meta"`
	Workflows   []*obs.WorkflowAccuracy `json:"workflows"`
	Summary     obs.AccuracySummary     `json:"summary"`
	Rounds      []AccuracyRound         `json:"rounds,omitempty"`
	Learning    *AccuracyLearning       `json:"learning,omitempty"`
}

// AccuracyRound is one learning round's accuracy across every case.
type AccuracyRound struct {
	Round     int                     `json:"round"`
	Workflows []*obs.WorkflowAccuracy `json:"workflows"`
	Summary   obs.AccuracySummary     `json:"summary"`
}

// EngineFlip records a job that changed engine between learning rounds:
// the calibrated cost model disagreed with the seed model's choice.
type EngineFlip struct {
	Workflow string `json:"workflow"`
	Job      string `json:"job"`
	// Round is the first round planned with the new engine (1-based).
	Round int    `json:"round"`
	From  string `json:"from"`
	To    string `json:"to"`
	// BeforeActualS / AfterActualS are the job's measured simulated
	// durations on the old and new engine.
	BeforeActualS float64 `json:"before_actual_s"`
	AfterActualS  float64 `json:"after_actual_s"`
}

// AccuracyLearning summarizes the convergence trajectory.
type AccuracyLearning struct {
	Rounds int `json:"rounds"`
	// MeanAbsErrorByRound is each round's mean |workflow makespan error|.
	MeanAbsErrorByRound []float64 `json:"mean_abs_error_by_round"`
	// Converged reports whether the final round's mean |error| is below the
	// first round's (the calibration-convergence gate's condition).
	Converged bool `json:"converged"`
	// Flips lists every job whose engine assignment changed as evidence
	// accumulated.
	Flips []EngineFlip `json:"engine_flips,omitempty"`
	// Calibration is the learned state after the final round.
	Calibration *core.CalibrationSnapshot `json:"calibration,omitempty"`
}

// accuracyCases are the representative workloads: a relational query, a
// recommender join pipeline, an iterative graph computation, and an
// iterative clustering job — each auto-mapped over the standard engines.
func accuracyCases() []struct {
	name string
	w    func() *workloads.Workload
	c    *cluster.Cluster
} {
	return []struct {
		name string
		w    func() *workloads.Workload
		c    *cluster.Cluster
	}{
		{"tpch-q17-sf10/ec100", func() *workloads.Workload { return workloads.TPCHQ17(10) }, cluster.EC2(100)},
		{"netflix-30/ec100", func() *workloads.Workload { return workloads.Netflix(30) }, cluster.EC2(100)},
		{"pagerank-lj-5/ec16", func() *workloads.Workload { return workloads.PageRank(workloads.LiveJournal(), 5) }, cluster.EC2(16)},
		{"kmeans-10M/ec100", func() *workloads.Workload { return workloads.KMeans(10_000_000, 100, 5) }, cluster.EC2(100)},
	}
}

// AccuracyCaseNames lists the benchmark's workload case names.
func AccuracyCaseNames() []string {
	var names []string
	for _, cse := range accuracyCases() {
		names = append(names, cse.name)
	}
	return names
}

// RunAccuracy executes the accuracy cases for the given number of learning
// rounds (minimum 1) against one shared history + calibration store and
// aggregates every per-job and per-workflow predicted-vs-measured record
// into one report. caseFilter, when non-empty, restricts the run to cases
// whose name contains one of the given substrings.
func RunAccuracy(rounds int, caseFilter []string) (*AccuracyReport, error) {
	if rounds < 1 {
		rounds = 1
	}
	cases := accuracyCases()
	if len(caseFilter) > 0 {
		kept := cases[:0]
		for _, cse := range cases {
			for _, f := range caseFilter {
				if strings.Contains(cse.name, f) {
					kept = append(kept, cse)
					break
				}
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("bench: accuracy case filter %v matches no case (have %v)", caseFilter, AccuracyCaseNames())
		}
		cases = kept
	}

	// ONE history (hence one calibration state) across all cases and all
	// rounds: rate evidence transfers across workloads, selectivity
	// evidence transfers across operator classes.
	h := core.NewHistory()
	rep := &AccuracyReport{
		Description: "Estimator accuracy: predicted workflow makespan (critical path over per-job estimated costs at planning time) vs simulated makespan, per job and per workflow, for representative auto-mapped workloads. Rounds share one history/calibration store, so later rounds plan with feedback-calibrated rates and selectivities.",
		Meta:        CollectMeta("-accuracy"),
	}
	learning := &AccuracyLearning{Rounds: rounds}
	// prevEngines maps workflow|job -> (engine, actual seconds) of the
	// previous round, for engine-flip detection.
	type jobRun struct {
		engine  string
		actualS float64
	}
	prev := map[string]jobRun{}
	for round := 1; round <= rounds; round++ {
		log := obs.NewAccuracyLog()
		for _, cse := range cases {
			res, err := runAuto(cse.w(), cse.c, nil, engines.ModeOptimized, h)
			if err != nil {
				return nil, fmt.Errorf("bench: accuracy %s round %d: %w", cse.name, round, err)
			}
			if res.Accuracy == nil {
				return nil, fmt.Errorf("bench: accuracy %s round %d: no accuracy record", cse.name, round)
			}
			res.Accuracy.Workflow = cse.name
			log.Record(res.Accuracy)
			for _, j := range res.Accuracy.Jobs {
				key := cse.name + "|" + j.Job
				if p, ok := prev[key]; ok && p.engine != j.Engine {
					learning.Flips = append(learning.Flips, EngineFlip{
						Workflow: cse.name, Job: j.Job, Round: round,
						From: p.engine, To: j.Engine,
						BeforeActualS: p.actualS, AfterActualS: j.ActualS,
					})
				}
				prev[key] = jobRun{engine: j.Engine, actualS: j.ActualS}
			}
		}
		summary := log.Summary()
		rep.Rounds = append(rep.Rounds, AccuracyRound{Round: round, Workflows: log.Workflows(), Summary: summary})
		learning.MeanAbsErrorByRound = append(learning.MeanAbsErrorByRound, summary.MeanAbsMakespanError)
	}
	final := rep.Rounds[len(rep.Rounds)-1]
	rep.Workflows, rep.Summary = final.Workflows, final.Summary
	if n := len(learning.MeanAbsErrorByRound); n > 1 {
		learning.Converged = learning.MeanAbsErrorByRound[n-1] < learning.MeanAbsErrorByRound[0]
	}
	if snap := h.Calibration().Snapshot(); snap.Version > 0 {
		learning.Calibration = &snap
	}
	rep.Learning = learning
	return rep, nil
}

// WriteAccuracyJSON writes the report as indented JSON.
func WriteAccuracyJSON(path string, rep *AccuracyReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
