package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/obs"
	"musketeer/internal/workloads"
)

// The accuracy benchmark measures the estimator's track record: for a set
// of representative auto-mapped workloads, how far the planning-time
// predicted makespan (critical path over per-job estimated costs) lands
// from the simulated makespan the run actually took. The paper's mapping
// quality (§6.7) depends directly on these predictions being usable.

// AccuracyReport is the benchmark's JSON artifact (BENCH_accuracy.json).
type AccuracyReport struct {
	Description string                  `json:"description"`
	Meta        Meta                    `json:"meta"`
	Workflows   []*obs.WorkflowAccuracy `json:"workflows"`
	Summary     obs.AccuracySummary     `json:"summary"`
}

// accuracyCases are the representative workloads: a relational query, a
// recommender join pipeline, an iterative graph computation, and an
// iterative clustering job — each auto-mapped over the standard engines.
func accuracyCases() []struct {
	name string
	w    *workloads.Workload
	c    *cluster.Cluster
} {
	return []struct {
		name string
		w    *workloads.Workload
		c    *cluster.Cluster
	}{
		{"tpch-q17-sf10/ec100", workloads.TPCHQ17(10), cluster.EC2(100)},
		{"netflix-30/ec100", workloads.Netflix(30), cluster.EC2(100)},
		{"pagerank-lj-5/ec16", workloads.PageRank(workloads.LiveJournal(), 5), cluster.EC2(16)},
		{"kmeans-10M/ec100", workloads.KMeans(10_000_000, 100, 5), cluster.EC2(100)},
	}
}

// RunAccuracy executes the accuracy cases and aggregates every per-job and
// per-workflow predicted-vs-measured record into one report.
func RunAccuracy() (*AccuracyReport, error) {
	log := obs.NewAccuracyLog()
	for _, cse := range accuracyCases() {
		res, err := runAuto(cse.w, cse.c, nil, engines.ModeOptimized, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: accuracy %s: %w", cse.name, err)
		}
		if res.Accuracy == nil {
			return nil, fmt.Errorf("bench: accuracy %s: no accuracy record", cse.name)
		}
		res.Accuracy.Workflow = cse.name
		log.Record(res.Accuracy)
	}
	return &AccuracyReport{
		Description: "Estimator accuracy: predicted workflow makespan (critical path over per-job estimated costs at planning time) vs simulated makespan, per job and per workflow, for representative auto-mapped workloads.",
		Meta:        CollectMeta("-accuracy"),
		Workflows:   log.Workflows(),
		Summary:     log.Summary(),
	}, nil
}

// WriteAccuracyJSON writes the report as indented JSON.
func WriteAccuracyJSON(path string, rep *AccuracyReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
