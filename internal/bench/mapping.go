package bench

import (
	"fmt"

	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/workloads"
)

// mappingConfig is one of the 33 configurations of §6.7: a workflow at a
// particular input size on a particular cluster.
type mappingConfig struct {
	label string
	w     *workloads.Workload
	c     *cluster.Cluster
}

// fig14Configs builds the 33 configurations (6 workflow families, varied
// input sizes and cluster scales).
func fig14Configs() []mappingConfig {
	var cfgs []mappingConfig
	add := func(label string, w *workloads.Workload, c *cluster.Cluster) {
		cfgs = append(cfgs, mappingConfig{label: label, w: w, c: c})
	}
	ec100, ec16, ec1, local := cluster.EC2(100), cluster.EC2(16), cluster.EC2(1), cluster.Local(7)

	for _, sf := range []int{10, 50, 100} {
		add(fmt.Sprintf("tpch-sf%d/ec100", sf), workloads.TPCHQ17(sf), ec100)
	}
	add("tpch-sf10/local", workloads.TPCHQ17(10), local)

	for _, users := range []int64{10, 50, 100} {
		add(fmt.Sprintf("topshop-%dM/ec100", users), workloads.TopShopper(users*1_000_000), ec100)
	}
	add("topshop-10M/local", workloads.TopShopper(10_000_000), local)

	for _, lim := range []int64{15, 30, 60} {
		add(fmt.Sprintf("netflix-%d/ec100", lim), workloads.Netflix(lim), ec100)
	}
	add("netflix-15/local", workloads.Netflix(15), local)

	graphs := map[string]func() *workloads.Graph{
		"lj": workloads.LiveJournal, "orkut": workloads.Orkut, "twitter": workloads.Twitter,
	}
	for name, g := range graphs {
		add("pagerank-"+name+"/ec100", workloads.PageRank(g(), 5), ec100)
		add("pagerank-"+name+"/ec16", workloads.PageRank(g(), 5), ec16)
	}
	add("pagerank-lj/ec1", workloads.PageRank(workloads.LiveJournal(), 5), ec1)
	add("pagerank-orkut/ec1", workloads.PageRank(workloads.Orkut(), 5), ec1)

	add("sssp-lj/ec16", workloads.SSSP(workloads.LiveJournal(), 5), ec16)
	add("sssp-lj/ec100", workloads.SSSP(workloads.LiveJournal(), 5), ec100)
	add("sssp-twitter/ec100", workloads.SSSP(workloads.Twitter(), 5), ec100)
	add("sssp-twitter/ec16", workloads.SSSP(workloads.Twitter(), 5), ec16)

	add("kmeans-10M/ec100", workloads.KMeans(10_000_000, 100, 5), ec100)
	add("kmeans-100M/ec100", workloads.KMeans(100_000_000, 100, 5), ec100)

	lj, web := workloads.LiveJournal(), workloads.WebCommunity()
	add("crosscomm/local", workloads.CrossCommunityPageRank(lj, web, 5), local)

	for _, size := range []struct {
		label string
		bytes int64
	}{{"512MB", 512e6}, {"8GB", 8e9}, {"32GB", 32e9}} {
		add("project-"+size.label+"/local", workloads.ProjectMicro(size.bytes), local)
	}
	add("join-asym/local", workloads.JoinMicroAsymmetric(), local)
	add("join-sym/local", workloads.JoinMicroSymmetric(), local)
	add("join-sym/ec100", workloads.JoinMicroSymmetric(), ec100)
	return cfgs
}

// mappingQuality classifies a makespan against the best observed option:
// within 10% is "good", within 30% "reasonable", else "poor" (§6.7).
func mappingQuality(m, best cluster.Seconds) string {
	r := float64(m) / float64(best)
	switch {
	case r <= 1.10:
		return "good"
	case r <= 1.30:
		return "reasonable"
	default:
		return "poor"
	}
}

// Fig14MappingQuality regenerates Figure 14: the quality of Musketeer's
// automated back-end choices with no / partial / full workflow history,
// against the decision-tree baseline, over the 33 configurations.
func Fig14MappingQuality() Experiment {
	return Experiment{
		ID:    "fig14",
		Title: "Automated mapping quality: history vs decision tree (33 configs)",
		Run:   runFig14,
	}
}

func runFig14() (*Table, error) {
	strategies := []string{"no-history", "partial-history", "full-history", "decision-tree"}
	counts := map[string]map[string]int{}
	for _, s := range strategies {
		counts[s] = map[string]int{}
	}
	configs := fig14Configs()
	for _, cfg := range configs {
		res, err := evaluateMappingConfig(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.label, err)
		}
		for _, s := range strategies {
			counts[s][mappingQuality(res[s], res["best"])]++
		}
	}
	t := &Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("Automated mapping quality over %d configurations", len(configs)),
		Columns: []string{"strategy", "good(≤10%)", "reasonable(≤30%)", "poor"},
	}
	total := len(configs)
	for _, s := range strategies {
		g, r, p := counts[s]["good"], counts[s]["reasonable"], counts[s]["poor"]
		t.AddRow(s,
			fmt.Sprintf("%d (%.0f%%)", g, 100*float64(g)/float64(total)),
			fmt.Sprintf("%d (%.0f%%)", r, 100*float64(r)/float64(total)),
			fmt.Sprintf("%d (%.0f%%)", p, 100*float64(p)/float64(total)))
	}
	t.Note("paper Fig14: ~50%% good with no knowledge, >80%% good with partial history, always good/optimal with full (per-operator) history; the decision tree yields many poor choices")
	return t, nil
}

// evaluateMappingConfig measures every single-engine option (ground truth)
// plus the four mapping strategies, returning their makespans and the best
// observed option under "best".
func evaluateMappingConfig(cfg mappingConfig) (map[string]cluster.Seconds, error) {
	out := map[string]cluster.Seconds{}
	best := core.Infeasible

	// Ground truth: each engine on its own.
	for _, eng := range engines.StandardEngines() {
		r, err := runOn(cfg.w, cfg.c, eng.Name(), engines.ModeOptimized)
		if err != nil {
			continue // engine cannot run this workflow (e.g. GAS-only)
		}
		if r.Makespan < best {
			best = r.Makespan
		}
	}

	record := func(name string, r *RunResult, err error) error {
		if err != nil {
			return err
		}
		out[name] = r.Makespan
		if r.Makespan < best {
			best = r.Makespan
		}
		return nil
	}

	// No history.
	h := core.NewHistory()
	r1, err := runAuto(cfg.w, cfg.c, nil, engines.ModeOptimized, h)
	if err := record("no-history", r1, err); err != nil {
		return nil, err
	}
	// Partial history: the first run's fragment-boundary observations.
	r2, err := runAuto(cfg.w, cfg.c, nil, engines.ModeOptimized, h)
	if err := record("partial-history", r2, err); err != nil {
		return nil, err
	}
	// Full history: profile operator by operator first (§6.7), then map.
	hFull := core.NewHistory()
	if _, err := profileRun(cfg, hFull); err != nil {
		return nil, err
	}
	r3, err := runAuto(cfg.w, cfg.c, nil, engines.ModeOptimized, hFull)
	if err := record("full-history", r3, err); err != nil {
		return nil, err
	}
	// Decision tree.
	r4, err := runDecisionTree(cfg)
	if err := record("decision-tree", r4, err); err != nil {
		return nil, err
	}
	out["best"] = best
	return out, nil
}

// profileRun executes the workflow operator-by-operator to populate full
// per-operator history.
func profileRun(cfg mappingConfig, h *core.History) (*RunResult, error) {
	s, err := newSession(cfg.w, cfg.c)
	if err != nil {
		return nil, err
	}
	s.h = h
	return s.execute(engines.ModeOptimized, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.PerOperatorPartitioning(dag, est, s.reg["naiad"])
	})
}

// runDecisionTree executes the workflow under the decision-tree baseline.
func runDecisionTree(cfg mappingConfig) (*RunResult, error) {
	s, err := newSession(cfg.w, cfg.c)
	if err != nil {
		return nil, err
	}
	return s.execute(engines.ModeOptimized, func(est *core.Estimator, dag *ir.DAG) (*core.Partitioning, error) {
		return core.DecisionTreePartition(dag, est, s.reg)
	})
}
