package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"musketeer/internal/exec"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
	"musketeer/internal/workloads"
)

// The streaming benchmark measures what the fused batch-iterator pipelines
// buy over materialized operator-at-a-time evaluation: throughput on a
// fusable SELECT→PROJECT→AGG chain, peak heap on the fig3-style iterative
// PageRank workload (whose WHILE body is fused between the loop-carried
// relations), and the columnar codec's wire size against TSV on a
// shuffle-shaped relation.

// StreamingPipeline compares rows/sec through a SELECT→PROJECT→AGG chain.
type StreamingPipeline struct {
	Rows                   int     `json:"rows"`
	MaterializedRowsPerSec float64 `json:"materialized_rows_per_sec"`
	StreamedRowsPerSec     float64 `json:"streamed_rows_per_sec"`
	Speedup                float64 `json:"speedup_streamed_vs_materialized"`
}

// StreamingMemory compares peak heap while executing the iterative
// PageRank workload with WHILE-body fusion on versus off.
type StreamingMemory struct {
	Workload               string  `json:"workload"`
	Iterations             int     `json:"iterations"`
	MaterializedPeakBytes  int64   `json:"materialized_peak_bytes"`
	StreamedPeakBytes      int64   `json:"streamed_peak_bytes"`
	PeakReductionPct       float64 `json:"peak_reduction_pct"`
	MaterializedAllocBytes int64   `json:"materialized_alloc_bytes"`
	StreamedAllocBytes     int64   `json:"streamed_alloc_bytes"`
}

// StreamingCodec compares encoded shuffle sizes for the same relation.
type StreamingCodec struct {
	Rows          int     `json:"rows"`
	TSVBytes      int     `json:"tsv_bytes"`
	ColumnarBytes int     `json:"columnar_bytes"`
	Ratio         float64 `json:"columnar_vs_tsv_ratio"`
}

// StreamingReport is the benchmark's JSON artifact (BENCH_streaming.json).
type StreamingReport struct {
	Description string            `json:"description"`
	Meta        Meta              `json:"meta"`
	Pipeline    StreamingPipeline `json:"pipeline"`
	Memory      StreamingMemory   `json:"memory"`
	Codec       StreamingCodec    `json:"codec"`
}

// streamingInput builds the chain benchmark's input: a mixed int/string
// relation large enough to amortize per-batch overheads and trip the
// chunk-parallel threshold.
func streamingInput(rows int) *relation.Relation {
	r := rand.New(rand.NewSource(17))
	regions := []string{"east", "west", "north", "south", "central"}
	rel := relation.New("events", relation.NewSchema("region:string", "amount:int", "flag:int"))
	for i := 0; i < rows; i++ {
		rel.MustAppend(relation.Row{
			relation.Str(regions[r.Intn(len(regions))]),
			relation.Int(int64(r.Intn(10_000))),
			relation.Int(int64(r.Intn(10))),
		})
	}
	return rel
}

// streamingChain builds SELECT(flag>2) → PROJECT(region,amount) →
// AGG(sum amount by region) over the events input — the fully fusable shape.
func streamingChain() (*ir.DAG, error) {
	d := ir.NewDAG()
	in := d.AddInput("events", "in/events", relation.NewSchema("region:string", "amount:int", "flag:int"))
	sel := d.Add(ir.OpSelect, "hot", ir.Params{Pred: ir.Cmp(ir.ColRef("flag"), ir.CmpGt, ir.LitOp(relation.Int(2)))}, in)
	proj := d.Add(ir.OpProject, "slim", ir.Params{Columns: []string{"region", "amount"}}, sel)
	d.Add(ir.OpAgg, "by_region", ir.Params{GroupBy: []string{"region"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "amount", As: "total"}}}, proj)
	return d, d.Validate()
}

// timeChain evaluates the chain repeatedly under opts and returns the best
// wall-clock duration of a single evaluation.
func timeChain(ops []*ir.Op, input *relation.Relation, opts exec.RunOptions, reps int) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		env := exec.Env{"in/events": input}
		trace := exec.NewTrace()
		start := time.Now()
		if err := exec.RunOps(ops, env, trace, opts); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if out := env["by_region"]; out == nil || out.NumRows() == 0 {
			return 0, fmt.Errorf("bench: streaming chain produced no output")
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// measurePeak evaluates run while sampling heap usage and returns the peak
// heap growth over the pre-run floor plus the total bytes allocated.
func measurePeak(run func() error) (peak, alloc int64, err error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var maxHeap atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	//mkvet:ignore scheduler-only-concurrency heap-sampling goroutine joined via done before return; routing it through sched would distort the measurement it takes
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if h := int64(ms.HeapAlloc); h > maxHeap.Load() {
				maxHeap.Store(h)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	err = run()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(stop)
	<-done
	if h := int64(after.HeapAlloc); h > maxHeap.Load() {
		maxHeap.Store(h)
	}
	peak = maxHeap.Load() - int64(before.HeapAlloc)
	if peak < 0 {
		peak = 0
	}
	alloc = int64(after.TotalAlloc - before.TotalAlloc)
	return peak, alloc, err
}

// runPageRankExec evaluates the PageRank DAG directly on the execution
// layer (the WHILE driver included) with fusion governed by opts.
func runPageRankExec(w *workloads.Workload, opts exec.RunOptions) func() error {
	return func() error {
		dag, err := w.Build()
		if err != nil {
			return err
		}
		ops, err := dag.TopoSort()
		if err != nil {
			return err
		}
		env := exec.Env{}
		for path, rel := range w.Inputs {
			env[path] = rel
		}
		if err := exec.RunOps(ops, env, exec.NewTrace(), opts); err != nil {
			return err
		}
		if out := env[w.Output]; out == nil || out.NumRows() == 0 {
			return fmt.Errorf("bench: %s produced no output", w.Name)
		}
		return nil
	}
}

// runStreamingPipeline measures fused-versus-materialized throughput on
// the SELECT→PROJECT→AGG chain. Its working set (input relation, batch
// state) is scoped here so the caller can return the heap to a clean floor
// before the peak-memory section.
func runStreamingPipeline(rows int) (StreamingPipeline, error) {
	const reps = 5
	dag, err := streamingChain()
	if err != nil {
		return StreamingPipeline{}, err
	}
	ops, err := dag.TopoSort()
	if err != nil {
		return StreamingPipeline{}, err
	}
	input := streamingInput(rows)
	sinkOnly := func(op *ir.Op) bool { return op.Out == "by_region" }
	// Warm up both paths once so lazily initialized state is off the clock.
	if _, err := timeChain(ops, input, exec.RunOptions{NoFuse: true}, 1); err != nil {
		return StreamingPipeline{}, err
	}
	if _, err := timeChain(ops, input, exec.RunOptions{Keep: sinkOnly}, 1); err != nil {
		return StreamingPipeline{}, err
	}
	matD, err := timeChain(ops, input, exec.RunOptions{NoFuse: true}, reps)
	if err != nil {
		return StreamingPipeline{}, err
	}
	fusedD, err := timeChain(ops, input, exec.RunOptions{Keep: sinkOnly}, reps)
	if err != nil {
		return StreamingPipeline{}, err
	}
	p := StreamingPipeline{
		Rows:                   rows,
		MaterializedRowsPerSec: float64(rows) / matD.Seconds(),
		StreamedRowsPerSec:     float64(rows) / fusedD.Seconds(),
	}
	if matD > 0 {
		p.Speedup = float64(matD) / float64(fusedD)
	}
	return p, nil
}

// RunStreaming measures the streaming execution layer and returns the
// report. rows sizes the chain benchmark input (0 = default).
func RunStreaming(rows int) (*StreamingReport, error) {
	if rows <= 0 {
		rows = 400_000
	}

	// Pipeline throughput: fused chain versus operator-at-a-time.
	pipeline, err := runStreamingPipeline(rows)
	if err != nil {
		return nil, err
	}

	// Peak memory: the fig3 iterative workload, WHILE-body fusion on vs off.
	// A larger physical sample than the motivation figure's default makes
	// the per-iteration materialization cost visible to the heap sampler.
	// The chain benchmark's working set is out of scope by now; GC pacing
	// for the peak comparison starts from a clean floor.
	runtime.GC()
	const prIters = 5
	g := workloads.GenerateGraph("orkut-streaming", 3_000_000, 117_000_000, 30_000, 2)
	pr := workloads.PageRank(g, prIters)
	matRun := runPageRankExec(pr, exec.RunOptions{NoFuse: true})
	fusedRun := runPageRankExec(pr, exec.RunOptions{})
	// Warm-up, then measure; keep the best (lowest) peak of two passes per
	// mode so a stray GC pause does not decide the comparison.
	if err := matRun(); err != nil {
		return nil, err
	}
	mem := StreamingMemory{Workload: pr.Name, Iterations: prIters}
	for i := 0; i < 2; i++ {
		peak, alloc, err := measurePeak(matRun)
		if err != nil {
			return nil, err
		}
		if mem.MaterializedPeakBytes == 0 || peak < mem.MaterializedPeakBytes {
			mem.MaterializedPeakBytes, mem.MaterializedAllocBytes = peak, alloc
		}
		peak, alloc, err = measurePeak(fusedRun)
		if err != nil {
			return nil, err
		}
		if mem.StreamedPeakBytes == 0 || peak < mem.StreamedPeakBytes {
			mem.StreamedPeakBytes, mem.StreamedAllocBytes = peak, alloc
		}
	}
	if mem.MaterializedPeakBytes > 0 {
		mem.PeakReductionPct = 100 * (1 - float64(mem.StreamedPeakBytes)/float64(mem.MaterializedPeakBytes))
	}

	// Codec: a real shuffle-shaped relation — the PageRank edge
	// intermediate whose integer columns are exactly what engines move
	// between jobs — in both wire formats.
	shuffle := g.Edges
	tsv := shuffle.EncodeBytesOpts(relation.CodecOptions{})
	col := shuffle.EncodeColumnar(relation.CodecOptions{})
	codec := StreamingCodec{Rows: shuffle.NumRows(), TSVBytes: len(tsv), ColumnarBytes: len(col)}
	if len(tsv) > 0 {
		codec.Ratio = float64(len(col)) / float64(len(tsv))
	}

	return &StreamingReport{
		Description: "Streaming execution layer: fused SELECT→PROJECT→AGG chain throughput vs operator-at-a-time materialization; peak heap running 5-iteration PageRank with WHILE-body fusion on vs off; columnar vs TSV encoded bytes for the chain's shuffle-shaped input.",
		Meta:        CollectMeta(fmt.Sprintf("-streaming (rows %d)", rows)),
		Pipeline:    pipeline,
		Memory:      mem,
		Codec:       codec,
	}, nil
}

// WriteStreamingJSON writes the report as indented JSON.
func WriteStreamingJSON(path string, rep *StreamingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
