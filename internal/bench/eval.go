package bench

import (
	"fmt"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

// Fig7TPCH regenerates Figure 7: TPC-H query 17 makespan vs scale factor
// for Hive on its native Hadoop back-end, the same Hive workflow mapped by
// Musketeer to Naiad, the Lindi workflow on stock Naiad, and Musketeer's
// generated Naiad code for the Lindi workflow.
func Fig7TPCH() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "TPC-H Q17: legacy workflow speedup via re-mapping (EC2-100)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig7",
				Title:   "TPC-H Q17 makespan (simulated seconds, 100-node EC2)",
				Columns: []string{"SF", "hive(hadoop)", "musketeer→naiad", "lindi(naiad)", "musketeer(lindi)→naiad"},
			}
			c := cluster.EC2(100)
			for _, sf := range []int{10, 40, 70, 100} {
				hiveW := workloads.TPCHQ17(sf)
				lindiW := workloads.TPCHQ17Lindi(sf)
				hiveNative, err := runOn(hiveW, c, "hadoop", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				muskNaiad, err := runOn(hiveW, c, "naiad", engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				lindiNative, err := runOn(lindiW, c, "naiad-lindi", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				muskFromLindi, err := runOn(lindiW, c, "naiad", engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				t.AddRow(itoa(sf), secs(hiveNative.Makespan), secs(muskNaiad.Makespan),
					secs(lindiNative.Makespan), secs(muskFromLindi.Makespan))
			}
			t.Note("paper: Hive needs 3 Hadoop jobs (restrictive MR paradigm); Musketeer→Naiad runs it as one job, ~2x faster; Lindi's non-associative GROUP BY collapses to one machine, Musketeer's improved operator is up to 9x faster at SF100")
			return t, nil
		},
	}
}

// Fig8PageRank regenerates Figures 8a/8b: Musketeer's best mapping vs
// hand-written baselines for PageRank at 100/16/1 nodes.
func Fig8PageRank() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "PageRank: Musketeer's mapping vs hand-written baselines",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig8",
				Title:   "5-iteration PageRank makespan (simulated seconds, EC2)",
				Columns: []string{"graph", "nodes", "best-baseline", "baseline-sys", "musketeer", "musketeer-sys", "overhead"},
			}
			baselines := map[int][]string{
				100: {"hadoop", "spark", "naiad"},
				16:  {"naiad", "powergraph", "spark"},
				1:   {"graphchi", "metis", "serial"},
			}
			for _, g := range []*workloads.Graph{workloads.Orkut(), workloads.Twitter()} {
				w := workloads.PageRank(g, 5)
				for _, nodes := range []int{100, 16, 1} {
					c := cluster.EC2(nodes)
					bestName := ""
					best := cluster.Seconds(0)
					for _, eng := range baselines[nodes] {
						r, err := runOn(w, c, eng, engines.ModeHand)
						if err != nil {
							return nil, err
						}
						if bestName == "" || r.Makespan < best {
							bestName, best = eng, r.Makespan
						}
					}
					auto, err := runAuto(w, c, nil, engines.ModeOptimized, nil)
					if err != nil {
						return nil, err
					}
					over := (float64(auto.Makespan) - float64(best)) / float64(best)
					t.AddRow(g.Name, itoa(nodes), secs(best), bestName,
						secs(auto.Makespan), join(auto.Engines), pct(over))
				}
			}
			t.Note("paper Fig8: at each scale Musketeer's mapping is almost as good as the best-in-class baseline (GraphChi at 1 node, Naiad/PowerGraph at 16, Naiad at 100)")
			return t, nil
		},
	}
}

// Fig8cEfficiency regenerates Figure 8c: resource efficiency of PageRank
// on the Twitter graph — the best single-node execution's aggregate time
// normalized by each configuration's aggregate time.
func Fig8cEfficiency() Experiment {
	return Experiment{
		ID:    "fig8c",
		Title: "PageRank Twitter: resource efficiency",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig8c",
				Title:   "Resource efficiency (best single-node aggregate / config aggregate)",
				Columns: []string{"nodes", "system", "makespan", "aggregate", "efficiency"},
			}
			w := workloads.PageRank(workloads.Twitter(), 5)
			// Best single-node execution: the most efficient baseline.
			bestSingle := cluster.Seconds(0)
			for _, eng := range []string{"graphchi", "metis", "serial"} {
				r, err := runOn(w, cluster.EC2(1), eng, engines.ModeHand)
				if err != nil {
					return nil, err
				}
				if bestSingle == 0 || r.Makespan < bestSingle {
					bestSingle = r.Makespan
				}
			}
			configs := []struct {
				nodes  int
				engine string
				mode   engines.PlanMode
			}{
				{100, "naiad", engines.ModeHand},
				{100, "spark", engines.ModeHand},
				{16, "powergraph", engines.ModeHand},
				{16, "naiad", engines.ModeHand},
				{1, "graphchi", engines.ModeHand},
			}
			for _, cfg := range configs {
				r, err := runOn(w, cluster.EC2(cfg.nodes), cfg.engine, cfg.mode)
				if err != nil {
					return nil, err
				}
				agg := float64(r.Makespan) * float64(cfg.nodes)
				eff := float64(bestSingle) / agg
				if eff > 1 {
					eff = 1
				}
				t.AddRow(itoa(cfg.nodes), cfg.engine, secs(r.Makespan),
					secs(cluster.Seconds(agg)), fmt.Sprintf("%.0f%%", 100*eff))
				// Musketeer's choice at this scale.
				auto, err := runAuto(w, cluster.EC2(cfg.nodes), nil, engines.ModeOptimized, nil)
				if err != nil {
					return nil, err
				}
				aggA := float64(auto.Makespan) * float64(cfg.nodes)
				effA := float64(bestSingle) / aggA
				if effA > 1 {
					effA = 1
				}
				t.AddRow(itoa(cfg.nodes), "musketeer("+join(auto.Engines)+")", secs(auto.Makespan),
					secs(cluster.Seconds(aggA)), fmt.Sprintf("%.0f%%", 100*effA))
			}
			t.Note("paper Fig8c: distributed scales trade efficiency for speed; Musketeer's efficiency tracks the best stand-alone implementation at every scale")
			return t, nil
		},
	}
}

// Fig9CrossCommunity regenerates Figure 9: the hybrid cross-community
// PageRank under single back-ends and Musketeer-explored combinations.
func Fig9CrossCommunity() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "Cross-community PageRank: combining back-ends (local cluster)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig9",
				Title:   "Cross-community PageRank makespan (simulated seconds)",
				Columns: []string{"mapping", "engines-used", "jobs", "makespan"},
			}
			lj := workloads.LiveJournal()
			web := workloads.WebCommunity()
			w := workloads.CrossCommunityPageRank(lj, web, 5)
			c := cluster.Local(7)
			singles := []struct {
				label  string
				engine string
			}{
				{"hadoop only", "hadoop"},
				{"spark only", "spark"},
				{"lindi only", "naiad-lindi"},
			}
			for _, cs := range singles {
				r, err := runOn(w, c, cs.engine, engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				t.AddRow(cs.label, join(r.Engines), itoa(r.Jobs), secs(r.Makespan))
			}
			combos := []struct {
				label        string
				batch, graph string
			}{
				{"hadoop + powergraph", "hadoop", "powergraph"},
				{"hadoop + graphchi", "hadoop", "graphchi"},
				{"spark + powergraph", "spark", "powergraph"},
			}
			for _, cs := range combos {
				r, err := runCombo(w, c, cs.batch, cs.graph)
				if err != nil {
					return nil, err
				}
				t.AddRow(cs.label, join(r.Engines), itoa(r.Jobs), secs(r.Makespan))
			}
			r, err := runOn(w, c, "naiad", engines.ModeOptimized)
			if err != nil {
				return nil, err
			}
			t.AddRow("lindi + graphlinq (naiad)", join(r.Engines), itoa(r.Jobs), secs(r.Makespan))
			auto, err := runAuto(w, c, nil, engines.ModeOptimized, nil)
			if err != nil {
				return nil, err
			}
			t.AddRow("musketeer auto", join(auto.Engines), itoa(auto.Jobs), secs(auto.Makespan))
			t.Note("paper Fig9: combinations beat single general-purpose systems — the batch intersection suits Hadoop/Spark, the iterative PageRank suits graph engines; Lindi+GraphLINQ (both on Naiad) wins by avoiding cross-system I/O")
			return t, nil
		},
	}
}

// Fig10NetflixOverhead regenerates Figure 10: generated-code overhead over
// hand-optimized baselines for the NetFlix workflow.
func Fig10NetflixOverhead() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "NetFlix workflow: Musketeer vs hand-optimized code (EC2-100)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig10",
				Title:   "NetFlix recommendation makespan (simulated seconds)",
				Columns: []string{"movies", "system", "hand", "musketeer", "overhead"},
			}
			c := cluster.EC2(100)
			for _, limit := range []int64{15, 30, 60} {
				w := workloads.Netflix(limit)
				label := itoa(int(limit * 17000 / 60)) // physical 60 movies ≙ full 17k catalogue
				for _, eng := range []string{"hadoop", "spark", "naiad"} {
					hand, err := runOn(w, c, eng, engines.ModeHand)
					if err != nil {
						return nil, err
					}
					musk, err := runOn(w, c, eng, engines.ModeOptimized)
					if err != nil {
						return nil, err
					}
					over := (float64(musk.Makespan) - float64(hand.Makespan)) / float64(hand.Makespan)
					t.AddRow(label, eng, secs(hand.Makespan), secs(musk.Makespan), pct(over))
				}
			}
			t.Note("paper Fig10: overhead virtually non-existent for Naiad, <30%% for Spark and Hadoop even as input grows (Spark's residue: simple type inference causes an extra pass)")
			return t, nil
		},
	}
}

// Fig11PageRankOverhead regenerates Figure 11: generated-code overhead for
// PageRank on the Twitter graph per compatible back-end.
func Fig11PageRankOverhead() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "PageRank Twitter: generated-code overhead per back-end",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig11",
				Title:   "PageRank generated-code overhead vs hand-optimized",
				Columns: []string{"system", "nodes", "hand", "musketeer", "overhead"},
			}
			w := workloads.PageRank(workloads.Twitter(), 5)
			configs := []struct {
				engine string
				nodes  int
			}{
				{"hadoop", 100}, {"spark", 100}, {"naiad", 100},
				{"powergraph", 16}, {"graphchi", 1},
			}
			for _, cfg := range configs {
				c := cluster.EC2(cfg.nodes)
				hand, err := runOn(w, c, cfg.engine, engines.ModeHand)
				if err != nil {
					return nil, err
				}
				musk, err := runOn(w, c, cfg.engine, engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				over := (float64(musk.Makespan) - float64(hand.Makespan)) / float64(hand.Makespan)
				t.AddRow(cfg.engine, itoa(cfg.nodes), secs(hand.Makespan), secs(musk.Makespan), pct(over))
			}
			t.Note("paper Fig11: average overhead below 30%% for every compatible back-end")
			return t, nil
		},
	}
}

// Fig12aMerging regenerates Figure 12a: operator merging on/off for the
// top-shopper workflow.
func Fig12aMerging() Experiment {
	return Experiment{
		ID:    "fig12a",
		Title: "top-shopper: operator merging and shared scans (EC2-100)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig12a",
				Title:   "top-shopper makespan, merging off vs on (hadoop)",
				Columns: []string{"users", "merging-off", "merging-on", "speedup"},
			}
			c := cluster.EC2(100)
			for _, users := range []int64{10_000_000, 40_000_000, 70_000_000, 100_000_000} {
				w := workloads.TopShopper(users)
				off, err := runUnmerged(w, c, "hadoop", engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				on, err := runOn(w, c, "hadoop", engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				t.AddRow(itoa(int(users/1_000_000))+"M", secs(off.Makespan), secs(on.Makespan),
					fmt.Sprintf("%.1fx", float64(off.Makespan)/float64(on.Makespan)))
			}
			t.Note("paper Fig12: a one-off ~25-50s reduction from avoided per-job overheads plus a linear shared-scan benefit; overall 2-5x")
			return t, nil
		},
	}
}

// Fig12bMerging regenerates Figure 12b: merging on/off for the hybrid
// cross-community PageRank.
func Fig12bMerging() Experiment {
	return Experiment{
		ID:    "fig12b",
		Title: "cross-community PageRank: operator merging (local cluster)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig12b",
				Title:   "cross-community PageRank, merging off vs on (naiad)",
				Columns: []string{"graphs", "merging-off", "merging-on", "speedup"},
			}
			c := cluster.Local(7)
			lj := workloads.LiveJournal()
			web := workloads.WebCommunity()
			w := workloads.CrossCommunityPageRank(lj, web, 5)
			off, err := runUnmerged(w, c, "naiad", engines.ModeOptimized)
			if err != nil {
				return nil, err
			}
			on, err := runOn(w, c, "naiad", engines.ModeOptimized)
			if err != nil {
				return nil, err
			}
			t.AddRow("lj+web", secs(off.Makespan), secs(on.Makespan),
				fmt.Sprintf("%.1fx", float64(off.Makespan)/float64(on.Makespan)))
			t.Note("paper Fig12b: the same merging benefit on the hybrid workflow")
			return t, nil
		},
	}
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "+"
		}
		out += x
	}
	return out
}
