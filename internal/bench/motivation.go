package bench

import (
	"strconv"

	"musketeer/internal/cluster"
	"musketeer/internal/engines"
	"musketeer/internal/workloads"
)

// Fig2aProject regenerates Figure 2a: PROJECT makespan vs. input size on
// the 7-node local cluster for Hive(→Hadoop), hand-coded Hadoop, Spark,
// Metis and Lindi(→Naiad).
func Fig2aProject() Experiment {
	return Experiment{
		ID:    "fig2a",
		Title: "PROJECT micro-benchmark: makespan vs input size (local cluster)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig2a",
				Title:   "PROJECT makespan (simulated seconds)",
				Columns: []string{"input", "hive", "hadoop", "spark", "metis", "lindi"},
			}
			c := cluster.Local(7)
			sizes := []struct {
				label string
				bytes int64
			}{
				{"128MB", 128e6}, {"512MB", 512e6}, {"2GB", 2e9}, {"8GB", 8e9}, {"32GB", 32e9},
			}
			for _, sz := range sizes {
				w := workloads.ProjectMicro(sz.bytes)
				// Hive generates the Hadoop job; hand-coded baselines for
				// the low-level APIs; Lindi is stock Naiad with a single
				// reader thread per machine.
				hive, err := runOn(w, c, "hadoop", engines.ModeOptimized)
				if err != nil {
					return nil, err
				}
				hadoop, err := runOn(w, c, "hadoop", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				spark, err := runOn(w, c, "spark", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				metis, err := runOn(w, c, "metis", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				lindi, err := runOn(w, c, "naiad-lindi", engines.ModeHand)
				if err != nil {
					return nil, err
				}
				t.AddRow(sz.label, secs(hive.Makespan), secs(hadoop.Makespan),
					secs(spark.Makespan), secs(metis.Makespan), secs(lindi.Makespan))
			}
			t.Note("paper: Metis best ≤~2GB; Hadoop best at 32GB; Spark worse than Hadoop (eager RDD load, no reuse); Lindi worst (single reader thread/machine)")
			return t, nil
		},
	}
}

// Fig2bJoin regenerates Figure 2b: JOIN makespan for the asymmetric
// (LiveJournal V⋈E) and symmetric (39M⋈39M uniform) cases.
func Fig2bJoin() Experiment {
	return Experiment{
		ID:    "fig2b",
		Title: "JOIN micro-benchmark: asymmetric vs symmetric (local cluster)",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig2b",
				Title:   "JOIN makespan (simulated seconds)",
				Columns: []string{"case", "serial-c", "hadoop", "spark", "metis", "lindi"},
			}
			c := cluster.Local(7)
			for _, wcase := range []*workloads.Workload{
				workloads.JoinMicroAsymmetric(),
				workloads.JoinMicroSymmetric(),
			} {
				cells := []string{wcase.Name}
				for _, eng := range []string{"serial", "hadoop", "spark", "metis", "naiad-lindi"} {
					r, err := runOn(wcase, c, eng, engines.ModeHand)
					if err != nil {
						return nil, err
					}
					cells = append(cells, secs(r.Makespan))
				}
				t.AddRow(cells...)
			}
			t.Note("paper: serial C wins the small asymmetric join (distributed overheads unamortized); Hadoop wins the 1.5B-row symmetric join; Lindi suffers from single-threaded writes")
			return t, nil
		},
	}
}

// Fig3PageRankMotivation regenerates Figure 3: five-iteration PageRank on
// the Orkut and Twitter graphs across systems and cluster scales.
func Fig3PageRankMotivation() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "PageRank motivation: makespan per system at 1/16/100 nodes",
		Run: func() (*Table, error) {
			t := &Table{
				ID:      "fig3",
				Title:   "5-iteration PageRank makespan (simulated seconds, EC2)",
				Columns: []string{"graph", "system", "nodes", "makespan"},
			}
			configs := []struct {
				engine string
				nodes  int
			}{
				{"hadoop", 100}, {"spark", 100}, {"naiad", 100},
				{"naiad", 16}, {"powergraph", 16},
				{"graphchi", 1}, {"metis", 1},
			}
			for _, g := range []*workloads.Graph{workloads.Orkut(), workloads.Twitter()} {
				w := workloads.PageRank(g, 5)
				for _, cfg := range configs {
					r, err := runOn(w, cluster.EC2(cfg.nodes), cfg.engine, engines.ModeHand)
					if err != nil {
						return nil, err
					}
					t.AddRow(g.Name, cfg.engine, itoa(cfg.nodes), secs(r.Makespan))
				}
			}
			t.Note("paper Fig3: GraphLINQ/Naiad fastest at 100 nodes; PowerGraph best at 16 (vertex-cut sharding); GraphChi competitive from one machine on the small graph; Hadoop worst (per-iteration jobs)")
			return t, nil
		},
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
