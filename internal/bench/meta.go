package bench

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Meta stamps a benchmark artifact with the provenance every BENCH_*.json
// carries: which commit produced it, when, under what parallelism, and with
// which configuration flags — so a number can be traced back to the exact
// build and invocation that measured it.
type Meta struct {
	// GitCommit is the short hash of HEAD at measurement time (empty when
	// the benchmark runs outside a git checkout).
	GitCommit  string `json:"git_commit,omitempty"`
	Date       string `json:"date"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// Flags records the benchmark invocation's configuration.
	Flags string `json:"flags,omitempty"`
}

// CollectMeta gathers run metadata. flags describes the invocation (e.g.
// "-concurrency 8"). Failure to resolve the git commit is tolerated — the
// stamp just omits it.
func CollectMeta(flags string) Meta {
	m := Meta{
		Date:       time.Now().Format("2006-01-02"),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Flags:      flags,
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitCommit = strings.TrimSpace(string(out))
	}
	return m
}
