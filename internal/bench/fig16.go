package bench

import (
	"musketeer/internal/cluster"
	"musketeer/internal/core"
	"musketeer/internal/dfs"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// Fig16Heuristic regenerates the paper's Figure 16 limitation study plus the
// §8 mitigation: a workflow whose single depth-first linear ordering
// separates a JOIN from the PROJECT it could share a MapReduce job with.
// The dynamic heuristic over one ordering misses the merge; the exhaustive
// search finds it; running the heuristic over multiple randomized orderings
// (the paper's proposed fix) recovers it.
func Fig16Heuristic() Experiment {
	return Experiment{
		ID:    "fig16",
		Title: "Dynamic-heuristic limitation (Fig 16) and the §8 multi-order fix",
		Run: func() (*Table, error) {
			dag, fs, err := fig16Workflow()
			if err != nil {
				return nil, err
			}
			est, err := core.NewEstimator(dag, fs, cluster.Local(7), nil)
			if err != nil {
				return nil, err
			}
			engs := []*engines.Engine{engines.Hadoop()}
			t := &Table{
				ID:      "fig16",
				Title:   "Estimated cost of the Fig 16 workflow on Hadoop",
				Columns: []string{"algorithm", "jobs", "estimated-cost"},
			}
			dyn, err := core.PartitionDynamic(dag, est, engs)
			if err != nil {
				return nil, err
			}
			t.AddRow("dynamic (1 order)", itoa(len(dyn.Jobs)), secs(dyn.Cost))
			multi, err := core.PartitionDynamicMulti(dag, est, engs, 16)
			if err != nil {
				return nil, err
			}
			t.AddRow("dynamic (16 orders)", itoa(len(multi.Jobs)), secs(multi.Cost))
			exh, err := core.PartitionExhaustive(dag, est, engs, 0)
			if err != nil {
				return nil, err
			}
			t.AddRow("exhaustive", itoa(len(exh.Jobs)), secs(exh.Cost))
			t.Note("paper Fig16/§8: the single linear ordering breaks the JOIN+PROJECT adjacency; generating multiple orderings recovers the optimal partitioning")
			return t, nil
		},
	}
}

// fig16Workflow builds the Fig 16 shape: JOIN -> PROJECT on one branch, an
// aggregation on another, a union sink; the depth-first order interleaves
// the aggregation between JOIN and PROJECT.
func fig16Workflow() (*ir.DAG, *dfs.DFS, error) {
	d := ir.NewDAG()
	a := d.AddInput("a", "in/a", relation.NewSchema("k:int", "v:int"))
	b := d.AddInput("b", "in/b", relation.NewSchema("k:int", "w:int"))
	j := d.Add(ir.OpJoin, "j", ir.Params{LeftCols: []string{"k"}, RightCols: []string{"k"}}, a, b)
	c := d.AddInput("c", "in/c", relation.NewSchema("q:int", "x:int"))
	g := d.Add(ir.OpAgg, "g", ir.Params{GroupBy: []string{"q"}, Aggs: []ir.AggSpec{{Func: ir.AggSum, Col: "x", As: "x"}}}, c)
	p := d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"k", "w"}}, j)
	d.Add(ir.OpUnion, "u", ir.Params{}, p, g)
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	fs := dfs.New()
	schemas := map[string]relation.Schema{
		"a": relation.NewSchema("k:int", "v:int"),
		"b": relation.NewSchema("k:int", "w:int"),
		"c": relation.NewSchema("q:int", "x:int"),
	}
	for name, schema := range schemas {
		rel := relation.New(name, schema)
		for i := int64(0); i < 12; i++ {
			rel.MustAppend(relation.Row{relation.Int(i % 4), relation.Int(i)})
		}
		rel.LogicalBytes = 5e9
		if err := fs.WriteRelation("in/"+name, rel); err != nil {
			return nil, nil, err
		}
	}
	return d, fs, nil
}
