package analysis_test

import (
	"strings"
	"testing"

	"musketeer/internal/analysis"
	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

func abSchema() relation.Schema { return relation.NewSchema("a:int", "b:float") }

// hasDiag reports whether the report contains a diagnostic of the given
// severity whose message contains substr.
func hasDiag(rep *analysis.Report, sev analysis.Severity, substr string) bool {
	for _, d := range rep.Diags {
		if d.Severity == sev && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func TestCycleDetected(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	x := d.Add(ir.OpDistinct, "x", ir.Params{}, in)
	y := d.Add(ir.OpDistinct, "y", ir.Params{}, x)
	x.Inputs = append(x.Inputs, y) // close the loop
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevError, "cycle") {
		t.Fatalf("no cycle diagnostic:\n%s", rep)
	}
}

func TestForeignEdgeAndCloneDefect(t *testing.T) {
	other := ir.NewDAG()
	foreign := other.AddInput("f", "in/f", abSchema())
	d := ir.NewDAG()
	d.Add(ir.OpDistinct, "x", ir.Params{}, foreign)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevError, "foreign edge") {
		t.Fatalf("no foreign-edge diagnostic:\n%s", rep)
	}
	// Cloning drops the foreign edge but records the defect, which the
	// analyzer replays as a structural error instead of the old panic.
	c := d.Clone()
	rep = analysis.AnalyzeWithEngines(c, nil)
	if !hasDiag(rep, analysis.SevError, "dropped while cloning") {
		t.Fatalf("clone defect not reported:\n%s", rep)
	}
}

func TestDuplicateNameInsideWhileBody(t *testing.T) {
	body := ir.NewDAG()
	bin := body.AddInput("t", "", relation.Schema{})
	body.Add(ir.OpDistinct, "u", ir.Params{}, bin)
	body.Add(ir.OpLimit, "u", ir.Params{Limit: 1}, bin) // duplicate in body scope

	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.Add(ir.OpWhile, "w", ir.Params{
		Body: body, MaxIter: 2, Carried: map[string]string{"t": "u"},
	}, in)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevError, `duplicate output relation "u"`) {
		t.Fatalf("duplicate body name not reported:\n%s", rep)
	}
}

func TestMultipleSchemaErrorsReportedTogether(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"nope"}}, in)
	d.Add(ir.OpSort, "s", ir.Params{SortBy: []string{"ghost"}}, in)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if n := len(rep.Errors()); n != 2 {
		t.Fatalf("want both schema errors, got %d:\n%s", n, rep)
	}
}

func TestCascadeSuppression(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	bad := d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"nope"}}, in)
	d.Add(ir.OpDistinct, "q", ir.Params{}, bad) // consumer of the broken op
	rep := analysis.AnalyzeWithEngines(d, nil)
	if n := len(rep.Errors()); n != 1 {
		t.Fatalf("cascade not suppressed, got %d errors:\n%s", n, rep)
	}
}

func TestDeadInputWarning(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.AddInput("unused", "in/u", abSchema())
	d.Add(ir.OpDistinct, "x", ir.Params{}, in)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevWarning, `"unused" is never read`) {
		t.Fatalf("dead input not reported:\n%s", rep)
	}
	if rep.HasErrors() {
		t.Fatalf("warnings must not fail the workflow:\n%s", rep)
	}
}

func loopDAG(carried map[string]string, condRel string, maxIter int) *ir.DAG {
	body := ir.NewDAG()
	bin := body.AddInput("t", "", relation.Schema{})
	body.Add(ir.OpDistinct, "next", ir.Params{}, bin)
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.Add(ir.OpWhile, "w", ir.Params{
		Body: body, MaxIter: maxIter, CondRel: condRel, Carried: carried,
	}, in)
	return d
}

func TestCarriedRelationMissing(t *testing.T) {
	rep := analysis.AnalyzeWithEngines(loopDAG(map[string]string{"t": "missing"}, "", 3), nil)
	if !hasDiag(rep, analysis.SevError, `"missing" not in body`) {
		t.Fatalf("missing carried output not reported:\n%s", rep)
	}
}

func TestCarriedInputMustBeBridge(t *testing.T) {
	body := ir.NewDAG()
	bin := body.AddInput("t", "", relation.Schema{})
	body.Add(ir.OpDistinct, "mid", ir.Params{}, bin)
	body.Add(ir.OpDistinct, "next", ir.Params{}, body.ByOut("mid"))
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.Add(ir.OpWhile, "w", ir.Params{
		Body: body, MaxIter: 3, Carried: map[string]string{"mid": "next"},
	}, in)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevError, "must be a body INPUT bridge") {
		t.Fatalf("non-bridge carried input not reported:\n%s", rep)
	}
}

func TestConstantConditionWarning(t *testing.T) {
	// The stop condition is computed from a second, non-carried input, so
	// it can never change across iterations.
	body := ir.NewDAG()
	bin := body.AddInput("t", "", relation.Schema{})
	other := body.AddInput("u", "", relation.Schema{})
	body.Add(ir.OpDistinct, "next", ir.Params{}, bin)
	body.Add(ir.OpDistinct, "cond", ir.Params{}, other)
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	u := d.AddInput("u", "in/u", abSchema())
	d.Add(ir.OpWhile, "w", ir.Params{
		Body: body, MaxIter: 5, CondRel: "cond",
		Carried: map[string]string{"t": "next"},
	}, in, u)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevWarning, "does not depend on loop-carried state") {
		t.Fatalf("constant condition not reported:\n%s", rep)
	}
}

func TestEngineFeasibility(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"a"}}, in)
	// Vertex-centric engines cannot run relational operators.
	rep := analysis.AnalyzeWithEngines(d, []*engines.Engine{engines.PowerGraph()})
	if !hasDiag(rep, analysis.SevError, "no candidate engine") {
		t.Fatalf("infeasible engine set not reported:\n%s", rep)
	}
	// The standard set includes general-purpose engines, so the same DAG
	// is feasible.
	rep = analysis.AnalyzeWithEngines(d, engines.StandardEngines())
	if rep.HasErrors() {
		t.Fatalf("unexpected errors with the standard engine set:\n%s", rep)
	}
}

func TestRedundantDistinctAndSortWarnings(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d1 := d.Add(ir.OpDistinct, "d1", ir.Params{}, in)
	d.Add(ir.OpDistinct, "d2", ir.Params{}, d1)
	s1 := d.Add(ir.OpSort, "s1", ir.Params{SortBy: []string{"a"}}, in)
	d.Add(ir.OpSort, "s2", ir.Params{SortBy: []string{"a"}}, s1)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if !hasDiag(rep, analysis.SevWarning, "redundant DISTINCT") {
		t.Fatalf("redundant distinct not reported:\n%s", rep)
	}
	if !hasDiag(rep, analysis.SevWarning, "redundant SORT") {
		t.Fatalf("redundant sort not reported:\n%s", rep)
	}
}

func TestPropertyPropagation(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	dist := d.Add(ir.OpDistinct, "d", ir.Params{}, in)
	agg := d.Add(ir.OpAgg, "g", ir.Params{
		GroupBy: []string{"a"},
		Aggs:    []ir.AggSpec{{Func: ir.AggSum, Col: "b", As: "total"}},
	}, in)
	sorted := d.Add(ir.OpSort, "s", ir.Params{SortBy: []string{"a"}}, in)
	props := analysis.PropagateProperties(d)
	if !props[dist].RowsUnique {
		t.Errorf("DISTINCT output not marked unique: %+v", props[dist])
	}
	if got := props[agg].UniqueKey; len(got) != 1 || got[0] != "a" {
		t.Errorf("AGG unique key = %v, want [a]", got)
	}
	if got := props[sorted].SortedBy; len(got) != 1 || got[0] != "a" {
		t.Errorf("SORT key = %v, want [a]", got)
	}
	if !analysis.SortCovered(props[sorted], []string{"a"}, false) {
		t.Errorf("SortCovered should hold for the sort's own key")
	}
	if analysis.SortCovered(props[sorted], []string{"a"}, true) {
		t.Errorf("SortCovered must respect direction")
	}
}

func TestProjectRenameTranslatesProperties(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	agg := d.Add(ir.OpAgg, "g", ir.Params{
		GroupBy: []string{"a"},
		Aggs:    []ir.AggSpec{{Func: ir.AggSum, Col: "b", As: "total"}},
	}, in)
	ren := d.Add(ir.OpProject, "r", ir.Params{
		Columns: []string{"a", "total"}, As: []string{"key", "total"},
	}, agg)
	drop := d.Add(ir.OpProject, "q", ir.Params{Columns: []string{"total"}}, agg)
	props := analysis.PropagateProperties(d)
	if got := props[ren].UniqueKey; len(got) != 1 || got[0] != "key" {
		t.Errorf("rename did not translate unique key: %v", got)
	}
	if props[drop].RowsUnique || props[drop].UniqueKey != nil {
		t.Errorf("dropping the key column must clear uniqueness: %+v", props[drop])
	}
}

func TestReportOrderingDeterministic(t *testing.T) {
	d := ir.NewDAG()
	in := d.AddInput("t", "in/t", abSchema())
	d.AddInput("unused", "in/u", abSchema())
	d.Add(ir.OpProject, "p", ir.Params{Columns: []string{"nope"}}, in)
	rep := analysis.AnalyzeWithEngines(d, nil)
	if len(rep.Diags) < 2 {
		t.Fatalf("expected an error and a warning:\n%s", rep)
	}
	if rep.Diags[0].Severity != analysis.SevError {
		t.Errorf("errors must sort before warnings:\n%s", rep)
	}
}
