package analysis

import (
	"sort"
	"strings"

	"musketeer/internal/engines"
	"musketeer/internal/ir"
	"musketeer/internal/relation"
)

// init installs the analyzer as ir.DAG.Validate's implementation wherever
// this package is linked in: front-ends and core get multi-diagnostic
// validation without ir importing analysis (which would cycle).
func init() {
	ir.RegisterAnalyzer(func(d *ir.DAG) error { return Analyze(d).Err() })
}

// Analyze runs every pass against the standard engine set and returns the
// full report, errors and warnings both, in deterministic order.
func Analyze(d *ir.DAG) *Report {
	return AnalyzeWithEngines(d, engines.StandardEngines())
}

// AnalyzeWithEngines analyzes the workflow with an explicit candidate
// engine set for the feasibility pass (pass order: structure, schema,
// loop, liveness, engines, properties). A nil or empty engine set skips
// the feasibility pass.
func AnalyzeWithEngines(d *ir.DAG, engs []*engines.Engine) *Report {
	a := &analyzer{rep: &Report{}, schemas: map[*ir.Op]relation.Schema{}}
	// Pass 1 (structure). Cycles or foreign edges make a topological walk
	// impossible, so the remaining passes only run on structurally sound
	// DAGs — their absence is not a lost diagnostic, the structural errors
	// are the diagnostics.
	if a.structural(d) {
		a.schemaPass(d, nil, false) // pass 2 (types/schemas)
		a.loopPass(d)               // pass 4 (loop checks)
		a.livenessPass(d)           // pass 3 (dead operators)
		if len(engs) > 0 {
			a.enginePass(d, engs) // pass 5 (engine feasibility)
		}
		a.propertyPass(d, PropagateProperties(d)) // pass 6 (properties)
	}
	a.rep.sortDiags()
	return a.rep
}

// CheckEngines runs only the engine-feasibility pass; core's mappers use it
// to reject impossible engine choices before the partition search starts.
func CheckEngines(d *ir.DAG, engs []*engines.Engine) *Report {
	a := &analyzer{rep: &Report{}, schemas: map[*ir.Op]relation.Schema{}}
	a.enginePass(d, engs)
	a.rep.sortDiags()
	return a.rep
}

type analyzer struct {
	rep *Report
	// schemas accumulates inferred output schemas across the top-level DAG
	// and every WHILE body (operator pointers are unique throughout).
	schemas map[*ir.Op]relation.Schema
}

func (a *analyzer) errf(pass string, op *ir.Op, format string, args ...any) {
	a.rep.add(SevError, pass, op, format, args...)
}

func (a *analyzer) warnf(pass string, op *ir.Op, format string, args ...any) {
	a.rep.add(SevWarning, pass, op, format, args...)
}

// structural is pass 1: recorded defects, edges to operators outside the
// DAG, cycles, empty and duplicate relation names — descending into WHILE
// bodies, each of which is its own name scope (bodies deliberately reuse
// outer relation names for their input bridges). Returns whether the DAG is
// sound enough (acyclic, no foreign edges) for topological-order passes.
func (a *analyzer) structural(d *ir.DAG) bool {
	sound := true
	for _, def := range d.Defects() {
		a.errf("structure", nil, "%s", def)
	}
	inDAG := make(map[*ir.Op]bool, len(d.Ops))
	for _, op := range d.Ops {
		inDAG[op] = true
	}
	for _, op := range d.Ops {
		for _, in := range op.Inputs {
			if !inDAG[in] {
				a.errf("structure", op, "input %s is outside the DAG (foreign edge)", in)
				sound = false
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*ir.Op]int, len(d.Ops))
	var visit func(op *ir.Op)
	visit = func(op *ir.Op) {
		switch color[op] {
		case black:
			return
		case gray:
			a.errf("structure", op, "operators form a cycle through %q", op.Out)
			sound = false
			return
		}
		color[op] = gray
		for _, in := range op.Inputs {
			if inDAG[in] {
				visit(in)
			}
		}
		color[op] = black
	}
	for _, op := range d.Ops {
		visit(op)
	}
	first := make(map[string]*ir.Op, len(d.Ops))
	for _, op := range d.Ops {
		if op.Out == "" {
			a.errf("structure", op, "empty output relation name")
			continue
		}
		if prev, ok := first[op.Out]; ok {
			a.errf("structure", op, "duplicate output relation %q (also produced by %s)", op.Out, prev)
			continue
		}
		first[op.Out] = op
	}
	for _, op := range d.Ops {
		if op.Params.Body != nil {
			if !a.structural(op.Params.Body) {
				sound = false
			}
		}
	}
	return sound
}

// schemaPass is pass 2: a topological walk inferring every operator's
// output schema, reporting every column-resolution and type error instead
// of stopping at the first. Operators whose inputs failed to infer are
// skipped silently — the producer already carries the diagnostic, and
// cascade errors would only bury it.
// Outer schemas for a WHILE body are resolved from the map here rather
// than bound onto the body's INPUT operators: the analyzer must not
// mutate the DAG it inspects, because a compiled workflow may be
// analyzed by several concurrent executions at once.
func (a *analyzer) schemaPass(d *ir.DAG, outer map[string]relation.Schema, inBody bool) {
	ops, err := d.TopoSort()
	if err != nil {
		return // unreachable for structurally sound DAGs
	}
	for _, op := range ops {
		switch {
		case op.Type == ir.OpInput:
			if s, ok := outer[op.Out]; ok {
				a.schemas[op] = s
				continue
			}
			if op.Params.Schema.Arity() == 0 {
				if inBody {
					a.errf("schema", op, "body input %q is not bound by the enclosing WHILE and has no declared schema", op.Out)
				} else {
					a.errf("schema", op, "input without schema")
				}
				continue
			}
			a.schemas[op] = op.Params.Schema
		case op.Type == ir.OpWhile:
			a.whileSchema(op)
		default:
			ready := true
			for _, in := range op.Inputs {
				if _, ok := a.schemas[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			s, err := ir.OutputSchema(op, a.schemas)
			if err != nil {
				a.errf("schema", op, "%s", stripOpPrefix(err, op))
				continue
			}
			a.schemas[op] = s
		}
	}
}

// whileSchema infers a WHILE operator: binds outer schemas onto the body's
// input bridges, analyzes the body (collecting all its diagnostics), and
// takes the result relation's schema as the loop's own output schema.
func (a *analyzer) whileSchema(w *ir.Op) {
	body := w.Params.Body
	if body == nil {
		a.errf("schema", w, "WHILE without body")
		return
	}
	outer := make(map[string]relation.Schema, len(w.Inputs))
	for _, in := range w.Inputs {
		if s, ok := a.schemas[in]; ok {
			outer[in.Out] = s
		}
	}
	a.schemaPass(body, outer, true)
	res := w.ResultRelation()
	if res == "" {
		a.errf("schema", w, "WHILE has no result relation (no carried outputs and no unique body sink)")
		return
	}
	resOp := body.ByOut(res)
	if resOp == nil {
		a.errf("schema", w, "result relation %q not in body", res)
		return
	}
	if s, ok := a.schemas[resOp]; ok {
		a.schemas[w] = s
	}
}

// stripOpPrefix removes inferOp's "ir: <op>: " prefix — the diagnostic
// already renders the operator and would otherwise repeat it.
func stripOpPrefix(err error, op *ir.Op) string {
	msg := strings.TrimPrefix(err.Error(), "ir: ")
	return strings.TrimPrefix(msg, op.String()+": ")
}

// loopPass is pass 4: stop-condition presence, carried-variable
// consistency (both ends exist, the input end is a body INPUT bridge,
// schemas match), and the constant-condition lint — a stop condition that
// does not depend on loop-carried state can never change across
// iterations, so the loop is either trivial or non-terminating.
func (a *analyzer) loopPass(d *ir.DAG) {
	for _, op := range d.Ops {
		if op.Type == ir.OpWhile {
			a.checkLoop(op)
		}
		if op.Params.Body != nil {
			a.loopPass(op.Params.Body)
		}
	}
}

func (a *analyzer) checkLoop(w *ir.Op) {
	body := w.Params.Body
	if body == nil {
		return // schema pass already reported the missing body
	}
	if w.Params.MaxIter <= 0 && w.Params.CondRel == "" {
		a.errf("loop", w, "WHILE without stop condition")
	}
	names := make([]string, 0, len(w.Params.Carried))
	for in := range w.Params.Carried {
		names = append(names, in)
	}
	sort.Strings(names)
	var carriedIns []*ir.Op
	for _, inName := range names {
		outName := w.Params.Carried[inName]
		inOp, outOp := body.ByOut(inName), body.ByOut(outName)
		switch {
		case inOp == nil:
			a.errf("loop", w, "carried %q->%q: %q not in body", inName, outName, inName)
		case inOp.Type != ir.OpInput:
			a.errf("loop", w, "carried input %q must be a body INPUT bridge, not %s", inName, inOp.Type)
		default:
			carriedIns = append(carriedIns, inOp)
		}
		if outOp == nil {
			a.errf("loop", w, "carried %q->%q: %q not in body", inName, outName, outName)
		}
		if inOp != nil && outOp != nil {
			si, iok := a.schemas[inOp]
			so, ook := a.schemas[outOp]
			if iok && ook && !si.Equal(so) {
				a.errf("loop", w, "carried %q (%s) incompatible with %q (%s)", outName, so, inName, si)
			}
		}
	}
	if w.Params.CondRel == "" {
		return
	}
	condOp := body.ByOut(w.Params.CondRel)
	if condOp == nil {
		a.errf("loop", w, "stop-condition relation %q not in body", w.Params.CondRel)
		return
	}
	invariant := len(carriedIns) == 0 || !dependsOnAny(condOp, carriedIns)
	if invariant {
		if w.Params.MaxIter > 0 {
			a.warnf("loop", w, "stop condition %q does not depend on loop-carried state; it is constant across iterations", w.Params.CondRel)
		} else {
			a.warnf("loop", w, "stop condition %q does not depend on loop-carried state and no iteration bound is set; the loop is trivially non-terminating unless %q starts empty", w.Params.CondRel, w.Params.CondRel)
		}
	}
}

// dependsOnAny reports whether op transitively reads any of the sources.
func dependsOnAny(op *ir.Op, sources []*ir.Op) bool {
	src := make(map[*ir.Op]bool, len(sources))
	for _, s := range sources {
		src[s] = true
	}
	seen := map[*ir.Op]bool{}
	var walk func(o *ir.Op) bool
	walk = func(o *ir.Op) bool {
		if src[o] {
			return true
		}
		if seen[o] {
			return false
		}
		seen[o] = true
		for _, in := range o.Inputs {
			if walk(in) {
				return true
			}
		}
		return false
	}
	return walk(op)
}

// livenessPass is pass 3: operators whose output nothing uses. At the top
// level only unconsumed INPUTs are dead (unconsumed compute operators are
// the workflow's results); inside a WHILE body anything that is neither
// consumed, carried, the stop condition, nor the result is recomputed
// every iteration for nothing. Warnings only — dead code is wasteful, not
// wrong — and the optimizer's dead-input removal consumes the same facts.
func (a *analyzer) livenessPass(d *ir.DAG) {
	cons := d.Consumers()
	for _, op := range d.Ops {
		if op.Type == ir.OpInput && len(cons[op]) == 0 {
			a.warnf("liveness", op, "input relation %q is never read (dead operator)", op.Out)
		}
		if op.Params.Body != nil {
			a.bodyLiveness(op)
		}
	}
}

func (a *analyzer) bodyLiveness(w *ir.Op) {
	body := w.Params.Body
	keep := map[string]bool{w.ResultRelation(): true, w.Params.CondRel: true}
	for _, out := range w.Params.Carried {
		keep[out] = true
	}
	cons := body.Consumers()
	for _, op := range body.Ops {
		if op.Type == ir.OpInput {
			if len(cons[op]) == 0 {
				a.warnf("liveness", op, "body input %q is never read inside the loop", op.Out)
			}
			continue
		}
		if len(cons[op]) == 0 && !keep[op.Out] {
			a.warnf("liveness", op, "dead loop-body operator: %q is recomputed every iteration but never used", op.Out)
		}
		if op.Params.Body != nil {
			a.bodyLiveness(op)
		}
	}
}

// enginePass is pass 5: every compute operator must be executable by at
// least one candidate engine (per the engine capability matrix), so that
// impossible mappings fail here with a per-operator diagnostic instead of
// deep inside the partition search as "no feasible partitioning".
func (a *analyzer) enginePass(d *ir.DAG, engs []*engines.Engine) {
	for _, op := range d.Ops {
		if op.Type == ir.OpInput {
			continue
		}
		var reasons []string
		supported := false
		for _, e := range engs {
			if err := e.SupportsOp(op); err == nil {
				supported = true
				break
			} else {
				reasons = append(reasons, err.Error())
			}
		}
		if !supported {
			a.errf("engines", op, "no candidate engine can execute this operator: %s", strings.Join(reasons, "; "))
		}
	}
}

// propertyPass is pass 6's lint side: operators whose work is provably
// redundant given the propagated uniqueness/sortedness facts. The cost
// estimator consumes the same facts to drop shuffle surcharges.
func (a *analyzer) propertyPass(d *ir.DAG, props map[*ir.Op]Props) {
	for _, op := range d.Ops {
		if len(op.Inputs) == 1 {
			p, ok := props[op.Inputs[0]]
			if ok {
				switch op.Type {
				case ir.OpDistinct:
					if p.RowsUnique {
						a.warnf("properties", op, "redundant DISTINCT: input %q rows are already unique", op.Inputs[0].Out)
					}
				case ir.OpSort:
					if SortCovered(p, op.Params.SortBy, op.Params.Desc) {
						a.warnf("properties", op, "redundant SORT: input %q is already sorted by (%s)", op.Inputs[0].Out, strings.Join(op.Params.SortBy, ", "))
					}
				}
			}
		}
		if op.Params.Body != nil {
			a.propertyPass(op.Params.Body, props)
		}
	}
}
