package analysis

import (
	"musketeer/internal/ir"
)

// Props are derived physical-layout facts about an operator's output
// (pass 6). They are conservative: an absent fact means "unknown", never
// "false". The property pass lints provably redundant operators with them,
// and the cost estimator skips shuffle surcharges for repartitions that
// provably collapse nothing.
type Props struct {
	// RowsUnique: no two output rows are equal.
	RowsUnique bool
	// UniqueKey lists columns whose combined values identify a row
	// uniquely; nil means no key is known. A known key implies RowsUnique.
	UniqueKey []string
	// SortedBy is the key the output is known to be ordered by (with
	// SortDesc giving the direction); nil means unknown order.
	SortedBy []string
	SortDesc bool
}

// PropagateProperties computes Props for every operator of the DAG,
// including WHILE bodies. It never fails: operators whose facts cannot be
// established (unknown inputs, malformed params) simply get no entry, so
// it is safe to run on DAGs that carry other diagnostics.
func PropagateProperties(d *ir.DAG) map[*ir.Op]Props {
	props := map[*ir.Op]Props{}
	propagateProps(d, props)
	return props
}

func propagateProps(d *ir.DAG, props map[*ir.Op]Props) {
	ops, err := d.TopoSort()
	if err != nil {
		return
	}
	for _, op := range ops {
		if op.Params.Body != nil {
			propagateProps(op.Params.Body, props)
		}
		var in Props
		if len(op.Inputs) >= 1 {
			in = props[op.Inputs[0]]
		}
		switch op.Type {
		case ir.OpDistinct:
			// Output rows are pairwise distinct by definition; an input key
			// survives (deduplication cannot break it). The hash-based
			// kernel does not preserve order.
			p := Props{RowsUnique: true, UniqueKey: in.UniqueKey}
			props[op] = p

		case ir.OpAgg:
			// One output row per group: the group-by columns are a key.
			// An empty group-by aggregates to a single row.
			p := Props{RowsUnique: true}
			if len(op.Params.GroupBy) > 0 {
				p.UniqueKey = append([]string(nil), op.Params.GroupBy...)
			}
			props[op] = p

		case ir.OpSort:
			p := in
			p.SortedBy = append([]string(nil), op.Params.SortBy...)
			p.SortDesc = op.Params.Desc
			props[op] = p

		case ir.OpSelect, ir.OpLimit:
			// Filtering and truncation preserve both uniqueness and order.
			props[op] = in

		case ir.OpProject:
			props[op] = projectProps(op, in)

		case ir.OpArith:
			// Adds or overwrites one column; rows are neither created nor
			// reordered. Overwriting a key or sort column invalidates the
			// respective fact.
			p := in
			if contains(p.UniqueKey, op.Params.Dst) {
				p.UniqueKey = nil
				p.RowsUnique = false
			}
			if contains(p.SortedBy, op.Params.Dst) {
				p.SortedBy = nil
			}
			props[op] = p

		case ir.OpJoin:
			// If the right side is unique on the join key, each left row
			// matches at most one right row, so a left unique key survives.
			if len(op.Inputs) == 2 {
				right := props[op.Inputs[1]]
				if in.UniqueKey != nil && right.UniqueKey != nil &&
					subset(right.UniqueKey, op.Params.RightCols) {
					props[op] = Props{RowsUnique: true, UniqueKey: in.UniqueKey}
				}
			}

		case ir.OpIntersect:
			// Set semantics: the output is deduplicated.
			props[op] = Props{RowsUnique: true}
		}
	}
}

// projectProps translates the input's facts through a projection: a fact
// survives only if every column it names is kept, renamed consistently.
func projectProps(op *ir.Op, in Props) Props {
	rename := map[string]string{}
	for i, col := range op.Params.Columns {
		name := col
		if len(op.Params.As) == len(op.Params.Columns) {
			name = op.Params.As[i]
		}
		if _, dup := rename[col]; !dup {
			rename[col] = name
		}
	}
	translate := func(cols []string) []string {
		if cols == nil {
			return nil
		}
		out := make([]string, len(cols))
		for i, c := range cols {
			n, ok := rename[c]
			if !ok {
				return nil
			}
			out[i] = n
		}
		return out
	}
	p := Props{}
	if key := translate(in.UniqueKey); key != nil {
		// The key columns survive, so key-uniqueness (and hence row
		// uniqueness) survives even though other columns were dropped.
		p.UniqueKey = key
		p.RowsUnique = true
	}
	p.SortedBy = translate(in.SortedBy)
	p.SortDesc = in.SortDesc
	return p
}

// SortCovered reports whether rows with properties p are already ordered
// as SORT BY cols (desc) would order them: the requested key must be a
// prefix of the known sort key, same direction.
func SortCovered(p Props, cols []string, desc bool) bool {
	if len(cols) == 0 || len(p.SortedBy) < len(cols) || p.SortDesc != desc {
		return false
	}
	for i, c := range cols {
		if p.SortedBy[i] != c {
			return false
		}
	}
	return true
}

func subset(xs, of []string) bool {
	for _, x := range xs {
		if !contains(of, x) {
			return false
		}
	}
	return true
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
