// Package analysis implements Musketeer's multi-pass workflow analyzer.
// It runs on every workflow before optimization and partitioning and
// returns every diagnostic it finds — severity, operator, front-end
// provenance, message — instead of stopping at the first error the way
// plain schema inference does. Musketeer's whole pipeline (dead-operator
// elimination, operator merging, engine mapping) assumes the DAG is
// well-formed before the cost search runs; this package is where that
// assumption is discharged, with diagnostics precise enough to act on.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"musketeer/internal/ir"
)

// Severity classifies a diagnostic.
type Severity uint8

const (
	// Error diagnostics make the workflow invalid; compilation fails.
	SevError Severity = iota
	// Warning diagnostics flag suspect-but-executable constructs (dead
	// operators, redundant shuffles, loops that cannot make progress).
	SevWarning
)

// String renders the severity label used in diagnostic output.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Severity Severity
	// Pass names the analysis pass that produced the finding: structure,
	// schema, liveness, loop, engines, or properties.
	Pass string
	// OpID is the offending operator's ID, or -1 for whole-DAG findings.
	OpID int
	// Op is the operator's compact rendering (TYPE#id(out)), if any.
	Op string
	// Prov is the operator's front-end provenance, if stamped.
	Prov ir.Provenance
	// Msg describes the defect.
	Msg string
}

// String renders one line: severity, pass, operator, provenance, message.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s [%s]", d.Severity, d.Pass)
	if d.Op != "" {
		b.WriteByte(' ')
		b.WriteString(d.Op)
	}
	if p := d.Prov.String(); p != "" {
		fmt.Fprintf(&b, " (%s)", p)
	}
	b.WriteString(": ")
	b.WriteString(d.Msg)
	return b.String()
}

// Report collects every diagnostic of one analysis run.
type Report struct {
	Diags []Diagnostic
}

func (r *Report) add(sev Severity, pass string, op *ir.Op, format string, args ...any) {
	d := Diagnostic{Severity: sev, Pass: pass, OpID: -1, Msg: fmt.Sprintf(format, args...)}
	if op != nil {
		d.OpID = op.ID
		d.Op = op.String()
		d.Prov = op.Prov
	}
	r.Diags = append(r.Diags, d)
}

// sortDiags orders diagnostics deterministically: errors before warnings,
// then by operator ID, then by message. Golden tests depend on this order.
func (r *Report) sortDiags() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.OpID != b.OpID {
			return a.OpID < b.OpID
		}
		return a.Msg < b.Msg
	})
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic { return r.filter(SevError) }

// Warnings returns the warning-severity diagnostics.
func (r *Report) Warnings() []Diagnostic { return r.filter(SevWarning) }

func (r *Report) filter(sev Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// String renders every diagnostic, one per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Err returns nil when the report contains no errors, otherwise an *Error
// wrapping the full report (warnings included).
func (r *Report) Err() error {
	if !r.HasErrors() {
		return nil
	}
	return &Error{Report: r}
}

// Error is the error returned for a workflow with error-severity
// diagnostics. It carries the whole report so callers (the `musketeer
// check` subcommand, tests) can recover every diagnostic with errors.As
// even through front-end error wrapping.
type Error struct {
	Report *Report
}

// Error renders a summary line followed by every error diagnostic.
func (e *Error) Error() string {
	errs := e.Report.Errors()
	var b strings.Builder
	fmt.Fprintf(&b, "workflow analysis found %d error(s)", len(errs))
	if nw := len(e.Report.Warnings()); nw > 0 {
		fmt.Fprintf(&b, " and %d warning(s)", nw)
	}
	for _, d := range errs {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}
