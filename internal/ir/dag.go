package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DAG is a directed acyclic graph of operators. Ops appear in insertion
// order; edges are the Inputs pointers. A DAG owns ID assignment for its
// operators.
type DAG struct {
	Ops []*Op
	// inferMu serializes schema inference: inferring a WHILE operator binds
	// outer schemas onto the body's input ops, and concurrent jobs of one
	// workflow (Runner.Execute runs independent jobs in goroutines) may
	// infer over the same shared DAG at once.
	inferMu sync.Mutex
	nextID int
	// defects records structural problems observed while manipulating the
	// DAG (e.g. Clone finding an edge to an operator outside the DAG).
	// The analyzer surfaces them as diagnostics instead of crashing.
	defects []string
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG { return &DAG{} }

// Add creates an operator, assigns it an ID, and appends it to the DAG.
// Inputs must already belong to the DAG. A WHILE body's operators are
// renumbered into the parent's ID space so that every operator reachable
// from a DAG — including nested loop bodies — has a unique ID; traces and
// history observations key on these IDs. IDs remain deterministic for a
// fixed construction order, which is what lets workflow history collected
// on one build of a workflow apply to the next.
func (d *DAG) Add(t OpType, out string, params Params, inputs ...*Op) *Op {
	op := &Op{ID: d.nextID, Type: t, Out: out, Inputs: inputs, Params: params}
	d.nextID++
	d.Ops = append(d.Ops, op)
	if params.Body != nil {
		d.adoptIDs(params.Body)
	}
	return op
}

// adoptIDs renumbers a nested DAG's operators into d's ID space.
func (d *DAG) adoptIDs(body *DAG) {
	for _, op := range body.Ops {
		op.ID = d.nextID
		d.nextID++
		if op.Params.Body != nil {
			d.adoptIDs(op.Params.Body)
		}
	}
	body.nextID = d.nextID
}

// ByOut returns the operator producing the named relation, or nil.
func (d *DAG) ByOut(name string) *Op {
	for _, op := range d.Ops {
		if op.Out == name {
			return op
		}
	}
	return nil
}

// Consumers returns, for every operator, the operators that read its output.
func (d *DAG) Consumers() map[*Op][]*Op {
	cons := make(map[*Op][]*Op, len(d.Ops))
	for _, op := range d.Ops {
		for _, in := range op.Inputs {
			cons[in] = append(cons[in], op)
		}
	}
	return cons
}

// Sinks returns compute operators whose output no other operator consumes;
// their outputs are the workflow's results, written back to the DFS.
// Unconsumed INPUT operators are not sinks — an unused source is dead data,
// not a result.
func (d *DAG) Sinks() []*Op {
	cons := d.Consumers()
	var sinks []*Op
	for _, op := range d.Ops {
		if op.Type != OpInput && len(cons[op]) == 0 {
			sinks = append(sinks, op)
		}
	}
	return sinks
}

// TopoSort returns the operators in a topological order (inputs before
// consumers) or an error if the graph contains a cycle or an edge to an
// operator outside the DAG.
func (d *DAG) TopoSort() ([]*Op, error) {
	inDAG := make(map[*Op]bool, len(d.Ops))
	for _, op := range d.Ops {
		inDAG[op] = true
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Op]int, len(d.Ops))
	order := make([]*Op, 0, len(d.Ops))
	var visit func(op *Op) error
	visit = func(op *Op) error {
		switch color[op] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("ir: cycle through %s", op)
		}
		color[op] = gray
		for _, in := range op.Inputs {
			if !inDAG[in] {
				return fmt.Errorf("ir: %s has input %s outside the DAG", op, in)
			}
			if err := visit(in); err != nil {
				return err
			}
		}
		color[op] = black
		order = append(order, op)
		return nil
	}
	// Visit in insertion order so the result is deterministic; this is the
	// "single linear ordering" the DP partitioning heuristic explores.
	for _, op := range d.Ops {
		if err := visit(op); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// analyzeHook is the full multi-pass analyzer Validate delegates to. It is
// installed by internal/analysis's init (a registration hook because
// analysis imports ir, so ir cannot import it back). When no analyzer is
// linked in, Validate falls back to the built-in first-error checks.
var analyzeHook func(*DAG) error

// RegisterAnalyzer installs the workflow analyzer Validate delegates to.
func RegisterAnalyzer(fn func(*DAG) error) { analyzeHook = fn }

// Validate checks the DAG is well-formed. When the internal/analysis
// package is linked in it delegates to the multi-pass analyzer (which
// reports every diagnostic, not just the first); otherwise it topo-sorts,
// checks relation-name uniqueness — descending into WHILE bodies — and runs
// schema inference over every operator.
func (d *DAG) Validate() error {
	if analyzeHook != nil {
		return analyzeHook(d)
	}
	if err := d.ValidateStructure(); err != nil {
		return err
	}
	_, err := d.InferSchemas()
	return err
}

// ValidateStructure topo-sorts the DAG and checks relation names are
// non-empty and unique. Names are scoped per DAG: a WHILE body deliberately
// reuses outer relation names for its input bridges, so each body is
// checked as its own namespace.
func (d *DAG) ValidateStructure() error {
	if _, err := d.TopoSort(); err != nil {
		return err
	}
	seen := make(map[string]bool, len(d.Ops))
	for _, op := range d.Ops {
		if op.Out == "" {
			return fmt.Errorf("ir: %s has empty output name", op)
		}
		if seen[op.Out] {
			return fmt.Errorf("ir: duplicate output relation %q", op.Out)
		}
		seen[op.Out] = true
	}
	for _, op := range d.Ops {
		if op.Params.Body != nil {
			if err := op.Params.Body.ValidateStructure(); err != nil {
				return fmt.Errorf("ir: %s body: %w", op, err)
			}
		}
	}
	return nil
}

// StampProv stamps front-end provenance onto d.Ops[from:] (and their WHILE
// bodies), leaving already-stamped operators alone. Front-ends call it once
// per translated statement with the statement's source line.
func (d *DAG) StampProv(frontend string, line, from int) {
	if from < 0 || from > len(d.Ops) {
		return
	}
	for _, op := range d.Ops[from:] {
		op.stampProv(frontend, line)
	}
}

// Defects returns structural problems recorded while manipulating the DAG.
func (d *DAG) Defects() []string { return d.defects }

// Clone deep-copies the DAG (including WHILE bodies). Operator IDs are
// preserved so partitionings computed on a clone map back to the original.
func (d *DAG) Clone() *DAG {
	c := &DAG{nextID: d.nextID}
	c.defects = append(c.defects, d.defects...)
	mapping := make(map[*Op]*Op, len(d.Ops))
	for _, op := range d.Ops {
		nop := &Op{ID: op.ID, Type: op.Type, Out: op.Out, Params: op.Params}
		if op.Params.Body != nil {
			nop.Params.Body = op.Params.Body.Clone()
		}
		if op.Params.Carried != nil {
			nop.Params.Carried = make(map[string]string, len(op.Params.Carried))
			for k, v := range op.Params.Carried {
				nop.Params.Carried[k] = v
			}
		}
		mapping[op] = nop
		c.Ops = append(c.Ops, nop)
	}
	for _, op := range d.Ops {
		nop := mapping[op]
		for _, in := range op.Inputs {
			nin, ok := mapping[in]
			if !ok {
				// Input outside this DAG (WHILE bodies reference outer ops
				// only via relation names, so this is a malformed front-end
				// DAG). Drop the edge and record the defect; the analyzer's
				// structural pass reports it as a diagnostic instead of the
				// whole process crashing.
				c.defects = append(c.defects,
					fmt.Sprintf("%s has input %s outside the DAG (dropped while cloning)", op, in))
				continue
			}
			nop.Inputs = append(nop.Inputs, nin)
		}
	}
	return c
}

// NumOps returns the operator count, counting WHILE bodies recursively
// (the paper's operator counts, e.g. NetFlix's 13, count this way).
func (d *DAG) NumOps() int {
	n := 0
	for _, op := range d.Ops {
		n++
		if op.Params.Body != nil {
			n += op.Params.Body.NumOps()
		}
	}
	return n
}

// Hash returns a stable digest of the DAG's structure and parameters; the
// workflow-history store keys observations by this hash so repeated runs of
// the same workflow (possibly at different input sizes) share history.
func (d *DAG) Hash() string {
	h := sha256.New()
	ops, err := d.TopoSort()
	if err != nil {
		ops = d.Ops
	}
	for _, op := range ops {
		fmt.Fprintf(h, "%s|%s|", op.Type, op.Out)
		for _, in := range op.Inputs {
			fmt.Fprintf(h, "%s,", in.Out)
		}
		fmt.Fprintf(h, "|%s|%v|%v|%v|%v|", op.Params.Pred, op.Params.Columns,
			op.Params.As, op.Params.GroupBy, op.Params.Aggs)
		fmt.Fprintf(h, "%v|%v|%v|%v|%v|%d|", op.Params.LeftCols, op.Params.RightCols, op.Params.UDFName,
			op.Params.SortBy, op.Params.Desc, op.Params.Limit)
		if op.Type == OpArith {
			// Operand literals matter: two arithmetic steps differing only in
			// a constant are different workflows.
			fmt.Fprintf(h, "%s=%s %s %s|", op.Params.Dst, op.Params.ALeft, op.Params.AOp, op.Params.ARght)
		}
		if op.Params.Body != nil {
			// %v prints maps with sorted keys, so Carried hashes stably.
			fmt.Fprintf(h, "body:%s|%d|%s|%v|", op.Params.Body.Hash(), op.Params.MaxIter, op.Params.CondRel, op.Params.Carried)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// String renders the DAG one operator per line in topological order.
func (d *DAG) String() string {
	ops, err := d.TopoSort()
	if err != nil {
		ops = d.Ops
	}
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
		if op.Params.Body != nil {
			for _, line := range strings.Split(strings.TrimRight(op.Params.Body.String(), "\n"), "\n") {
				b.WriteString("    ")
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// InputNames returns the DFS paths read by the DAG's OpInput operators,
// sorted for determinism.
func (d *DAG) InputNames() []string {
	var names []string
	for _, op := range d.Ops {
		if op.Type == OpInput {
			names = append(names, op.Params.Path)
		}
	}
	sort.Strings(names)
	return names
}
