package ir

import (
	"fmt"
	"testing"

	"musketeer/internal/relation"
)

// canonWorkflow builds the Listing-1 shape (two inputs, project, join, agg)
// with caller-chosen relation names and insertion order, so tests can build
// isomorphic-but-textually-different DAGs. Literals parameterize via the
// select threshold.
func canonWorkflow(names map[string]string, reversedInputs bool, threshold int64) *DAG {
	n := func(k string) string {
		if v, ok := names[k]; ok {
			return v
		}
		return k
	}
	d := NewDAG()
	var props, prices *Op
	if reversedInputs {
		prices = d.AddInput(n("prices"), "in/prices", pricesSchema())
		props = d.AddInput(n("properties"), "in/properties", propsSchema())
	} else {
		props = d.AddInput(n("properties"), "in/properties", propsSchema())
		prices = d.AddInput(n("prices"), "in/prices", pricesSchema())
	}
	sel := d.Add(OpSelect, n("cheap"), Params{
		Pred: Cmp(ColRef("id"), CmpLt, LitOp(relation.Int(threshold))),
	}, prices)
	locs := d.Add(OpProject, n("locs"), Params{Columns: []string{"id", "street", "town"}}, props)
	j := d.Add(OpJoin, n("id_price"), Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, sel)
	d.Add(OpAgg, n("street_price"), Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []AggSpec{{Func: AggMax, Col: "price", As: "max_price"}},
	}, j)
	return d
}

func TestCanonicalHashRenameInvariant(t *testing.T) {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(map[string]string{
		"properties": "t0", "prices": "t1", "cheap": "t2",
		"locs": "t3", "id_price": "t4", "street_price": "t5",
	}, false, 100)
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Errorf("renaming every relation changed the canonical hash: %s vs %s",
			CanonicalHash(a), CanonicalHash(b))
	}
	if a.Hash() == b.Hash() {
		t.Error("sanity: the name-sensitive DAG.Hash should differ under renaming")
	}
}

func TestCanonicalHashOrderInvariant(t *testing.T) {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(nil, true, 100)
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Errorf("reordering op insertion changed the canonical hash: %s vs %s",
			CanonicalHash(a), CanonicalHash(b))
	}
}

func TestCanonicalHashLiteralSensitive(t *testing.T) {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(nil, false, 200)
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Error("changing a predicate literal did not change the canonical hash")
	}
}

func TestCanonicalHashStructureSensitive(t *testing.T) {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(nil, false, 100)
	// Same ops, different wiring: aggregate the projection instead of the join.
	agg := b.ByOut("street_price")
	agg.Inputs = []*Op{b.ByOut("locs")}
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Error("rewiring an edge did not change the canonical hash")
	}
}

func TestCanonicalOrderBijection(t *testing.T) {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(map[string]string{
		"properties": "x0", "prices": "x1", "cheap": "x2",
		"locs": "x3", "id_price": "x4", "street_price": "x5",
	}, true, 100)
	oa, ob := CanonicalOrder(a), CanonicalOrder(b)
	if len(oa) != len(ob) {
		t.Fatalf("order lengths differ: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i].Type != ob[i].Type {
			t.Errorf("position %d: %s vs %s — canonical orders misaligned",
				i, oa[i].Type, ob[i].Type)
		}
	}
	// The agg in a must align with the renamed agg in b.
	for i := range oa {
		if oa[i].Out == "street_price" && ob[i].Out != "x5" {
			t.Errorf("agg aligned with %q, want x5", ob[i].Out)
		}
	}
}

// TestCanonicalOrderTwins pins the refinement step: two SELECTs with equal
// upstream cones but different consumers must separate by downstream
// context, so recipes never swap them.
func TestCanonicalOrderTwins(t *testing.T) {
	build := func(swap bool) *DAG {
		d := NewDAG()
		in := d.AddInput("src", "in/src", pricesSchema())
		p := Cmp(ColRef("id"), CmpGt, LitOp(relation.Int(1)))
		s1 := d.Add(OpSelect, "s1", Params{Pred: p}, in)
		s2 := d.Add(OpSelect, "s2", Params{Pred: p}, in)
		if swap {
			s1, s2 = s2, s1
		}
		// s1 feeds a DISTINCT, s2 feeds a SORT: downstream context differs.
		d.Add(OpDistinct, "d", Params{}, s1)
		d.Add(OpSort, "o", Params{SortBy: []string{"id"}}, s2)
		return d
	}
	a, b := build(false), build(true)
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Fatal("twin selects: hashes differ for isomorphic DAGs")
	}
	oa, ob := CanonicalOrder(a), CanonicalOrder(b)
	cona, conb := a.Consumers(), b.Consumers()
	for i := range oa {
		if oa[i].Type != OpSelect {
			continue
		}
		if len(cona[oa[i]]) != 1 || len(conb[ob[i]]) != 1 {
			t.Fatalf("position %d: select consumer count unexpected", i)
		}
		if cona[oa[i]][0].Type != conb[ob[i]][0].Type {
			t.Errorf("position %d: twin selects aligned to different consumers (%s vs %s)",
				i, cona[oa[i]][0].Type, conb[ob[i]][0].Type)
		}
	}
}

func TestCanonicalHashWhileBodyNamesMatter(t *testing.T) {
	build := func(bodyOut string) *DAG {
		body := NewDAG()
		bin := body.AddInput("cur", "", pricesSchema())
		body.Add(OpDistinct, bodyOut, Params{}, bin)
		d := NewDAG()
		src := d.AddInput("seed", "in/seed", pricesSchema())
		d.Add(OpWhile, "result", Params{
			Body: body, MaxIter: 3,
			Carried: map[string]string{"cur": bodyOut},
		}, src)
		return d
	}
	a, b := build("next"), build("step")
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Error("WHILE body relation names are semantic (Carried refers to them) and must affect the hash")
	}
}

func TestCanonicalHashStableAcrossRuns(t *testing.T) {
	// Map iteration order must not leak into the digest.
	want := CanonicalHash(canonWorkflow(nil, false, 100))
	for i := 0; i < 20; i++ {
		if got := CanonicalHash(canonWorkflow(nil, false, 100)); got != want {
			t.Fatalf("run %d: hash %s != %s", i, got, want)
		}
	}
}

func BenchmarkCanonicalHash(b *testing.B) {
	d := canonWorkflow(nil, false, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if CanonicalHash(d) == "" {
			b.Fatal("empty hash")
		}
	}
}

func ExampleCanonicalHash() {
	a := canonWorkflow(nil, false, 100)
	b := canonWorkflow(map[string]string{"street_price": "renamed"}, true, 100)
	fmt.Println(CanonicalHash(a) == CanonicalHash(b))
	// Output: true
}
