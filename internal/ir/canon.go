package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Canonicalization gives the plan cache its key: a digest of a DAG's
// *semantics* — operator kinds, parameters, literals, schemas, and edge
// structure — that is invariant under the two things that vary freely
// between textually different submissions of the same workflow: the names
// chosen for intermediate relations (Op.Out) and the order operators were
// appended in. Two submissions whose DAGs differ only in those respects
// canonicalize identically, so a plan computed for one replays on the
// other.
//
// The construction is a Weisfeiler–Leman-style color refinement:
//
//  1. Every operator gets a downward signature: a hash of its type, its
//     name-free parameter rendering, and (positionally) its inputs'
//     downward signatures. This captures each operator's entire upstream
//     cone.
//  2. Signatures are refined with consumer information — an operator's
//     refined signature hashes its previous signature together with the
//     sorted multiset of its consumers' previous signatures — until the
//     partition of operators into equal-signature classes stops changing.
//     After refinement two operators share a signature only if their
//     upstream *and* downstream contexts are indistinguishable, i.e. they
//     are interchangeable for partitioning purposes.
//
// CanonicalHash digests the sorted multiset of refined signatures;
// CanonicalOrder sorts operators by (refined signature, topological
// position), which gives hash-equal DAGs a positional bijection the plan
// cache uses to replay fragment recipes.
//
// WHILE bodies are folded into their operator's parameter signature *with*
// relation names included: body relation names are semantically load-
// bearing (Carried, CondRel, and the outer-name input bridges all refer to
// them), so renaming inside a loop body is deliberately NOT canonicalized
// away.

// CanonicalHash returns the name- and order-independent semantic digest of
// the DAG (16 hex characters, like DAG.Hash).
func CanonicalHash(d *DAG) string {
	sigs := refinedSigs(d)
	lines := make([]string, 0, len(d.Ops))
	for _, s := range sigs {
		lines = append(lines, s)
	}
	sort.Strings(lines)
	h := sha256.New()
	fmt.Fprintf(h, "canon:%d|", len(lines))
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// CanonicalOrder returns the DAG's operators sorted by (refined canonical
// signature, topological position). For two DAGs with equal CanonicalHash
// the i-th operators of their canonical orders correspond: equal-signature
// classes have equal sizes on both sides, and operators within one class
// are interchangeable, so the positional pairing is a semantic bijection.
func CanonicalOrder(d *DAG) []*Op {
	sigs := refinedSigs(d)
	topoPos := make(map[*Op]int, len(d.Ops))
	order, err := d.TopoSort()
	if err != nil {
		order = d.Ops
	}
	for i, op := range order {
		topoPos[op] = i
	}
	out := append([]*Op(nil), d.Ops...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := sigs[out[i]], sigs[out[j]]
		if si != sj {
			return si < sj
		}
		return topoPos[out[i]] < topoPos[out[j]]
	})
	return out
}

// refinedSigs computes the stable refined signature of every operator.
func refinedSigs(d *DAG) map[*Op]string {
	// Round 0: downward structural signatures (full upstream cone).
	sigs := make(map[*Op]string, len(d.Ops))
	var down func(op *Op) string
	down = func(op *Op) string {
		if s, ok := sigs[op]; ok {
			return s
		}
		var b strings.Builder
		b.WriteString(op.Type.String())
		b.WriteByte('{')
		b.WriteString(paramSig(op))
		b.WriteString("}(")
		for i, in := range op.Inputs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(down(in))
		}
		b.WriteByte(')')
		s := digest(b.String())
		sigs[op] = s
		return s
	}
	for _, op := range d.Ops {
		down(op)
	}

	// Upward refinement to a fixpoint of the signature partition: fold each
	// operator's consumers' signatures in until the number of distinct
	// classes stops growing (it can only grow — each round's signature
	// includes the previous round's).
	cons := d.Consumers()
	classes := countDistinct(sigs)
	for round := 0; round < len(d.Ops); round++ {
		next := make(map[*Op]string, len(sigs))
		for _, op := range d.Ops {
			cs := make([]string, 0, len(cons[op]))
			for _, c := range cons[op] {
				cs = append(cs, sigs[c])
			}
			sort.Strings(cs)
			next[op] = digest(sigs[op] + "^" + strings.Join(cs, ","))
		}
		sigs = next
		if n := countDistinct(sigs); n == classes {
			break
		} else {
			classes = n
		}
	}
	return sigs
}

func countDistinct(sigs map[*Op]string) int {
	set := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		set[s] = true
	}
	return len(set)
}

func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:12])
}

// paramSig renders an operator's semantic parameters without its output
// relation name. Column names, literals, predicates, schemas, and DFS
// paths are all semantics and stay in; Op.Out and Op.ID stay out.
func paramSig(op *Op) string {
	p := &op.Params
	var b strings.Builder
	switch op.Type {
	case OpInput:
		fmt.Fprintf(&b, "path=%s;schema=%s", p.Path, p.Schema)
	case OpSelect:
		fmt.Fprintf(&b, "pred=%s", p.Pred)
	case OpProject:
		fmt.Fprintf(&b, "cols=%v;as=%v", p.Columns, p.As)
	case OpJoin, OpCrossJoin:
		fmt.Fprintf(&b, "l=%v;r=%v", p.LeftCols, p.RightCols)
	case OpAgg:
		fmt.Fprintf(&b, "by=%v;aggs=%v", p.GroupBy, p.Aggs)
	case OpArith:
		fmt.Fprintf(&b, "dst=%s;l=%s;op=%s;r=%s", p.Dst, p.ALeft, p.AOp, p.ARght)
	case OpUDF:
		fmt.Fprintf(&b, "udf=%s", p.UDFName)
	case OpSort:
		fmt.Fprintf(&b, "by=%v;desc=%t", p.SortBy, p.Desc)
	case OpLimit:
		fmt.Fprintf(&b, "n=%d", p.Limit)
	case OpWhile:
		// Body relation names are load-bearing (Carried / CondRel / outer
		// bridges), so the body folds in via the name-sensitive DAG hash.
		carried := make([]string, 0, len(p.Carried))
		for k, v := range p.Carried {
			carried = append(carried, k+"->"+v)
		}
		sort.Strings(carried)
		body := ""
		if p.Body != nil {
			body = p.Body.Hash()
		}
		fmt.Fprintf(&b, "body=%s;max=%d;cond=%s;carried=%v", body, p.MaxIter, p.CondRel, carried)
	}
	return b.String()
}
