// Package ir defines Musketeer's intermediate representation: a directed
// acyclic graph of data-flow operators (paper §4.2).
//
// Front-ends (Hive, BEER, Lindi, the GAS DSL) translate workflow
// specifications into this DAG; the optimizer rewrites it; the partitioner
// splits it into back-end jobs; and code generators lower fragments of it
// into per-engine physical plans. The operator set is loosely based on
// relational algebra — SELECT, PROJECT, UNION, INTERSECT, JOIN, DIFFERENCE,
// aggregation (AGG/GROUP BY), column-level algebra (SUM, SUB, DIV, MUL) and
// extremes (MAX, MIN) — plus user-defined functions and a WHILE operator
// that dynamically extends the DAG for data-dependent iteration.
package ir

import (
	"fmt"
	"strings"

	"musketeer/internal/relation"
)

// OpType identifies an IR operator.
type OpType uint8

const (
	// OpInput is a source: a relation read from the DFS.
	OpInput OpType = iota
	// OpSelect filters rows by a predicate.
	OpSelect
	// OpProject keeps a subset of columns.
	OpProject
	// OpUnion concatenates two union-compatible relations (bag semantics).
	OpUnion
	// OpIntersect keeps rows present in both inputs (set semantics).
	OpIntersect
	// OpDifference keeps left rows absent from the right input.
	OpDifference
	// OpJoin is an equi-join on named key columns.
	OpJoin
	// OpCrossJoin is the Cartesian product (used by k-means).
	OpCrossJoin
	// OpAgg groups by key columns and applies aggregators (SUM, COUNT,
	// MIN, MAX, AVG). An empty group-by aggregates the whole relation.
	OpAgg
	// OpArith applies column-level algebra: dst = left ⊕ right, where the
	// operands are columns or literals (the paper's SUM/SUB/MUL/DIV ops).
	OpArith
	// OpDistinct removes duplicate rows.
	OpDistinct
	// OpUDF invokes a registered user-defined function.
	OpUDF
	// OpWhile iterates a body sub-DAG until a stop condition holds,
	// successively extending the data-flow graph (paper §4.2).
	OpWhile
	// OpSort orders rows by key columns. Not part of the paper's initial
	// operator set; it exists as the worked example of §4.2's "extensible
	// set of operators" — a new operator means schema inference, an
	// execution kernel, bounds, and code templates, nothing else.
	OpSort
	// OpLimit keeps the first N rows (with OpSort upstream: top-N).
	OpLimit
)

var opTypeNames = map[OpType]string{
	OpInput: "INPUT", OpSelect: "SELECT", OpProject: "PROJECT",
	OpUnion: "UNION", OpIntersect: "INTERSECT", OpDifference: "DIFFERENCE",
	OpJoin: "JOIN", OpCrossJoin: "CROSS_JOIN", OpAgg: "AGG",
	OpArith: "ARITH", OpDistinct: "DISTINCT", OpUDF: "UDF", OpWhile: "WHILE",
	OpSort: "SORT", OpLimit: "LIMIT",
}

// String returns the upper-case operator name used in plans and traces.
func (t OpType) String() string {
	if s, ok := opTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(t))
}

// CmpOp is a comparison operator in predicates.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

// String renders the comparison symbol.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return "?"
}

// Eval applies the comparison to an ordering result from Value.Compare.
func (c CmpOp) Eval(cmp int) bool {
	switch c {
	case CmpEq:
		return cmp == 0
	case CmpNe:
		return cmp != 0
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// Operand is a predicate/arithmetic operand: a column reference (optionally
// scaled by a constant, e.g. 0.2*avg_qty in TPC-H Q17) or a literal.
type Operand struct {
	IsCol bool
	Col   string
	Lit   relation.Value
	// Scale multiplies a column operand's value; zero means unscaled.
	Scale float64
}

// ColRef returns a column operand.
func ColRef(name string) Operand { return Operand{IsCol: true, Col: name} }

// ScaledCol returns a column operand multiplied by a constant.
func ScaledCol(name string, scale float64) Operand {
	return Operand{IsCol: true, Col: name, Scale: scale}
}

// LitOp returns a literal operand.
func LitOp(v relation.Value) Operand { return Operand{Lit: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsCol {
		if o.Scale != 0 && o.Scale != 1 {
			return fmt.Sprintf("%g*%s", o.Scale, o.Col)
		}
		return o.Col
	}
	if o.Lit.Kind == relation.KindString {
		return fmt.Sprintf("%q", o.Lit.S)
	}
	return o.Lit.String()
}

// PredKind distinguishes predicate tree nodes.
type PredKind uint8

// Predicate node kinds.
const (
	PredCmp PredKind = iota
	PredAnd
	PredOr
)

// Pred is a predicate tree: comparisons combined with AND/OR.
type Pred struct {
	Kind        PredKind
	Left, Right *Pred   // for PredAnd / PredOr
	LHS, RHS    Operand // for PredCmp
	Cmp         CmpOp
}

// Cmp returns a comparison leaf.
func Cmp(lhs Operand, op CmpOp, rhs Operand) *Pred {
	return &Pred{Kind: PredCmp, LHS: lhs, Cmp: op, RHS: rhs}
}

// And conjoins two predicates.
func And(a, b *Pred) *Pred { return &Pred{Kind: PredAnd, Left: a, Right: b} }

// Or disjoins two predicates.
func Or(a, b *Pred) *Pred { return &Pred{Kind: PredOr, Left: a, Right: b} }

// String renders the predicate.
func (p *Pred) String() string {
	if p == nil {
		return "true"
	}
	switch p.Kind {
	case PredAnd:
		return "(" + p.Left.String() + " AND " + p.Right.String() + ")"
	case PredOr:
		return "(" + p.Left.String() + " OR " + p.Right.String() + ")"
	default:
		return fmt.Sprintf("%s %s %s", p.LHS, p.Cmp, p.RHS)
	}
}

// Columns appends the column names referenced by the predicate to dst.
func (p *Pred) Columns(dst []string) []string {
	if p == nil {
		return dst
	}
	if p.Kind == PredCmp {
		if p.LHS.IsCol {
			dst = append(dst, p.LHS.Col)
		}
		if p.RHS.IsCol {
			dst = append(dst, p.RHS.Col)
		}
		return dst
	}
	return p.Right.Columns(p.Left.Columns(dst))
}

// AggFunc enumerates aggregation functions.
type AggFunc uint8

// Aggregation functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

var aggNames = [...]string{"SUM", "COUNT", "MIN", "MAX", "AVG"}

// String renders the aggregator name.
func (f AggFunc) String() string {
	if int(f) < len(aggNames) {
		return aggNames[f]
	}
	return "AGG?"
}

// Associative reports whether the aggregation can be applied hierarchically
// (combiner-style). Non-associative aggregations force data onto a single
// machine in Lindi's high-level GROUP BY (paper §6.2); Musketeer's improved
// generated operator uses partial aggregation for the associative ones.
func (f AggFunc) Associative() bool {
	// AVG is associative when decomposed into SUM+COUNT; the generated
	// code does that, while Lindi's high-level operator does not.
	return f != AggAvg
}

// AggSpec is one aggregation: Func(Col) AS As.
type AggSpec struct {
	Func AggFunc
	Col  string // ignored for COUNT
	As   string
}

// String renders the spec.
func (a AggSpec) String() string {
	return fmt.Sprintf("%s(%s) AS %s", a.Func, a.Col, a.As)
}

// ArithOp enumerates column-level algebraic operators (paper's SUM, SUB,
// DIV, MUL column operations).
type ArithOp uint8

// Column arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
)

var arithNames = [...]string{"SUM", "SUB", "MUL", "DIV"}

// String renders the paper's name for the operator.
func (a ArithOp) String() string {
	if int(a) < len(arithNames) {
		return arithNames[a]
	}
	return "ARITH?"
}

// Apply evaluates the arithmetic.
func (a ArithOp) Apply(l, r relation.Value) relation.Value {
	switch a {
	case ArithAdd:
		return l.Add(r)
	case ArithSub:
		return l.Sub(r)
	case ArithMul:
		return l.Mul(r)
	default:
		return l.Div(r)
	}
}

// Params carries the operator-type-specific configuration of an Op.
// Only the fields relevant to the Op's type are set.
type Params struct {
	// OpInput
	Path   string          // DFS path of the source relation
	Schema relation.Schema // declared schema of the source

	// OpSelect
	Pred *Pred

	// OpProject
	Columns []string
	// As optionally renames the projected columns; when set it must have
	// the same length as Columns. Renaming is how loop bodies realign
	// carried relations (e.g. PageRank's "dst" back to "vertex").
	As []string

	// OpJoin
	LeftCols, RightCols []string

	// OpAgg
	GroupBy []string
	Aggs    []AggSpec

	// OpArith
	Dst          string // result column; may equal Left's column (in-place)
	ALeft, ARght Operand
	AOp          ArithOp

	// OpUDF
	UDFName string

	// OpSort
	SortBy []string
	Desc   bool

	// OpLimit
	Limit int

	// OpWhile
	Body *DAG
	// MaxIter bounds the iteration count (ITERATION_STOP in the GAS DSL).
	MaxIter int
	// CondRel, when non-empty, names a body output relation; iteration
	// additionally stops once it becomes empty (data-dependent loops,
	// e.g. SSSP convergence).
	CondRel string
	// Carried maps body input relation names to body output relation
	// names: after each iteration, output[v] becomes next iteration's
	// input[k].
	Carried map[string]string
}

// Provenance records which front-end framework produced an operator and
// the source line it was translated from. Diagnostics use it to point the
// user back at their workflow text rather than at IR internals. The zero
// value means "unknown" (hand-built DAGs).
type Provenance struct {
	Frontend string
	Line     int
}

// String renders "frontend:line", or just the front-end name when no line
// is known, or "" for the zero value.
func (p Provenance) String() string {
	if p.Frontend == "" {
		return ""
	}
	if p.Line <= 0 {
		return p.Frontend
	}
	return fmt.Sprintf("%s:%d", p.Frontend, p.Line)
}

// Op is one node of the IR DAG. Inputs are edges to producing operators;
// Out names the operator's output relation (unique within a DAG).
type Op struct {
	ID     int
	Type   OpType
	Out    string
	Inputs []*Op
	Params Params
	// Prov is the front-end provenance of the operator, if known.
	Prov Provenance
}

// stampProv fills in provenance on the operator and (recursively) its WHILE
// body, without overwriting provenance already stamped by a nested parser.
func (o *Op) stampProv(frontend string, line int) {
	if o.Prov.Frontend == "" {
		o.Prov = Provenance{Frontend: frontend, Line: line}
	}
	if o.Params.Body != nil {
		for _, bop := range o.Params.Body.Ops {
			bop.stampProv(frontend, line)
		}
	}
}

// String renders a compact description for plans and error messages.
func (o *Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d(%s", o.Type, o.ID, o.Out)
	if len(o.Inputs) > 0 {
		b.WriteString(" <-")
		for _, in := range o.Inputs {
			b.WriteByte(' ')
			b.WriteString(in.Out)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// IsSelective reports whether the operator can only shrink (or keep) its
// input cardinality. The cost model uses this for conservative first-run
// output bounds, and the optimizer pushes selective operators early.
func (o *Op) IsSelective() bool {
	switch o.Type {
	case OpSelect, OpProject, OpDistinct, OpIntersect, OpDifference, OpAgg, OpLimit:
		return true
	default:
		return false
	}
}

// IsGenerative reports whether the operator can grow its input (joins,
// unions, cross products); generative operators have unknown or large
// output bounds on first execution (paper §5.2).
func (o *Op) IsGenerative() bool {
	switch o.Type {
	case OpJoin, OpCrossJoin, OpUnion:
		return true
	default:
		return false
	}
}
