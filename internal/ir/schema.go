package ir

import (
	"fmt"

	"musketeer/internal/relation"
)

// AddInput adds a source operator reading path with the declared schema.
// The output relation name defaults to the path when out is empty.
func (d *DAG) AddInput(out, path string, schema relation.Schema) *Op {
	if out == "" {
		out = path
	}
	return d.Add(OpInput, out, Params{Path: path, Schema: schema})
}

// UDFSchemaFn computes a UDF's output schema from its input schemas.
type UDFSchemaFn func(inputs []relation.Schema) (relation.Schema, error)

// udfSchemas is the registry of schema transforms for UDF operators;
// the execution registry lives in internal/exec.
var udfSchemas = map[string]UDFSchemaFn{}

// RegisterUDFSchema declares the schema transform of a named UDF.
// Re-registration replaces the previous entry (tests rely on this).
func RegisterUDFSchema(name string, fn UDFSchemaFn) {
	udfSchemas[name] = fn
}

// InferSchemas computes the output schema of every operator, validating
// column references along the way. WHILE bodies are validated recursively:
// the body's input relations take the schemas of the outer operators named
// by the loop-carried mapping.
func (d *DAG) InferSchemas() (map[*Op]relation.Schema, error) {
	d.inferMu.Lock()
	defer d.inferMu.Unlock()
	return d.inferLocked()
}

func (d *DAG) inferLocked() (map[*Op]relation.Schema, error) {
	ops, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make(map[*Op]relation.Schema, len(ops))
	for _, op := range ops {
		s, err := inferOp(op, out)
		if err != nil {
			return nil, err
		}
		out[op] = s
	}
	return out, nil
}

// inferBodySchemas binds outer input schemas onto a WHILE body's input
// operators and infers the body, all under the body DAG's lock — the
// binding mutates shared ops, and concurrent jobs of one workflow may
// infer over the same body.
func (d *DAG) inferBodySchemas(outer map[string]relation.Schema) (map[*Op]relation.Schema, error) {
	d.inferMu.Lock()
	defer d.inferMu.Unlock()
	for _, bop := range d.Ops {
		if bop.Type == OpInput {
			if s, ok := outer[bop.Out]; ok {
				bop.Params.Schema = s
			}
		}
	}
	return d.inferLocked()
}

// OutputSchema returns the schema of a single operator given the inferred
// schemas of its inputs (convenience for code generators).
func OutputSchema(op *Op, schemas map[*Op]relation.Schema) (relation.Schema, error) {
	return inferOp(op, schemas)
}

func inferOp(op *Op, known map[*Op]relation.Schema) (relation.Schema, error) {
	in := make([]relation.Schema, len(op.Inputs))
	for i, input := range op.Inputs {
		s, ok := known[input]
		if !ok {
			return relation.Schema{}, fmt.Errorf("ir: %s: input %s has no inferred schema", op, input)
		}
		in[i] = s
	}
	switch op.Type {
	case OpInput:
		if op.Params.Schema.Arity() == 0 {
			return relation.Schema{}, fmt.Errorf("ir: %s: input without schema", op)
		}
		return op.Params.Schema, nil

	case OpSelect:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		for _, col := range op.Params.Pred.Columns(nil) {
			if in[0].Index(col) < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: predicate references unknown column %q in %s", op, col, in[0])
			}
		}
		return in[0], nil

	case OpProject:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		idx := make([]int, len(op.Params.Columns))
		for i, col := range op.Params.Columns {
			j := in[0].Index(col)
			if j < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown column %q in %s", op, col, in[0])
			}
			idx[i] = j
		}
		out := in[0].Project(idx)
		if len(op.Params.As) > 0 {
			if len(op.Params.As) != len(op.Params.Columns) {
				return relation.Schema{}, fmt.Errorf("ir: %s: %d AS names for %d columns", op, len(op.Params.As), len(op.Params.Columns))
			}
			for i, name := range op.Params.As {
				out.Cols[i].Name = name
			}
		}
		return out, nil

	case OpUnion, OpIntersect, OpDifference:
		if err := wantInputs(op, in, 2); err != nil {
			return relation.Schema{}, err
		}
		if in[0].Arity() != in[1].Arity() {
			return relation.Schema{}, fmt.Errorf("ir: %s: arity mismatch %d vs %d", op, in[0].Arity(), in[1].Arity())
		}
		for i := range in[0].Cols {
			if in[0].Cols[i].Kind != in[1].Cols[i].Kind {
				return relation.Schema{}, fmt.Errorf("ir: %s: column %d kind mismatch", op, i)
			}
		}
		return in[0], nil

	case OpJoin:
		if err := wantInputs(op, in, 2); err != nil {
			return relation.Schema{}, err
		}
		if len(op.Params.LeftCols) == 0 || len(op.Params.LeftCols) != len(op.Params.RightCols) {
			return relation.Schema{}, fmt.Errorf("ir: %s: bad join keys %v / %v", op, op.Params.LeftCols, op.Params.RightCols)
		}
		rightKeep := make([]int, 0, in[1].Arity())
		for i := range in[1].Cols {
			if !contains(op.Params.RightCols, in[1].Cols[i].Name) {
				rightKeep = append(rightKeep, i)
			}
		}
		for _, c := range op.Params.LeftCols {
			if in[0].Index(c) < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown left key %q in %s", op, c, in[0])
			}
		}
		for _, c := range op.Params.RightCols {
			if in[1].Index(c) < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown right key %q in %s", op, c, in[1])
			}
		}
		return in[0].Concat(in[1].Project(rightKeep)), nil

	case OpCrossJoin:
		if err := wantInputs(op, in, 2); err != nil {
			return relation.Schema{}, err
		}
		return in[0].Concat(in[1]), nil

	case OpAgg:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		out := relation.Schema{}
		for _, g := range op.Params.GroupBy {
			j := in[0].Index(g)
			if j < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown group-by column %q", op, g)
			}
			out.Cols = append(out.Cols, in[0].Cols[j])
		}
		if len(op.Params.Aggs) == 0 {
			return relation.Schema{}, fmt.Errorf("ir: %s: AGG without aggregators", op)
		}
		for _, a := range op.Params.Aggs {
			kind := relation.KindFloat
			switch a.Func {
			case AggCount:
				kind = relation.KindInt
			case AggSum, AggMin, AggMax:
				j := in[0].Index(a.Col)
				if j < 0 {
					return relation.Schema{}, fmt.Errorf("ir: %s: unknown agg column %q", op, a.Col)
				}
				kind = in[0].Cols[j].Kind
				if kind == relation.KindString && a.Func == AggSum {
					return relation.Schema{}, fmt.Errorf("ir: %s: SUM over string column %q", op, a.Col)
				}
			case AggAvg:
				if in[0].Index(a.Col) < 0 {
					return relation.Schema{}, fmt.Errorf("ir: %s: unknown agg column %q", op, a.Col)
				}
			}
			name := a.As
			if name == "" {
				return relation.Schema{}, fmt.Errorf("ir: %s: aggregator missing AS name", op)
			}
			out.Cols = append(out.Cols, relation.Column{Name: name, Kind: kind})
		}
		return out, nil

	case OpArith:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		for _, operand := range []Operand{op.Params.ALeft, op.Params.ARght} {
			if operand.IsCol && in[0].Index(operand.Col) < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown operand column %q", op, operand.Col)
			}
		}
		if op.Params.Dst == "" {
			return relation.Schema{}, fmt.Errorf("ir: %s: ARITH without destination column", op)
		}
		if in[0].Index(op.Params.Dst) >= 0 {
			// In-place update: schema unchanged except a DIV result
			// becomes float.
			out := relation.Schema{Cols: append([]relation.Column(nil), in[0].Cols...)}
			if op.Params.AOp == ArithDiv {
				out.Cols[out.Index(op.Params.Dst)].Kind = relation.KindFloat
			}
			return out, nil
		}
		kind := relation.KindFloat
		if op.Params.AOp != ArithDiv && op.Params.ALeft.IsCol && op.Params.ARght.IsCol {
			lk := in[0].Cols[in[0].Index(op.Params.ALeft.Col)].Kind
			rk := in[0].Cols[in[0].Index(op.Params.ARght.Col)].Kind
			if lk == relation.KindInt && rk == relation.KindInt {
				kind = relation.KindInt
			}
		}
		out := relation.Schema{Cols: append([]relation.Column(nil), in[0].Cols...)}
		out.Cols = append(out.Cols, relation.Column{Name: op.Params.Dst, Kind: kind})
		return out, nil

	case OpDistinct:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		return in[0], nil

	case OpSort:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		if len(op.Params.SortBy) == 0 {
			return relation.Schema{}, fmt.Errorf("ir: %s: SORT without key columns", op)
		}
		for _, c := range op.Params.SortBy {
			if in[0].Index(c) < 0 {
				return relation.Schema{}, fmt.Errorf("ir: %s: unknown sort column %q", op, c)
			}
		}
		return in[0], nil

	case OpLimit:
		if err := wantInputs(op, in, 1); err != nil {
			return relation.Schema{}, err
		}
		if op.Params.Limit <= 0 {
			return relation.Schema{}, fmt.Errorf("ir: %s: LIMIT must be positive", op)
		}
		return in[0], nil

	case OpUDF:
		fn, ok := udfSchemas[op.Params.UDFName]
		if !ok {
			return relation.Schema{}, fmt.Errorf("ir: %s: unregistered UDF %q", op, op.Params.UDFName)
		}
		return fn(in)

	case OpWhile:
		if op.Params.Body == nil {
			return relation.Schema{}, fmt.Errorf("ir: %s: WHILE without body", op)
		}
		if op.Params.MaxIter <= 0 && op.Params.CondRel == "" {
			return relation.Schema{}, fmt.Errorf("ir: %s: WHILE without stop condition", op)
		}
		// Body input relations named after outer inputs adopt their
		// schemas; remaining body inputs carry their declared schemas.
		body := op.Params.Body
		outer := make(map[string]relation.Schema, len(op.Inputs))
		for i, outerIn := range op.Inputs {
			outer[outerIn.Out] = in[i]
		}
		bodySchemas, err := body.inferBodySchemas(outer)
		if err != nil {
			return relation.Schema{}, fmt.Errorf("ir: %s body: %w", op, err)
		}
		// Surface body schemas to the caller's map so code generators see
		// types for loop-body operators too.
		for bop, s := range bodySchemas {
			known[bop] = s
		}
		// Loop-carried outputs must be schema-compatible with their
		// corresponding inputs.
		for inName, outName := range op.Params.Carried {
			inOp, outOp := body.ByOut(inName), body.ByOut(outName)
			if inOp == nil || outOp == nil {
				return relation.Schema{}, fmt.Errorf("ir: %s: carried %q->%q not in body", op, inName, outName)
			}
			if !bodySchemas[inOp].Equal(bodySchemas[outOp]) {
				return relation.Schema{}, fmt.Errorf("ir: %s: carried %q (%s) incompatible with %q (%s)",
					op, outName, bodySchemas[outOp], inName, bodySchemas[inOp])
			}
		}
		// The WHILE's own output is the final value of the designated
		// result relation: the first carried output, or the body's sole
		// sink when no carry is declared.
		res := op.resultRelation()
		resOp := body.ByOut(res)
		if resOp == nil {
			return relation.Schema{}, fmt.Errorf("ir: %s: result relation %q not in body", op, res)
		}
		return bodySchemas[resOp], nil

	default:
		return relation.Schema{}, fmt.Errorf("ir: %s: unknown operator type", op)
	}
}

// resultRelation names the body relation whose final value becomes the
// WHILE operator's output: the lexically smallest carried output, or the
// body's sole sink when no carry is declared.
func (o *Op) resultRelation() string {
	best := ""
	for _, outName := range o.Params.Carried {
		if best == "" || outName < best {
			best = outName
		}
	}
	if best != "" {
		return best
	}
	if o.Params.Body != nil {
		if sinks := o.Params.Body.Sinks(); len(sinks) > 0 {
			return sinks[0].Out
		}
	}
	return ""
}

// ResultRelation exposes the WHILE result-relation rule to other packages.
func (o *Op) ResultRelation() string { return o.resultRelation() }

func wantInputs(op *Op, in []relation.Schema, n int) error {
	if len(in) != n {
		return fmt.Errorf("ir: %s: want %d inputs, have %d", op, n, len(in))
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
