package ir

// GraphIdiom describes a vertex-oriented computation detected inside a
// WHILE body (paper §4.3.1): a JOIN on the vertex column (the "scatter" /
// message-send), followed — possibly through apply-step operators — by a
// GROUP BY on the vertex column (the "gather" / message-receive). Any other
// operators in the body form the "apply" step.
type GraphIdiom struct {
	While   *Op
	Scatter *Op // the JOIN
	Gather  *Op // the GROUP BY (OpAgg)
}

// DetectGraphIdiom inspects a WHILE operator and reports the graph idiom if
// its body matches, or nil. Detection is sound but not complete (paper §8):
// workloads that express graph traversal without the JOIN→GROUP BY shape —
// e.g. triangle counting via repeated self-joins — are not recognized.
func DetectGraphIdiom(while *Op) *GraphIdiom {
	if while == nil || while.Type != OpWhile || while.Params.Body == nil {
		return nil
	}
	body := while.Params.Body
	cons := body.Consumers()
	for _, op := range body.Ops {
		if op.Type != OpJoin {
			continue
		}
		// The JOIN must combine two distinct inputs (vertex state and
		// edges), keyed on a single column on each side.
		if len(op.Inputs) != 2 || op.Inputs[0] == op.Inputs[1] {
			continue
		}
		if len(op.Params.LeftCols) != 1 || len(op.Params.RightCols) != 1 {
			continue
		}
		if g := findGather(op, cons); g != nil {
			return &GraphIdiom{While: while, Scatter: op, Gather: g}
		}
	}
	return nil
}

// findGather follows the consumer chain from the scatter JOIN through
// apply-step operators (arithmetic, projection, selection) to a GROUP BY on
// a single vertex column.
func findGather(from *Op, cons map[*Op][]*Op) *Op {
	for _, c := range cons[from] {
		switch c.Type {
		case OpAgg:
			if len(c.Params.GroupBy) == 1 {
				return c
			}
		case OpArith, OpProject, OpSelect, OpDistinct:
			if g := findGather(c, cons); g != nil {
				return g
			}
		}
	}
	return nil
}

// IsGraphWorkflow reports whether the DAG's dominant computation is a
// detected graph idiom: it contains a WHILE whose body matches. Used by the
// automatic mapper and by GAS-only back-end validity checks.
func (d *DAG) IsGraphWorkflow() bool {
	for _, op := range d.Ops {
		if op.Type == OpWhile && DetectGraphIdiom(op) != nil {
			return true
		}
	}
	return false
}
