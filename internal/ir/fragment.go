package ir

import (
	"fmt"
	"sort"
	"strings"

	"musketeer/internal/relation"
)

// Fragment is a connected(-ish) subset of a DAG's operators that one
// back-end job will execute (paper §5: a partition of the IR DAG).
// Ops are stored in topological order of the parent DAG.
type Fragment struct {
	Ops []*Op
	// ExtIn are the relations the job must read from the DFS: outputs of
	// operators outside the fragment, plus OpInput sources inside it.
	ExtIn []*Op
	// ExtOut are the fragment operators whose outputs are consumed outside
	// the fragment (or are workflow sinks) and must be written to the DFS.
	ExtOut []*Op

	dag     *DAG
	schemas map[*Op]relation.Schema
}

// NewFragment builds a fragment from a set of operators belonging to dag.
// It computes the external inputs/outputs from the DAG's edges.
func NewFragment(dag *DAG, ops []*Op) (*Fragment, error) {
	member := make(map[*Op]bool, len(ops))
	for _, op := range ops {
		member[op] = true
	}
	order, err := dag.TopoSort()
	if err != nil {
		return nil, err
	}
	f := &Fragment{dag: dag}
	inDAG := make(map[*Op]bool, len(order))
	for _, op := range order {
		inDAG[op] = true
		if member[op] {
			f.Ops = append(f.Ops, op)
		}
	}
	if len(f.Ops) != len(ops) {
		return nil, fmt.Errorf("ir: fragment contains operators outside the DAG")
	}
	cons := dag.Consumers()
	seenIn := make(map[*Op]bool)
	for _, op := range f.Ops {
		if op.Type == OpInput {
			f.ExtIn = append(f.ExtIn, op)
			continue
		}
		for _, in := range op.Inputs {
			if !member[in] && !seenIn[in] {
				seenIn[in] = true
				f.ExtIn = append(f.ExtIn, in)
			}
		}
	}
	for _, op := range f.Ops {
		if op.Type == OpInput {
			continue
		}
		consumedOutside := len(cons[op]) == 0 // sink
		for _, c := range cons[op] {
			if !member[c] {
				consumedOutside = true
			}
		}
		if consumedOutside {
			f.ExtOut = append(f.ExtOut, op)
		}
	}
	return f, nil
}

// Schemas lazily computes the inferred output schema of every operator in
// the parent DAG — the look-ahead type information code generation uses
// (paper §4.3.4). Computed on first use and cached; partitioning-time
// fragment churn never pays for it.
func (f *Fragment) Schemas() (map[*Op]relation.Schema, error) {
	if f.schemas != nil {
		return f.schemas, nil
	}
	if f.dag == nil {
		return nil, fmt.Errorf("ir: fragment has no parent DAG")
	}
	schemas, err := f.dag.InferSchemas()
	if err != nil {
		return nil, err
	}
	f.schemas = schemas
	return schemas, nil
}

// DAG returns the parent DAG the fragment was carved from.
func (f *Fragment) DAG() *DAG { return f.dag }

// ForceOutput marks a member operator's result as an external output even
// if no operator outside the fragment consumes it. The WHILE driver uses
// this to materialize loop-carried relations and stop-condition relations
// that are otherwise internal to a body job.
func (f *Fragment) ForceOutput(op *Op) error {
	if !f.Contains(op) {
		return fmt.Errorf("ir: %s is not in the fragment", op)
	}
	for _, out := range f.ExtOut {
		if out == op {
			return nil
		}
	}
	f.ExtOut = append(f.ExtOut, op)
	return nil
}

// ConsumedOutside reports whether some operator outside the fragment reads
// op's output. External outputs that are pure workflow sinks (no consumer
// anywhere) return false — they are published for the user, not shuffled to
// another job, which is what lets engines choose a compact wire codec for
// true intra-run shuffles while sinks stay TSV.
func (f *Fragment) ConsumedOutside(op *Op) bool {
	if f.dag == nil {
		return false
	}
	for _, c := range f.dag.Consumers()[op] {
		if !f.Contains(c) {
			return true
		}
	}
	return false
}

// Contains reports membership.
func (f *Fragment) Contains(op *Op) bool {
	for _, o := range f.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// NumShuffles counts the operators that need a by-key data shuffle
// (join, aggregation, distinct, set ops). MapReduce-paradigm engines can
// execute at most one shuffle per job (paper §4.3.2).
func (f *Fragment) NumShuffles() int {
	n := 0
	for _, op := range f.Ops {
		if IsShuffleOp(op.Type) {
			n++
		}
	}
	return n
}

// IsShuffleOp reports whether the operator type requires a by-key shuffle.
func IsShuffleOp(t OpType) bool {
	switch t {
	case OpJoin, OpCrossJoin, OpAgg, OpDistinct, OpIntersect, OpDifference, OpSort:
		return true
	default:
		return false
	}
}

// While returns the fragment's WHILE operator, or nil. Partitionings treat
// WHILE as a single operator; a fragment holds at most one.
func (f *Fragment) While() *Op {
	for _, op := range f.Ops {
		if op.Type == OpWhile {
			return op
		}
	}
	return nil
}

// ComputeOps returns the fragment's non-INPUT operators.
func (f *Fragment) ComputeOps() []*Op {
	var ops []*Op
	for _, op := range f.Ops {
		if op.Type != OpInput {
			ops = append(ops, op)
		}
	}
	return ops
}

// Name derives a deterministic job name from the fragment's outputs.
func (f *Fragment) Name() string {
	names := make([]string, len(f.ExtOut))
	for i, op := range f.ExtOut {
		names[i] = op.Out
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "empty"
	}
	return strings.Join(names, "+")
}

// String renders the fragment for traces.
func (f *Fragment) String() string {
	parts := make([]string, len(f.Ops))
	for i, op := range f.Ops {
		parts[i] = fmt.Sprintf("%s:%s", op.Type, op.Out)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
