package ir

import (
	"strings"
	"testing"

	"musketeer/internal/relation"
)

func propsSchema() relation.Schema {
	return relation.NewSchema("id:int", "street:string", "town:string")
}

func pricesSchema() relation.Schema {
	return relation.NewSchema("id:int", "price:float")
}

// maxPropertyPrice builds the paper's Listing 1 workflow.
func maxPropertyPrice() *DAG {
	d := NewDAG()
	props := d.AddInput("properties", "in/properties", propsSchema())
	prices := d.AddInput("prices", "in/prices", pricesSchema())
	locs := d.Add(OpProject, "locs", Params{Columns: []string{"id", "street", "town"}}, props)
	idPrice := d.Add(OpJoin, "id_price", Params{LeftCols: []string{"id"}, RightCols: []string{"id"}}, locs, prices)
	d.Add(OpAgg, "street_price", Params{
		GroupBy: []string{"street", "town"},
		Aggs:    []AggSpec{{Func: AggMax, Col: "price", As: "max_price"}},
	}, idPrice)
	return d
}

func TestMaxPropertyPriceValidates(t *testing.T) {
	d := maxPropertyPrice()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	schemas, err := d.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	sp := d.ByOut("street_price")
	want := relation.NewSchema("street:string", "town:string", "max_price:float")
	if !schemas[sp].Equal(want) {
		t.Errorf("street_price schema = %s, want %s", schemas[sp], want)
	}
	jp := d.ByOut("id_price")
	wantJoin := relation.NewSchema("id:int", "street:string", "town:string", "price:float")
	if !schemas[jp].Equal(wantJoin) {
		t.Errorf("id_price schema = %s, want %s", schemas[jp], wantJoin)
	}
}

func TestTopoSortOrder(t *testing.T) {
	d := maxPropertyPrice()
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Op]int)
	for i, op := range order {
		pos[op] = i
	}
	for _, op := range d.Ops {
		for _, in := range op.Inputs {
			if pos[in] >= pos[op] {
				t.Errorf("%s appears before its input %s", op, in)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	d := NewDAG()
	a := d.Add(OpDistinct, "a", Params{})
	b := d.Add(OpDistinct, "b", Params{}, a)
	a.Inputs = []*Op{b}
	if _, err := d.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestForeignEdgeDetected(t *testing.T) {
	d1 := NewDAG()
	x := d1.AddInput("x", "in/x", relation.NewSchema("a:int"))
	d2 := NewDAG()
	d2.Add(OpDistinct, "y", Params{}, x)
	if _, err := d2.TopoSort(); err == nil {
		t.Error("foreign edge not detected")
	}
}

func TestDuplicateOutputRejected(t *testing.T) {
	d := NewDAG()
	d.AddInput("x", "in/x", relation.NewSchema("a:int"))
	d.AddInput("x", "in/y", relation.NewSchema("a:int"))
	if err := d.Validate(); err == nil {
		t.Error("duplicate output accepted")
	}
}

func TestSchemaErrors(t *testing.T) {
	build := func(f func(d *DAG, in *Op)) error {
		d := NewDAG()
		in := d.AddInput("t", "in/t", relation.NewSchema("a:int", "b:float"))
		f(d, in)
		return d.Validate()
	}
	cases := map[string]func(d *DAG, in *Op){
		"unknown project col": func(d *DAG, in *Op) {
			d.Add(OpProject, "p", Params{Columns: []string{"zzz"}}, in)
		},
		"unknown predicate col": func(d *DAG, in *Op) {
			d.Add(OpSelect, "s", Params{Pred: Cmp(ColRef("zzz"), CmpGt, LitOp(relation.Int(0)))}, in)
		},
		"unknown groupby col": func(d *DAG, in *Op) {
			d.Add(OpAgg, "g", Params{GroupBy: []string{"zzz"}, Aggs: []AggSpec{{Func: AggCount, As: "n"}}}, in)
		},
		"agg without aggs": func(d *DAG, in *Op) {
			d.Add(OpAgg, "g", Params{GroupBy: []string{"a"}}, in)
		},
		"agg missing as": func(d *DAG, in *Op) {
			d.Add(OpAgg, "g", Params{GroupBy: []string{"a"}, Aggs: []AggSpec{{Func: AggSum, Col: "b"}}}, in)
		},
		"sum over string": func(d *DAG, in *Op) {
			d2in := d.AddInput("t2", "in/t2", relation.NewSchema("s:string"))
			d.Add(OpAgg, "g", Params{Aggs: []AggSpec{{Func: AggSum, Col: "s", As: "x"}}}, d2in)
		},
		"bad join keys": func(d *DAG, in *Op) {
			in2 := d.AddInput("t2", "in/t2", relation.NewSchema("a:int"))
			d.Add(OpJoin, "j", Params{LeftCols: []string{"a"}, RightCols: nil}, in, in2)
		},
		"union arity mismatch": func(d *DAG, in *Op) {
			in2 := d.AddInput("t2", "in/t2", relation.NewSchema("a:int"))
			d.Add(OpUnion, "u", Params{}, in, in2)
		},
		"union kind mismatch": func(d *DAG, in *Op) {
			in2 := d.AddInput("t2", "in/t2", relation.NewSchema("a:string", "b:float"))
			d.Add(OpUnion, "u", Params{}, in, in2)
		},
		"arith unknown col": func(d *DAG, in *Op) {
			d.Add(OpArith, "ar", Params{Dst: "x", ALeft: ColRef("zzz"), ARght: LitOp(relation.Int(1)), AOp: ArithAdd}, in)
		},
		"arith no dst": func(d *DAG, in *Op) {
			d.Add(OpArith, "ar", Params{ALeft: ColRef("a"), ARght: LitOp(relation.Int(1)), AOp: ArithAdd}, in)
		},
		"unregistered udf": func(d *DAG, in *Op) {
			d.Add(OpUDF, "u", Params{UDFName: "no-such-udf"}, in)
		},
		"while without body": func(d *DAG, in *Op) {
			d.Add(OpWhile, "w", Params{MaxIter: 3}, in)
		},
	}
	for name, f := range cases {
		if err := build(f); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestArithSchemas(t *testing.T) {
	d := NewDAG()
	in := d.AddInput("t", "in/t", relation.NewSchema("a:int", "b:int"))
	inPlace := d.Add(OpArith, "p1", Params{Dst: "a", ALeft: ColRef("a"), ARght: LitOp(relation.Int(1)), AOp: ArithAdd}, in)
	newInt := d.Add(OpArith, "p2", Params{Dst: "c", ALeft: ColRef("a"), ARght: ColRef("b"), AOp: ArithMul}, inPlace)
	div := d.Add(OpArith, "p3", Params{Dst: "a", ALeft: ColRef("a"), ARght: LitOp(relation.Int(2)), AOp: ArithDiv}, newInt)
	schemas, err := d.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	if !schemas[inPlace].Equal(relation.NewSchema("a:int", "b:int")) {
		t.Errorf("in-place schema = %s", schemas[inPlace])
	}
	if !schemas[newInt].Equal(relation.NewSchema("a:int", "b:int", "c:int")) {
		t.Errorf("new-col schema = %s", schemas[newInt])
	}
	if schemas[div].Cols[0].Kind != relation.KindFloat {
		t.Errorf("div in-place should become float: %s", schemas[div])
	}
}

func buildPageRankWhile(t *testing.T) *DAG {
	t.Helper()
	d := NewDAG()
	edges := d.AddInput("edges", "in/edges", relation.NewSchema("src:int", "dst:int"))
	ranks := d.AddInput("ranks", "in/ranks", relation.NewSchema("vertex:int", "rank:float"))

	body := NewDAG()
	bEdges := body.AddInput("edges", "in/edges", relation.NewSchema("src:int", "dst:int"))
	bRanks := body.AddInput("ranks", "", relation.Schema{})
	_ = bRanks
	j := body.Add(OpJoin, "contrib", Params{LeftCols: []string{"vertex"}, RightCols: []string{"src"}}, body.ByOut("ranks"), bEdges)
	g := body.Add(OpAgg, "gathered", Params{
		GroupBy: []string{"dst"},
		Aggs:    []AggSpec{{Func: AggSum, Col: "rank", As: "rank"}},
	}, j)
	m := body.Add(OpArith, "damped", Params{Dst: "rank", ALeft: ColRef("rank"), ARght: LitOp(relation.Float(0.85)), AOp: ArithMul}, g)
	a := body.Add(OpArith, "applied", Params{Dst: "rank", ALeft: ColRef("rank"), ARght: LitOp(relation.Float(0.15)), AOp: ArithAdd}, m)
	body.Add(OpProject, "new_ranks", Params{Columns: []string{"dst", "rank"}, As: []string{"vertex", "rank"}}, a)

	d.Add(OpWhile, "final_ranks", Params{
		Body:    body,
		MaxIter: 5,
		Carried: map[string]string{"ranks": "new_ranks"},
	}, ranks, edges)
	if err := d.Validate(); err != nil {
		t.Fatalf("pagerank DAG invalid: %v", err)
	}
	return d
}

func TestWhileSchemaInference(t *testing.T) {
	d := buildPageRankWhile(t)
	schemas, err := d.InferSchemas()
	if err != nil {
		t.Fatal(err)
	}
	w := d.ByOut("final_ranks")
	want := relation.NewSchema("vertex:int", "rank:float")
	if !schemas[w].Equal(want) {
		t.Errorf("while schema = %s, want %s", schemas[w], want)
	}
	if w.ResultRelation() != "new_ranks" {
		t.Errorf("result relation = %q", w.ResultRelation())
	}
}

func TestWhileCarriedIncompatible(t *testing.T) {
	d := NewDAG()
	in := d.AddInput("x", "in/x", relation.NewSchema("a:int"))
	body := NewDAG()
	body.AddInput("x", "", relation.Schema{})
	body.Add(OpProject, "y", Params{Columns: []string{"a"}}, body.ByOut("x"))
	bad := NewDAG()
	bIn := bad.AddInput("x", "", relation.Schema{})
	bad.Add(OpArith, "y", Params{Dst: "b", ALeft: ColRef("a"), ARght: LitOp(relation.Int(1)), AOp: ArithAdd}, bIn)
	d.Add(OpWhile, "w", Params{Body: bad, MaxIter: 2, Carried: map[string]string{"x": "y"}}, in)
	if err := d.Validate(); err == nil {
		t.Error("incompatible carried schema accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := buildPageRankWhile(t)
	c := d.Clone()
	if c.Hash() != d.Hash() {
		t.Error("clone hash differs")
	}
	// Mutating the clone must not affect the original.
	c.Ops[0].Out = "renamed"
	if d.Ops[0].Out == "renamed" {
		t.Error("clone shares op storage")
	}
	cw := c.ByOut("final_ranks")
	dw := d.ByOut("final_ranks")
	cw.Params.Body.Ops[0].Out = "renamed_body"
	if dw.Params.Body.Ops[0].Out == "renamed_body" {
		t.Error("clone shares body storage")
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	a, b := maxPropertyPrice(), maxPropertyPrice()
	if a.Hash() != b.Hash() {
		t.Error("identical DAGs hash differently")
	}
	b.ByOut("street_price").Params.GroupBy = []string{"street"}
	if a.Hash() == b.Hash() {
		t.Error("parameter change did not change hash")
	}
}

func TestNumOpsCountsBodies(t *testing.T) {
	d := buildPageRankWhile(t)
	// outer: edges, ranks, while = 3; body: edges, ranks, join, agg,
	// 2 arith, rename-project = 7.
	if got := d.NumOps(); got != 10 {
		t.Errorf("NumOps = %d, want 10", got)
	}
}

func TestOpIDsUniqueAcrossBodies(t *testing.T) {
	d := buildPageRankWhile(t)
	seen := map[int]bool{}
	var walk func(dag *DAG)
	walk = func(dag *DAG) {
		for _, op := range dag.Ops {
			if seen[op.ID] {
				t.Errorf("duplicate op ID %d (%s)", op.ID, op)
			}
			seen[op.ID] = true
			if op.Params.Body != nil {
				walk(op.Params.Body)
			}
		}
	}
	walk(d)
	// Determinism: building the same workflow again yields the same IDs.
	d2 := buildPageRankWhile(t)
	for i := range d.Ops {
		if d.Ops[i].ID != d2.Ops[i].ID {
			t.Errorf("op %d ID changed across builds: %d vs %d", i, d.Ops[i].ID, d2.Ops[i].ID)
		}
	}
}

func TestSinks(t *testing.T) {
	d := maxPropertyPrice()
	sinks := d.Sinks()
	if len(sinks) != 1 || sinks[0].Out != "street_price" {
		t.Errorf("sinks = %v", sinks)
	}
}

func TestPredString(t *testing.T) {
	p := And(
		Cmp(ColRef("region"), CmpEq, LitOp(relation.Str("EU"))),
		Or(
			Cmp(ColRef("value"), CmpGt, LitOp(relation.Float(100))),
			Cmp(ColRef("vip"), CmpEq, LitOp(relation.Int(1))),
		),
	)
	s := p.String()
	for _, want := range []string{"region", "AND", "OR", `"EU"`, "100", ">"} {
		if !strings.Contains(s, want) {
			t.Errorf("predicate string %q missing %q", s, want)
		}
	}
	cols := p.Columns(nil)
	if len(cols) != 3 {
		t.Errorf("Columns = %v", cols)
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{CmpEq, 0, true}, {CmpEq, 1, false},
		{CmpNe, 0, false}, {CmpNe, -1, true},
		{CmpLt, -1, true}, {CmpLt, 0, false},
		{CmpLe, 0, true}, {CmpLe, 1, false},
		{CmpGt, 1, true}, {CmpGt, 0, false},
		{CmpGe, 0, true}, {CmpGe, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.cmp); got != c.want {
			t.Errorf("%s.Eval(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestSelectiveGenerative(t *testing.T) {
	d := maxPropertyPrice()
	if !d.ByOut("locs").IsSelective() {
		t.Error("PROJECT should be selective")
	}
	if !d.ByOut("id_price").IsGenerative() {
		t.Error("JOIN should be generative")
	}
	if d.ByOut("id_price").IsSelective() {
		t.Error("JOIN must not be selective")
	}
}

func TestAssociativity(t *testing.T) {
	for _, f := range []AggFunc{AggSum, AggCount, AggMin, AggMax} {
		if !f.Associative() {
			t.Errorf("%s should be associative", f)
		}
	}
	if AggAvg.Associative() {
		t.Error("AVG should be non-associative (as a single high-level operator)")
	}
}

func TestInputNames(t *testing.T) {
	d := maxPropertyPrice()
	got := d.InputNames()
	if len(got) != 2 || got[0] != "in/prices" || got[1] != "in/properties" {
		t.Errorf("InputNames = %v", got)
	}
}

func TestDAGStringContainsOps(t *testing.T) {
	s := maxPropertyPrice().String()
	for _, want := range []string{"INPUT", "PROJECT", "JOIN", "AGG", "street_price"} {
		if !strings.Contains(s, want) {
			t.Errorf("DAG string missing %q:\n%s", want, s)
		}
	}
}

func TestDOTRendering(t *testing.T) {
	d := buildPageRankWhile(t)
	dot := d.DOT("pagerank")
	for _, want := range []string{"digraph", "cluster_final_ranks", "->", "WHILE", "cylinder"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Node IDs must be unique: every declared node appears exactly once.
	decls := map[string]int{}
	for _, line := range strings.Split(dot, "\n") {
		line = strings.TrimSpace(line)
		if strings.Contains(line, "[label=") {
			id := strings.SplitN(line, " ", 2)[0]
			decls[id]++
		}
	}
	for id, n := range decls {
		if n > 1 {
			t.Errorf("node %s declared %d times", id, n)
		}
	}
}
