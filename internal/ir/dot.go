package ir

import (
	"fmt"
	"strings"
)

// DOT renders the DAG in Graphviz dot syntax for visual inspection
// (`cmd/musketeer -dot | dot -Tsvg`). WHILE bodies render as subgraph
// clusters; shuffle operators are shaded since they drive the MapReduce
// job boundaries.
func (d *DAG) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	d.dotBody(&b, "", "  ")
	b.WriteString("}\n")
	return b.String()
}

func (d *DAG) dotBody(b *strings.Builder, idPrefix, indent string) {
	for _, op := range d.Ops {
		attrs := ""
		switch {
		case op.Type == OpInput:
			attrs = ", shape=cylinder"
		case op.Type == OpWhile:
			attrs = ", style=bold"
		case IsShuffleOp(op.Type):
			attrs = ", style=filled, fillcolor=lightgray"
		}
		fmt.Fprintf(b, "%s%q [label=\"%s\\n%s\"%s];\n",
			indent, idPrefix+nodeID(op), op.Type, op.Out, attrs)
		for _, in := range op.Inputs {
			fmt.Fprintf(b, "%s%q -> %q;\n", indent, idPrefix+nodeID(in), idPrefix+nodeID(op))
		}
		if op.Params.Body != nil {
			fmt.Fprintf(b, "%ssubgraph \"cluster_%s\" {\n%s  label=\"%s body (max %d iters)\";\n",
				indent, op.Out, indent, op.Out, op.Params.MaxIter)
			op.Params.Body.dotBody(b, op.Out+"/", indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
			// Tie the loop operator to its body entry points.
			for _, bop := range op.Params.Body.Ops {
				if bop.Type == OpInput {
					fmt.Fprintf(b, "%s%q -> %q [style=dashed];\n",
						indent, idPrefix+nodeID(op), op.Out+"/"+nodeID(bop))
				}
			}
		}
	}
}

func nodeID(op *Op) string {
	return fmt.Sprintf("op%d", op.ID)
}
