package dfs

import (
	"fmt"
	"strings"
)

// TenantRoot is the storage prefix reserved for tenant namespaces: tenant t
// lives under TenantRoot+"/"+t. Deployment-level paths never start with it,
// so tenant views and the root view cannot alias.
const TenantRoot = "__tenant"

// ValidateName checks a tenant (or other namespace-segment) name: it must
// be a single non-empty path segment of [a-z A-Z 0-9 _ -] and at most 64
// bytes. Storage keys are flat strings — "../" has no traversal semantics
// here — but rejecting separators and dots up front keeps every tenant's
// prefix disjoint by construction and the names safe to embed in URLs,
// metrics labels, and run digests.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("dfs: empty namespace name")
	}
	if len(name) > 64 {
		return fmt.Errorf("dfs: namespace name longer than 64 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("dfs: namespace name %q: invalid character %q", name, r)
		}
	}
	return nil
}

// ValidatePath checks a user-supplied relation path: non-empty, relative
// (no leading or trailing "/"), no empty, ".", or ".." segments, and no
// segment starting with "__" (the session/tenant machinery's reserved
// prefix). Keys are flat so none of these would traverse anywhere, but a
// path that *looks* like it escapes its namespace is a client bug worth a
// 400 rather than a silently-distinct key.
func ValidatePath(path string) error {
	if path == "" {
		return fmt.Errorf("dfs: empty path")
	}
	if strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		return fmt.Errorf("dfs: path %q must be relative", path)
	}
	for _, seg := range strings.Split(path, "/") {
		switch {
		case seg == "", seg == ".", seg == "..":
			return fmt.Errorf("dfs: path %q has an empty or dot segment", path)
		case strings.HasPrefix(seg, "__"):
			return fmt.Errorf("dfs: path %q uses the reserved %q prefix", path, "__")
		}
	}
	return nil
}

// TenantView returns the view scoped to the named tenant's namespace,
// validating the name first.
func (d *DFS) TenantView(name string) (*DFS, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	return d.Namespace(TenantRoot + "/" + name), nil
}
