package dfs

import (
	"testing"

	"musketeer/internal/relation"
)

func bigRel(rows int) *relation.Relation {
	r := relation.New("big", relation.NewSchema("id:int", "payload:string"))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Row{
			relation.Int(int64(i)),
			relation.Str("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		})
	}
	return r
}

func smallBlockFS() *DFS {
	return NewWithConfig(Config{BlockSize: 1 << 10, Replication: 3, Nodes: 5})
}

func TestMultiBlockRoundTrip(t *testing.T) {
	d := smallBlockFS()
	want := bigRel(500)
	if err := d.WriteRelation("big", want); err != nil {
		t.Fatal(err)
	}
	n, err := d.BlockCount("big")
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("blocks = %d, want multi-block layout", n)
	}
	got, err := d.ReadRelation("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("multi-block round trip changed rows")
	}
}

func TestBlockPlacementSpreadsReplicas(t *testing.T) {
	d := smallBlockFS()
	if err := d.WriteRelation("big", bigRel(500)); err != nil {
		t.Fatal(err)
	}
	locs, err := d.BlockLocations("big")
	if err != nil {
		t.Fatal(err)
	}
	for bi, nodes := range locs {
		if len(nodes) != 3 {
			t.Fatalf("block %d has %d replicas", bi, len(nodes))
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if seen[n] {
				t.Errorf("block %d has two replicas on node %d", bi, n)
			}
			seen[n] = true
		}
	}
}

func TestCorruptReplicaMasked(t *testing.T) {
	d := smallBlockFS()
	want := bigRel(500)
	if err := d.WriteRelation("big", want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary replica of every block: checksums must catch it
	// and reads fall back to the healthy replicas.
	n, _ := d.BlockCount("big")
	for bi := 0; bi < n; bi++ {
		if err := d.CorruptReplica("big", bi, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.ReadRelation("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("corruption leaked into the read path")
	}
}

func TestAllReplicasCorruptFails(t *testing.T) {
	d := smallBlockFS()
	if err := d.WriteRelation("big", bigRel(100)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := d.CorruptReplica("big", 0, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ReadRelation("big"); err == nil {
		t.Error("read of fully corrupted block succeeded")
	}
}

func TestNodeFailureToleratedUpToReplication(t *testing.T) {
	d := smallBlockFS()
	want := bigRel(500)
	if err := d.WriteRelation("big", want); err != nil {
		t.Fatal(err)
	}
	// Two node failures: every block still has ≥1 replica (3 replicas over
	// 5 nodes).
	d.SetNodeDown(0, true)
	d.SetNodeDown(1, true)
	got, err := d.ReadRelation("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("node failure changed data")
	}
	// A third failure can make some block lose all replicas.
	d.SetNodeDown(2, true)
	if _, err := d.ReadRelation("big"); err == nil {
		t.Log("all blocks survived 3/5 nodes down (placement-dependent)")
	}
	// Recovery restores readability.
	d.SetNodeDown(0, false)
	d.SetNodeDown(1, false)
	d.SetNodeDown(2, false)
	if _, err := d.ReadRelation("big"); err != nil {
		t.Errorf("recovered cluster cannot read: %v", err)
	}
}

func TestCorruptReplicaErrors(t *testing.T) {
	d := smallBlockFS()
	if err := d.CorruptReplica("nope", 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	d.WriteRelation("x", bigRel(10))
	if err := d.CorruptReplica("x", 99, 0); err == nil {
		t.Error("missing block accepted")
	}
	if err := d.CorruptReplica("x", 0, 99); err == nil {
		t.Error("missing replica accepted")
	}
	if _, err := d.BlockCount("nope"); err == nil {
		t.Error("BlockCount on missing file succeeded")
	}
	if _, err := d.BlockLocations("nope"); err == nil {
		t.Error("BlockLocations on missing file succeeded")
	}
}

func TestEmptyRelationStillStored(t *testing.T) {
	d := smallBlockFS()
	empty := relation.New("e", relation.NewSchema("a:int"))
	if err := d.WriteRelation("e", empty); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRelation("e")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestReplicationClampedToNodes(t *testing.T) {
	d := NewWithConfig(Config{BlockSize: 512, Replication: 10, Nodes: 4})
	if err := d.WriteRelation("x", bigRel(50)); err != nil {
		t.Fatal(err)
	}
	locs, err := d.BlockLocations("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs[0]) != 4 {
		t.Errorf("replicas = %d, want clamped to 4 nodes", len(locs[0]))
	}
}
