// Package dfs implements the shared storage layer that stands in for HDFS.
//
// Every Musketeer workflow (like the paper's) reads its inputs from the
// shared filesystem and writes its final outputs back; restricted back-ends
// such as Hadoop MapReduce also materialize intermediates here between jobs.
// Files store real TSV-encoded relation bytes — the encode/decode path is
// exercised on every job boundary — plus the logical size used by the cost
// model, and the filesystem keeps byte counters so tests can assert how much
// (simulated) I/O a plan performed.
package dfs

import (
	"fmt"
	"sort"
	"sync"

	"musketeer/internal/relation"
)

// Stat describes one stored file.
type Stat struct {
	Path          string
	PhysicalBytes int64
	LogicalBytes  int64
	Rows          int
}

// EffectiveBytes returns the logical size when set, else the physical size.
func (s Stat) EffectiveBytes() int64 {
	if s.LogicalBytes > 0 {
		return s.LogicalBytes
	}
	return s.PhysicalBytes
}

// DFS is an in-memory distributed-filesystem simulation. It is safe for
// concurrent use; engines running parallel tasks read blocks concurrently.
type DFS struct {
	mu    sync.RWMutex
	files map[string]*file
	cfg   Config
	// down marks failed datanodes; reads route around them.
	down map[int]bool

	// Counters accumulate effective (logical) bytes moved, mirroring the
	// PULL/PUSH accounting of the paper's cost model.
	bytesRead    int64
	bytesWritten int64
}

type file struct {
	blocks  []block
	size    int64 // encoded byte length
	logical int64
	rows    int
}

// New returns an empty filesystem with the default block configuration.
func New() *DFS {
	return NewWithConfig(DefaultConfig())
}

// NewWithConfig returns an empty filesystem with explicit block size,
// replication factor and datanode count.
func NewWithConfig(cfg Config) *DFS {
	return &DFS{files: make(map[string]*file), cfg: cfg.normalized(), down: map[int]bool{}}
}

// WriteRelation encodes rel and stores it at path, replacing any previous
// file. The relation's LogicalBytes travels with the file.
func (d *DFS) WriteRelation(path string, rel *relation.Relation) error {
	if path == "" {
		return fmt.Errorf("dfs: empty path")
	}
	data := rel.EncodeBytes()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = &file{
		blocks:  d.split(data),
		size:    int64(len(data)),
		logical: rel.LogicalBytes,
		rows:    rel.NumRows(),
	}
	eff := rel.LogicalBytes
	if eff <= 0 {
		eff = int64(len(data))
	}
	d.bytesWritten += eff
	return nil
}

// ReadRelation reassembles the file at path from healthy block replicas
// (verifying checksums, skipping failed datanodes) and decodes it into a
// relation named after the path.
func (d *DFS) ReadRelation(path string) (*relation.Relation, error) {
	d.mu.Lock()
	f, ok := d.files[path]
	var data []byte
	var err error
	if ok {
		eff := f.logical
		if eff <= 0 {
			eff = f.size
		}
		d.bytesRead += eff
		data, err = d.assemble(path, f.blocks)
	}
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	if err != nil {
		return nil, err
	}
	rel, err := relation.DecodeBytes(path, data)
	if err != nil {
		return nil, fmt.Errorf("dfs: decode %q: %w", path, err)
	}
	return rel, nil
}

// Stat returns metadata for path.
func (d *DFS) Stat(path string) (Stat, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[path]
	if !ok {
		return Stat{}, fmt.Errorf("dfs: no such file %q", path)
	}
	return Stat{Path: path, PhysicalBytes: f.size, LogicalBytes: f.logical, Rows: f.rows}, nil
}

// Exists reports whether path is stored.
func (d *DFS) Exists(path string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[path]
	return ok
}

// Delete removes path; deleting a missing file is an error so job cleanup
// bugs surface in tests.
func (d *DFS) Delete(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	delete(d.files, path)
	return nil
}

// Rename moves a file without any I/O cost (metadata-only, as in HDFS).
func (d *DFS) Rename(from, to string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[from]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", from)
	}
	delete(d.files, from)
	d.files[to] = f
	return nil
}

// Copy duplicates a file's metadata and bytes under a new path without I/O
// accounting (the loop driver uses it to seed iteration state).
func (d *DFS) Copy(from, to string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[from]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", from)
	}
	d.files[to] = &file{blocks: f.blocks, size: f.size, logical: f.logical, rows: f.rows}
	return nil
}

// List returns all stored paths in sorted order.
func (d *DFS) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	paths := make([]string, 0, len(d.files))
	for p := range d.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// BytesRead returns cumulative effective bytes read since creation.
func (d *DFS) BytesRead() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytesRead
}

// BytesWritten returns cumulative effective bytes written since creation.
func (d *DFS) BytesWritten() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytesWritten
}

// ResetCounters zeroes the I/O counters (between benchmark phases).
func (d *DFS) ResetCounters() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bytesRead, d.bytesWritten = 0, 0
}
