// Package dfs implements the shared storage layer that stands in for HDFS.
//
// Every Musketeer workflow (like the paper's) reads its inputs from the
// shared filesystem and writes its final outputs back; restricted back-ends
// such as Hadoop MapReduce also materialize intermediates here between jobs.
// Files store real TSV-encoded relation bytes — the encode/decode path is
// exercised on every job boundary — plus the logical size used by the cost
// model, and the filesystem keeps byte counters so tests can assert how much
// (simulated) I/O a plan performed.
//
// A DFS value is a view onto shared storage. The root view (returned by New)
// sees every file; Namespace derives a scoped view whose paths resolve under
// a prefix, which is how concurrent workflow executions get isolated
// namespaces for their intermediates, outputs, and loop temporaries while
// sharing one physical filesystem (and its datanodes, block placement, and
// I/O accounting).
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"musketeer/internal/relation"
)

// Stat describes one stored file.
type Stat struct {
	Path          string
	PhysicalBytes int64
	LogicalBytes  int64
	Rows          int
	// Codec is the wire format the file was encoded with.
	Codec relation.Codec
	// WireBytes is the I/O volume the file accounts for: the effective
	// (logical-scaled) size under its codec. For TSV files this equals
	// EffectiveBytes; for columnar files the logical volume is scaled down
	// by the codec's encoded-vs-text ratio, so shuffles over the compact
	// format genuinely cost less in the simulation.
	WireBytes int64
}

// EffectiveBytes returns the logical size when set, else the physical size.
func (s Stat) EffectiveBytes() int64 {
	if s.LogicalBytes > 0 {
		return s.LogicalBytes
	}
	return s.PhysicalBytes
}

// DFS is a view onto an in-memory distributed-filesystem simulation. Views
// are safe for concurrent use; engines running parallel tasks read blocks
// concurrently, and concurrent workflow executions operate through separate
// namespaced views over the same storage.
type DFS struct {
	st *state
	// prefix scopes every path this view resolves ("" for the root view;
	// otherwise ends in "/").
	prefix string
}

// state is the storage shared by every view derived from one New call.
type state struct {
	mu    sync.RWMutex
	files map[string]*file
	cfg   Config
	// down marks failed datanodes; reads route around them.
	down map[int]bool

	// Counters accumulate effective (logical) bytes moved, mirroring the
	// PULL/PUSH accounting of the paper's cost model. They are global
	// across views: a namespaced job's I/O is still cluster I/O.
	bytesRead    int64
	bytesWritten int64
}

type file struct {
	blocks  []block
	size    int64 // encoded byte length
	logical int64
	rows    int
	codec   relation.Codec
	wire    int64 // accounted I/O volume per read/write (see Stat.WireBytes)
}

// New returns an empty filesystem with the default block configuration.
func New() *DFS {
	return NewWithConfig(DefaultConfig())
}

// NewWithConfig returns an empty filesystem with explicit block size,
// replication factor and datanode count.
func NewWithConfig(cfg Config) *DFS {
	return &DFS{st: &state{files: make(map[string]*file), cfg: cfg.normalized(), down: map[int]bool{}}}
}

// Namespace returns a view scoped under prefix: every path the view reads
// or writes resolves to prefix+"/"+path in the underlying storage. Views
// share datanodes, block configuration and I/O counters with their parent;
// nested calls compose prefixes. An empty prefix returns the receiver.
func (d *DFS) Namespace(prefix string) *DFS {
	prefix = strings.Trim(prefix, "/")
	if prefix == "" {
		return d
	}
	return &DFS{st: d.st, prefix: d.prefix + prefix + "/"}
}

// Prefix returns the view's path prefix ("" for the root view).
func (d *DFS) Prefix() string { return strings.TrimSuffix(d.prefix, "/") }

// resolve maps a view-relative path to its storage key.
func (d *DFS) resolve(path string) string { return d.prefix + path }

// WriteRelation encodes rel as TSV and stores it at path, replacing any
// previous file. The relation's LogicalBytes travels with the file.
func (d *DFS) WriteRelation(path string, rel *relation.Relation) error {
	_, err := d.WriteRelationCodec(path, rel, relation.CodecTSV)
	return err
}

// WriteRelationCodec encodes rel with the requested wire codec and stores
// it at path. The write is charged at the file's wire volume: TSV files
// account their effective (logical-or-encoded) size exactly as before;
// columnar files scale the effective size by the codec's encoded-vs-text
// byte ratio, so intra-run shuffles over the compact format move fewer
// simulated bytes.
func (d *DFS) WriteRelationCodec(path string, rel *relation.Relation, codec relation.Codec) (Stat, error) {
	if path == "" {
		return Stat{}, fmt.Errorf("dfs: empty path")
	}
	data := rel.EncodeCodec(codec, relation.CodecOptions{})
	eff := rel.LogicalBytes
	if eff <= 0 {
		eff = int64(len(data))
	}
	wire := eff
	if codec == relation.CodecColumnar {
		// eff falls back to the encoded size above, which for columnar is
		// already the compact wire size; a set logical size is scaled by
		// the ratio of columnar bytes to the text rendering it replaces.
		if phys := rel.PhysicalBytes(); rel.LogicalBytes > 0 && phys > 0 {
			wire = int64(float64(rel.LogicalBytes) * float64(len(data)) / float64(phys))
		}
	}
	st := Stat{
		Path:          path,
		PhysicalBytes: int64(len(data)),
		LogicalBytes:  rel.LogicalBytes,
		Rows:          rel.NumRows(),
		Codec:         codec,
		WireBytes:     wire,
	}
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	d.st.files[d.resolve(path)] = &file{
		blocks:  d.split(data),
		size:    int64(len(data)),
		logical: rel.LogicalBytes,
		rows:    rel.NumRows(),
		codec:   codec,
		wire:    wire,
	}
	d.st.bytesWritten += wire
	return st, nil
}

// ReadRelation reassembles the file at path from healthy block replicas
// (verifying checksums, skipping failed datanodes) and decodes it into a
// relation named after the (view-relative) path.
func (d *DFS) ReadRelation(path string) (*relation.Relation, error) {
	rel, _, err := d.ReadRelationStat(path)
	return rel, err
}

// ReadRelationStat is ReadRelation plus the file's metadata, letting
// callers account the read at its codec-aware wire volume.
func (d *DFS) ReadRelationStat(path string) (*relation.Relation, Stat, error) {
	key := d.resolve(path)
	d.st.mu.Lock()
	f, ok := d.st.files[key]
	var st Stat
	var data []byte
	var err error
	if ok {
		d.st.bytesRead += f.wire
		st = Stat{Path: path, PhysicalBytes: f.size, LogicalBytes: f.logical, Rows: f.rows, Codec: f.codec, WireBytes: f.wire}
		data, err = d.assemble(key, f.blocks)
	}
	d.st.mu.Unlock()
	if !ok {
		return nil, Stat{}, fmt.Errorf("dfs: no such file %q", key)
	}
	if err != nil {
		return nil, Stat{}, err
	}
	rel, err := relation.DecodeBytes(path, data)
	if err != nil {
		return nil, Stat{}, fmt.Errorf("dfs: decode %q: %w", key, err)
	}
	return rel, st, nil
}

// Stat returns metadata for path.
func (d *DFS) Stat(path string) (Stat, error) {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	key := d.resolve(path)
	f, ok := d.st.files[key]
	if !ok {
		return Stat{}, fmt.Errorf("dfs: no such file %q", key)
	}
	return Stat{Path: path, PhysicalBytes: f.size, LogicalBytes: f.logical, Rows: f.rows, Codec: f.codec, WireBytes: f.wire}, nil
}

// Exists reports whether path is stored.
func (d *DFS) Exists(path string) bool {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	_, ok := d.st.files[d.resolve(path)]
	return ok
}

// Delete removes path; deleting a missing file is an error so job cleanup
// bugs surface in tests.
func (d *DFS) Delete(path string) error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	key := d.resolve(path)
	if _, ok := d.st.files[key]; !ok {
		return fmt.Errorf("dfs: no such file %q", key)
	}
	delete(d.st.files, key)
	return nil
}

// Rename moves a file without any I/O cost (metadata-only, as in HDFS).
func (d *DFS) Rename(from, to string) error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	fromKey, toKey := d.resolve(from), d.resolve(to)
	f, ok := d.st.files[fromKey]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", fromKey)
	}
	delete(d.st.files, fromKey)
	d.st.files[toKey] = f
	return nil
}

// Copy duplicates a file's metadata and bytes under a new path without I/O
// accounting (sessions use it to link inputs into a namespace and the loop
// driver uses it to seed iteration state).
func (d *DFS) Copy(from, to string) error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	fromKey := d.resolve(from)
	f, ok := d.st.files[fromKey]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", fromKey)
	}
	d.st.files[d.resolve(to)] = &file{blocks: f.blocks, size: f.size, logical: f.logical, rows: f.rows, codec: f.codec, wire: f.wire}
	return nil
}

// List returns the view's stored paths in sorted order: everything for the
// root view, and only (view-relative) paths under the prefix for a
// namespaced view.
func (d *DFS) List() []string {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	paths := make([]string, 0, len(d.st.files))
	for p := range d.st.files {
		if d.prefix != "" {
			if !strings.HasPrefix(p, d.prefix) {
				continue
			}
			p = p[len(d.prefix):]
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// BytesRead returns cumulative effective bytes read since creation
// (shared across all views).
func (d *DFS) BytesRead() int64 {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	return d.st.bytesRead
}

// BytesWritten returns cumulative effective bytes written since creation
// (shared across all views).
func (d *DFS) BytesWritten() int64 {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	return d.st.bytesWritten
}

// ResetCounters zeroes the I/O counters (between benchmark phases).
func (d *DFS) ResetCounters() {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	d.st.bytesRead, d.st.bytesWritten = 0, 0
}
