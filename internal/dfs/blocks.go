package dfs

import (
	"fmt"
	"hash/crc32"
)

// Config shapes the block layer. The defaults mirror HDFS semantics at
// test-friendly sizes: files split into fixed-size blocks, each replicated
// across distinct datanodes and checksummed so corrupt replicas are
// detected on read and masked by surviving replicas.
type Config struct {
	// BlockSize is the split size in bytes (HDFS uses 64–128 MB; the
	// default here is small so multi-block behaviour shows up in tests).
	BlockSize int
	// Replication is the number of replicas per block.
	Replication int
	// Nodes is the number of simulated datanodes replicas spread over.
	Nodes int
}

// DefaultConfig is used by New.
func DefaultConfig() Config {
	return Config{BlockSize: 256 << 10, Replication: 3, Nodes: 8}
}

func (c Config) normalized() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultConfig().BlockSize
	}
	if c.Replication <= 0 {
		c.Replication = DefaultConfig().Replication
	}
	if c.Nodes <= 0 {
		c.Nodes = DefaultConfig().Nodes
	}
	if c.Replication > c.Nodes {
		c.Replication = c.Nodes
	}
	return c
}

// replica is one stored copy of a block on one datanode.
type replica struct {
	node int
	data []byte
	sum  uint32
}

// block is one file split with its replica set.
type block struct {
	replicas []replica
}

// split chops data into replicated, checksummed blocks. Placement is
// round-robin over datanodes, offset per block so replicas of consecutive
// blocks land on different nodes (as HDFS's placement spreads load).
func (d *DFS) split(data []byte) []block {
	cfg := d.st.cfg
	var blocks []block
	for off, bi := 0, 0; off < len(data) || (off == 0 && len(data) == 0); bi++ {
		end := off + cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		b := block{}
		for r := 0; r < cfg.Replication; r++ {
			node := (bi + r) % cfg.Nodes
			// One replica copy per node so corruption of one replica
			// never bleeds into another.
			cp := append([]byte(nil), chunk...)
			b.replicas = append(b.replicas, replica{node: node, data: cp, sum: crc32.ChecksumIEEE(cp)})
		}
		blocks = append(blocks, b)
		off = end
		if len(data) == 0 {
			break
		}
	}
	return blocks
}

// assemble reconstructs the file from the first healthy replica of every
// block, skipping replicas on down nodes and replicas whose checksum no
// longer matches (silent corruption). An unrecoverable block is an error.
func (d *DFS) assemble(path string, blocks []block) ([]byte, error) {
	var out []byte
	for bi, b := range blocks {
		ok := false
		for _, rep := range b.replicas {
			if d.st.down[rep.node] {
				continue
			}
			if crc32.ChecksumIEEE(rep.data) != rep.sum {
				continue // corrupt replica: masked, next one tried
			}
			out = append(out, rep.data...)
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("dfs: %s: block %d unrecoverable (all replicas down or corrupt)", path, bi)
		}
	}
	return out, nil
}

// SetNodeDown marks a datanode failed (true) or recovered (false); reads
// route around failed nodes using surviving replicas.
func (d *DFS) SetNodeDown(node int, isDown bool) {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	if d.st.down == nil {
		d.st.down = map[int]bool{}
	}
	d.st.down[node] = isDown
}

// CorruptReplica flips bytes of one replica of one block (failure
// injection for tests); the checksum then fails on read and the replica is
// masked.
func (d *DFS) CorruptReplica(path string, blockIdx, replicaIdx int) error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	key := d.resolve(path)
	f, ok := d.st.files[key]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", key)
	}
	if blockIdx < 0 || blockIdx >= len(f.blocks) {
		return fmt.Errorf("dfs: %s: no block %d", path, blockIdx)
	}
	b := &f.blocks[blockIdx]
	if replicaIdx < 0 || replicaIdx >= len(b.replicas) {
		return fmt.Errorf("dfs: %s: block %d has no replica %d", path, blockIdx, replicaIdx)
	}
	data := b.replicas[replicaIdx].data
	for i := range data {
		data[i] ^= 0xff
	}
	return nil
}

// BlockCount returns how many blocks a file occupies.
func (d *DFS) BlockCount(path string) (int, error) {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	key := d.resolve(path)
	f, ok := d.st.files[key]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", key)
	}
	return len(f.blocks), nil
}

// BlockLocations returns the datanodes holding each block's replicas.
func (d *DFS) BlockLocations(path string) ([][]int, error) {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	key := d.resolve(path)
	f, ok := d.st.files[key]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", key)
	}
	locs := make([][]int, len(f.blocks))
	for i, b := range f.blocks {
		for _, rep := range b.replicas {
			locs[i] = append(locs[i], rep.node)
		}
	}
	return locs, nil
}
