package dfs

import (
	"reflect"
	"testing"

	"musketeer/internal/relation"
)

func rel2(t *testing.T, name string, vals ...int64) *relation.Relation {
	t.Helper()
	r := relation.New(name, relation.NewSchema("v:int"))
	for _, v := range vals {
		r.MustAppend(relation.Row{relation.Int(v)})
	}
	return r
}

func TestNamespaceIsolation(t *testing.T) {
	root := New()
	a := root.Namespace("__run/1")
	b := root.Namespace("__run/2")

	if err := a.WriteRelation("out", rel2(t, "out", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteRelation("out", rel2(t, "out", 2)); err != nil {
		t.Fatal(err)
	}
	ra, err := a.ReadRelation("out")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ReadRelation("out")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Rows[0][0].I != 1 || rb.Rows[0][0].I != 2 {
		t.Errorf("views clobbered each other: a=%v b=%v", ra.Rows, rb.Rows)
	}
	// The root view addresses both via full paths.
	if !root.Exists("__run/1/out") || !root.Exists("__run/2/out") {
		t.Errorf("root view missing namespaced files: %v", root.List())
	}
	// The namespaced views do not see each other or the root's files.
	if a.Exists("__run/2/out") {
		// a resolves that to __run/1/__run/2/out, which must not exist
		t.Error("namespace prefixes do not compose")
	}
	if err := root.WriteRelation("plain", rel2(t, "plain", 3)); err != nil {
		t.Fatal(err)
	}
	if a.Exists("plain") {
		t.Error("namespaced view sees root files")
	}
}

func TestNamespaceListScoped(t *testing.T) {
	root := New()
	ns := root.Namespace("sess")
	for _, p := range []string{"x", "dir/y"} {
		if err := ns.WriteRelation(p, rel2(t, p, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.WriteRelation("top", rel2(t, "top", 1)); err != nil {
		t.Fatal(err)
	}
	if got, want := ns.List(), []string{"dir/y", "x"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ns.List() = %v, want %v", got, want)
	}
	if got, want := root.List(), []string{"sess/dir/y", "sess/x", "top"}; !reflect.DeepEqual(got, want) {
		t.Errorf("root.List() = %v, want %v", got, want)
	}
}

func TestNamespaceNesting(t *testing.T) {
	root := New()
	loop := root.Namespace("__run/7").Namespace("__loop/ranks")
	if err := loop.WriteRelation("state", rel2(t, "state", 9)); err != nil {
		t.Fatal(err)
	}
	if !root.Exists("__run/7/__loop/ranks/state") {
		t.Errorf("nested namespace resolved wrong: %v", root.List())
	}
	if got := loop.Prefix(); got != "__run/7/__loop/ranks" {
		t.Errorf("Prefix() = %q", got)
	}
	if root.Namespace("") != root {
		t.Error("empty namespace should return the receiver")
	}
}

func TestNamespaceSharesCountersAndNodes(t *testing.T) {
	root := New()
	ns := root.Namespace("n")
	if err := ns.WriteRelation("f", rel2(t, "f", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.ReadRelation("f"); err != nil {
		t.Fatal(err)
	}
	if root.BytesWritten() == 0 || root.BytesRead() == 0 {
		t.Errorf("I/O counters not shared: written=%d read=%d", root.BytesWritten(), root.BytesRead())
	}
	// Cross-view copy via the root addresses namespaced files by full path.
	if err := root.Copy("n/f", "published"); err != nil {
		t.Fatal(err)
	}
	got, err := root.ReadRelation("published")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("published rows = %d", got.NumRows())
	}
}
