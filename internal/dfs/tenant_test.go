package dfs

import (
	"strings"
	"testing"

	"musketeer/internal/relation"
)

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "tenant-1", "Team_A", "x9", strings.Repeat("a", 64)} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "a\n", "../x", "a.b", strings.Repeat("a", 65), "ü"} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", bad)
		}
	}
}

func TestValidatePath(t *testing.T) {
	for _, ok := range []string{"in/props", "a", "a/b/c", "out-1/x_y"} {
		if err := ValidatePath(ok); err != nil {
			t.Errorf("ValidatePath(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "/abs", "trail/", "a//b", "a/./b", "a/../b", "__run/1", "x/__tenant/y"} {
		if err := ValidatePath(bad); err == nil {
			t.Errorf("ValidatePath(%q) = nil, want error", bad)
		}
	}
}

func TestTenantViewsDisjoint(t *testing.T) {
	root := New()
	a, err := root.TenantView("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.TenantView("beta")
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.New("r", relation.NewSchema("id:int"))
	rel.MustAppend(relation.Row{relation.Int(1)})
	if err := a.WriteRelation("in/r", rel); err != nil {
		t.Fatal(err)
	}
	if b.Exists("in/r") {
		t.Error("tenant beta sees tenant alpha's file")
	}
	if _, err := b.ReadRelation("in/r"); err == nil {
		t.Error("tenant beta read tenant alpha's file")
	}
	// A path that textually aims at alpha's file from beta's view resolves
	// to a distinct flat key, not alpha's data.
	if _, err := b.ReadRelation("../alpha/in/r"); err == nil {
		t.Error("dot-dot path crossed namespaces")
	}
	// The root view still addresses both.
	if !root.Exists(TenantRoot + "/alpha/in/r") {
		t.Error("root view lost the tenant file")
	}
	if _, err := root.TenantView("no/slashes"); err == nil {
		t.Error("TenantView accepted an invalid name")
	}
}
