package dfs

import (
	"sync"
	"testing"

	"musketeer/internal/relation"
)

func sample(logical int64) *relation.Relation {
	r := relation.New("t", relation.NewSchema("id:int", "v:float"))
	r.MustAppend(relation.Row{relation.Int(1), relation.Float(0.5)})
	r.MustAppend(relation.Row{relation.Int(2), relation.Float(1.5)})
	r.LogicalBytes = logical
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := New()
	want := sample(0)
	if err := d.WriteRelation("in/t", want); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRelation("in/t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("round trip changed rows")
	}
	if !got.Schema.Equal(want.Schema) {
		t.Error("round trip changed schema")
	}
}

func TestReadMissing(t *testing.T) {
	d := New()
	if _, err := d.ReadRelation("nope"); err == nil {
		t.Error("read of missing file succeeded")
	}
	if _, err := d.Stat("nope"); err == nil {
		t.Error("stat of missing file succeeded")
	}
	if err := d.Delete("nope"); err == nil {
		t.Error("delete of missing file succeeded")
	}
}

func TestEmptyPathRejected(t *testing.T) {
	d := New()
	if err := d.WriteRelation("", sample(0)); err == nil {
		t.Error("empty path accepted")
	}
}

func TestStatAndCounters(t *testing.T) {
	d := New()
	rel := sample(1000)
	if err := d.WriteRelation("x", rel); err != nil {
		t.Fatal(err)
	}
	st, err := d.Stat("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalBytes != 1000 || st.Rows != 2 {
		t.Errorf("stat = %+v", st)
	}
	if st.EffectiveBytes() != 1000 {
		t.Errorf("effective = %d", st.EffectiveBytes())
	}
	if d.BytesWritten() != 1000 {
		t.Errorf("written = %d, want logical 1000", d.BytesWritten())
	}
	if _, err := d.ReadRelation("x"); err != nil {
		t.Fatal(err)
	}
	if d.BytesRead() != 1000 {
		t.Errorf("read = %d", d.BytesRead())
	}
	d.ResetCounters()
	if d.BytesRead() != 0 || d.BytesWritten() != 0 {
		t.Error("counters not reset")
	}
}

func TestStatEffectiveFallsBackToPhysical(t *testing.T) {
	d := New()
	if err := d.WriteRelation("x", sample(0)); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Stat("x")
	if st.EffectiveBytes() != st.PhysicalBytes {
		t.Error("effective should equal physical when logical unset")
	}
}

func TestListSortedAndDelete(t *testing.T) {
	d := New()
	for _, p := range []string{"b", "a", "c"} {
		if err := d.WriteRelation(p, sample(0)); err != nil {
			t.Fatal(err)
		}
	}
	got := d.List()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("List = %v", got)
	}
	if err := d.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("b") {
		t.Error("deleted file still exists")
	}
}

func TestOverwriteReplaces(t *testing.T) {
	d := New()
	d.WriteRelation("x", sample(0))
	r2 := relation.New("t", relation.NewSchema("id:int", "v:float"))
	r2.MustAppend(relation.Row{relation.Int(9), relation.Float(9)})
	if err := d.WriteRelation("x", r2); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadRelation("x")
	if got.NumRows() != 1 || got.Rows[0][0].I != 9 {
		t.Error("overwrite did not replace contents")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	d.WriteRelation("shared", sample(100))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := d.ReadRelation("shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if d.BytesRead() != 16*50*100 {
		t.Errorf("read counter = %d", d.BytesRead())
	}
}
