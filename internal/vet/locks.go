package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The lock-discipline pass proves per control-flow path that every
// sync.Mutex/RWMutex acquired in a function is released before the
// function returns: Lock without Unlock on an early error return is the
// exact shape that deadlocks a concurrent workflow execution only
// sometimes, which is why it must be proven, not spot-checked. Release can
// be direct, deferred, or inside a deferred closure. Read and write sides
// of an RWMutex pair independently (Lock↔Unlock, RLock↔RUnlock).

// lockCall classifies a call as acquire or release of a typed mutex.
// Returns the mutex expression, a mode suffix ("" write, "R" read).
func lockCall(info *types.Info, call *ast.CallExpr) (mu ast.Expr, mode string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, "", false, false
	}
	tv, has := info.Types[sel.X]
	if !has {
		return nil, "", false, false
	}
	if !isStdType(tv.Type, "sync", "Mutex") && !isStdType(tv.Type, "sync", "RWMutex") {
		return nil, "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return sel.X, "", true, true
	case "RLock":
		return sel.X, "R", true, true
	case "Unlock":
		return sel.X, "", false, true
	case "RUnlock":
		return sel.X, "R", false, true
	}
	return nil, "", false, false
}

func checkLocks(p *pass) {
	p.eachFuncBody(func(pkg *Package, file *File, name string, body *ast.BlockStmt) {
		p.lockScope(pkg, name, body)
	})
}

func (p *pass) lockScope(pkg *Package, fname string, body *ast.BlockStmt) {
	info := pkg.Info
	type lockFact struct {
		expr string
		pos  token.Pos
	}
	facts := map[string]lockFact{}
	apply := func(n ast.Node, live map[string]token.Pos) {
		ast.Inspect(n, func(c ast.Node) bool {
			if _, isLit := c.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := c.(*ast.CallExpr)
			if !isCall {
				return true
			}
			mu, mode, acquire, ok := lockCall(info, call)
			if !ok {
				return true
			}
			key := types.ExprString(mu) + "/" + mode
			if acquire {
				live[key] = call.Pos()
				if _, seen := facts[key]; !seen {
					facts[key] = lockFact{expr: types.ExprString(mu), pos: call.Pos()}
				}
			} else {
				delete(live, key)
			}
			return false
		})
	}
	transfer := func(n ast.Node, live map[string]token.Pos) {
		if d, isDefer := n.(*ast.DeferStmt); isDefer {
			// A deferred release (direct or inside a deferred closure)
			// discharges the lock on every path through this statement; a
			// deferred acquire is not an acquire on this path.
			ast.Inspect(d.Call, func(c ast.Node) bool {
				call, isCall := c.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if mu, mode, acquire, ok := lockCall(info, call); ok && !acquire {
					delete(live, types.ExprString(mu)+"/"+mode)
				}
				return true
			})
			return
		}
		apply(n, live)
	}

	g := buildCFG(body)
	in := g.fixpoint(transfer)
	type held struct {
		fact    lockFact
		mode    string
		exitPos token.Pos
	}
	leaks := map[string]held{}
	g.exitLive(in, transfer, func(endPos token.Pos, live map[string]token.Pos) {
		for key := range live {
			f, ok := facts[key]
			if !ok {
				continue
			}
			mode := ""
			if len(key) > 0 && key[len(key)-1] == 'R' {
				mode = "R"
			}
			if prev, ok := leaks[key]; !ok || endPos < prev.exitPos {
				leaks[key] = held{fact: f, mode: mode, exitPos: endPos}
			}
		}
	})
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := leaks[k]
		verb := "Lock"
		unlock := "Unlock"
		if l.mode == "R" {
			verb, unlock = "RLock", "RUnlock"
		}
		exitLine := p.m.Fset.Position(l.exitPos).Line
		p.reportAt(l.fact.pos, fmt.Sprintf(
			"%s.%s() in %s is still held on the path leaving at line %d: add `defer %s.%s()` or release before that return",
			l.fact.expr, verb, fname, exitLine, l.fact.expr, unlock), nil)
	}
}
