package vet

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// The determinism-taint pass proves §5.2's "deterministic cost estimation"
// invariant end to end: no function reachable from the kernel packages may
// observe a clock or a random source — not directly, not through a helper
// two modules away, not by taking time.Now as a method value. The old
// syntactic rule banned `import "time"` in two directories; this pass
// walks the typed call graph, so an aliased import or a transitive call
// chain is caught and reported with its full witness path.

// determinismRoots are the kernel packages whose functions seed the
// traversal: the operator kernels, the row/relation layer, and the cost
// model + partition search (internal/core owns cost.go and partition.go).
var determinismRoots = []string{"internal/exec", "internal/relation", "internal/core"}

// determinismExempt are the packages sanctioned to own wall-clock time:
// the flight recorder (spans record real durations by design) and the
// scheduler (queue-wait/run-wall accounting). Traversal stops at their
// boundary; their internals are not taint sources for callers.
var determinismExempt = []string{"internal/obs", "internal/sched"}

// determinismExemptFuncs are individual functions inside kernel packages
// sanctioned to own a clock. The calibration store's provenance stamp
// (snapshots record when evidence last arrived) consumes wall-clock span
// data by design — the feedback loop's whole input is measured durations —
// and the stamp never feeds back into a cost estimate, so the §5.2
// invariant holds. Keys are ssa-style full names as rendered by
// (*types.Func).FullName.
var determinismExemptFuncs = map[string]bool{
	"(*musketeer/internal/core.Calibration).touch": true,
}

// sinkFunc reports whether fn is a nondeterminism source: the
// package-level clock/randomness entry points. Methods are excluded on
// purpose — (time.Time).After is pure arithmetic, and a *rand.Rand's
// determinism is decided where it is constructed (rand.New/NewSource are
// the flagged entry points, and a fixed-seed construction carries a
// justified suppression).
func sinkFunc(fn *types.Func) (string, bool) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	path := pkgPathOf(fn)
	switch path {
	case "math/rand", "math/rand/v2":
		return path + "." + fn.Name(), true
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return "time." + fn.Name(), true
		}
	}
	return "", false
}

func checkDeterminism(p *pass) {
	// Breadth-first reachability from every kernel-package function,
	// recording a parent edge for witness-chain reconstruction. Roots are
	// visited in source order so chains are deterministic.
	type visit struct {
		node   *CallNode
		parent *CallNode
	}
	var roots []*CallNode
	for _, n := range p.graph.Nodes {
		if underAny(n.Pkg.Rel, determinismRoots) {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })

	parent := map[*CallNode]*CallNode{}
	seen := map[*CallNode]bool{}
	queue := make([]visit, 0, len(roots))
	for _, r := range roots {
		queue = append(queue, visit{node: r})
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.node] {
			continue
		}
		seen[v.node] = true
		parent[v.node] = v.parent
		for _, e := range v.node.Out {
			callee := p.graph.Nodes[e.Callee]
			if callee == nil || seen[callee] {
				continue
			}
			if underAny(callee.Pkg.Rel, determinismExempt) {
				continue
			}
			queue = append(queue, visit{node: callee, parent: v.node})
		}
	}

	// Report each sink edge of each reachable function, with the witness
	// chain from a kernel root down to the offending call.
	reported := map[string]bool{}
	var nodes []*CallNode
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	for _, n := range nodes {
		if determinismExemptFuncs[n.Fn.FullName()] {
			continue
		}
		for _, e := range n.Out {
			sink, ok := sinkFunc(e.Callee)
			if !ok {
				continue
			}
			pos := p.m.Fset.Position(e.Pos)
			key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
			if reported[key] {
				continue
			}
			reported[key] = true

			var chain []Hop
			for c := n; c != nil; c = parent[c] {
				chain = append(chain, p.hop(c))
			}
			// Reverse: outermost kernel root first.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			rootHop := chain[0]
			how := e.Kind.String()
			msg := fmt.Sprintf("%s %s: deterministic cost estimation (§5.2) forbids clocks and randomness in code reachable from kernel package %s — inject the value from the caller",
				how, sink, pkgDirOf(rootHop.File))
			if len(chain) > 1 {
				msg = fmt.Sprintf("%s %s reachable from kernel function %s (%d hops): deterministic cost estimation (§5.2) forbids clocks and randomness on kernel call paths — inject the value from the caller",
					how, sink, rootHop.Func, len(chain)-1)
			}
			p.reportAt(e.Pos, msg, chain)
		}
	}
}

// pkgDirOf trims the file name off a module-relative file path.
func pkgDirOf(relFile string) string {
	if i := strings.LastIndex(relFile, "/"); i >= 0 {
		return relFile[:i]
	}
	return "."
}
