package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The context-discipline pass enforces PR 3's cancellation contract in
// three parts:
//
//  1. context.Background()/TODO() are banned outside cmd/ — a library
//     function that mints its own root context silently detaches the work
//     from the caller's cancellation and deadline. The deliberate
//     boundary wrappers (the public non-Ctx convenience API) carry
//     justified suppressions.
//  2. In the execution-stack packages, an exported API that accepts a
//     context (directly, or inside a run-context struct) must actually
//     use it — an accepted-and-dropped ctx is a cancellation black hole
//     that the caller cannot see.
//  3. In the same packages, an exported API that blocks (channel ops,
//     select, WaitGroup.Wait) must accept a context at all.
var ctxPackages = []string{"internal/core", "internal/engines", "internal/sched", "internal/dfs"}

func checkContext(p *pass) {
	// Part 1: no minted root contexts outside cmd/.
	for _, pkg := range p.m.Pkgs {
		if underAny(pkg.Rel, []string{"cmd"}) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil {
					return true
				}
				if funcFrom(fn, "context", "Background") || funcFrom(fn, "context", "TODO") {
					p.reportf(call.Pos(), fmt.Sprintf(
						"context.%s() outside cmd/: library code must accept and forward the caller's context, not mint a root one", fn.Name()))
				}
				return true
			})
		}
	}

	// Parts 2 and 3: exported execution-stack APIs.
	p.eachFuncDecl(func(pkg *Package, file *File, decl *ast.FuncDecl) {
		if !underAny(pkg.Rel, ctxPackages) || !decl.Name.IsExported() {
			return
		}
		obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return
		}
		if hasCtxParam(sig) {
			if !usesCtxParam(pkg.Info, decl) {
				p.reportf(decl.Name.Pos(), fmt.Sprintf(
					"exported %s accepts a context but never forwards or observes it: cancellation dies here", decl.Name.Name))
			}
			return
		}
		if pos, kind, blocking := firstBlockingOp(pkg.Info, decl.Body); blocking {
			p.reportf(pos, fmt.Sprintf(
				"exported %s blocks (%s) but takes no context.Context: blocking APIs in %s must accept and forward one",
				decl.Name.Name, kind, pkg.Rel))
		}
	})
}

// usesCtxParam reports whether any context-carrying parameter of decl is
// referenced in its body.
func usesCtxParam(info *types.Info, decl *ast.FuncDecl) bool {
	params := map[types.Object]bool{}
	for _, field := range decl.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		carries := isStdType(tv.Type, "context", "Context")
		if !carries {
			if n := derefNamed(tv.Type); n != nil {
				if st, ok := n.Underlying().(*types.Struct); ok {
					for j := 0; j < st.NumFields() && !carries; j++ {
						carries = isStdType(st.Field(j).Type(), "context", "Context")
					}
				}
			}
		}
		if !carries {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		// Unnamed (or _) context parameter: it cannot be forwarded.
		return false
	}
	used := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && params[info.Uses[id]] {
			used = true
		}
		return !used
	})
	return used
}

// firstBlockingOp finds the first channel operation, select, or
// WaitGroup.Wait in body (including nested literals — a goroutine spawned
// by the API is still the API blocking).
func firstBlockingOp(info *types.Info, body *ast.BlockStmt) (token.Pos, string, bool) {
	var pos token.Pos
	var kind string
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pos, kind, found = n.Pos(), "channel send", true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, kind, found = n.Pos(), "channel receive", true
			}
		case *ast.SelectStmt:
			pos, kind, found = n.Pos(), "select", true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := info.Types[sel.X]; ok && isStdType(tv.Type, "sync", "WaitGroup") {
					pos, kind, found = n.Pos(), "WaitGroup.Wait", true
				}
			}
		}
		return !found
	})
	return pos, kind, found
}
