// Package vet is Musketeer's type-aware static-analysis framework. It
// grew out of cmd/mklint's syntactic AST scan: instead of matching token
// patterns, vet type-checks the whole module (go/ast + go/types + the
// toolchain importer — no dependencies), builds per-function control-flow
// graphs and a module-wide call graph, and runs dataflow passes over them.
// That is what lets it see through aliased imports, method values,
// transitive call chains, and branch-dependent paths that a purely
// syntactic linter provably cannot.
//
// The rules encode the code invariants the paper's correctness story rests
// on (deterministic cost estimation §5.2, decoupled front-/back-ends,
// merged-fragment execution) as they surfaced across PRs 1–6:
//
//   - determinism: no clock or randomness reachable from the kernels
//   - span-leak: every obs span is ended on every returning path
//   - context-discipline: blocking APIs accept and forward context
//   - lock-discipline: no lock held on a path out of a function
//   - scheduler-only-concurrency: goroutines belong to internal/sched
//     (bounded fork-join inside the data-parallel kernels excepted)
//   - arena-escape: batch-borrowed rows never outlive the pipeline
//   - hot-path-keys, engine-profile, stream-rows: the migrated mklint
//     rules, now resolved through go/types
//
// Findings are suppressed line-by-line with `//mkvet:ignore <rule>
// <reason>`; a reason is mandatory and stale suppressions are themselves
// findings. See DESIGN.md §12 for the invariant catalog.
package vet

import (
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures one analysis run.
type Options struct {
	// Dir is any directory inside the module to analyze (the loader walks
	// up to go.mod). Empty means the current directory.
	Dir string
	// Rules restricts the run to the named rules; nil runs everything.
	Rules []string
	// Scope restricts *reported* findings to files under the given
	// module-relative directory prefixes (the CLI's ./... patterns).
	// Analysis is always whole-module — the call graph must be — so a
	// scoped run still sees transitive facts from elsewhere.
	Scope []string
}

// Report is the outcome of a Run that loaded successfully.
type Report struct {
	Module *Module
	Diags  []Diagnostic
}

// A rule pairs an invariant with the pass that proves it.
type rule struct {
	name     string
	doc      string
	severity Severity
	run      func(*pass)
}

// ruleTable is the registry, in documentation order. Adding a check means
// adding a row here plus its pass and its seeded violations under
// testdata/vet/ (see DESIGN.md §12).
var ruleTable = []rule{
	{"determinism", "no clock/randomness (transitively) reachable from kernel code", SevError, checkDeterminism},
	{"span-leak", "every obs span started in a function is ended on all returning paths", SevError, checkSpanLeak},
	{"context-discipline", "blocking exported APIs take and forward context; no context.Background outside cmd", SevError, checkContext},
	{"lock-discipline", "no mutex held on any path out of a function", SevError, checkLocks},
	{"scheduler-only-concurrency", "goroutines and WaitGroups outside internal/sched only as contained kernel fork-join", SevError, checkConcurrency},
	{"arena-escape", "rows borrowed from a relation.Batch must not be stored in fields or returned bare", SevError, checkArenaEscape},
	{"hot-path-keys", "no fmt string building or string concatenation in exec hot paths", SevError, checkHotPathKeys},
	{"engine-profile", "every engines.Engine literal registers a prof profile", SevError, checkEngineProfile},
	{"stream-rows", "streaming kernels pull batches, never materialized .Rows", SevError, checkStreamRows},
}

// RuleNames lists every registered rule in registry order.
func RuleNames() []string {
	out := make([]string, len(ruleTable))
	for i, r := range ruleTable {
		out[i] = r.name
	}
	return out
}

// RuleDoc returns the one-line invariant a rule proves ("" if unknown).
func RuleDoc(name string) string {
	for _, r := range ruleTable {
		if r.name == name {
			return r.doc
		}
	}
	return ""
}

// pass is the per-rule analysis context handed to each check.
type pass struct {
	m     *Module
	graph *CallGraph
	rule  rule
	diags *[]Diagnostic
}

// relOf maps a fileset filename to its module-relative slash path.
func (p *pass) relOf(filename string) string {
	rel, err := filepath.Rel(p.m.Root, filename)
	if err != nil {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// reportAt records one finding for the running rule.
func (p *pass) reportAt(pos token.Pos, msg string, chain []Hop) {
	position := p.m.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:     p.rule.name,
		Severity: p.rule.severity,
		File:     p.relOf(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  msg,
		Chain:    chain,
	})
}

func (p *pass) reportf(pos token.Pos, msg string) { p.reportAt(pos, msg, nil) }

// hop renders one call-graph node as a chain frame.
func (p *pass) hop(n *CallNode) Hop {
	pos := p.m.Fset.Position(n.Decl.Pos())
	return Hop{Func: n.Fn.FullName(), File: p.relOf(pos.Filename), Line: pos.Line}
}

// Run loads, type-checks, and analyzes the module. A *LoadError (broken
// tree) is returned as err; findings live in the report.
func Run(opts Options) (*Report, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	m, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	graph := buildCallGraph(m)

	want := map[string]bool{}
	for _, r := range opts.Rules {
		want[r] = true
	}
	var diags []Diagnostic
	for _, r := range ruleTable {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		p := &pass{m: m, graph: graph, rule: r, diags: &diags}
		r.run(p)
	}

	relOf := func(filename string) string {
		rel, err := filepath.Rel(m.Root, filename)
		if err != nil {
			return filepath.ToSlash(filename)
		}
		return filepath.ToSlash(rel)
	}
	var supDiags []Diagnostic
	sups := collectSuppressions(m, func(d Diagnostic) { supDiags = append(supDiags, d) })
	diags = applySuppressions(diags, sups, relOf, len(want) == 0)
	diags = append(diags, supDiags...)

	if len(opts.Scope) > 0 {
		var scoped []Diagnostic
		for _, d := range diags {
			for _, prefix := range opts.Scope {
				if prefix == "" || d.File == prefix || strings.HasPrefix(d.File, prefix+"/") ||
					(strings.HasSuffix(prefix, "/") && strings.HasPrefix(d.File, prefix)) {
					scoped = append(scoped, d)
					break
				}
			}
		}
		diags = scoped
	}
	sortDiagnostics(diags)
	return &Report{Module: m, Diags: diags}, nil
}

// underAny reports whether a module-relative package dir is under any of
// the given slash-separated prefixes.
func underAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// sortedKeys returns map keys in sorted order (deterministic iteration for
// reporting).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
