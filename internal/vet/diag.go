package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Severity tags a diagnostic. Every invariant violation is an error; the
// suppression-hygiene rules report warnings. CI fails on any finding
// regardless of severity — the tag exists so downstream tooling can triage.
type Severity string

// Severity levels.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warning"
)

// Hop is one frame of a call chain attached to a diagnostic (the
// determinism-taint rule reports the full kernel→…→clock path).
type Hop struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// Diagnostic is one analysis finding.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	// Chain, when non-empty, is the witness call path for transitive
	// findings, outermost frame first.
	Chain []Hop `json:"chain,omitempty"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
	for _, h := range d.Chain {
		fmt.Fprintf(&b, "\n\tvia %s (%s:%d)", h.Func, h.File, h.Line)
	}
	return b.String()
}

// sortDiagnostics orders findings by file, line, column, then rule, so
// output (and the golden corpus) is deterministic.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// jsonReport is the envelope of `mkvet -json` output.
type jsonReport struct {
	Module      string         `json:"module"`
	Findings    int            `json:"findings"`
	ByRule      map[string]int `json:"by_rule"`
	Diagnostics []Diagnostic   `json:"diagnostics"`
}

// WriteJSON emits the machine-readable report (one pretty-printed JSON
// object; CI uploads it as an artifact on failure).
func WriteJSON(w io.Writer, module string, ds []Diagnostic) error {
	rep := jsonReport{Module: module, Findings: len(ds), ByRule: map[string]int{}, Diagnostics: ds}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	for _, d := range ds {
		rep.ByRule[d.Rule]++
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
