package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide static call graph over go/types
// objects. Edges are resolved semantically, not textually: an aliased
// import (`import clock "time"`), a method call through a named or pointer
// receiver, and a function or method *value* (`f := time.Now; f()`) all
// resolve to the same *types.Func. Dynamic dispatch through interfaces and
// calls of unresolvable function values have no edges — the checks that
// consume the graph document that boundary.

// EdgeKind distinguishes a direct call from taking a function's value
// (method values and function-typed arguments may be called later, so
// taint-style checks traverse both).
type EdgeKind uint8

// Edge kinds.
const (
	EdgeCall EdgeKind = iota
	EdgeRef
)

func (k EdgeKind) String() string {
	if k == EdgeRef {
		return "reference to"
	}
	return "call to"
}

// CallEdge is one resolved outgoing edge of a function.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// CallNode is one declared function or method of the module.
type CallNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	Out  []CallEdge
}

// CallGraph maps every module function to its outgoing edges. Calls made
// inside function literals are attributed to the enclosing declaration —
// a closure handed to a worker helper executes on the declarer's behalf.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
}

// buildCallGraph walks every function declaration of every module package.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Fn: obj, Pkg: p, Decl: fd}
				collectEdges(p.Info, fd.Body, node)
				g.Nodes[obj] = node
			}
		}
	}
	return g
}

// collectEdges records every resolved call and function-value reference in
// body (including inside nested function literals).
func collectEdges(info *types.Info, body *ast.BlockStmt, node *CallNode) {
	// Identifiers that are direct call targets, so the value-reference
	// pass below can exclude them.
	callIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			}
			if fn := calleeOf(info, call); fn != nil {
				node.Out = append(node.Out, CallEdge{Callee: fn, Pos: call.Pos(), Kind: EdgeCall})
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			node.Out = append(node.Out, CallEdge{Callee: fn, Pos: id.Pos(), Kind: EdgeRef})
		}
		return true
	})
}

// calleeOf resolves a call expression to a *types.Func: package functions,
// methods (value or pointer receivers), and qualified identifiers. Calls
// of interface methods resolve to the interface method object, which is
// still useful for name/package matching; calls of plain function values
// resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
