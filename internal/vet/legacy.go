package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The three remaining mklint rules, migrated onto the typed framework.
// What changed in the migration:
//
//   - hot-path-keys now resolves the callee through go/types, so
//     `import f "fmt"; f.Sprintf(...)` no longer slips through.
//   - engine-profile matches the composite literal's *type* against
//     engines.Engine instead of its spelled name, so aliases and
//     qualified forms are equivalent.
//   - stream-rows decides by the receiver's type (relation.Relation vs
//     relation.Batch) instead of guessing from the variable's name.

// checkHotPathKeys bans per-row string building in internal/exec: the
// hashed-key kernels (PR 1) exist precisely to avoid it.
func checkHotPathKeys(p *pass) {
	p.eachFuncDecl(func(pkg *Package, file *File, decl *ast.FuncDecl) {
		if !underAny(pkg.Rel, []string{"internal/exec"}) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeOf(pkg.Info, n)
				if fn == nil || pkgPathOf(fn) != "fmt" {
					return true
				}
				switch fn.Name() {
				case "Sprintf", "Sprint", "Sprintln", "Appendf", "Append", "Appendln":
					p.reportf(n.Pos(), fmt.Sprintf(
						"fmt.%s in exec hot path: build row keys with hashed/typed keys, not formatted strings", fn.Name()))
				}
			case *ast.BinaryExpr:
				if n.Op != token.ADD {
					return true
				}
				if isStringLiteral(n.X) || isStringLiteral(n.Y) {
					p.reportf(n.Pos(), "string concatenation in exec hot path: build row keys with hashed/typed keys, not string building")
				}
			}
			return true
		})
	})
}

func isStringLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// checkEngineProfile requires every engines.Engine composite literal to
// set a prof: field — no back-end enters the registry without a
// capability/cost profile for the planner.
func checkEngineProfile(p *pass) {
	for _, pkg := range p.m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[lit]
				if !ok || !p.isModuleType(tv.Type, "internal/engines", "Engine") {
					return true
				}
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "prof" {
							return true
						}
					}
				}
				p.reportf(lit.Pos(), "Engine literal without a prof: field — every engine must register a capability/cost profile")
				return true
			})
		}
	}
}

// checkStreamRows keeps streaming kernels streaming: inside
// internal/exec's stream files, reading .Rows of a materialized
// relation.Relation defeats the pull pipeline (reading the current
// relation.Batch's rows is the point and stays allowed).
func checkStreamRows(p *pass) {
	for _, pkg := range p.m.Pkgs {
		if pkg.Rel != "internal/exec" {
			continue
		}
		for _, f := range pkg.Files {
			base := f.Rel
			if i := strings.LastIndex(base, "/"); i >= 0 {
				base = base[i+1:]
			}
			if !strings.HasPrefix(base, "stream") {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Rows" {
					return true
				}
				tv, ok := pkg.Info.Types[sel.X]
				if !ok {
					return true
				}
				if relationType(p, tv.Type) {
					p.reportf(sel.Pos(), "streaming kernel reads .Rows of a materialized relation: pull batches through RowSource.Next instead")
				}
				return true
			})
		}
	}
}

func relationType(p *pass, t types.Type) bool {
	return p.isModuleType(t, "internal/relation", "Relation")
}
