package vet

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs. Blocks hold simple
// statements and the condition expressions of the control statements that
// terminate them; edges follow if/for/range/switch/select/branch/return
// structure, including labeled break/continue, goto, and fallthrough.
// Nested function literals are opaque nodes — each literal gets its own
// CFG and its own analysis scope.
//
// The CFG deliberately models what the dataflow checks need and nothing
// more: a virtual exit block joined by every return (and the implicit
// fall-off-the-end return), and no edges out of recognized no-return calls
// (panic, os.Exit), so a span ended on every *returning* path is not
// flagged for leaking across a crash.

// block is one straight-line run of nodes. nodes are simple statements or
// bare condition expressions; they never contain nested control flow
// (function literals excepted, which analyses skip).
type block struct {
	nodes []ast.Node
	succs []*block
	// last terminator position for exit-path reporting (the return
	// statement, or the closing position of the function body).
	endPos token.Pos
}

// funcCFG is one function body's graph.
type funcCFG struct {
	blocks []*block
	entry  *block
	exit   *block
}

type branchTarget struct {
	label string
	brk   *block
	cont  *block
}

type cfgBuilder struct {
	g             *funcCFG
	cur           *block
	targets       []branchTarget
	gotoLabels    map[string]*block
	pendingGotos  map[string][]*block
	pendingLabel  string
	fallthroughTo *block
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:            &funcCFG{},
		gotoLabels:   map[string]*block{},
		pendingGotos: map[string][]*block{},
	}
	b.g.exit = b.newBlock()
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Implicit return at the end of the body.
	b.cur.endPos = body.Rbrace
	b.edge(b.cur, b.g.exit)
	// Unresolved gotos (labels in dead code): connect to exit so analysis
	// stays conservative rather than crashing.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, b.g.exit)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// startBlock finishes cur with an edge into a fresh block and makes that
// block current.
func (b *cfgBuilder) startBlock() *block {
	nb := b.newBlock()
	b.edge(b.cur, nb)
	b.cur = nb
	return nb
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.startBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, branchTarget{label: label, brk: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
	case *ast.LabeledStmt:
		lb := b.startBlock()
		name := s.Label.Name
		b.gotoLabels[name] = lb
		for _, src := range b.pendingGotos[name] {
			b.edge(src, lb)
		}
		delete(b.pendingGotos, name)
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.edge(b.cur, t.brk)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.edge(b.cur, t.cont)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			name := s.Label.Name
			if lb := b.gotoLabels[name]; lb != nil {
				b.edge(b.cur, lb)
			} else {
				b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallthroughTo)
			b.cur = b.newBlock()
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.cur.endPos = s.Pos()
		b.edge(b.cur, b.g.exit)
		b.cur = b.newBlock()
	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			// The path ends in a crash, not a return: no exit edge, so
			// leak checks don't fire on panic paths.
			b.cur = b.newBlock()
		}
	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec, empties: straight-line nodes.
		b.add(s)
	}
}

// switchLike builds expression and type switches. Each clause body gets its
// own block; fallthrough chains to the next clause's body.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFallthrough bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: after})
	clauses := body.List
	bodies := make([]*block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = after
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallthroughTo = nil
	if !hasDefault {
		b.edge(head, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) findTarget(label *ast.Ident, needCont bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// isNoReturnCall recognizes calls that terminate the path without
// returning: panic and os.Exit (syntactic on purpose — the exact os.Exit
// object identity doesn't matter for path-sensitivity).
func isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// fixpoint computes, for every block, the may-live set at block entry
// (union over predecessors of their exit sets) and returns the entry sets.
// transfer applies one node's effect to a live set in place.
func (g *funcCFG) fixpoint(transfer func(n ast.Node, live map[string]token.Pos)) map[*block]map[string]token.Pos {
	in := map[*block]map[string]token.Pos{}
	out := map[*block]map[string]token.Pos{}
	for _, bl := range g.blocks {
		in[bl] = map[string]token.Pos{}
		out[bl] = map[string]token.Pos{}
	}
	changed := true
	for changed {
		changed = false
		for _, bl := range g.blocks {
			live := map[string]token.Pos{}
			for k, v := range in[bl] {
				live[k] = v
			}
			for _, n := range bl.nodes {
				transfer(n, live)
			}
			if !sameSet(out[bl], live) {
				out[bl] = live
				changed = true
			}
			for _, s := range bl.succs {
				for k, v := range live {
					if _, ok := in[s][k]; !ok {
						in[s][k] = v
						changed = true
					}
				}
			}
		}
	}
	return in
}

// exitLive replays each exit-predecessor block's transfer and calls report
// with the keys still live at its terminator.
func (g *funcCFG) exitLive(in map[*block]map[string]token.Pos, transfer func(n ast.Node, live map[string]token.Pos), report func(endPos token.Pos, live map[string]token.Pos)) {
	for _, bl := range g.blocks {
		toExit := false
		for _, s := range bl.succs {
			if s == g.exit {
				toExit = true
				break
			}
		}
		if !toExit {
			continue
		}
		live := map[string]token.Pos{}
		for k, v := range in[bl] {
			live[k] = v
		}
		for _, n := range bl.nodes {
			transfer(n, live)
		}
		if len(live) > 0 {
			report(bl.endPos, live)
		}
	}
}

func sameSet(a, b map[string]token.Pos) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}
